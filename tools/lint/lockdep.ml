(* Rule D10: interprocedural static lock-order analysis.

   Walks every .ml under lib|bin|bench, resolves calls to the
   acquisition helpers (the [Kernel.with_*] family and
   [Sync.Rlock.with_lock] / [Sync.Lock.with_lock]) through the same
   alias/open machinery as rules D1-D9, and builds the
   may-hold-while-acquiring graph over named lock CLASSES: an edge
   a -> b means some code path may acquire b while holding a. The
   16 page-table shards collapse to the one class [lock.pt_shard] with
   an index side condition — a self-nesting of the class is legal only
   at constant indices in ascending order, or under a declared
   [@ufork.lock_order "lock.pt_shard < lock.pt_shard"] whose ascending
   discipline the runtime checker (R2) then enforces per index.

   Findings (all D10):
   - an edge inverting the built-in hierarchy
       kernel.big > uproc_table > fd_tables > pt_shard > frame_pool
       > stats  (outermost first);
   - a class self-edge with unknown indices and no declared self-order,
     or with constant indices that are not strictly ascending;
   - a cycle among inferred and declared edges (custom lock classes);
   - a declaration that itself contradicts the built-in hierarchy
     (the annotation is checked, not trusted).

   Soundness posture: deliberately under-approximating, like the rest of
   the linter. Lambdas passed to UNKNOWN callees are deferred closures
   (spawned threads, stored hooks) and are analyzed with an empty held
   set — attributing the enclosing context to them would manufacture
   false edges from every [Engine.spawn] under a lock. Bare
   [Rlock.acquire]/[release] pairs (the kernel's wait path) are
   likewise invisible. The runtime checker R2 covers both. Code marked
   [@ufork.lockdep_ignore] (chaos injections) contributes nothing. *)

open Parsetree

let order_attr = "ufork.lock_order"
let ignore_attr = "ufork.lockdep_ignore"

(* Outermost first. [rank] is position; acquiring a lower rank while
   holding a higher one is an inversion. *)
let hierarchy =
  [
    "lock.kernel.big"; "lock.uproc_table"; "lock.fd_tables"; "lock.pt_shard";
    "lock.frame_pool"; "lock.stats";
  ]

let rank cls =
  let rec go i = function
    | [] -> None
    | c :: rest -> if c = cls then Some i else go (i + 1) rest
  in
  go 0 hierarchy

(* A lock class plus the constant shard index, when one is syntactically
   visible ([s.pt_shards.(1)]). *)
type lock = { cls : string; index : int option }

let shard_prefix = "lock.pt_shard."

let canon name =
  let plen = String.length shard_prefix in
  if
    String.length name > plen
    && String.sub name 0 plen = shard_prefix
    && int_of_string_opt (String.sub name plen (String.length name - plen))
       <> None
  then
    {
      cls = "lock.pt_shard";
      index = int_of_string_opt (String.sub name plen (String.length name - plen));
    }
  else { cls = name; index = None }

(* Helper table: which functions acquire which lock around their last
   literal-lambda argument. [`Fixed] helpers carry the class in their
   name; [`From_arg] helpers ([with_lock]) name the lock in their first
   argument. The [Kernel.with_*] helpers also match unqualified — the
   kernel calls its own helpers bare. *)
let helpers =
  [
    ([ "Kernel"; "with_biglock" ], `Fixed "lock.kernel.big");
    ([ "Kernel"; "with_uproc_table" ], `Fixed "lock.uproc_table");
    ([ "Kernel"; "with_fd_tables" ], `Fixed "lock.fd_tables");
    ([ "Kernel"; "with_stats" ], `Fixed "lock.stats");
    ([ "Kernel"; "with_frame_pool" ], `Fixed "lock.frame_pool");
    ([ "Kernel"; "with_pt_shard" ], `Fixed "lock.pt_shard");
    ([ "Kernel"; "with_pt_shard_pair" ], `Fixed "lock.pt_shard");
    ([ "Rlock"; "with_lock" ], `From_arg);
    ([ "Lock"; "with_lock" ], `From_arg);
  ]

(* Field and variable names conventionally bound to the named kernel
   locks, for lock expressions the per-file create-registry cannot
   resolve (record fields assigned from function parameters). *)
let builtin_names =
  [
    ("big", "lock.kernel.big");
    ("frame_pool", "lock.frame_pool");
    ("frame_pool_lock", "lock.frame_pool");
    ("pool_lock", "lock.frame_pool");
    ("uproc_table", "lock.uproc_table");
    ("fd_tables", "lock.fd_tables");
    ("stats", "lock.stats");
    ("pt_shards", "lock.pt_shard");
    ("pt_shard", "lock.pt_shard");
  ]

(* {1 Analysis state} *)

type site = { s_file : string; s_line : int; s_col : int }

type acq = { a_held : lock list; a_lock : lock; a_site : site }

type callrec = { callee : string * string; c_held : lock list; c_site : site }

type fn_info = { mutable acqs : acq list; mutable calls : callrec list }

type decl = { d_from : string; d_to : string; d_site : site }

type state = {
  fns : (string * string, fn_info) Hashtbl.t;
  mutable fn_order : (string * string) list;  (* reverse definition order *)
  mutable decls : decl list;
  mutable anon : int;
}

let new_state () =
  { fns = Hashtbl.create 64; fn_order = []; decls = []; anon = 0 }

let fn_info st key =
  match Hashtbl.find_opt st.fns key with
  | Some i -> i
  | None ->
      let i = { acqs = []; calls = [] } in
      Hashtbl.add st.fns key i;
      st.fn_order <- key :: st.fn_order;
      i

let site_of (loc : Location.t) file =
  {
    s_file = file;
    s_line = loc.Location.loc_start.Lexing.pos_lnum;
    s_col =
      loc.Location.loc_start.Lexing.pos_cnum
      - loc.Location.loc_start.Lexing.pos_bol;
  }

(* {1 Attributes} *)

let payload_string = function
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let has_attr name attrs =
  List.exists (fun a -> a.attr_name.Location.txt = name) attrs

(* "lock.a < lock.b < lock.c" -> [(a,b); (b,c)] *)
let order_pairs s =
  let parts = String.split_on_char '<' s |> List.map String.trim in
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  pairs parts

let record_decls st file attrs =
  List.iter
    (fun a ->
      if a.attr_name.Location.txt = order_attr then
        match payload_string a.attr_payload with
        | Some s ->
            List.iter
              (fun (d_from, d_to) ->
                st.decls <-
                  { d_from; d_to; d_site = site_of a.attr_loc file }
                  :: st.decls)
              (order_pairs s)
        | None -> ())
    attrs

(* {1 Per-file pass} *)

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Longident.flatten txt)
  | _ -> None

let const_int e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer (s, None)) -> int_of_string_opt s
  | _ -> None

(* Collect [let x = Rlock.create ~name:"..." ()] and
   [{ field = Rlock.create ~name:"..." (); ... }] bindings so lock
   expressions resolve to their registered names. *)
let collect_lock_registry ctx str =
  let registry : (string, lock) Hashtbl.t = Hashtbl.create 16 in
  let create_name e =
    match e.pexp_desc with
    | Pexp_apply (f, args) -> (
        match ident_path f with
        | Some p
          when Lint_engine.ends_with ~suffix:[ "Rlock"; "create" ]
                 (Lint_engine.resolve ctx p)
               || Lint_engine.ends_with ~suffix:[ "Lock"; "create" ]
                    (Lint_engine.resolve ctx p) ->
            List.find_map
              (fun (lbl, a) ->
                match (lbl, a.pexp_desc) with
                | ( Asttypes.Labelled "name",
                    Pexp_constant (Pconst_string (s, _, _)) ) ->
                    Some s
                | _ -> None)
              args
        | _ -> None)
    | _ -> None
  in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      value_binding =
        (fun it vb ->
          (match (vb.pvb_pat.ppat_desc, create_name vb.pvb_expr) with
          | Ppat_var { txt; _ }, Some name ->
              Hashtbl.replace registry txt (canon name)
          | _ -> ());
          default_iterator.value_binding it vb);
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_record (fields, _) ->
              List.iter
                (fun ({ Location.txt; _ }, fe) ->
                  match (Longident.flatten txt, create_name fe) with
                  | path, Some name when path <> [] ->
                      Hashtbl.replace registry
                        (List.nth path (List.length path - 1))
                        (canon name)
                  | _ -> ())
                fields
          | _ -> ());
          default_iterator.expr it e);
    }
  in
  it.structure it str;
  registry

(* The lock named by a [with_lock] first argument: a registered
   variable, a registered or conventionally named record field, or an
   [a.(i)] shard array subscript (constant index kept). *)
let rec resolve_lock_expr ctx registry e =
  let by_name n =
    match Hashtbl.find_opt registry n with
    | Some l -> Some l
    | None ->
        Option.map (fun cls -> { cls; index = None })
          (List.assoc_opt n builtin_names)
  in
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match List.rev (Longident.flatten txt) with
      | last :: _ -> by_name last
      | [] -> None)
  | Pexp_field (_, { txt; _ }) -> (
      match List.rev (Longident.flatten txt) with
      | last :: _ -> by_name last
      | [] -> None)
  | Pexp_apply (f, args) -> (
      (* [arr.(i)] parses as [Array.get arr i]. *)
      match ident_path f with
      | Some p
        when Lint_engine.ends_with ~suffix:[ "Array"; "get" ]
               (Lint_engine.resolve ctx p) -> (
          match List.filter_map
                  (fun (lbl, a) ->
                    if lbl = Asttypes.Nolabel then Some a else None)
                  args
          with
          | arr :: idx :: _ -> (
              match resolve_lock_expr ctx registry arr with
              | Some { cls; _ } when cls = "lock.pt_shard" ->
                  Some { cls; index = const_int idx }
              | other -> other)
          | _ -> None)
      | _ -> None)
  | Pexp_constraint (e, _) -> resolve_lock_expr ctx registry e
  | _ -> None

(* Unroll [f @@ x] and [x |> f] into plain applications so helper calls
   match regardless of application style. *)
let rec normalize_apply e =
  match e.pexp_desc with
  | Pexp_apply (op, [ (Asttypes.Nolabel, f); (Asttypes.Nolabel, x) ])
    when ident_path op = Some [ "@@" ] -> (
      match normalize_apply f with
      | Some (fn, args) -> Some (fn, args @ [ (Asttypes.Nolabel, x) ])
      | None -> Some (f, [ (Asttypes.Nolabel, x) ]))
  | Pexp_apply (op, [ (Asttypes.Nolabel, x); (Asttypes.Nolabel, f) ])
    when ident_path op = Some [ "|>" ] -> (
      match normalize_apply f with
      | Some (fn, args) -> Some (fn, args @ [ (Asttypes.Nolabel, x) ])
      | None -> Some (f, [ (Asttypes.Nolabel, x) ]))
  | Pexp_apply (f, args) -> Some (f, args)
  | _ -> None

let helper_of ctx path =
  let resolved = Lint_engine.resolve ctx path in
  List.find_map
    (fun (target, kind) ->
      let bare_kernel_helper =
        (* Self-module calls inside kernel.ml: [with_uproc_table t f]. *)
        match (target, resolved) with
        | [ "Kernel"; f ], [ f' ] -> f = f'
        | _ -> false
      in
      if Lint_engine.matches ctx resolved target || bare_kernel_helper then
        Some (target, kind)
      else None)
    helpers

let is_lambda e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | _ -> false

(* The innermost body of a lambda (parameters stripped); [Pexp_function]
   case bodies are walked by the caller via [lambda_bodies]. *)
let rec lambda_bodies e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> lambda_bodies body
  | Pexp_newtype (_, body) -> lambda_bodies body
  | Pexp_function cases -> List.concat_map (fun c -> lambda_bodies c.pc_rhs) cases
  | _ -> [ e ]

let analyze_file st ctx ~modname str =
  let file = ctx.Lint_engine.path in
  (* Nested deferred closures get fresh unreachable keys: their
     acquisitions are still order-checked, but never attributed to the
     enclosing function's summary (that would manufacture edges from
     contexts that do not run them). *)
  let anon_key () =
    st.anon <- st.anon + 1;
    (modname, Printf.sprintf "<closure-%d>" st.anon)
  in
  let registry = collect_lock_registry ctx str in
  let rec walk info ~held ~ignored e =
    let ignored = ignored || has_attr ignore_attr e.pexp_attributes in
    record_decls st file e.pexp_attributes;
    match normalize_apply e with
    | Some (f, args) -> (
        let nolabel =
          List.filter_map
            (fun (lbl, a) -> if lbl = Asttypes.Nolabel then Some a else None)
            args
        in
        let walk_args ~body_of_helper held' =
          List.iter
            (fun (_, a) ->
              if Some a == body_of_helper then ()
              else if is_lambda a then
                (* Deferred closure under an unknown callee. *)
                let ak = anon_key () in
                let ai = fn_info st ak in
                List.iter
                  (fun b -> walk ai ~held:[] ~ignored b)
                  (lambda_bodies a)
              else walk info ~held:held' ~ignored a)
            args
        in
        match Option.bind (ident_path f) (fun p -> Some (p, helper_of ctx p))
        with
        | Some (_, Some (_, kind)) -> (
            let lock =
              match kind with
              | `Fixed cls -> Some { cls; index = None }
              | `From_arg -> (
                  match nolabel with
                  | arg0 :: _ -> resolve_lock_expr ctx registry arg0
                  | [] -> None)
            in
            match lock with
            | Some lock ->
                if not ignored then
                  info.acqs <-
                    { a_held = held; a_lock = lock; a_site = site_of e.pexp_loc file }
                    :: info.acqs;
                let body =
                  match List.rev nolabel with
                  | last :: _ when is_lambda last -> Some last
                  | _ -> None
                in
                walk_args ~body_of_helper:body held;
                Option.iter
                  (fun b ->
                    List.iter
                      (fun bb -> walk info ~held:(lock :: held) ~ignored bb)
                      (lambda_bodies b))
                  body
            | None ->
                (* A with_lock whose lock expression we cannot name:
                   nothing to record, but the body still runs now. *)
                walk_args ~body_of_helper:None held)
        | Some (p, None) ->
            (let resolved = Lint_engine.resolve ctx p in
             let callee =
               match List.rev resolved with
               | [ fname ] -> Some (modname, fname)
               | fname :: m :: _ when m <> "" && m.[0] >= 'A' && m.[0] <= 'Z'
                 ->
                   Some (m, fname)
               | _ -> None
             in
             match callee with
             | Some callee when not ignored ->
                 info.calls <-
                   { callee; c_held = held; c_site = site_of e.pexp_loc file }
                   :: info.calls
             | _ -> ());
            walk_args ~body_of_helper:None held;
            walk info ~held ~ignored f
        | None ->
            (* Applying a field or a complex expression: arguments are
               evaluated now; lambdas among them are deferred. *)
            walk_args ~body_of_helper:None held;
            walk info ~held ~ignored f)
    | None -> (
        match e.pexp_desc with
        | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ ->
            (* A lambda outside any call: a stored hook or a binding's
               body — deferred, empty held set. *)
            let ak = anon_key () in
            let ai = fn_info st ak in
            List.iter (fun b -> walk ai ~held:[] ~ignored b) (lambda_bodies e)
        | Pexp_let (_, vbs, body) ->
            List.iter
              (fun vb ->
                record_decls st file vb.pvb_attributes;
                let ignored' =
                  ignored || has_attr ignore_attr vb.pvb_attributes
                in
                walk info ~held ~ignored:ignored' vb.pvb_expr)
              vbs;
            walk info ~held ~ignored body
        | Pexp_sequence (a, b) ->
            walk info ~held ~ignored a;
            walk info ~held ~ignored b
        | Pexp_ifthenelse (c, t, f) ->
            walk info ~held ~ignored c;
            walk info ~held ~ignored t;
            Option.iter (walk info ~held ~ignored) f
        | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
            walk info ~held ~ignored scrut;
            List.iter (fun c -> walk info ~held ~ignored c.pc_rhs) cases
        | Pexp_constraint (e, _) | Pexp_open (_, e) | Pexp_letmodule (_, _, e)
          ->
            walk info ~held ~ignored e
        | Pexp_record (fields, base) ->
            List.iter
              (fun (_, fe) ->
                if is_lambda fe then begin
                  let ak = anon_key () in
                  let ai = fn_info st ak in
                  List.iter
                    (fun b -> walk ai ~held:[] ~ignored b)
                    (lambda_bodies fe)
                end
                else walk info ~held ~ignored fe)
              fields;
            Option.iter (walk info ~held ~ignored) base
        | Pexp_tuple es | Pexp_array es ->
            List.iter (walk info ~held ~ignored) es
        | Pexp_construct (_, arg) | Pexp_variant (_, arg) ->
            Option.iter (walk info ~held ~ignored) arg
        | Pexp_field (e, _) -> walk info ~held ~ignored e
        | Pexp_setfield (a, _, b) ->
            walk info ~held ~ignored a;
            walk info ~held ~ignored b
        | Pexp_lazy e | Pexp_assert e -> walk info ~held ~ignored e
        | _ -> ())
  in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              record_decls st file vb.pvb_attributes;
              let ignored = has_attr ignore_attr vb.pvb_attributes in
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } ->
                  let info = fn_info st (modname, txt) in
                  List.iter
                    (fun b -> walk info ~held:[] ~ignored b)
                    (lambda_bodies vb.pvb_expr)
              | _ ->
                  let info = fn_info st (anon_key ()) in
                  List.iter
                    (fun b -> walk info ~held:[] ~ignored b)
                    (lambda_bodies vb.pvb_expr))
            vbs
      | _ -> ())
    str

(* {1 Whole-program summaries and checks} *)

(* Transitive acquisition classes per function: A(F) = direct classes
   plus A(G) for every known callee G, to a fixpoint. *)
let summaries st =
  let a : (string * string, string list ref) Hashtbl.t = Hashtbl.create 64 in
  let keys = List.rev st.fn_order in
  List.iter
    (fun k ->
      let info = Hashtbl.find st.fns k in
      let direct =
        List.sort_uniq String.compare
          (List.map (fun acq -> acq.a_lock.cls) info.acqs)
      in
      Hashtbl.replace a k (ref direct))
    keys;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun k ->
        let info = Hashtbl.find st.fns k in
        let mine = Hashtbl.find a k in
        List.iter
          (fun c ->
            match Hashtbl.find_opt a c.callee with
            | Some theirs ->
                List.iter
                  (fun cls ->
                    if not (List.mem cls !mine) then begin
                      mine := cls :: !mine;
                      changed := true
                    end)
                  !theirs
            | None -> ())
          info.calls)
      keys
  done;
  a

type edge = {
  e_src : lock;
  e_dst : lock;
  e_site : site;
  e_via : string option;  (* callee name, for summary-propagated edges *)
}

let edges_of st =
  let a = summaries st in
  let edges = ref [] in
  List.iter
    (fun k ->
      let info = Hashtbl.find st.fns k in
      List.iter
        (fun acq ->
          List.iter
            (fun h ->
              edges :=
                { e_src = h; e_dst = acq.a_lock; e_site = acq.a_site;
                  e_via = None }
                :: !edges)
            acq.a_held)
        (List.rev info.acqs);
      List.iter
        (fun c ->
          if c.c_held <> [] then
            match Hashtbl.find_opt a c.callee with
            | Some classes ->
                List.iter
                  (fun cls ->
                    List.iter
                      (fun h ->
                        edges :=
                          {
                            e_src = h;
                            e_dst = { cls; index = None };
                            e_site = c.c_site;
                            e_via = Some (snd c.callee);
                          }
                          :: !edges)
                      c.c_held)
                  !classes
            | None -> ())
        (List.rev info.calls))
    (List.rev st.fn_order);
  List.rev !edges

let finding ~site ~message =
  {
    Lint_engine.rule = Lint_rules.lockdep;
    file = site.s_file;
    line = site.s_line;
    col = site.s_col;
    message;
  }

let analyze_state st =
  let edges = edges_of st in
  let declared_pairs = List.map (fun d -> (d.d_from, d.d_to)) st.decls in
  let findings = ref [] in
  let seen = Hashtbl.create 16 in
  let report_once key site message =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      if Lint_rules.lockdep.Lint_rules.applies site.s_file then
        findings := finding ~site ~message :: !findings
    end
  in
  (* Declared orders are checked against the hierarchy, not trusted. *)
  List.iter
    (fun d ->
      match (rank d.d_from, rank d.d_to) with
      | Some ra, Some rb when ra > rb ->
          report_once ("decl", d.d_from, d.d_to) d.d_site
            (Printf.sprintf
               "[@%s \"%s < %s\"] contradicts the lock hierarchy (%s is \
                outside %s)"
               order_attr d.d_from d.d_to d.d_to d.d_from)
      | _ -> ())
    st.decls;
  (* Direct edge checks: hierarchy inversions and shard self-nesting. *)
  List.iter
    (fun e ->
      let src = e.e_src.cls and dst = e.e_dst.cls in
      let via =
        match e.e_via with
        | Some f -> Printf.sprintf " (via %s)" f
        | None -> ""
      in
      if src = dst then begin
        match (e.e_src.index, e.e_dst.index) with
        | Some i, Some j when j > i -> ()
        | Some i, Some j ->
            report_once ("shard", string_of_int i, string_of_int j) e.e_site
              (Printf.sprintf
                 "pt-shard %d acquired while holding pt-shard %d%s: shard \
                  pairs nest in ascending index order"
                 j i via)
        | _ ->
            if not (List.mem (src, dst) declared_pairs) then
              report_once ("self", src, dst) e.e_site
                (Printf.sprintf
                   "%s nests inside itself%s with no declared self-order: \
                    declare the index discipline with [@%s \"%s < %s\"]"
                   src via order_attr src dst)
      end
      else
        match (rank src, rank dst) with
        | Some ra, Some rb when ra > rb ->
            report_once ("inv", src, dst) e.e_site
              (Printf.sprintf
                 "%s acquired while holding %s%s: inverts the lock \
                  hierarchy (%s is outside %s)"
                 dst src via dst src)
        | _ -> ())
    edges;
  (* Cycle detection over inferred + declared class edges (self-edges
     handled above; hierarchy inversions already reported pairwise). *)
  let adj : (string, string list ref) Hashtbl.t = Hashtbl.create 16 in
  let add_adj (a, b) =
    if a <> b then begin
      let l =
        match Hashtbl.find_opt adj a with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.add adj a l;
            l
      in
      if not (List.mem b !l) then l := b :: !l
    end
  in
  List.iter (fun e -> add_adj (e.e_src.cls, e.e_dst.cls)) edges;
  List.iter add_adj declared_pairs;
  let reaches src dst =
    let visited = Hashtbl.create 16 in
    let rec dfs n =
      n = dst
      || (not (Hashtbl.mem visited n))
         && begin
              Hashtbl.add visited n ();
              match Hashtbl.find_opt adj n with
              | Some l -> List.exists dfs !l
              | None -> false
            end
    in
    dfs src
  in
  List.iter
    (fun e ->
      let src = e.e_src.cls and dst = e.e_dst.cls in
      (* Skip pairs already reported as hierarchy inversions: the cycle
         is the same bug seen from the other side. *)
      let already =
        Hashtbl.mem seen ("inv", src, dst) || Hashtbl.mem seen ("inv", dst, src)
      in
      if src <> dst && (not already) && reaches dst src then
        report_once ("cycle", min src dst, max src dst) e.e_site
          (Printf.sprintf
             "acquisition cycle: %s -> %s but %s already reaches %s — two \
              nestings take these locks in opposite orders"
             src dst dst src))
    edges;
  let findings =
    List.sort
      (fun (a : Lint_engine.finding) b ->
        compare (a.file, a.line, a.col) (b.file, b.line, b.col))
      !findings
  in
  (findings, edges, declared_pairs)

(* {1 Graph export} *)

type graph = {
  nodes : string list;
  g_edges : (string * string * string) list;  (* src, dst, kind *)
}

let graph_of st =
  let _, edges, declared = analyze_state st in
  let hier =
    let rec chain = function
      | a :: (b :: _ as rest) -> (a, b, "hierarchy") :: chain rest
      | _ -> []
    in
    chain hierarchy
  in
  let inferred =
    List.map (fun e -> (e.e_src.cls, e.e_dst.cls, "inferred")) edges
  in
  let declared = List.map (fun (a, b) -> (a, b, "declared")) declared in
  let g_edges =
    List.sort_uniq compare (hier @ inferred @ declared)
  in
  let nodes =
    List.sort_uniq String.compare
      (hierarchy
      @ List.concat_map (fun (a, b, _) -> [ a; b ]) g_edges)
  in
  { nodes; g_edges }

let to_dot g =
  let b = Buffer.create 1024 in
  Buffer.add_string b "digraph lock_order {\n  rankdir=TB;\n";
  List.iter
    (fun n -> Buffer.add_string b (Printf.sprintf "  %S;\n" n))
    g.nodes;
  List.iter
    (fun (src, dst, kind) ->
      let style =
        match kind with
        | "hierarchy" -> " [style=dashed, color=gray, label=\"hierarchy\"]"
        | "declared" -> " [style=dotted, label=\"declared\"]"
        | _ -> ""
      in
      Buffer.add_string b (Printf.sprintf "  %S -> %S%s;\n" src dst style))
    g.g_edges;
  Buffer.add_string b "}\n";
  Buffer.contents b

let to_json g =
  let node n = Printf.sprintf "%S" n in
  let edge (src, dst, kind) =
    Printf.sprintf "{\"src\":%S,\"dst\":%S,\"kind\":%S}" src dst kind
  in
  Printf.sprintf "{\"nodes\":[%s],\"edges\":[%s]}"
    (String.concat "," (List.map node g.nodes))
    (String.concat "," (List.map edge g.g_edges))

(* {1 Entry points} *)

let state_of_sources sources =
  let st = new_state () in
  List.iter
    (fun (path, source) ->
      let ctx =
        {
          Lint_engine.path;
          aliases = [];
          opens = [];
          findings = [];
          has_sort = false;
          order_ok_depth = 0;
        }
      in
      let lexbuf = Lexing.from_string source in
      Lexing.set_filename lexbuf path;
      match Parse.implementation lexbuf with
      | str ->
          Lint_engine.collect_bindings ctx str;
          let modname =
            String.capitalize_ascii
              (Filename.remove_extension (Filename.basename path))
          in
          analyze_file st ctx ~modname str
      | exception _ ->
          (* Unparseable files are E0 findings in the main lint pass;
             nothing for the lock analysis to see. *)
          ())
    sources;
  st

let analyze_sources sources =
  let st = state_of_sources sources in
  let findings, _, _ = analyze_state st in
  findings

let tree_sources root =
  Lint_engine.tree_files root
  |> List.filter (fun rel -> Filename.check_suffix rel ".ml")
  |> List.map (fun rel ->
         (rel, Lint_engine.read_file (Filename.concat root rel)))

let analyze_tree root = analyze_sources (tree_sources root)
let graph_of_sources sources = graph_of (state_of_sources sources)
let graph_of_tree root = graph_of_sources (tree_sources root)
