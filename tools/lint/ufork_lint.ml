(* ufork_lint: the AST-level discipline linter.

     ufork_lint [--json] [ROOT]

   Parses every .ml/.mli under ROOT/{lib,bin,bench,tools} (ROOT
   defaults to the current directory) and reports rule-catalogue
   findings — the per-file rules, the whole-program lock-order analysis
   (D10) and the capability-escape analysis (D13); exits 1 if there are
   any. [--list] prints the catalogue ([--md] as a markdown table). *)

module Lint_rules = Ufork_lint_core.Lint_rules
module Lint_engine = Ufork_lint_core.Lint_engine
module Lockdep = Ufork_lint_core.Lockdep
module Capflow = Ufork_lint_core.Capflow

let () =
  let json = ref false in
  let list_rules = ref false in
  let md = ref false in
  let root = ref "." in
  let spec =
    [
      ("--json", Arg.Set json, " Emit findings as a JSON array");
      ("--list", Arg.Set list_rules, " Print the rule catalogue");
      ("--md", Arg.Set md, " With --list: emit a markdown table");
    ]
  in
  Arg.parse (Arg.align spec)
    (fun d -> root := d)
    "ufork_lint [--json] [--list [--md]] [ROOT]";
  if !list_rules then begin
    Lint_rules.print_catalogue ~md:!md ();
    exit 0
  end;
  let findings =
    List.sort
      (fun (a : Lint_engine.finding) b ->
        compare (a.file, a.line, a.col) (b.file, b.line, b.col))
      (Lint_engine.lint_tree !root
      @ Lockdep.analyze_tree !root
      @ Capflow.analyze_tree !root)
  in
  if !json then print_endline (Lint_engine.to_json findings)
  else begin
    List.iter
      (fun f -> Format.printf "%a@." Lint_engine.pp_finding f)
      findings;
    if findings = [] then
      Printf.printf
        "ufork_lint: clean — %d rules over lib/, bin/, bench/, tools/ (%d \
         files)\n"
        (List.length Lint_rules.all)
        (List.length (Lint_engine.tree_files !root))
  end;
  exit (if findings = [] then 0 else 1)
