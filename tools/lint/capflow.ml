(* Rule D13: interprocedural capability-provenance escape analysis.

   μFork's §4.2 tag scan can rebase a capability only if it lives in a
   page: a Capability.t value that escapes into an OCaml-heap container
   (a ref, a Hashtbl, a mutable record field, an array) is a shadow
   copy the scan can never find, so any authority it carries silently
   survives fork. This pass tracks capability values from their sources
   — [Capability.root], [Capability.mint], [Relocate.relocate_cap] —
   through let-bindings, the cap->cap transformers ([with_cursor],
   [rebase], [stamp], ...), and whole-program function summaries (a
   fixpoint over return-value taint, like lockdep's A(F)), and flags:

   (a) a tracked capability stored into an OCaml-heap container that is
       not a tag-carrying [Page.store_cap] (which is a plain call, not a
       heap store, and therefore never matches);
   (b) a [Relocate.relocate_cap] result discarded ([ignore], a sequence
       position, a [let _ =] binding): the rebased capability was
       computed and dropped, so the child keeps the stale one;
   (c) root-derived authority ([Capability.root], [Kernel.root_cap], or
       any function whose summary returns root taint) reaching
       app/baseline/workload/front-end code, where no μprocess may ever
       hold the kernel's unbounded capability.

   Deliberate escapes (chaos scaffolding) are discharged with
   [@ufork.cap_escape_ok] on the expression or its value binding — and
   the annotation is checked, not trusted: a discharge that shields no
   actual escape is itself a D13 finding, so stale annotations cannot
   accumulate.

   Soundness posture: deliberately under-approximating, like the rest
   of the linter. Taint flows through direct value paths only — not
   through function arguments into callees, not through record
   construction into aggregates, and not out of [Page.load_cap] (a cap
   read back from a page is the tag scan's own jurisdiction). The
   runtime invariant R4 covers everything this pass cannot see; the
   [--chaos-heap-smuggle] injection exists precisely to prove that. *)

open Parsetree

let escape_attr = "ufork.cap_escape_ok"

(* Root taint is the kernel's unbounded authority; Cap is any tracked
   bounded capability. Root survives the cursor/perms transformers but
   is laundered by [mint] (which narrows bounds) — minting from root is
   how legitimate user capabilities are born. *)
type taint = Cap | Root

let join a b =
  match (a, b) with
  | Some Root, _ | _, Some Root -> Some Root
  | Some Cap, _ | _, Some Cap -> Some Cap
  | None, None -> None

let root_sources = [ [ "Capability"; "root" ]; [ "Kernel"; "root_cap" ] ]
let cap_sources = [ [ "Capability"; "mint" ]; [ "Relocate"; "relocate_cap" ] ]

(* Capability transformers that preserve the argument's authority. The
   absent ones are deliberate: [mint] launders (narrows), [clear_tag]
   kills the taint with the tag. *)
let propagating =
  [
    "with_cursor"; "incr_cursor"; "rebase"; "set_bounds"; "restrict_perms";
    "stamp"; "seal"; "unseal";
  ]

(* OCaml-heap container mutators: a tracked cap in any argument is an
   escape. [r := v] and [ref v] and [a.(i) <- v] (sugar for Array.set)
   are handled structurally in the walk. *)
let sink_targets =
  [
    ([ "Hashtbl"; "add" ], "a Hashtbl");
    ([ "Hashtbl"; "replace" ], "a Hashtbl");
    ([ "Queue"; "add" ], "a Queue");
    ([ "Queue"; "push" ], "a Queue");
    ([ "Stack"; "push" ], "a Stack");
    ([ "Array"; "set" ], "an array");
    ([ "Array"; "unsafe_set" ], "an array");
    ([ "Array"; "fill" ], "an array");
  ]

(* Directories where root-derived authority is finding (c): everything
   above the kernel/mechanism layers. *)
let app_scope path =
  List.exists
    (fun p -> Lint_rules.under p path)
    [ "lib/apps/"; "lib/baselines/"; "lib/workload/"; "bin/"; "bench/" ]

(* {1 Analysis state} *)

type site = { s_file : string; s_line : int; s_col : int }

let site_of (loc : Location.t) file =
  {
    s_file = file;
    s_line = loc.Location.loc_start.Lexing.pos_lnum;
    s_col =
      loc.Location.loc_start.Lexing.pos_cnum
      - loc.Location.loc_start.Lexing.pos_bol;
  }

type fn = {
  f_key : string * string;  (* module, function *)
  f_ctx : Lint_engine.ctx;
  f_modname : string;
  f_bodies : expression list;
  f_discharged : bool;  (* [@@ufork.cap_escape_ok] on the binding *)
  f_site : site;
}

type state = { mutable fns : fn list; mutable anon : int }

let has_attr name attrs =
  List.exists (fun a -> a.attr_name.Location.txt = name) attrs

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Longident.flatten txt)
  | _ -> None

(* Unroll [f @@ x] and [x |> f] so source and sink calls match
   regardless of application style. *)
let rec normalize_apply e =
  match e.pexp_desc with
  | Pexp_apply (op, [ (Asttypes.Nolabel, f); (Asttypes.Nolabel, x) ])
    when ident_path op = Some [ "@@" ] -> (
      match normalize_apply f with
      | Some (fn, args) -> Some (fn, args @ [ (Asttypes.Nolabel, x) ])
      | None -> Some (f, [ (Asttypes.Nolabel, x) ]))
  | Pexp_apply (op, [ (Asttypes.Nolabel, x); (Asttypes.Nolabel, f) ])
    when ident_path op = Some [ "|>" ] -> (
      match normalize_apply f with
      | Some (fn, args) -> Some (fn, args @ [ (Asttypes.Nolabel, x) ])
      | None -> Some (f, [ (Asttypes.Nolabel, x) ]))
  | Pexp_apply (f, args) -> Some (f, args)
  | _ -> None

let rec lambda_bodies e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> lambda_bodies body
  | Pexp_newtype (_, body) -> lambda_bodies body
  | Pexp_function cases ->
      List.concat_map (fun c -> lambda_bodies c.pc_rhs) cases
  | _ -> [ e ]

let nolabel_args args =
  List.filter_map
    (fun (lbl, a) -> if lbl = Asttypes.Nolabel then Some a else None)
    args

(* The (module, function) key a resolved call path summarizes to,
   mirroring lockdep's callee resolution: bare names are self-module
   calls. *)
let callee_of ~modname resolved =
  match List.rev resolved with
  | [ fname ] -> Some (modname, fname)
  | fname :: m :: _ when m <> "" && m.[0] >= 'A' && m.[0] <= 'Z' ->
      Some (m, fname)
  | _ -> None

let matches_any ctx resolved targets =
  List.exists (fun t -> Lint_engine.matches ctx resolved t) targets

let is_relocate_call ctx e =
  match normalize_apply e with
  | Some (f, _) -> (
      match ident_path f with
      | Some p ->
          Lint_engine.matches ctx
            (Lint_engine.resolve ctx p)
            [ "Relocate"; "relocate_cap" ]
      | None -> false)
  | None -> false

(* {1 Taint evaluation}

   [taint_of] computes the taint of an expression's value under an
   environment of let-bound variables, consulting the whole-program
   summary table for calls and for references to module-level
   constants. *)

let rec taint_of sums ctx ~modname env e =
  match normalize_apply e with
  | Some (f, args) -> (
      match ident_path f with
      | Some p -> (
          let resolved = Lint_engine.resolve ctx p in
          if matches_any ctx resolved root_sources then Some Root
          else if matches_any ctx resolved cap_sources then Some Cap
          else if
            matches_any ctx resolved
              [ [ "Capability"; "clear_tag" ] ]
          then None
          else if
            List.exists
              (fun op ->
                matches_any ctx resolved [ [ "Capability"; op ] ])
              propagating
          then
            match nolabel_args args with
            | a :: _ -> taint_of sums ctx ~modname env a
            | [] -> None
          else if resolved = [ "ref" ] || resolved = [ "Stdlib"; "ref" ]
                  || resolved = [ "!" ] then
            match nolabel_args args with
            | a :: _ -> taint_of sums ctx ~modname env a
            | [] -> None
          else
            match callee_of ~modname resolved with
            | Some key -> (
                match Hashtbl.find_opt sums key with
                | Some t -> t
                | None -> None)
            | None -> None)
      | None -> None)
  | None -> (
      match e.pexp_desc with
      | Pexp_ident { txt; _ } -> (
          match Longident.flatten txt with
          | [ x ] -> (
              match List.assoc_opt x env with
              | Some t -> t
              | None -> (
                  match Hashtbl.find_opt sums (modname, x) with
                  | Some t -> t
                  | None -> None))
          | p -> (
              match callee_of ~modname (Lint_engine.resolve ctx p) with
              | Some key -> (
                  match Hashtbl.find_opt sums key with
                  | Some t -> t
                  | None -> None)
              | None -> None))
      | Pexp_field (_, { txt; _ }) -> (
          (* The kernel's own authority store: [t.root]. *)
          match List.rev (Longident.flatten txt) with
          | "root" :: _ -> Some Root
          | _ -> None)
      | Pexp_let (_, vbs, body) ->
          let env = List.fold_left (bind sums ctx ~modname) env vbs in
          taint_of sums ctx ~modname env body
      | Pexp_sequence (_, b) -> taint_of sums ctx ~modname env b
      | Pexp_ifthenelse (_, t, f) ->
          join
            (taint_of sums ctx ~modname env t)
            (Option.fold ~none:None
               ~some:(taint_of sums ctx ~modname env)
               f)
      | Pexp_match (_, cases) | Pexp_try (_, cases) ->
          List.fold_left
            (fun acc c -> join acc (taint_of sums ctx ~modname env c.pc_rhs))
            None cases
      | Pexp_constraint (e, _) | Pexp_open (_, e) | Pexp_letmodule (_, _, e)
        ->
          taint_of sums ctx ~modname env e
      | Pexp_construct (_, Some arg) | Pexp_variant (_, Some arg) ->
          taint_of sums ctx ~modname env arg
      | Pexp_tuple es ->
          List.fold_left
            (fun acc e -> join acc (taint_of sums ctx ~modname env e))
            None es
      | _ -> None)

and bind sums ctx ~modname env vb =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ }
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) ->
      (txt, taint_of sums ctx ~modname env vb.pvb_expr) :: env
  | _ -> env

(* {1 Whole-program summaries}

   Return-value taint per function, to a fixpoint: a function returning
   [Kernel.root_cap k] is itself a root source at every call site. *)

let summaries st =
  let sums : (string * string, taint option) Hashtbl.t = Hashtbl.create 64 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun fn ->
        let t =
          List.fold_left
            (fun acc b ->
              join acc
                (taint_of sums fn.f_ctx ~modname:fn.f_modname [] b))
            None fn.f_bodies
        in
        if Hashtbl.find_opt sums fn.f_key <> Some t then begin
          Hashtbl.replace sums fn.f_key t;
          changed := true
        end)
      st.fns
  done;
  sums

(* {1 The escape walk} *)

let finding ~site ~message =
  {
    Lint_engine.rule = Lint_rules.capflow;
    file = site.s_file;
    line = site.s_line;
    col = site.s_col;
    message;
  }

type report_sink = {
  mutable findings : Lint_engine.finding list;
  (* Discharge sites -> number of findings they shielded; a discharge
     shielding nothing is stale and is itself reported. *)
  discharges : (site, int ref) Hashtbl.t;
}

let report sink ~shields site message =
  if Lint_rules.capflow.Lint_rules.applies site.s_file then
    match shields with
    | shield :: _ -> incr (Hashtbl.find sink.discharges shield)
    | [] -> sink.findings <- finding ~site ~message :: sink.findings

let register_discharge sink site =
  if not (Hashtbl.mem sink.discharges site) then
    Hashtbl.add sink.discharges site (ref 0)

let pp_taint = function Root -> "root-derived" | Cap -> "tracked"

let escape_msg taint where =
  Printf.sprintf
    "%s capability escapes into %s: the §4.2 tag scan only walks pages, \
     so this shadow copy can never be rebased or tag-cleared across fork \
     — store it through Page.store_cap, or discharge a deliberate \
     escape with [@%s]"
    (String.capitalize_ascii (pp_taint taint))
    where escape_attr

let discard_msg =
  "Relocate.relocate_cap result discarded: the rebased capability was \
   computed and dropped, so the stale parent-provenance capability is \
   what the child keeps — store the result back where the original came \
   from"

let root_msg what =
  Printf.sprintf
    "%s hands root-derived authority to application code: the kernel's \
     unbounded capability must stay inside lib/sas — mint a bounded \
     capability instead"
    what

let check_fns st sums =
  let sink = { findings = []; discharges = Hashtbl.create 8 } in
  let check_fn fn =
    let ctx = fn.f_ctx and modname = fn.f_modname in
    let file = ctx.Lint_engine.path in
    let taint env e = taint_of sums ctx ~modname env e in
    let rec walk env shields e =
      let shields =
        if has_attr escape_attr e.pexp_attributes then begin
          let s = site_of e.pexp_loc file in
          register_discharge sink s;
          s :: shields
        end
        else shields
      in
      let esite = site_of e.pexp_loc file in
      let check_store where v =
        match taint env v with
        | Some t -> report sink ~shields esite (escape_msg t where)
        | None -> ()
      in
      match normalize_apply e with
      | Some (f, args) ->
          (match ident_path f with
          | Some p ->
              let resolved = Lint_engine.resolve ctx p in
              let nolabel = nolabel_args args in
              (* (a) heap-container escapes. *)
              if resolved = [ ":=" ] then
                match nolabel with
                | [ _; v ] -> check_store "a ref cell" v
                | _ -> ()
              else if resolved = [ "ref" ] || resolved = [ "Stdlib"; "ref" ]
              then List.iter (check_store "a ref cell") nolabel
              else begin
                List.iter
                  (fun (target, where) ->
                    if Lint_engine.matches ctx resolved target then
                      List.iter (check_store where) nolabel)
                  sink_targets;
                (* (b) discarded relocation. *)
                if
                  (resolved = [ "ignore" ]
                  || resolved = [ "Stdlib"; "ignore" ])
                  && List.exists (is_relocate_call ctx) nolabel
                then report sink ~shields esite discard_msg;
                (* (c) root authority above the kernel layers. *)
                if app_scope file then
                  if matches_any ctx resolved root_sources then
                    report sink ~shields esite
                      (root_msg
                         (String.concat "." p))
                  else
                    match callee_of ~modname resolved with
                    | Some key
                      when Hashtbl.find_opt sums key = Some (Some Root) ->
                        report sink ~shields esite
                          (root_msg (String.concat "." p))
                    | _ -> ()
              end
          | None -> ());
          walk env shields f;
          List.iter (fun (_, a) -> walk env shields a) args
      | None -> (
          match e.pexp_desc with
          | Pexp_setfield (r, _, v) ->
              check_store "a mutable record field" v;
              walk env shields r;
              walk env shields v
          | Pexp_array es ->
              List.iter (check_store "an array") es;
              List.iter (walk env shields) es
          | Pexp_sequence (a, b) ->
              if is_relocate_call ctx a then
                report sink ~shields (site_of a.pexp_loc file) discard_msg;
              walk env shields a;
              walk env shields b
          | Pexp_let (_, vbs, body) ->
              let env' =
                List.fold_left
                  (fun env' vb ->
                    let shields =
                      if has_attr escape_attr vb.pvb_attributes then begin
                        let s = site_of vb.pvb_loc file in
                        register_discharge sink s;
                        s :: shields
                      end
                      else shields
                    in
                    (if vb.pvb_pat.ppat_desc = Ppat_any
                        && is_relocate_call ctx vb.pvb_expr
                     then
                       report sink ~shields
                         (site_of vb.pvb_expr.pexp_loc file)
                         discard_msg);
                    walk env shields vb.pvb_expr;
                    bind sums ctx ~modname env' vb)
                  env vbs
              in
              walk env' shields body
          | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) ->
              walk env shields body
          | Pexp_function cases ->
              List.iter (fun c -> walk env shields c.pc_rhs) cases
          | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
              walk env shields scrut;
              List.iter (fun c -> walk env shields c.pc_rhs) cases
          | Pexp_ifthenelse (c, t, f) ->
              walk env shields c;
              walk env shields t;
              Option.iter (walk env shields) f
          | Pexp_constraint (e, _) | Pexp_open (_, e)
          | Pexp_letmodule (_, _, e) | Pexp_lazy e | Pexp_assert e ->
              walk env shields e
          | Pexp_record (fields, base) ->
              List.iter (fun (_, fe) -> walk env shields fe) fields;
              Option.iter (walk env shields) base
          | Pexp_tuple es -> List.iter (walk env shields) es
          | Pexp_construct (_, arg) | Pexp_variant (_, arg) ->
              Option.iter (walk env shields) arg
          | Pexp_field (e, _) -> walk env shields e
          | _ -> ())
    in
    let shields =
      if fn.f_discharged then begin
        register_discharge sink fn.f_site;
        [ fn.f_site ]
      end
      else []
    in
    List.iter (walk [] shields) fn.f_bodies
  in
  List.iter check_fn st.fns;
  (* The annotations are checked, not trusted: a discharge that shielded
     nothing is dead weight that would silently excuse a future leak. *)
  Hashtbl.iter
    (fun site count ->
      if
        !count = 0
        && Lint_rules.capflow.Lint_rules.applies site.s_file
      then
        sink.findings <-
          finding ~site
            ~message:
              (Printf.sprintf
                 "[@%s] discharges nothing: no capability escape under \
                  this annotation — remove it so it cannot excuse a \
                  future leak"
                 escape_attr)
          :: sink.findings)
    sink.discharges;
  List.sort
    (fun (a : Lint_engine.finding) b ->
      compare (a.file, a.line, a.col) (b.file, b.line, b.col))
    sink.findings

(* {1 Per-file collection} *)

let collect_file st ctx ~modname str =
  let file = ctx.Lint_engine.path in
  let anon_key () =
    st.anon <- st.anon + 1;
    (modname, Printf.sprintf "<capflow-anon-%d>" st.anon)
  in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let key =
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt; _ }
                | Ppat_constraint
                    ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) ->
                    (modname, txt)
                | _ -> anon_key ()
              in
              st.fns <-
                {
                  f_key = key;
                  f_ctx = ctx;
                  f_modname = modname;
                  f_bodies = lambda_bodies vb.pvb_expr;
                  f_discharged = has_attr escape_attr vb.pvb_attributes;
                  f_site = site_of vb.pvb_loc file;
                }
                :: st.fns)
            vbs
      | _ -> ())
    str

(* {1 Entry points} *)

let state_of_sources sources =
  let st = { fns = []; anon = 0 } in
  List.iter
    (fun (path, source) ->
      let ctx =
        {
          Lint_engine.path;
          aliases = [];
          opens = [];
          findings = [];
          has_sort = false;
          order_ok_depth = 0;
        }
      in
      let lexbuf = Lexing.from_string source in
      Lexing.set_filename lexbuf path;
      match Parse.implementation lexbuf with
      | str ->
          Lint_engine.collect_bindings ctx str;
          let modname =
            String.capitalize_ascii
              (Filename.remove_extension (Filename.basename path))
          in
          collect_file st ctx ~modname str
      | exception _ ->
          (* Unparseable files are E0 findings in the main lint pass. *)
          ())
    sources;
  st.fns <- List.rev st.fns;
  st

let analyze_sources sources =
  let st = state_of_sources sources in
  check_fns st (summaries st)

let tree_sources root =
  Lint_engine.tree_files root
  |> List.filter (fun rel -> Filename.check_suffix rel ".ml")
  |> List.map (fun rel ->
         (rel, Lint_engine.read_file (Filename.concat root rel)))

let analyze_tree root = analyze_sources (tree_sources root)
