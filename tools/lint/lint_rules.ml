(* The rule catalogue: stable ids, path scoping, and the qualified names
   each rule bans. The engine (Lint_engine) owns the AST mechanics; this
   module is the policy — what is banned where, and why.

   Paths are repo-relative with '/' separators. A rule [applies] to a
   file when the file is inside the rule's scanned roots and not in one
   of its exempt homes: the exemption is always "the module that owns
   the mechanism", never a blanket opt-out. *)

type t = {
  id : string;  (* stable short id: "D1".."D12", "E0" *)
  name : string;  (* kebab-case slug *)
  severity : string;  (* "critical" | "error" — mirrors Invariant.severity *)
  summary : string;  (* one line, shown next to findings *)
  applies : string -> bool;
}

let under prefix path = String.length path >= String.length prefix
  && String.sub path 0 (String.length prefix) = prefix

(* tools/ is scanned too: the linter self-hosts, so the lint and
   capflow code obeys its own D-rules. *)
let in_scanned path =
  under "lib/" path || under "bin/" path || under "bench/" path
  || under "tools/" path

(* {1 The catalogue} *)

let charging =
  {
    id = "D1";
    name = "charging-discipline";
    severity = "error";
    summary =
      "every cycle charge and counter bump flows through the typed event \
       bus (Trace.emit); direct Engine.advance / interned-id Meter \
       mutation outside lib/sim bypasses the zero-tolerance accounting \
       audit";
    applies = (fun p -> in_scanned p && not (under "lib/sim/" p));
  }

let page_copy =
  {
    id = "D2";
    name = "memops-discipline";
    severity = "error";
    summary =
      "raw Page byte/capability copies belong in lib/mem and Memops \
       (lib/core/memops.ml), the single home for page duplication — a \
       loop elsewhere forgets granule accounting or batched emission";
    applies =
      (fun p ->
        in_scanned p
        && (not (under "lib/mem/" p))
        && p <> "lib/core/memops.ml");
  }

let fork_dup =
  {
    id = "D3";
    name = "fork-spine-discipline";
    severity = "error";
    summary =
      "descriptor-table duplication is part of the shared fork spine \
       (Fork_spine.run); a second Fdtable.dup_all call site is a second \
       fork skeleton growing back";
    applies =
      (fun p ->
        in_scanned p
        && not
             (List.mem p
                [
                  "lib/sas/fdesc.ml"; "lib/sas/kernel.ml";
                  "lib/core/fork_spine.ml";
                ]));
  }

let gauge_key =
  {
    id = "D4";
    name = "gauge-key-constant";
    severity = "error";
    summary =
      "Trace.gauge with an ad-hoc string literal scatters the meter \
       namespace and a typo silently forks the key; declare the key as a \
       named constant in lib/sim or lib/core and reference it";
    applies =
      (fun p ->
        in_scanned p && (not (under "lib/sim/" p))
        && not (under "lib/core/" p));
  }

let wall_clock =
  {
    id = "D5";
    name = "no-wall-clock";
    severity = "error";
    summary =
      "simulation code must be deterministic: wall-clock reads and the \
       global self-seeding Random break golden replay — use Engine time \
       and the seeded Prng";
    applies = in_scanned;
  }

let hashtbl_order =
  {
    id = "D6";
    name = "hashtbl-order";
    severity = "error";
    summary =
      "Hashtbl.iter/fold order is unspecified; results that feed golden \
       traces or exports must be sorted (a List/Array sort in the same \
       top-level definition) or the site marked \
       [@ufork.order_independent]";
    applies = in_scanned;
  }

let poly_compare =
  {
    id = "D7";
    name = "no-poly-compare-identity";
    severity = "error";
    summary =
      "polymorphic compare/(=) on capability values or identity-bearing \
       mutable records (frames, page tables) compares structure, not \
       identity, and breaks when hidden fields change — use \
       Capability.equal, Phys.id, or (==)";
    applies = in_scanned;
  }

let obj_magic =
  {
    id = "D8";
    name = "no-obj";
    severity = "error";
    summary =
      "Obj.* defeats the type system the whole simulation leans on \
       (capability opacity, effect handlers); there is no sound use here";
    applies = in_scanned;
  }

let biglock =
  {
    id = "D9";
    name = "no-biglock";
    severity = "error";
    summary =
      "Kernel.with_biglock is the legacy big-kernel-lock shim, kept only \
       so the nephele baseline can model a BKL; a call site outside the \
       kernel's own syscall plumbing quietly reintroduces the global lock \
       the sharded per-resource locks replaced";
    applies = (fun p -> in_scanned p && p <> "lib/sas/kernel.ml");
  }

let lockdep =
  {
    id = "D10";
    name = "lock-order";
    severity = "critical";
    summary =
      "the interprocedural may-hold-while-acquiring graph over the named \
       kernel locks must match the declared hierarchy (kernel.big > \
       uproc_table > fd_tables > pt_shard > frame_pool > stats) and stay \
       cycle-free, with pt-shard pairs nested in ascending index order; \
       declare new orderings with [@ufork.lock_order \"lock.a < lock.b\"] \
       or discharge chaos code with [@ufork.lockdep_ignore]";
    applies = (fun p -> in_scanned p && not (under "lib/sim/" p));
  }

let string_keyed_emission =
  {
    id = "D11";
    name = "interned-emission";
    severity = "error";
    summary =
      "counter emission is id-keyed: the string-keyed Meter.incr/add/set \
       shim re-hashes its key on every call (and a string-literal \
       Trace.gauge key does the same), which is exactly the per-event \
       cost the interned hot path removed — intern the key once \
       (Meter.intern) at setup, or emit a typed event; reads (Meter.get) \
       stay string-keyed";
    applies = (fun p -> in_scanned p && not (under "lib/sim/" p));
  }

let hb_publish =
  {
    id = "D12";
    name = "hb-publish-discipline";
    severity = "error";
    summary =
      "Hb.emit publishes ordering facts (wake, contend, hand-off, span \
       boundaries) that the race detector, lockdep and the causal \
       analyzer all consume as ground truth; only the mechanism layers \
       (lib/sim, lib/util, lib/sas, lib/mem) may emit — a workload or \
       front-end emission fabricates causal history the analyzers will \
       faithfully mis-report";
    applies =
      (fun p ->
        in_scanned p
        && (not (under "lib/sim/" p))
        && (not (under "lib/util/" p))
        && (not (under "lib/sas/" p))
        && not (under "lib/mem/" p));
  }

let capflow =
  {
    id = "D13";
    name = "cap-escape";
    severity = "critical";
    summary =
      "tracked Capability.t values (Capability.root / mint and \
       Relocate.relocate_cap results, interprocedurally) must not escape \
       into OCaml-heap containers the §4.2 tag scan cannot walk, a \
       relocate_cap result must not be discarded, and root-derived \
       authority must stay below the app/baseline/workload layers; \
       discharge a deliberate escape with [@ufork.cap_escape_ok] — the \
       annotation is checked and must shield a real escape";
    applies = (fun p -> in_scanned p && not (under "lib/cheri/" p));
  }

let parse_error =
  {
    id = "E0";
    name = "parse-error";
    severity = "error";
    summary = "the file does not parse with the pinned compiler front end";
    applies = (fun _ -> true);
  }

let all =
  [
    charging; page_copy; fork_dup; gauge_key; wall_clock; hashtbl_order;
    poly_compare; obj_magic; biglock; lockdep; string_keyed_emission;
    hb_publish; capflow;
  ]

(* {1 Catalogue rendering}

   Shared by both drivers ([ufork_lint --list] and [ufork_sim lint
   --list]) so the rule table cannot drift between them; [--md] emits
   the table DESIGN.md checks in. *)

let print_catalogue ~md () =
  if md then begin
    print_string "| Rule | Name | Severity | What it enforces |\n";
    print_string "|------|------|----------|------------------|\n";
    List.iter
      (fun r ->
        Printf.printf "| %s | `%s` | %s | %s |\n" r.id r.name r.severity
          r.summary)
      all
  end
  else
    List.iter
      (fun r ->
        Printf.printf "%s %-28s [%s] %s\n" r.id r.name r.severity r.summary)
      all
