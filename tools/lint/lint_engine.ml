(* AST-level enforcement of the rule catalogue (Lint_rules).

   Files are parsed with the pinned compiler's own front end
   (compiler-libs), so comments and doc strings are invisible by
   construction — the grep lint's false positives — and module aliases
   and opens are resolved, closing its false negatives: [module E =
   Engine; E.advance n] is a D1 finding, [(* Engine.advance *)] is not.

   Resolution model (deliberately syntactic — no typing pass):
   - module aliases are tracked file-globally and substituted at the
     head of every identifier path, transitively;
   - opens are tracked file-globally; a bare identifier matches a banned
     [M.f] when some open ends in [M];
   - banned names match by path suffix, so [Ufork_sim.Engine.advance]
     and [Engine.advance] are the same name.
   File-global tracking is conservative (a local open taints the whole
   file), which is the right polarity for a linter that must keep the
   tree clean. *)

open Parsetree

type finding = {
  rule : Lint_rules.t;
  file : string;
  line : int;
  col : int;
  message : string;
}

(* {1 Path matching} *)

let ends_with ~suffix path =
  let lp = List.length path and ls = List.length suffix in
  lp >= ls
  && (let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
      drop (lp - ls) path = suffix)

(* {1 Banned-name tables} *)

(* [M.f] pairs each rule bans, matched against resolved paths. *)
let charging_targets =
  [
    [ "Engine"; "advance" ];
    [ "Engine"; "advance_direct" ];
    [ "Meter"; "incr_id" ];
    [ "Meter"; "add_id" ];
    [ "Meter"; "set_id" ];
  ]

(* The string-keyed meter mutators (D11): a registration-time shim, not
   an emission path — every call re-hashes its key. Reads (Meter.get)
   are deliberately absent. *)
let string_keyed_targets =
  [ [ "Meter"; "incr" ]; [ "Meter"; "add" ]; [ "Meter"; "set" ] ]

(* The causal-fact publisher (D12): one banned name, because every
   ordering fact flows through it. Subscribing/reading stays open —
   analyzers and front ends consume anywhere. *)
let hb_publish_targets = [ [ "Hb"; "emit" ] ]

let page_copy_targets = [ [ "Page"; "read_bytes" ]; [ "Page"; "write_bytes" ] ]
let fork_dup_targets = [ [ "Fdtable"; "dup_all" ] ]
let biglock_targets = [ [ "Kernel"; "with_biglock" ] ]

let wall_clock_targets =
  [
    [ "Sys"; "time" ];
    [ "Unix"; "gettimeofday" ];
    [ "Unix"; "time" ];
    [ "Unix"; "localtime" ];
    [ "Random"; "self_init" ];
    [ "Random"; "int" ];
    [ "Random"; "full_int" ];
    [ "Random"; "bits" ];
    [ "Random"; "bool" ];
    [ "Random"; "float" ];
  ]

let hashtbl_iter_targets = [ [ "Hashtbl"; "iter" ]; [ "Hashtbl"; "fold" ] ]

let sort_targets =
  [
    [ "List"; "sort" ];
    [ "List"; "stable_sort" ];
    [ "List"; "fast_sort" ];
    [ "List"; "sort_uniq" ];
    [ "Array"; "sort" ];
    [ "Array"; "stable_sort" ];
    [ "Array"; "fast_sort" ];
  ]

(* Capability operations that yield another capability: comparing their
   results polymorphically compares hidden structure. The scalar
   accessors (base, length, perms, ...) are fine to compare. *)
let cap_returning =
  [
    "root"; "mint"; "with_cursor"; "incr_cursor"; "restrict_perms";
    "set_bounds"; "clear_tag"; "seal"; "unseal"; "invoke"; "rebase";
  ]

(* Record fields that carry identity (mutable, aliased): equality on the
   record is identity confusion. *)
let identity_fields = [ "frame"; "pt" ]

let order_independent_attr = "ufork.order_independent"

(* {1 Per-file analysis} *)

type ctx = {
  path : string;  (* repo-relative, '/' separators *)
  mutable aliases : (string * string list) list;  (* module alias -> path *)
  mutable opens : string list list;  (* resolved opened module paths *)
  mutable findings : finding list;
  (* D6 discharge state: [has_sort] is recomputed per top-level item;
     [order_ok_depth] counts enclosing [@ufork.order_independent]
     markers. *)
  mutable has_sort : bool;
  mutable order_ok_depth : int;
}

let resolve ctx path =
  match path with
  | head :: rest -> (
      match List.assoc_opt head ctx.aliases with
      | Some target -> target @ rest
      | None -> path)
  | [] -> []

let matches ctx path target =
  ends_with ~suffix:target path
  ||
  match (target, path) with
  | [ m; f ], [ f' ] when f = f' ->
      List.exists (fun o -> ends_with ~suffix:[ m ] o) ctx.opens
  | _ -> false

let report ctx (rule : Lint_rules.t) (loc : Location.t) message =
  if rule.Lint_rules.applies ctx.path then
    ctx.findings <-
      {
        rule;
        file = ctx.path;
        line = loc.Location.loc_start.Lexing.pos_lnum;
        col =
          loc.Location.loc_start.Lexing.pos_cnum
          - loc.Location.loc_start.Lexing.pos_bol;
        message;
      }
      :: ctx.findings

let pp_path ppf p =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ".")
    Format.pp_print_string ppf p

let name_of_target t = Format.asprintf "%a" pp_path t

(* The simple "this name is banned here" rules: D1, D2, D3, D5, D8.
   Checked on every identifier, so both calls and first-class uses
   (passing [Engine.advance] to a combinator) are caught. *)
let check_ident ctx loc path =
  let banned rule targets advice =
    List.iter
      (fun t ->
        if matches ctx path t then
          report ctx rule loc
            (Printf.sprintf "%s is off-limits here: %s"
               (name_of_target t) advice))
      targets
  in
  banned Lint_rules.charging charging_targets
    "route the charge through the event bus (Trace.emit)";
  banned Lint_rules.string_keyed_emission string_keyed_targets
    "intern the key once (Meter.intern) and emit through the typed event \
     bus; the string-keyed mutators re-hash per call";
  banned Lint_rules.hb_publish hb_publish_targets
    "only the mechanism layers publish ordering facts; record what \
     happened through their APIs (Sync, Engine, Trace spans) instead of \
     emitting directly";
  banned Lint_rules.page_copy page_copy_targets
    "use Memops.copy_range / Memops.duplicate_frame";
  banned Lint_rules.fork_dup fork_dup_targets
    "fork-path duplication belongs in Fork_spine.run";
  banned Lint_rules.wall_clock wall_clock_targets
    "use Engine.current_time / the seeded Ufork_util.Prng";
  banned Lint_rules.biglock biglock_targets
    "take the sharded lock for the resource instead (Kernel.with_uproc_table \
     / with_fd_tables / with_pt_shard / with_frame_pool / with_stats)";
  if List.length path >= 2 && List.nth path (List.length path - 2) = "Obj" then
    report ctx Lint_rules.obj_magic loc
      (Printf.sprintf "%s: Obj is banned outright" (name_of_target path));
  (* D6: unordered hash iteration, unless discharged. *)
  List.iter
    (fun t ->
      if matches ctx path t && (not ctx.has_sort) && ctx.order_ok_depth = 0
      then
        report ctx Lint_rules.hashtbl_order loc
          (Printf.sprintf
             "%s without a sort in the same definition: order is \
              unspecified — sort the result or mark the site \
              [@%s]"
             (name_of_target t) order_independent_attr))
    hashtbl_iter_targets

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Longident.flatten txt)
  | _ -> None

let is_string_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string _) -> true
  | _ -> false

(* One operand of a polymorphic comparison that carries identity. *)
let rec identity_operand ctx e =
  match e.pexp_desc with
  | Pexp_field (_, { txt; _ }) ->
      let path = Longident.flatten txt in
      if List.exists (fun f -> ends_with ~suffix:[ f ] path) identity_fields
      then Some (Format.asprintf "field .%a" pp_path path)
      else None
  | Pexp_ident { txt; _ } ->
      let path = resolve ctx (Longident.flatten txt) in
      if ends_with ~suffix:[ "Capability"; "null" ] path then
        Some "Capability.null"
      else None
  | Pexp_apply (f, _) -> (
      match ident_path f with
      | Some p -> (
          let p = resolve ctx p in
          match List.rev p with
          | fn :: "Capability" :: _ when List.mem fn cap_returning ->
              Some (Printf.sprintf "Capability.%s ..." fn)
          | _ -> None)
      | None -> None)
  | Pexp_constraint (e, _) -> identity_operand ctx e
  | _ -> None

let poly_compare_name = function
  | [ "=" ] | [ "<>" ] | [ "compare" ]
  | [ "Stdlib"; "=" ] | [ "Stdlib"; "<>" ] | [ "Stdlib"; "compare" ] ->
      true
  | _ -> false

let has_order_attr attrs =
  List.exists
    (fun a -> a.attr_name.Location.txt = order_independent_attr)
    attrs

let check_apply ctx e f args =
  (* D4/D11: Trace.gauge with a literal key. One rule per site: D4
     (namespace discipline) where it applies; D11 (emission interning)
     covers the homes D4 exempts (lib/core declares the key constants
     but must not emit ad-hoc literals either). *)
  (match ident_path f with
  | Some p
    when matches ctx (resolve ctx p) [ "Trace"; "gauge" ]
         && List.exists (fun (_, a) -> is_string_literal a) args ->
      if Lint_rules.gauge_key.Lint_rules.applies ctx.path then
        report ctx Lint_rules.gauge_key e.pexp_loc
          "Trace.gauge with a string-literal key: declare the key as a \
           named constant (like Trace.last_fork_latency_key) and \
           reference it"
      else
        report ctx Lint_rules.string_keyed_emission e.pexp_loc
          "Trace.gauge with a string-literal key: reference a named key \
           constant so the key is interned once, not hashed per emission"
  | _ -> ());
  (* D7: polymorphic comparison with an identity-bearing operand. *)
  match ident_path f with
  | Some p when poly_compare_name (resolve ctx p) -> (
      (* One finding per comparison, even when both operands carry
         identity. *)
      match List.find_map (fun (_, a) -> identity_operand ctx a) args with
      | Some what ->
          report ctx Lint_rules.poly_compare e.pexp_loc
            (Printf.sprintf
               "polymorphic %s on %s compares structure, not identity — \
                use Capability.equal / Phys.id / (==)"
               (String.concat "." p) what)
      | None -> ())
  | _ -> ()

(* {1 The traversal} *)

let iterator ctx =
  let open Ast_iterator in
  let record_module_binding (mb : module_binding) =
    match (mb.pmb_name.Location.txt, mb.pmb_expr.pmod_desc) with
    | Some name, Pmod_ident { txt; _ } ->
        ctx.aliases <-
          (name, resolve ctx (Longident.flatten txt)) :: ctx.aliases
    | _ -> ()
  in
  let record_open (od : open_declaration) =
    match od.popen_expr.pmod_desc with
    | Pmod_ident { txt; _ } ->
        ctx.opens <- resolve ctx (Longident.flatten txt) :: ctx.opens
    | _ -> ()
  in
  {
    default_iterator with
    module_binding =
      (fun it mb ->
        record_module_binding mb;
        default_iterator.module_binding it mb);
    open_declaration =
      (fun it od ->
        record_open od;
        default_iterator.open_declaration it od);
    value_binding =
      (fun it vb ->
        if has_order_attr vb.pvb_attributes then begin
          ctx.order_ok_depth <- ctx.order_ok_depth + 1;
          default_iterator.value_binding it vb;
          ctx.order_ok_depth <- ctx.order_ok_depth - 1
        end
        else default_iterator.value_binding it vb);
    expr =
      (fun it e ->
        let shielded = has_order_attr e.pexp_attributes in
        if shielded then ctx.order_ok_depth <- ctx.order_ok_depth + 1;
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } ->
            check_ident ctx e.pexp_loc (resolve ctx (Longident.flatten txt))
        | Pexp_apply (f, args) -> check_apply ctx e f args
        | _ -> ());
        default_iterator.expr it e;
        if shielded then ctx.order_ok_depth <- ctx.order_ok_depth - 1);
  }

(* Does this top-level item sort anything? If so, its hash folds are
   presumed ordered by that sort (the standard collect-then-sort idiom)
   and D6 is discharged for the whole item. *)
let item_has_sort ctx (item : structure_item) =
  let found = ref false in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } ->
              let p = resolve ctx (Longident.flatten txt) in
              if List.exists (fun t -> matches ctx p t) sort_targets then
                found := true
          | _ -> ());
          default_iterator.expr it e);
    }
  in
  it.structure_item it item;
  !found

(* Aliases and opens are collected file-globally before rule checks run,
   so a [module E = Engine] at the bottom still resolves uses above. *)
let collect_bindings ctx (str : structure) =
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      module_binding =
        (fun it mb ->
          (match (mb.pmb_name.Location.txt, mb.pmb_expr.pmod_desc) with
          | Some name, Pmod_ident { txt; _ } ->
              ctx.aliases <- (name, Longident.flatten txt) :: ctx.aliases
          | _ -> ());
          default_iterator.module_binding it mb);
      open_declaration =
        (fun it od ->
          (match od.popen_expr.pmod_desc with
          | Pmod_ident { txt; _ } ->
              ctx.opens <- Longident.flatten txt :: ctx.opens
          | _ -> ());
          default_iterator.open_declaration it od);
    }
  in
  it.structure it str;
  (* Close alias chains (module A = B; module C = A.Sub). *)
  ctx.aliases <-
    List.map
      (fun (n, p) ->
        let rec close seen p =
          match p with
          | head :: rest when not (List.mem head seen) -> (
              match List.assoc_opt head ctx.aliases with
              | Some target -> close (head :: seen) (target @ rest)
              | None -> p)
          | _ -> p
        in
        (n, close [ n ] p))
      ctx.aliases;
  ctx.opens <- List.map (resolve ctx) ctx.opens

(* {1 Entry points} *)

let lint_structure ctx (str : structure) =
  collect_bindings ctx str;
  let it = iterator ctx in
  List.iter
    (fun item ->
      ctx.has_sort <- item_has_sort ctx item;
      it.Ast_iterator.structure_item it item)
    str

let lint_source ~path ~source =
  let ctx =
    {
      path;
      aliases = [];
      opens = [];
      findings = [];
      has_sort = false;
      order_ok_depth = 0;
    }
  in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  (try
     if Filename.check_suffix path ".mli" then
       (* Interfaces carry no expressions, so no rule can fire — but
          parsing them keeps doc strings and signatures out of the
          matching surface and catches syntax rot. *)
       ignore (Parse.interface lexbuf)
     else lint_structure ctx (Parse.implementation lexbuf)
   with exn ->
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
      | _ -> Printexc.to_string exn
    in
    ctx.findings <-
      {
        rule = Lint_rules.parse_error;
        file = path;
        line = 1;
        col = 0;
        message = msg;
      }
      :: ctx.findings);
  (* Stable order: by position in the file. *)
  List.sort
    (fun a b -> compare (a.line, a.col, a.rule.Lint_rules.id)
                  (b.line, b.col, b.rule.Lint_rules.id))
    ctx.findings

let read_file fn =
  let ic = open_in_bin fn in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ~root rel =
  lint_source ~path:rel ~source:(read_file (Filename.concat root rel))

(* Every .ml/.mli under root/{lib,bin,bench,tools}, repo-relative,
   sorted — tools/ included so the linter self-hosts. *)
let tree_files root =
  let acc = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    if Sys.is_directory abs then
      Array.iter
        (fun entry -> walk (Filename.concat rel entry))
        (Sys.readdir abs)
    else if
      Filename.check_suffix rel ".ml" || Filename.check_suffix rel ".mli"
    then acc := rel :: !acc
  in
  List.iter
    (fun d -> if Sys.file_exists (Filename.concat root d) then walk d)
    [ "lib"; "bin"; "bench"; "tools" ];
  List.sort compare !acc

let lint_tree root =
  List.concat_map (fun rel -> lint_file ~root rel) (tree_files root)

(* {1 Rendering} *)

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s:%s] %s" f.file f.line f.col
    f.rule.Lint_rules.id f.rule.Lint_rules.name f.message

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json findings =
  let item f =
    Printf.sprintf
      "{\"id\":\"%s\",\"name\":\"%s\",\"severity\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\"}"
      f.rule.Lint_rules.id f.rule.Lint_rules.name f.rule.Lint_rules.severity
      (json_escape f.file) f.line f.col (json_escape f.message)
  in
  "[" ^ String.concat "," (List.map item findings) ^ "]"
