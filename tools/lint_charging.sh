#!/usr/bin/env sh
# Discipline lint — thin wrapper over the AST-level linter.
#
# The four grep rules that used to live here (charging, memops, fork
# spine, gauge keys) are now D1-D4 of tools/lint/ufork_lint, which
# parses the sources with the compiler front end: comments and string
# literals are invisible, module aliases and opens are resolved, and
# the catalogue also enforces the determinism rules D5-D8 (wall clock,
# Hashtbl order, polymorphic compare on identity, Obj). Run it directly
# for --json output or a rule listing (--list-rules).
set -eu
cd "$(dirname "$0")/.."

dune build tools/lint/ufork_lint.exe
exec dune exec --no-build tools/lint/ufork_lint.exe -- .
