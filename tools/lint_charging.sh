#!/usr/bin/env sh
# Cost-charging discipline lint.
#
# Every cycle charge and counter bump must flow through the typed event
# bus (Trace.emit in lib/sim): a direct Engine.advance or Meter.incr
# anywhere else bypasses the zero-tolerance accounting audit and the
# sanitizer's invariants. Tests (test/) may exercise the primitives
# directly; production code in lib/ and bin/ may not.
set -eu
cd "$(dirname "$0")/.."

hits=$(grep -rnE '\bEngine\.advance\b|\bMeter\.incr\b' \
  --include='*.ml' --include='*.mli' lib bin | grep -v '^lib/sim/' || true)

if [ -n "$hits" ]; then
  echo "charging lint: Engine.advance / Meter.incr outside lib/sim/ —" >&2
  echo "route the charge through the event bus (Trace.emit):" >&2
  echo "$hits" >&2
  exit 1
fi
echo "charging lint: clean — all charging flows through the event bus"
