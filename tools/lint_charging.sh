#!/usr/bin/env sh
# Cost-charging discipline lint.
#
# Every cycle charge and counter bump must flow through the typed event
# bus (Trace.emit in lib/sim): a direct Engine.advance or Meter.incr
# anywhere else bypasses the zero-tolerance accounting audit and the
# sanitizer's invariants. Tests (test/) may exercise the primitives
# directly; production code in lib/ and bin/ may not.
set -eu
cd "$(dirname "$0")/.."

hits=$(grep -rnE '\bEngine\.advance\b|\bMeter\.incr\b' \
  --include='*.ml' --include='*.mli' lib bin | grep -v '^lib/sim/' || true)

if [ -n "$hits" ]; then
  echo "charging lint: Engine.advance / Meter.incr outside lib/sim/ —" >&2
  echo "route the charge through the event bus (Trace.emit):" >&2
  echo "$hits" >&2
  exit 1
fi

# Physical-page duplication discipline.
#
# Raw byte/capability copy loops over Page outside the memory kit belong
# in Memops (lib/core/memops.ml), the single home for page duplication:
# a loop elsewhere will forget granule accounting or batched event
# emission. lib/mem itself implements Page, and Vas is the user-visible
# load/store path (charged per access by the kernel), so both are exempt.
copy_hits=$(grep -rnE '\bPage\.(read_bytes|write_bytes)\b' \
  --include='*.ml' lib | grep -vE '^lib/(mem|core/memops\.ml)' || true)

if [ -n "$copy_hits" ]; then
  echo "memops lint: raw Page byte copy outside lib/mem / Memops —" >&2
  echo "use Memops.copy_range / Memops.duplicate_frame:" >&2
  echo "$copy_hits" >&2
  exit 1
fi

# File-table duplication discipline.
#
# Fork's descriptor-table duplication is part of the shared fork spine
# (Fork_spine.run); a second dup_all call site is a second fork skeleton
# growing back. The kernel itself may call it for spawn-like paths, and
# lib/sas/fdesc.ml defines it.
dup_hits=$(grep -rnE '\bFdtable\.dup_all\b' \
  --include='*.ml' lib bin \
  | grep -vE '^lib/(sas/(fdesc|kernel)\.ml|core/fork_spine\.ml)' || true)

if [ -n "$dup_hits" ]; then
  echo "fork-spine lint: Fdtable.dup_all outside Fork_spine / kernel —" >&2
  echo "fork-path duplication belongs in Fork_spine.run:" >&2
  echo "$dup_hits" >&2
  exit 1
fi
# Gauge-key discipline.
#
# Trace.gauge with an ad-hoc string literal scatters the namespace of
# the derived meter view: readers (benchmarks, the stats exporter) can
# no longer find the value, and a typo silently forks the key. Gauge
# keys must be declared constants (like Trace.last_fork_latency_key) in
# lib/sim or lib/core, where call sites reference them by name.
gauge_hits=$(grep -rnE 'Trace\.gauge[^"]*"' \
  --include='*.ml' lib bin bench | grep -vE '^lib/(sim|core)/' || true)

if [ -n "$gauge_hits" ]; then
  echo "gauge lint: Trace.gauge with a string-literal key outside" >&2
  echo "lib/sim / lib/core — declare the key as a named constant" >&2
  echo "(like Trace.last_fork_latency_key) and reference it:" >&2
  echo "$gauge_hits" >&2
  exit 1
fi
echo "charging lint: clean — all charging flows through the event bus,"
echo "page duplication through Memops, fork dup through Fork_spine,"
echo "gauge keys are declared constants"
