(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5) and prints paper-vs-measured rows. Run everything:

     dune exec bench/main.exe

   or a single experiment:

     dune exec bench/main.exe -- fig4 fig8

   Available targets: table1 survey fig3 fig4 fig5 fig6 fig7 fig8 fig9
   toctou ablate-proactive ablate-entry ablate-isolation smp bechamel all
   quick (= all with reduced sizes/windows). The smp target sweeps
   --cores-sweep and writes BENCH_smp.json. *)

module Table = Ufork_util.Table
module Stats = Ufork_util.Stats
module Units = Ufork_util.Units
module Config = Ufork_sas.Config
module Strategy = Ufork_core.Strategy
module E = Ufork_workload.Experiments
module Keyspace = Ufork_workload.Keyspace

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let note fmt = Printf.printf fmt

let f1 v = Table.fmt_f ~dec:1 v
let f2 v = Table.fmt_f ~dec:2 v

(* Reduced problem sizes for `quick`. *)
let quick = ref false

(* Domain fan-out for the sweep targets (fig6, redis, smp): each sweep
   point boots its own machine, so E.parmap keeps results bit-identical
   to the serial order whatever this is set to. *)
let jobs = ref 1

let redis_sizes () =
  if !quick then [ ("100 KB", 1, 100 * 1024); ("10 MB", 100, 100 * 1024) ]
  else Keyspace.db_sizes_extended

let window_s () = if !quick then 0.25 else 1.0
let spawn_iters () = if !quick then 200 else 1000
let context1_iters () = if !quick then 20_000 else 100_000

(* ------------------------------------------------------------------ *)
(* Table 1: design-space comparison of SASOS fork systems.             *)

let table1 () =
  section "Table 1: SASOS fork systems (qualitative)";
  Table.print
    ~header:[ "System"; "SAS"; "Isolation"; "SC"; "IPCs"; "Seg"; "f+e only" ]
    [
      [ "Angel"; "Yes"; "Yes"; "Yes"; "Fast"; "Yes"; "No" ];
      [ "Mungi"; "Yes"; "Yes"; "Yes"; "Fast"; "Yes"; "No" ];
      [ "Nephele"; "No"; "Yes"; "No"; "Med"; "No"; "No" ];
      [ "KylinX"; "No"; "Yes"; "No"; "Med"; "No"; "No" ];
      [ "Graphene"; "No"; "Yes"; "No"; "Med"; "No"; "No" ];
      [ "Graphene SGX"; "No"; "Yes"; "No"; "Slow"; "No"; "No" ];
      [ "Iso-Unik"; "No"; "Yes"; "Yes"; "Med"; "No"; "No" ];
      [ "OSv"; "Yes"; "No"; "Yes"; "Fast"; "No"; "Yes" ];
      [ "Junction"; "Yes"; "No"; "No"; "Med"; "No"; "Yes" ];
      [ "uFork (this work)"; "Yes"; "Yes"; "Yes"; "Fast"; "No"; "No" ];
    ]

(* §2.1 survey numbers. *)
let survey () =
  section "Survey (§2.1): fork usage in popular software";
  Table.print
    ~header:[ "Population"; "Sample"; "Using fork" ]
    [
      [ "Most popular C repositories on GitHub"; "50"; "46%" ];
      [ "Most popular Debian packages (popcon)"; "50"; "50%" ];
    ];
  note "Usage patterns: U1 fork+exec, U2 concurrency, U3 privilege\n";
  note "separation, U4 copy-on-write, U5 startup time, U6 daemonize.\n"

(* ------------------------------------------------------------------ *)
(* Fig. 1 and Fig. 2: the design figures, reproduced as live page-state
   walkthroughs on a real forked pair.                                  *)

module Fig12 = struct
  module Addr = Ufork_mem.Addr
  module Pte = Ufork_mem.Pte
  module Page_table = Ufork_mem.Page_table
  module Uproc = Ufork_sas.Uproc
  module Kernel = Ufork_sas.Kernel
  module Api = Ufork_sas.Api
  module Image = Ufork_sas.Image
  module Os = Ufork_core.Os
  module Meter = Ufork_sim.Meter

  let page_state (pte : Pte.t) =
    match pte.Pte.share with
    | Pte.Private -> if pte.Pte.write then "private rw" else "private r-x"
    | Pte.Cow_shared -> "shared CoW (copy on write)"
    | Pte.Copa_shared -> "shared CoPA (copy on write/ptr-load)"
    | Pte.Coa_shared -> "shared CoA (copy on any access)"
    | Pte.Shm_shared -> "shm (deliberately shared)"

  (* Render a region as runs of identical page states. *)
  let region_runs (u : Uproc.t) base bytes =
    let vpn0 = Addr.vpn_of_addr base in
    let count = Addr.bytes_to_pages bytes in
    let states =
      List.init count (fun i ->
          match Page_table.lookup u.Uproc.pt ~vpn:(vpn0 + i) with
          | None -> "unmapped (demand)"
          | Some pte -> page_state pte)
    in
    let rec runs acc current n = function
      | [] -> List.rev ((current, n) :: acc)
      | s :: rest ->
          if s = current then runs acc current (n + 1) rest
          else runs ((current, n) :: acc) s 1 rest
    in
    match states with [] -> [] | s :: rest -> runs [] s 1 rest

  let print_uproc label (u : Uproc.t) =
    note "%s  (area [%#x, +%d MB), pid %d)\n" label u.Uproc.area_base
      (u.Uproc.area_bytes / 1_048_576 |> max 1)
      u.Uproc.pid;
    let r = u.Uproc.regions in
    List.iter
      (fun (name, base, bytes) ->
        let runs = region_runs u base bytes in
        let runs_s =
          String.concat ", "
            (List.map (fun (s, n) -> Printf.sprintf "%d page(s) %s" n s) runs)
        in
        note "  %-6s @%#x: %s\n" name base runs_s)
      [
        ("GOT", r.Uproc.got_base, r.Uproc.got_bytes);
        ("code", r.Uproc.code_base, r.Uproc.code_bytes);
        ("data", r.Uproc.data_base, r.Uproc.data_bytes);
        ("stack", r.Uproc.stack_base, r.Uproc.stack_bytes);
        ("meta", r.Uproc.meta_base, r.Uproc.meta_bytes);
        ("heap", r.Uproc.heap_base, r.Uproc.heap_bytes);
      ]

  (* A small forked pair with a capability-bearing heap, frozen at
     interesting moments. [scenario] drives the child/parent accesses. *)
  let run () =
    let os = Os.boot () in
    let kernel = Os.kernel os in
    let meter = Kernel.meter kernel in
    let child_pid = ref 0 in
    let _ =
      Os.start os
        ~image:
          (Image.make ~code_bytes:(16 * 1024) ~data_bytes:(8 * 1024)
             ~stack_bytes:(16 * 1024) ~heap_bytes:(64 * 1024) "fig")
        (fun api ->
          (* Build state: raw data page + pointer-bearing page. *)
          let data = api.Api.malloc 4096 in
          api.Api.write_bytes data ~off:0 (Bytes.make 64 'd');
          let ptrs = api.Api.malloc 4096 in
          api.Api.store_cap ptrs ~off:0 data;
          api.Api.got_set 0 ptrs;
          api.Api.got_set 1 data;
          let rfd, wfd = api.Api.pipe () in
          let pid =
            api.Api.fork (fun capi ->
                (* Step (1): freeze right after fork. *)
                ignore (capi.Api.read rfd 1);
                (* (B) the child loads a pointer -> that page is copied
                   and the pointer relocated. *)
                let ptrs' = capi.Api.got_get 0 in
                let data' = capi.Api.load_cap ptrs' ~off:0 in
                ignore (capi.Api.read_bytes data' ~off:0 ~len:8);
                ignore (capi.Api.read rfd 1);
                (* (A) the child writes a page. *)
                capi.Api.write_bytes data' ~off:0 (Bytes.make 8 'c');
                ignore (capi.Api.read rfd 1);
                capi.Api.exit 0)
          in
          child_pid := pid;
          let child () = Option.get (Kernel.find_uproc kernel pid) in
          let self () =
            Option.get (Kernel.find_uproc kernel (api.Api.getpid ()))
          in
          note "\n-- (1) right after fork: child mapped onto parent pages --\n";
          print_uproc "PARENT" (self ());
          print_uproc "CHILD " (child ());
          let copies () =
            Meter.get meter "page_copy_child" + Meter.get meter "claim_in_place"
          in
          let c0 = copies () and r0 = Meter.get meter "caps_relocated" in
          ignore (api.Api.write wfd (Bytes.of_string "g"));
          api.Api.sleep 200_000L;
          note
            "\n-- (2) after the child loads a pointer (event B of Fig. 2): \
             %d page copied, %d capability relocated --\n"
            (copies () - c0)
            (Meter.get meter "caps_relocated" - r0);
          print_uproc "CHILD " (child ());
          let c1 = copies () in
          ignore (api.Api.write wfd (Bytes.of_string "g"));
          api.Api.sleep 200_000L;
          note "\n-- (3) after the child writes (event A): %d more copy --\n"
            (copies () - c1);
          (* (C) the parent writes a still-shared page: its own copy. *)
          let cow0 = Meter.get meter "page_copy_cow"
                     + Meter.get meter "cow_claim_in_place" in
          let mine = api.Api.got_get 1 in
          api.Api.write_bytes mine ~off:32 (Bytes.make 8 'p');
          note "-- (4) the parent writes a shared page (event C): %d \
                parent-side CoW resolution --\n"
            (Meter.get meter "page_copy_cow"
            + Meter.get meter "cow_claim_in_place" - cow0);
          ignore (api.Api.write wfd (Bytes.of_string "g"));
          ignore (api.Api.wait ()))
    in
    Os.run os
end

let fig1_fig2 () =
  section "Fig. 1 + Fig. 2: memory layout of uFork and CoPA in operation";
  Fig12.run ();
  note
    "\nFig. 1's (1)/(2): the child starts mapped onto the parent's pages\n\
     and pages with absolute references are copied+relocated on access.\n\
     Fig. 2's events: (A) child write, (B) child pointer load, (C) parent\n\
     write each trigger exactly one copy; GOT and allocator metadata were\n\
     copied proactively at fork.\n"

(* ------------------------------------------------------------------ *)
(* Redis figures.                                                      *)

let redis_rows = ref ([] : E.redis_row list)

let redis_systems =
  [
    E.Ufork Strategy.Copa;
    E.Ufork Strategy.Coa;
    E.Ufork Strategy.Full_copy;
    E.Ufork_toctou Strategy.Copa;
    E.Cheribsd;
    E.Linux_ref;
  ]

let ensure_redis () =
  if !redis_rows = [] then
    redis_rows :=
      E.redis_sweep ~systems:redis_systems ~sizes:(redis_sizes ())
        ~jobs:!jobs ()

let rows_for sys =
  List.filter (fun (r : E.redis_row) -> r.E.system = sys) !redis_rows

let fig3 () =
  ensure_redis ();
  section "Fig. 3: Redis DB overall save times (ms)";
  let labels = List.map (fun (l, _, _) -> l) (redis_sizes ()) in
  let row sys =
    E.system_label sys
    :: List.map
         (fun l ->
           match
             List.find_opt (fun (r : E.redis_row) -> r.E.db_label = l)
               (rows_for sys)
           with
           | Some r -> f1 r.E.save_ms
           | None -> "-")
         labels
  in
  Table.print
    ~header:("System (save ms)" :: labels)
    [ row (E.Ufork Strategy.Copa); row (E.Ufork_toctou Strategy.Copa);
      row E.Cheribsd ];
  note
    "Paper: uFork 1.9x faster than CheriBSD at 100 KB (1.8 vs 3.4 ms),\n\
     1.4x at 100 MB (109 vs 158 ms). All dumps verified: %b\n"
    (List.for_all (fun (r : E.redis_row) -> r.E.dump_ok) !redis_rows)

let fig4 () =
  ensure_redis ();
  section "Fig. 4: Redis fork latency (us)";
  let labels = List.map (fun (l, _, _) -> l) (redis_sizes ()) in
  let row sys =
    E.system_label sys
    :: List.map
         (fun l ->
           match
             List.find_opt (fun (r : E.redis_row) -> r.E.db_label = l)
               (rows_for sys)
           with
           | Some r -> f1 r.E.fork_us
           | None -> "-")
         labels
  in
  Table.print
    ~header:("System (fork us)" :: labels)
    [
      row (E.Ufork Strategy.Copa);
      row (E.Ufork Strategy.Coa);
      row (E.Ufork Strategy.Full_copy);
      row (E.Ufork_toctou Strategy.Copa);
      row E.Cheribsd;
    ];
  (match
     ( List.find_opt (fun (r : E.redis_row) -> r.E.db_label = "100 MB")
         (rows_for (E.Ufork Strategy.Copa)),
       List.find_opt (fun (r : E.redis_row) -> r.E.db_label = "100 MB")
         (rows_for (E.Ufork Strategy.Full_copy)),
       List.find_opt (fun (r : E.redis_row) -> r.E.db_label = "100 MB")
         (rows_for E.Cheribsd) )
   with
  | Some copa, Some full, Some bsd ->
      note
        "Measured at 100 MB: CheriBSD/CoPA = %sx (paper 5-10x); \
         full/CoPA = %sx (paper up to 89x)\n"
        (f1 (bsd.E.fork_us /. copa.E.fork_us))
        (f1 (full.E.fork_us /. copa.E.fork_us))
  | _ -> ());
  note "Paper: CoPA 260 us, CoA 283 us, full copy 23.2 ms at 100 MB;\n\
        TOCTTOU cost 2.6%% at 100 MB.\n"

let fig5 () =
  ensure_redis ();
  section "Fig. 5: Redis forked-process memory (MB)";
  let labels = List.map (fun (l, _, _) -> l) (redis_sizes ()) in
  let row sys =
    E.system_label sys
    :: List.map
         (fun l ->
           match
             List.find_opt (fun (r : E.redis_row) -> r.E.db_label = l)
               (rows_for sys)
           with
           | Some r -> f2 r.E.child_mb
           | None -> "-")
         labels
  in
  Table.print
    ~header:("System (child MB)" :: labels)
    [
      row (E.Ufork Strategy.Copa);
      row (E.Ufork Strategy.Coa);
      row (E.Ufork Strategy.Full_copy);
      row E.Cheribsd;
      row E.Linux_ref;
    ];
  note
    "Paper at 100 MB: CoPA 6, CoA 101, full 144, CheriBSD 56, Linux 7 MB.\n"

(* ------------------------------------------------------------------ *)

let fig6 () =
  section "Fig. 6: FaaS function throughput (functions/s)";
  let systems =
    [ E.Ufork Strategy.Copa; E.Ufork_toctou Strategy.Copa; E.Cheribsd ]
  in
  let cores = [ 1; 2; 3 ] in
  (* Flat (system, cores) points for the domain fan-out, regrouped per
     system below — same row order as the nested serial map. *)
  let points =
    List.concat_map (fun sys -> List.map (fun c -> (sys, c)) cores) systems
  in
  let thr =
    E.parmap ~jobs:!jobs
      (fun (sys, c) ->
        (E.faas_run sys ~worker_cores:c ~window_s:(window_s ()) ())
          .E.throughput_per_s)
      points
  in
  let results =
    List.map
      (fun sys ->
        ( sys,
          List.filter_map
            (fun ((s, _), v) -> if s = sys then Some v else None)
            (List.combine points thr) ))
      systems
  in
  Table.print
    ~header:
      ("System (fn/s)" :: List.map (fun c -> Printf.sprintf "%d cores" c) cores)
    (List.map
       (fun (sys, thr) -> E.system_label sys :: List.map (fun v -> f1 v) thr)
       results);
  (match (List.assoc_opt (E.Ufork Strategy.Copa) results,
          List.assoc_opt E.Cheribsd results) with
  | Some u, Some b ->
      let u3 = List.nth u 2 and b3 = List.nth b 2 in
      note "Measured uFork advantage at 3 cores: +%s%% (paper: +24%%)\n"
        (f1 ((u3 /. b3 -. 1.) *. 100.))
  | _ -> ())

let fig7 () =
  section "Fig. 7: Nginx throughput (requests/s)";
  let w = window_s () in
  let ufork_rows =
    List.map
      (fun workers ->
        let r =
          E.nginx_run (E.Ufork Strategy.Copa) ~cores:1 ~workers ~window_s:w ()
        in
        [ Printf.sprintf "uFork 1 core, %d worker(s)" workers;
          f1 r.E.requests_per_s ])
      [ 1; 2; 3 ]
  in
  let toctou =
    let r =
      E.nginx_run (E.Ufork_toctou Strategy.Copa) ~cores:1 ~workers:3
        ~window_s:w ()
    in
    [ "uFork+TOCTTOU 1 core, 3 workers"; f1 r.E.requests_per_s ]
  in
  let bsd1 = E.nginx_run E.Cheribsd ~cores:1 ~workers:3 ~window_s:w () in
  let bsd3 = E.nginx_run E.Cheribsd ~cores:3 ~workers:3 ~window_s:w () in
  Table.print
    ~header:[ "Configuration"; "req/s" ]
    (ufork_rows
    @ [ toctou;
        [ "CheriBSD 1 core, 3 workers"; f1 bsd1.E.requests_per_s ];
        [ "CheriBSD 3 cores, 3 workers"; f1 bsd3.E.requests_per_s ];
      ]);
  note
    "Paper: +15.6%% for uFork 1->3 workers on one core; uFork +9%% over\n\
     single-core CheriBSD; CheriBSD wins across multiple cores;\n\
     TOCTTOU costs 6.5%%.\n"

let fig8 () =
  section "Fig. 8: hello-world fork latency and per-process memory";
  let rows = E.fig8 () in
  Table.print
    ~header:[ "System"; "fork latency"; "paper"; "child mem (MB)"; "paper" ]
    (List.map
       (fun (r : E.hello_row) ->
         let paper_lat, paper_mem =
           match r.E.system with
           | E.Ufork _ -> ("54 us", "0.13")
           | E.Cheribsd -> ("197 us", "0.29")
           | E.Nephele -> ("10.7 ms", "1.6")
           | E.Ufork_toctou _ | E.Linux_ref -> ("-", "-")
         in
         let lat =
           if r.E.fork_latency_us > 1000. then
             f2 (r.E.fork_latency_us /. 1000.) ^ " ms"
           else f1 r.E.fork_latency_us ^ " us"
         in
         [ E.system_label r.E.system; lat; paper_lat;
           f2 r.E.child_memory_mb; paper_mem ])
       rows)

(* Not a paper figure: Unixbench Pipe, since fast pipes are exactly the
   IPC benefit the paper claims for single address spaces. *)
let pipe_rate system =
  let module Image = Ufork_sas.Image in
  let module Api = Ufork_sas.Api in
  let module Os = Ufork_core.Os in
  let module Mono = Ufork_baselines.Monolithic in
  let module Unixbench = Ufork_apps.Unixbench in
  let iterations = if !quick then 2_000 else 20_000 in
  let out = ref 0. in
  let main api = out := Unixbench.pipe_throughput api ~iterations in
  (match system with
  | `Ufork ->
      let os = Os.boot () in
      ignore (Os.start os ~image:Image.hello main);
      Os.run os
  | `Cheribsd ->
      let os = Mono.boot () in
      ignore (Mono.start os ~image:Image.hello main);
      Mono.run os);
  !out

let fig9 () =
  section "Fig. 9: Unixbench Spawn and Context1";
  let rows = E.fig9 ~spawn_iters:(spawn_iters ()) ~context1_iters:(context1_iters ()) () in
  let scale_s = 1000. /. float_of_int (spawn_iters ()) in
  let scale_c = 100_000. /. float_of_int (context1_iters ()) in
  Table.print
    ~header:
      [ "System"; "Spawn 1000 (ms)"; "paper"; "Context1 100k (ms)"; "paper" ]
    (List.map
       (fun (r : E.unixbench_row) ->
         let paper_s, paper_c =
           match r.E.system with
           | E.Ufork _ -> ("56", "245")
           | E.Cheribsd -> ("198", "419")
           | E.Ufork_toctou _ | E.Nephele | E.Linux_ref -> ("-", "-")
         in
         [ E.system_label r.E.system;
           f1 (r.E.spawn_ms *. scale_s); paper_s;
           f1 (r.E.context1_ms *. scale_c); paper_c ])
       rows);
  note
    "Extra (not in the paper) Unixbench Pipe: uFork %s kloops/s, \
     CheriBSD %s kloops/s\n"
    (f1 (pipe_rate `Ufork /. 1000.))
    (f1 (pipe_rate `Cheribsd /. 1000.))

let toctou () =
  ensure_redis ();
  section "TOCTTOU protection cost (§5.1)";
  let pick sys label =
    List.find_opt (fun (r : E.redis_row) -> r.E.db_label = label)
      (rows_for sys)
  in
  let biggest = List.hd (List.rev (redis_sizes ())) in
  let label, _, _ = biggest in
  (match (pick (E.Ufork Strategy.Copa) label, pick (E.Ufork_toctou Strategy.Copa) label) with
  | Some base, Some prot ->
      note "Redis fork latency at %s: +%s%% (paper: 2.6%% at 100 MB)\n" label
        (f1 ((prot.E.fork_us /. base.E.fork_us -. 1.) *. 100.))
  | _ -> ());
  let u = E.faas_run (E.Ufork Strategy.Copa) ~worker_cores:3 ~window_s:(window_s ()) () in
  let p = E.faas_run (E.Ufork_toctou Strategy.Copa) ~worker_cores:3 ~window_s:(window_s ()) () in
  note "FaaS throughput delta: %s%% (paper: negligible)\n"
    (f1 ((1. -. (p.E.throughput_per_s /. u.E.throughput_per_s)) *. 100.));
  let nu = E.nginx_run (E.Ufork Strategy.Copa) ~cores:1 ~workers:3 ~window_s:(window_s ()) () in
  let np = E.nginx_run (E.Ufork_toctou Strategy.Copa) ~cores:1 ~workers:3 ~window_s:(window_s ()) () in
  note "Nginx throughput cost: %s%% (paper: 6.5%%)\n"
    (f1 ((1. -. (np.E.requests_per_s /. nu.E.requests_per_s)) *. 100.))

let ablations () =
  section "Ablation: proactive GOT/metadata copy at fork";
  List.iter
    (fun (r : E.ablation_row) ->
      note "%-44s %10s %s\n" r.E.label (f1 r.E.value) r.E.unit_)
    (E.ablate_proactive ());
  section "Ablation: sealed-capability vs trap syscall entry (uFork)";
  List.iter
    (fun (r : E.ablation_row) ->
      note "%-44s %10s %s\n" r.E.label (f2 r.E.value) r.E.unit_)
    (E.ablate_syscall_entry ());
  section "Ablation: isolation levels (Redis 10 MB save)";
  List.iter
    (fun (r : E.ablation_row) ->
      note "%-44s %10s %s\n" r.E.label (f1 r.E.value) r.E.unit_)
    (E.ablate_isolation ());
  section "Fragmentation (§6): virtual-arena growth under fork churn";
  List.iter
    (fun (r : E.fragmentation_row) ->
      note "%-16s %4d forks: arena high-water %8s MB, live %8s MB\n"
        r.E.scenario r.E.churn (f2 r.E.arena_mb) (f2 r.E.live_mb))
    (E.ablate_fragmentation ())

(* ------------------------------------------------------------------ *)
(* SMP fork-throughput scaling: per-core run queues, sharded locks and
   IPI-costed shootdown windows, swept across core counts and against
   the big-kernel-lock baseline. Emits BENCH_smp.json. *)

let cores_sweep = ref [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 ]
let smp_out = ref "BENCH_smp.json"
let smp_baseline : string option ref = ref None
let smp_max_regress_pct = ref 15.0
let smp_explain_out : string option ref = ref None

(* Extract `"key": value` from one line of our own smp JSON emitter's
   output (one sweep point per line), returning the raw value text. A
   substring scan is exact against that emitter and avoids growing a
   JSON dependency for a three-field read. *)
let json_field line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat and len = String.length line in
  let rec find i =
    if i + plen > len then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let j = ref start in
      while !j < len && line.[!j] = ' ' do
        incr j
      done;
      let k = ref !j in
      while !k < len && line.[!k] <> ',' && line.[!k] <> '}' do
        incr k
      done;
      if !k > !j then Some (String.trim (String.sub line !j (!k - !j)))
      else None

let unquote s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then String.sub s 1 (n - 2)
  else s

(* (cores, locks, forks_per_s) per sweep point of a previous run's
   BENCH_smp.json — the contention_at_top rows carry no "forks_per_s"
   field, so filtering on that key selects exactly the points. *)
let read_smp_baseline path =
  match open_in path with
  | exception Sys_error msg ->
      Printf.eprintf "smp: cannot read baseline: %s\n" msg;
      exit 2
  | ic ->
      let rec loop acc =
        match input_line ic with
        | exception End_of_file ->
            close_in ic;
            List.rev acc
        | line -> (
            match
              ( json_field line "cores",
                json_field line "locks",
                json_field line "forks_per_s" )
            with
            | Some c, Some l, Some f -> (
                match (int_of_string_opt c, float_of_string_opt f) with
                | Some cores, Some fps ->
                    loop ((cores, unquote l, fps) :: acc)
                | _ -> loop acc)
            | _ -> loop acc)
      in
      loop []

let smp () =
  section "SMP: fork-throughput scaling (sharded locks vs big kernel lock)";
  (* The sweep owns its core counts: a global --cores override would
     collapse every point to one machine size. *)
  E.set_default_cores None;
  let iters = if !quick then 4 else 12 in
  let sys = E.Ufork Strategy.Copa in
  let bkl_config =
    Config.with_lock_mode Config.Big_kernel_lock Config.ufork_fast
  in
  let specs =
    List.concat_map
      (fun cores -> [ (cores, None); (cores, Some bkl_config) ])
      !cores_sweep
  in
  let points =
    E.parmap ~jobs:!jobs
      (fun (cores, config) -> E.fork_storm_run ?config sys ~cores ~iters ())
      specs
  in
  Table.print
    ~header:
      [ "cores"; "locks"; "forks"; "forks/s"; "fault p50 (us)";
        "fault p99 (us)"; "steals" ]
    (List.map
       (fun (r : E.smp_row) ->
         [ string_of_int r.E.cores; r.E.locks; string_of_int r.E.forks;
           Table.fmt_f ~dec:0 r.E.forks_per_s; f2 r.E.fault_p50_us;
           f2 r.E.fault_p99_us; string_of_int r.E.steals ])
       points);
  let find cores locks =
    List.find_opt
      (fun (r : E.smp_row) -> r.E.cores = cores && r.E.locks = locks)
      points
  in
  (match (find 64 "sharded", find 4 "bkl") with
  | Some s64, Some b4 when b4.E.forks_per_s > 0. ->
      note "64-core sharded vs 4-core BKL fork throughput: %sx\n"
        (f1 (s64.E.forks_per_s /. b4.E.forks_per_s))
  | _ -> ());
  (* Regression gate: each sweep point's forks/s against the same
     (cores, locks) point of a committed baseline curve. Points absent
     from the baseline (a widened sweep) pass — only measured
     regressions fail. *)
  (match !smp_baseline with
  | None -> ()
  | Some path ->
      let base = read_smp_baseline path in
      let pct = !smp_max_regress_pct in
      let matched = ref 0 in
      let regressions =
        List.filter_map
          (fun (r : E.smp_row) ->
            match
              List.find_opt
                (fun (c, l, _) -> c = r.E.cores && l = r.E.locks)
                base
            with
            | None -> None
            | Some (_, _, fps0) when fps0 > 0. ->
                incr matched;
                let drop = 100. *. (fps0 -. r.E.forks_per_s) /. fps0 in
                if drop > pct then
                  Some (r.E.cores, r.E.locks, fps0, r.E.forks_per_s, drop)
                else None
            | Some _ -> None)
          points
      in
      note "baseline %s: %d/%d points matched, gate at -%s%%\n" path !matched
        (List.length points) (f1 pct);
      if regressions <> [] then (
        List.iter
          (fun (c, l, fps0, fps1, drop) ->
            Printf.eprintf
              "smp: %d-core %s forks/s regressed %.1f%% (baseline %.0f, \
               measured %.0f, gate %.0f%%)\n"
              c l drop fps0 fps1 pct)
          regressions;
        exit 1));
  (* Where does CoPA fork stop scaling? Rerun the top sweep point alone
     so the process-global lock registry holds exactly that machine's
     locks, then break contention down per resource (ROADMAP item 1).
     --explain-out additionally arms the causal collector on this rerun
     and writes the whole-run critical-path blame. *)
  let module Sync = Ufork_sim.Sync in
  let top = List.fold_left max 1 !cores_sweep in
  Sync.reset_lock_contention ();
  if !smp_explain_out <> None then E.set_causal_trace true;
  ignore (E.fork_storm_run sys ~cores:top ~iters ());
  if !smp_explain_out <> None then E.set_causal_trace false;
  let contention =
    List.filter
      (fun (c : Sync.contention) -> c.Sync.acquires > 0)
      (Sync.lock_contention ())
    |> List.sort (fun (a : Sync.contention) (b : Sync.contention) ->
           match compare b.Sync.waits a.Sync.waits with
           | 0 -> String.compare a.Sync.lock b.Sync.lock
           | c -> c)
  in
  note "\nPer-lock contention at the %d-core sharded point:\n" top;
  Table.print
    ~header:[ "lock"; "acquires"; "waits"; "wait %" ]
    (List.map
       (fun (c : Sync.contention) ->
         [
           c.Sync.lock;
           string_of_int c.Sync.acquires;
           string_of_int c.Sync.waits;
           f1 (100. *. float_of_int c.Sync.waits
              /. float_of_int (max 1 c.Sync.acquires));
         ])
       contention);
  (* Cross-check + export: the causal collector's per-lock wait counts
     and Sync's contention counters observe the same Contend events, so
     they must agree (±5% guards future sampling); then write the
     critical-path blame for the point as JSON. *)
  (match (!smp_explain_out, E.causal_graph ()) with
  | Some path, Some g ->
      let module Causal = Ufork_analysis.Causal in
      let report = Causal.analyze g ~t0:0L ~t1:(Causal.horizon g) () in
      List.iter
        (fun (c : Sync.contention) ->
          if c.Sync.waits > 0 then (
            let causal_waits =
              match
                List.find_opt
                  (fun (n, _, _) -> n = c.Sync.lock)
                  report.Causal.r_lock_waits
              with
              | Some (_, w, _) -> w
              | None -> 0
            in
            let diff = abs (causal_waits - c.Sync.waits) in
            if float_of_int diff > 0.05 *. float_of_int c.Sync.waits then (
              Printf.eprintf
                "smp: causal wait count for %s (%d) diverges >5%% from the \
                 lock counters (%d)\n"
                c.Sync.lock causal_waits c.Sync.waits;
              exit 1)))
        contention;
      E.write_artifact path (fun oc ->
          output_string oc (Causal.to_json report));
      note "wrote %s (critical-path blame at the %d-core point)\n" path top
  | Some path, None ->
      Printf.eprintf "smp: --explain-out %s: no causal graph collected\n" path;
      exit 1
  | None, _ -> ());
  E.write_artifact !smp_out (fun oc ->
  Printf.fprintf oc
    "{\n  \"bench\": \"smp_fork_scaling\",\n  \"system\": %S,\n  \"workload\": \"fork_storm: one forking uproc per core, %d forks each, two-page dirty set\",\n  \"iters_per_forker\": %d,\n  \"points\": [\n%s\n  ],\n  \"contention_at_top\": {\n    \"cores\": %d,\n    \"locks\": [\n%s\n    ]\n  }\n}\n"
    (E.system_label sys) iters iters
    (String.concat ",\n"
       (List.map
          (fun (r : E.smp_row) ->
            Printf.sprintf
              "    {\"cores\": %d, \"locks\": %S, \"forks\": %d, \
               \"forks_per_s\": %.1f, \"fault_p50_us\": %.3f, \
               \"fault_p99_us\": %.3f, \"steals\": %d}"
              r.E.cores r.E.locks r.E.forks r.E.forks_per_s r.E.fault_p50_us
              r.E.fault_p99_us r.E.steals)
          points))
    top
    (String.concat ",\n"
       (List.map
          (fun (c : Sync.contention) ->
            Printf.sprintf
              "      {\"lock\": %S, \"acquires\": %d, \"waits\": %d}"
              c.Sync.lock c.Sync.acquires c.Sync.waits)
          contention)));
  note "wrote %s\n" !smp_out

(* ------------------------------------------------------------------ *)
(* Events: host-side throughput of the charging hot path. Each point is
   an emit-heavy workload; the metric is simulated mechanism events
   (counted by the end-of-run audit via Experiments.emits_total) per
   second of host wall-clock. Tracked PR-over-PR in BENCH_events.json;
   the CI perf-smoke job fails if `--min-events-per-s` undershoots. *)

let events_out = ref "BENCH_events.json"
let min_events_per_s : float option ref = ref None
let events_baseline : float option ref = ref None

(* The pure emit microloop: one μprocess charging fixed-size compute
   slices back to back. Nothing else is runnable, so every slice takes
   Trace.emit's fastest path — this point isolates the per-event cost
   the rest of the suite dilutes with boot, fork and scheduler work.
   Counted directly off the machine's trace (the workload never goes
   through an Experiments runner). *)
let charge_loop ~emits =
  let module Os = Ufork_core.Os in
  let module Kernel = Ufork_sas.Kernel in
  let module Image = Ufork_sas.Image in
  let module Api = Ufork_sas.Api in
  let os =
    Os.boot ~cores:1 ~config:Config.ufork_fast ~strategy:Strategy.Copa ()
  in
  ignore
    (Os.start os ~image:Ufork_sas.Image.hello (fun api ->
         for _ = 1 to emits do
           api.Api.compute 64L
         done));
  Os.run os;
  Ufork_sim.Trace.emits (Kernel.trace (Os.kernel os))

let events () =
  section "Events: simulated mechanism events per host second (hot path)";
  (* Each point returns the number of simulated events it emitted; all
     but the charge loop count via the end-of-run audit hook. *)
  let counted run () =
    E.reset_emits ();
    run ();
    E.emits_total ()
  in
  (* Point weights follow the metric: this suite measures the emit hot
     path, so emit-dense work (the charge loop, unixbench's syscall
     storm) carries most of the wall time, while boot-bound (hello) and
     host-memcpy-bound (redis) workloads ride along as context rows —
     their per-point rates are reported but they are deliberately sized
     not to drown the hot path they barely exercise. *)
  let pts =
    [
      ( "charge-loop 64-cycle slices",
        let n = if !quick then 2_000_000 else 8_000_000 in
        fun () -> charge_loop ~emits:n );
      ( "hello-fork x3 flavours",
        let reps = if !quick then 20 else 300 in
        counted (fun () ->
            for _ = 1 to reps do
              List.iter
                (fun s -> ignore (E.hello_run s))
                [ E.Ufork Strategy.Copa; E.Cheribsd; E.Nephele ]
            done) );
      ( (if !quick then "redis-save 1MB CoPA" else "redis-save 10MB CoPA"),
        let reps = if !quick then 1 else 4 in
        let value_len = if !quick then 10 * 1024 else 100 * 1024 in
        let db_label = if !quick then "1 MB" else "10 MB" in
        counted (fun () ->
            for _ = 1 to reps do
              ignore
                (E.redis_run (E.Ufork Strategy.Copa) ~entries:100 ~value_len
                   ~db_label)
            done) );
      ( "fork-storm 4 cores",
        let iters = if !quick then 100 else 400 in
        counted (fun () ->
            ignore
              (E.fork_storm_run (E.Ufork Strategy.Copa) ~cores:4 ~iters ())) );
      ( "unixbench spawn+context1",
        let sp = spawn_iters () and c1 = context1_iters () in
        counted (fun () ->
            ignore
              (E.unixbench_run (E.Ufork Strategy.Copa) ~spawn_iters:sp
                 ~context1_iters:c1)) );
    ]
  in
  let rows =
    List.map
      (fun (label, run) ->
        let t0 = Monotonic_clock.now () in
        let emits = run () in
        let t1 = Monotonic_clock.now () in
        let wall_s = Int64.to_float (Int64.sub t1 t0) /. 1e9 in
        let eps = if wall_s > 0. then float_of_int emits /. wall_s else 0. in
        (label, emits, wall_s, eps))
      pts
  in
  Table.print
    ~header:[ "point"; "events"; "wall (ms)"; "Mevents/s" ]
    (List.map
       (fun (label, emits, wall_s, eps) ->
         [
           label;
           string_of_int emits;
           f1 (wall_s *. 1e3);
           f2 (eps /. 1e6);
         ])
       rows);
  let total_emits =
    List.fold_left (fun acc (_, e, _, _) -> acc + e) 0 rows
  in
  let total_wall =
    List.fold_left (fun acc (_, _, w, _) -> acc +. w) 0. rows
  in
  let total_eps =
    if total_wall > 0. then float_of_int total_emits /. total_wall else 0.
  in
  note "total: %d events in %s ms = %s Mevents/s\n" total_emits
    (f1 (total_wall *. 1e3))
    (f2 (total_eps /. 1e6));
  (match !events_baseline with
  | Some base when base > 0. ->
      note "vs baseline %s Mevents/s: %sx\n" (f2 (base /. 1e6))
        (f2 (total_eps /. base))
  | Some _ | None -> ());
  E.write_artifact !events_out (fun oc ->
  Printf.fprintf oc
    "{\n  \"bench\": \"events_hot_path\",\n  \"metric\": \"simulated \
     mechanism events per host second (non-recorded path)\",\n  \
     \"quick\": %b,\n  \"points\": [\n%s\n  ],\n  \"total_events\": %d,\n  \
     \"total_wall_ms\": %.1f,\n  \"events_per_s\": %.0f%s\n}\n"
    !quick
    (String.concat ",\n"
       (List.map
          (fun (label, emits, wall_s, eps) ->
            Printf.sprintf
              "    {\"point\": %S, \"events\": %d, \"wall_ms\": %.1f, \
               \"events_per_s\": %.0f}"
              label emits (wall_s *. 1e3) eps)
          rows))
    total_emits (total_wall *. 1e3) total_eps
    (match !events_baseline with
    | Some base when base > 0. ->
        Printf.sprintf
          ",\n  \"baseline_events_per_s\": %.0f,\n  \
           \"speedup_vs_baseline\": %.2f"
          base (total_eps /. base)
    | Some _ | None -> ""));
  note "wrote %s\n" !events_out;
  match !min_events_per_s with
  | Some floor when total_eps < floor ->
      Printf.eprintf
        "events: throughput %.0f events/s below the required floor %.0f\n"
        total_eps floor;
      exit 1
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: host-side cost of the simulator itself —
   one Test.make per figure workload, so simulator regressions show up. *)

let bechamel () =
  section "Bechamel: host-time microbenchmarks of the simulator";
  let open Bechamel in
  let open Toolkit in
  let hello sys = Staged.stage (fun () -> ignore (E.hello_run sys)) in
  let redis_small sys =
    Staged.stage (fun () ->
        ignore
          (E.redis_run sys ~entries:1 ~value_len:(100 * 1024)
             ~db_label:"100 KB"))
  in
  let tests =
    [
      Test.make ~name:"fig8/ufork-hello-fork" (hello (E.Ufork Strategy.Copa));
      Test.make ~name:"fig8/cheribsd-hello-fork" (hello E.Cheribsd);
      Test.make ~name:"fig8/nephele-hello-fork" (hello E.Nephele);
      Test.make ~name:"fig3-5/ufork-redis-100k" (redis_small (E.Ufork Strategy.Copa));
      Test.make ~name:"fig3-5/cheribsd-redis-100k" (redis_small E.Cheribsd);
      Test.make ~name:"fig9/context1-1k"
        (Staged.stage (fun () ->
             ignore (E.fig9 ~spawn_iters:10 ~context1_iters:1000 ())));
      Test.make ~name:"fig6/faas-50ms-window"
        (Staged.stage (fun () ->
             ignore
               (E.faas_run (E.Ufork Strategy.Copa) ~worker_cores:1
                  ~window_s:0.05 ())));
      Test.make ~name:"fig7/nginx-50ms-window"
        (Staged.stage (fun () ->
             ignore
               (E.nginx_run (E.Ufork Strategy.Copa) ~cores:1 ~workers:1
                  ~window_s:0.05 ())));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let instance = Instance.monotonic_clock in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let analysis = Analyze.all ols instance results in
      (* One test per grouped run, so the table has a single entry;
         human-facing bench notes besides, never golden output. *)
      (Hashtbl.iter
         (fun name v ->
           match Analyze.OLS.estimates v with
           | Some [ est ] ->
               note "%-32s %12s ns/run\n" name (Table.fmt_f ~dec:0 est)
           | Some _ | None -> note "%-32s (no estimate)\n" name)
         analysis [@ufork.order_independent]))
    tests

(* ------------------------------------------------------------------ *)

let all () =
  table1 ();
  survey ();
  fig1_fig2 ();
  fig3 ();
  fig4 ();
  fig5 ();
  fig6 ();
  fig7 ();
  fig8 ();
  fig9 ();
  toctou ();
  ablations ();
  smp ()

let run_target = function
  | "table1" -> table1 ()
  | "survey" -> survey ()
  | "fig1" | "fig2" | "fig1-2" -> fig1_fig2 ()
  | "fig3" -> fig3 ()
  | "fig4" -> fig4 ()
  | "fig5" -> fig5 ()
  | "fig6" -> fig6 ()
  | "fig7" -> fig7 ()
  | "fig8" -> fig8 ()
  | "fig9" -> fig9 ()
  | "toctou" -> toctou ()
  | "ablate-proactive" | "ablate-entry" | "ablate-isolation" | "ablations" ->
      ablations ()
  | "smp" -> smp ()
  | "events" -> events ()
  | "bechamel" -> bechamel ()
  | "all" -> all ()
  | other ->
      Printf.eprintf "unknown bench target %S\n" other;
      exit 2

let main targets quick_flag jobs_flag cores sweep smp_out_flag
    smp_baseline_flag max_regress explain_out events_out_flag min_eps baseline
    trace_out profile_out =
  (* "quick" as a positional target is the historic spelling of --quick:
     it sets the flag and is dropped from the target list, so a bare
     `bench quick` runs the full reduced suite rather than nothing. *)
  if quick_flag || List.mem "quick" targets then quick := true;
  jobs := max 1 jobs_flag;
  (match events_out_flag with Some p -> events_out := p | None -> ());
  min_events_per_s := min_eps;
  events_baseline := baseline;
  E.set_default_cores cores;
  (match sweep with
  | Some s ->
      cores_sweep :=
        List.map
          (fun n ->
            match int_of_string_opt (String.trim n) with
            | Some v when v > 0 -> v
            | Some _ | None ->
                Printf.eprintf "bad --cores-sweep entry %S\n" n;
                exit 2)
          (String.split_on_char ',' s)
  | None -> ());
  (match smp_out_flag with Some p -> smp_out := p | None -> ());
  smp_baseline := smp_baseline_flag;
  smp_max_regress_pct := max_regress;
  smp_explain_out := explain_out;
  E.set_trace_out trace_out;
  E.set_profile_out profile_out;
  let targets = List.filter (fun t -> t <> "quick") targets in
  let targets = if targets = [] then [ "all" ] else targets in
  List.iter run_target targets;
  if List.mem "all" targets && not !quick then bechamel ()

let cmd =
  let open Cmdliner in
  let targets =
    let doc =
      "Benchmark targets: table1, survey, fig1-2, fig3..fig9, toctou, \
       ablations, smp, events, bechamel, all (default)."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"TARGET" ~doc)
  in
  let quick_flag =
    let doc = "Shrink iteration counts for a fast smoke run." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let jobs_flag =
    let doc =
      "Run sweep points (fig6, redis figures, smp) on $(docv) OCaml \
       domains. Each point owns its simulated machine, so output is \
       byte-identical to --jobs 1."
    in
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let cores =
    let doc =
      "Boot every simulated machine with $(docv) cores instead of each \
       experiment's default."
    in
    Arg.(value & opt (some int) None & info [ "cores" ] ~docv:"N" ~doc)
  in
  let sweep =
    let doc =
      "Core counts for the $(b,smp) scaling target, comma-separated \
       (default 1,2,4,8,16,32,64,128). Each point runs the fork storm \
       under sharded locks and under the legacy big kernel lock."
    in
    Arg.(
      value & opt (some string) None & info [ "cores-sweep" ] ~docv:"LIST" ~doc)
  in
  let smp_out_flag =
    let doc = "Where the $(b,smp) target writes its JSON curve." in
    Arg.(
      value
      & opt (some string) None
      & info [ "smp-out" ] ~docv:"FILE" ~doc)
  in
  let smp_baseline_flag =
    let doc =
      "Compare the $(b,smp) target's forks/s per (cores, locks) sweep \
       point against a previous run's curve in $(docv) (a committed \
       BENCH_smp.json) and fail (exit 1) on regression beyond \
       $(b,--max-regress-pct) — the CI perf-smoke gate."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "smp-baseline" ] ~docv:"FILE" ~doc)
  in
  let max_regress =
    let doc =
      "Allowed forks/s drop per sweep point, in percent, before \
       $(b,--smp-baseline) fails the run."
    in
    Arg.(
      value & opt float 15.0 & info [ "max-regress-pct" ] ~docv:"PCT" ~doc)
  in
  let explain_out =
    let doc =
      "Arm the causal collector on the $(b,smp) target's top-point rerun \
       and write the whole-run critical-path blame (JSON) to $(docv); \
       fails if the causal per-lock wait counts diverge from the lock \
       contention counters by more than 5%."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "explain-out" ] ~docv:"FILE" ~doc)
  in
  let events_out_flag =
    let doc = "Where the $(b,events) target writes its JSON report." in
    Arg.(
      value
      & opt (some string) None
      & info [ "events-out" ] ~docv:"FILE" ~doc)
  in
  let min_eps =
    let doc =
      "Fail (exit 1) if the $(b,events) target measures fewer simulated \
       events per host second than $(docv) — the CI perf-smoke floor."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "min-events-per-s" ] ~docv:"N" ~doc)
  in
  let baseline =
    let doc =
      "Baseline events-per-second to record (and report the speedup \
       against) in the $(b,events) target's JSON."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "events-baseline" ] ~docv:"N" ~doc)
  in
  let trace_out =
    let doc =
      "Record every mechanism event and write a JSONL trace to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let profile_out =
    let doc =
      "Write folded-stack flamegraph text (span phase attribution across \
       every machine the run boots) to $(docv)."
    in
    Arg.(
      value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE" ~doc)
  in
  let doc = "μFork reproduction benchmark harness" in
  Cmd.v
    (Cmd.info "bench" ~doc)
    Term.(
      const main $ targets $ quick_flag $ jobs_flag $ cores $ sweep
      $ smp_out_flag $ smp_baseline_flag $ max_regress $ explain_out
      $ events_out_flag $ min_eps $ baseline $ trace_out $ profile_out)

let () = exit (Cmdliner.Cmd.eval cmd)
