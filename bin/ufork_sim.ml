(* CLI driver: run individual experiments of the μFork reproduction with
   custom parameters.

     dune exec bin/ufork_sim.exe -- redis --system ufork-copa --mb 10
     dune exec bin/ufork_sim.exe -- hello
     dune exec bin/ufork_sim.exe -- faas --cores 3 --window 0.5
     dune exec bin/ufork_sim.exe -- nginx --workers 3
     dune exec bin/ufork_sim.exe -- unixbench
     dune exec bin/ufork_sim.exe -- meter   # mechanism-event audit *)

open Cmdliner
module Strategy = Ufork_core.Strategy
module E = Ufork_workload.Experiments
module Units = Ufork_util.Units

let system_conv =
  let parse = function
    | "ufork" | "ufork-copa" -> Ok (E.Ufork Strategy.Copa)
    | "ufork-coa" -> Ok (E.Ufork Strategy.Coa)
    | "ufork-full" -> Ok (E.Ufork Strategy.Full_copy)
    | "ufork-toctou" -> Ok (E.Ufork_toctou Strategy.Copa)
    | "cheribsd" -> Ok E.Cheribsd
    | "nephele" -> Ok E.Nephele
    | "linux" -> Ok E.Linux_ref
    | s -> Error (`Msg (Printf.sprintf "unknown system %S" s))
  in
  let print ppf s = Format.pp_print_string ppf (E.system_label s) in
  Arg.conv (parse, print)

let system_arg =
  Arg.(
    value
    & opt system_conv (E.Ufork Strategy.Copa)
    & info [ "system"; "s" ] ~docv:"SYSTEM"
        ~doc:
          "OS to run on: ufork-copa (default), ufork-coa, ufork-full, \
           ufork-toctou, cheribsd, nephele, linux.")

let window_arg =
  Arg.(
    value & opt float 1.0
    & info [ "window"; "w" ] ~docv:"SECONDS"
        ~doc:"Simulated measurement window in seconds.")

(* redis *)
let redis_cmd =
  let mb =
    Arg.(
      value & opt int 10
      & info [ "mb" ] ~docv:"MB" ~doc:"Database size in MB (100 KB entries).")
  in
  let run system mb =
    let value_len = 100 * 1024 in
    let entries = max 1 (mb * 1_000_000 / value_len) in
    let r =
      E.redis_run system ~entries ~value_len
        ~db_label:(Printf.sprintf "%d MB" mb)
    in
    Printf.printf
      "%s, %d MB database:\n\
      \  background save : %.2f ms\n\
      \  fork latency    : %.1f us\n\
      \  snapshot child  : %.2f MB\n\
      \  dump verified   : %b\n"
      (E.system_label system) mb r.E.save_ms r.E.fork_us r.E.child_mb
      r.E.dump_ok
  in
  Cmd.v
    (Cmd.info "redis" ~doc:"Redis BGSAVE experiment (Figs. 3-5)")
    Term.(const run $ system_arg $ mb)

(* hello *)
let hello_cmd =
  let run system =
    let r = E.hello_run system in
    Printf.printf "%s: fork %.1f us, child memory %.2f MB\n"
      (E.system_label r.E.system) r.E.fork_latency_us r.E.child_memory_mb
  in
  Cmd.v
    (Cmd.info "hello" ~doc:"hello-world fork microbenchmark (Fig. 8)")
    Term.(const run $ system_arg)

(* faas *)
let faas_cmd =
  let cores =
    Arg.(
      value & opt int 3
      & info [ "cores" ] ~docv:"N" ~doc:"Worker cores (coordinator extra).")
  in
  let workload =
    Arg.(
      value
      & opt (enum [ ("float", `Float); ("matmul", `Matmul); ("linpack", `Linpack) ]) `Float
      & info [ "workload" ] ~docv:"KIND"
          ~doc:"FunctionBench kernel: float (paper's float_operation), \
                matmul, or linpack.")
  in
  let run system cores window workload =
    let module Mpy = Ufork_apps.Mpy in
    let module Faas = Ufork_apps.Faas in
    let module Os = Ufork_core.Os in
    let module Mono = Ufork_baselines.Monolithic in
    let module Image = Ufork_sas.Image in
    let program, locals, name =
      match workload with
      | `Float -> (Mpy.float_operation ~n:3650, 16, "float_operation")
      | `Matmul -> (Mpy.matmul ~n:10, Mpy.matmul_locals ~n:10, "matmul")
      | `Linpack -> (Mpy.linpack ~n:24, Mpy.linpack_locals ~n:24, "linpack")
    in
    ignore locals;
    (* The coordinator path uses the default locals via Faas; for the
       non-default kernels run through a dedicated loop so locals fit. *)
    match workload with
    | `Float ->
        let r = E.faas_run system ~worker_cores:cores ~window_s:window () in
        Printf.printf "%s, %d worker cores, %s: %.0f functions/s (%d completed)\n"
          (E.system_label system) cores name r.E.throughput_per_s r.E.completed
    | `Matmul | `Linpack ->
        let window_cycles = Units.cycles_of_s window in
        let completed = ref 0 in
        let main api =
          Ufork_apps.Mpy.zygote_init api ~modules:24;
          let t0 = api.Ufork_sas.Api.now () in
          let deadline = Int64.add t0 window_cycles in
          let outstanding = ref 0 in
          while api.Ufork_sas.Api.now () < deadline do
            if !outstanding < cores then begin
              ignore
                (api.Ufork_sas.Api.fork (fun capi ->
                     ignore (Mpy.run capi ~locals program);
                     capi.Ufork_sas.Api.exit 0));
              incr outstanding
            end
            else begin
              let _, st = api.Ufork_sas.Api.wait () in
              decr outstanding;
              if st = 0 && api.Ufork_sas.Api.now () <= deadline then
                incr completed
            end
          done;
          while !outstanding > 0 do
            ignore (api.Ufork_sas.Api.wait ());
            decr outstanding
          done
        in
        (match system with
        | E.Ufork strategy | E.Ufork_toctou strategy ->
            let os = Os.boot ~cores:(cores + 1) ~strategy () in
            ignore (Os.start os ~affinity:0 ~image:Image.micropython main);
            Os.run os
        | E.Cheribsd | E.Linux_ref ->
            let os = Mono.boot ~cores:(cores + 1) () in
            ignore (Mono.start os ~affinity:0 ~image:Image.micropython main);
            Mono.run os
        | E.Nephele ->
            let module Vm = Ufork_baselines.Vmclone in
            let os = Vm.boot ~cores:(cores + 1) () in
            ignore (Vm.start os ~affinity:0 ~image:Image.micropython main);
            Vm.run os);
        Printf.printf "%s, %d worker cores, %s: %.0f functions/s\n"
          (E.system_label system) cores name
          (float_of_int !completed /. window)
  in
  Cmd.v
    (Cmd.info "faas" ~doc:"Zygote FaaS throughput (Fig. 6)")
    Term.(const run $ system_arg $ cores $ window_arg $ workload)

(* nginx *)
let nginx_cmd =
  let workers =
    Arg.(value & opt int 3 & info [ "workers" ] ~docv:"N" ~doc:"Workers.")
  in
  let cores =
    Arg.(value & opt int 1 & info [ "cores" ] ~docv:"N" ~doc:"Cores.")
  in
  let run system workers cores window =
    let r = E.nginx_run system ~cores ~workers ~window_s:window () in
    Printf.printf "%s, %d core(s), %d worker(s): %.0f req/s\n"
      (E.system_label system) cores workers r.E.requests_per_s
  in
  Cmd.v
    (Cmd.info "nginx" ~doc:"Nginx multi-worker throughput (Fig. 7)")
    Term.(const run $ system_arg $ workers $ cores $ window_arg)

(* unixbench *)
let unixbench_cmd =
  let run () =
    List.iter
      (fun (r : E.unixbench_row) ->
        Printf.printf "%-12s Spawn(1000): %.1f ms   Context1(100k): %.1f ms\n"
          (E.system_label r.E.system) r.E.spawn_ms r.E.context1_ms)
      (E.fig9 ())
  in
  Cmd.v
    (Cmd.info "unixbench" ~doc:"Unixbench Spawn and Context1 (Fig. 9)")
    Term.(const run $ const ())

(* meter: run a Redis save and dump every mechanism counter. *)
let meter_cmd =
  let run system =
    let module Kernel = Ufork_sas.Kernel in
    let module Os = Ufork_core.Os in
    let module Mono = Ufork_baselines.Monolithic in
    let module Kvstore = Ufork_apps.Kvstore in
    let module Rdb = Ufork_apps.Rdb in
    let module Keyspace = Ufork_workload.Keyspace in
    let entries = 50 and value_len = 100 * 1024 in
    let image =
      Ufork_sas.Image.redis ~heap_bytes:(entries * value_len * 137 / 100)
    in
    let main api =
      let store = Kvstore.create api ~buckets:1024 () in
      Keyspace.populate store ~entries ~value_len ~seed:1L;
      ignore (Rdb.bgsave api store ~path:"/dump.rdb")
    in
    let kernel =
      match system with
      | E.Ufork strategy | E.Ufork_toctou strategy ->
          let os = Os.boot ~strategy () in
          ignore (Os.start os ~image main);
          Os.run os;
          Os.kernel os
      | E.Cheribsd | E.Linux_ref ->
          let os = Mono.boot () in
          ignore (Mono.start os ~image main);
          Mono.run os;
          Mono.kernel os
      | E.Nephele ->
          let module Vm = Ufork_baselines.Vmclone in
          let os = Vm.boot () in
          ignore (Vm.start os ~image main);
          Vm.run os;
          Vm.kernel os
    in
    Printf.printf "Mechanism events for a 5 MB Redis BGSAVE on %s:\n\n"
      (E.system_label system);
    Format.printf "%a@." Kernel.pp_meter kernel
  in
  Cmd.v
    (Cmd.info "meter"
       ~doc:"Audit the mechanism-event counters behind the numbers")
    Term.(const run $ system_arg)

(* Shared by the trace/check/profile/stats front ends: one small run of
   a representative workload, with its one-line result printed. *)
let small_experiment_arg ~verb =
  Arg.(
    value
    & pos 0
        (enum [ ("hello", `Hello); ("redis", `Redis); ("unixbench", `Unixbench) ])
        `Hello
    & info [] ~docv:"EXPERIMENT"
        ~doc:
          (Printf.sprintf "Experiment to %s: hello (default), redis, or \
                           unixbench." verb))

let run_small_experiment system = function
  | `Hello ->
      let r = E.hello_run system in
      Printf.printf "%s: fork %.1f us, child memory %.2f MB\n"
        (E.system_label r.E.system) r.E.fork_latency_us r.E.child_memory_mb
  | `Redis ->
      let entries = 50 and value_len = 100 * 1024 in
      let r = E.redis_run system ~entries ~value_len ~db_label:"5 MB" in
      Printf.printf "%s: save %.2f ms, fork %.1f us\n" (E.system_label system)
        r.E.save_ms r.E.fork_us
  | `Unixbench ->
      let r = E.unixbench_run system ~spawn_iters:50 ~context1_iters:500 in
      Printf.printf "%s: Spawn(50) %.2f ms, Context1(500) %.2f ms\n"
        (E.system_label system) r.E.spawn_ms r.E.context1_ms

(* trace: run an experiment with the event bus recording and write the
   trace out as JSONL (one record per line) or a Chrome about:tracing
   file. *)
let trace_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "trace-out"; "o" ] ~docv:"FILE"
          ~doc:"Write the recorded event trace to $(docv).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("jsonl", E.Jsonl); ("chrome", E.Chrome) ]) E.Jsonl
      & info [ "format"; "f" ] ~docv:"FMT"
          ~doc:
            "Trace encoding: jsonl (default; one JSON record per line) or \
             chrome (load in chrome://tracing or Perfetto).")
  in
  let experiment = small_experiment_arg ~verb:"trace" in
  let run system out format experiment =
    E.set_trace_out ~format (Some out);
    Fun.protect
      ~finally:(fun () -> E.set_trace_out None)
      (fun () -> run_small_experiment system experiment);
    (* Ring overflow, if any, was reported to stderr by the flush (the
       JSONL header line carries the same count). *)
    Printf.printf "trace written to %s\n" out
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run an experiment with mechanism-event recording on and write \
          the trace to a file")
    Term.(const run $ system_arg $ out $ format $ experiment)

(* check: run a workload with the machine-state sanitizer and trace
   linter armed; exit non-zero on any invariant violation. *)
let check_cmd =
  let experiment =
    Arg.(
      value
      & pos 0
          (enum
             [
               ("hello", `Hello); ("redis", `Redis);
               ("unixbench", `Unixbench); ("storm", `Storm);
             ])
          `Hello
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "Workload to check: hello (default), redis, unixbench, or \
             storm (one concurrent forker per core — the SMP lock-contention \
             workload).")
  in
  let check_cores =
    Arg.(
      value
      & opt (some int) None
      & info [ "cores" ] ~docv:"N"
          ~doc:
            "Core count to boot the checked machine with (default: the \
             workload's own, typically 4). The race job sweeps this to 64.")
  in
  let race =
    Arg.(
      value & flag
      & info [ "race" ]
          ~doc:
            "Also arm the happens-before race detector: flag conflicting \
             shared-state writes with no ordering edge (invariant R1).")
  in
  let chaos_no_bkl =
    Arg.(
      value & flag
      & info [ "chaos-no-bkl" ]
          ~doc:
            "Fault injection: disable the big kernel lock and seed one \
             deliberate unlocked shared-state write. With $(b,--race) the \
             check must fail with R1.")
  in
  let chaos_unshard =
    Arg.(
      value & flag
      & info [ "chaos-unshard" ]
          ~doc:
            "Fault injection: disable exactly one sharded kernel lock (the \
             stats shard guarding the fork-latency gauge), seeding nothing \
             else. Under the $(b,storm) workload with $(b,--race) the check \
             must fail with exactly one R1 — the control certifying the \
             detector sees through the lock split.")
  in
  let lockdep =
    Arg.(
      value & flag
      & info [ "lockdep" ]
          ~doc:
            "Also arm the runtime lock-order checker: build the \
             acquisition graph from the lock instrumentation and flag \
             cycles or descending pt-shard nestings (invariant R2).")
  in
  let chaos_invert_shard_order =
    Arg.(
      value & flag
      & info [ "chaos-invert-shard-order" ]
          ~doc:
            "Fault injection: spawn one rogue thread that acquires a \
             page-table shard pair in descending index order. With \
             $(b,--lockdep) the check must fail with exactly R2 — the \
             control certifying the order checker is live.")
  in
  let capflow =
    Arg.(
      value & flag
      & info [ "capflow" ]
          ~doc:
            "Also arm the capability-provenance taint checker: every \
             tagged capability reachable in a μprocess's pages must carry \
             that μprocess's provenance — rebased or freshly minted for \
             it, never the kernel root's (invariant R4). Checked on the \
             capability store/load stream, at every fork completion, and \
             in the final state sweep.")
  in
  let chaos_skip_rebase =
    Arg.(
      value & flag
      & info [ "chaos-skip-rebase" ]
          ~doc:
            "Fault injection: the next fork silently skips the rebase of \
             one capability, leaving a parent-provenance capability in \
             the child's pages. With $(b,--capflow) the check must fail \
             with exactly R4 at the fork window's closing edge.")
  in
  let chaos_heap_smuggle =
    Arg.(
      value & flag
      & info [ "chaos-heap-smuggle" ]
          ~doc:
            "Fault injection: the next fork carries one parent capability \
             across in an OCaml-heap cell — invisible to the tag scan and \
             discharged from the static rule D13 — and raw-stores it into \
             the child. Only the runtime side can catch it: with \
             $(b,--capflow) the check must fail with exactly R4.")
  in
  let chaos_leak_root =
    Arg.(
      value & flag
      & info [ "chaos-leak-root" ]
          ~doc:
            "Fault injection: a rogue boot thread stores the kernel's \
             root capability into a running μprocess's GOT. With \
             $(b,--capflow) the check must fail with exactly R4 (root \
             provenance reachable from user pages).")
  in
  let run system experiment check_cores race chaos_no_bkl chaos_unshard
      lockdep chaos_invert_shard_order capflow chaos_skip_rebase
      chaos_heap_smuggle chaos_leak_root =
    let module Checker = Ufork_analysis.Checker in
    (* Record the event stream even without a trace sink so the protocol
       linter (L1-L5) has something to replay; the state sweep (S1-S10)
       and the cycle-accounting audit run at the end of every machine's
       run regardless. *)
    E.set_record_always true;
    E.set_race_detect race;
    E.set_lockdep_detect lockdep;
    E.set_chaos_no_bkl chaos_no_bkl;
    E.set_chaos_unshard chaos_unshard;
    E.set_chaos_invert_shard_order chaos_invert_shard_order;
    E.set_capflow_detect capflow;
    E.set_chaos_skip_rebase chaos_skip_rebase;
    E.set_chaos_heap_smuggle chaos_heap_smuggle;
    E.set_chaos_leak_root chaos_leak_root;
    E.set_default_cores check_cores;
    let name =
      match experiment with
      | `Hello -> "hello"
      | `Redis -> "redis"
      | `Unixbench -> "unixbench"
      | `Storm -> "storm"
    in
    (try
       match experiment with
       | `Hello -> ignore (E.hello_run system)
       | `Redis ->
           ignore
             (E.redis_run system ~entries:50 ~value_len:(100 * 1024)
                ~db_label:"5 MB")
       | `Unixbench ->
           ignore (E.unixbench_run system ~spawn_iters:50 ~context1_iters:500)
       | `Storm ->
           let cores = Option.value check_cores ~default:4 in
           ignore (E.fork_storm_run system ~cores ~iters:4 ())
     with
    | Checker.Unsafe report ->
        Printf.eprintf "check %s on %s: FAILED\n%s\n" name
          (E.system_label system) report;
        exit 1
    | Ufork_sim.Trace.Audit_failure msg ->
        Printf.eprintf "check %s on %s: accounting audit FAILED: %s\n" name
          (E.system_label system) msg;
        exit 1);
    Printf.printf
      "check %s on %s: clean — state invariants S1-S11, protocol rules \
       L1-L5%s%s%s, cycle accounting\n"
      name (E.system_label system)
      (if race then ", race detection R1" else "")
      (if lockdep then ", lock-order R2" else "")
      (if capflow then ", cap-provenance R4" else "")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run a workload under the machine-state sanitizer and trace \
          protocol linter; non-zero exit on any violation")
    Term.(
      const run $ system_arg $ experiment $ check_cores $ race $ chaos_no_bkl
      $ chaos_unshard $ lockdep $ chaos_invert_shard_order $ capflow
      $ chaos_skip_rebase $ chaos_heap_smuggle $ chaos_leak_root)

(* explain: run a workload with the causal collector armed, then compute
   and report the critical path of a fork window (or any interval) —
   what bounded wall time, which spans it ran through, and which lock
   waits it crossed. *)
let explain_cmd =
  let module Causal = Ufork_analysis.Causal in
  let module Invariant = Ufork_analysis.Invariant in
  let experiment =
    Arg.(
      value
      & pos 0
          (enum
             [
               ("hello", `Hello); ("redis", `Redis);
               ("unixbench", `Unixbench); ("storm", `Storm);
             ])
          `Redis
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "Workload to explain: redis (default), hello, unixbench, or \
             storm (one concurrent forker per core).")
  in
  let cores =
    Arg.(
      value
      & opt (some int) None
      & info [ "cores" ] ~docv:"N"
          ~doc:"Core count to boot with (default: the workload's own).")
  in
  let fork_n =
    Arg.(
      value
      & opt (some int) None
      & info [ "fork" ] ~docv:"N"
          ~doc:
            "Analyze the $(docv)th completed fork window (\"fork\" span \
             open to close, anchored at the forker). Default 0 unless \
             $(b,--interval) or $(b,--chaos-stall-shard) is given.")
  in
  let interval =
    let interval_conv =
      let parse s =
        match String.index_opt s ':' with
        | Some i -> (
            let a = String.sub s 0 i
            and b = String.sub s (i + 1) (String.length s - i - 1) in
            match (Int64.of_string_opt a, Int64.of_string_opt b) with
            | Some a, Some b when Int64.compare a b <= 0 -> Ok (a, b)
            | _ -> Error (`Msg (Printf.sprintf "bad interval %S" s)))
        | None -> Error (`Msg (Printf.sprintf "bad interval %S (want A:B)" s))
      in
      let print ppf (a, b) = Format.fprintf ppf "%Ld:%Ld" a b in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt (some interval_conv) None
      & info [ "interval" ] ~docv:"A:B"
          ~doc:
            "Analyze the cycle interval [$(docv)] instead of a fork \
             window (anchor picked automatically).")
  in
  let top =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"K"
          ~doc:"Report the top $(docv) wait chains (default 5).")
  in
  let dot_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:"Write the critical path as a Graphviz digraph to $(docv).")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the full analysis (segments, blame, chains, \
                per-lock waits) as JSON to $(docv).")
  in
  let chrome_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-out" ] ~docv:"FILE"
          ~doc:
            "Write the critical path as a Chrome about:tracing / \
             Perfetto JSON file to $(docv).")
  in
  let chaos_stall =
    Arg.(
      value & flag
      & info [ "chaos-stall-shard" ]
          ~doc:
            "Fault injection: a rogue boot thread holds page-table shard \
             0 across a long sleep. The analysis (whole run by default) \
             must then report that lock as the dominant critical-path \
             edge and the command exits non-zero with R3 — the control \
             certifying the analyzer is live.")
  in
  let run system experiment cores fork_n interval top dot_out json_out
      chrome_out chaos_stall =
    let module Checker = Ufork_analysis.Checker in
    E.set_causal_trace true;
    E.set_chaos_stall_shard chaos_stall;
    E.set_default_cores cores;
    Fun.protect
      ~finally:(fun () ->
        E.set_causal_trace false;
        E.set_chaos_stall_shard false;
        E.set_default_cores None)
      (fun () ->
        (try
           match experiment with
           | `Hello -> ignore (E.hello_run system)
           | `Redis ->
               ignore
                 (E.redis_run system ~entries:50 ~value_len:(100 * 1024)
                    ~db_label:"5 MB")
           | `Unixbench ->
               ignore
                 (E.unixbench_run system ~spawn_iters:50 ~context1_iters:500)
           | `Storm ->
               let cores = Option.value cores ~default:4 in
               ignore (E.fork_storm_run system ~cores ~iters:4 ())
         with Checker.Unsafe report ->
           Printf.eprintf "explain: workload failed its safety check\n%s\n"
             report;
           exit 1);
        let g =
          match E.causal_graph () with
          | Some g -> g
          | None ->
              Printf.eprintf "explain: no causal graph collected\n";
              exit 1
        in
        let report =
          try
            match (interval, fork_n, chaos_stall) with
            | Some (a, b), _, _ -> Causal.analyze g ~t0:a ~t1:b ()
            | None, Some n, _ -> Causal.analyze_fork g n
            | None, None, true ->
                (* Whole run: the injected stall must dominate no matter
                   where the fork windows sit. *)
                Causal.analyze g ~t0:0L ~t1:(Causal.horizon g) ()
            | None, None, false -> Causal.analyze_fork g 0
          with
          | Causal.Audit_failure msg ->
              Printf.eprintf "explain: path audit FAILED: %s\n" msg;
              exit 1
          | Invalid_argument msg ->
              Printf.eprintf "explain: %s\n" msg;
              exit 1
        in
        Format.printf "%a@." (Causal.pp_report ~top) report;
        Option.iter
          (fun path ->
            E.write_artifact path (fun oc ->
                output_string oc (Causal.to_dot report));
            Printf.printf "dot graph written to %s\n" path)
          dot_out;
        Option.iter
          (fun path ->
            E.write_artifact path (fun oc ->
                output_string oc (Causal.to_json report));
            Printf.printf "analysis JSON written to %s\n" path)
          json_out;
        Option.iter
          (fun path ->
            E.write_artifact path (fun oc ->
                output_string oc (Causal.to_chrome report));
            Printf.printf "chrome trace written to %s\n" path)
          chrome_out;
        if chaos_stall then begin
          let wall = Int64.sub report.Causal.r_t1 report.Causal.r_t0 in
          match Causal.dominant_lock report with
          | Some (lock, cycles)
            when Int64.compare wall 0L > 0
                 && Int64.to_float cycles /. Int64.to_float wall >= 0.2 ->
              let v =
                {
                  Invariant.invariant = Invariant.Lock_stall;
                  subject = lock;
                  detail =
                    Printf.sprintf
                      "wait edges on %s account for %Ld of %Ld \
                       critical-path cycles (%.1f%%) — a single lock \
                       dominates the path"
                      lock cycles wall
                      (100. *. Int64.to_float cycles /. Int64.to_float wall);
                }
              in
              Printf.eprintf "explain: FAILED\n%s\n"
                (Invariant.report [ v ]);
              exit 1
          | Some _ | None ->
              (* The injection did not surface: a broken analyzer. CI
                 runs this as a must-fail control, so a clean exit here
                 is the caught regression. *)
              Printf.printf
                "chaos stall injected but no dominant wait edge found\n"
        end)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Run a workload with the causal collector armed and report why \
          a fork window (or any interval) took as long as it did: the \
          weighted critical path, span-level blame, and the top lock \
          wait chains")
    Term.(
      const run $ system_arg $ experiment $ cores $ fork_n $ interval $ top
      $ dot_out $ json_out $ chrome_out $ chaos_stall)

(* profile: run an experiment with span attribution and print/export the
   folded-stack flamegraph plus per-span latency histograms. *)
let profile_cmd =
  let module Trace = Ufork_sim.Trace in
  let module Histogram = Ufork_sim.Histogram in
  let flame_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "flame-out"; "o" ] ~docv:"FILE"
          ~doc:
            "Write the folded flamegraph stacks to $(docv) instead of \
             stdout (feed to flamegraph.pl or inferno-flamegraph).")
  in
  let experiment = small_experiment_arg ~verb:"profile" in
  let run system flame_out experiment =
    E.set_collect_profiles true;
    Fun.protect
      ~finally:(fun () -> E.set_collect_profiles false)
      (fun () ->
        run_small_experiment system experiment;
        let traces = E.profiled_traces () in
        let folded =
          String.concat "" (List.map Trace.folded_stacks traces)
        in
        if String.trim folded = "" then begin
          Printf.eprintf "profile: no cycles attributed (empty flamegraph)\n";
          exit 1
        end;
        (match flame_out with
        | Some path ->
            E.write_artifact path (fun oc -> output_string oc folded);
            Printf.printf "flamegraph stacks written to %s\n" path
        | None ->
            print_newline ();
            print_string folded);
        (* Merge each span name's duration histogram across the machines
           this experiment booted (comparative runs boot several). *)
        let merged = Hashtbl.create 16 in
        List.iter
          (fun tr ->
            List.iter
              (fun (name, h) ->
                Hashtbl.replace merged name
                  (match Hashtbl.find_opt merged name with
                  | Some prev -> Histogram.merge prev h
                  | None -> h))
              (Trace.span_histograms tr))
          traces;
        let rows =
          List.sort compare
            (Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged [])
        in
        Printf.printf "\n%-24s %8s %12s %12s %12s %12s\n" "span" "count"
          "p50(us)" "p90(us)" "p99(us)" "max(us)";
        List.iter
          (fun (name, h) ->
            let us q = Units.us_of_cycles (Histogram.quantile h q) in
            Printf.printf "%-24s %8d %12.2f %12.2f %12.2f %12.2f\n" name
              (Histogram.count h) (us 0.5) (us 0.9) (us 0.99)
              (Units.us_of_cycles (Histogram.max_value h)))
          rows)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run an experiment with phase-attribution spans and emit a \
          folded-stack flamegraph plus per-span latency histograms \
          (p50/p90/p99/max)")
    Term.(const run $ system_arg $ flame_out $ experiment)

(* stats: run an experiment with virtual-time gauge sampling and dump a
   Prometheus-style snapshot plus the time series as CSV. *)
let stats_cmd =
  let module Trace = Ufork_sim.Trace in
  let interval =
    Arg.(
      value & opt int 250_000
      & info [ "interval"; "i" ] ~docv:"CYCLES"
          ~doc:
            "Gauge-sampling interval in simulated cycles (default 250000 \
             = 100 us at the simulated 2.5 GHz clock).")
  in
  let csv_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv-out" ] ~docv:"FILE"
          ~doc:
            "Write the sampled time series as CSV to $(docv) (one block \
             per booted machine, blocks separated by a blank line).")
  in
  let experiment = small_experiment_arg ~verb:"sample" in
  let run system interval csv_out experiment =
    if interval <= 0 then begin
      Printf.eprintf "stats: --interval must be positive\n";
      exit 1
    end;
    E.set_collect_profiles true;
    E.set_sample_interval (Some (Int64.of_int interval));
    Ufork_sim.Sync.reset_lock_contention ();
    Fun.protect
      ~finally:(fun () ->
        E.set_collect_profiles false;
        E.set_sample_interval None)
      (fun () ->
        run_small_experiment system experiment;
        let traces = E.profiled_traces () in
        print_newline ();
        List.iter (fun tr -> print_string (Trace.to_prometheus_string tr)) traces;
        (* Per-lock contention counters from every machine this run
           booted, in the same Prometheus text format. *)
        print_string (Ufork_sim.Sync.lock_contention_prometheus ());
        match csv_out with
        | None -> ()
        | Some path ->
            E.write_artifact path (fun oc ->
                List.iteri
                  (fun i tr ->
                    if i > 0 then output_char oc '\n';
                    output_string oc (Trace.samples_csv tr))
                  traces);
            let samples =
              List.fold_left
                (fun acc tr -> acc + List.length (Trace.samples tr))
                0 traces
            in
            Printf.printf "%d sample(s) written to %s\n" samples path)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run an experiment with virtual-time gauge sampling (frames in \
          use, CoW-pending pages, per-process RSS) and dump a \
          Prometheus-style snapshot plus the time series as CSV")
    Term.(const run $ system_arg $ interval $ csv_out $ experiment)

(* ablate *)
let ablate_cmd =
  let run () =
    let show (r : E.ablation_row) =
      Printf.printf "  %-46s %10.2f %s\n" r.E.label r.E.value r.E.unit_
    in
    print_endline "Proactive GOT/metadata copy:";
    List.iter show (E.ablate_proactive ());
    print_endline "Sealed vs trap syscall entry:";
    List.iter show (E.ablate_syscall_entry ());
    print_endline "Isolation levels (Redis 10 MB save):";
    List.iter show (E.ablate_isolation ());
    print_endline "Fragmentation (virtual-arena growth under churn):";
    List.iter
      (fun (r : E.fragmentation_row) ->
        Printf.printf "  %-16s %4d forks: arena %8.2f MB, live %8.2f MB\n"
          r.E.scenario r.E.churn r.E.arena_mb r.E.live_mb)
      (E.ablate_fragmentation ())
  in
  Cmd.v
    (Cmd.info "ablate" ~doc:"Design-choice ablations beyond the paper")
    Term.(const run $ const ())

(* lint: the AST-level discipline linter over the simulator's own
   sources, exposed as a subcommand so one binary carries both the
   dynamic checks (check) and the static ones. *)
let lint_cmd =
  let module Rules = Ufork_lint_core.Lint_rules in
  let module Lint = Ufork_lint_core.Lint_engine in
  let module Lockdep = Ufork_lint_core.Lockdep in
  let module Capflow = Ufork_lint_core.Capflow in
  let root =
    Arg.(
      value & pos 0 dir "."
      & info [] ~docv:"ROOT"
          ~doc:
            "Repository root to lint; scans every .ml/.mli under \
             $(docv)/lib, $(docv)/bin, $(docv)/bench and $(docv)/tools.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit findings as a JSON array on stdout.")
  in
  let list_rules =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:
            "Print the rule catalogue (id, severity, one-line description) \
             and exit.")
  in
  let md =
    Arg.(
      value & flag
      & info [ "md" ]
          ~doc:
            "With $(b,--list): emit the catalogue as a markdown table (the \
             one checked into DESIGN.md).")
  in
  let lock_graph =
    Arg.(
      value
      & opt (some (enum [ ("dot", `Dot); ("json", `Json) ])) None
      & info [ "lock-graph" ] ~docv:"FMT"
          ~doc:
            "Instead of linting, export the lock-order graph inferred by \
             the D10 analysis — hierarchy, inferred and declared edges — \
             as $(docv): dot (Graphviz) or json.")
  in
  let run root json list_rules md lock_graph =
    if list_rules then begin
      Rules.print_catalogue ~md ();
      exit 0
    end;
    (match lock_graph with
    | Some fmt ->
        let g = Lockdep.graph_of_tree root in
        print_string
          (match fmt with
          | `Dot -> Lockdep.to_dot g
          | `Json -> Lockdep.to_json g);
        exit 0
    | None -> ());
    let findings =
      List.sort
        (fun (a : Lint.finding) b ->
          compare (a.Lint.file, a.Lint.line, a.Lint.col)
            (b.Lint.file, b.Lint.line, b.Lint.col))
        (Lint.lint_tree root @ Lockdep.analyze_tree root
        @ Capflow.analyze_tree root)
    in
    if json then print_endline (Lint.to_json findings)
    else begin
      List.iter (fun f -> Format.printf "%a@." Lint.pp_finding f) findings;
      if findings = [] then
        Printf.printf
          "lint: clean — %d rules (D1-D13) over lib/, bin/, bench/, tools/ \
           (%d files)\n"
          (List.length Rules.all)
          (List.length (Lint.tree_files root))
    end;
    if findings <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically lint the simulator sources against the discipline \
          catalogue (charging, memops, fork spine, gauge keys, \
          determinism, lock order); non-zero exit on any finding")
    Term.(const run $ root $ json $ list_rules $ md $ lock_graph)

let default =
  Term.(
    ret
      (const (fun () -> `Help (`Pager, None)) $ const ()))

let () =
  let info =
    Cmd.info "ufork_sim" ~version:"1.0"
      ~doc:
        "Simulation-based reproduction of uFork (SOSP 2025): POSIX fork \
         within a single-address-space OS"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            redis_cmd; hello_cmd; faas_cmd; nginx_cmd; unixbench_cmd;
            meter_cmd; trace_cmd; check_cmd; explain_cmd; lint_cmd;
            profile_cmd; stats_cmd; ablate_cmd;
          ]))
