(* Privilege separation (U3, §3.6): the qmail-style pattern where fork
   isolates an untrusted parser from a trusted core. The untrusted worker
   receives raw input over a pipe, parses it, and publishes sanitized
   records through a shared-memory segment; CHERI confinement means even
   a compromised worker cannot reach the trusted process's heap, and a
   misbehaving one is killed.

     dune exec examples/privsep_pipeline.exe *)

module Api = Ufork_sas.Api
module Config = Ufork_sas.Config
module Image = Ufork_sas.Image
module Os = Ufork_core.Os
module Capability = Ufork_cheri.Capability

(* Records are fixed 64-byte slots in the shared segment:
   [0..8) sequence number | [8..16) payload length | [16..) payload. *)
let slot_size = 64
let slots = 16
let shm_bytes = slots * slot_size

let parse_request raw =
  (* The "untrusted" parsing: validate and canonicalize a MAIL FROM line. *)
  match String.index_opt raw '<' with
  | Some i -> (
      match String.index_from_opt raw i '>' with
      | Some j when j > i + 1 -> Some (String.sub raw (i + 1) (j - i - 1))
      | Some _ | None -> None)
  | None -> None

let untrusted_worker (api : Api.t) ~input_fd ~seg =
  let seq = ref 0 in
  let publish addr =
    if String.length addr < slot_size - 16 then begin
      let off = !seq mod slots * slot_size in
      api.Api.write_u64 seg ~off:(off + 8) (Int64.of_int (String.length addr));
      api.Api.write_bytes seg ~off:(off + 16) (Bytes.of_string addr);
      (* Publish last: the sequence number commits the slot. *)
      incr seq;
      api.Api.write_u64 seg ~off (Int64.of_int !seq)
    end
  in
  (* Requests are newline-framed on the pipe. *)
  let pending = Buffer.create 256 in
  let rec drain_lines () =
    match String.index_opt (Buffer.contents pending) '\n' with
    | None -> ()
    | Some i ->
        let line = String.sub (Buffer.contents pending) 0 i in
        let rest =
          String.sub (Buffer.contents pending) (i + 1)
            (Buffer.length pending - i - 1)
        in
        Buffer.clear pending;
        Buffer.add_string pending rest;
        (match parse_request line with
        | Some addr -> publish addr
        | None -> () (* malformed input is simply dropped *));
        drain_lines ()
  in
  let rec loop () =
    let chunk = api.Api.read input_fd 128 in
    if Bytes.length chunk > 0 then begin
      Buffer.add_bytes pending chunk;
      drain_lines ();
      loop ()
    end
  in
  loop ();
  api.Api.exit 0

let () =
  (* Full isolation: this is exactly the adversarial threat model the
     paper keeps the expensive checks on for. *)
  let os = Os.boot ~config:Config.ufork_default () in
  let _ =
    Os.start os ~image:Image.nginx (fun api ->
        let seg = api.Api.shm_open "/records" shm_bytes in
        let secret = api.Api.malloc 64 in
        api.Api.write_bytes secret ~off:0 (Bytes.of_string "trusted-key");
        let rfd, wfd = api.Api.pipe () in
        let worker =
          api.Api.fork (fun capi ->
              (* fd hygiene: the worker drops its inherited copy of the
                 write end so EOF can ever arrive. *)
              capi.Api.close wfd;
              let seg' = capi.Api.reloc seg in
              (* Demonstrate confinement: the worker cannot reach the
                 trusted process's secret, even via the raw capability it
                 inherited lexically. *)
              (match capi.Api.read_bytes secret ~off:0 ~len:11 with
              | _ -> print_endline "worker: !! read the trusted secret"
              | exception Capability.Violation _ ->
                  print_endline
                    "worker: confined (cannot touch trusted memory)");
              untrusted_worker capi ~input_fd:rfd ~seg:seg')
        in
        (* Feed it a mix of valid and hostile input. *)
        let inputs =
          [
            "MAIL FROM:<alice@example.org>";
            "MAIL FROM:<bob@unikraft.io>";
            "MAIL FROM: garbage without brackets";
            "MAIL FROM:<carol@cheri.dev>";
          ]
        in
        List.iter
          (fun line ->
            ignore (api.Api.write wfd (Bytes.of_string (line ^ "\n"))))
          inputs;
        (* Trusted side: poll the segment for committed records. *)
        let deadline = Int64.add (api.Api.now ()) 2_500_000L in
        let printed = ref 0 in
        while !printed < 3 && api.Api.now () < deadline do
          api.Api.compute 1000L;
          for slot = 0 to slots - 1 do
            let off = slot * slot_size in
            let seq = Int64.to_int (api.Api.read_u64 seg ~off) in
            if seq = !printed + 1 then begin
              let len = Int64.to_int (api.Api.read_u64 seg ~off:(off + 8)) in
              let addr =
                Bytes.to_string (api.Api.read_bytes seg ~off:(off + 16) ~len)
              in
              Printf.printf "trusted: accepted sender #%d %S\n" seq addr;
              incr printed
            end
          done
        done;
        (* Shut the worker down: close its input; if it lingers, kill. *)
        api.Api.close wfd;
        (try api.Api.kill worker with Api.Sys_error _ -> () (* already gone *));
        let _pid, status = api.Api.wait () in
        Printf.printf "trusted: worker retired (status %d)\n" status;
        Printf.printf
          "secret still intact: %S\n"
          (Bytes.to_string (api.Api.read_bytes secret ~off:0 ~len:11)))
  in
  Os.run os;
  print_newline ();
  print_endline
    "fork gave us a qmail-style privilege boundary (U3): the parser runs";
  print_endline
    "with capabilities confined to its own uprocess area; only the shared";
  print_endline "segment and the pipe cross the boundary."
