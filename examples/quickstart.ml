(* Quickstart: boot a μFork system, fork a μprocess, observe relocation
   and isolation.

     dune exec examples/quickstart.exe *)

module Api = Ufork_sas.Api
module Image = Ufork_sas.Image
module Os = Ufork_core.Os
module Capability = Ufork_cheri.Capability
module Units = Ufork_util.Units

let () =
  (* A 4-core Morello-like machine running the single-address-space OS
     with μFork's Copy-on-Pointer-Access strategy. *)
  let os = Os.boot () in

  let _init =
    Os.start os ~image:Image.hello (fun api ->
        (* Allocate memory in the simulated tagged heap and build a tiny
           pointer graph: GOT slot 0 -> header -> payload. *)
        let payload = api.Api.malloc 64 in
        api.Api.write_bytes payload ~off:0 (Bytes.of_string "hello from parent");
        let header = api.Api.malloc 32 in
        api.Api.store_cap header ~off:0 payload;
        api.Api.got_set 0 header;

        Printf.printf "parent: pid=%d header at %#x\n" (api.Api.getpid ())
          (Capability.base header);

        (* fork: the child gets a relocated copy-on-pointer-access view of
           everything. *)
        let t0 = api.Api.now () in
        let child =
          api.Api.fork (fun capi ->
              let header' = capi.Api.got_get 0 in
              let payload' = capi.Api.load_cap header' ~off:0 in
              let text =
                Bytes.to_string (capi.Api.read_bytes payload' ~off:0 ~len:17)
              in
              Printf.printf
                "child:  pid=%d header at %#x (relocated: %b) reads %S\n"
                (capi.Api.getpid ())
                (Capability.base header')
                (Capability.base header' <> Capability.base header)
                text;
              (* The child's writes stay private. *)
              capi.Api.write_bytes payload' ~off:0
                (Bytes.of_string "child was here!!!");
              capi.Api.exit 0)
        in
        let latency = Int64.sub (api.Api.now ()) t0 in
        let _pid, status = api.Api.wait () in
        let mine =
          Bytes.to_string (api.Api.read_bytes payload ~off:0 ~len:17)
        in
        Printf.printf
          "parent: fork of pid %d took %.1f us, exit status %d\n" child
          (Units.us_of_cycles latency) status;
        Printf.printf "parent: my payload is still %S\n" mine)
  in
  Os.run os
