(* Zygote FaaS worker warm-up (U2 + U5, §5.1): a MicroPython-like runtime
   is initialized once, then every request forks the warm Zygote.

     dune exec examples/faas_zygote.exe *)

module Image = Ufork_sas.Image
module Os = Ufork_core.Os
module Strategy = Ufork_core.Strategy
module Monolithic = Ufork_baselines.Monolithic
module Mpy = Ufork_apps.Mpy
module Faas = Ufork_apps.Faas
module Units = Ufork_util.Units

let window_s = 0.5
let program = Mpy.float_operation ~n:3650

let on_ufork worker_cores =
  let os = Os.boot ~cores:(worker_cores + 1) ~strategy:Strategy.Copa () in
  let out = ref None in
  let _ =
    Os.start os ~affinity:0 ~image:Image.micropython (fun api ->
        out :=
          Some
            (Faas.coordinator api ~max_workers:worker_cores
               ~window_cycles:(Units.cycles_of_s window_s)
               ~program))
  in
  Os.run os;
  Option.get !out

let on_cheribsd worker_cores =
  let os = Monolithic.boot ~cores:(worker_cores + 1) () in
  let out = ref None in
  let _ =
    Monolithic.start os ~affinity:0 ~image:Image.micropython (fun api ->
        out :=
          Some
            (Faas.coordinator api ~max_workers:worker_cores
               ~window_cycles:(Units.cycles_of_s window_s)
               ~program))
  in
  Monolithic.run os;
  Option.get !out

let () =
  Printf.printf
    "FaaS Zygote: one coordinator core forking float_operation workers\n";
  Printf.printf "(~%.0f us of interpreter work per function)\n\n"
    (Units.us_of_cycles (Mpy.estimated_cycles program));
  Printf.printf "%-8s %16s %16s %10s\n" "cores" "uFork (fn/s)" "CheriBSD (fn/s)"
    "advantage";
  List.iter
    (fun cores ->
      let u = on_ufork cores and b = on_cheribsd cores in
      Printf.printf "%-8d %16.0f %16.0f %9.1f%%\n" cores
        u.Faas.throughput_per_s b.Faas.throughput_per_s
        ((u.Faas.throughput_per_s /. b.Faas.throughput_per_s -. 1.) *. 100.))
    [ 1; 2; 3 ];
  print_newline ();
  Printf.printf
    "Function throughput is fork-bound: uFork's %s lower fork latency\n\
     turns directly into served requests (Fig. 6; paper reports +24%%).\n"
    "~3.7x"
