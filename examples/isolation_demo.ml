(* Isolation in μFork (§3.6, §4.3, §4.4): what CHERI confinement actually
   stops, and what the parameterized isolation levels change.

     dune exec examples/isolation_demo.exe *)

module Api = Ufork_sas.Api
module Config = Ufork_sas.Config
module Image = Ufork_sas.Image
module Os = Ufork_core.Os
module Fork = Ufork_core.Fork
module Capability = Ufork_cheri.Capability
module Perms = Ufork_cheri.Perms
module Otype = Ufork_cheri.Otype

let attempt name f =
  match f () with
  | () -> Printf.printf "  %-52s ALLOWED\n" name
  | exception Capability.Violation msg ->
      Printf.printf "  %-52s BLOCKED (capability: %s)\n" name
        (String.sub msg 0 (min 40 (String.length msg)))
  | exception Fork.Segfault _ ->
      Printf.printf "  %-52s BLOCKED (segfault)\n" name
  | exception Api.Sys_error e ->
      Printf.printf "  %-52s BLOCKED (%s)\n" name e

let scenario ~isolation_label ~config =
  Printf.printf "\n--- %s ---\n" isolation_label;
  let os = Os.boot ~config () in
  let _ =
    Os.start os ~image:Image.hello (fun api ->
        let mine = api.Api.malloc 64 in
        api.Api.write_bytes mine ~off:0 (Bytes.of_string "secret");
        api.Api.got_set 0 mine;
        ignore
          (api.Api.fork (fun capi ->
               (* 1. In-bounds access to the child's own (copied) data. *)
               attempt "child reads its own relocated data" (fun () ->
                   ignore
                     (capi.Api.read_bytes (capi.Api.got_get 0) ~off:0 ~len:6));
               (* 2. Overrun beyond the block's bounds. *)
               attempt "child overruns its block bounds" (fun () ->
                   ignore
                     (capi.Api.read_bytes (capi.Api.got_get 0) ~off:0 ~len:4096));
               (* 3. Reaching directly into the parent's area via a raw
                     (unrelocated) capability from fork time. *)
               attempt "child dereferences raw parent capability" (fun () ->
                   ignore (capi.Api.read_bytes mine ~off:0 ~len:6));
               (* 4. Widening a capability (monotonicity). *)
               attempt "child widens its capability bounds" (fun () ->
                   let c = capi.Api.got_get 0 in
                   ignore
                     (Capability.set_bounds c ~base:(Capability.base c)
                        ~length:(Capability.length c * 16)));
               (* 5. Privileged operation: user PCC has no System bit, so a
                     sealed-entry-only kernel cannot be entered elsewhere. *)
               attempt "child forges a syscall entry capability" (fun () ->
                   let c = capi.Api.got_get 0 in
                   ignore (Capability.seal ~authority:c c Otype.syscall_entry));
               capi.Api.exit 0));
        ignore (api.Api.wait ()))
  in
  Os.run os

let () =
  Printf.printf
    "What a forked uprocess can and cannot do under each isolation level\n";
  scenario ~isolation_label:"Full isolation + TOCTTOU (qmail-style, U3)"
    ~config:Config.ufork_default;
  scenario ~isolation_label:"Fault isolation (nginx-style, U2)"
    ~config:Config.ufork_fast;
  scenario
    ~isolation_label:"No isolation (trusted snapshot workloads, U4)"
    ~config:(Config.with_isolation Config.No_isolation Config.ufork_fast);
  print_newline ();
  Printf.printf
    "Note how disabling isolation hands out address-space-wide\n\
     capabilities: the raw parent pointer dereference is ALLOWED there —\n\
     the classic single-trust-domain unikernel model (R4).\n"
