(* Nginx multi-worker deployments (U2, §5.1): the master forks workers
   that inherit the listen socket; on one core, extra workers overlap each
   other's network waits.

     dune exec examples/nginx_workers.exe *)

module Image = Ufork_sas.Image
module Kernel = Ufork_sas.Kernel
module Uproc = Ufork_sas.Uproc
module Fdesc = Ufork_sas.Fdesc
module Os = Ufork_core.Os
module Httpd = Ufork_apps.Httpd
module Units = Ufork_util.Units

let window_s = 0.5

let run_ufork ~workers =
  let os = Os.boot ~cores:1 () in
  Httpd.populate_docroot (Kernel.vfs (Os.kernel os));
  let net = Httpd.Net.create () in
  let window = Units.cycles_of_s window_s in
  let u =
    Os.start os ~image:Image.nginx (fun api ->
        Httpd.master api ~net ~listen_rfd:3 ~listen_wfd:4 ~workers
          ~window_cycles:window)
  in
  (* Socket activation: the master starts with the listen pipe already
     open as fds 3/4; the workers inherit them through fork. *)
  let p = Httpd.Net.listen_pipe net in
  ignore (Fdesc.Fdtable.alloc u.Uproc.fds (Fdesc.Pipe_read p));
  ignore (Fdesc.Fdtable.alloc u.Uproc.fds (Fdesc.Pipe_write p));
  Httpd.Net.spawn_clients (Os.engine os) net ~connections:16
    ~window_cycles:window;
  Os.run os;
  float_of_int (Httpd.Net.stats net).Httpd.Net.completed /. window_s

let () =
  Printf.printf "Nginx on uFork, one core, wrk-style closed-loop load\n\n";
  let base = run_ufork ~workers:1 in
  Printf.printf "%-10s %12s %10s\n" "workers" "req/s" "vs 1 worker";
  List.iter
    (fun workers ->
      let thr = run_ufork ~workers in
      Printf.printf "%-10d %12.0f %9.1f%%\n" workers thr
        ((thr /. base -. 1.) *. 100.))
    [ 1; 2; 3 ];
  print_newline ();
  Printf.printf
    "Workers yield the core while waiting for send completions, so more\n\
     workers raise single-core throughput (Fig. 7; paper: +15.6%%).\n"
