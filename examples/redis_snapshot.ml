(* Redis background snapshots (the U4 copy-on-write pattern, §5.1):
   populate a store, BGSAVE it on μFork and on the CheriBSD-like baseline,
   and show latency, memory and the verified dump.

     dune exec examples/redis_snapshot.exe *)

module Api = Ufork_sas.Api
module Image = Ufork_sas.Image
module Kernel = Ufork_sas.Kernel
module Uproc = Ufork_sas.Uproc
module Vfs = Ufork_sas.Vfs
module Os = Ufork_core.Os
module Strategy = Ufork_core.Strategy
module Monolithic = Ufork_baselines.Monolithic
module Kvstore = Ufork_apps.Kvstore
module Rdb = Ufork_apps.Rdb
module Keyspace = Ufork_workload.Keyspace
module Units = Ufork_util.Units

let entries = 100
let value_len = 100 * 1024 (* 100 KB entries, as in the paper *)

let scenario name kernel start run =
  let result = ref None in
  let image = Image.redis ~heap_bytes:(entries * value_len * 137 / 100) in
  start ~image (fun api ->
      let store = Kvstore.create api ~buckets:1024 () in
      Keyspace.populate store ~entries ~value_len ~seed:7L;
      let r = Rdb.bgsave api store ~path:"/dump.rdb" in
      result := Some r);
  run ();
  match !result with
  | None -> failwith "save did not complete"
  | Some r ->
      let dump = Vfs.contents (Kernel.vfs kernel) "/dump.rdb" in
      let parsed = Rdb.load_count dump in
      let child_mb =
        match Kernel.find_uproc kernel r.Rdb.child_pid with
        | Some u -> Units.mb_of_bytes u.Uproc.private_bytes
        | None -> nan
      in
      Printf.printf
        "%-22s fork %8.1f us | save %8.2f ms | snapshot child %6.2f MB | \
         dump: %d entries, checksum OK\n"
        name
        (Units.us_of_cycles r.Rdb.fork_latency_cycles)
        (Units.ms_of_cycles r.Rdb.total_cycles)
        child_mb parsed

let () =
  Printf.printf "Redis snapshot of a %d MB database (%d x %d KB entries)\n\n"
    (entries * value_len / 1_000_000)
    entries (value_len / 1024);
  List.iter
    (fun strategy ->
      let os = Os.boot ~strategy () in
      scenario
        (Printf.sprintf "uFork/%s" (Strategy.to_string strategy))
        (Os.kernel os)
        (fun ~image main -> ignore (Os.start os ~image main))
        (fun () -> Os.run os))
    Strategy.all;
  let os = Monolithic.boot () in
  scenario "CheriBSD (baseline)" (Monolithic.kernel os)
    (fun ~image main -> ignore (Monolithic.start os ~image main))
    (fun () -> Monolithic.run os);
  print_newline ();
  Printf.printf
    "CoPA copies only the pages the child loads capabilities from; the\n\
     bulk value bytes stay shared with the serving parent (Fig. 4/5).\n"
