type t = int

let empty = 0
let load = 1
let store = 2
let execute = 4
let load_cap = 8
let store_cap = 16
let system = 32
let seal = 64
let unseal = 128
let global = 256
let mask = 511
let all = mask

let union a b = a lor b
let intersect a b = a land b
let remove a b = a land lnot b land mask
let has p q = p land q = q
let is_subset ~sub ~super = sub land super = sub
let equal (a : t) b = a = b

let user_data = load lor store lor load_cap lor store_cap lor global
let user_code = load lor execute lor global

let names =
  [
    (load, "ld");
    (store, "st");
    (execute, "x");
    (load_cap, "ldc");
    (store_cap, "stc");
    (system, "sys");
    (seal, "sl");
    (unseal, "us");
    (global, "g");
  ]

let pp ppf t =
  let present = List.filter_map (fun (b, n) -> if has t b then Some n else None) names in
  Format.fprintf ppf "[%s]" (String.concat " " present)

let to_int t = t
let of_int i = i land mask
