(** CHERI capabilities (simulated).

    A capability is an unforgeable, bounded, permissioned reference to a
    range of the single virtual address space. This module enforces the
    architectural rules μFork depends on (§2.4, §4.2–4.4):

    - {b Monotonicity}: bounds and permissions of a derived capability can
      only shrink. Attempting to widen raises {!Violation}.
    - {b Sealing}: a sealed capability cannot be dereferenced or modified;
      it can only be unsealed by an authority of matching object type.
    - {b Tags}: a capability is valid only while its tag is set; the tag is
      cleared by any illegitimate manipulation. Tag propagation through
      memory is implemented by {!Ufork_mem.Page}.

    Addresses are plain [int]s (the simulated 64-bit virtual address space
    comfortably fits OCaml's 63-bit ints). *)

type addr = int

exception Violation of string
(** Raised on any operation the CHERI architecture would fault on:
    widening bounds, adding permissions, dereferencing a sealed or untagged
    capability, out-of-bounds access, missing permission. *)

type t

(** {1 Construction} *)

val root : unit -> t
(** The hardware root capability: full address space, all permissions,
    valid tag. Only the kernel may hold this (boot code receives it). *)

val mint : parent:t -> base:addr -> length:int -> perms:Perms.t -> t
(** [mint ~parent ~base ~length ~perms] derives a new capability.
    Enforces monotonicity: the new bounds must lie within [parent]'s
    bounds and [perms] must be a subset of [parent]'s permissions.
    The cursor is set to [base].
    @raise Violation if monotonicity would be broken or [parent] is sealed
    or untagged. *)

val null : t
(** The canonical untagged capability (all-zero): comparisons against it
    model null-pointer checks. *)

(** {1 Accessors} *)

val base : t -> addr
val length : t -> int
val limit : t -> addr
(** [limit c] is [base c + length c] (one past the last addressable byte). *)

val cursor : t -> addr
val perms : t -> Perms.t
val otype : t -> Otype.t
val is_sealed : t -> bool
val tag : t -> bool

(** {1 Provenance (capflow, invariant R4)}

    Every capability carries a provenance stamp identifying the authority
    it was confined to: {!root_provenance} for kernel-root-derived
    authority, otherwise the base address of the μprocess area it was
    minted or relocated for. The stamp is pure metadata — it never
    affects architectural checks and is deliberately ignored by {!equal},
    so relocation counts and golden traces are unchanged by stamping. *)

val root_provenance : int
(** The sentinel provenance of the hardware root (and [null]). *)

val prov : t -> int
(** The provenance stamp currently carried by [t]. *)

val stamp : t -> prov:int -> t
(** [stamp t ~prov] is [t] restamped with provenance [prov]. Kernel-only
    bookkeeping: user code never observes the stamp. *)

(** {1 Manipulation} *)

val with_cursor : t -> addr -> t
(** Move the cursor. The cursor may point anywhere (even out of bounds, as
    on real CHERI); bounds are only checked at dereference time.
    @raise Violation if [t] is sealed (sealed capabilities are immutable). *)

val incr_cursor : t -> int -> t
(** [incr_cursor c n] is [with_cursor c (cursor c + n)]. *)

val restrict_perms : t -> Perms.t -> t
(** Intersect permissions (monotonic by construction). *)

val set_bounds : t -> base:addr -> length:int -> t
(** Narrow bounds; cursor is clamped into the new bounds.
    @raise Violation if the new bounds exceed the old ones. *)

val clear_tag : t -> t
(** The untagged copy of [t] — what lands in memory after a non-capability
    overwrite of part of a stored capability. *)

(** {1 Sealing} *)

val seal : authority:t -> t -> Otype.t -> t
(** [seal ~authority c ot] seals [c] with object type [ot]. [authority]
    must be tagged, unsealed, and carry {!Perms.seal}.
    @raise Violation otherwise, or if [c] is already sealed. *)

val unseal : authority:t -> t -> t
(** [unseal ~authority c] yields the unsealed twin of [c]. [authority] must
    carry {!Perms.unseal}. @raise Violation on object-type mismatch. *)

val invoke : t -> t
(** Branch-to-sealed-capability: models CHERI's sealed-entry invocation used
    for trapless syscalls. Returns the unsealed capability the CPU would
    install as PCC. @raise Violation unless [t] is a tagged, sealed,
    executable capability. *)

(** {1 Checked access} *)

val check_access : t -> perm:Perms.t -> addr:addr -> len:int -> unit
(** [check_access c ~perm ~addr ~len] validates a [len]-byte access at
    [addr]: tag set, not sealed, [perm] present, and
    [base c <= addr && addr + len <= limit c].
    @raise Violation naming the failed check. *)

val contains : t -> addr -> bool
(** [contains c a] is true iff [a] is within [c]'s bounds. *)

val in_range : t -> lo:addr -> hi:addr -> bool
(** True iff [c]'s bounds lie entirely within [lo, hi). Used by μFork's
    relocation scan to decide whether a stored capability points into the
    parent μprocess area (§4.2). *)

(** {1 Relocation (used by μFork's copy engine)} *)

val rebase : t -> delta:int -> t
(** [rebase c ~delta] shifts base and cursor by [delta] bytes keeping
    length, permissions, seal state and tag. This models μFork's relocation
    of an absolute memory reference from the parent's area to the child's.
    Note this is a {e kernel} operation performed with kernel authority
    while copying pages; user code has no way to express it. *)

(** {1 Misc} *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
