type addr = int

exception Violation of string

let violation fmt = Format.kasprintf (fun s -> raise (Violation s)) fmt

type t = {
  base : addr;
  length : int;
  cursor : addr;
  perms : Perms.t;
  otype : Otype.t;
  tag : bool;
  prov : int;
      (* provenance stamp: [root_provenance] for kernel-root-derived
         authority, otherwise the area base the authority is confined to.
         Metadata only — never part of [equal] or architectural checks. *)
}

let root_provenance = -1

(* The simulated virtual address space: the full non-negative int range.
   [max_int / 2] keeps base + length from overflowing. *)
let address_space_limit = max_int / 2

let root () =
  {
    base = 0;
    length = address_space_limit;
    cursor = 0;
    perms = Perms.all;
    otype = Otype.unsealed;
    tag = true;
    prov = root_provenance;
  }

let null =
  {
    base = 0;
    length = 0;
    cursor = 0;
    perms = Perms.empty;
    otype = Otype.unsealed;
    tag = false;
    prov = root_provenance;
  }

let base t = t.base
let length t = t.length
let limit t = t.base + t.length
let cursor t = t.cursor
let perms t = t.perms
let otype t = t.otype
let is_sealed t = Otype.is_sealed t.otype
let tag t = t.tag
let prov t = t.prov
let stamp t ~prov = { t with prov }

let pp ppf t =
  Format.fprintf ppf "cap{%s base=%#x len=%#x cur=%#x %a %a}"
    (if t.tag then "v" else "-")
    t.base t.length t.cursor Perms.pp t.perms Otype.pp t.otype

let require_usable op t =
  if not t.tag then violation "%s: capability tag is clear (%a)" op pp t;
  if is_sealed t then violation "%s: capability is sealed (%a)" op pp t

let mint ~parent ~base ~length ~perms =
  require_usable "mint" parent;
  if length < 0 then violation "mint: negative length";
  if base < parent.base || base + length > limit parent then
    violation "mint: bounds [%#x,%#x) exceed parent %a" base (base + length) pp
      parent;
  if not (Perms.is_subset ~sub:perms ~super:parent.perms) then
    violation "mint: permissions %a exceed parent %a" Perms.pp perms Perms.pp
      parent.perms;
  {
    base;
    length;
    cursor = base;
    perms;
    otype = Otype.unsealed;
    tag = true;
    prov = parent.prov;
  }

let with_cursor t cursor =
  if is_sealed t then violation "with_cursor: sealed capability is immutable";
  { t with cursor }

let incr_cursor t n = with_cursor t (t.cursor + n)

let restrict_perms t p =
  if is_sealed t then violation "restrict_perms: sealed capability";
  { t with perms = Perms.intersect t.perms p }

let set_bounds t ~base ~length =
  require_usable "set_bounds" t;
  if length < 0 then violation "set_bounds: negative length";
  if base < t.base || base + length > limit t then
    violation "set_bounds: widening [%#x,%#x) beyond %a" base (base + length)
      pp t;
  let cursor = if t.cursor < base then base
    else if t.cursor > base + length then base + length
    else t.cursor
  in
  { t with base; length; cursor }

let clear_tag t = { t with tag = false }

let seal ~authority t ot =
  require_usable "seal(authority)" authority;
  if not (Perms.has authority.perms Perms.seal) then
    violation "seal: authority lacks seal permission";
  if not t.tag then violation "seal: cannot seal untagged capability";
  if is_sealed t then violation "seal: already sealed";
  if not (Otype.is_sealed ot) then violation "seal: invalid object type";
  { t with otype = ot }

let unseal ~authority t =
  require_usable "unseal(authority)" authority;
  if not (Perms.has authority.perms Perms.unseal) then
    violation "unseal: authority lacks unseal permission";
  if not t.tag then violation "unseal: untagged capability";
  if not (is_sealed t) then violation "unseal: capability is not sealed";
  { t with otype = Otype.unsealed }

let invoke t =
  if not t.tag then violation "invoke: untagged capability";
  if not (is_sealed t) then violation "invoke: capability is not sealed";
  if not (Perms.has t.perms Perms.execute) then
    violation "invoke: sealed capability is not executable";
  { t with otype = Otype.unsealed }

let check_access t ~perm ~addr ~len =
  if not t.tag then violation "access: tag is clear (%a)" pp t;
  if is_sealed t then violation "access: sealed capability (%a)" pp t;
  if not (Perms.has t.perms perm) then
    violation "access: missing permission %a on %a" Perms.pp perm pp t;
  if len < 0 then violation "access: negative length";
  if addr < t.base || addr + len > limit t then
    violation "access: [%#x,%#x) out of bounds of %a" addr (addr + len) pp t

let contains t a = a >= t.base && a < limit t
let in_range t ~lo ~hi = t.base >= lo && limit t <= hi

let rebase t ~delta =
  { t with base = t.base + delta; cursor = t.cursor + delta }

let equal a b =
  a.base = b.base && a.length = b.length && a.cursor = b.cursor
  && Perms.equal a.perms b.perms
  && Otype.equal a.otype b.otype
  && a.tag = b.tag
