type t = int

let unsealed = -1
let syscall_entry = 1

(* Process-global so otypes are unique across every machine in the
   process; atomic because the bench harness boots machines from several
   domains at once. Only uniqueness matters — no simulated behaviour or
   export depends on the numeric value. *)
let counter = Atomic.make 1
let fresh () = 1 + Atomic.fetch_and_add counter 1

let equal (a : t) b = a = b
let is_sealed t = t <> unsealed

let pp ppf t =
  if t = unsealed then Format.pp_print_string ppf "unsealed"
  else if t = syscall_entry then Format.pp_print_string ppf "syscall-entry"
  else Format.fprintf ppf "otype:%d" t

let to_int t = t
