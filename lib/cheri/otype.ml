type t = int

let unsealed = -1
let syscall_entry = 1

let counter = ref 1
let fresh () =
  incr counter;
  !counter

let equal (a : t) b = a = b
let is_sealed t = t <> unsealed

let pp ppf t =
  if t = unsealed then Format.pp_print_string ppf "unsealed"
  else if t = syscall_entry then Format.pp_print_string ppf "syscall-entry"
  else Format.fprintf ppf "otype:%d" t

let to_int t = t
