(** CHERI capability permissions.

    A small, explicit subset of the CHERI permission bits that μFork's design
    depends on: data load/store, capability load/store, execute, the
    [system] ("access system registers") bit used to deny privileged
    instructions to μprocesses (§4.4), and the [seal]/[unseal] rights used
    for trapless system-call entry capabilities (§4.2).

    Permission sets are monotonic: they can only be narrowed, never widened
    ({!is_subset} and {!intersect} are the only ways to derive one from
    another besides removing individual bits). *)

type t

val empty : t
val all : t
(** Every permission, including [system] — only the kernel root capability
    carries this. *)

val load : t
val store : t
val execute : t
val load_cap : t
val store_cap : t
val system : t
(** Right to execute privileged (system-register) instructions. *)

val seal : t
val unseal : t
val global : t

val union : t -> t -> t
val intersect : t -> t -> t
val remove : t -> t -> t
(** [remove p q] is [p] without the bits of [q]. *)

val has : t -> t -> bool
(** [has p q] is true iff every bit of [q] is present in [p]. *)

val is_subset : sub:t -> super:t -> bool
val equal : t -> t -> bool
val user_data : t
(** The permission set μFork grants for μprocess data capabilities:
    load/store of both data and capabilities, global — no execute, no
    system, no sealing rights. *)

val user_code : t
(** Permissions for μprocess code capabilities (PCC): load + execute. *)

val pp : Format.formatter -> t -> unit
(** Renders like "[ld st ldc stc x sys sl us g]" with absent bits omitted. *)

val to_int : t -> int
val of_int : int -> t
(** Raw bit representation, for storing permissions in simulated memory.
    [of_int] masks unknown bits. *)
