(** Object types for CHERI sealing.

    A sealed capability is immutable and non-dereferenceable until unsealed
    with an authority of matching object type. μFork uses a dedicated object
    type for kernel system-call entry capabilities, which trigger a safe
    transition to the system-call handler without a trap (§4.2, §4.4). *)

type t

val unsealed : t
(** The distinguished "not sealed" object type. *)

val syscall_entry : t
(** Object type reserved for the kernel's sealed entry capabilities. *)

val fresh : unit -> t
(** A new, unused object type (monotonically allocated; never equal to
    [unsealed] or [syscall_entry]). *)

val equal : t -> t -> bool
val is_sealed : t -> bool
(** True for any object type other than [unsealed]. *)

val pp : Format.formatter -> t -> unit
val to_int : t -> int
