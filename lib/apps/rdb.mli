(** RDB-style snapshot serialization for {!Kvstore} — the BGSAVE workload
    of Fig. 3/4/5.

    [bgsave] reproduces Redis's background save: fork, let the {e child}
    serialize the (copy-on-write-frozen) store to a temp file on the
    ram-disk, rename it into place, exit; the parent keeps serving and
    reaps the child. [save_to] is the serialization itself, also usable
    in-process (Redis's synchronous SAVE). *)

val magic : string
(** File header magic ("USDB0001"). *)

val save_to : Ufork_sas.Api.t -> Kvstore.t -> path:string -> int
(** Serialize to a temp file, rename over [path]; returns bytes written.
    Charges the per-byte serialization work and the write syscalls. *)

type bgsave_result = {
  fork_latency_cycles : int64;  (** Time the fork call took in the parent. *)
  total_cycles : int64;
      (** Trigger-to-completion time of the whole background save (what
          Fig. 3 reports). *)
  child_pid : int;
  bytes_written : int;
}

val bgsave : Ufork_sas.Api.t -> Kvstore.t -> path:string -> bgsave_result
(** Fork a snapshot child, wait for it, return the timings. The parent is
    free to mutate the store while the child dumps: the child sees the
    fork-instant state. *)

val load_count : string -> int
(** Parse a dump (host-side verification helper): returns the number of
    entries; raises [Failure] on a corrupt file or bad checksum. *)

val verify : string -> (string * bytes) list
(** Parse a dump into its entries (host-side; raises [Failure] on
    corruption). *)
