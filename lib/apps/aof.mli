(** Append-only-file persistence for {!Kvstore} — Redis's other fork-based
    persistence mechanism (BGREWRITEAOF, pattern U4 like BGSAVE).

    Mutations are logged as they happen; when the log grows stale it is
    compacted by {b forking} a child that writes a fresh log from its
    copy-on-write snapshot of the store while the parent keeps serving and
    appending. Like Redis, replay tolerates a truncated final record
    (crash mid-append). *)

type t
(** An open log (owns a file descriptor). *)

val open_log : Ufork_sas.Api.t -> path:string -> t
(** Create or append to the log at [path]. *)

val log_set : t -> key:string -> value:bytes -> unit
val log_delete : t -> key:string -> unit
val close : t -> unit

val replay : Ufork_sas.Api.t -> Kvstore.t -> path:string -> int * bool
(** Apply the log to the store. Returns (records applied, clean); [clean]
    is false when a truncated trailing record was discarded. Raises
    [Ufork_sas.Api.Sys_error] if the file does not exist. *)

type rewrite_result = {
  fork_latency_cycles : int64;
  total_cycles : int64;
  child_pid : int;
}

val bgrewrite : Ufork_sas.Api.t -> Kvstore.t -> path:string -> rewrite_result
(** Fork a child that writes a compacted log (one set per live entry,
    fork-instant snapshot) to [path ^ ".rw"] and renames it over [path];
    waits for it, as the benchmark harness does. The parent may keep
    mutating the store meanwhile. *)
