module Api = Ufork_sas.Api
module Capability = Ufork_cheri.Capability

type instr =
  | Push of float
  | Load of int
  | Store of int
  | Add
  | Sub
  | Mul
  | Div
  | Sqrt
  | Sin
  | Cos
  | Dup
  | Pop
  | Load_idx
  | Store_idx
  | Jnz of int
  | Jmp of int
  | Halt

type program = instr array

exception Runtime_error of string

let cycles_per_instr = 25L

(* local 0: accumulator; local 1: loop counter. Loop body:
   acc <- acc + sqrt(i) * sin(i) + cos(acc); i <- i - 1; loop while i > 0. *)
let float_operation ~n =
  if n <= 0 then invalid_arg "float_operation";
  [|
    (* 0 *) Push 0.0;
    (* 1 *) Store 0;
    (* 2 *) Push (float_of_int n);
    (* 3 *) Store 1;
    (* loop head = 4 *)
    (* 4 *) Load 1;
    (* 5 *) Sqrt;
    (* 6 *) Load 1;
    (* 7 *) Sin;
    (* 8 *) Mul;
    (* 9 *) Load 0;
    (* 10 *) Cos;
    (* 11 *) Add;
    (* 12 *) Load 0;
    (* 13 *) Add;
    (* 14 *) Store 0;
    (* 15 *) Load 1;
    (* 16 *) Push 1.0;
    (* 17 *) Sub;
    (* 18 *) Dup;
    (* 19 *) Store 1;
    (* 20 *) Jnz 4;
    (* 21 *) Load 0;
    (* 22 *) Halt;
  |]

(* Deterministic input values for the array kernels (verified against a
   direct OCaml evaluation in the tests). *)
let matmul_a ~n i j = (float_of_int ((i * n) + j) *. 0.01) +. 0.5
let matmul_b ~n i j = (float_of_int ((j * n) + i) *. 0.02) -. 0.25

let matmul_locals ~n = 16 + (3 * n * n)

(* Straight-line code (compile-time loop unrolling, as a template JIT
   would emit): matrices A/B/C live in the locals array. *)
let matmul ~n =
  if n <= 0 then invalid_arg "matmul";
  let base_a = 16 and base_b = 16 + (n * n) and base_c = 16 + (2 * n * n) in
  let code = ref [] in
  let emit i = code := i :: !code in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      emit (Push (matmul_a ~n i j));
      emit (Push (float_of_int (base_a + (i * n) + j)));
      emit Store_idx;
      emit (Push (matmul_b ~n i j));
      emit (Push (float_of_int (base_b + (i * n) + j)));
      emit Store_idx
    done
  done;
  emit (Push 0.0) (* checksum *);
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      emit (Push 0.0) (* acc *);
      for k = 0 to n - 1 do
        emit (Push (float_of_int (base_a + (i * n) + k)));
        emit Load_idx;
        emit (Push (float_of_int (base_b + (k * n) + j)));
        emit Load_idx;
        emit Mul;
        emit Add
      done;
      emit Dup;
      emit (Push (float_of_int (base_c + (i * n) + j)));
      emit Store_idx;
      emit Add (* checksum += acc *)
    done
  done;
  emit Halt;
  Array.of_list (List.rev !code)

let linpack_x i = (float_of_int i *. 0.003) +. 1.0
let linpack_y i = (float_of_int i *. 0.007) -. 0.5
let linpack_locals ~n = 16 + (2 * n)

let linpack ~n =
  if n <= 0 then invalid_arg "linpack";
  let base_x = 16 and base_y = 16 + n in
  let code = ref [] in
  let emit i = code := i :: !code in
  for i = 0 to n - 1 do
    emit (Push (linpack_x i));
    emit (Push (float_of_int (base_x + i)));
    emit Store_idx;
    emit (Push (linpack_y i));
    emit (Push (float_of_int (base_y + i)));
    emit Store_idx
  done;
  (* n daxpy sweeps: y <- y + a_rep * x. *)
  for rep = 1 to n do
    let a = 0.5 +. (float_of_int rep *. 0.1) in
    for i = 0 to n - 1 do
      emit (Push (float_of_int (base_y + i)));
      emit Load_idx;
      emit (Push a);
      emit (Push (float_of_int (base_x + i)));
      emit Load_idx;
      emit Mul;
      emit Add;
      emit (Push (float_of_int (base_y + i)));
      emit Store_idx
    done
  done;
  (* checksum = sum y *)
  emit (Push 0.0);
  for i = 0 to n - 1 do
    emit (Push (float_of_int (base_y + i)));
    emit Load_idx;
    emit Add
  done;
  emit Halt;
  Array.of_list (List.rev !code)

let charge_batch = 256

let run (api : Api.t) ?(locals = 16) program =
  let stack = ref [] in
  let slots = Array.make locals 0.0 in
  let executed = ref 0 in
  let flush () =
    if !executed > 0 then begin
      api.Api.compute (Int64.mul cycles_per_instr (Int64.of_int !executed));
      executed := 0
    end
  in
  let pop () =
    match !stack with
    | [] -> raise (Runtime_error "stack underflow")
    | x :: rest ->
        stack := rest;
        x
  in
  let push v = stack := v :: !stack in
  let slot i =
    if i < 0 || i >= locals then raise (Runtime_error "bad local") else i
  in
  let pc = ref 0 in
  let running = ref true in
  while !running do
    if !pc < 0 || !pc >= Array.length program then
      raise (Runtime_error "pc out of range");
    incr executed;
    if !executed >= charge_batch then flush ();
    (match program.(!pc) with
    | Push v ->
        push v;
        incr pc
    | Load i ->
        push slots.(slot i);
        incr pc
    | Store i ->
        slots.(slot i) <- pop ();
        incr pc
    | Add ->
        let b = pop () and a = pop () in
        push (a +. b);
        incr pc
    | Sub ->
        let b = pop () and a = pop () in
        push (a -. b);
        incr pc
    | Mul ->
        let b = pop () and a = pop () in
        push (a *. b);
        incr pc
    | Div ->
        let b = pop () and a = pop () in
        if b = 0.0 then raise (Runtime_error "division by zero");
        push (a /. b);
        incr pc
    | Sqrt ->
        push (sqrt (Float.abs (pop ())));
        incr pc
    | Sin ->
        push (sin (pop ()));
        incr pc
    | Cos ->
        push (cos (pop ()));
        incr pc
    | Dup ->
        let v = pop () in
        push v;
        push v;
        incr pc
    | Pop ->
        ignore (pop ());
        incr pc
    | Load_idx ->
        let i = slot (int_of_float (pop ())) in
        push slots.(i);
        incr pc
    | Store_idx ->
        let i = slot (int_of_float (pop ())) in
        slots.(i) <- pop ();
        incr pc
    | Jnz target ->
        let v = pop () in
        if v <> 0.0 then pc := target else incr pc
    | Jmp target -> pc := target
    | Halt -> running := false);
    ()
  done;
  flush ();
  match !stack with [] -> 0.0 | top :: _ -> top

let max_local program =
  Array.fold_left
    (fun acc i ->
      match i with Load j | Store j -> max acc (j + 1) | _ -> acc)
    64 program

let executed_count program =
  (* Execute symbolically by counting: for the shapes we generate (single
     back-edge loops), a direct interpretation with a no-cost API would do;
     instead derive from the loop structure. For arbitrary programs, run
     once and count. *)
  let count = ref 0 in
  let stack = ref [] in
  (* Big enough for any locals the program names plus indexed access up to
     the same bound; indexed programs are straight-line, so this matches
     run's defaults when callers pass the documented locals count. *)
  let slots = Array.make (max 4096 (max_local program)) 0.0 in
  let pop () =
    match !stack with
    | [] -> raise (Runtime_error "stack underflow")
    | x :: r ->
        stack := r;
        x
  in
  let push v = stack := v :: !stack in
  let pc = ref 0 in
  let running = ref true in
  while !running do
    incr count;
    (match program.(!pc) with
    | Push v -> push v; incr pc
    | Load i -> push slots.(i); incr pc
    | Store i -> slots.(i) <- pop (); incr pc
    | Add -> let b = pop () and a = pop () in push (a +. b); incr pc
    | Sub -> let b = pop () and a = pop () in push (a -. b); incr pc
    | Mul -> let b = pop () and a = pop () in push (a *. b); incr pc
    | Div -> let b = pop () and a = pop () in push (a /. b); incr pc
    | Sqrt -> push (sqrt (Float.abs (pop ()))); incr pc
    | Sin -> push (sin (pop ())); incr pc
    | Cos -> push (cos (pop ())); incr pc
    | Dup -> let v = pop () in push v; push v; incr pc
    | Pop -> ignore (pop ()); incr pc
    | Load_idx ->
        let i = int_of_float (pop ()) in
        push slots.(i);
        incr pc
    | Store_idx ->
        let i = int_of_float (pop ()) in
        slots.(i) <- pop ();
        incr pc
    | Jnz t -> if pop () <> 0.0 then pc := t else incr pc
    | Jmp t -> pc := t
    | Halt -> running := false)
  done;
  !count

let estimated_cycles program =
  Int64.mul cycles_per_instr (Int64.of_int (executed_count program))

(* Zygote runtime state: a module table whose granule i points to module
   object i; each module object points to a constants block. All capability
   links, so fork relocation is exercised on every hop. *)
let zygote_got_slot = 1

let zygote_init (api : Api.t) ~modules =
  if modules <= 0 then invalid_arg "zygote_init";
  let table = api.Api.malloc ((modules + 1) * 16) in
  api.Api.write_u64 table ~off:0 (Int64.of_int modules);
  for i = 1 to modules do
    let m = api.Api.malloc 256 in
    api.Api.write_u64 m ~off:0 (Int64.of_int i);
    let consts = api.Api.malloc 512 in
    api.Api.write_bytes consts ~off:0
      (Bytes.make 512 (Char.chr (i land 0xff)));
    api.Api.store_cap m ~off:16 consts;
    api.Api.store_cap table ~off:(i * 16) m;
    (* Import machinery: parsing + compiling the module. *)
    api.Api.compute 120_000L
  done;
  api.Api.got_set zygote_got_slot table

let zygote_check (api : Api.t) =
  let table = api.Api.got_get zygote_got_slot in
  let n = Int64.to_int (api.Api.read_u64 table ~off:0) in
  for i = 1 to n do
    let m = api.Api.load_cap table ~off:(i * 16) in
    let id = Int64.to_int (api.Api.read_u64 m ~off:0) in
    if id <> i then failwith "zygote_check: corrupted module table";
    let consts = api.Api.load_cap m ~off:16 in
    let b = api.Api.read_bytes consts ~off:0 ~len:1 in
    if Char.code (Bytes.get b 0) <> i land 0xff then
      failwith "zygote_check: corrupted constants"
  done;
  n

let _ = Capability.tag
