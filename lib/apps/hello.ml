module Api = Ufork_sas.Api

type fork_sample = { latency_cycles : int64; child_pid : int }

let fork_once (api : Api.t) =
  let t0 = api.Api.now () in
  let child_pid = api.Api.fork (fun capi -> capi.Api.exit 0) in
  { latency_cycles = Int64.sub (api.Api.now ()) t0; child_pid }

let reap (api : Api.t) = ignore (api.Api.wait ())

let main (api : Api.t) =
  (* The "hello world" write. *)
  ignore (api.Api.write 1 (Bytes.of_string "hello, world\n"));
  let _sample = fork_once api in
  reap api
