(** The minimal "hello world" program of the Fig. 8 microbenchmarks. *)

type fork_sample = {
  latency_cycles : int64;  (** Time the fork call took in the parent. *)
  child_pid : int;
}

val fork_once : Ufork_sas.Api.t -> fork_sample
(** Fork a child that touches its stack and exits 0; the sample is taken
    before the parent reaps it so the child's memory can still be
    inspected by the harness. The parent leaves the zombie for
    {!reap}. *)

val reap : Ufork_sas.Api.t -> unit
(** Wait for the outstanding child. *)

val main : Ufork_sas.Api.t -> unit
(** A full hello-world run: print-equivalent work, one fork, reap. *)
