(** Ports of the two Unixbench microbenchmarks of Fig. 9.

    [spawn] (Unixbench "Spawn"): fork + exit + wait in a tight loop —
    process-creation throughput.

    [context1] (Unixbench "Context1"): two processes bounce an increasing
    counter over a pair of pipes — context-switch + IPC cost. *)

val spawn : Ufork_sas.Api.t -> iterations:int -> int64
(** Total cycles to complete [iterations] fork/exit/wait rounds. *)

type context1_result = {
  total_cycles : int64;
  iterations : int;
  per_switch_cycles : float;
      (** Cycles per full round trip (two context switches + four pipe
          syscalls). *)
}

val context1 : Ufork_sas.Api.t -> iterations:int -> context1_result
(** The parent forks the counter partner, then they alternate: parent
    writes [n], child reads it, checks it, writes [n+1] back, parent
    checks; until [iterations] is reached. Raises [Failure] if the
    sequence is ever wrong (a real correctness check, not just timing). *)

val pipe_throughput : Ufork_sas.Api.t -> iterations:int -> float
(** Unixbench "Pipe" (not shown in the paper's Fig. 9, included for
    completeness): a single process writes 512 bytes into a pipe and reads
    them back per iteration. Returns loops per simulated second. *)
