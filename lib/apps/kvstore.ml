module Api = Ufork_sas.Api
module Capability = Ufork_cheri.Capability

let got_slot = 0
let max_key = 40

(* Block layouts (16-byte capability granules):
   header : [0..8) count | [8..16) buckets | @16 cap->bucket-array
   bucket array : granule i = cap->first entry of chain i (untagged if empty)
   entry  : @0 cap->next | @16 cap->robj | [32..40) hash | [40) keylen | [41..) key
   robj   : [0..8) value length | @16 cap->data | [32..) data bytes *)
let header_size = 48
let entry_size = 96
let robj_header = 32

type t = { api : Api.t; header : Capability.t }

let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let charge_hash (api : Api.t) key =
  api.Api.compute (Int64.of_int (40 + (2 * String.length key)))

let create api ?(buckets = 1024) () =
  if buckets <= 0 then invalid_arg "Kvstore.create";
  let header = api.Api.malloc header_size in
  let arr = api.Api.malloc (buckets * 16) in
  api.Api.write_u64 header ~off:0 0L;
  api.Api.write_u64 header ~off:8 (Int64.of_int buckets);
  api.Api.store_cap header ~off:16 arr;
  api.Api.got_set got_slot header;
  { api; header }

let open_ api = { api; header = api.Api.got_get got_slot }

let buckets t = Int64.to_int (t.api.Api.read_u64 t.header ~off:8)
let count t = Int64.to_int (t.api.Api.read_u64 t.header ~off:0)

let set_count t n = t.api.Api.write_u64 t.header ~off:0 (Int64.of_int n)

let bucket_cap t = t.api.Api.load_cap t.header ~off:16

let read_key t entry =
  let klen = Char.code (Bytes.get (t.api.Api.read_bytes entry ~off:40 ~len:1) 0) in
  Bytes.to_string (t.api.Api.read_bytes entry ~off:41 ~len:klen)

(* Walk chain [head] looking for [key]; returns (entry, previous entry
   option). Charges per-entry probe work. *)
let find_entry t ~head ~hash ~key =
  let rec walk prev entry =
    if not (Capability.tag entry) then None
    else begin
      t.api.Api.compute 60L;
      let h = t.api.Api.read_u64 entry ~off:32 in
      if h = hash && read_key t entry = key then Some (entry, prev)
      else walk (Some entry) (t.api.Api.load_cap entry ~off:0)
    end
  in
  walk None head

let locate t key =
  if String.length key > max_key then invalid_arg "Kvstore: key too long";
  charge_hash t.api key;
  let hash = fnv1a key in
  let idx = Int64.to_int (Int64.rem (Int64.logand hash Int64.max_int)
                            (Int64.of_int (buckets t))) in
  let arr = bucket_cap t in
  let head = t.api.Api.load_cap arr ~off:(idx * 16) in
  (hash, idx, arr, head)

let make_robj t value =
  let len = Bytes.length value in
  let robj = t.api.Api.malloc (robj_header + max 1 len) in
  t.api.Api.write_u64 robj ~off:0 (Int64.of_int len);
  t.api.Api.store_cap robj ~off:16 (Capability.incr_cursor robj robj_header);
  if len > 0 then t.api.Api.write_bytes robj ~off:robj_header value;
  (* Serialization-side of the store charges per byte; storing is cheap
     beyond the copies themselves. *)
  t.api.Api.compute (Int64.of_int (len / 8));
  robj

(* Grow the bucket array 4x once the load factor passes 1, relinking every
   chain — like Redis's dict rehash (done eagerly here; Redis amortizes).
   All the pointer traffic happens in simulated memory, so a recently
   rehashed dict has more capability-bearing pages for CoPA to find. *)
let maybe_rehash t =
  let n = count t and b = buckets t in
  if n > b then begin
    let nb = 4 * b in
    let old_arr = bucket_cap t in
    let arr = t.api.Api.malloc (nb * 16) in
    t.api.Api.compute (Int64.of_int (64 * n));
    for i = 0 to b - 1 do
      (* Walk the old chain, pushing each entry onto its new bucket. *)
      let rec move entry =
        if Capability.tag entry then begin
          let next = t.api.Api.load_cap entry ~off:0 in
          let h = t.api.Api.read_u64 entry ~off:32 in
          let idx =
            Int64.to_int
              (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int nb))
          in
          let head = t.api.Api.load_cap arr ~off:(idx * 16) in
          t.api.Api.store_cap entry ~off:0 head;
          t.api.Api.store_cap arr ~off:(idx * 16) entry;
          move next
        end
      in
      move (t.api.Api.load_cap old_arr ~off:(i * 16))
    done;
    t.api.Api.store_cap t.header ~off:16 arr;
    t.api.Api.write_u64 t.header ~off:8 (Int64.of_int nb);
    t.api.Api.free old_arr
  end

let set t ~key ~value =
  let hash, idx, arr, head = locate t key in
  match find_entry t ~head ~hash ~key with
  | Some (entry, _prev) ->
      let old = t.api.Api.load_cap entry ~off:16 in
      t.api.Api.free old;
      t.api.Api.store_cap entry ~off:16 (make_robj t value)
  | None ->
      let entry = t.api.Api.malloc entry_size in
      t.api.Api.store_cap entry ~off:0 head;
      t.api.Api.store_cap entry ~off:16 (make_robj t value);
      t.api.Api.write_u64 entry ~off:32 hash;
      let kb = Bytes.make (1 + String.length key) '\000' in
      Bytes.set kb 0 (Char.chr (String.length key));
      Bytes.blit_string key 0 kb 1 (String.length key);
      t.api.Api.write_bytes entry ~off:40 kb;
      t.api.Api.store_cap arr ~off:(idx * 16) entry;
      set_count t (count t + 1);
      maybe_rehash t

let read_robj t robj =
  let len = Int64.to_int (t.api.Api.read_u64 robj ~off:0) in
  if len = 0 then Bytes.create 0
  else begin
    let data = t.api.Api.load_cap robj ~off:16 in
    t.api.Api.read_bytes data ~off:0 ~len
  end

let get t ~key =
  let hash, _idx, _arr, head = locate t key in
  match find_entry t ~head ~hash ~key with
  | None -> None
  | Some (entry, _) -> Some (read_robj t (t.api.Api.load_cap entry ~off:16))

let delete t ~key =
  let hash, idx, arr, head = locate t key in
  match find_entry t ~head ~hash ~key with
  | None -> false
  | Some (entry, prev) ->
      let next = t.api.Api.load_cap entry ~off:0 in
      (match prev with
      | None -> t.api.Api.store_cap arr ~off:(idx * 16) next
      | Some p -> t.api.Api.store_cap p ~off:0 next);
      t.api.Api.free (t.api.Api.load_cap entry ~off:16);
      t.api.Api.free entry;
      set_count t (count t - 1);
      true

let iter t f =
  let arr = bucket_cap t in
  let n = buckets t in
  for i = 0 to n - 1 do
    t.api.Api.compute 8L;
    let rec walk entry =
      if Capability.tag entry then begin
        let key = read_key t entry in
        let robj = t.api.Api.load_cap entry ~off:16 in
        let value_len = Int64.to_int (t.api.Api.read_u64 robj ~off:0) in
        f ~key ~value_len ~read_value:(fun () -> read_robj t robj);
        walk (t.api.Api.load_cap entry ~off:0)
      end
    in
    walk (t.api.Api.load_cap arr ~off:(i * 16))
  done

let bucket_count = buckets
let mem_used_bytes t = t.api.Api.stats_heap_used ()
