module Api = Ufork_sas.Api

type result = {
  completed : int;
  window_cycles : int64;
  throughput_per_s : float;
  forks : int;
}

let run_function (api : Api.t) program =
  match
    ignore (Mpy.zygote_check api);
    Mpy.run api program
  with
  | _v -> api.Api.exit 0
  | exception Mpy.Runtime_error _ -> api.Api.exit 1
  | exception Failure _ -> api.Api.exit 1

let coordinator (api : Api.t) ~max_workers ~window_cycles ~program =
  if max_workers <= 0 then invalid_arg "Faas.coordinator";
  Mpy.zygote_init api ~modules:24;
  let t0 = api.Api.now () in
  let deadline = Int64.add t0 window_cycles in
  let outstanding = ref 0 in
  let completed = ref 0 in
  let forks = ref 0 in
  while api.Api.now () < deadline do
    if !outstanding < max_workers then begin
      incr forks;
      ignore (api.Api.fork (fun capi -> run_function capi program));
      incr outstanding
    end
    else begin
      let _pid, status = api.Api.wait () in
      decr outstanding;
      if status = 0 && api.Api.now () <= deadline then incr completed
    end
  done;
  (* Drain in-flight functions (not counted). *)
  while !outstanding > 0 do
    ignore (api.Api.wait ());
    decr outstanding
  done;
  let window = Int64.sub deadline t0 in
  {
    completed = !completed;
    window_cycles = window;
    throughput_per_s =
      float_of_int !completed /. Ufork_util.Units.s_of_cycles window;
    forks = !forks;
  }
