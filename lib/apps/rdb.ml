module Api = Ufork_sas.Api

let magic = "USDB0001"

(* Fixed bookkeeping a BGSAVE performs besides moving bytes: dict-scan
   setup, status logging, temp-file naming. Identical on every OS (it is
   application compute). *)
let bgsave_fixed_compute = 500_000L

(* Serialization work per payload byte (format conversion + checksum). *)
let serialize_cost len = Int64.of_int (len + (len / 2) + (len / 20))

let chunk = 64 * 1024

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let save_to (api : Api.t) store ~path =
  let tmp = path ^ ".tmp" in
  let fd = api.Api.open_ tmp `Create in
  let written = ref 0 in
  let checksum = ref 0 in
  let pending = Buffer.create (2 * chunk) in
  let flush_pending ~all () =
    while Buffer.length pending >= chunk || (all && Buffer.length pending > 0)
    do
      let n = min chunk (Buffer.length pending) in
      let b = Bytes.of_string (Buffer.sub pending 0 n) in
      let rest = Buffer.sub pending n (Buffer.length pending - n) in
      Buffer.clear pending;
      Buffer.add_string pending rest;
      written := !written + api.Api.write fd b
    done
  in
  let emit s =
    String.iter (fun c -> checksum := (!checksum + Char.code c) land 0xffffffff) s;
    Buffer.add_string pending s;
    api.Api.compute (serialize_cost (String.length s));
    flush_pending ~all:false ()
  in
  api.Api.compute bgsave_fixed_compute;
  (* The rio output buffer: real Redis allocates it per save; on CheriBSD
     this first allocation in the forked child is what re-dirties the
     allocator arena (Fig. 5). *)
  let iobuf = api.Api.malloc chunk in
  Buffer.add_string pending magic;
  written := !written; (* magic is not checksummed *)
  let entries = ref 0 in
  Kvstore.iter store (fun ~key ~value_len:_ ~read_value ->
      incr entries;
      let value = read_value () in
      let hdr = Buffer.create 16 in
      put_u32 hdr (String.length key);
      put_u32 hdr (Bytes.length value);
      emit (Buffer.contents hdr);
      emit key;
      emit (Bytes.to_string value));
  let footer = Buffer.create 16 in
  put_u32 footer 0xffffffff;
  put_u32 footer !entries;
  put_u32 footer !checksum;
  emit (Buffer.contents footer);
  flush_pending ~all:true ();
  api.Api.close fd;
  api.Api.rename ~src:tmp ~dst:path;
  api.Api.free iobuf;
  !written

type bgsave_result = {
  fork_latency_cycles : int64;
  total_cycles : int64;
  child_pid : int;
  bytes_written : int;
}

let bgsave (api : Api.t) _store ~path =
  let t0 = api.Api.now () in
  let child_pid =
    api.Api.fork (fun capi ->
        let store' = Kvstore.open_ capi in
        let n = save_to capi store' ~path in
        capi.Api.exit (if n > 0 then 0 else 1))
  in
  let fork_latency_cycles = Int64.sub (api.Api.now ()) t0 in
  let rec wait_for () =
    let pid, _status = api.Api.wait () in
    if pid = child_pid then () else wait_for ()
  in
  wait_for ();
  let total_cycles = Int64.sub (api.Api.now ()) t0 in
  let bytes_written = 0 in
  { fork_latency_cycles; total_cycles; child_pid; bytes_written }

(* Host-side parsing for verification. *)

let get_u32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let verify contents =
  let fail fmt = Printf.ksprintf failwith fmt in
  let len = String.length contents in
  if len < String.length magic + 12 then fail "rdb: truncated";
  if String.sub contents 0 (String.length magic) <> magic then
    fail "rdb: bad magic";
  let pos = ref (String.length magic) in
  let checksum = ref 0 in
  let add s =
    String.iter (fun c -> checksum := (!checksum + Char.code c) land 0xffffffff) s
  in
  let entries = ref [] in
  let rec loop () =
    if !pos + 4 > len then fail "rdb: truncated at %d" !pos;
    let klen = get_u32 contents !pos in
    if klen = 0xffffffff then begin
      (* Footer: end marker, entry count, checksum of everything before. *)
      if !pos + 12 > len then fail "rdb: truncated footer";
      let n = get_u32 contents (!pos + 4) in
      let sum = get_u32 contents (!pos + 8) in
      if n <> List.length !entries then fail "rdb: entry count mismatch";
      if sum <> !checksum then fail "rdb: bad checksum";
      ()
    end
    else begin
      if !pos + 8 > len then fail "rdb: truncated header";
      let vlen = get_u32 contents (!pos + 4) in
      add (String.sub contents !pos 8);
      pos := !pos + 8;
      if !pos + klen + vlen > len then fail "rdb: truncated entry";
      let key = String.sub contents !pos klen in
      add key;
      pos := !pos + klen;
      let value = String.sub contents !pos vlen in
      add value;
      pos := !pos + vlen;
      entries := (key, Bytes.of_string value) :: !entries;
      loop ()
    end
  in
  loop ();
  List.rev !entries

let load_count contents = List.length (verify contents)
