module Api = Ufork_sas.Api

(* Record framing:
   'S' | klen u32 | vlen u32 | key | value      set
   'D' | klen u32 | key                         delete *)

type t = { api : Api.t; fd : int }

let open_log api ~path =
  let fd = api.Api.open_ path `Append in
  { api; fd }

let u32 v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  b

let log_set t ~key ~value =
  let buf = Buffer.create (16 + String.length key + Bytes.length value) in
  Buffer.add_char buf 'S';
  Buffer.add_bytes buf (u32 (String.length key));
  Buffer.add_bytes buf (u32 (Bytes.length value));
  Buffer.add_string buf key;
  Buffer.add_bytes buf value;
  t.api.Api.compute (Int64.of_int (Buffer.length buf / 4));
  ignore (t.api.Api.write t.fd (Buffer.to_bytes buf))

let log_delete t ~key =
  let buf = Buffer.create (8 + String.length key) in
  Buffer.add_char buf 'D';
  Buffer.add_bytes buf (u32 (String.length key));
  Buffer.add_string buf key;
  ignore (t.api.Api.write t.fd (Buffer.to_bytes buf))

let close t = t.api.Api.close t.fd

(* Pull the whole log through read(2) in chunks, then walk records. *)
let replay (api : Api.t) store ~path =
  let fd = api.Api.open_ path `Read in
  let contents = Buffer.create 4096 in
  let rec slurp () =
    let b = api.Api.read fd (64 * 1024) in
    if Bytes.length b > 0 then begin
      Buffer.add_bytes contents b;
      slurp ()
    end
  in
  slurp ();
  api.Api.close fd;
  let s = Buffer.contents contents in
  let len = String.length s in
  let get_u32 off =
    Char.code s.[off]
    lor (Char.code s.[off + 1] lsl 8)
    lor (Char.code s.[off + 2] lsl 16)
    lor (Char.code s.[off + 3] lsl 24)
  in
  let applied = ref 0 in
  let clean = ref true in
  let pos = ref 0 in
  let running = ref true in
  while !running && !pos < len do
    begin
      let truncated () =
      (* A crash mid-append leaves a partial trailing record: drop it. *)
      clean := false;
      running := false
    in
    match s.[!pos] with
    | 'S' ->
        if !pos + 9 > len then truncated ()
        else begin
          let klen = get_u32 (!pos + 1) and vlen = get_u32 (!pos + 5) in
          if !pos + 9 + klen + vlen > len then truncated ()
          else begin
            let key = String.sub s (!pos + 9) klen in
            let value = Bytes.of_string (String.sub s (!pos + 9 + klen) vlen) in
            Kvstore.set store ~key ~value;
            incr applied;
            pos := !pos + 9 + klen + vlen
          end
        end
    | 'D' ->
        if !pos + 5 > len then truncated ()
        else begin
          let klen = get_u32 (!pos + 1) in
          if !pos + 5 + klen > len then truncated ()
          else begin
            ignore (Kvstore.delete store ~key:(String.sub s (!pos + 5) klen));
            incr applied;
            pos := !pos + 5 + klen
          end
        end
      | _ ->
          clean := false;
          running := false
    end
  done;
  (!applied, !clean)

type rewrite_result = {
  fork_latency_cycles : int64;
  total_cycles : int64;
  child_pid : int;
}

let bgrewrite (api : Api.t) _store ~path =
  let t0 = api.Api.now () in
  let child_pid =
    api.Api.fork (fun capi ->
        (* The child sees the fork-instant store (CoW/CoPA snapshot). *)
        let store' = Kvstore.open_ capi in
        let tmp = path ^ ".rw" in
        let log = open_log capi ~path:tmp in
        Kvstore.iter store' (fun ~key ~value_len:_ ~read_value ->
            log_set log ~key ~value:(read_value ()));
        close log;
        capi.Api.rename ~src:tmp ~dst:path;
        capi.Api.exit 0)
  in
  let fork_latency_cycles = Int64.sub (api.Api.now ()) t0 in
  let rec wait_for () =
    let pid, _ = api.Api.wait () in
    if pid <> child_pid then wait_for ()
  in
  wait_for ();
  {
    fork_latency_cycles;
    total_cycles = Int64.sub (api.Api.now ()) t0;
    child_pid;
  }
