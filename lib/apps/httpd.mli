(** An Nginx-like multi-worker web server with a wrk-like load generator
    (Fig. 7).

    The master process owns a listen pipe (the accept queue) whose read end
    worker processes inherit through fork (U2/U5). A worker serves a
    request by reading its descriptor, parsing it, positional-reading the
    document from the ram-disk, writing the response and waiting for the
    send to complete on the (simulated) network — yielding the core during
    that wait, which is what lets extra workers raise single-core
    throughput (§5.1: "likely due to workers yielding during I/O").

    {!Net} is the client side: closed-loop connections inject request
    descriptors directly into the listen pipe's kernel buffer (NIC-to-
    socket-buffer delivery: the client machine costs the server nothing)
    and sleep until their response callback fires. *)

val request_size : int  (** Request descriptor bytes on the listen pipe (64). *)

val doc_path : string  (** Served document ("/index.html"). *)

val doc_bytes : int  (** Size of the served document (1 KiB). *)

val parse_cycles : int64
(** Per-request parsing + header formatting + logging work. *)

val net_wait_cycles : int64
(** Send-completion wait per response (core yielded). *)

val populate_docroot : Ufork_sas.Vfs.t -> unit

(** The simulated network between wrk clients and the server. *)
module Net : sig
  type t

  type stats = { mutable completed : int; mutable sent : int }

  val create : unit -> t
  val listen_pipe : t -> Ufork_sas.Pipe.t
  (** The accept-queue pipe; the benchmark installs its ends as inherited
      file descriptors of the master process before it starts. *)

  val stats : t -> stats

  val deliver_response : t -> int -> unit
  (** Called from worker context when request [id]'s response has been
      sent: wakes the owning connection. *)

  val spawn_clients :
    Ufork_sim.Engine.t ->
    t ->
    connections:int ->
    window_cycles:int64 ->
    unit
  (** Closed-loop connection threads; each stops issuing at the window
      end. Completions inside the window are counted in [stats]. *)
end

val worker_loop : Ufork_sas.Api.t -> listen_fd:int -> docroot_fd:int -> notify:(int -> unit) -> unit
(** Serve until a shutdown descriptor (id 0) arrives, then exit 0. *)

val master :
  Ufork_sas.Api.t ->
  net:Net.t ->
  listen_rfd:int ->
  listen_wfd:int ->
  workers:int ->
  window_cycles:int64 ->
  unit
(** Server main: open the docroot, fork [workers] workers, sleep out the
    window, write one shutdown descriptor per worker, reap them all. *)
