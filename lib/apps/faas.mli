(** The Zygote FaaS serving loop (Fig. 6).

    The language runtime is initialized once in a Zygote μprocess
    ({!Mpy.zygote_init}); each incoming request is served by forking the
    Zygote into a child that runs the function and exits (U2 + U5). A
    coordinator thread forks as fast as the worker cores consume functions;
    throughput is fork-bound when fork latency exceeds function compute
    spread over the workers. *)

type result = {
  completed : int;  (** Functions finished inside the window. *)
  window_cycles : int64;
  throughput_per_s : float;
  forks : int;
}

val coordinator :
  Ufork_sas.Api.t ->
  max_workers:int ->
  window_cycles:int64 ->
  program:Mpy.program ->
  result
(** Run as the Zygote process main: initialize the runtime, then fork one
    child per request keeping [max_workers] in flight, reaping completions,
    until the window closes. Functions still in flight at the deadline are
    reaped but not counted. *)

val run_function : Ufork_sas.Api.t -> Mpy.program -> unit
(** What a forked worker does: validate the inherited runtime state, run
    the program, exit 0 (exit 1 on a runtime error). *)
