module Api = Ufork_sas.Api

let spawn (api : Api.t) ~iterations =
  if iterations <= 0 then invalid_arg "Unixbench.spawn";
  let t0 = api.Api.now () in
  for _ = 1 to iterations do
    ignore (api.Api.fork (fun capi -> capi.Api.exit 0));
    let _pid, status = api.Api.wait () in
    if status <> 0 then failwith "spawn: child failed"
  done;
  Int64.sub (api.Api.now ()) t0

type context1_result = {
  total_cycles : int64;
  iterations : int;
  per_switch_cycles : float;
}

let u32_bytes v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  b

let read_u32 (api : Api.t) fd =
  let rec go acc need =
    if need = 0 then acc
    else
      let b = api.Api.read fd need in
      if Bytes.length b = 0 then failwith "context1: unexpected EOF"
      else go (Bytes.cat acc b) (need - Bytes.length b)
  in
  let b = go Bytes.empty 4 in
  Int32.to_int (Bytes.get_int32_le b 0)

let context1 (api : Api.t) ~iterations =
  if iterations <= 0 then invalid_arg "Unixbench.context1";
  let p2c_r, p2c_w = api.Api.pipe () in
  let c2p_r, c2p_w = api.Api.pipe () in
  let t0 = api.Api.now () in
  ignore
    (api.Api.fork (fun capi ->
         (* Child: read n, reply n+1, until the final value. *)
         let rec loop () =
           let n = read_u32 capi p2c_r in
           ignore (capi.Api.write c2p_w (u32_bytes (n + 1)));
           if n + 1 < (2 * iterations) - 1 then loop ()
         in
         loop ();
         capi.Api.exit 0));
  let check expected got =
    if got <> expected then
      failwith
        (Printf.sprintf "context1: expected %d, got %d" expected got)
  in
  for i = 0 to iterations - 1 do
    ignore (api.Api.write p2c_w (u32_bytes (2 * i)));
    check ((2 * i) + 1) (read_u32 api c2p_r)
  done;
  let total = Int64.sub (api.Api.now ()) t0 in
  ignore (api.Api.wait ());
  {
    total_cycles = total;
    iterations;
    per_switch_cycles = Int64.to_float total /. float_of_int iterations;
  }

let pipe_throughput (api : Api.t) ~iterations =
  if iterations <= 0 then invalid_arg "Unixbench.pipe_throughput";
  let rfd, wfd = api.Api.pipe () in
  let payload = Bytes.make 512 'p' in
  let t0 = api.Api.now () in
  for _ = 1 to iterations do
    ignore (api.Api.write wfd payload);
    let b = api.Api.read rfd 512 in
    if Bytes.length b <> 512 then failwith "pipe: short read"
  done;
  let dt = Int64.sub (api.Api.now ()) t0 in
  float_of_int iterations /. Ufork_util.Units.s_of_cycles dt
