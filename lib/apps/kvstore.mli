(** A Redis-like in-memory key-value store (evaluation workload, §5.1).

    The entire store lives in {e simulated tagged memory}, laid out the way
    Redis lays out its dict, so fork-strategy behaviour emerges from where
    capabilities really are:

    - a header block (count, bucket count, capability to the bucket
      array), published in GOT slot {!got_slot};
    - a bucket array: one capability granule per bucket, pointing at the
      first entry of the chain;
    - entry blocks: next-entry capability, value-object capability, key
      hash and inline key bytes;
    - value objects ("robj"): an 8-byte length, a capability to the value
      bytes, then the bytes inline in the same allocation.

    A forked child serializing the store therefore {e loads a capability}
    from each entry and from each value header — under CoPA exactly those
    pages get copied (≈ one page per value + the dict pages, Fig. 5's
    6 MB), while the bulk value bytes are plain data reads and stay
    shared. *)

type t

val got_slot : int
(** GOT slot where the store header capability is published (0). *)

val create : Ufork_sas.Api.t -> ?buckets:int -> unit -> t
(** Allocate the dict in the calling process's heap and publish it.
    Default 1024 buckets. *)

val open_ : Ufork_sas.Api.t -> t
(** Attach to the store published in the GOT — this is how a forked child
    finds the (relocated) database. *)

val set : t -> key:string -> value:bytes -> unit
(** Insert or replace. Keys are at most 40 bytes. *)

val get : t -> key:string -> bytes option
val delete : t -> key:string -> bool
val count : t -> int

val bucket_count : t -> int
(** Current size of the bucket array; grows 4x (Redis-style rehash)
    whenever the load factor exceeds 1. *)

val iter : t -> (key:string -> value_len:int -> read_value:(unit -> bytes) -> unit) -> unit
(** Walk every entry (bucket order). [read_value] pulls the value bytes
    lazily so callers control when the (possibly page-copying) reads
    happen. *)

val mem_used_bytes : t -> int
(** Heap bytes consumed by the store (allocator view). *)
