module Api = Ufork_sas.Api
module Pipe = Ufork_sas.Pipe
module Vfs = Ufork_sas.Vfs
module Engine = Ufork_sim.Engine
module Sync = Ufork_sim.Sync

let request_size = 64
let doc_path = "/index.html"
let doc_bytes = 1024
let parse_cycles = 38_000L
let net_wait_cycles = 7_800L

let populate_docroot vfs =
  let body = String.init doc_bytes (fun i -> Char.chr (32 + (i mod 95))) in
  Vfs.put vfs doc_path body

let encode_request id =
  let b = Bytes.make request_size '\000' in
  Bytes.set_int64_le b 0 (Int64.of_int id);
  b

let decode_request b =
  if Bytes.length b < 8 then None
  else Some (Int64.to_int (Bytes.get_int64_le b 0))

module Net = struct
  type stats = { mutable completed : int; mutable sent : int }

  type t = {
    pipe : Pipe.t;
    waiting : (int, Engine.waker) Hashtbl.t;
    mutable next_id : int;
    stats : stats;
  }

  let create () =
    {
      pipe = Pipe.create ();
      waiting = Hashtbl.create 64;
      next_id = 0;
      stats = { completed = 0; sent = 0 };
    }

  let listen_pipe t = t.pipe
  let stats t = t.stats

  let deliver_response t id =
    match Hashtbl.find_opt t.waiting id with
    | Some w ->
        Hashtbl.remove t.waiting id;
        Engine.wake w
    | None -> ()

  (* Push a request descriptor into the accept queue from the NIC side
     (no server CPU): spin on the pipe's writable condition if full. *)
  let rec nic_push t b =
    match Pipe.try_write t.pipe b with
    | Pipe.Wrote n when n = Bytes.length b -> ()
    | Pipe.Wrote n ->
        nic_push t (Bytes.sub b n (Bytes.length b - n))
    | Pipe.Would_block ->
        Sync.Cond.wait (Pipe.writable t.pipe);
        nic_push t b

  let spawn_clients engine t ~connections ~window_cycles =
    if connections <= 0 then invalid_arg "spawn_clients";
    let deadline = window_cycles in
    for c = 1 to connections do
      ignore
        (Engine.spawn ~name:(Printf.sprintf "wrk-conn%d" c) engine (fun () ->
             let rec go () =
               if Engine.current_time () < deadline then begin
                 t.next_id <- t.next_id + 1;
                 let id = t.next_id in
                 t.stats.sent <- t.stats.sent + 1;
                 nic_push t (encode_request id);
                 Engine.suspend (fun w -> Hashtbl.replace t.waiting id w);
                 if Engine.current_time () <= deadline then
                   t.stats.completed <- t.stats.completed + 1;
                 go ()
               end
             in
             go ()))
    done
end

(* Read exactly one descriptor (the pipe preserves byte order; descriptors
   are fixed-size so short reads just need another read call). *)
let read_request (api : Api.t) fd =
  let buf = Buffer.create request_size in
  let rec go () =
    let need = request_size - Buffer.length buf in
    if need = 0 then Some (Buffer.to_bytes buf)
    else
      let b = api.Api.read fd need in
      if Bytes.length b = 0 then None (* EOF *)
      else begin
        Buffer.add_bytes buf b;
        go ()
      end
  in
  go ()

let worker_loop (api : Api.t) ~listen_fd ~docroot_fd ~notify =
  let rec serve () =
    match read_request api listen_fd with
    | None -> api.Api.exit 0
    | Some req -> (
        match decode_request req with
        | None | Some 0 -> api.Api.exit 0 (* shutdown descriptor *)
        | Some id ->
            (* Parse request line + headers, format the response headers,
               write the access-log line. *)
            api.Api.compute parse_cycles;
            let body = api.Api.pread docroot_fd ~off:0 doc_bytes in
            (* send(): one syscall copying the response out... *)
            let sent = api.Api.write 1 body in
            ignore sent;
            (* ...then wait for the send completion interrupt. *)
            api.Api.sleep net_wait_cycles;
            notify id;
            serve ())
  in
  serve ()

let master (api : Api.t) ~net ~listen_rfd ~listen_wfd ~workers ~window_cycles =
  if workers <= 0 then invalid_arg "Httpd.master";
  let docroot_fd = api.Api.open_ doc_path `Read in
  let notify id = Net.deliver_response net id in
  for _ = 1 to workers do
    ignore
      (api.Api.fork (fun capi ->
           (* Workers inherited the listen fd and the docroot fd. *)
           worker_loop capi ~listen_fd:listen_rfd ~docroot_fd ~notify))
  done;
  api.Api.sleep window_cycles;
  for _ = 1 to workers do
    ignore (api.Api.write listen_wfd (encode_request 0))
  done;
  for _ = 1 to workers do
    ignore (api.Api.wait ())
  done
