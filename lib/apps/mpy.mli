(** A MicroPython-like bytecode interpreter (the FaaS language runtime of
    §5.1).

    A small stack VM: enough to express FunctionBench's [float_operation]
    (the paper's FaaS workload) and similar numeric kernels. Execution
    charges interpreter-dispatch cycles to the simulated CPU; the runtime's
    module state lives in simulated memory (allocated by {!zygote_init}) so
    that forking a warmed-up interpreter exercises μFork exactly like the
    real Zygote pattern. *)

type instr =
  | Push of float
  | Load of int  (** Local slot. *)
  | Store of int
  | Add
  | Sub
  | Mul
  | Div
  | Sqrt
  | Sin
  | Cos
  | Dup
  | Pop
  | Load_idx
      (** Pop index; push [locals[int_of_float index]] — array reads. *)
  | Store_idx  (** Pop index, pop value; [locals[index] <- value]. *)
  | Jnz of int  (** Pop; jump to absolute index when non-zero. *)
  | Jmp of int
  | Halt

type program = instr array

exception Runtime_error of string
(** Stack underflow, bad local, division by zero, jump out of range. *)

val float_operation : n:int -> program
(** FunctionBench [float_operation]: [n] iterations of
    sqrt/sin/cos/accumulate (8 instructions each). *)

val matmul : n:int -> program
(** FunctionBench [matmul]: multiply two [n x n] matrices held in locals
    (row-major, A at 16, B at 16+n², C at 16+2n²); returns the checksum of
    C. Requires [locals >= 16 + 3n²]. *)

val matmul_locals : n:int -> int
(** Locals required by {!matmul}. *)

val linpack : n:int -> program
(** FunctionBench [linpack]-style kernel: a daxpy sweep over vectors of
    length [n] ([y <- y + a*x], repeated n times with varying a); returns
    the final checksum of y. Requires [locals >= 16 + 2n]. *)

val linpack_locals : n:int -> int

val cycles_per_instr : int64
(** Interpreter dispatch cost charged per executed instruction (25). *)

val run : Ufork_sas.Api.t -> ?locals:int -> program -> float
(** Execute; returns the top of the stack (0.0 if empty). Charges
    [cycles_per_instr] per executed instruction (batched). *)

val estimated_cycles : program -> int64
(** Cycle cost of one run, from the executed-instruction count (exact for
    the programs produced here). *)

val zygote_got_slot : int
val zygote_init : Ufork_sas.Api.t -> modules:int -> unit
(** Warm up the runtime: allocate a module table and per-module objects in
    simulated memory (capability-linked, like real interpreter state) and
    publish the root in {!zygote_got_slot}. This is the expensive
    initialization the Zygote pattern amortizes. *)

val zygote_check : Ufork_sas.Api.t -> int
(** Walk the module table (in a forked child this exercises relocation);
    returns the module count. Raises [Failure] on a corrupted table. *)
