module Addr = Ufork_mem.Addr
module Pte = Ufork_mem.Pte
module Page_table = Ufork_mem.Page_table
module Vas = Ufork_mem.Vas
module Engine = Ufork_sim.Engine
module Costs = Ufork_sim.Costs
module Meter = Ufork_sim.Meter
module Event = Ufork_sim.Event
module Trace = Ufork_sim.Trace
module Kernel = Ufork_sas.Kernel
module Uproc = Ufork_sas.Uproc
module Config = Ufork_sas.Config
module Image = Ufork_sas.Image
module Fdesc = Ufork_sas.Fdesc
module Tinyalloc = Ufork_sas.Tinyalloc
module Fork = Ufork_core.Fork

type t = { kernel : Kernel.t; engine : Engine.t }

(* The Unikraft kernel linked into every VM image: ~1.2 MiB text+rodata and
   ~0.2 MiB data, duplicated wholesale by a domain clone. *)
let unikernel_image (img : Image.t) =
  {
    img with
    Image.name = img.Image.name ^ "+unikraft";
    code_bytes = img.Image.code_bytes + (1228 * 1024);
    data_bytes = img.Image.data_bytes + (200 * 1024);
  }

let do_fork k (parent : Uproc.t) child_main =
  let t0 = Engine.now (Kernel.engine k) in
  Kernel.emit ~proc:parent k Event.Fork_fixed;
  (* Creating the new domain dominates: hypercalls, event channels, grant
     tables, device re-attachment. *)
  Kernel.emit ~proc:parent k Event.Domain_create;
  let fds = Fdesc.Fdtable.dup_all parent.Uproc.fds in
  let child =
    Kernel.create_uproc k ~parent ~fds ~image:parent.Uproc.image ()
  in
  child.Uproc.forked <- true;
  (* The entire VM image — unikernel included — is copied eagerly. *)
  Page_table.fold parent.Uproc.pt ~init:() ~f:(fun vpn (ppte : Pte.t) () ->
      Kernel.emit ~proc:child k Event.Pte_copy;
      Kernel.emit ~proc:child k Event.Page_copy_eager;
      let fresh = Kernel.fresh_frame k child in
      let src = Ufork_mem.Phys.page ppte.Pte.frame in
      let dst = Ufork_mem.Phys.page fresh in
      Ufork_mem.Page.write_bytes dst ~off:0
        (Ufork_mem.Page.read_bytes src ~off:0 ~len:Addr.page_size);
      Ufork_mem.Page.iter_caps src (fun g cap ->
          Ufork_mem.Page.store_cap dst ~off:(g * Addr.granule_size) cap);
      Page_table.map child.Uproc.pt ~vpn
        (Pte.make ~read:ppte.Pte.read ~write:ppte.Pte.write ~exec:ppte.Pte.exec
           fresh));
  child.Uproc.allocator <- Tinyalloc.clone parent.Uproc.allocator ~delta:0;
  Kernel.emit ~proc:parent k Event.Thread_create;
  Kernel.spawn_process k child child_main;
  let dt = Int64.sub (Engine.now (Kernel.engine k)) t0 in
  Trace.gauge (Kernel.trace k) Trace.last_fork_latency_key (Int64.to_int dt);
  child.Uproc.pid

let handle_fault k (u : Uproc.t) ~addr ~access =
  let vpn = Addr.vpn_of_addr addr in
  match Page_table.lookup u.Uproc.pt ~vpn with
  | None -> (
      match Uproc.region_of_addr u addr with
      | Some ("heap" | "meta") ->
          Kernel.emit ~proc:u k Event.Demand_zero;
          Kernel.map_zero_pages k u ~base:(Addr.addr_of_vpn vpn)
            ~bytes:Addr.page_size ()
      | Some _ | None ->
          raise
            (Fork.Segfault
               (Format.asprintf "pid %d: invalid %a at %#x" u.Uproc.pid
                  Vas.pp_access access addr)))
  | Some _ ->
      raise
        (Fork.Segfault
           (Format.asprintf "pid %d: invalid %a at %#x" u.Uproc.pid
              Vas.pp_access access addr))

let boot ?(cores = 4) ?(config = Config.nephele_default)
    ?(costs = Costs.nephele) () =
  let engine = Engine.create ~cores () in
  let kernel =
    Kernel.create ~engine ~costs ~config ~multi_address_space:true ()
  in
  Kernel.set_fork_hook kernel (fun parent child_main ->
      do_fork kernel parent child_main);
  Kernel.set_fault_hook kernel (fun u ~addr ~access ->
      handle_fault kernel u ~addr ~access);
  { kernel; engine }

let kernel t = t.kernel
let engine t = t.engine

let start t ?affinity ~image main =
  let image = unikernel_image image in
  let u = Kernel.create_uproc t.kernel ~image () in
  Kernel.map_initial_image t.kernel u;
  Kernel.spawn_process t.kernel ?affinity u main;
  u

let run ?until t = Engine.run ?until t.engine

let last_fork_latency t = Kernel.last_fork_latency t.kernel

let trace t = Kernel.trace t.kernel
