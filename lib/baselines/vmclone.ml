module Costs = Ufork_sim.Costs
module Event = Ufork_sim.Event
module Kernel = Ufork_sas.Kernel
module Uproc = Ufork_sas.Uproc
module Config = Ufork_sas.Config
module Image = Ufork_sas.Image
module Page_table = Ufork_mem.Page_table
module Vas = Ufork_mem.Vas
module Addr = Ufork_mem.Addr
module Fork_spine = Ufork_core.Fork_spine
module Memops = Ufork_core.Memops
module System = Ufork_core.System

type t = System.t

(* The Unikraft kernel linked into every VM image: ~1.2 MiB text+rodata and
   ~0.2 MiB data, duplicated wholesale by a domain clone. *)
let unikernel_image (img : Image.t) =
  {
    img with
    Image.name = img.Image.name ^ "+unikraft";
    code_bytes = img.Image.code_bytes + (1228 * 1024);
    data_bytes = img.Image.data_bytes + (200 * 1024);
  }

let do_fork k (parent : Uproc.t) child_main =
  let hooks =
    {
      Fork_spine.default with
      pre_create =
        (fun k ~parent ->
          (* Creating the new domain dominates: hypercalls, event channels,
             grant tables, device re-attachment. *)
          Kernel.emit ~proc:parent k Event.Domain_create);
      duplicate =
        (fun k ~parent ~child ->
          (* The entire VM image — unikernel included — is copied
             eagerly, verbatim: same permissions, no relocation (each
             clone is its own address space). *)
          let pvpns =
            Page_table.fold parent.Uproc.pt ~init:[] ~f:(fun vpn _ acc ->
                vpn :: acc)
            |> List.rev
          in
          Memops.copy_range k ~parent ~child ~delta_pages:0
            ~mode:Memops.Verbatim pvpns);
    }
  in
  Fork_spine.run k hooks parent child_main

let handle_fault k (u : Uproc.t) ~addr ~access =
  Kernel.with_span k ~name:"fault.service" @@ fun () ->
  let vpn = Addr.vpn_of_addr addr in
  match Page_table.lookup u.Uproc.pt ~vpn with
  | None -> (
      match Uproc.region_of_addr u addr with
      | Some ("heap" | "meta") -> Fork_spine.demand_zero k u ~addr
      | Some _ | None ->
          raise
            (Fork_spine.Segfault
               (Format.asprintf "pid %d: invalid %a at %#x" u.Uproc.pid
                  Vas.pp_access access addr)))
  | Some _ ->
      raise
        (Fork_spine.Segfault
           (Format.asprintf "pid %d: invalid %a at %#x" u.Uproc.pid
              Vas.pp_access access addr))

let boot ?(cores = 4) ?(config = Config.nephele_default)
    ?(costs = Costs.nephele) () =
  let sys =
    System.make ~prepare_image:unikernel_image ~cores ~config ~costs
      ~multi_address_space:true ()
  in
  let kernel = System.kernel sys in
  Kernel.set_fork_hook kernel (fun parent child_main ->
      do_fork kernel parent child_main);
  Kernel.set_fault_hook kernel (fun u ~addr ~access ->
      handle_fault kernel u ~addr ~access);
  sys

let system t = t
let kernel = System.kernel
let engine = System.engine
let start = System.start
let run = System.run
let last_fork_latency = System.last_fork_latency
let trace = System.trace
