(** The Nephele-like VM-cloning baseline (§2.3, "OS as a process").

    Nephele supports fork in a unikernel by cloning the entire virtual
    machine through the hypervisor: a new Xen domain is created (event
    channels, grant tables, device re-plumbing — a fixed cost of ~10.5 ms)
    and the whole VM image, kernel included, is duplicated. The paper
    replays Nephele's microbenchmarks (fork latency and per-process memory,
    Fig. 8) against μFork; this module reproduces that comparison point.

    Built on the multi-address-space kit (each clone is its own domain =
    its own address space). The per-process image includes the unikernel
    kernel text/data, which is why a minimal program still costs ~1.6 MB
    per clone. *)

type t

val boot :
  ?cores:int ->
  ?config:Ufork_sas.Config.t ->
  ?costs:Ufork_sim.Costs.t ->
  unit ->
  t

val system : t -> Ufork_core.System.t
(** The underlying {!Ufork_core.System.t} (engine + kernel + lifecycle). *)

val kernel : t -> Ufork_sas.Kernel.t
val engine : t -> Ufork_sim.Engine.t

val trace : t -> Ufork_sim.Trace.t
(** The kernel's mechanism-event bus. *)

val unikernel_image : Ufork_sas.Image.t -> Ufork_sas.Image.t
(** Extend an application image with the unikernel kernel's own text and
    data (cloned along with the app under this design). *)

val start :
  t ->
  ?affinity:int ->
  image:Ufork_sas.Image.t ->
  (Ufork_sas.Api.t -> unit) ->
  Ufork_sas.Uproc.t
(** [image] is wrapped with {!unikernel_image} internally. *)

val run : ?until:int64 -> t -> unit
val last_fork_latency : t -> int64
