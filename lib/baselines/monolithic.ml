module Capability = Ufork_cheri.Capability
module Addr = Ufork_mem.Addr
module Pte = Ufork_mem.Pte
module Page_table = Ufork_mem.Page_table
module Vas = Ufork_mem.Vas
module Engine = Ufork_sim.Engine
module Costs = Ufork_sim.Costs
module Meter = Ufork_sim.Meter
module Event = Ufork_sim.Event
module Trace = Ufork_sim.Trace
module Kernel = Ufork_sas.Kernel
module Uproc = Ufork_sas.Uproc
module Config = Ufork_sas.Config
module Fdesc = Ufork_sas.Fdesc
module Tinyalloc = Ufork_sas.Tinyalloc
module Copy_engine = Ufork_core.Copy_engine
module Fork = Ufork_core.Fork

type t = { kernel : Kernel.t; engine : Engine.t }

let stack_touch_vpns (u : Uproc.t) n =
  let r = u.Uproc.regions in
  let vpn0 = Addr.vpn_of_addr r.Uproc.stack_base in
  let pages = Addr.bytes_to_pages r.Uproc.stack_bytes in
  List.init (min n pages) (fun i -> vpn0 + pages - 1 - i)

let do_fork k (parent : Uproc.t) child_main =
  let config = Kernel.config k in
  let t0 = Engine.now (Kernel.engine k) in
  Kernel.emit ~proc:parent k Event.Fork_fixed;
  let fds = Fdesc.Fdtable.dup_all parent.Uproc.fds in
  let child =
    Kernel.create_uproc k ~parent ~fds ~image:parent.Uproc.image ()
  in
  child.Uproc.forked <- true;
  (* Same virtual layout in a fresh address space: copy the vm_map, share
     every resident frame copy-on-write, and leave the child's pmap empty
     (read=false: each first touch takes a soft fault). *)
  Page_table.fold parent.Uproc.pt ~init:()
    ~f:(fun vpn (ppte : Pte.t) () ->
      if
        Addr.addr_of_vpn vpn >= parent.Uproc.area_base
        && Addr.addr_of_vpn vpn < parent.Uproc.area_base + parent.Uproc.area_bytes
      then begin
        Kernel.emit ~proc:child k Event.Pte_copy;
        if ppte.Pte.share = Pte.Shm_shared then
          (* MAP_SHARED segments keep pointing at the same frames. *)
          Page_table.map_shared child.Uproc.pt ~vpn
            (Pte.make ~read:true ~write:ppte.Pte.write ~exec:false
               ~share:Pte.Shm_shared ppte.Pte.frame)
        else begin
          if ppte.Pte.write then begin
            ppte.Pte.write <- false;
            ppte.Pte.share <- Pte.Cow_shared
          end;
          Page_table.map_shared child.Uproc.pt ~vpn
            (Pte.make ~read:false ~write:false ~exec:false
               ~share:Pte.Cow_shared ppte.Pte.frame)
        end
      end);
  child.Uproc.allocator <- Tinyalloc.clone parent.Uproc.allocator ~delta:0;
  (* The fold write-protected live parent PTEs; flush stale TLB entries
     before either side relies on the CoW downgrades. *)
  Kernel.emit ~proc:parent k Event.Tlb_shootdown;
  (* Parent immediately re-dirties its stack working set (CoW copies). *)
  Kernel.touch_pages_for_write k parent
    (stack_touch_vpns parent config.Config.parent_touch_pages);
  Kernel.emit ~proc:parent k Event.Thread_create;
  let child_body api =
    Kernel.touch_pages_for_write k child
      (stack_touch_vpns child config.Config.child_touch_pages);
    child_main api
  in
  Kernel.spawn_process k child child_body;
  let dt = Int64.sub (Engine.now (Kernel.engine k)) t0 in
  Trace.gauge (Kernel.trace k) Trace.last_fork_latency_key (Int64.to_int dt);
  child.Uproc.pid

let handle_fault k (u : Uproc.t) ~addr ~access =
  let vpn = Addr.vpn_of_addr addr in
  match Page_table.lookup u.Uproc.pt ~vpn with
  | None -> (
      match Uproc.region_of_addr u addr with
      | Some ("heap" | "meta") ->
          Kernel.emit ~proc:u k Event.Demand_zero;
          Kernel.map_zero_pages k u ~base:(Addr.addr_of_vpn vpn)
            ~bytes:Addr.page_size ()
      | Some r ->
          raise
            (Fork.Segfault
               (Printf.sprintf "pid %d: %#x (%s) not mapped" u.Uproc.pid addr r))
      | None ->
          raise
            (Fork.Segfault
               (Printf.sprintf "pid %d: %#x outside process image" u.Uproc.pid
                  addr)))
  | Some pte -> (
      let first_touch = not pte.Pte.read in
      match access with
      | Vas.Read | Vas.Cap_load | Vas.Exec ->
          if first_touch then begin
            (* pmap miss on a resident page: map it in, still CoW. *)
            Kernel.emit ~proc:u k Event.Soft_fault;
            pte.Pte.read <- true;
            if Uproc.region_of_addr u addr = Some "code" then
              pte.Pte.exec <- true
          end
          else
            raise
              (Fork.Segfault
                 (Format.asprintf "pid %d: invalid %a at %#x" u.Uproc.pid
                    Vas.pp_access access addr))
      | Vas.Write | Vas.Cap_store -> (
          if first_touch then begin
            Kernel.emit ~proc:u k Event.Soft_fault;
            pte.Pte.read <- true
          end;
          match pte.Pte.share with
          | Pte.Cow_shared ->
              Kernel.emit ~proc:u k Event.Page_fault;
              Kernel.emit ~proc:u k Event.Cow_write_fault;
              Copy_engine.resolve_parent_cow k u ~vpn
          | Pte.Private ->
              if pte.Pte.write then () (* resolved by the soft fault above *)
              else
                raise
                  (Fork.Segfault
                     (Printf.sprintf "pid %d: write to read-only %#x"
                        u.Uproc.pid addr))
          | Pte.Shm_shared ->
              (* Shared segments are write-through; nothing to resolve. *)
              ()
          | Pte.Coa_shared | Pte.Copa_shared ->
              (* Never installed by this kernel. *)
              assert false))

let boot ?(cores = 4) ?(config = Config.cheribsd_default)
    ?(costs = Costs.cheribsd) () =
  let engine = Engine.create ~cores () in
  let kernel =
    Kernel.create ~engine ~costs ~config ~multi_address_space:true ()
  in
  Kernel.set_fork_hook kernel (fun parent child_main ->
      do_fork kernel parent child_main);
  Kernel.set_fault_hook kernel (fun u ~addr ~access ->
      handle_fault kernel u ~addr ~access);
  { kernel; engine }

let kernel t = t.kernel
let engine t = t.engine

let start t ?affinity ~image main =
  let u = Kernel.create_uproc t.kernel ~image () in
  Kernel.map_initial_image t.kernel u;
  Kernel.spawn_process t.kernel ?affinity u main;
  u

let run ?until t = Engine.run ?until t.engine

let last_fork_latency t = Kernel.last_fork_latency t.kernel

let trace t = Kernel.trace t.kernel
