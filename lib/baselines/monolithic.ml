module Addr = Ufork_mem.Addr
module Pte = Ufork_mem.Pte
module Page_table = Ufork_mem.Page_table
module Vas = Ufork_mem.Vas
module Costs = Ufork_sim.Costs
module Event = Ufork_sim.Event
module Kernel = Ufork_sas.Kernel
module Uproc = Ufork_sas.Uproc
module Config = Ufork_sas.Config
module Copy_engine = Ufork_core.Copy_engine
module Fork_spine = Ufork_core.Fork_spine
module Memops = Ufork_core.Memops
module System = Ufork_core.System

type t = System.t

(* Same virtual layout in a fresh address space: copy the vm_map, share
   every resident frame copy-on-write, and leave the child's pmap empty
   (read=false: each first touch takes a soft fault). Returns whether any
   live writable PTE was actually downgraded — only then is a TLB
   shootdown owed. *)
let duplicate k ~(parent : Uproc.t) ~(child : Uproc.t) =
  let vpn0 = Addr.vpn_of_addr parent.Uproc.area_base in
  let count = Addr.bytes_to_pages parent.Uproc.area_bytes in
  let shm = ref [] and cow = ref [] in
  Page_table.iter_range parent.Uproc.pt ~vpn:vpn0 ~count
    (fun v (ppte : Pte.t) ->
      if ppte.Pte.share = Pte.Shm_shared then shm := v :: !shm
      else cow := v :: !cow);
  (* MAP_SHARED segments keep pointing at the same frames. *)
  Memops.share_range k ~parent ~child ~delta_pages:0 ~downgrade:false
    ~child_pte:(fun (ppte : Pte.t) ->
      Pte.make ~read:true ~write:ppte.Pte.write ~exec:false
        ~share:Pte.Shm_shared ppte.Pte.frame)
    (List.rev !shm)
  |> ignore;
  Memops.share_range k ~parent ~child ~delta_pages:0
    ~child_pte:(fun (ppte : Pte.t) ->
      Pte.make ~read:false ~write:false ~exec:false ~share:Pte.Cow_shared
        ppte.Pte.frame)
    (List.rev !cow)

let do_fork k (parent : Uproc.t) child_main =
  let downgraded = ref false in
  let hooks =
    {
      Fork_spine.default with
      duplicate =
        (fun k ~parent ~child -> downgraded := duplicate k ~parent ~child);
      post_copy =
        (fun k ~parent ~child:_ ~pte_copies:_ ->
          (* The fold write-protected live parent PTEs; flush stale TLB
             entries before either side relies on the CoW downgrades. A
             walk that downgraded nothing (every entry already read-only
             or shared) owes no shootdown. *)
          if !downgraded then
            Kernel.emit ~proc:parent k
              (Event.Tlb_shootdown
                 (Ufork_sim.Engine.cores (Kernel.engine k) - 1));
          (* Parent immediately re-dirties its stack working set (CoW
             copies). *)
          let config = Kernel.config k in
          Kernel.touch_pages_for_write k parent
            (Fork_spine.stack_touch_vpns parent
               config.Config.parent_touch_pages));
      child_prologue =
        (fun k ~child ->
          let config = Kernel.config k in
          Kernel.touch_pages_for_write k child
            (Fork_spine.stack_touch_vpns child config.Config.child_touch_pages));
    }
  in
  Fork_spine.run k hooks parent child_main

let handle_fault k (u : Uproc.t) ~addr ~access =
  Kernel.with_span k ~name:"fault.service" @@ fun () ->
  let vpn = Addr.vpn_of_addr addr in
  match Page_table.lookup u.Uproc.pt ~vpn with
  | None -> Fork_spine.resolve_unmapped k u ~addr ~outside:"process image"
  | Some pte -> (
      let first_touch = not pte.Pte.read in
      match access with
      | Vas.Read | Vas.Cap_load | Vas.Exec ->
          if first_touch then begin
            (* pmap miss on a resident page: map it in, still CoW. *)
            Kernel.emit ~proc:u k Event.Soft_fault;
            pte.Pte.read <- true;
            if Uproc.region_of_addr u addr = Some "code" then
              pte.Pte.exec <- true
          end
          else
            raise
              (Fork_spine.Segfault
                 (Format.asprintf "pid %d: invalid %a at %#x" u.Uproc.pid
                    Vas.pp_access access addr))
      | Vas.Write | Vas.Cap_store -> (
          if first_touch then begin
            Kernel.emit ~proc:u k Event.Soft_fault;
            pte.Pte.read <- true
          end;
          match pte.Pte.share with
          | Pte.Cow_shared ->
              Kernel.emit ~proc:u k Event.Page_fault;
              Kernel.emit ~proc:u k Event.Cow_write_fault;
              Copy_engine.resolve_parent_cow k u ~vpn
          | Pte.Private ->
              if pte.Pte.write then () (* resolved by the soft fault above *)
              else
                raise
                  (Fork_spine.Segfault
                     (Printf.sprintf "pid %d: write to read-only %#x"
                        u.Uproc.pid addr))
          | Pte.Shm_shared ->
              (* Shared segments are write-through; nothing to resolve. *)
              ()
          | Pte.Coa_shared | Pte.Copa_shared ->
              (* Never installed by this kernel. *)
              assert false))

let boot ?(cores = 4) ?(config = Config.cheribsd_default)
    ?(costs = Costs.cheribsd) () =
  let sys =
    System.make ~cores ~config ~costs ~multi_address_space:true ()
  in
  let kernel = System.kernel sys in
  Kernel.set_fork_hook kernel (fun parent child_main ->
      do_fork kernel parent child_main);
  Kernel.set_fault_hook kernel (fun u ~addr ~access ->
      handle_fault kernel u ~addr ~access);
  sys

let system t = t
let kernel = System.kernel
let engine = System.engine
let start = System.start
let run = System.run
let last_fork_latency = System.last_fork_latency
let trace = System.trace
