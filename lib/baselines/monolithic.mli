(** The CheriBSD-like monolithic baseline (§5: "a classical POSIX fork on a
    CHERI-enabled FreeBSD").

    A multi-address-space kernel built from the same substrate as μFork:
    every process gets its own page table with an {e identical} virtual
    layout, so fork needs no relocation — the child's capabilities are
    valid as-is. Costs differ by mechanism, not by fiat:

    - syscalls trap (≥ 800-cycle exception round trip);
    - context switches between processes switch page tables and pay TLB
      maintenance;
    - fork duplicates proc/vmspace structures (heavy fixed cost) and copies
      vm_map/pmap entries at ~150 cycles each;
    - the child's pmap starts empty: its first touch of every resident
      page takes a soft fault (this, not copying, dominates a forked
      child walking a big database);
    - CoW: writes by either side copy the page, reads never do;
    - the allocator re-dirties a fraction of the live heap arena on the
      forked child's first allocation (the behaviour the paper measures as
      CheriBSD's high forked-Redis memory, Fig. 5). *)

type t

val boot :
  ?cores:int ->
  ?config:Ufork_sas.Config.t ->
  ?costs:Ufork_sim.Costs.t ->
  unit ->
  t
(** Defaults: 4 cores, {!Ufork_sas.Config.cheribsd_default},
    {!Ufork_sim.Costs.cheribsd}. *)

val system : t -> Ufork_core.System.t
(** The underlying {!Ufork_core.System.t} (engine + kernel + lifecycle). *)

val kernel : t -> Ufork_sas.Kernel.t
val engine : t -> Ufork_sim.Engine.t

val trace : t -> Ufork_sim.Trace.t
(** The kernel's mechanism-event bus. *)

val start :
  t ->
  ?affinity:int ->
  image:Ufork_sas.Image.t ->
  (Ufork_sas.Api.t -> unit) ->
  Ufork_sas.Uproc.t

val run : ?until:int64 -> t -> unit

val last_fork_latency : t -> int64
(** Cycles inside the most recent fork call. *)
