type t = { mutable state : int64 }

let create ~seed = { state = seed }
let copy t = { state = t.state }

(* splitmix64: fast, full-period on the 64-bit state, and trivially
   reproducible across platforms. *)
let next64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let split t = { state = next64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bound *. v /. 9007199254740992. (* 2^53 *)

let bool t = Int64.logand (next64 t) 1L = 1L

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  b

let exponential t ~mean =
  let u = Float.max 1e-12 (float t 1.0) in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
