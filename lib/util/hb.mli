(** Happens-before instrumentation bus.

    Publishers (the simulation engine, locks, the frame pool, page
    tables, the gauge surface) report ordering edges and shared-state
    mutations; a dynamic race detector subscribes for the duration of a
    checked run. With no subscriber the publishers pay a single bool
    read and allocate nothing, so golden accounting is untouched.

    The module sits in lib/util so both lib/sim and lib/mem can publish
    without a dependency cycle. *)

type loc =
  | Frame of int  (** a physical frame's refcount/pool state, by frame id *)
  | Pte of { table : int; vpn : int }  (** one page-table entry *)
  | Gauge of string  (** a derived-meter gauge key *)
  | Pool  (** the shared global free-frame pool behind the per-core freelists *)

type event =
  | Spawn of { parent : int; child : int }
  | Wake of { by : int; target : int }
  | Acquire of { tid : int; lock : int }
  | Release of { tid : int; lock : int }
  | Write of { tid : int; loc : loc; site : string }
  | Block of { tid : int }
      (** the thread suspended (lock wait, condition wait, sleep) *)
  | Contend of { tid : int; lock : int; holder : int }
      (** [tid] found [lock] held by [holder]; a [Block] follows *)
  | Handoff of { from_ : int; to_ : int; lock : int }
      (** direct ownership transfer: the next [Wake { target = to_ }]
          delivers [lock] *)
  | Steal of { tid : int; core : int }
      (** work stealing re-homed [tid] onto [core] *)
  | Ipi of { by : int; remotes : int }
      (** TLB-shootdown batch interrupting [remotes] remote cores *)
  | Span_open of { tid : int; name : string }
      (** trace span boundary (one path segment, innermost name only) *)
  | Span_close of { tid : int; name : string }
  | Cap_store of { tid : int; addr : int; prov : int }
      (** a tagged capability with provenance stamp [prov] landed at
          [addr]; consumed by the capflow R4 taint invariant *)
  | Cap_load of { tid : int; addr : int; prov : int }
      (** a tagged capability was loaded back out of memory *)

val set_tid_provider : (unit -> int) -> unit
(** Installed once by the engine: the current simulated thread id, or a
    negative value outside any simulated thread. *)

val tid : unit -> int
(** The current simulated thread id via the installed provider. *)

val set_core_provider : (unit -> int) -> unit
(** Installed once by the engine: the core the current simulated thread
    occupies, or a negative value outside any simulated thread. Lets
    publishers below lib/sim (e.g. the frame pool's per-core freelists)
    pick a core bucket without a dependency cycle. *)

val core : unit -> int
(** The current core via the installed provider. *)

val set_lock_name : int -> string -> unit
(** Register a stable resource name for a lock id (e.g.
    ["lock.frame_pool"]). Named locks appear by name in race reports. *)

val lock_name : int -> string option

val pp_lock : Format.formatter -> int -> unit
(** ["<name> (lock <id>)"] when the id is named, ["lock <id>"] otherwise. *)

val on : unit -> bool
(** True while a subscriber is armed. Publishers guard event
    construction behind this so the off state allocates nothing. *)

val subscribe : (event -> unit) -> unit
(** Arm the bus. One subscriber at a time; a second [subscribe]
    replaces the first. *)

val unsubscribe : unit -> unit

val emit : event -> unit
(** Deliver to the subscriber, if armed. Call under [if on () then ...]
    when building the event allocates. *)

val pp_loc : Format.formatter -> loc -> unit
