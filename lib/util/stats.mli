(** Small descriptive-statistics helpers used by the benchmark harness.

    The paper reports averages of 10 runs with standard deviation error
    bars; [summary] provides exactly that. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summary : float list -> summary
(** [summary xs] computes descriptive statistics. Raises [Invalid_argument]
    on the empty list. *)

val mean : float list -> float
val stddev : float list -> float
val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100]; nearest-rank on the sorted data.
    Raises [Invalid_argument] on the empty list or [p] outside the range. *)

val relative_change : baseline:float -> float -> float
(** [relative_change ~baseline v] is [(v - baseline) / baseline]. *)

val speedup : baseline:float -> float -> float
(** [speedup ~baseline v] is [baseline /. v] — how many times faster [v] is
    than [baseline] when both are durations. *)
