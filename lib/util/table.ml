type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header rows =
  let ncols = List.length header in
  let normalize row =
    let n = List.length row in
    if n >= ncols then row
    else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> a
    | Some _ | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let line cells =
    let padded =
      List.mapi
        (fun i c -> pad (List.nth aligns i) (List.nth widths i) c)
        cells
    in
    String.concat "  " padded
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (line header :: sep :: List.map line rows)

let print ?align ~header rows =
  print_string (render ?align ~header rows);
  print_newline ()

let fmt_f ?(dec = 2) v = Printf.sprintf "%.*f" dec v

let fmt_si v =
  let abs = Float.abs v in
  if abs >= 1e9 then Printf.sprintf "%.2f G" (v /. 1e9)
  else if abs >= 1e6 then Printf.sprintf "%.2f M" (v /. 1e6)
  else if abs >= 1e3 then Printf.sprintf "%.2f k" (v /. 1e3)
  else if abs >= 1. || abs = 0. then Printf.sprintf "%.2f" v
  else if abs >= 1e-3 then Printf.sprintf "%.2f m" (v *. 1e3)
  else if abs >= 1e-6 then Printf.sprintf "%.2f u" (v *. 1e6)
  else Printf.sprintf "%.2f n" (v *. 1e9)
