(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic element of the simulation (workload generation, request
    arrival jitter, key selection) draws from an explicit [Prng.t] so that
    experiments are reproducible bit-for-bit across runs and platforms. *)

type t

val create : seed:int64 -> t
(** Fresh generator. Equal seeds yield equal streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val split : t -> t
(** A new generator derived from (and decorrelated with) [t]'s stream. *)

val next64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] if
    [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in [lo, hi] inclusive. Raises [Invalid_argument] if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool
val bytes : t -> int -> bytes
(** [bytes t n] is [n] random bytes. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean (inter-arrival
    times for open-loop request generators). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
