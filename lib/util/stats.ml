type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
      sqrt (sq /. float_of_int (List.length xs - 1))

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: out of range";
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  let idx = if rank <= 0 then 0 else if rank > n then n - 1 else rank - 1 in
  a.(idx)

let summary xs =
  match xs with
  | [] -> invalid_arg "Stats.summary: empty"
  | _ ->
      let n = List.length xs in
      {
        n;
        mean = mean xs;
        stddev = stddev xs;
        min = List.fold_left min infinity xs;
        max = List.fold_left max neg_infinity xs;
        median = percentile 50. xs;
      }

let relative_change ~baseline v = (v -. baseline) /. baseline
let speedup ~baseline v = baseline /. v
