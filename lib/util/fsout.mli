(** Output-file plumbing for the CLI and bench front ends.

    Every artifact sink (flamegraph stacks, CSV time series, trace
    files, causal-analysis exports) routes through here so the behaviour
    is uniform: missing parent directories are created, and an
    unwritable path surfaces as a clean [Error] message — one line, no
    exception backtrace — for the front end to print and exit on. *)

val mkdirs : string -> (unit, string) result
(** Create the directory (and any missing ancestors), succeeding if it
    already exists. *)

val with_out : string -> (out_channel -> unit) -> (unit, string) result
(** [with_out path f] creates [path]'s missing parent directories, opens
    it for writing, runs [f], and closes the channel (also on exception).
    Filesystem failures — unwritable directory, path through a regular
    file — return [Error msg] with a one-line human-readable message. *)

val write : string -> string -> (unit, string) result
(** [write path contents]: {!with_out} writing one string. *)
