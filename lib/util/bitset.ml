type t = { bits : Bytes.t; length : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { bits = Bytes.make ((n + 7) / 8) '\000'; length = n }

let length t = t.length

let check t i =
  if i < 0 || i >= t.length then invalid_arg "Bitset: index out of bounds"

let get t i =
  check t i;
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i;
  let b = Char.code (Bytes.get t.bits (i lsr 3)) in
  Bytes.set t.bits (i lsr 3) (Char.chr (b lor (1 lsl (i land 7))))

let clear t i =
  check t i;
  let b = Char.code (Bytes.get t.bits (i lsr 3)) in
  Bytes.set t.bits (i lsr 3) (Char.chr (b land lnot (1 lsl (i land 7)) land 0xff))

let assign t i v = if v then set t i else clear t i
let clear_all t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let copy_into ~src ~dst =
  if src.length <> dst.length then invalid_arg "Bitset.copy_into: length";
  Bytes.blit src.bits 0 dst.bits 0 (Bytes.length src.bits)

let popcount_byte = Array.init 256 (fun b ->
    let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
    go b 0)

let count t =
  let acc = ref 0 in
  for i = 0 to Bytes.length t.bits - 1 do
    acc := !acc + popcount_byte.(Char.code (Bytes.get t.bits i))
  done;
  !acc

let iter_set t f =
  for byte = 0 to Bytes.length t.bits - 1 do
    let b = Char.code (Bytes.get t.bits byte) in
    if b <> 0 then
      for bit = 0 to 7 do
        if b land (1 lsl bit) <> 0 then begin
          let i = (byte lsl 3) lor bit in
          if i < t.length then f i
        end
      done
  done

let any t =
  let rec go i =
    if i >= Bytes.length t.bits then false
    else if Bytes.get t.bits i <> '\000' then true
    else go (i + 1)
  in
  go 0
