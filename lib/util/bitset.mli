(** Fixed-size mutable bitsets.

    Used for the per-page capability-tag side table (one bit per 16-byte
    granule) and for dirty/copied page tracking. *)

type t

val create : int -> t
(** [create n] is a bitset of [n] bits, all clear. *)

val length : t -> int
val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit
val assign : t -> int -> bool -> unit
val clear_all : t -> unit
val copy_into : src:t -> dst:t -> unit
(** Copies all bits; the two bitsets must have equal length. *)

val count : t -> int
(** Number of set bits. *)

val iter_set : t -> (int -> unit) -> unit
(** [iter_set t f] applies [f] to each set bit index, ascending. *)

val any : t -> bool
(** [any t] is true iff at least one bit is set. *)
