(** Unit conversions shared by the whole simulator.

    The simulated machine is clocked like the ARM Morello development system
    used in the paper: 2.5 GHz. All simulated durations are expressed in
    cycles (int64) and converted to seconds only for reporting. *)

val clock_hz : float
(** Simulated core frequency, cycles per second (2.5e9). *)

val cycles_of_ns : float -> int64
(** [cycles_of_ns t] is the cycle count closest to [t] nanoseconds. *)

val cycles_of_us : float -> int64
val cycles_of_ms : float -> int64
val cycles_of_s : float -> int64

val ns_of_cycles : int64 -> float
val us_of_cycles : int64 -> float
val ms_of_cycles : int64 -> float
val s_of_cycles : int64 -> float

val kib : int -> int
(** [kib n] is [n] kibibytes in bytes. *)

val mib : int -> int
(** [mib n] is [n] mebibytes in bytes. *)

val bytes_pp : Format.formatter -> int -> unit
(** Human-readable byte count ("512 B", "4.0 KiB", "1.5 MiB"). *)

val mb_of_bytes : int -> float
(** Bytes to MB (10^6, as used by the paper's memory figures). *)
