(** ASCII table rendering for the benchmark harness.

    Renders the rows/series of each paper figure as an aligned text table,
    so [dune exec bench/main.exe] output can be compared side by side with
    the paper's plots. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays the table out with a separator line under the
    header. Columns default to right-aligned except the first. Rows shorter
    than the header are padded with empty cells. *)

val print :
  ?align:align list -> header:string list -> string list list -> unit
(** [render] followed by [print_string] and a trailing newline. *)

val fmt_f : ?dec:int -> float -> string
(** Fixed-point float formatting, default 2 decimals. *)

val fmt_si : float -> string
(** Engineering formatting: 1234.5 -> "1.23 k", 0.00012 -> "120.00 u". *)
