let clock_hz = 2.5e9

let cycles_of_ns t = Int64.of_float (t *. clock_hz /. 1e9 +. 0.5)
let cycles_of_us t = Int64.of_float (t *. clock_hz /. 1e6 +. 0.5)
let cycles_of_ms t = Int64.of_float (t *. clock_hz /. 1e3 +. 0.5)
let cycles_of_s t = Int64.of_float (t *. clock_hz +. 0.5)

let ns_of_cycles c = Int64.to_float c /. clock_hz *. 1e9
let us_of_cycles c = Int64.to_float c /. clock_hz *. 1e6
let ms_of_cycles c = Int64.to_float c /. clock_hz *. 1e3
let s_of_cycles c = Int64.to_float c /. clock_hz

let kib n = n * 1024
let mib n = n * 1024 * 1024

let bytes_pp ppf n =
  let f = float_of_int n in
  if n < 1024 then Format.fprintf ppf "%d B" n
  else if n < 1024 * 1024 then Format.fprintf ppf "%.1f KiB" (f /. 1024.)
  else if n < 1024 * 1024 * 1024 then
    Format.fprintf ppf "%.1f MiB" (f /. 1048576.)
  else Format.fprintf ppf "%.2f GiB" (f /. 1073741824.)

let mb_of_bytes n = float_of_int n /. 1e6
