(* Uniform artifact-file output: create missing parents, report
   filesystem failures as clean one-line [Error]s instead of letting a
   [Sys_error] backtrace reach the user. *)

let rec mkdirs dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then Ok ()
  else
    match mkdirs (Filename.dirname dir) with
    | Error _ as e -> e
    | Ok () -> (
        try
          Sys.mkdir dir 0o755;
          Ok ()
        with
        | Sys_error msg -> Error msg
        | Sys.Break as e -> raise e)

let with_out path f =
  match mkdirs (Filename.dirname path) with
  | Error msg -> Error (Printf.sprintf "cannot create %s: %s" path msg)
  | Ok () -> (
      match open_out path with
      | exception Sys_error msg -> Error msg
      | oc -> (
          match f oc with
          | () ->
              close_out oc;
              Ok ()
          | exception e ->
              close_out_noerr oc;
              (match e with
              | Sys_error msg ->
                  Error (Printf.sprintf "cannot write %s: %s" path msg)
              | e -> raise e)))

let write path contents = with_out path (fun oc -> output_string oc contents)
