(* Happens-before instrumentation bus.

   The concurrency layer (engine, locks), the memory kit (frame pool,
   page tables) and the gauge surface publish ordering edges and
   shared-state mutations here; the dynamic race detector in
   lib/analysis subscribes for the duration of a checked run. With no
   subscriber the publishers pay one mutable-bool read and build no
   values, so production runs and the golden accounting are untouched.

   This module lives at the bottom of the dependency stack (lib/util)
   precisely so that both lib/sim and lib/mem can publish without a
   dependency cycle: the detector, not the publishers, decides what the
   events mean. *)

type loc =
  | Frame of int  (** a physical frame's refcount/pool state, by frame id *)
  | Pte of { table : int; vpn : int }  (** one page-table entry *)
  | Gauge of string  (** a derived-meter gauge key *)
  | Pool  (** the shared global free-frame pool behind the per-core freelists *)

type event =
  | Spawn of { parent : int; child : int }
      (** thread creation: everything the parent did so far
          happens-before everything the child does *)
  | Wake of { by : int; target : int }
      (** a suspended thread resumed by [by] (condition signal, waker
          handoff): the signaller's past happens-before the wakee's
          future *)
  | Acquire of { tid : int; lock : int }
  | Release of { tid : int; lock : int }
  | Write of { tid : int; loc : loc; site : string }
  | Block of { tid : int }
      (** the thread suspended (lock wait, condition wait, sleep); the
          causal analyzer uses this as the wait-segment start *)
  | Contend of { tid : int; lock : int; holder : int }
      (** [tid] found [lock] held by [holder] and is about to suspend;
          emitted just before the matching [Block] *)
  | Handoff of { from_ : int; to_ : int; lock : int }
      (** direct lock-ownership transfer on release: the very next
          [Wake] of [to_] delivers [lock]. A causal edge, not an
          ordering primitive — the detector's ordering comes from the
          Release/Acquire pair. *)
  | Steal of { tid : int; core : int }
      (** work stealing re-homed [tid] onto [core] (emitted by the
          dispatcher, outside any thread context) *)
  | Ipi of { by : int; remotes : int }
      (** a TLB-shootdown batch: [by] interrupts [remotes] remote cores *)
  | Span_open of { tid : int; name : string }
      (** a trace span opened on [tid] (span-boundary hook; [name] is
          the span's own segment, not the full stack path) *)
  | Span_close of { tid : int; name : string }
  | Cap_store of { tid : int; addr : int; prov : int }
      (** a tagged capability with provenance stamp [prov] was stored at
          [addr]; the capflow detector resolves which μprocess area the
          address belongs to and checks the R4 taint invariant *)
  | Cap_load of { tid : int; addr : int; prov : int }
      (** a tagged capability was loaded back out of memory *)

(* The engine installs the provider once at link time; outside any
   simulated thread (boot, direct poking from unit tests) it returns a
   negative tid, which subscribers treat as "not a concurrent context".
   [enabled] is the only state the hot paths touch when no detector is
   armed. *)

let enabled = ref false
let listener : (event -> unit) ref = ref ignore
let tid_provider : (unit -> int) ref = ref (fun () -> -1)
let core_provider : (unit -> int) ref = ref (fun () -> -1)

let set_tid_provider f = tid_provider := f
let tid () = !tid_provider ()
let set_core_provider f = core_provider := f
let core () = !core_provider ()
let on () = !enabled

(* Stable resource names for lock ids (the sharded kernel locks register
   here), so race reports and trace exports can name the resource a lock
   protects instead of printing a bare number. Process-global like the
   id counter itself: ids are never reused within a run. *)
let lock_names : (int, string) Hashtbl.t = Hashtbl.create 64

(* Lock creation happens on every machine boot, and the bench harness
   boots machines from several domains at once ([Experiments.parmap]);
   a bare Hashtbl would be a host-level data race. Detectors only ever
   run single-domain, so reads stay cheap. *)
let lock_names_mutex = Mutex.create ()

let set_lock_name id name =
  Mutex.protect lock_names_mutex (fun () ->
      Hashtbl.replace lock_names id name)

let lock_name id =
  Mutex.protect lock_names_mutex (fun () -> Hashtbl.find_opt lock_names id)

let pp_lock ppf id =
  match lock_name id with
  | Some name -> Format.fprintf ppf "%s (lock %d)" name id
  | None -> Format.fprintf ppf "lock %d" id

let subscribe f =
  listener := f;
  enabled := true

let unsubscribe () =
  enabled := false;
  listener := ignore

let emit ev = if !enabled then !listener ev

let pp_loc ppf = function
  | Frame fid -> Format.fprintf ppf "frame %d" fid
  | Pte { table; vpn } -> Format.fprintf ppf "pt%d vpn %#x" table vpn
  | Gauge key -> Format.fprintf ppf "gauge %s" key
  | Pool -> Format.fprintf ppf "pool"
