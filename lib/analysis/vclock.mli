(** Sparse vector clocks over engine thread ids.

    The race detector's ordering arithmetic: a clock maps each thread id
    to the number of ordering-relevant events it has performed. Absent
    components read as 0, so {!empty} is the bottom element of the
    [leq] partial order and clocks never need the thread population in
    advance. *)

type t

val empty : t

val get : t -> int -> int
(** Component for a thread id; 0 when absent. *)

val incr : t -> int -> t
(** Advance one component by one. *)

val join : t -> t -> t
(** Pointwise max — the least upper bound. *)

val leq : t -> t -> bool
(** Pointwise [<=]: [leq a b] means everything [a] knows, [b] knows. *)

val equal : t -> t -> bool

val lt : t -> t -> bool
(** Strict: [leq] and not [equal] — a genuine happened-before. *)

val pp : Format.formatter -> t -> unit
