module Addr = Ufork_mem.Addr
module Page = Ufork_mem.Page
module Phys = Ufork_mem.Phys
module Pte = Ufork_mem.Pte
module Page_table = Ufork_mem.Page_table
module Capability = Ufork_cheri.Capability
module Perms = Ufork_cheri.Perms
module Engine = Ufork_sim.Engine
module Costs = Ufork_sim.Costs
module Event = Ufork_sim.Event
module Trace = Ufork_sim.Trace
module Kernel = Ufork_sas.Kernel
module Uproc = Ufork_sas.Uproc
module Config = Ufork_sas.Config
module Image = Ufork_sas.Image

type scenario = {
  name : string;
  expected : Invariant.t;
  detect : unit -> Invariant.violation list;
}

(* {1 State-injection scaffolding}

   A small healthy SASOS: two μprocesses with their initial images
   eagerly mapped, nothing running. Built outside any engine thread —
   the event bus counts the setup but charges no cycles. *)

let sas_machine () =
  let engine = Engine.create ~cores:1 () in
  let k =
    Kernel.create ~engine ~costs:Costs.ufork ~config:Config.ufork_fast
      ~multi_address_space:false ()
  in
  let u1 = Kernel.create_uproc k ~image:Image.hello () in
  Kernel.map_initial_image k u1;
  let u2 = Kernel.create_uproc k ~image:Image.hello () in
  Kernel.map_initial_image k u2;
  (k, u1, u2)

let data_pte (u : Uproc.t) =
  Page_table.lookup_exn u.Uproc.pt
    ~vpn:(Addr.vpn_of_addr u.Uproc.regions.Uproc.data_base)

(* An address above every allocated area: mapped or pointed-to, nothing
   live can legitimately own it. *)
let beyond_areas k =
  List.fold_left (fun m (b, s, _) -> max m (b + s)) 0 (Kernel.areas k)
  + (2 * Addr.page_size)

let user_cap k ~base ~length =
  Capability.mint ~parent:(Kernel.root_cap k) ~base ~length
    ~perms:Perms.user_data

let state name expected inject =
  {
    name;
    expected;
    detect =
      (fun () ->
        let k, u1, u2 = sas_machine () in
        inject k u1 u2;
        Checker.sweep k);
  }

(* {1 Protocol-injection scaffolding} *)

let r ~t ~pid event =
  {
    Trace.t = Int64.of_int t;
    core = 0;
    tid = 0;
    name = "";
    pid;
    event;
    cycles = 0L;
  }

let stream evs = List.mapi (fun t (pid, ev) -> r ~t ~pid ev) evs

let protocol name expected evs =
  { name; expected; detect = (fun () -> Lint.run (stream evs)) }

let scenarios =
  [
    state "S1-leaked-retain" Invariant.Refcount_mismatch (fun k u1 _ ->
        (* An extra reference nothing maps: the census cannot explain it. *)
        Phys.retain (Kernel.phys k) (data_pte u1).Pte.frame);
    state "S2-tag-on-free-frame" Invariant.Free_frame_state (fun k u1 _ ->
        (* Use-after-free of the tag side table: a capability materializes
           in a frame that is back in the pool. *)
        let phys = Kernel.phys k in
        let f = Phys.alloc phys in
        Phys.release phys f;
        Page.store_cap (Phys.page f) ~off:0
          (user_cap k ~base:u1.Uproc.regions.Uproc.data_base ~length:16));
    state "S3-wild-cap" Invariant.Cap_bounds (fun k u1 _ ->
        (* A stored capability pointing at unowned address space. *)
        Page.store_cap
          (Phys.page (data_pte u1).Pte.frame)
          ~off:0
          (user_cap k ~base:(beyond_areas k) ~length:64));
    state "S4-writable-cow" Invariant.Cow_writable (fun _ u1 _ ->
        (* A CoW mapping that never lost its write bit: the "shared"
           frame is silently mutable. *)
        let pte = data_pte u1 in
        pte.Pte.share <- Pte.Cow_shared;
        pte.Pte.write <- true);
    state "S5-copa-without-trap" Invariant.Share_perms (fun _ u1 _ ->
        (* CoPA sharing whose cap-load trap is missing: the child could
           load unrelocated parent capabilities. *)
        let pte = data_pte u1 in
        pte.Pte.write <- false;
        pte.Pte.share <- Pte.Copa_shared;
        pte.Pte.cap_load_fault <- false);
    state "S6-shm-of-anonymous-frame" Invariant.Shm_coherence (fun _ u1 _ ->
        (* A mapping claims deliberate sharing but its frame belongs to
           no named segment. *)
        let pte = data_pte u1 in
        pte.Pte.write <- false;
        pte.Pte.share <- Pte.Shm_shared);
    state "S7-private-alias" Invariant.Private_aliased (fun _ u1 _ ->
        (* The same frame mapped twice, both sides believing they own it
           privately. *)
        let pte = data_pte u1 in
        Page_table.map_shared u1.Uproc.pt
          ~vpn:(Addr.vpn_of_addr u1.Uproc.regions.Uproc.heap_base)
          (Pte.make pte.Pte.frame));
    state "S8-orphan-mapping" Invariant.Orphan_mapping (fun k u1 _ ->
        (* A mapping outside every live or zombie area. *)
        Page_table.map u1.Uproc.pt
          ~vpn:(Addr.vpn_of_addr (beyond_areas k))
          (Pte.make (Phys.alloc (Kernel.phys k))));
    state "S9-skewed-accounting" Invariant.Phys_accounting (fun k _ _ ->
        Phys.chaos_skew_in_use (Kernel.phys k) 3);
    state "S10-cross-area-cap" Invariant.Cross_area_cap (fun k u1 u2 ->
        (* A capability in pid 1's memory granting access to pid 2's
           area — the isolation breach μFork's relocation must prevent.
           The two processes are unrelated, so this is the generic S10
           direction, not the parent→child S11 split. *)
        Page.store_cap
          (Phys.page (data_pte u1).Pte.frame)
          ~off:0
          (user_cap k ~base:u2.Uproc.area_base ~length:64));
    {
      name = "S11-parent-cap-into-child";
      expected = Invariant.Parent_child_leak;
      detect =
        (fun () ->
          (* The reverse-direction fork leak: a page of the *parent*
             still holds authority over its child's area after fork.
             The parent relation is what turns the generic cross-area
             report into S11. *)
          let k, u1, _ = sas_machine () in
          let child =
            Kernel.create_uproc k ~parent:u1 ~image:Image.hello ()
          in
          Kernel.map_initial_image k child;
          Page.store_cap
            (Phys.page (data_pte u1).Pte.frame)
            ~off:0
            (user_cap k ~base:child.Uproc.area_base ~length:64);
          Checker.sweep k);
    };
    protocol "L1-unresolved-cow" Invariant.Cow_protocol
      [ (1, Event.Page_fault); (1, Event.Cow_write_fault) ];
    protocol "L2-unresolved-copa" Invariant.Copa_protocol
      [ (1, Event.Page_fault); (1, Event.Copa_write_fault) ];
    protocol "L3-unresolved-coa" Invariant.Coa_protocol
      [ (1, Event.Page_fault); (1, Event.Coa_access_fault) ];
    protocol "L4-missing-shootdown" Invariant.Tlb_flush_protocol
      [
        (1, Event.Fork_fixed);
        (2, Event.Pte_copy 1);
        (* Fault traffic from the forking process with no Tlb_shootdown
           in between; the fault itself is well-formed so only L4
           fires. *)
        (1, Event.Page_fault);
        (1, Event.Cow_write_fault);
        (1, Event.Page_copy_cow);
      ];
    protocol "L5-missing-relocation" Invariant.Copa_relocation
      [
        (1, Event.Page_fault);
        (1, Event.Copa_cap_load_fault);
        (* Copied but never tag-scanned: the child runs with unrelocated
           capabilities. *)
        (1, Event.Claim_in_place);
      ];
  ]

let clean_machine () =
  let k, _, _ = sas_machine () in
  Checker.sweep k

let clean_protocol () =
  Lint.run
    (stream
       [
         (* A fork: downgrade batch sealed by the shootdown. *)
         (1, Event.Fork_fixed);
         (2, Event.Pte_copy 1);
         (1, Event.Tlb_shootdown 3);
         (* Parent CoW write, copy resolution. *)
         (1, Event.Page_fault);
         (1, Event.Cow_write_fault);
         (1, Event.Page_copy_cow);
         (* Child CoPA capability load: copy then relocate. *)
         (2, Event.Page_fault);
         (2, Event.Copa_cap_load_fault);
         (2, Event.Page_copy_child);
         (2, Event.Granule_scan 256);
         (2, Event.Cap_relocate 3);
         (* Child CoPA write: in-place claim (relocation follows anyway). *)
         (2, Event.Page_fault);
         (2, Event.Copa_write_fault);
         (2, Event.Claim_in_place);
         (2, Event.Granule_scan 256);
         (* CoA access fault. *)
         (2, Event.Page_fault);
         (2, Event.Coa_access_fault);
         (2, Event.Page_copy_child);
         (2, Event.Granule_scan 256);
         (* A kernel-simulated touch: bare page fault, direct resolution,
            no classifier — legal. *)
         (1, Event.Page_fault);
         (1, Event.Cow_claim_in_place);
       ])
