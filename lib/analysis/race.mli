(** Dynamic happens-before race detection for the simulated multicore.

    Subscribes to the {!Ufork_util.Hb} instrumentation bus and replays
    its events through vector clocks: [Spawn], [Wake] and lock
    [Release]→[Acquire] hand-offs draw happens-before edges; [Write]
    events to page-table entries and trace gauges are checked against
    the location's last write (FastTrack-style epochs). Two conflicting
    writes with no ordering edge are a data race — invariant R1.

    Frame-refcount writes are exempt by model: they stand for atomic
    read-modify-writes on internally synchronized counters (the
    [kref]/[atomic_t] discipline), which cannot data-race and which
    synchronize with each other.

    One detector is active at a time ({!attach} claims the bus); the
    disarmed bus costs a single branch per instrumentation point and
    perturbs neither scheduling nor golden accounting. *)

type t

type access = {
  tid : int;
  epoch : int;
  site : string;
  held : int list;
      (** lock ids held at the write, innermost first; named via the
          {!Ufork_util.Hb} lock-name registry in reports *)
}

type race = {
  loc : Ufork_util.Hb.loc;
  first : access;  (** the earlier (unordered) write *)
  second : access;  (** the write that exposed the race *)
}

val create : unit -> t

val attach : t -> unit
(** Claim the {!Ufork_util.Hb} bus: from here every instrumentation
    event feeds this detector. *)

val handle : t -> Ufork_util.Hb.event -> unit
(** Feed one bus event directly. The bus carries a single subscriber, so
    a front end that arms this detector {e and} the lock-order checker
    ({!Lockdep}) installs one closure that dispatches to both [handle]s
    instead of calling {!attach}. *)

val detach : unit -> unit
(** Release the bus (idempotent). *)

val races : t -> race list
(** Every detected race, oldest first; at most one per location. *)

val events_seen : t -> int
(** Bus events processed — a sanity probe that instrumentation fired. *)

val violations : t -> Invariant.violation list
(** {!races} rendered as R1 {!Invariant.violation}s for
    {!Checker}-style reporting. *)
