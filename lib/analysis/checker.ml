module Addr = Ufork_mem.Addr
module Page = Ufork_mem.Page
module Phys = Ufork_mem.Phys
module Pte = Ufork_mem.Pte
module Page_table = Ufork_mem.Page_table
module Capability = Ufork_cheri.Capability
module Kernel = Ufork_sas.Kernel
module Uproc = Ufork_sas.Uproc
module Config = Ufork_sas.Config
module Trace = Ufork_sim.Trace

open Invariant

(* One page-table mapping, with enough context to attribute it. *)
type mapping = {
  vpn : int;
  pte : Pte.t;
  table_owner : Uproc.t option;  (* the table's process on multi-AS *)
}

let sweep k =
  let phys = Kernel.phys k in
  let multi_as = Kernel.multi_address_space k in
  let isolation_on =
    (Kernel.config k).Config.isolation <> Config.No_isolation
  in
  let violations = ref [] in
  let add invariant subject detail =
    violations := { invariant; subject; detail } :: !violations
  in
  (* The distinct page tables: the one shared table in the SASOS, one per
     process (live, zombie or reaped) on the multi-AS baselines. *)
  let tables =
    Kernel.fold_uprocs k ~init:[] ~f:(fun acc (u : Uproc.t) ->
        if List.exists (fun (pt, _) -> pt == u.Uproc.pt) acc then acc
        else (u.Uproc.pt, u) :: acc)
    |> List.rev
  in
  (* Census: frame id -> every mapping aliasing it, in sweep order. *)
  let census : (int, mapping list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (pt, owner) ->
      Page_table.fold pt ~init:() ~f:(fun vpn pte () ->
          let m =
            { vpn; pte; table_owner = (if multi_as then Some owner else None) }
          in
          let fid = Phys.id pte.Pte.frame in
          let prev =
            Option.value (Hashtbl.find_opt census fid) ~default:[]
          in
          Hashtbl.replace census fid (m :: prev)))
    tables;
  let mappings_of fid =
    List.rev (Option.value (Hashtbl.find_opt census fid) ~default:[])
  in
  (* Frames the kernel's named-segment tables reference (one kernel
     reference each, on top of any mappings). *)
  let named : (int, string) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (nm, frames) ->
      Array.iter (fun f -> Hashtbl.replace named (Phys.id f) nm) frames)
    (Kernel.named_segment_frames k);
  let areas = Kernel.areas k in
  let area_of_addr addr =
    List.find_opt (fun (b, s, _) -> addr >= b && addr < b + s) areas
  in
  (* pid -> parent pid, for the S10/S11 direction split. *)
  let parent_of : (int, int) Hashtbl.t = Hashtbl.create 16 in
  Kernel.fold_uprocs k ~init:() ~f:(fun () (u : Uproc.t) ->
      match u.Uproc.parent_pid with
      | Some p -> Hashtbl.replace parent_of u.Uproc.pid p
      | None -> ());
  let area_holding_cap cap =
    List.find_opt
      (fun (b, s, _) -> Capability.in_range cap ~lo:b ~hi:(b + s))
      areas
  in

  (* {2 S1, S2, S9: the frame pool} *)
  let live = ref 0 in
  Phys.iter_frames phys (fun f ->
      let fid = Phys.id f in
      let subject = Printf.sprintf "frame %d" fid in
      let rc = Phys.refcount f in
      let maps = List.length (mappings_of fid) in
      if rc > 0 then begin
        incr live;
        let expected = maps + if Hashtbl.mem named fid then 1 else 0 in
        if rc <> expected then
          add Refcount_mismatch subject
            (Printf.sprintf
               "refcount %d but %d mapping(s)%s — %s" rc maps
               (if Hashtbl.mem named fid then " + 1 named-segment reference"
                else "")
               (if rc > expected then "leaked reference"
                else "mapping without a reference"))
      end
      else begin
        if maps > 0 then
          add Free_frame_state subject
            (Printf.sprintf "free (refcount %d) but still mapped %d time(s)"
               rc maps);
        let tags = Page.tagged_count (Phys.page f) in
        if tags > 0 then
          add Free_frame_state subject
            (Printf.sprintf
               "free but %d granule(s) still hold valid capabilities" tags)
      end);
  if !live <> Phys.frames_in_use phys then
    add Phys_accounting "phys pool"
      (Printf.sprintf "frames_in_use reports %d; census of live frames is %d"
         (Phys.frames_in_use phys) !live);

  (* {2 Per-mapping checks: S3, S4, S5, S6, S8, S10} *)
  List.iter
    (fun (pt, (owner : Uproc.t)) ->
      Page_table.fold pt ~init:() ~f:(fun vpn (pte : Pte.t) () ->
          let addr = Addr.addr_of_vpn vpn in
          let fid = Phys.id pte.Pte.frame in
          let is_named = Hashtbl.mem named fid in
          (* Owner attribution: the area containing the address in the
             single address space; the table's process on multi-AS. *)
          let owner_area =
            if multi_as then
              if
                addr >= owner.Uproc.area_base
                && addr < owner.Uproc.area_base + owner.Uproc.area_bytes
                && owner.Uproc.state <> Uproc.Reaped
              then Some (owner.Uproc.area_base, owner.Uproc.area_bytes,
                         owner.Uproc.pid)
              else None
            else area_of_addr addr
          in
          let subject =
            match owner_area with
            | Some (_, _, pid) -> Printf.sprintf "pid %d vpn %#x" pid vpn
            | None -> Printf.sprintf "vpn %#x" vpn
          in
          (* S8: no mapping outside a live-or-zombie process area. *)
          if owner_area = None then
            add Orphan_mapping subject
              (if multi_as && owner.Uproc.state = Uproc.Reaped then
                 Printf.sprintf "mapping of frame %d survives pid %d's reap"
                   fid owner.Uproc.pid
               else
                 Printf.sprintf
                   "frame %d mapped at %#x, owned by no live or zombie area"
                   fid addr);
          (* S4/S5: share-mode / permission coherence. *)
          (match pte.Pte.share with
          | Pte.Cow_shared when pte.Pte.write ->
              add Cow_writable subject
                (Printf.sprintf "CoW-shared frame %d mapped writable" fid)
          | Pte.Copa_shared
            when (not pte.Pte.cap_load_fault) || pte.Pte.write ->
              add Share_perms subject
                (Printf.sprintf
                   "CoPA-shared frame %d: cap_load_fault=%b write=%b \
                    (want trap on cap loads, never write-through)"
                   fid pte.Pte.cap_load_fault pte.Pte.write)
          | Pte.Coa_shared when pte.Pte.read || pte.Pte.write ->
              add Share_perms subject
                (Printf.sprintf
                   "CoA-shared frame %d: read=%b write=%b (every access \
                    must fault)"
                   fid pte.Pte.read pte.Pte.write)
          | _ -> ());
          (* S6: Shm mappings <-> named-segment frames. *)
          (match pte.Pte.share with
          | Pte.Shm_shared when not is_named ->
              add Shm_coherence subject
                (Printf.sprintf
                   "Shm_shared mapping of anonymous frame %d (not in any \
                    named segment)"
                   fid)
          | (Pte.Private | Pte.Cow_shared | Pte.Coa_shared | Pte.Copa_shared)
            when is_named ->
              add Shm_coherence subject
                (Printf.sprintf
                   "named-segment frame %d (%s) mapped %s — deliberate \
                    sharing must never be privately copied"
                   fid (Hashtbl.find named fid)
                   (Format.asprintf "%a" Pte.pp_share pte.Pte.share))
          | _ -> ());
          (* S3/S10: stored capabilities. Only granules a process could
             actually load a capability from: readable, not behind the
             CoPA cap-load trap (those are pending relocation), and not
             deliberate shared memory (windows alias across areas by
             design). *)
          if
            isolation_on && pte.Pte.read
            && (not pte.Pte.cap_load_fault)
            && pte.Pte.share <> Pte.Shm_shared
          then
            match owner_area with
            | None -> () (* reported as S8 above *)
            | Some (base, bytes, opid) ->
                Page.iter_caps (Phys.page pte.Pte.frame) (fun g cap ->
                    if not (Capability.is_sealed cap) then
                      let gran = Printf.sprintf "%s granule %d" subject g in
                      (* R4 (capflow armed): the provenance stamp must
                         match the holding area — the taint diagnosis
                         subsumes the untyped wild-capability report. *)
                      if !Capflow.armed && Capability.prov cap <> base then
                        add Cap_provenance gran
                          (Printf.sprintf
                             "stored capability carries %s but sits in \
                              area [%#x..%#x)"
                             (if
                                Capability.prov cap
                                = Capability.root_provenance
                              then "the kernel root's authority"
                              else
                                Printf.sprintf "area %#x's authority"
                                  (Capability.prov cap))
                             base (base + bytes))
                      else if
                        Capability.in_range cap ~lo:base ~hi:(base + bytes)
                      then ()
                      else
                        match
                          if multi_as then None else area_holding_cap cap
                        with
                        | Some (_, _, pid2)
                          when pid2 <> opid
                               && Hashtbl.find_opt parent_of pid2 = Some opid
                          ->
                            (* S11: the reverse-direction fork leak — a
                               parent page still grants authority over
                               its child's area. *)
                            add Parent_child_leak gran
                              (Printf.sprintf
                                 "parent pid %d stores capability \
                                  [%#x..%#x) into child pid %d's area"
                                 opid (Capability.base cap)
                                 (Capability.limit cap) pid2)
                        | Some (_, _, pid2) when pid2 <> opid ->
                            add Cross_area_cap gran
                              (Printf.sprintf
                                 "stored capability [%#x..%#x) reaches pid \
                                  %d's area"
                                 (Capability.base cap) (Capability.limit cap)
                                 pid2)
                        | _ ->
                            add Cap_bounds gran
                              (Printf.sprintf
                                 "stored capability [%#x..%#x) escapes the \
                                  owner area [%#x..%#x)"
                                 (Capability.base cap) (Capability.limit cap)
                                 base (base + bytes)))))
    tables;

  (* {2 S7: aliased frames where every mapping believes it is private} *)
  Phys.iter_frames phys (fun f ->
      let fid = Phys.id f in
      if Phys.refcount f > 0 && not (Hashtbl.mem named fid) then
        match mappings_of fid with
        | [] | [ _ ] -> ()
        | ms when List.for_all (fun m -> m.pte.Pte.share = Pte.Private) ms ->
            add Private_aliased
              (Printf.sprintf "frame %d" fid)
              (Printf.sprintf
                 "mapped %d times (vpns %s) yet every mapping is Private — \
                  a write through one alias would silently leak to the \
                  others"
                 (List.length ms)
                 (String.concat ", "
                    (List.map (fun m -> Printf.sprintf "%#x" m.vpn) ms)))
        | _ -> ());
  List.rev !violations

let sweep_and_lint k =
  let trace = Kernel.trace k in
  sweep k
  @ Lint.run ~dropped:(Trace.dropped trace) (Trace.records trace)

exception Unsafe of string

let assert_safe k =
  match sweep_and_lint k with
  | [] -> ()
  | vs -> raise (Unsafe (Invariant.report vs))
