(** Capflow: runtime capability-provenance (taint) checking — invariant
    {b R4}.

    Every capability is stamped with the provenance of the authority it
    was confined to ({!Ufork_cheri.Capability.prov}): the owning
    μprocess's area base, or {!Ufork_cheri.Capability.root_provenance}
    for the kernel root. R4 demands that every tagged, unsealed
    capability reachable in a μprocess's pages carries that μprocess's
    stamp — μFork's §4.2 relocation restamps on rebase, §4.3's
    tag-clearing removes the rest, and nothing may hand a μprocess the
    root. The static mirror is lint rule D13. *)

val armed : bool ref
(** Set while a capflow-checked run is in flight. {!Checker.sweep} reads
    it: armed, a provenance-mismatched stored capability is reported as
    R4 (the taint diagnosis) instead of the S3/S10 wild-capability
    fallout it also causes. *)

type t
(** The stream detector: consumes the [Cap_store]/[Cap_load] events the
    MMU paths publish and accuses provenance mismatches as they flow. *)

val create : Ufork_sas.Kernel.t -> t
(** [create k] resolves event addresses against [k]'s live areas and
    page tables (shared-memory windows and pages pending CoPA relocation
    are exempt, mirroring the S3/S10 gate). *)

val handle : t -> Ufork_util.Hb.event -> unit
(** Feed one bus event; non-capability events are ignored. *)

val violations : t -> Invariant.violation list
(** Accused R4 violations in stream order, deduplicated per
    (address, provenance) pair. *)

val scan_fork :
  Ufork_sas.Kernel.t -> child:Ufork_sas.Uproc.t -> Invariant.violation list
(** [scan_fork k ~child] sweeps the freshly forked child's checkable
    granules the moment the fork window closes: every tagged, unsealed
    capability must already carry the child's provenance. The workload
    layer hooks this into {!Ufork_core.Fork_spine} when capflow is
    armed. *)
