(* Capflow: the runtime side of the capability-provenance analysis.

   Invariant R4 is the taint property μFork's fork path must preserve
   (§4.2–4.3): every tagged capability reachable in a μprocess's pages
   carries that μprocess's provenance stamp — rebased or freshly minted
   for it — never the kernel root's authority and never a stale parent
   stamp left behind by a skipped relocation. The static mirror is lint
   rule D13 (tools/lint/capflow.ml); the two sides are cross-certified
   by the --chaos-skip-rebase / --chaos-heap-smuggle / --chaos-leak-root
   injections.

   Three probes, all disarmed to a single bool read:
   - a stream check over the Hb [Cap_store]/[Cap_load] events the MMU
     paths ({!Ufork_mem.Vas}) publish;
   - a fork-completion scan over the child's freshly forked pages
     (hooked into {!Ufork_core.Fork_spine} by the workload layer);
   - a sweep clause in {!Checker} (gated on {!armed}) covering pages
     that were relocated lazily after the fork window closed. *)

module Capability = Ufork_cheri.Capability
module Addr = Ufork_mem.Addr
module Page = Ufork_mem.Page
module Phys = Ufork_mem.Phys
module Pte = Ufork_mem.Pte
module Page_table = Ufork_mem.Page_table
module Kernel = Ufork_sas.Kernel
module Uproc = Ufork_sas.Uproc
module Hb = Ufork_util.Hb

(* Read by Checker.sweep: when set, a stored capability whose provenance
   stamp does not match the area holding it is reported as R4 (instead
   of the untyped S3/S10 wild-capability fallout it also causes). *)
let armed = ref false

let pp_prov ppf prov =
  if prov = Capability.root_provenance then
    Format.pp_print_string ppf "the kernel root's authority"
  else Format.fprintf ppf "area %#x's authority" prov

(* A capability at [addr] is attributable when the address falls in a
   live-or-zombie μprocess area and the page is one that process could
   actually load a capability from: readable, not behind the CoPA
   cap-load trap (pending relocation), and not deliberate shared memory
   (windows alias across areas by design). Mirrors the S3/S10 gate in
   Checker.sweep. *)
let attributable k addr =
  match
    List.find_opt (fun (b, s, _) -> addr >= b && addr < b + s) (Kernel.areas k)
  with
  | None -> None (* kernel metadata outside every μprocess area *)
  | Some (base, _, pid) -> (
      match Kernel.find_uproc k pid with
      | None -> None
      | Some u -> (
          match Page_table.lookup u.Uproc.pt ~vpn:(Addr.vpn_of_addr addr) with
          | Some pte
            when pte.Pte.read
                 && (not pte.Pte.cap_load_fault)
                 && pte.Pte.share <> Pte.Shm_shared ->
              Some (base, pid)
          | _ -> None))

let mismatch ~what ~pid ~addr ~prov ~base =
  {
    Invariant.invariant = Invariant.Cap_provenance;
    subject = Printf.sprintf "pid %d addr %#x" pid addr;
    detail =
      Format.asprintf
        "%s capability carries %a but sits in area %#x — %s" what pp_prov
        prov base
        (if prov = Capability.root_provenance then
           "root authority leaked to a μprocess"
         else "a foreign (stale parent?) authority survived fork");
  }

(* {1 The stream detector} *)

type t = {
  kernel : Kernel.t;
  mutable violations_rev : Invariant.violation list;
  seen : (int * int, unit) Hashtbl.t;  (* (addr, prov) dedup *)
}

let create kernel = { kernel; violations_rev = []; seen = Hashtbl.create 64 }

let check t ~what ~addr ~prov =
  match attributable t.kernel addr with
  | None -> ()
  | Some (base, pid) ->
      if prov <> base && not (Hashtbl.mem t.seen (addr, prov)) then begin
        Hashtbl.replace t.seen (addr, prov) ();
        t.violations_rev <-
          mismatch ~what ~pid ~addr ~prov ~base :: t.violations_rev
      end

let handle t = function
  | Hb.Cap_store { addr; prov; _ } -> check t ~what:"stored" ~addr ~prov
  | Hb.Cap_load { addr; prov; _ } -> check t ~what:"loaded" ~addr ~prov
  | _ -> ()

let violations t = List.rev t.violations_rev

(* {1 The fork-completion scan} *)

(* Scan every checkable granule of the freshly forked child's area: R4
   demands child provenance on every tagged capability the child can
   reach the moment fork returns — a skipped rebase, a heap-smuggled
   parent capability or a leaked root all surface here, before the
   child runs an instruction. *)
let scan_fork (_k : Kernel.t) ~(child : Uproc.t) =
  let base = child.Uproc.area_base and bytes = child.Uproc.area_bytes in
  let vs = ref [] in
  let v0 = Addr.vpn_of_addr base
  and v1 = Addr.vpn_of_addr (base + bytes - 1) in
  for vpn = v0 to v1 do
    match Page_table.lookup child.Uproc.pt ~vpn with
    | Some pte
      when pte.Pte.read
           && (not pte.Pte.cap_load_fault)
           && pte.Pte.share <> Pte.Shm_shared ->
        Page.iter_caps (Phys.page pte.Pte.frame) (fun g cap ->
            if
              (not (Capability.is_sealed cap))
              && Capability.prov cap <> base
            then
              vs :=
                mismatch ~what:"post-fork"
                  ~pid:child.Uproc.pid
                  ~addr:(Addr.addr_of_vpn vpn + (g * Addr.granule_size))
                  ~prov:(Capability.prov cap) ~base
                :: !vs)
    | _ -> ()
  done;
  List.rev !vs
