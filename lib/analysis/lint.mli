(** The trace-protocol linter.

    Temporal rules (L1–L5 of {!Invariant}) over the mechanism-event
    stream a {!Ufork_sim.Trace.t} records. Where the {!Checker} proves
    the machine {e ended up} in a safe state, the linter proves the
    kernel {e went through} the required protocol: faults are classified
    under a page fault and resolved before the process faults again;
    fork's PTE downgrades are sealed by a TLB shootdown before the
    parent generates fault traffic; a capability-load fault relocates
    (tag scan) before the μprocess runs on.

    The linter is stream-suffix tolerant: when the bounded ring dropped
    old records ([dropped > 0]), precursor checks are skipped for the
    first surviving record of each process, because its true
    predecessor may be among the evicted records. End-of-stream checks
    still apply — the ring drops oldest first, so the tail is always
    complete. *)

val run :
  ?dropped:int -> Ufork_sim.Trace.record list -> Invariant.violation list
(** Violations in stream order. [dropped] defaults to 0 (the stream is
    complete from the beginning). *)

val of_trace : Ufork_sim.Trace.t -> Invariant.violation list
(** [run] over the trace's buffered records with its drop count. *)
