(** Fault injection: prove the sanitizer and linter actually detect.

    Each scenario builds a small healthy machine (or a well-formed event
    stream), injects exactly one corruption, and runs the matching
    analysis. The contract — asserted by the test suite — is
    {e precision}: every scenario's violations are non-empty and all
    carry the scenario's [expected] invariant, so each invariant's
    detector fires on its own fault class and never misfires on a
    neighbouring one. The [clean_*] functions are the control group:
    the same construction without the injection reports nothing. *)

type scenario = {
  name : string;  (** ["S1-leaked-retain"], ["L4-missing-shootdown"], … *)
  expected : Invariant.t;  (** The one invariant the injection violates. *)
  detect : unit -> Invariant.violation list;
      (** Build, inject, analyse; the violations found. *)
}

val scenarios : scenario list
(** One injection per invariant: S1–S10 against {!Checker.sweep} on a
    live kernel, L1–L5 against {!Lint.run} on a hand-built stream. *)

val clean_machine : unit -> Invariant.violation list
(** The uninjected two-process machine the S-scenarios start from;
    expected [[]]. *)

val clean_protocol : unit -> Invariant.violation list
(** A well-formed stream exercising every protocol (CoW, CoPA write and
    cap-load, CoA, fork downgrade + shootdown); expected [[]]. *)
