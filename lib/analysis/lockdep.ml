module Hb = Ufork_util.Hb

(* Runtime lock-order checking ("lockdep") for the simulated multicore.

   The lock layer publishes [Acquire]/[Release] on the {!Ufork_util.Hb}
   bus (outermost acquisitions only — the recursive locks swallow
   re-entries). This module replays them into a may-hold-while-acquiring
   graph keyed by lock NAME: an edge a → b means some thread acquired b
   while holding a. Deadlock-freedom of a lock regime is exactly this
   graph staying acyclic plus the page-table shards being nested in
   ascending index order; any counterexample is invariant R2.

   Two violation shapes:
   - a cycle: the new acquisition's name already reaches (transitively)
     a name the thread holds, i.e. some other nesting took the locks in
     the opposite order. A two-node cycle is the classic ABBA inversion.
   - a descending pt-shard pair: both names parse as
     [lock.pt_shard.<index>] and the new index is not greater than a
     held one. Shards are kept per-index (not collapsed to one class
     like the static rule D10 does), so ascending-order violations are
     caught exactly, with no annotation escape hatch at runtime.

   Unnamed locks participate too (keyed ["lock.anon.<id>"]): pipes and
   conditions do not route through locks, but any future unnamed mutex
   still lands in the graph.

   Note the detector sees an [Acquire] only once the lock is truly held.
   A genuinely deadlocked ABBA pair would therefore suspend before
   publishing its second acquire — which is why the chaos injection
   ({!Ufork_sas.Kernel.chaos_acquire_shards_descending}) runs on a rogue
   boot thread that takes both shards while they are free: the inversion
   is published, flagged, and the run still terminates. *)

type edge = {
  src : string;
  dst : string;
  tid : int;  (* the thread whose nesting first drew the edge *)
}

type t = {
  held : (int, int list) Hashtbl.t;  (* tid → lock ids, innermost first *)
  succs : (string, string list ref) Hashtbl.t;  (* adjacency by lock name *)
  mutable edges : edge list;  (* insertion order, newest first *)
  reported : (string * string, unit) Hashtbl.t;  (* dedup per ordered pair *)
  mutable violations_rev : Invariant.violation list;
  mutable events : int;
}

let create () =
  {
    held = Hashtbl.create 64;
    succs = Hashtbl.create 64;
    edges = [];
    reported = Hashtbl.create 16;
    violations_rev = [];
    events = 0;
  }

let lock_label id =
  match Hb.lock_name id with
  | Some n -> n
  | None -> Printf.sprintf "lock.anon.%d" id

(* [Some i] iff the name is a per-index page-table shard. *)
let shard_index name =
  let prefix = "lock.pt_shard." in
  let plen = String.length prefix in
  if String.length name > plen && String.sub name 0 plen = prefix then
    int_of_string_opt (String.sub name plen (String.length name - plen))
  else None

let successors t name =
  match Hashtbl.find_opt t.succs name with Some l -> !l | None -> []

(* Is [dst] reachable from [src] along recorded edges? Returns the path
   (src first) for the violation report. *)
let path_to t ~src ~dst =
  let visited = Hashtbl.create 16 in
  let rec dfs node trail =
    if node = dst then Some (List.rev (node :: trail))
    else if Hashtbl.mem visited node then None
    else begin
      Hashtbl.add visited node ();
      List.fold_left
        (fun acc next ->
          match acc with Some _ -> acc | None -> dfs next (node :: trail))
        None (successors t node)
    end
  in
  dfs src []

let report t ~src ~dst violation =
  if not (Hashtbl.mem t.reported (src, dst)) then begin
    Hashtbl.add t.reported (src, dst) ();
    t.violations_rev <- violation :: t.violations_rev
  end

let add_edge t ~src ~dst ~tid =
  let l =
    match Hashtbl.find_opt t.succs src with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.add t.succs src l;
        l
  in
  if not (List.mem dst !l) then begin
    l := dst :: !l;
    t.edges <- { src; dst; tid } :: t.edges
  end

let check_acquire t ~tid ~held_name ~new_name =
  (match (shard_index held_name, shard_index new_name) with
  | Some i, Some j when j <= i ->
      report t ~src:held_name ~dst:new_name
        {
          Invariant.invariant = Invariant.Lock_order;
          subject = Printf.sprintf "%s -> %s" held_name new_name;
          detail =
            Printf.sprintf
              "thread %d acquired pt-shard %d while holding pt-shard %d: \
               shard pairs nest in ascending index order"
              tid j i;
        }
  | _ -> ());
  (* The reverse reachability check before inserting the new edge: if
     new_name already reaches held_name, some nesting ordered them the
     other way round and the union has a cycle. *)
  (match path_to t ~src:new_name ~dst:held_name with
  | Some path ->
      report t ~src:held_name ~dst:new_name
        {
          Invariant.invariant = Invariant.Lock_order;
          subject = Printf.sprintf "%s -> %s" held_name new_name;
          detail =
            Printf.sprintf
              "thread %d acquired %s while holding %s, but %s is already \
               ordered before %s (%s): acquisition graph has a cycle"
              tid new_name held_name new_name held_name
              (String.concat " -> " path);
        }
  | None -> ());
  add_edge t ~src:held_name ~dst:new_name ~tid

let handle t (ev : Hb.event) =
  t.events <- t.events + 1;
  match ev with
  | Hb.Acquire { tid; lock } ->
      let held = Option.value ~default:[] (Hashtbl.find_opt t.held tid) in
      let new_name = lock_label lock in
      let seen = Hashtbl.create 4 in
      List.iter
        (fun h ->
          let held_name = lock_label h in
          if not (Hashtbl.mem seen held_name) then begin
            Hashtbl.add seen held_name ();
            check_acquire t ~tid ~held_name ~new_name
          end)
        held;
      Hashtbl.replace t.held tid (lock :: held)
  | Hb.Release { tid; lock } ->
      (* Drop the innermost occurrence: lock bodies are properly nested
         in this kernel, but mirroring the race detector we tolerate
         out-of-order releases. *)
      let rec drop = function
        | [] -> []
        | l :: rest -> if l = lock then rest else l :: drop rest
      in
      let held = Option.value ~default:[] (Hashtbl.find_opt t.held tid) in
      Hashtbl.replace t.held tid (drop held)
  | Hb.Spawn _ | Hb.Wake _ | Hb.Write _
  (* Causal-analysis events carry no hold-set information. *)
  | Hb.Block _ | Hb.Contend _ | Hb.Handoff _ | Hb.Steal _ | Hb.Ipi _
  | Hb.Span_open _ | Hb.Span_close _ | Hb.Cap_store _ | Hb.Cap_load _ ->
      ()

let attach t = Hb.subscribe (handle t)
let detach () = Hb.unsubscribe ()
let events_seen t = t.events
let violations t = List.rev t.violations_rev

let edges t =
  List.rev_map (fun e -> (e.src, e.dst)) t.edges
  |> List.sort_uniq (fun (a, b) (c, d) ->
         match String.compare a c with 0 -> String.compare b d | n -> n)
