(** The machine-state sanitizer.

    {!sweep} walks a quiescent machine — physical frame pool, every page
    table, the capability tags stored in every mapped page, and the
    μprocess table — and checks the state invariants S1–S10 of
    {!Invariant}. It is read-only and safe to run at any point where no
    fault is mid-resolution (between benchmark phases, at the end of a
    run, from the [check] subcommand).

    Capability-bounds checks (S3/S10) are skipped when the kernel runs
    with {!Ufork_sas.Config.No_isolation}: that configuration
    deliberately hands out address-space-wide capabilities, so bounds
    carry no information. Sealed capabilities are exempt everywhere —
    they are opaque invocation tokens (e.g. the syscall entry
    capability), not dereferenceable memory references. *)

val sweep : Ufork_sas.Kernel.t -> Invariant.violation list
(** All state-invariant violations, in deterministic order (frames by
    id, then mappings by table and ascending vpn); [[]] on a healthy
    machine. *)

val sweep_and_lint : Ufork_sas.Kernel.t -> Invariant.violation list
(** {!sweep} plus {!Lint.run} over the kernel's recorded event stream
    (the trace ring); the lint part sees only what was recorded, so it
    is vacuous unless recording was switched on. *)

exception Unsafe of string
(** Raised by {!assert_safe}; the message is the full
    {!Invariant.report}. *)

val assert_safe : Ufork_sas.Kernel.t -> unit
(** [sweep_and_lint] and raise {!Unsafe} on any violation. Benchmarks
    call this next to {!Ufork_sim.Trace.audit} so a run that corrupted
    machine state cannot silently report numbers. *)
