module Hb = Ufork_util.Hb

(* Happens-before race detection for the simulated multicore.

   The concurrency layer publishes ordering events and shared-state
   writes on the {!Ufork_util.Hb} bus; this module replays them through
   vector clocks (FastTrack-style last-write epochs) and flags any pair
   of conflicting writes with no ordering edge between them.

   Edges:
   - [Spawn]: everything the parent did before [Engine.spawn] is visible
     to the child.
   - [Wake]: the waker's history is visible to the woken thread (a
     wakeup is a real synchronization in any implementation — the woken
     thread cannot resume before the signal).
   - [Release]/[Acquire] on a {!Ufork_sim.Sync.Lock}: the classic lock
     hand-off edge; this is how the big kernel lock (§4.5) orders
     syscalls on different cores.

   Write classes:
   - [Frame] (refcount traffic in {!Ufork_mem.Phys}): modeled as atomic
     read-modify-writes on an internally synchronized counter — the
     [kref]/[atomic_t] discipline every real kernel uses for page
     refcounts. Atomic RMWs cannot data-race, and (as seq-cst RMWs
     reading from each other) they synchronize: each access joins and
     then replaces the location's clock.
   - [Pte] and [Gauge]: plain writes. Two writes to the same location
     from different threads with neither ordered before the other are a
     data race (R1). *)

type access = {
  tid : int;
  epoch : int;
  site : string;
  held : int list;  (* lock ids held at the write, innermost first *)
}

type race = {
  loc : Hb.loc;
  first : access;  (* the earlier (unordered) write *)
  second : access;  (* the write that exposed the race *)
}

type t = {
  threads : (int, Vclock.t) Hashtbl.t;
  locks : (int, Vclock.t) Hashtbl.t;
  held : (int, int list) Hashtbl.t; (* tid -> lock ids held, innermost first *)
  atomics : (Hb.loc, Vclock.t) Hashtbl.t;
  writes : (Hb.loc, access) Hashtbl.t;
  reported : (Hb.loc, unit) Hashtbl.t; (* one report per location *)
  mutable races : race list; (* newest first *)
  mutable events : int;
}

let create () =
  {
    threads = Hashtbl.create 64;
    locks = Hashtbl.create 16;
    held = Hashtbl.create 64;
    atomics = Hashtbl.create 256;
    writes = Hashtbl.create 256;
    reported = Hashtbl.create 8;
    races = [];
    events = 0;
  }

let clock_of t tid =
  Option.value (Hashtbl.find_opt t.threads tid) ~default:Vclock.empty

let set_clock t tid c = Hashtbl.replace t.threads tid c

(* The thread performed an ordering-relevant event whose effects others
   may later join: advance its own component so the old epoch is
   distinguishable from what follows. *)
let tick t tid = set_clock t tid (Vclock.incr (clock_of t tid) tid)

let handle t (ev : Hb.event) =
  t.events <- t.events + 1;
  match ev with
  | Hb.Spawn { parent; child } ->
      set_clock t child
        (Vclock.join (clock_of t child) (clock_of t parent));
      tick t parent
  | Hb.Wake { by; target } ->
      set_clock t target (Vclock.join (clock_of t target) (clock_of t by));
      tick t by
  | Hb.Acquire { tid; lock } ->
      Hashtbl.replace t.held tid
        (lock :: Option.value (Hashtbl.find_opt t.held tid) ~default:[]);
      (match Hashtbl.find_opt t.locks lock with
      | Some l -> set_clock t tid (Vclock.join (clock_of t tid) l)
      | None -> ())
  | Hb.Release { tid; lock } ->
      (* Drop the innermost occurrence: recursive wrappers emit one
         Acquire/Release pair per outermost hold, so this is a stack. *)
      (let rec drop = function
         | [] -> []
         | l :: rest -> if l = lock then rest else l :: drop rest
       in
       Hashtbl.replace t.held tid
         (drop (Option.value (Hashtbl.find_opt t.held tid) ~default:[])));
      Hashtbl.replace t.locks lock (clock_of t tid);
      tick t tid
  | Hb.Write { tid; loc = Hb.Frame _ as loc; site = _ } ->
      (* Atomic RMW: join the location's clock, publish back, tick. *)
      let joined =
        Vclock.join (clock_of t tid)
          (Option.value (Hashtbl.find_opt t.atomics loc)
             ~default:Vclock.empty)
      in
      set_clock t tid joined;
      Hashtbl.replace t.atomics loc joined;
      tick t tid
  | Hb.Write { tid; loc; site } ->
      let c = clock_of t tid in
      let held = Option.value (Hashtbl.find_opt t.held tid) ~default:[] in
      (match Hashtbl.find_opt t.writes loc with
      | Some prev
        when prev.tid <> tid
             && prev.epoch > Vclock.get c prev.tid
             && not (Hashtbl.mem t.reported loc) ->
          Hashtbl.replace t.reported loc ();
          t.races <-
            {
              loc;
              first = prev;
              second = { tid; epoch = Vclock.get c tid; site; held };
            }
            :: t.races
      | Some _ | None -> ());
      (* Tick before recording so the stored epoch is strictly positive:
         a thread that has synchronized with nobody must still be
         distinguishable from "never wrote". *)
      tick t tid;
      Hashtbl.replace t.writes loc
        { tid; epoch = Vclock.get (clock_of t tid) tid; site; held }
  (* Causal-analysis events: no ordering semantics beyond what the
     Spawn/Wake/Acquire/Release edges above already encode. *)
  | Hb.Block _ | Hb.Contend _ | Hb.Handoff _ | Hb.Steal _ | Hb.Ipi _
  | Hb.Span_open _ | Hb.Span_close _ | Hb.Cap_store _ | Hb.Cap_load _ ->
      ()

let races t = List.rev t.races
let events_seen t = t.events

let attach t = Hb.subscribe (handle t)
let detach () = Hb.unsubscribe ()

(* Race reports name the locks each side held (via the {!Hb} lock-name
   registry, e.g. [lock.stats]): "both held X" vs "neither held
   anything" is the difference between a lock-granularity bug and a
   missing lock, and the sharded kernel's named ids make the resource
   readable. *)
let pp_held ppf = function
  | [] -> Format.pp_print_string ppf "no locks"
  | held ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
        Hb.pp_lock ppf held

let violation_of_race r =
  {
    Invariant.invariant = Invariant.Data_race;
    subject = Format.asprintf "%a" Hb.pp_loc r.loc;
    detail =
      Format.asprintf
        "unordered conflicting writes: %s (thread %d, holding %a) and %s \
         (thread %d, holding %a) have no happens-before edge (no lock \
         hand-off, spawn, or wakeup between them)"
        r.first.site r.first.tid pp_held r.first.held r.second.site
        r.second.tid pp_held r.second.held;
  }

let violations t = List.map violation_of_race (races t)
