(* Sparse vector clocks over thread ids. Components default to 0, so the
   empty clock is the bottom element and [join] never needs to know the
   thread population up front. *)

module M = Map.Make (Int)

type t = int M.t

let empty = M.empty
let get t tid = Option.value (M.find_opt tid t) ~default:0
let incr t tid = M.add tid (get t tid + 1) t

let join a b =
  M.union (fun _tid x y -> Some (max x y)) a b

let leq a b = M.for_all (fun tid x -> x <= get b tid) a

let equal a b = leq a b && leq b a

(* Strict partial order: a happened-before b. *)
let lt a b = leq a b && not (leq b a)

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (tid, c) -> Format.fprintf ppf "%d:%d" tid c))
    (M.bindings t)
