(** Runtime lock-order checking ("lockdep") — invariant R2.

    Replays {!Ufork_util.Hb} [Acquire]/[Release] events into a
    may-hold-while-acquiring graph keyed by lock name: an edge [a → b]
    means some thread acquired [b] while holding [a]. The lock regime is
    deadlock-free exactly while this graph stays acyclic and nested
    page-table shards are taken in ascending index order; any
    counterexample is reported as R2 (Critical).

    Page-table shards are tracked per index ([lock.pt_shard.07]), not
    collapsed to one class like the static mirror (lint rule D10), so a
    descending pair is caught on the very acquisition that inverts the
    order — no annotation escape hatch exists at runtime.

    Like the race detector, the checker only observes: it charges no
    cycles and perturbs neither scheduling nor golden accounting. *)

type t

val create : unit -> t

val attach : t -> unit
(** Claim the {!Ufork_util.Hb} bus (single-subscriber: this replaces any
    other listener — use {!handle} from a dispatching closure to run
    beside the race detector). *)

val handle : t -> Ufork_util.Hb.event -> unit
(** Feed one bus event directly. *)

val detach : unit -> unit
(** Release the bus (idempotent). *)

val violations : t -> Invariant.violation list
(** Every R2 violation, oldest first; at most one per ordered pair of
    lock names. *)

val events_seen : t -> int
(** Bus events processed — a sanity probe that instrumentation fired. *)

val edges : t -> (string * string) list
(** The acquisition graph observed so far, as [(held, acquired)] name
    pairs, sorted — the runtime counterpart of [lint --lock-graph]. *)
