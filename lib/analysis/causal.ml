module Hb = Ufork_util.Hb

(* Causal trace graph + critical-path analyzer.

   The bus already carries every edge the analysis needs: Spawn and
   Wake from the engine, Contend/Handoff from the lock layer, Steal
   from the dispatcher, Ipi from the trace charger, Span_open/close
   from the span machinery. This module just files them into
   per-thread timelines as they arrive (cheap: one list cons per
   event) and does all graph work offline in {!analyze}, so an armed
   run pays collection cost only.

   The critical path is computed by a backward walk that tiles the
   interval by construction: starting from the anchor at the interval
   end, each step either charges a segment on the current thread down
   to the record that made it runnable, or follows that record's edge
   (wake → the waker, spawn → the parent, timer wake → the same
   thread's sleep). Because every step moves strictly backward in time
   and every emitted segment abuts the previous one, Σ segment cycles
   = interval wall cycles is an invariant of the walk, and the audit
   verifying it catches analyzer bugs, not data properties. *)

type kind =
  | Spawned of int  (* parent tid, -1 for boot *)
  | Blocked
  | Woken of { by : int; handoff_lock : int }  (* handoff_lock -1: plain wake *)
  | Stolen of int  (* destination core *)
  | Contended of { lock : int; holder : int }
  | Ipi_sent of int  (* remote cores interrupted *)

type record = { time : int64; seq : int; kind : kind }

type tstate = {
  mutable recs : record list;  (* newest first *)
  mutable spans : (int64 * int * int) list;
      (* (time, seq, path id): the thread's span path is [path id] from
         this boundary until the next entry; newest first *)
  mutable stack : int list;  (* open span path ids, innermost first *)
  mutable last_contend : (int64 * int) option;  (* contend time, lock id *)
  mutable fork_open : int64 option;  (* pending "fork" span open time *)
}

type wait_total = { mutable w_count : int; mutable w_cycles : int64 }

type t = {
  threads : (int, tstate) Hashtbl.t;
  mutable seq : int;
  mutable now : unit -> int64;
  pending_handoff : (int, int) Hashtbl.t;  (* wakee tid -> lock id *)
  wait_totals : (int, wait_total) Hashtbl.t;  (* lock id -> totals *)
  (* Span-path interning: ids index [path_names], which stores the full
     [;]-joined path (same separator as the flamegraph export). *)
  mutable path_names : string array;
  mutable n_paths : int;
  path_ids : (int * string, int) Hashtbl.t;  (* (parent id, segment) -> id *)
  mutable forks_rev : (int * int64 * int64) list;  (* tid, open, close *)
  mutable events : int;
  mutable horizon : int64;  (* latest timestamp seen on any event *)
}

exception Audit_failure of string

let unattributed = "(unattributed)"

let create () =
  {
    threads = Hashtbl.create 64;
    seq = 0;
    now = (fun () -> 0L);
    pending_handoff = Hashtbl.create 16;
    wait_totals = Hashtbl.create 16;
    path_names = Array.make 64 "";
    n_paths = 0;
    path_ids = Hashtbl.create 64;
    forks_rev = [];
    events = 0;
    horizon = 0L;
  }

let set_now t f = t.now <- f
let events_seen t = t.events
let fork_windows t = List.rev t.forks_rev
let horizon t = t.horizon

let stamp t =
  let now = t.now () in
  if Int64.compare now t.horizon > 0 then t.horizon <- now;
  now

let state t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some s -> s
  | None ->
      let s =
        {
          recs = [];
          spans = [];
          stack = [];
          last_contend = None;
          fork_open = None;
        }
      in
      Hashtbl.add t.threads tid s;
      s

let push t tid kind =
  let s = state t tid in
  t.seq <- t.seq + 1;
  s.recs <- { time = stamp t; seq = t.seq; kind } :: s.recs

let intern_path t ~parent seg =
  match Hashtbl.find_opt t.path_ids (parent, seg) with
  | Some id -> id
  | None ->
      let id = t.n_paths in
      if id = Array.length t.path_names then begin
        let grown = Array.make (2 * id) "" in
        Array.blit t.path_names 0 grown 0 id;
        t.path_names <- grown
      end;
      t.path_names.(id) <-
        (if parent < 0 then seg else t.path_names.(parent) ^ ";" ^ seg);
      t.n_paths <- id + 1;
      Hashtbl.add t.path_ids (parent, seg) id;
      id

let path_name t id = if id < 0 then unattributed else t.path_names.(id)

let wait_total t lock =
  match Hashtbl.find_opt t.wait_totals lock with
  | Some w -> w
  | None ->
      let w = { w_count = 0; w_cycles = 0L } in
      Hashtbl.add t.wait_totals lock w;
      w

let span_boundary t s path =
  t.seq <- t.seq + 1;
  s.spans <- (stamp t, t.seq, path) :: s.spans

let handle t (ev : Hb.event) =
  t.events <- t.events + 1;
  match ev with
  | Hb.Spawn { parent; child } -> push t child (Spawned parent)
  | Hb.Wake { by; target } ->
      let handoff_lock =
        match Hashtbl.find_opt t.pending_handoff target with
        | Some l ->
            Hashtbl.remove t.pending_handoff target;
            l
        | None -> -1
      in
      (if handoff_lock >= 0 then
         let s = state t target in
         match s.last_contend with
         | Some (tc, l) when l = handoff_lock ->
             s.last_contend <- None;
             let w = wait_total t handoff_lock in
             w.w_cycles <- Int64.add w.w_cycles (Int64.sub (t.now ()) tc)
         | Some _ | None -> ());
      push t target (Woken { by; handoff_lock })
  | Hb.Block { tid } -> push t tid Blocked
  | Hb.Contend { tid; lock; holder } ->
      let s = state t tid in
      s.last_contend <- Some (t.now (), lock);
      (wait_total t lock).w_count <- (wait_total t lock).w_count + 1;
      push t tid (Contended { lock; holder })
  | Hb.Handoff { from_ = _; to_; lock } ->
      (* Consumed by the very next Wake of [to_], which the release
         performs immediately after publishing this. *)
      Hashtbl.replace t.pending_handoff to_ lock
  | Hb.Steal { tid; core } -> push t tid (Stolen core)
  | Hb.Ipi { by; remotes } -> push t by (Ipi_sent remotes)
  | Hb.Span_open { tid; name } ->
      let s = state t tid in
      let parent = match s.stack with p :: _ -> p | [] -> -1 in
      let id = intern_path t ~parent name in
      s.stack <- id :: s.stack;
      span_boundary t s id;
      if name = "fork" && s.fork_open = None then s.fork_open <- Some (t.now ())
  | Hb.Span_close { tid; name } ->
      let s = state t tid in
      (match s.stack with
      | _ :: rest ->
          s.stack <- rest;
          span_boundary t s (match rest with p :: _ -> p | [] -> -1)
      | [] -> ());
      if name = "fork" then (
        match s.fork_open with
        | Some t0 ->
            s.fork_open <- None;
            t.forks_rev <- (tid, t0, t.now ()) :: t.forks_rev
        | None -> ())
  | Hb.Acquire _ | Hb.Release _ | Hb.Write _ | Hb.Cap_store _ | Hb.Cap_load _
    ->
      ()

(* {2 Analysis} *)

type seg_kind = Run | Sleep

type segment = {
  s_tid : int;
  s_t0 : int64;
  s_t1 : int64;
  s_kind : seg_kind;
  s_span : string;
}

type chain = {
  c_waiter : int;
  c_holder : int;
  c_lock : string;
  c_cycles : int64;
  c_waiter_span : string;
  c_holder_span : string;
}

type report = {
  r_t0 : int64;
  r_t1 : int64;
  r_anchor : int;
  r_segments : segment list;
  r_chains : chain list;
  r_blame : (string * int64) list;
  r_lock_waits : (string * int * int64) list;
  r_steals : int;
  r_ipis : int;
}

let lock_label id =
  match Hb.lock_name id with
  | Some n -> n
  | None -> Printf.sprintf "lock.anon.%d" id

(* Frozen per-thread view: timeline lists reversed into ascending
   arrays so the walk can binary-search by sequence number (the global
   stamp is consistent with time, so a seq bound is also a time bound). *)
type frozen = { f_recs : record array; f_spans : (int64 * int * int) array }

let freeze t =
  let tbl = Hashtbl.create (Hashtbl.length t.threads) in
  (* Rebuilding one keyed table from another: insertion order is
     invisible to lookups. *)
  (Hashtbl.iter
     (fun tid (s : tstate) ->
       Hashtbl.add tbl tid
         {
           f_recs = Array.of_list (List.rev s.recs);
           f_spans = Array.of_list (List.rev s.spans);
         })
     t.threads [@ufork.order_independent]);
  tbl

let no_frozen = { f_recs = [||]; f_spans = [||] }

let frozen tbl tid =
  Option.value ~default:no_frozen (Hashtbl.find_opt tbl tid)

(* Largest index with seq < bound, or -1. *)
let find_before (recs : record array) bound =
  let lo = ref 0 and hi = ref (Array.length recs) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if recs.(mid).seq < bound then lo := mid + 1 else hi := mid
  done;
  !lo - 1

(* The thread's span path id at [time] (last boundary at or before). *)
let span_at (f : frozen) time =
  let spans = f.f_spans in
  let lo = ref 0 and hi = ref (Array.length spans) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let tm, _, _ = spans.(mid) in
    if Int64.compare tm time <= 0 then lo := mid + 1 else hi := mid
  done;
  if !lo = 0 then -1
  else
    let _, _, p = spans.(!lo - 1) in
    p

let analyze t ?anchor ~t0 ~t1 () =
  if Int64.compare t0 t1 > 0 then invalid_arg "Causal.analyze: empty interval";
  let tbl = freeze t in
  let anchor =
    match anchor with
    | Some a -> a
    | None ->
        (* The thread most recently made runnable at or before [t1]:
           the best stand-in for "who was driving at the end". *)
        let best = ref (-1) and best_seq = ref (-1) in
        Hashtbl.iter
          (fun tid (f : frozen) ->
            Array.iter
              (fun r ->
                if Int64.compare r.time t1 <= 0 && r.seq > !best_seq then
                  match r.kind with
                  | Woken _ | Spawned _ | Stolen _ ->
                      best_seq := r.seq;
                      best := tid
                  | Blocked | Contended _ | Ipi_sent _ -> ())
              f.f_recs)
          tbl;
        !best
  in
  let segs = ref [] (* ascending once complete *)
  and chains = ref []
  and steals = ref 0 in
  (* Charge [lo, hi] on [tid], split at span boundaries so every
     sub-segment has one constant enclosing path. Ranges arrive in
     reverse chronological order, so prepending each range's ascending
     sub-list keeps the whole list ascending. *)
  let charge tid kind lo hi =
    if Int64.compare lo hi < 0 then begin
      let f = frozen tbl tid in
      let local = ref [] in
      let cur = ref lo and cur_path = ref (span_at f lo) in
      Array.iter
        (fun (tm, _, p) ->
          if Int64.compare tm lo > 0 && Int64.compare tm hi < 0 then begin
            if Int64.compare tm !cur > 0 then
              local :=
                {
                  s_tid = tid;
                  s_t0 = !cur;
                  s_t1 = tm;
                  s_kind = kind;
                  s_span = path_name t !cur_path;
                }
                :: !local;
            cur := tm;
            cur_path := p
          end
          else if Int64.compare tm lo <= 0 then cur_path := p)
        f.f_spans;
      local :=
        {
          s_tid = tid;
          s_t0 = !cur;
          s_t1 = hi;
          s_kind = kind;
          s_span = path_name t !cur_path;
        }
        :: !local;
      segs := List.rev_append !local !segs
      (* !local is descending; rev_append restores ascending order in
         front of the (later, already ascending) accumulated list *)
    end
  in
  (* Backward walk. [cur_time] is the un-tiled upper bound; [bound] the
     seq of the boundary event, so same-timestamp records on a jump
     target are not re-consumed. *)
  let rec walk tid cur_time bound =
    let f = frozen tbl tid in
    let i = find_before f.f_recs bound in
    if i < 0 then charge tid Run t0 cur_time
    else
      let r = f.f_recs.(i) in
      if Int64.compare r.time cur_time > 0 then
        (* Later than the boundary we are tiling from (e.g. the anchor's
           records continue past the interval end): irrelevant here. *)
        walk tid cur_time r.seq
      else
      match r.kind with
      | Stolen _ ->
          incr steals;
          walk tid cur_time r.seq
      | Ipi_sent _ | Contended _ -> walk tid cur_time r.seq
      | Spawned parent ->
          charge tid Run (max r.time t0) cur_time;
          if Int64.compare r.time t0 <= 0 then ()
          else if parent >= 0 then walk parent r.time r.seq
          else
            (* Spawned from boot: nobody to follow; the remainder of the
               interval predates the thread and is charged as boot run. *)
            charge (-1) Run t0 r.time
      | Woken { by; handoff_lock } ->
          charge tid Run (max r.time t0) cur_time;
          if Int64.compare r.time t0 <= 0 then ()
          else if by >= 0 then begin
            (if handoff_lock >= 0 then
               (* The Contend record sits just below the Block/Woken
                  pair; scan a few entries down for it. *)
               let rec contend j left =
                 if j < 0 || left = 0 then None
                 else
                   match f.f_recs.(j).kind with
                   | Contended { lock; holder = _ } when lock = handoff_lock
                     ->
                       Some f.f_recs.(j).time
                   | _ -> contend (j - 1) (left - 1)
               in
               match contend (i - 1) 4 with
               | Some tc ->
                   chains :=
                     {
                       c_waiter = tid;
                       c_holder = by;
                       c_lock = lock_label handoff_lock;
                       c_cycles = Int64.sub r.time tc;
                       c_waiter_span = path_name t (span_at f tc);
                       c_holder_span =
                         path_name t (span_at (frozen tbl by) r.time);
                     }
                     :: !chains
               | None -> ());
            walk by r.time r.seq
          end
          else begin
            (* Timer or boot wake: the stall itself is the path. Charge
               a sleep segment back to the Block and continue on the
               same thread. *)
            let tb, bseq =
              if i > 0 then
                match f.f_recs.(i - 1).kind with
                | Blocked -> (f.f_recs.(i - 1).time, f.f_recs.(i - 1).seq)
                | _ -> (r.time, r.seq)
              else (r.time, r.seq)
            in
            charge tid Sleep (max tb t0) r.time;
            if Int64.compare tb t0 > 0 then walk tid tb bseq
          end
      | Blocked ->
          (* Anchor picked while blocked (possible for --interval on a
             quiescent tail): the block is the path. *)
          charge tid Sleep (max r.time t0) cur_time;
          if Int64.compare r.time t0 > 0 then walk tid r.time r.seq
  in
  if anchor >= 0 then walk anchor t1 max_int
  else charge (-1) Run t0 t1 (* no timelines at all: one boot segment *);
  let segments = !segs in
  (* {2 Audit}: exact tiling, then exact blame. *)
  let wall = Int64.sub t1 t0 in
  let total =
    List.fold_left
      (fun acc s -> Int64.add acc (Int64.sub s.s_t1 s.s_t0))
      0L segments
  in
  if Int64.compare total wall <> 0 then
    raise
      (Audit_failure
         (Printf.sprintf
            "critical path covers %Ld cycles, interval wall is %Ld" total
            wall));
  (match segments with
  | [] ->
      if Int64.compare wall 0L <> 0 then
        raise (Audit_failure "non-empty interval produced no segments")
  | first :: _ ->
      if Int64.compare first.s_t0 t0 <> 0 then
        raise
          (Audit_failure
             (Printf.sprintf "path starts at %Ld, interval at %Ld"
                first.s_t0 t0));
      let last_t1 =
        List.fold_left
          (fun prev s ->
            if Int64.compare s.s_t0 prev <> 0 then
              raise
                (Audit_failure
                   (Printf.sprintf "gap in path: segment at %Ld after %Ld"
                      s.s_t0 prev));
            s.s_t1)
          first.s_t0 segments
      in
      if Int64.compare last_t1 t1 <> 0 then
        raise
          (Audit_failure
             (Printf.sprintf "path ends at %Ld, interval at %Ld" last_t1 t1)));
  let blame_tbl = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let d = Int64.sub s.s_t1 s.s_t0 in
      Hashtbl.replace blame_tbl s.s_span
        (Int64.add d
           (Option.value ~default:0L (Hashtbl.find_opt blame_tbl s.s_span))))
    segments;
  let blame =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) blame_tbl []
    |> List.sort (fun (ka, a) (kb, b) ->
           match Int64.compare b a with
           | 0 -> String.compare ka kb
           | n -> n)
  in
  let blamed = List.fold_left (fun acc (_, c) -> Int64.add acc c) 0L blame in
  if Int64.compare blamed total <> 0 then
    raise
      (Audit_failure
         (Printf.sprintf "blamed %Ld cycles, path length is %Ld" blamed
            total));
  let lock_waits =
    Hashtbl.fold
      (fun lock w acc -> (lock_label lock, w.w_count, w.w_cycles) :: acc)
      t.wait_totals []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  let ipis = ref 0 in
  Hashtbl.iter
    (fun _ (f : frozen) ->
      Array.iter
        (fun r ->
          match r.kind with
          | Ipi_sent _
            when Int64.compare r.time t0 >= 0 && Int64.compare r.time t1 <= 0
            ->
              incr ipis
          | _ -> ())
        f.f_recs)
    tbl;
  {
    r_t0 = t0;
    r_t1 = t1;
    r_anchor = anchor;
    r_segments = segments;
    r_chains =
      List.sort (fun a b -> Int64.compare b.c_cycles a.c_cycles) !chains;
    r_blame = blame;
    r_lock_waits = lock_waits;
    r_steals = !steals;
    r_ipis = !ipis;
  }

let analyze_fork t n =
  let windows = fork_windows t in
  match List.nth_opt windows n with
  | None ->
      invalid_arg
        (Printf.sprintf
           "Causal.analyze_fork: fork %d out of range (%d completed)" n
           (List.length windows))
  | Some (tid, t0, t1) -> analyze t ~anchor:tid ~t0 ~t1 ()

let dominant_lock r =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c ->
      Hashtbl.replace tbl c.c_lock
        (Int64.add c.c_cycles
           (Option.value ~default:0L (Hashtbl.find_opt tbl c.c_lock))))
    r.r_chains;
  (* Sorted, so a tie on cycles resolves by name, never by hash order. *)
  match
    List.sort
      (fun (la, ca) (lb, cb) ->
        match Int64.compare cb ca with 0 -> compare la lb | c -> c)
      (Hashtbl.fold (fun lock cycles acc -> (lock, cycles) :: acc) tbl [])
  with
  | [] -> None
  | best :: _ -> Some best

(* {2 Exports} *)

let pp_report ~top ppf r =
  let wall = Int64.sub r.r_t1 r.r_t0 in
  let pct c =
    if Int64.compare wall 0L = 0 then 0.
    else 100. *. Int64.to_float c /. Int64.to_float wall
  in
  Format.fprintf ppf
    "@[<v>critical path: %Ld cycles over [%Ld, %Ld], anchor thread %d@,\
     %d segments, %d wait chains crossed, %d steals, %d IPI batches@,@,"
    wall r.r_t0 r.r_t1 r.r_anchor
    (List.length r.r_segments)
    (List.length r.r_chains)
    r.r_steals r.r_ipis;
  Format.fprintf ppf "blame by span path:@,";
  List.iter
    (fun (span, c) ->
      Format.fprintf ppf "  %10Ld cycles  %5.1f%%  %s@," c (pct c) span)
    r.r_blame;
  (match r.r_chains with
  | [] -> Format.fprintf ppf "@,no lock waits on the critical path@,"
  | chains ->
      Format.fprintf ppf "@,top wait chains on the path:@,";
      List.iteri
        (fun i c ->
          if i < top then
            Format.fprintf ppf
              "  thread %d waited %Ld cycles on %s held by thread %d \
               (waiter in %s, holder in %s)@,"
              c.c_waiter c.c_cycles c.c_lock c.c_holder c.c_waiter_span
              c.c_holder_span)
        chains);
  (match dominant_lock r with
  (* Per-lock chain cycles are summed across every waiter the walk
     crossed; waits overlap in wall time, so past 100% the honest
     reading is a multiple of the path, not a share of it. *)
  | Some (lock, cycles) when Int64.compare cycles wall <= 0 ->
      Format.fprintf ppf "@,dominant wait edge: %s (%Ld cycles, %.1f%% of path)@]"
        lock cycles (pct cycles)
  | Some (lock, cycles) ->
      Format.fprintf ppf
        "@,dominant wait edge: %s (%Ld wait cycles summed across waiters, \
         %.1fx the path wall)@]"
        lock cycles
        (if Int64.compare wall 0L = 0 then 0.
         else Int64.to_float cycles /. Int64.to_float wall)
  | None -> Format.fprintf ppf "@]")

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let b = Buffer.create 4096 in
  let wall = Int64.sub r.r_t1 r.r_t0 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"t0\": %Ld,\n  \"t1\": %Ld,\n  \"wall_cycles\": %Ld,\n  \
        \"anchor\": %d,\n  \"steals\": %d,\n  \"ipis\": %d,\n"
       r.r_t0 r.r_t1 wall r.r_anchor r.r_steals r.r_ipis);
  Buffer.add_string b "  \"blame\": [\n";
  List.iteri
    (fun i (span, c) ->
      Buffer.add_string b
        (Printf.sprintf "    %s{\"span\": \"%s\", \"cycles\": %Ld}"
           (if i = 0 then "" else ",")
           (json_escape span) c))
    r.r_blame;
  Buffer.add_string b "\n  ],\n  \"segments\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string b
        (Printf.sprintf
           "    %s{\"tid\": %d, \"t0\": %Ld, \"t1\": %Ld, \"kind\": \
            \"%s\", \"span\": \"%s\"}"
           (if i = 0 then "" else ",")
           s.s_tid s.s_t0 s.s_t1
           (match s.s_kind with Run -> "run" | Sleep -> "sleep")
           (json_escape s.s_span)))
    r.r_segments;
  Buffer.add_string b "\n  ],\n  \"chains\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf
           "    %s{\"waiter\": %d, \"holder\": %d, \"lock\": \"%s\", \
            \"cycles\": %Ld, \"waiter_span\": \"%s\", \"holder_span\": \
            \"%s\"}"
           (if i = 0 then "" else ",")
           c.c_waiter c.c_holder (json_escape c.c_lock) c.c_cycles
           (json_escape c.c_waiter_span)
           (json_escape c.c_holder_span)))
    r.r_chains;
  Buffer.add_string b "\n  ],\n  \"lock_waits\": [\n";
  List.iteri
    (fun i (lock, waits, cycles) ->
      Buffer.add_string b
        (Printf.sprintf
           "    %s{\"lock\": \"%s\", \"waits\": %d, \"wait_cycles\": %Ld}"
           (if i = 0 then "" else ",")
           (json_escape lock) waits cycles))
    r.r_lock_waits;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let to_dot r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "digraph critical_path {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  List.iteri
    (fun i s ->
      Buffer.add_string b
        (Printf.sprintf
           "  n%d [label=\"t%d %s\\n%Ld cycles\\n%s\"%s];\n" i s.s_tid
           (match s.s_kind with Run -> "run" | Sleep -> "sleep")
           (Int64.sub s.s_t1 s.s_t0)
           (json_escape s.s_span)
           (match s.s_kind with
           | Sleep -> ", style=filled, fillcolor=lightyellow"
           | Run -> "")))
    r.r_segments;
  let n = List.length r.r_segments in
  for i = 0 to n - 2 do
    Buffer.add_string b (Printf.sprintf "  n%d -> n%d;\n" i (i + 1))
  done;
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf
           "  w%d [label=\"%s\\n%Ld cycles wait\\nt%d -> t%d\", \
            shape=ellipse, style=dashed];\n"
           i (json_escape c.c_lock) c.c_cycles c.c_holder c.c_waiter))
    r.r_chains;
  Buffer.add_string b "}\n";
  Buffer.contents b

let to_chrome r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i s ->
      Buffer.add_string b
        (Printf.sprintf
           "  %s{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \
            \"ts\": %Ld, \"dur\": %Ld, \"pid\": 0, \"tid\": %d}"
           (if i = 0 then "" else ",\n")
           (json_escape s.s_span)
           (match s.s_kind with Run -> "run" | Sleep -> "sleep")
           s.s_t0
           (Int64.sub s.s_t1 s.s_t0)
           s.s_tid))
    r.r_segments;
  Buffer.add_string b "\n]\n";
  Buffer.contents b
