(** The catalogue of machine-state and trace-protocol invariants.

    Every property the sanitizer ({!Checker}) or the protocol linter
    ({!Lint}) can report is one constructor here, with a stable short id
    ([S1]–[S10] for state invariants swept over a live machine, [L1]–[L5]
    for temporal rules checked over the mechanism-event stream), a
    severity, and a one-line description. Fault-injection tests
    ({!Chaos}) are built so that each injected corruption trips exactly
    one of these — the catalogue doubles as the sanitizer's coverage
    map. *)

type severity =
  | Critical  (** Memory safety is gone: wild capability, frame misuse. *)
  | Error  (** Protocol or bookkeeping broken; results untrustworthy. *)
  | Warning  (** Suspicious but survivable. *)

type t =
  (* State invariants: Checker.sweep. *)
  | Refcount_mismatch
      (** S1: a live frame's refcount equals its number of page-table
          mappings (plus one kernel reference for named segments). *)
  | Free_frame_state
      (** S2: a free frame is mapped nowhere and holds no tagged
          granules. *)
  | Cap_bounds
      (** S3: every loadable stored capability stays inside its owning
          μprocess area (wild pointer otherwise). *)
  | Cow_writable  (** S4: a CoW-shared mapping is never writable. *)
  | Share_perms
      (** S5: CoPA mappings trap capability loads and never writes
          through; CoA mappings trap every access. *)
  | Shm_coherence
      (** S6: [Shm_shared] mappings and named-segment frames coincide. *)
  | Private_aliased
      (** S7: a multiply-mapped anonymous frame has at least one mapping
          that knows it is shared. *)
  | Orphan_mapping
      (** S8: every mapping belongs to a live or zombie process area. *)
  | Phys_accounting
      (** S9: the pool's in-use counter equals the live-frame census. *)
  | Cross_area_cap
      (** S10: no stored capability grants access to another μprocess's
          area (single address space, isolation on). *)
  | Parent_child_leak
      (** S11: the reverse-direction fork leak — no tagged capability
          stored in a {e parent} page targets its child's area. S10's
          cross-area check reports this direction as S11 so a post-fork
          parent→child leak is distinguishable from a generic wild
          capability. *)
  (* Trace-protocol rules: Lint.run. *)
  | Cow_protocol
      (** L1: a CoW write fault is classified under a page fault and
          resolved by a parent-side copy or in-place claim before the
          process faults again. *)
  | Copa_protocol
      (** L2: a CoPA write/capability-load fault is resolved by a child
          copy or in-place claim. *)
  | Coa_protocol
      (** L3: a CoA access fault is resolved by a child copy or in-place
          claim. *)
  | Tlb_flush_protocol
      (** L4: after fork downgrades live PTEs, no fault traffic from the
          parent until the TLB shootdown closes the downgrade batch. *)
  | Copa_relocation
      (** L5: a capability-load fault triggers a tag scan (relocation)
          before the faulting process runs on. *)
  (* Dynamic race detection: Race.violations. *)
  | Data_race
      (** R1: every pair of conflicting writes to shared kernel state
          (page-table entries, trace gauges) is ordered by a
          happens-before edge — big-kernel-lock hand-off, spawn, or
          wakeup. Flagged by the vector-clock detector ({!Race}). *)
  | Lock_order
      (** R2: the runtime lock-acquisition graph stays a DAG — no thread
          ever acquires lock [b] while holding lock [a] if some thread
          acquires [a] while holding [b] — and nested page-table shards
          are taken in ascending index order. Flagged by the acquisition
          -graph checker ({!Lockdep}); the static mirror is lint rule
          D10. *)
  | Lock_stall
      (** R3: no single lock's wait edges dominate an analyzed
          interval's critical path (the causal analyzer's stall alarm;
          tripped deliberately by [explain --chaos-stall-shard]). *)
  | Cap_provenance
      (** R4: the capflow taint invariant — every tagged capability
          reachable in a μprocess's pages carries that μprocess's
          provenance stamp: rebased or freshly minted for it, never the
          kernel root's authority and never a stale parent stamp left by
          a skipped relocation. Checked on the [Cap_store]/[Cap_load]
          stream, at every fork completion, and during
          {!Checker.sweep} when armed ({!Capflow}); the static mirror is
          lint rule D13. *)

val all : t list
(** Catalogue order: S1–S11, L1–L5, then R1–R4. *)

val id : t -> string
(** ["S1"].."( S10"], ["L1"]..["L5"] — stable across releases. *)

val name : t -> string
(** Stable kebab-case slug, e.g. ["refcount-mismatch"]. *)

val severity : t -> severity
val describe : t -> string

(** {1 Violations} *)

type violation = {
  invariant : t;
  subject : string;  (** What is broken: ["frame 17"], ["pid 3 vpn 0x41"]. *)
  detail : string;  (** The counterexample: observed vs expected. *)
}

val pp_severity : Format.formatter -> severity -> unit
val pp : Format.formatter -> t -> unit
val pp_violation : Format.formatter -> violation -> unit

val report : violation list -> string
(** Human-readable multi-line report; [""] when the list is empty. *)
