(** Causal trace graph and critical-path analyzer.

    Subscribed to the {!Ufork_util.Hb} bus for a run, this module folds
    the ordering events the concurrency layer already publishes —
    spawn, wake, lock contention and hand-off, work stealing, TLB-IPI
    batches — together with {!Ufork_sim.Trace} span boundaries into
    per-thread causal timelines. After the run, {!analyze} walks the
    timelines backward from an anchor and tiles any interval with the
    weighted critical path: the chain of execution segments that
    bounded wall time, each attributed to its enclosing span path, with
    the lock-wait chains the path crossed ("forker 3 waited 41k cycles
    on lock.uproc_table held by forker 7 inside fork.dup_fd").

    Same zero-tolerance discipline as {!Ufork_sim.Trace.audit}: the
    critical path must tile the interval exactly (Σ segment cycles =
    interval wall cycles, segments contiguous), and Σ blamed cycles
    must equal the path length. Any mismatch raises {!Audit_failure} —
    an analyzer bug, never data. *)

type t

exception Audit_failure of string

val create : unit -> t

val handle : t -> Ufork_util.Hb.event -> unit
(** Fold one bus event. Callers arm the bus themselves (the experiment
    harness multiplexes several detectors over one subscription). *)

val set_now : t -> (unit -> int64) -> unit
(** Install the simulated-clock reader (e.g. [Engine.now] of the booted
    machine). Events folded before installation are stamped 0 — correct
    for boot-time events, which precede the first engine step. *)

val events_seen : t -> int

val horizon : t -> int64
(** The latest timestamp seen on any folded event — the natural upper
    bound for a whole-run analysis interval. *)

val fork_windows : t -> (int * int64 * int64) list
(** Completed fork windows — ["fork"] span open to close — as
    [(forker tid, open, close)], in completion order. This is the
    [--fork N] index space. *)

(** {1 Analysis} *)

type seg_kind =
  | Run  (** the thread held a core (or was runnable) for the segment *)
  | Sleep  (** the thread was suspended with no waker thread to follow
               (timer sleep, boot wake): the stall itself is the path *)

type segment = {
  s_tid : int;
  s_t0 : int64;
  s_t1 : int64;
  s_kind : seg_kind;
  s_span : string;  (** [;]-joined enclosing span path, or ["(unattributed)"] *)
}

type chain = {
  c_waiter : int;
  c_holder : int;
  c_lock : string;  (** lock name, or ["lock.anon.<id>"] *)
  c_cycles : int64;  (** contend-to-handoff wait *)
  c_waiter_span : string;  (** waiter's span path when it blocked *)
  c_holder_span : string;  (** holder's span path at the hand-off *)
}

type report = {
  r_t0 : int64;
  r_t1 : int64;
  r_anchor : int;  (** tid the backward walk started from *)
  r_segments : segment list;  (** oldest first; tiles [[r_t0, r_t1]] *)
  r_chains : chain list;  (** lock waits the path crossed, largest first *)
  r_blame : (string * int64) list;
      (** span path → critical-path cycles, descending; Σ = r_t1 - r_t0 *)
  r_lock_waits : (string * int * int64) list;
      (** whole-run per-lock (name, waits, wait cycles) — the count side
          matches {!Ufork_sim.Sync.lock_contention} exactly *)
  r_steals : int;  (** work steals crossed on the path *)
  r_ipis : int;  (** TLB-IPI batches sent inside the interval (all threads) *)
}

val analyze : t -> ?anchor:int -> t0:int64 -> t1:int64 -> unit -> report
(** Critical path over [[t0, t1]]. Without [anchor], starts from the
    thread with the latest dispatch-relevant record at or before [t1].
    Runs the tiling audit before returning. *)

val analyze_fork : t -> int -> report
(** [analyze_fork t n]: the [n]th completed fork window, anchored at
    the forker. [Invalid_argument] when out of range. *)

val dominant_lock : report -> (string * int64) option
(** The lock whose wait chains on the critical path sum highest, with
    the summed cycles — the "why did this stall" headline. *)

(** {1 Exports} *)

val pp_report : top:int -> Format.formatter -> report -> unit
(** Human-readable summary: path length, blame table, top-[top] wait
    chains, steal/IPI counts. *)

val to_json : report -> string
(** One JSON object: interval, segments, blame, chains, lock waits. *)

val to_dot : report -> string
(** Graphviz digraph of the critical path: one node per segment, edges
    in path order, dashed edges for the crossed wait chains. *)

val to_chrome : report -> string
(** Chrome [chrome://tracing] / Perfetto JSON array: one complete
    event per segment, lanes keyed by tid. *)
