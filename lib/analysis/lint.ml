module Event = Ufork_sim.Event
module Trace = Ufork_sim.Trace
open Invariant

(* Which protocol a classified fault opens, and what closes it. *)
type fault_kind = Cow | Copa_write | Copa_cap | Coa

type pending = {
  kind : fault_kind;
  opened_at : int64;
  mutable copied : bool;  (* page copy or in-place claim seen *)
  mutable scanned : bool;  (* tag scan seen (relocation) *)
}

type pstate = {
  mutable prev : Event.t option;  (* previous record of this pid *)
  mutable seen : int;
  mutable pending : pending option;
  mutable downgrade_open : bool;  (* fork downgraded PTEs, no shootdown yet *)
}

let is_fault_traffic = function
  | Event.Page_fault | Event.Soft_fault | Event.Cow_write_fault
  | Event.Copa_write_fault | Event.Copa_cap_load_fault
  | Event.Coa_access_fault ->
      true
  | _ -> false

let kind_name = function
  | Cow -> "CoW write"
  | Copa_write -> "CoPA write"
  | Copa_cap -> "CoPA capability-load"
  | Coa -> "CoA access"

let complete p = p.copied && (p.kind <> Copa_cap || p.scanned)

let run ?(dropped = 0) records =
  let violations = ref [] in
  let states : (int, pstate) Hashtbl.t = Hashtbl.create 16 in
  let state pid =
    match Hashtbl.find_opt states pid with
    | Some s -> s
    | None ->
        let s =
          { prev = None; seen = 0; pending = None; downgrade_open = false }
        in
        Hashtbl.add states pid s;
        s
  in
  let add invariant pid t detail =
    violations :=
      { invariant; subject = Printf.sprintf "pid %d @ t=%Ld" pid t; detail }
      :: !violations
  in
  (* An unresolved classified fault, reported when the process faults
     again or the stream ends. *)
  let report_pending pid t (p : pending) =
    let invariant, missing =
      match p.kind with
      | Cow -> (Cow_protocol, "parent copy / in-place claim")
      | Copa_write -> (Copa_protocol, "child copy / in-place claim")
      | Coa -> (Coa_protocol, "child copy / in-place claim")
      | Copa_cap ->
          if not p.copied then (Copa_protocol, "child copy / in-place claim")
          else (Copa_relocation, "tag scan (capability relocation)")
    in
    add invariant pid t
      (Printf.sprintf "%s fault at t=%Ld never saw its %s" (kind_name p.kind)
         p.opened_at missing)
  in
  let classified (r : Trace.record) s kind protocol_inv =
    (* L1/L2/L3 precursor: a classified fault is a refinement of the page
       fault delivered just before it. The first surviving record of a
       pid is exempt when the ring dropped history. *)
    (match s.prev with
    | Some Event.Page_fault -> ()
    | _ when s.seen = 0 && dropped > 0 -> ()
    | _ ->
        add protocol_inv r.Trace.pid r.Trace.t
          (Printf.sprintf "%s fault not preceded by a page-fault delivery"
             (kind_name kind)));
    (match s.pending with
    | Some p when not (complete p) -> report_pending r.Trace.pid r.Trace.t p
    | _ -> ());
    s.pending <-
      Some { kind; opened_at = r.Trace.t; copied = false; scanned = false }
  in
  List.iter
    (fun (r : Trace.record) ->
      if r.Trace.pid >= 0 then begin
        let s = state r.Trace.pid in
        (* L4: between a fork's PTE downgrades and the TLB shootdown that
           publishes them, the parent must generate no fault traffic —
           a fault there means a core ran on stale TLB permissions. *)
        (match r.Trace.event with
        | Event.Fork_fixed -> s.downgrade_open <- true
        | Event.Tlb_shootdown _ -> s.downgrade_open <- false
        | e when s.downgrade_open && is_fault_traffic e ->
            add Tlb_flush_protocol r.Trace.pid r.Trace.t
              (Printf.sprintf
                 "%s inside the fork downgrade window (no TLB shootdown \
                  yet)"
                 (Event.to_key e))
        | _ -> ());
        (match r.Trace.event with
        | Event.Page_fault -> (
            match s.pending with
            | Some p when not (complete p) ->
                report_pending r.Trace.pid r.Trace.t p;
                s.pending <- None
            | _ -> s.pending <- None)
        | Event.Cow_write_fault -> classified r s Cow Cow_protocol
        | Event.Copa_write_fault -> classified r s Copa_write Copa_protocol
        | Event.Copa_cap_load_fault -> classified r s Copa_cap Copa_protocol
        | Event.Coa_access_fault -> classified r s Coa Coa_protocol
        | Event.Page_copy_cow | Event.Cow_claim_in_place -> (
            match s.pending with
            | Some p when p.kind = Cow ->
                p.copied <- true;
                if complete p then s.pending <- None
            | _ -> ())
        | Event.Page_copy_child | Event.Claim_in_place -> (
            match s.pending with
            | Some p when p.kind <> Cow ->
                p.copied <- true;
                if complete p then s.pending <- None
            | _ -> ())
        | Event.Granule_scan _ -> (
            match s.pending with
            | Some p ->
                p.scanned <- true;
                if complete p then s.pending <- None
            | None -> ())
        | _ -> ());
        s.prev <- Some r.Trace.event;
        s.seen <- s.seen + 1
      end)
    records;
  (* The stream ends quiescent (the ring drops oldest records, never the
     tail), so a trailing unresolved fault is real. *)
  let pids = Hashtbl.fold (fun pid _ acc -> pid :: acc) states [] in
  List.iter
    (fun pid ->
      let s = Hashtbl.find states pid in
      match s.pending with
      | Some p when not (complete p) -> report_pending pid p.opened_at p
      | _ -> ())
    (List.sort compare pids);
  List.rev !violations

let of_trace t = run ~dropped:(Trace.dropped t) (Trace.records t)
