type severity = Critical | Error | Warning

type t =
  | Refcount_mismatch
  | Free_frame_state
  | Cap_bounds
  | Cow_writable
  | Share_perms
  | Shm_coherence
  | Private_aliased
  | Orphan_mapping
  | Phys_accounting
  | Cross_area_cap
  | Parent_child_leak
  | Cow_protocol
  | Copa_protocol
  | Coa_protocol
  | Tlb_flush_protocol
  | Copa_relocation
  | Data_race
  | Lock_order
  | Lock_stall
  | Cap_provenance

let all =
  [
    Refcount_mismatch;
    Free_frame_state;
    Cap_bounds;
    Cow_writable;
    Share_perms;
    Shm_coherence;
    Private_aliased;
    Orphan_mapping;
    Phys_accounting;
    Cross_area_cap;
    Parent_child_leak;
    Cow_protocol;
    Copa_protocol;
    Coa_protocol;
    Tlb_flush_protocol;
    Copa_relocation;
    Data_race;
    Lock_order;
    Lock_stall;
    Cap_provenance;
  ]

let id = function
  | Refcount_mismatch -> "S1"
  | Free_frame_state -> "S2"
  | Cap_bounds -> "S3"
  | Cow_writable -> "S4"
  | Share_perms -> "S5"
  | Shm_coherence -> "S6"
  | Private_aliased -> "S7"
  | Orphan_mapping -> "S8"
  | Phys_accounting -> "S9"
  | Cross_area_cap -> "S10"
  | Parent_child_leak -> "S11"
  | Cow_protocol -> "L1"
  | Copa_protocol -> "L2"
  | Coa_protocol -> "L3"
  | Tlb_flush_protocol -> "L4"
  | Copa_relocation -> "L5"
  | Data_race -> "R1"
  | Lock_order -> "R2"
  | Lock_stall -> "R3"
  | Cap_provenance -> "R4"

let name = function
  | Refcount_mismatch -> "refcount-mismatch"
  | Free_frame_state -> "free-frame-state"
  | Cap_bounds -> "cap-bounds"
  | Cow_writable -> "cow-writable"
  | Share_perms -> "share-perms"
  | Shm_coherence -> "shm-coherence"
  | Private_aliased -> "private-aliased"
  | Orphan_mapping -> "orphan-mapping"
  | Phys_accounting -> "phys-accounting"
  | Cross_area_cap -> "cross-area-cap"
  | Parent_child_leak -> "parent-child-leak"
  | Cow_protocol -> "cow-protocol"
  | Copa_protocol -> "copa-protocol"
  | Coa_protocol -> "coa-protocol"
  | Tlb_flush_protocol -> "tlb-flush-protocol"
  | Copa_relocation -> "copa-relocation"
  | Data_race -> "data-race"
  | Lock_order -> "lock-order"
  | Lock_stall -> "lock-stall"
  | Cap_provenance -> "cap-provenance"

let severity = function
  | Refcount_mismatch -> Error
  | Free_frame_state -> Critical
  | Cap_bounds -> Critical
  | Cow_writable -> Critical
  | Share_perms -> Critical
  | Shm_coherence -> Error
  | Private_aliased -> Error
  | Orphan_mapping -> Critical
  | Phys_accounting -> Warning
  | Cross_area_cap -> Critical
  | Parent_child_leak -> Critical
  | Cow_protocol -> Error
  | Copa_protocol -> Error
  | Coa_protocol -> Error
  | Tlb_flush_protocol -> Critical
  | Copa_relocation -> Critical
  | Data_race -> Critical
  | Lock_order -> Critical
  | Lock_stall -> Error
  | Cap_provenance -> Critical

let describe = function
  | Refcount_mismatch ->
      "a live frame's refcount equals its mappings (+1 for named segments)"
  | Free_frame_state -> "a free frame is unmapped and carries no tags"
  | Cap_bounds -> "loadable stored capabilities stay inside the owner's area"
  | Cow_writable -> "CoW-shared mappings are never writable"
  | Share_perms -> "CoPA traps cap loads and writes; CoA traps every access"
  | Shm_coherence -> "Shm mappings and named-segment frames coincide"
  | Private_aliased -> "an aliased anonymous frame has a sharing-aware mapping"
  | Orphan_mapping -> "every mapping belongs to a live or zombie area"
  | Phys_accounting -> "frames-in-use equals the live-frame census"
  | Cross_area_cap -> "no stored capability reaches another process's area"
  | Parent_child_leak ->
      "after fork, no tagged capability in a parent page targets the \
       child's area"
  | Cow_protocol -> "CoW write fault: classified under a fault, then resolved"
  | Copa_protocol -> "CoPA fault resolved by child copy or in-place claim"
  | Coa_protocol -> "CoA fault resolved by child copy or in-place claim"
  | Tlb_flush_protocol -> "no fault traffic between PTE downgrade and shootdown"
  | Copa_relocation -> "cap-load fault relocates (tag scan) before running on"
  | Data_race ->
      "conflicting shared-state writes are ordered by a happens-before edge"
  | Lock_order ->
      "nested lock acquisitions follow one global order (cycle-free, \
       pt-shards ascending)"
  | Lock_stall ->
      "no single lock's wait edges dominate the interval's critical path"
  | Cap_provenance ->
      "every tagged capability reachable in a μprocess's pages carries \
       that μprocess's provenance — never the kernel root's, never a \
       stale parent's"

type violation = { invariant : t; subject : string; detail : string }

let pp_severity ppf s =
  Format.pp_print_string ppf
    (match s with
    | Critical -> "critical"
    | Error -> "error"
    | Warning -> "warning")

let pp ppf t = Format.fprintf ppf "%s:%s" (id t) (name t)

let pp_violation ppf v =
  Format.fprintf ppf "[%a] %a: %s — %s" pp v.invariant pp_severity
    (severity v.invariant) v.subject v.detail

let report = function
  | [] -> ""
  | vs ->
      Format.asprintf "%d invariant violation(s):@.%a" (List.length vs)
        (Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_violation)
        vs
