(* Interned counters: a key name maps to a dense int id on first touch
   and the counts live in one preallocated flat [int array] indexed by
   id, doubled on demand. The string API below is a registration shim —
   hot callers ({!Trace.emit}) intern once at trace construction and
   bump through the [_id] entry points, so the per-event path is an
   array store with no hashing and no allocation. One meter belongs to
   one machine and the engine runs its machine on one domain, so a
   single flat array needs no striping; cross-domain parallelism in the
   bench harness is per-machine (each sweep point owns its meter). *)
type t = {
  ids : (string, int) Hashtbl.t; (* name -> id, registration order *)
  mutable names : string array; (* id -> name *)
  mutable counts : int array; (* id -> count *)
  mutable n : int; (* interned ids; live prefix of the arrays *)
}

let initial_capacity = 64

let create () =
  {
    ids = Hashtbl.create initial_capacity;
    names = Array.make initial_capacity "";
    counts = Array.make initial_capacity 0;
    n = 0;
  }

let grow t =
  let cap = 2 * Array.length t.counts in
  let counts = Array.make cap 0 in
  Array.blit t.counts 0 counts 0 t.n;
  t.counts <- counts;
  let names = Array.make cap "" in
  Array.blit t.names 0 names 0 t.n;
  t.names <- names

let intern t name =
  match Hashtbl.find_opt t.ids name with
  | Some id -> id
  | None ->
      let id = t.n in
      if id = Array.length t.counts then grow t;
      t.names.(id) <- name;
      t.counts.(id) <- 0;
      Hashtbl.replace t.ids name id;
      t.n <- id + 1;
      id

let name t id = t.names.(id)
let incr_id t id = t.counts.(id) <- t.counts.(id) + 1
let add_id t id n = t.counts.(id) <- t.counts.(id) + n
let get_id t id = t.counts.(id)
let set_id t id v = t.counts.(id) <- v
let incr t name = incr_id t (intern t name)
let add t name n = add_id t (intern t name) n

let get t name =
  match Hashtbl.find_opt t.ids name with
  | Some id -> t.counts.(id)
  | None -> 0

(* Zeroing the live prefix keeps the id registry: keys remain in
   [to_list] with value 0. *)
let reset t = Array.fill t.counts 0 t.n 0

let to_list t =
  List.init t.n (fun id -> (t.names.(id), t.counts.(id)))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iter (fun (k, v) -> Format.fprintf ppf "%-32s %d@," k v) (to_list t);
  Format.pp_close_box ppf ()

let set t name v = set_id t (intern t name) v
