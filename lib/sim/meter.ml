type t = (string, int ref) Hashtbl.t

let create () = Hashtbl.create 32

let counter t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t name r;
      r

let incr t name = Stdlib.incr (counter t name)
let add t name n = counter t name := !(counter t name) + n
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0
(* Zeroing every counter commutes: order-independent. *)
let reset t = (Hashtbl.iter (fun _ r -> r := 0) t [@ufork.order_independent])

let to_list t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%-32s %d@," k v)
    (to_list t);
  Format.pp_close_box ppf ()

let set t name v = counter t name := v
