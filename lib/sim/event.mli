(** The typed mechanism-event taxonomy of the cost model.

    Every simulated cycle a kernel charges and every counter a benchmark
    reads corresponds to one constructor below. An event knows three
    things: its counter key ({!to_key} — the name under which the derived
    {!Meter} view accumulates it), how many units one emission represents
    ({!count} — pages for [Page_alloc], bytes for [Copy_bytes], 1 for
    everything else), and its cycle cost under a given {!Costs.t} preset
    ({!cost}). Emission happens through {!Trace.emit}, which charges,
    counts and (optionally) records the event atomically — there is no
    way to bump a counter without paying the cycles, or vice versa. *)

type t =
  (* Privilege and scheduling transitions. *)
  | Syscall of { name : string; trap : bool }
      (** Kernel entry. [trap = false] is the sealed-capability invocation
          (§4.4); [trap = true] the classic exception entry, floored at
          800 cycles. Counted under ["syscall.<name>"] plus the aggregate
          ["syscall"]. *)
  | Entry_validation of int
      (** Argument-validation work at syscall entry; payload is the cycle
          cost implied by the configured isolation level. *)
  | Toctou_setup
      (** Kernel-side shadow-copy setup of by-reference arguments on every
          entry when TOCTTOU protection is on (§4.4). *)
  | Copy_bytes of int  (** copyin/copyout of an [n]-byte syscall payload. *)
  | Toctou_bytes of int
      (** The TOCTTOU double copy of the same [n] bytes, on top of
          {!Copy_bytes}. *)
  | Context_switch
  | Address_space_switch
      (** Page-table switch + TLB flush; emitted only by multi-AS
          kernels. *)
  (* Faults. *)
  | Page_fault  (** Fault delivery + handler entry/exit (key ["fault"]). *)
  | Soft_fault
      (** Monolithic pmap miss on a resident page (first touch after
          fork). *)
  | Demand_zero  (** Demand-zero materialization in heap/metadata. *)
  | Cow_write_fault
  | Copa_write_fault
  | Copa_cap_load_fault
  | Coa_access_fault
      (** Fault classification sub-counters; zero cost — the cycles are on
          the enclosing {!Page_fault}. *)
  (* fork machinery. *)
  | Fork_fixed  (** Fixed fork bookkeeping (key ["fork"]). *)
  | Spawn  (** posix_spawn fixed cost: a quarter of {!Fork_fixed}. *)
  | Thread_create
  | Exit
  | Kill
  | Domain_create  (** Nephele VM-clone domain creation. *)
  (* Page tables and page movement. *)
  | Pte_copy of int
      (** [n] page-table entries installed/duplicated at fork or mapping
          time. Batched emission: one record for a whole range charges
          exactly [n] times the per-entry cost, so cycle totals and meter
          counts are independent of the batch split. *)
  | Pte_protect
  | Tlb_shootdown of int
      (** The flush/shootdown batch closing a sequence of PTE permission
          downgrades (fork's CoW/CoA/CoPA sharing loop): stale TLB entries
          on every core are invalidated before the downgraded mappings can
          be relied upon. The payload is the number of remote cores that
          must acknowledge the IPI (cores − 1; 0 on a single core), each
          charged {!Ufork_sim.Costs.t.tlb_ipi} cycles — the cross-core
          window that eventually caps fork scaling. Counts as one flush
          protocol step regardless; the linter checks its ordering. *)
  | Page_alloc of int  (** [n] fresh physical frames. *)
  | Page_copy_eager of int
      (** [n] eager 4 KiB copies at fork (proactive or full); batched like
          {!Pte_copy}. *)
  | Page_copy_child  (** Fault-driven copy into the child (CoA/CoPA). *)
  | Page_copy_cow  (** Parent-side CoW copy. *)
  | Claim_in_place
  | Cow_claim_in_place
      (** Refcount-1 frames claimed without a copy; zero cost. *)
  | Shm_share  (** Deliberately shared page mapped, not copied (§3.7). *)
  (* Capability relocation (§4.2). *)
  | Granule_scan of int  (** [n] 16-byte granules tag-inspected. *)
  | Cap_relocate of int  (** [n] tagged capabilities rebased. *)
  | Toctou_revalidate of int
      (** Post-copy revalidation of [n] duplicated PTEs against the copied
          fork arguments (§5.1); costs n/2 cycles. *)
  (* Allocator, files, pipes, segments. *)
  | Malloc
  | Free
  | File_op
  | Pipe_op
  | Shm_open
  | Map_library
  | Arena_pretouch of int
      (** [n] heap pages re-dirtied by a forked child's first allocation;
          zero direct cost (the write faults are charged separately). *)
  (* Application work. *)
  | Compute of int64  (** Pure CPU burn requested via [Api.compute]. *)

val id : t -> int
(** Dense stable constructor code in declaration order,
    [0 .. id_count - 1]. Injective across constructors ([Syscall] maps to
    one code regardless of name; the per-name counter split is a key
    concern, handled by {!Meter} interning) and append-only — tests pin
    the exact values, so renumbering is an accounting-format change. The
    flat accounting arrays in {!Trace} index by it. *)

val id_count : int
(** Number of constructor codes; [id e < id_count] for every [e]. *)

val to_key : t -> string
(** The counter key. Injective across constructors: no two constructors
    share a key (for [Syscall] the key is ["syscall." ^ name]; the
    aggregate ["syscall"] counter is maintained by {!Trace.emit} on top). *)

val count : t -> int
(** Units represented by one emission: the payload for [Page_alloc],
    [Copy_bytes], [Toctou_bytes], [Granule_scan], [Cap_relocate],
    [Toctou_revalidate], [Arena_pretouch], [Pte_copy] and
    [Page_copy_eager]; 1 otherwise. *)

val cost : costs:Costs.t -> t -> int64
(** Simulated cycles one emission charges under the preset. *)

val linear_unit : costs:Costs.t -> t -> int64 option
(** [Some u] when [cost] is exactly [count * u] with [u] derivable from
    the preset (and, for [Syscall]/[Entry_validation], the payload) — the
    per-key invariant {!Trace.audit} re-checks. [None] for byte-scaled
    costs (per-call rounding), [Toctou_revalidate] and [Compute]. *)

val fault_key : string
(** [to_key Page_fault] — for callers that read the fault counter back
    from the {!Meter} view instead of hard-coding ["fault"]. *)

val pte_copy_key : string
(** [to_key (Pte_copy 1)], likewise. *)

val pp : Format.formatter -> t -> unit

val json_escape : string -> string
(** Minimal JSON string escaping (quotes, backslash, control chars). *)

val to_json : t -> string
(** One-line JSON object [{"key": ..., "n": ...}]. *)

val samples : t list
(** One representative per constructor, for exhaustiveness-style tests. *)
