module Hb = Ufork_util.Hb

module Lock = struct
  type t = {
    id : int;
    name : string option;
    mutable held : bool;
    queue : Engine.waker Queue.t;
    mutable holder : int;  (** tid of the current holder while [held] *)
    mutable acquires : int;
    mutable waits : int;
    wait_holders : (int, int) Hashtbl.t;  (** holder tid at wait → count *)
  }

  (* Lock identity for the happens-before bus: release-to-acquire edges
     are drawn per lock, so each needs a stable id. Named locks (the
     sharded kernel resources) additionally register the name with the
     bus so race reports and trace exports can say which resource a
     lock protects. *)
  let next_id = ref 0

  (* Named locks also register here, newest first, so the contention
     surface ([Sync.lock_contention]) can enumerate them after a run.
     Plain counters: they charge no cycles and touch no engine state, so
     golden accounting and scheduling are unchanged. One mutex covers
     the id counter and the registry: locks are created at machine boot,
     and the bench harness boots machines from several domains at once
     ([Experiments.parmap]). Ids stay unique (their only contract);
     contention readouts aggregate by name and sort, so registration
     order never shows. *)
  let registry : t list ref = ref []
  let registry_mutex = Mutex.create ()

  let create ?name () =
    let id =
      Mutex.protect registry_mutex (fun () ->
          incr next_id;
          !next_id)
    in
    Option.iter (Hb.set_lock_name id) name;
    let t =
      {
        id;
        name;
        held = false;
        queue = Queue.create ();
        holder = min_int;
        acquires = 0;
        waits = 0;
        wait_holders = Hashtbl.create 7;
      }
    in
    if name <> None then
      Mutex.protect registry_mutex (fun () -> registry := t :: !registry);
    t

  let id t = t.id
  let name t = t.name

  let acquire t =
    t.acquires <- t.acquires + 1;
    (if not t.held then t.held <- true
     else begin
       t.waits <- t.waits + 1;
       let blocking_holder = t.holder in
       Hashtbl.replace t.wait_holders blocking_holder
         (1 + Option.value ~default:0
                (Hashtbl.find_opt t.wait_holders blocking_holder));
       if Hb.on () then
         Hb.emit
           (Hb.Contend { tid = Hb.tid (); lock = t.id; holder = blocking_holder });
       Engine.suspend (fun w -> Queue.push w t.queue)
     end);
    t.holder <- Hb.tid ();
    (* Emitted after the lock is really held (a contended acquire
       suspends first): the detector joins the releaser's clock here. *)
    if Hb.on () then Hb.emit (Hb.Acquire { tid = Hb.tid (); lock = t.id })

  let release t =
    if not t.held then invalid_arg "Lock.release: not held";
    if Hb.on () then Hb.emit (Hb.Release { tid = Hb.tid (); lock = t.id });
    match Queue.take_opt t.queue with
    | Some w ->
        (* Ownership transfers directly to the woken thread. *)
        if Hb.on () then
          Hb.emit
            (Hb.Handoff
               { from_ = Hb.tid (); to_ = Engine.waker_tid w; lock = t.id });
        Engine.wake w
    | None -> t.held <- false

  let with_lock t f =
    acquire t;
    match f () with
    | v ->
        release t;
        v
    | exception e ->
        release t;
        raise e

  let locked t = t.held
end

(* Per-lock contention readout, aggregated by resource name across every
   named lock created so far (a long-lived front end may boot several
   machines; same-named locks sum). Deterministic: sorted by name, and
   the per-holder table is folded to a sorted assoc list. *)

type contention = {
  lock : string;  (** the resource name passed to [create ~name] *)
  acquires : int;  (** outermost acquisitions (recursive re-entries excluded) *)
  waits : int;  (** acquisitions that found the lock held and suspended *)
  wait_holders : (int * int) list;
      (** holder tid at the moment a waiter blocked → how often, sorted *)
}

let lock_contention () =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (l : Lock.t) ->
      match l.Lock.name with
      | None -> ()
      | Some n ->
          let acquires, waits, holders =
            Option.value ~default:(0, 0, []) (Hashtbl.find_opt by_name n)
          in
          let own =
            Hashtbl.fold (fun h c acc -> (h, c) :: acc) l.Lock.wait_holders []
          in
          Hashtbl.replace by_name n
            ( acquires + l.Lock.acquires,
              waits + l.Lock.waits,
              own @ holders ))
    !Lock.registry;
  Hashtbl.fold (fun n v acc -> (n, v) :: acc) by_name []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (n, (acquires, waits, holders)) ->
         let merged = Hashtbl.create 7 in
         List.iter
           (fun (h, c) ->
             Hashtbl.replace merged h
               (c + Option.value ~default:0 (Hashtbl.find_opt merged h)))
           holders;
         let wait_holders =
           Hashtbl.fold (fun h c acc -> (h, c) :: acc) merged []
           |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
         in
         { lock = n; acquires; waits; wait_holders })

let lock_contention_prometheus () =
  let b = Buffer.create 1024 in
  let rows = lock_contention () in
  Buffer.add_string b
    "# HELP ufork_lock_acquire_total Outermost lock acquisitions.\n\
     # TYPE ufork_lock_acquire_total counter\n";
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "ufork_lock_acquire_total{lock=%S} %d\n" c.lock
           c.acquires))
    rows;
  Buffer.add_string b
    "# HELP ufork_lock_wait_total Acquisitions that blocked on a holder.\n\
     # TYPE ufork_lock_wait_total counter\n";
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "ufork_lock_wait_total{lock=%S} %d\n" c.lock c.waits))
    rows;
  Buffer.add_string b
    "# HELP ufork_lock_wait_holder_total Waits attributed to the thread \
     holding the lock when the waiter blocked.\n\
     # TYPE ufork_lock_wait_holder_total counter\n";
  List.iter
    (fun c ->
      List.iter
        (fun (holder, n) ->
          Buffer.add_string b
            (Printf.sprintf
               "ufork_lock_wait_holder_total{lock=%S,holder=\"%d\"} %d\n"
               c.lock holder n))
        c.wait_holders)
    rows;
  Buffer.contents b

let reset_lock_contention () =
  Mutex.protect Lock.registry_mutex (fun () -> Lock.registry := [])

(* Recursive lock, owner-tracked by engine tid: kernel paths re-enter
   (a fault raised inside a syscall re-enters the kernel on the same
   thread), and a plain Lock would self-deadlock the cooperative engine.
   Depth counting keeps the underlying release balanced with the
   outermost acquire; only that outermost pair touches the Lock (and so
   the happens-before bus). *)
module Rlock = struct
  type t = { lock : Lock.t; mutable owner : int; mutable depth : int }

  let no_owner = min_int

  let create ?name () =
    { lock = Lock.create ?name (); owner = no_owner; depth = 0 }

  let acquire t =
    let tid = Hb.tid () in
    if t.depth > 0 && t.owner = tid then t.depth <- t.depth + 1
    else begin
      Lock.acquire t.lock;
      t.owner <- tid;
      t.depth <- 1
    end

  let release t =
    if t.depth <= 0 then invalid_arg "Rlock.release: not held";
    t.depth <- t.depth - 1;
    if t.depth = 0 then begin
      t.owner <- no_owner;
      Lock.release t.lock
    end

  let with_lock t f =
    acquire t;
    match f () with
    | v ->
        release t;
        v
    | exception e ->
        release t;
        raise e

  let id t = Lock.id t.lock
  let name t = Lock.name t.lock
  let held_by_self t = t.depth > 0 && t.owner = Hb.tid ()
end

module Cond = struct
  type t = { queue : Engine.waker Queue.t }

  let create () = { queue = Queue.create () }
  let wait t = Engine.suspend (fun w -> Queue.push w t.queue)
  let add_waiter t w = Queue.push w t.queue

  (* Entries woken out of band (e.g. signal delivery) are skipped so their
     stale wakers never consume a real wakeup. *)
  let rec signal t =
    match Queue.take_opt t.queue with
    | Some w -> if Engine.waker_pending w then Engine.wake w else signal t
    | None -> ()

  let broadcast t =
    let n = Queue.length t.queue in
    for _ = 1 to n do
      signal t
    done

  let waiters t = Queue.length t.queue
end
