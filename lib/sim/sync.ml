module Hb = Ufork_util.Hb

module Lock = struct
  type t = {
    id : int;
    name : string option;
    mutable held : bool;
    queue : Engine.waker Queue.t;
  }

  (* Lock identity for the happens-before bus: release-to-acquire edges
     are drawn per lock, so each needs a stable id. Named locks (the
     sharded kernel resources) additionally register the name with the
     bus so race reports and trace exports can say which resource a
     lock protects. *)
  let next_id = ref 0

  let create ?name () =
    incr next_id;
    Option.iter (Hb.set_lock_name !next_id) name;
    { id = !next_id; name; held = false; queue = Queue.create () }

  let id t = t.id
  let name t = t.name

  let acquire t =
    (if not t.held then t.held <- true
     else Engine.suspend (fun w -> Queue.push w t.queue));
    (* Emitted after the lock is really held (a contended acquire
       suspends first): the detector joins the releaser's clock here. *)
    if Hb.on () then Hb.emit (Hb.Acquire { tid = Hb.tid (); lock = t.id })

  let release t =
    if not t.held then invalid_arg "Lock.release: not held";
    if Hb.on () then Hb.emit (Hb.Release { tid = Hb.tid (); lock = t.id });
    match Queue.take_opt t.queue with
    | Some w ->
        (* Ownership transfers directly to the woken thread. *)
        Engine.wake w
    | None -> t.held <- false

  let with_lock t f =
    acquire t;
    match f () with
    | v ->
        release t;
        v
    | exception e ->
        release t;
        raise e

  let locked t = t.held
end

(* Recursive lock, owner-tracked by engine tid: kernel paths re-enter
   (a fault raised inside a syscall re-enters the kernel on the same
   thread), and a plain Lock would self-deadlock the cooperative engine.
   Depth counting keeps the underlying release balanced with the
   outermost acquire; only that outermost pair touches the Lock (and so
   the happens-before bus). *)
module Rlock = struct
  type t = { lock : Lock.t; mutable owner : int; mutable depth : int }

  let no_owner = min_int

  let create ?name () =
    { lock = Lock.create ?name (); owner = no_owner; depth = 0 }

  let acquire t =
    let tid = Hb.tid () in
    if t.depth > 0 && t.owner = tid then t.depth <- t.depth + 1
    else begin
      Lock.acquire t.lock;
      t.owner <- tid;
      t.depth <- 1
    end

  let release t =
    if t.depth <= 0 then invalid_arg "Rlock.release: not held";
    t.depth <- t.depth - 1;
    if t.depth = 0 then begin
      t.owner <- no_owner;
      Lock.release t.lock
    end

  let with_lock t f =
    acquire t;
    match f () with
    | v ->
        release t;
        v
    | exception e ->
        release t;
        raise e

  let id t = Lock.id t.lock
  let name t = Lock.name t.lock
  let held_by_self t = t.depth > 0 && t.owner = Hb.tid ()
end

module Cond = struct
  type t = { queue : Engine.waker Queue.t }

  let create () = { queue = Queue.create () }
  let wait t = Engine.suspend (fun w -> Queue.push w t.queue)
  let add_waiter t w = Queue.push w t.queue

  (* Entries woken out of band (e.g. signal delivery) are skipped so their
     stale wakers never consume a real wakeup. *)
  let rec signal t =
    match Queue.take_opt t.queue with
    | Some w -> if Engine.waker_pending w then Engine.wake w else signal t
    | None -> ()

  let broadcast t =
    let n = Queue.length t.queue in
    for _ = 1 to n do
      signal t
    done

  let waiters t = Queue.length t.queue
end
