module Lock = struct
  type t = { mutable held : bool; queue : Engine.waker Queue.t }

  let create () = { held = false; queue = Queue.create () }

  let acquire t =
    if not t.held then t.held <- true
    else Engine.suspend (fun w -> Queue.push w t.queue)

  let release t =
    if not t.held then invalid_arg "Lock.release: not held";
    match Queue.take_opt t.queue with
    | Some w ->
        (* Ownership transfers directly to the woken thread. *)
        Engine.wake w
    | None -> t.held <- false

  let with_lock t f =
    acquire t;
    match f () with
    | v ->
        release t;
        v
    | exception e ->
        release t;
        raise e

  let locked t = t.held
end

module Cond = struct
  type t = { queue : Engine.waker Queue.t }

  let create () = { queue = Queue.create () }
  let wait t = Engine.suspend (fun w -> Queue.push w t.queue)
  let add_waiter t w = Queue.push w t.queue

  (* Entries woken out of band (e.g. signal delivery) are skipped so their
     stale wakers never consume a real wakeup. *)
  let rec signal t =
    match Queue.take_opt t.queue with
    | Some w -> if Engine.waker_pending w then Engine.wake w else signal t
    | None -> ()

  let broadcast t =
    let n = Queue.length t.queue in
    for _ = 1 to n do
      signal t
    done

  let waiters t = Queue.length t.queue
end
