module Hb = Ufork_util.Hb

module Lock = struct
  type t = { id : int; mutable held : bool; queue : Engine.waker Queue.t }

  (* Lock identity for the happens-before bus: release-to-acquire edges
     are drawn per lock, so each needs a stable id. *)
  let next_id = ref 0

  let create () =
    incr next_id;
    { id = !next_id; held = false; queue = Queue.create () }

  let id t = t.id

  let acquire t =
    (if not t.held then t.held <- true
     else Engine.suspend (fun w -> Queue.push w t.queue));
    (* Emitted after the lock is really held (a contended acquire
       suspends first): the detector joins the releaser's clock here. *)
    if Hb.on () then Hb.emit (Hb.Acquire { tid = Hb.tid (); lock = t.id })

  let release t =
    if not t.held then invalid_arg "Lock.release: not held";
    if Hb.on () then Hb.emit (Hb.Release { tid = Hb.tid (); lock = t.id });
    match Queue.take_opt t.queue with
    | Some w ->
        (* Ownership transfers directly to the woken thread. *)
        Engine.wake w
    | None -> t.held <- false

  let with_lock t f =
    acquire t;
    match f () with
    | v ->
        release t;
        v
    | exception e ->
        release t;
        raise e

  let locked t = t.held
end

module Cond = struct
  type t = { queue : Engine.waker Queue.t }

  let create () = { queue = Queue.create () }
  let wait t = Engine.suspend (fun w -> Queue.push w t.queue)
  let add_waiter t w = Queue.push w t.queue

  (* Entries woken out of band (e.g. signal delivery) are skipped so their
     stale wakers never consume a real wakeup. *)
  let rec signal t =
    match Queue.take_opt t.queue with
    | Some w -> if Engine.waker_pending w then Engine.wake w else signal t
    | None -> ()

  let broadcast t =
    let n = Queue.length t.queue in
    for _ = 1 to n do
      signal t
    done

  let waiters t = Queue.length t.queue
end
