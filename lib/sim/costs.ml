type t = {
  label : string;
  syscall : int64;
  context_switch : int64;
  address_space_switch : int64;
  page_fault : int64;
  soft_fault : int64;
  fork_fixed : int64;
  thread_create : int64;
  exit_fixed : int64;
  pte_copy : int64;
  pte_protect : int64;
  tlb_ipi : int64;
  page_alloc : int64;
  page_copy : int64;
  granule_scan : int64;
  cap_relocate : int64;
  domain_create : int64;
  copy_per_byte : float;
  toctou_per_byte : float;
  file_op : int64;
  pipe_op : int64;
}

(* Calibration notes (all at 2.5 GHz, so 1 us = 2500 cycles):

   - Context1 (Fig. 9): one iteration is 2 pipe writes + 2 pipe reads + 2
     blocking context switches. uFork: 4*200 + 2*2600 + small = ~6.1 kcyc =
     2.45 us/iter -> 245 ms for 100k. CheriBSD adds the trap to each
     syscall and an address-space switch to each context switch:
     4*800 + 2*(2600+1100) = ~10.6 kcyc = 4.2 us/iter -> ~420 ms.

   - hello-world fork (Fig. 8): uFork = syscall + fork_fixed +
     thread_create + ~30 PTE copies + 2 proactive page copies+scans
     = ~135 kcyc = 54 us. CheriBSD = syscall + fork_fixed (vmspace/proc
     duplication is an order of magnitude heavier) + ~70 PTE copies
     = ~492 kcyc = 197 us. Nephele = domain_create + image copy = 10.7 ms.

   - pte_copy: uFork copies a flat range of entries within one address
     space (bulk memcpy-like, ~20 cyc/entry); CheriBSD duplicates vm_map
     entries + pmap with locking (~150 cyc/entry). This makes Redis fork
     latency scale as in Fig. 4: 26k mapped pages -> ~260 us vs ~1.7 ms.

   - Full synchronous copy (Fig. 4): page_alloc + page_copy + 256 granule
     scans + relocations = ~1.55 kcyc per 4 KiB page; 36864 pages (144 MB)
     = ~58 Mcyc = 23 ms.

   - soft_fault: after a CheriBSD fork the child pmap is empty; every first
     touch of a resident page takes a soft fault. This is the main reason
     the monolithic child is slower to walk a large database (Fig. 3). *)

let ufork =
  {
    label = "uFork (Unikraft+CHERI, bhyve)";
    syscall = 200L; (* sealed-capability entry, no trap *)
    context_switch = 2600L;
    address_space_switch = 0L; (* single address space *)
    page_fault = 400L; (* same-EL, exception-light handling *)
    soft_fault = 0L; (* PTEs are copied eagerly at fork *)
    fork_fixed = 100_000L;
    thread_create = 30_000L;
    exit_fixed = 4_000L;
    pte_copy = 18L;
    tlb_ipi = 1_500L;
    pte_protect = 12L;
    page_alloc = 150L;
    page_copy = 1_100L;
    granule_scan = 1L;
    cap_relocate = 40L;
    domain_create = 0L;
    copy_per_byte = 1.0;
    toctou_per_byte = 0.25;
    file_op = 6_000L;
    pipe_op = 150L;
  }

let cheribsd =
  {
    label = "CheriBSD 23.11 (pure-cap, bare metal)";
    syscall = 750L; (* trap entry/exit + syscall dispatch *)
    context_switch = 2600L;
    address_space_switch = 900L; (* ttbr switch + TLB maintenance *)
    page_fault = 1_000L;
    soft_fault = 1_000L;
    fork_fixed = 440_000L; (* proc + vmspace + fd + sigacts duplication *)
    thread_create = 35_000L;
    exit_fixed = 12_000L;
    pte_copy = 150L;
    tlb_ipi = 2_000L;
    pte_protect = 90L;
    page_alloc = 150L;
    page_copy = 1_100L;
    granule_scan = 1L; (* tag sweep during page copy (revocation-style) *)
    cap_relocate = 0L; (* no relocation: child VA layout is identical *)
    domain_create = 0L;
    copy_per_byte = 1.55; (* double copy via the page cache *)
    toctou_per_byte = 0.25;
    file_op = 9_000L;
    pipe_op = 220L;
  }

let nephele =
  {
    label = "Nephele (Xen VM cloning, x86-64)";
    syscall = 200L;
    context_switch = 2600L;
    address_space_switch = 0L;
    page_fault = 400L;
    soft_fault = 0L;
    fork_fixed = 120_000L;
    thread_create = 30_000L;
    exit_fixed = 50_000L;
    pte_copy = 60L; (* grant-table remapping via the hypervisor *)
    tlb_ipi = 1_800L;
    pte_protect = 60L;
    page_alloc = 150L;
    page_copy = 1_100L;
    granule_scan = 0L;
    cap_relocate = 0L;
    domain_create = 26_250_000L; (* new Xen domain: ~10.5 ms *)
    copy_per_byte = 0.8;
    toctou_per_byte = 0.0;
    file_op = 6_000L;
    pipe_op = 150L;
  }

let linux_ref =
  {
    label = "Linux aarch64 (reference)";
    syscall = 600L;
    context_switch = 2000L;
    address_space_switch = 800L;
    page_fault = 800L;
    soft_fault = 800L;
    fork_fixed = 220_000L;
    thread_create = 25_000L;
    exit_fixed = 8_000L;
    pte_copy = 80L;
    tlb_ipi = 1_600L;
    pte_protect = 60L;
    page_alloc = 150L;
    page_copy = 1_100L;
    granule_scan = 0L;
    cap_relocate = 0L;
    domain_create = 0L;
    copy_per_byte = 1.0;
    toctou_per_byte = 0.0;
    file_op = 7_000L;
    pipe_op = 180L;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s:@,\
     syscall=%Ld ctx=%Ld as_switch=%Ld fault=%Ld soft=%Ld@,\
     fork=%Ld thread=%Ld exit=%Ld@,\
     pte_copy=%Ld pte_prot=%Ld tlb_ipi=%Ld page_alloc=%Ld page_copy=%Ld@,\
     granule=%Ld reloc=%Ld domain=%Ld@,\
     copy/B=%.2f toctou/B=%.2f file_op=%Ld pipe_op=%Ld@]"
    t.label t.syscall t.context_switch t.address_space_switch t.page_fault
    t.soft_fault t.fork_fixed t.thread_create t.exit_fixed t.pte_copy
    t.pte_protect t.tlb_ipi t.page_alloc t.page_copy t.granule_scan
    t.cap_relocate
    t.domain_create t.copy_per_byte t.toctou_per_byte t.file_op t.pipe_op

let bytes_cost per_byte n = Int64.of_float ((per_byte *. float_of_int n) +. 0.5)
