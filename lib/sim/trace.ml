type record = {
  t : int64;
  core : int;
  tid : int;
  name : string;
  pid : int;
  event : Event.t;
  cycles : int64;
}

(* Per-key aggregate: enough state to re-derive the key's cycle total from
   an arbitrary preset at audit time. [rep] is one representative event;
   [fixed] stays true only while every emission under the key has agreed
   with [rep]'s linear unit, so [cycles = unit rep * charged_units]. *)
type entry = {
  mutable units : int;
  mutable charged_units : int;
  mutable cycles : int64;
  mutable rep : Event.t option;
  mutable fixed : bool;
}

(* Per-path span aggregate. [self_cycles] accumulates at emission time
   (so the audit invariant holds even while instances are still open);
   [total_cycles]/[closed] only count completed instances. *)
type span_agg = {
  mutable self_cycles : int64;
  mutable span_total : int64;
  mutable closed : int;
}

(* One open span instance on some thread's stack. [path] is
   outermost-first and ends with this span's own name; [agg] caches the
   per-path aggregate so charging on the hot emit path is one mutable
   add, not a hash lookup. *)
type frame = {
  path : string list;
  agg : span_agg;
  parent : frame option;
  mutable self : int64;
  mutable child_total : int64;
}

type span_total = {
  span_path : string list;
  span_self : int64;
  span_cycles : int64;
  span_count : int;
}

type t = {
  engine : Engine.t;
  costs : Costs.t;
  meter : Meter.t;
  entries : (string, entry) Hashtbl.t;
  mutable total_cycles : int64;
  ring : record option array;
  mutable ring_start : int;
  mutable ring_len : int;
  mutable dropped : int;
  mutable recording : bool;
  spans : (string list, span_agg) Hashtbl.t;
  stacks : (int, frame) Hashtbl.t;
  hists : (string, Histogram.t) Hashtbl.t;
  mutable sampler : (unit -> (string * int) list) option;
  mutable sample_interval : int64;
  mutable next_sample : int64;
  mutable samples_rev : (int64 * (string * int) list) list;
  mutable in_sampler : bool;
}

let default_ring_capacity = 65536

let create ~engine ~costs ?(ring_capacity = default_ring_capacity) () =
  {
    engine;
    costs;
    meter = Meter.create ();
    entries = Hashtbl.create 64;
    total_cycles = 0L;
    ring = Array.make (max 1 ring_capacity) None;
    ring_start = 0;
    ring_len = 0;
    dropped = 0;
    recording = false;
    spans = Hashtbl.create 64;
    stacks = Hashtbl.create 16;
    hists = Hashtbl.create 16;
    sampler = None;
    sample_interval = 0L;
    next_sample = 0L;
    samples_rev = [];
    in_sampler = false;
  }

let engine t = t.engine
let costs t = t.costs
let meter t = t.meter
let total_charged t = t.total_cycles
let set_recording t on = t.recording <- on
let recording t = t.recording
let dropped t = t.dropped

let entry t key =
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
      let e =
        { units = 0; charged_units = 0; cycles = 0L; rep = None; fixed = true }
      in
      Hashtbl.add t.entries key e;
      e

let push t r =
  let cap = Array.length t.ring in
  if t.ring_len < cap then begin
    t.ring.((t.ring_start + t.ring_len) mod cap) <- Some r;
    t.ring_len <- t.ring_len + 1
  end
  else begin
    t.ring.(t.ring_start) <- Some r;
    t.ring_start <- (t.ring_start + 1) mod cap;
    t.dropped <- t.dropped + 1
  end

let current_tid () =
  match Engine.current_tid () with
  | tid -> tid
  | exception Effect.Unhandled _ -> -1

(* {2 Spans} *)

let unattributed = [ "(unattributed)" ]

let span_agg t path =
  match Hashtbl.find_opt t.spans path with
  | Some a -> a
  | None ->
      let a = { self_cycles = 0L; span_total = 0L; closed = 0 } in
      Hashtbl.add t.spans path a;
      a

let hist_for t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      let h = Histogram.create () in
      Hashtbl.add t.hists name h;
      h

let with_span t ~name f =
  let tid = current_tid () in
  let parent = Hashtbl.find_opt t.stacks tid in
  let path =
    match parent with Some p -> p.path @ [ name ] | None -> [ name ]
  in
  let frame =
    { path; agg = span_agg t path; parent; self = 0L; child_total = 0L }
  in
  Hashtbl.replace t.stacks tid frame;
  Fun.protect
    ~finally:(fun () ->
      (match parent with
      | Some p -> Hashtbl.replace t.stacks tid p
      | None -> Hashtbl.remove t.stacks tid);
      let total = Int64.add frame.self frame.child_total in
      (match parent with
      | Some p -> p.child_total <- Int64.add p.child_total total
      | None -> ());
      frame.agg.span_total <- Int64.add frame.agg.span_total total;
      frame.agg.closed <- frame.agg.closed + 1;
      Histogram.record (hist_for t name) total)
    f

(* Attribute charged cycles to the innermost open span on this thread;
   cycles charged with no span open land in the "(unattributed)" bucket
   so the audit identity (sum of self = total charged) is total. *)
let attribute t tid cost =
  match Hashtbl.find_opt t.stacks tid with
  | Some f ->
      f.self <- Int64.add f.self cost;
      f.agg.self_cycles <- Int64.add f.agg.self_cycles cost
  | None ->
      let a = span_agg t unattributed in
      a.self_cycles <- Int64.add a.self_cycles cost

(* {2 Virtual-time sampling}

   Piggybacked on [emit]: a dedicated sampler green thread would keep
   the engine from ever going quiescent, so instead the first emission
   at-or-after each interval boundary snapshots the gauges. At most one
   sample per emission; the boundary then skips past any gap so idle
   stretches don't replay missed ticks. *)

let maybe_sample t =
  match t.sampler with
  | Some read when not t.in_sampler ->
      let now = Engine.now t.engine in
      if Int64.compare now t.next_sample >= 0 then begin
        t.in_sampler <- true;
        Fun.protect
          ~finally:(fun () -> t.in_sampler <- false)
          (fun () -> t.samples_rev <- (now, read ()) :: t.samples_rev);
        let rec bump next =
          if Int64.compare next now <= 0 then
            bump (Int64.add next t.sample_interval)
          else next
        in
        t.next_sample <- bump t.next_sample
      end
  | _ -> ()

let set_sampler t ~interval read =
  if Int64.compare interval 0L <= 0 then
    invalid_arg "Trace.set_sampler: interval must be positive";
  t.sampler <- Some read;
  t.sample_interval <- interval;
  t.next_sample <- Int64.add (Engine.now t.engine) interval

let emit t ?(pid = -1) event =
  maybe_sample t;
  let key = Event.to_key event in
  let n = Event.count event in
  let cost = Event.cost ~costs:t.costs event in
  Meter.add t.meter key n;
  (match event with
  | Event.Syscall _ -> Meter.incr t.meter "syscall"
  | _ -> ());
  (* Outside an engine thread (boot, direct kernel poking in unit tests)
     there is no schedulable context to charge, mirroring the old
     boot-time charge path: count the event, skip the cycles. *)
  let tid = current_tid () in
  let charged = tid >= 0 && cost > 0L in
  let e = entry t key in
  e.units <- e.units + n;
  (match (Event.linear_unit ~costs:t.costs event, e.rep) with
  | None, _ -> e.fixed <- false
  | Some _, None -> e.rep <- Some event
  | Some u, Some rep ->
      if Event.linear_unit ~costs:t.costs rep <> Some u then e.fixed <- false);
  if charged then begin
    e.charged_units <- e.charged_units + n;
    e.cycles <- Int64.add e.cycles cost;
    t.total_cycles <- Int64.add t.total_cycles cost;
    attribute t tid cost
  end;
  if t.recording then begin
    let core =
      match Engine.current_core () with
      | c -> c
      | exception Effect.Unhandled _ -> -1
    in
    let name =
      match Engine.current_name () with
      | n -> n
      | exception Effect.Unhandled _ -> ""
    in
    push t
      {
        t = Engine.now t.engine;
        core;
        tid;
        name;
        pid;
        event;
        cycles = (if charged then cost else 0L);
      }
  end;
  (* Last, so the record and the aggregates describe the state at emission
     time even if a [~until] deadline truncates the advance. *)
  if charged then Engine.advance cost

let gauge t key v =
  (* Gauges are shared scalar state (e.g. last-fork latency read by the
     stats dump): publish the write so the race detector can order it. *)
  let module Hb = Ufork_util.Hb in
  if Hb.on () then
    Hb.emit (Hb.Write { tid = Hb.tid (); loc = Hb.Gauge key; site = "Trace.gauge" });
  Meter.set t.meter key v

let last_fork_latency_key = "gauge.last_fork_latency"
let frames_in_use_key = "frames_in_use"
let cow_pending_pages_key = "cow_pending_pages"
let rss_bytes_key ~image ~pid = Printf.sprintf "rss_bytes.%s.%d" image pid

let last_fork_latency t =
  Int64.of_int (Meter.get t.meter last_fork_latency_key)

let records t =
  let cap = Array.length t.ring in
  List.init t.ring_len (fun i ->
      match t.ring.((t.ring_start + i) mod cap) with
      | Some r -> r
      | None -> assert false)

let reset t =
  Meter.reset t.meter;
  (* Resetting every entry commutes: order-independent. *)
  (Hashtbl.iter
     (fun _ e ->
       e.units <- 0;
       e.charged_units <- 0;
       e.cycles <- 0L;
       e.rep <- None;
       e.fixed <- true)
     t.entries [@ufork.order_independent]);
  t.total_cycles <- 0L;
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.ring_start <- 0;
  t.ring_len <- 0;
  t.dropped <- 0;
  Hashtbl.reset t.spans;
  Hashtbl.reset t.stacks;
  Hashtbl.reset t.hists;
  t.samples_rev <- [];
  if t.sampler <> None then
    t.next_sample <- Int64.add (Engine.now t.engine) t.sample_interval

let record_to_json r =
  Printf.sprintf
    "{\"t\":%Ld,\"core\":%d,\"tid\":%d,\"name\":\"%s\",\"pid\":%d,\"event\":%s,\"cycles\":%Ld}"
    r.t r.core r.tid (Event.json_escape r.name) r.pid (Event.to_json r.event)
    r.cycles

let to_jsonl_string t =
  let b = Buffer.create 4096 in
  (* Header line first: consumers that count lines or look for drops see
     the ring's state without scanning the records. *)
  Buffer.add_string b
    (Printf.sprintf "{\"header\":{\"records\":%d,\"dropped\":%d}}\n" t.ring_len
       t.dropped);
  List.iter
    (fun r ->
      Buffer.add_string b (record_to_json r);
      Buffer.add_char b '\n')
    (records t);
  Buffer.contents b

let chrome_of_records recs =
  let us cycles = Ufork_util.Units.us_of_cycles cycles in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ','
  in
  (* Lanes are simulated threads; name each lane once via the Chrome
     "thread_name" metadata event so the viewer shows e.g. "redis.1"
     instead of a bare tid. *)
  let named = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let pid = if r.pid >= 0 then r.pid else 0 in
      let tid = if r.tid >= 0 then r.tid else 0 in
      if r.name <> "" && not (Hashtbl.mem named (pid, tid)) then begin
        Hashtbl.add named (pid, tid) ();
        sep ();
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
             pid tid
             (Event.json_escape r.name))
      end;
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"n\":%d,\"cycles\":%Ld,\"core\":%d,\"sim_pid\":%d,\"sim_tid\":%d}}"
           (Event.json_escape (Event.to_key r.event))
           (us r.t) (us r.cycles) pid tid (Event.count r.event) r.cycles
           r.core r.pid r.tid))
    recs;
  Buffer.add_string b "],\"displayTimeUnit\":\"ns\"}";
  Buffer.contents b

(* {2 Profiling exports} *)

let span_totals t =
  List.sort
    (fun a b -> compare a.span_path b.span_path)
    (Hashtbl.fold
       (fun path a acc ->
         {
           span_path = path;
           span_self = a.self_cycles;
           span_cycles = a.span_total;
           span_count = a.closed;
         }
         :: acc)
       t.spans [])

let folded_stacks t =
  let b = Buffer.create 1024 in
  List.iter
    (fun st ->
      if Int64.compare st.span_self 0L > 0 then
        Buffer.add_string b
          (Printf.sprintf "%s %Ld\n"
             (String.concat ";" st.span_path)
             st.span_self))
    (span_totals t);
  Buffer.contents b

let span_histograms t =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.hists [])

let span_histogram t name = Hashtbl.find_opt t.hists name
let samples t = List.rev t.samples_rev

let samples_csv t =
  let samples = samples t in
  let keys =
    List.sort_uniq compare
      (List.concat_map (fun (_, gs) -> List.map fst gs) samples)
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b (String.concat "," ("cycles" :: keys));
  Buffer.add_char b '\n';
  List.iter
    (fun (cycles, gs) ->
      Buffer.add_string b (Int64.to_string cycles);
      List.iter
        (fun k ->
          let v = match List.assoc_opt k gs with Some v -> v | None -> 0 in
          Buffer.add_string b (Printf.sprintf ",%d" v))
        keys;
      Buffer.add_char b '\n')
    samples;
  Buffer.contents b

let to_prometheus_string t =
  let b = Buffer.create 4096 in
  let esc = Event.json_escape in
  Buffer.add_string b "# TYPE ufork_cycles_total counter\n";
  Buffer.add_string b (Printf.sprintf "ufork_cycles_total %Ld\n" t.total_cycles);
  Buffer.add_string b "# TYPE ufork_trace_dropped_records gauge\n";
  Buffer.add_string b
    (Printf.sprintf "ufork_trace_dropped_records %d\n" t.dropped);
  Buffer.add_string b "# TYPE ufork_meter counter\n";
  List.iter
    (fun (k, v) ->
      Buffer.add_string b
        (Printf.sprintf "ufork_meter{key=\"%s\"} %d\n" (esc k) v))
    (Meter.to_list t.meter);
  Buffer.add_string b "# TYPE ufork_span_self_cycles counter\n";
  List.iter
    (fun st ->
      Buffer.add_string b
        (Printf.sprintf "ufork_span_self_cycles{span=\"%s\"} %Ld\n"
           (esc (String.concat ";" st.span_path))
           st.span_self))
    (span_totals t);
  Buffer.add_string b "# TYPE ufork_span_cycles histogram\n";
  List.iter
    (fun (name, h) ->
      let cum = ref 0 in
      List.iter
        (fun (_, hi, n) ->
          cum := !cum + n;
          Buffer.add_string b
            (Printf.sprintf "ufork_span_cycles_bucket{span=\"%s\",le=\"%Ld\"} %d\n"
               (esc name) hi !cum))
        (Histogram.to_buckets h);
      Buffer.add_string b
        (Printf.sprintf "ufork_span_cycles_bucket{span=\"%s\",le=\"+Inf\"} %d\n"
           (esc name) (Histogram.count h));
      Buffer.add_string b
        (Printf.sprintf "ufork_span_cycles_sum{span=\"%s\"} %Ld\n" (esc name)
           (Histogram.sum h));
      Buffer.add_string b
        (Printf.sprintf "ufork_span_cycles_count{span=\"%s\"} %d\n" (esc name)
           (Histogram.count h)))
    (span_histograms t);
  Buffer.contents b

exception Audit_failure of string

let audit t ~costs ~elapsed =
  if elapsed <> t.total_cycles then
    raise
      (Audit_failure
         (Printf.sprintf
            "engine advanced %Ld cycles but the trace charged %Ld (delta %Ld)"
            elapsed t.total_cycles
            (Int64.sub elapsed t.total_cycles)));
  (* Span attribution must be a partition of the charged cycles: every
     charged cycle lands in exactly one span's self bucket (or the
     "(unattributed)" bucket), so the sums must agree exactly. *)
  let span_self_sum =
    (* Commutative sum: traversal order cannot change it. *)
    (Hashtbl.fold
       (fun _ a acc -> Int64.add acc a.self_cycles)
       t.spans 0L [@ufork.order_independent])
  in
  if span_self_sum <> t.total_cycles then
    raise
      (Audit_failure
         (Printf.sprintf
            "span self-cycles sum to %Ld but the trace charged %Ld (delta %Ld)"
            span_self_sum t.total_cycles
            (Int64.sub t.total_cycles span_self_sum)));
  (* Pass/fail per entry is independent of the others; which failing key
     gets reported first is diagnostic detail only. *)
  (Hashtbl.iter
     (fun key e ->
       match e.rep with
       | Some rep when e.fixed -> (
           match Event.linear_unit ~costs rep with
           | None -> ()
           | Some unit ->
               let expected = Int64.mul unit (Int64.of_int e.charged_units) in
               if e.cycles <> expected then
                 raise
                   (Audit_failure
                      (Printf.sprintf
                         "key %S charged %Ld cycles; preset says %d units x \
                          %Ld = %Ld"
                         key e.cycles e.charged_units unit expected)))
       | _ -> ())
     t.entries [@ufork.order_independent])
