type record = {
  t : int64;
  core : int;
  tid : int;
  name : string;
  pid : int;
  event : Event.t;
  cycles : int64;
}

(* Per-key aggregate: enough state to re-derive the key's cycle total from
   an arbitrary preset at audit time. [rep] is one representative event;
   [fixed] stays true only while every emission under the key has agreed
   with [rep]'s linear unit, so [cycles = unit rep * charged_units].
   [rep_unit] caches [Event.linear_unit rep] under the trace's own preset
   so the agreement check on the hot path is an option compare, not a
   recomputation. *)
(* Cycle accumulators here are native [int], not [int64]: a mutable
   boxed-int64 record field allocates a fresh box on every store, and
   these fields are written once or more per emitted event. 62 bits of
   cycles is ~146 years of simulated 1 GHz time, far beyond any run;
   the public API converts back to [int64] at the edges. *)
type entry = {
  mutable units : int;
  mutable charged_units : int;
  mutable cycles : int;
  mutable rep : Event.t option;
  mutable rep_unit : int64 option;
  mutable fixed : bool;
}

let fresh_entry () =
  {
    units = 0;
    charged_units = 0;
    cycles = 0;
    rep = None;
    rep_unit = None;
    fixed = true;
  }

(* Per-path span aggregate. [self_cycles] accumulates at emission time
   (so the audit invariant holds even while instances are still open);
   [span_total]/[closed] only count completed instances. *)
type span_agg = {
  mutable self_cycles : int;
  mutable span_total : int;
  mutable closed : int;
}

(* One open span instance on some thread's stack. [path_id] is the
   interned id of the outermost-first stack path ending in this span's
   own name; [agg] caches the per-path aggregate so charging on the hot
   emit path is one mutable add, not a hash lookup. *)
type frame = {
  path_id : int;
  agg : span_agg;
  parent : frame option;
  mutable self : int;
  mutable child_total : int;
}

type span_total = {
  span_path : string list;
  span_self : int64;
  span_cycles : int64;
  span_count : int;
}

(* The accounting state is flat and int-indexed so the non-recording
   emit path is array stores plus one [Engine.advance]:

   - counter keys are interned into the meter once (first touch) and
     cached per [Event.id] in [key_ids] (per syscall name in
     [syscall_kids]) — no string building or hashing per event;
   - per-key audit entries live in [entries], indexed by the same meter
     key id;
   - the record ring is columnar (one preallocated array per field), so
     recording appends field stores instead of allocating a record and
     an option box per event;
   - span stack paths are interned: [paths] maps (parent path id, name)
     to a dense id with [path_names]/[path_parents] reconstructing the
     [string list] for exports, and [path_aggs.(id)] holding the
     aggregate. *)
type t = {
  engine : Engine.t;
  costs : Costs.t;
  meter : Meter.t;
  key_ids : int array; (* Event.id -> meter key id, -1 until first touch *)
  syscall_kids : (string, int) Hashtbl.t; (* syscall name -> meter key id *)
  (* Last syscall name resolved, compared physically: emission sites pass
     literal names, so a run of same-name syscalls skips the table. *)
  mutable last_sys_name : string;
  mutable last_sys_kid : int;
  mutable syscall_agg_kid : int; (* the aggregate "syscall" key id, or -1 *)
  mutable entries : entry array; (* meter key id -> audit entry *)
  mutable total_cycles : int;
  mutable emits : int;
  (* Record ring, columnar. Columns are empty until recording is first
     enabled: machines are booted by the hundred on the non-recorded
     bench path, and eagerly allocating seven capacity-sized columns per
     boot would dominate their setup cost. *)
  ring_capacity : int;
  mutable ring_t : int64 array;
  mutable ring_core : int array;
  mutable ring_tid : int array;
  mutable ring_pid : int array;
  mutable ring_cycles : int64 array;
  mutable ring_event : Event.t array;
  mutable ring_name : string array;
  mutable ring_start : int;
  mutable ring_len : int;
  mutable dropped : int;
  mutable recording : bool;
  (* Spans: interned stack paths. Children are per-parent string tables
     (plus [roots] for top-level spans) rather than one (parent, name)
     table, so a lookup hashes a short string instead of allocating a
     tuple key per [with_span]. *)
  roots : (string, int) Hashtbl.t; (* top-level name -> id *)
  mutable path_names : string array;
  mutable path_parents : int array;
  mutable path_aggs : span_agg array;
  mutable path_children : (string, int) Hashtbl.t array; (* id -> children *)
  mutable path_hists : Histogram.t array; (* id -> name's histogram, lazy *)
  mutable n_paths : int;
  mutable unattr_id : int; (* "(unattributed)" path id, or -1 *)
  (* Last (parent, name) interned, name compared physically: span names
     are literals, so a tight span loop resolves its path id branch-only. *)
  mutable memo_parent : int;
  mutable memo_name : string;
  mutable memo_path : int; (* -1 until the first hit *)
  stacks : (int, frame) Hashtbl.t;
  (* Single-slot stack-top cache. Invariant: when [cache_tid <> min_int],
     [cache_top] is the truth for that tid and the [stacks] entry may be
     stale; every access through another tid writes the slot back first.
     Context switches are orders of magnitude rarer than emissions, so
     the per-emit attribution walk almost never touches the table. *)
  mutable cache_tid : int;
  mutable cache_top : frame option;
  hists : (string, Histogram.t) Hashtbl.t;
  mutable sampler : (unit -> (string * int) list) option;
  mutable sample_interval : int64;
  mutable next_sample : int64;
  mutable samples_rev : (int64 * (string * int) list) list;
  mutable in_sampler : bool;
}

let default_ring_capacity = 65536
let ring_dummy_event = Event.Context_switch
let dummy_agg = { self_cycles = 0; span_total = 0; closed = 0 }

(* Slot fillers for the per-path arrays. Never written through: a slot is
   only read once its id has been interned, and interning installs fresh
   structures first — so sharing them across traces (hence domains) is
   safe. *)
let dummy_children : (string, int) Hashtbl.t = Hashtbl.create 1
let dummy_hist = Histogram.create ()

let create ~engine ~costs ?(ring_capacity = default_ring_capacity) () =
  let cap = max 1 ring_capacity in
  {
    engine;
    costs;
    meter = Meter.create ();
    key_ids = Array.make Event.id_count (-1);
    syscall_kids = Hashtbl.create 16;
    last_sys_name = "";
    last_sys_kid = -1;
    syscall_agg_kid = -1;
    entries = Array.init 64 (fun _ -> fresh_entry ());
    total_cycles = 0;
    emits = 0;
    ring_capacity = cap;
    ring_t = [||];
    ring_core = [||];
    ring_tid = [||];
    ring_pid = [||];
    ring_cycles = [||];
    ring_event = [||];
    ring_name = [||];
    ring_start = 0;
    ring_len = 0;
    dropped = 0;
    recording = false;
    roots = Hashtbl.create 64;
    path_names = Array.make 64 "";
    path_parents = Array.make 64 (-1);
    path_aggs = Array.make 64 dummy_agg;
    path_children = Array.make 64 dummy_children;
    path_hists = Array.make 64 dummy_hist;
    n_paths = 0;
    unattr_id = -1;
    memo_parent = -1;
    memo_name = "";
    memo_path = -1;
    stacks = Hashtbl.create 16;
    cache_tid = min_int;
    cache_top = None;
    hists = Hashtbl.create 16;
    sampler = None;
    sample_interval = 0L;
    next_sample = 0L;
    samples_rev = [];
    in_sampler = false;
  }

let engine t = t.engine
let costs t = t.costs
let meter t = t.meter
let total_charged t = Int64.of_int t.total_cycles
let emits t = t.emits

let ensure_ring t =
  if Array.length t.ring_event = 0 then begin
    let cap = t.ring_capacity in
    t.ring_t <- Array.make cap 0L;
    t.ring_core <- Array.make cap (-1);
    t.ring_tid <- Array.make cap (-1);
    t.ring_pid <- Array.make cap (-1);
    t.ring_cycles <- Array.make cap 0L;
    t.ring_event <- Array.make cap ring_dummy_event;
    t.ring_name <- Array.make cap ""
  end

let set_recording t on =
  if on then ensure_ring t;
  t.recording <- on
let recording t = t.recording
let dropped t = t.dropped

(* The meter key id for an event, interning the key string on the first
   touch of each constructor (each syscall name) only — the golden
   scenarios pin that untouched keys stay out of {!Meter.to_list}. *)
let kid_of t event =
  match event with
  | Event.Syscall { name; _ } ->
      if name == t.last_sys_name then t.last_sys_kid
      else begin
        let k =
          match Hashtbl.find_opt t.syscall_kids name with
          | Some k -> k
          | None ->
              let k = Meter.intern t.meter ("syscall." ^ name) in
              Hashtbl.replace t.syscall_kids name k;
              k
        in
        t.last_sys_name <- name;
        t.last_sys_kid <- k;
        k
      end
  | _ ->
      let eid = Event.id event in
      let k = t.key_ids.(eid) in
      if k >= 0 then k
      else begin
        let k = Meter.intern t.meter (Event.to_key event) in
        t.key_ids.(eid) <- k;
        k
      end

let syscall_agg_kid t =
  if t.syscall_agg_kid >= 0 then t.syscall_agg_kid
  else begin
    let k = Meter.intern t.meter "syscall" in
    t.syscall_agg_kid <- k;
    k
  end

let acc_entry t kid =
  if kid >= Array.length t.entries then begin
    let old = t.entries in
    let n = Array.length old in
    let cap = max (2 * n) (kid + 1) in
    t.entries <-
      Array.init cap (fun i -> if i < n then old.(i) else fresh_entry ())
  end;
  t.entries.(kid)

(* {2 Spans} *)

let unattributed_name = "(unattributed)"

let grow_paths t =
  let n = Array.length t.path_names in
  let cap = 2 * n in
  let names = Array.make cap "" in
  Array.blit t.path_names 0 names 0 n;
  t.path_names <- names;
  let parents = Array.make cap (-1) in
  Array.blit t.path_parents 0 parents 0 n;
  t.path_parents <- parents;
  let aggs = Array.make cap dummy_agg in
  Array.blit t.path_aggs 0 aggs 0 n;
  t.path_aggs <- aggs;
  let children = Array.make cap dummy_children in
  Array.blit t.path_children 0 children 0 n;
  t.path_children <- children;
  let hists = Array.make cap dummy_hist in
  Array.blit t.path_hists 0 hists 0 n;
  t.path_hists <- hists

let intern_path t ~parent name =
  let tbl = if parent < 0 then t.roots else t.path_children.(parent) in
  match Hashtbl.find_opt tbl name with
  | Some id -> id
  | None ->
      let id = t.n_paths in
      if id = Array.length t.path_names then grow_paths t;
      t.path_names.(id) <- name;
      t.path_parents.(id) <- parent;
      t.path_aggs.(id) <- { self_cycles = 0; span_total = 0; closed = 0 };
      t.path_children.(id) <- Hashtbl.create 4;
      t.path_hists.(id) <- dummy_hist;
      Hashtbl.replace tbl name id;
      t.n_paths <- id + 1;
      id

(* Reconstruct the outermost-first [string list] path for exports. *)
let path_list t id =
  let rec go id acc =
    if id < 0 then acc else go t.path_parents.(id) (t.path_names.(id) :: acc)
  in
  go id []

let hist_for t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      let h = Histogram.create () in
      Hashtbl.add t.hists name h;
      h

(* Read the innermost open frame for [tid] through the single-slot cache,
   writing the previous tid's slot back to the table first. *)
let stack_top t tid =
  if t.cache_tid = tid then t.cache_top
  else begin
    if t.cache_tid <> min_int then begin
      match t.cache_top with
      | Some f -> Hashtbl.replace t.stacks t.cache_tid f
      | None -> Hashtbl.remove t.stacks t.cache_tid
    end;
    let top = Hashtbl.find_opt t.stacks tid in
    t.cache_tid <- tid;
    t.cache_top <- top;
    top
  end

(* Closing pops [frame] off [tid]'s stack and folds its totals into the
   parent and the per-path aggregate. The name's histogram is resolved
   lazily on the first close of each path (not at interning: a path can
   be interned by a span that never closes — or by the unattributed
   bucket — and must not surface an empty histogram in exports). *)
let close_frame t tid frame =
  if t.cache_tid <> tid then ignore (stack_top t tid);
  t.cache_top <- frame.parent;
  let total = frame.self + frame.child_total in
  (match frame.parent with
  | Some p -> p.child_total <- p.child_total + total
  | None -> ());
  frame.agg.span_total <- frame.agg.span_total + total;
  frame.agg.closed <- frame.agg.closed + 1;
  let h = t.path_hists.(frame.path_id) in
  let h =
    if h == dummy_hist then begin
      let h = hist_for t t.path_names.(frame.path_id) in
      t.path_hists.(frame.path_id) <- h;
      h
    end
    else h
  in
  Histogram.record_int h total

let with_span t ~name f =
  let tid = Engine.running_tid t.engine in
  let parent = stack_top t tid in
  let parent_id = match parent with Some p -> p.path_id | None -> -1 in
  let path_id =
    (* Physical compare on [name]: span names are literals, so a tight
       span loop (e.g. user.compute per slice) resolves branch-only. *)
    if t.memo_path >= 0 && t.memo_parent = parent_id && t.memo_name == name
    then t.memo_path
    else begin
      let id = intern_path t ~parent:parent_id name in
      t.memo_parent <- parent_id;
      t.memo_name <- name;
      t.memo_path <- id;
      id
    end
  in
  let frame =
    { path_id; agg = t.path_aggs.(path_id); parent; self = 0; child_total = 0 }
  in
  t.cache_top <- Some frame;
  (* Span boundaries feed the causal analyzer's per-thread span-path
     timeline. Free when the bus is disarmed: one bool read. *)
  let module Hb = Ufork_util.Hb in
  if Hb.on () then Hb.emit (Hb.Span_open { tid; name });
  match f () with
  | v ->
      close_frame t tid frame;
      if Hb.on () then Hb.emit (Hb.Span_close { tid; name });
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      close_frame t tid frame;
      if Hb.on () then Hb.emit (Hb.Span_close { tid; name });
      Printexc.raise_with_backtrace e bt

(* Attribute charged cycles to the innermost open span on this thread;
   cycles charged with no span open land in the "(unattributed)" bucket
   so the audit identity (sum of self = total charged) is total. *)
let attribute t tid cost =
  match stack_top t tid with
  | Some f ->
      f.self <- f.self + cost;
      f.agg.self_cycles <- f.agg.self_cycles + cost
  | None ->
      let id =
        if t.unattr_id >= 0 then t.unattr_id
        else begin
          let id = intern_path t ~parent:(-1) unattributed_name in
          t.unattr_id <- id;
          id
        end
      in
      let a = t.path_aggs.(id) in
      a.self_cycles <- a.self_cycles + cost

(* {2 Virtual-time sampling}

   Piggybacked on [emit]: a dedicated sampler green thread would keep
   the engine from ever going quiescent, so instead the first emission
   at-or-after each interval boundary snapshots the gauges. At most one
   sample per emission; the boundary then skips past any gap so idle
   stretches don't replay missed ticks. *)

let maybe_sample t =
  match t.sampler with
  | Some read when not t.in_sampler ->
      let now = Engine.now t.engine in
      if Int64.compare now t.next_sample >= 0 then begin
        t.in_sampler <- true;
        Fun.protect
          ~finally:(fun () -> t.in_sampler <- false)
          (fun () -> t.samples_rev <- (now, read ()) :: t.samples_rev);
        let rec bump next =
          if Int64.compare next now <= 0 then
            bump (Int64.add next t.sample_interval)
          else next
        in
        t.next_sample <- bump t.next_sample
      end
  | _ -> ()

let set_sampler t ~interval read =
  if Int64.compare interval 0L <= 0 then
    invalid_arg "Trace.set_sampler: interval must be positive";
  t.sampler <- Some read;
  t.sample_interval <- interval;
  t.next_sample <- Int64.add (Engine.now t.engine) interval

(* The slow half of [emit]: ring append, only when recording. Columnar
   stores into the preallocated ring — no record or option allocation
   per event; {!records} reconstructs on demand. *)
let record_slow t pid event tid cost charged =
  let cap = Array.length t.ring_event in
  let j =
    if t.ring_len < cap then begin
      let j = t.ring_start + t.ring_len in
      let j = if j >= cap then j - cap else j in
      t.ring_len <- t.ring_len + 1;
      j
    end
    else begin
      let j = t.ring_start in
      t.ring_start <- (if t.ring_start + 1 >= cap then 0 else t.ring_start + 1);
      t.dropped <- t.dropped + 1;
      j
    end
  in
  t.ring_t.(j) <- Engine.now t.engine;
  t.ring_core.(j) <- Engine.running_core t.engine;
  t.ring_tid.(j) <- tid;
  t.ring_name.(j) <- Engine.running_name t.engine;
  t.ring_pid.(j) <- pid;
  t.ring_event.(j) <- event;
  t.ring_cycles.(j) <- (if charged then cost else 0L)

let emit t ?(pid = -1) event =
  if t.sampler != None then maybe_sample t;
  t.emits <- t.emits + 1;
  let kid = kid_of t event in
  let n = Event.count event in
  let cost = Event.cost ~costs:t.costs event in
  Meter.add_id t.meter kid n;
  (match event with
  | Event.Syscall _ -> Meter.incr_id t.meter (syscall_agg_kid t)
  | _ -> ());
  (* Outside an engine thread (boot, direct kernel poking in unit tests)
     there is no schedulable context to charge, mirroring the old
     boot-time charge path: count the event, skip the cycles. *)
  let tid = Engine.running_tid t.engine in
  (* TLB-shootdown batches interrupt remote cores: a causal edge from the
     initiator to every core it IPIs. Published here (not in the kernel)
     so every shootdown flavour reports through one site. *)
  (match event with
  | Event.Tlb_shootdown remotes when Ufork_util.Hb.on () ->
      Ufork_util.Hb.emit (Ufork_util.Hb.Ipi { by = tid; remotes })
  | _ -> ());
  let charged = tid >= 0 && cost > 0L in
  let e = acc_entry t kid in
  e.units <- e.units + n;
  (match Event.linear_unit ~costs:t.costs event with
  | None -> e.fixed <- false
  | Some _ as lu -> (
      match e.rep with
      | None ->
          e.rep <- Some event;
          e.rep_unit <- lu
      | Some _ -> if e.rep_unit <> lu then e.fixed <- false));
  if charged then begin
    let icost = Int64.to_int cost in
    e.charged_units <- e.charged_units + n;
    e.cycles <- e.cycles + icost;
    t.total_cycles <- t.total_cycles + icost;
    attribute t tid icost
  end;
  if t.recording then record_slow t pid event tid cost charged;
  (* Last, so the record and the aggregates describe the state at emission
     time even if a [~until] deadline truncates the advance. The direct
     call passes time without performing the effect when the thread is
     alone and nothing can intervene — the common case on the
     non-recorded hot path. *)
  if charged then
    if not (Engine.advance_direct t.engine cost) then Engine.advance cost

let gauge t key v =
  (* Gauges are shared scalar state (e.g. last-fork latency read by the
     stats dump): publish the write so the race detector can order it. *)
  let module Hb = Ufork_util.Hb in
  if Hb.on () then
    Hb.emit
      (Hb.Write { tid = Hb.tid (); loc = Hb.Gauge key; site = "Trace.gauge" });
  Meter.set t.meter key v

let last_fork_latency_key = "gauge.last_fork_latency"
let frames_in_use_key = "frames_in_use"
let cow_pending_pages_key = "cow_pending_pages"
let rss_bytes_key ~image ~pid = Printf.sprintf "rss_bytes.%s.%d" image pid

let last_fork_latency t =
  Int64.of_int (Meter.get t.meter last_fork_latency_key)

let records t =
  let cap = Array.length t.ring_event in
  List.init t.ring_len (fun i ->
      let j = (t.ring_start + i) mod cap in
      {
        t = t.ring_t.(j);
        core = t.ring_core.(j);
        tid = t.ring_tid.(j);
        name = t.ring_name.(j);
        pid = t.ring_pid.(j);
        event = t.ring_event.(j);
        cycles = t.ring_cycles.(j);
      })

let reset t =
  Meter.reset t.meter;
  Array.iter
    (fun e ->
      e.units <- 0;
      e.charged_units <- 0;
      e.cycles <- 0;
      e.rep <- None;
      e.rep_unit <- None;
      e.fixed <- true)
    t.entries;
  t.total_cycles <- 0;
  (* Release the refs the ring columns hold; the scalar columns can keep
     stale values behind ring_len. *)
  Array.fill t.ring_event 0 (Array.length t.ring_event) ring_dummy_event;
  Array.fill t.ring_name 0 (Array.length t.ring_name) "";
  t.ring_start <- 0;
  t.ring_len <- 0;
  t.dropped <- 0;
  Hashtbl.reset t.roots;
  Array.fill t.path_names 0 t.n_paths "";
  Array.fill t.path_aggs 0 t.n_paths dummy_agg;
  Array.fill t.path_children 0 t.n_paths dummy_children;
  Array.fill t.path_hists 0 t.n_paths dummy_hist;
  t.n_paths <- 0;
  t.unattr_id <- -1;
  t.memo_parent <- -1;
  t.memo_name <- "";
  t.memo_path <- -1;
  Hashtbl.reset t.stacks;
  t.cache_tid <- min_int;
  t.cache_top <- None;
  Hashtbl.reset t.hists;
  t.samples_rev <- [];
  if t.sampler <> None then
    t.next_sample <- Int64.add (Engine.now t.engine) t.sample_interval

let record_to_json r =
  Printf.sprintf
    "{\"t\":%Ld,\"core\":%d,\"tid\":%d,\"name\":\"%s\",\"pid\":%d,\"event\":%s,\"cycles\":%Ld}"
    r.t r.core r.tid (Event.json_escape r.name) r.pid (Event.to_json r.event)
    r.cycles

let to_jsonl_string t =
  let b = Buffer.create 4096 in
  (* Header line first: consumers that count lines or look for drops see
     the ring's state without scanning the records. *)
  Buffer.add_string b
    (Printf.sprintf "{\"header\":{\"records\":%d,\"dropped\":%d}}\n" t.ring_len
       t.dropped);
  List.iter
    (fun r ->
      Buffer.add_string b (record_to_json r);
      Buffer.add_char b '\n')
    (records t);
  Buffer.contents b

let chrome_of_records recs =
  let us cycles = Ufork_util.Units.us_of_cycles cycles in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ','
  in
  (* Lanes are simulated threads; name each lane once via the Chrome
     "thread_name" metadata event so the viewer shows e.g. "redis.1"
     instead of a bare tid. *)
  let named = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let pid = if r.pid >= 0 then r.pid else 0 in
      let tid = if r.tid >= 0 then r.tid else 0 in
      if r.name <> "" && not (Hashtbl.mem named (pid, tid)) then begin
        Hashtbl.add named (pid, tid) ();
        sep ();
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
             pid tid
             (Event.json_escape r.name))
      end;
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"n\":%d,\"cycles\":%Ld,\"core\":%d,\"sim_pid\":%d,\"sim_tid\":%d}}"
           (Event.json_escape (Event.to_key r.event))
           (us r.t) (us r.cycles) pid tid (Event.count r.event) r.cycles
           r.core r.pid r.tid))
    recs;
  Buffer.add_string b "],\"displayTimeUnit\":\"ns\"}";
  Buffer.contents b

(* {2 Profiling exports} *)

let span_totals t =
  List.sort
    (fun a b -> compare a.span_path b.span_path)
    (List.init t.n_paths (fun id ->
         let a = t.path_aggs.(id) in
         {
           span_path = path_list t id;
           span_self = Int64.of_int a.self_cycles;
           span_cycles = Int64.of_int a.span_total;
           span_count = a.closed;
         }))

let folded_stacks t =
  let b = Buffer.create 1024 in
  List.iter
    (fun st ->
      if Int64.compare st.span_self 0L > 0 then
        Buffer.add_string b
          (Printf.sprintf "%s %Ld\n"
             (String.concat ";" st.span_path)
             st.span_self))
    (span_totals t);
  Buffer.contents b

let span_histograms t =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.hists [])

let span_histogram t name = Hashtbl.find_opt t.hists name
let samples t = List.rev t.samples_rev

let samples_csv t =
  let samples = samples t in
  let keys =
    List.sort_uniq compare
      (List.concat_map (fun (_, gs) -> List.map fst gs) samples)
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b (String.concat "," ("cycles" :: keys));
  Buffer.add_char b '\n';
  List.iter
    (fun (cycles, gs) ->
      Buffer.add_string b (Int64.to_string cycles);
      List.iter
        (fun k ->
          let v = match List.assoc_opt k gs with Some v -> v | None -> 0 in
          Buffer.add_string b (Printf.sprintf ",%d" v))
        keys;
      Buffer.add_char b '\n')
    samples;
  Buffer.contents b

let to_prometheus_string t =
  let b = Buffer.create 4096 in
  let esc = Event.json_escape in
  (* Exposition-format discipline: every family gets a # HELP line and a
     # TYPE line immediately before its samples — scrapers (and the unit
     test pinning this grammar) reject bare families. *)
  Buffer.add_string b
    "# HELP ufork_cycles_total Simulated cycles charged through the event \
     bus over the run.\n";
  Buffer.add_string b "# TYPE ufork_cycles_total counter\n";
  Buffer.add_string b
    (Printf.sprintf "ufork_cycles_total %Ld\n" (Int64.of_int t.total_cycles));
  Buffer.add_string b
    "# HELP ufork_trace_dropped_records Mechanism records evicted by ring \
     overflow (nonzero means the recorded stream is truncated).\n";
  Buffer.add_string b "# TYPE ufork_trace_dropped_records gauge\n";
  Buffer.add_string b
    (Printf.sprintf "ufork_trace_dropped_records %d\n" t.dropped);
  Buffer.add_string b
    "# HELP ufork_meter Named mechanism event counts (forks, faults, \
     shootdowns, ...).\n";
  Buffer.add_string b "# TYPE ufork_meter counter\n";
  List.iter
    (fun (k, v) ->
      Buffer.add_string b
        (Printf.sprintf "ufork_meter{key=\"%s\"} %d\n" (esc k) v))
    (Meter.to_list t.meter);
  Buffer.add_string b
    "# HELP ufork_span_self_cycles Cycles charged while a span path was the \
     innermost open span (self time, not inclusive).\n";
  Buffer.add_string b "# TYPE ufork_span_self_cycles counter\n";
  List.iter
    (fun st ->
      Buffer.add_string b
        (Printf.sprintf "ufork_span_self_cycles{span=\"%s\"} %Ld\n"
           (esc (String.concat ";" st.span_path))
           st.span_self))
    (span_totals t);
  Buffer.add_string b
    "# HELP ufork_span_cycles Per-completion inclusive span latency, in \
     cycles, by span name.\n";
  Buffer.add_string b "# TYPE ufork_span_cycles histogram\n";
  List.iter
    (fun (name, h) ->
      let cum = ref 0 in
      List.iter
        (fun (_, hi, n) ->
          cum := !cum + n;
          Buffer.add_string b
            (Printf.sprintf "ufork_span_cycles_bucket{span=\"%s\",le=\"%Ld\"} %d\n"
               (esc name) hi !cum))
        (Histogram.to_buckets h);
      Buffer.add_string b
        (Printf.sprintf "ufork_span_cycles_bucket{span=\"%s\",le=\"+Inf\"} %d\n"
           (esc name) (Histogram.count h));
      Buffer.add_string b
        (Printf.sprintf "ufork_span_cycles_sum{span=\"%s\"} %Ld\n" (esc name)
           (Histogram.sum h));
      Buffer.add_string b
        (Printf.sprintf "ufork_span_cycles_count{span=\"%s\"} %d\n" (esc name)
           (Histogram.count h)))
    (span_histograms t);
  Buffer.contents b

exception Audit_failure of string

let audit t ~costs ~elapsed =
  let total_cycles = Int64.of_int t.total_cycles in
  if elapsed <> total_cycles then
    raise
      (Audit_failure
         (Printf.sprintf
            "engine advanced %Ld cycles but the trace charged %Ld (delta %Ld)"
            elapsed total_cycles
            (Int64.sub elapsed total_cycles)));
  (* Span attribution must be a partition of the charged cycles: every
     charged cycle lands in exactly one span's self bucket (or the
     "(unattributed)" bucket), so the sums must agree exactly. *)
  let span_self_sum = ref 0 in
  for id = 0 to t.n_paths - 1 do
    span_self_sum := !span_self_sum + t.path_aggs.(id).self_cycles
  done;
  let span_self_sum = Int64.of_int !span_self_sum in
  if span_self_sum <> total_cycles then
    raise
      (Audit_failure
         (Printf.sprintf
            "span self-cycles sum to %Ld but the trace charged %Ld (delta %Ld)"
            span_self_sum total_cycles
            (Int64.sub total_cycles span_self_sum)));
  (* Pass/fail per entry is independent of the others; which failing key
     gets reported first is diagnostic detail only. *)
  Array.iteri
    (fun kid e ->
      match e.rep with
      | Some rep when e.fixed -> (
          match Event.linear_unit ~costs rep with
          | None -> ()
          | Some unit ->
              let expected = Int64.mul unit (Int64.of_int e.charged_units) in
              if Int64.of_int e.cycles <> expected then
                raise
                  (Audit_failure
                     (Printf.sprintf
                        "key %S charged %Ld cycles; preset says %d units x \
                         %Ld = %Ld"
                        (Meter.name t.meter kid)
                        (Int64.of_int e.cycles)
                        e.charged_units unit expected)))
      | _ -> ())
    t.entries
