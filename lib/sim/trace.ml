type record = {
  t : int64;
  core : int;
  tid : int;
  name : string;
  pid : int;
  event : Event.t;
  cycles : int64;
}

(* Per-key aggregate: enough state to re-derive the key's cycle total from
   an arbitrary preset at audit time. [rep] is one representative event;
   [fixed] stays true only while every emission under the key has agreed
   with [rep]'s linear unit, so [cycles = unit rep * charged_units]. *)
type entry = {
  mutable units : int;
  mutable charged_units : int;
  mutable cycles : int64;
  mutable rep : Event.t option;
  mutable fixed : bool;
}

type t = {
  engine : Engine.t;
  costs : Costs.t;
  meter : Meter.t;
  entries : (string, entry) Hashtbl.t;
  mutable total_cycles : int64;
  ring : record option array;
  mutable ring_start : int;
  mutable ring_len : int;
  mutable dropped : int;
  mutable recording : bool;
}

let default_ring_capacity = 65536

let create ~engine ~costs ?(ring_capacity = default_ring_capacity) () =
  {
    engine;
    costs;
    meter = Meter.create ();
    entries = Hashtbl.create 64;
    total_cycles = 0L;
    ring = Array.make (max 1 ring_capacity) None;
    ring_start = 0;
    ring_len = 0;
    dropped = 0;
    recording = false;
  }

let engine t = t.engine
let costs t = t.costs
let meter t = t.meter
let total_charged t = t.total_cycles
let set_recording t on = t.recording <- on
let recording t = t.recording
let dropped t = t.dropped

let entry t key =
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
      let e =
        { units = 0; charged_units = 0; cycles = 0L; rep = None; fixed = true }
      in
      Hashtbl.add t.entries key e;
      e

let push t r =
  let cap = Array.length t.ring in
  if t.ring_len < cap then begin
    t.ring.((t.ring_start + t.ring_len) mod cap) <- Some r;
    t.ring_len <- t.ring_len + 1
  end
  else begin
    t.ring.(t.ring_start) <- Some r;
    t.ring_start <- (t.ring_start + 1) mod cap;
    t.dropped <- t.dropped + 1
  end

let emit t ?(pid = -1) event =
  let key = Event.to_key event in
  let n = Event.count event in
  let cost = Event.cost ~costs:t.costs event in
  Meter.add t.meter key n;
  (match event with
  | Event.Syscall _ -> Meter.incr t.meter "syscall"
  | _ -> ());
  (* Outside an engine thread (boot, direct kernel poking in unit tests)
     there is no schedulable context to charge, mirroring the old
     boot-time charge path: count the event, skip the cycles. *)
  let tid =
    match Engine.current_tid () with
    | tid -> tid
    | exception Effect.Unhandled _ -> -1
  in
  let charged = tid >= 0 && cost > 0L in
  let e = entry t key in
  e.units <- e.units + n;
  (match (Event.linear_unit ~costs:t.costs event, e.rep) with
  | None, _ -> e.fixed <- false
  | Some _, None -> e.rep <- Some event
  | Some u, Some rep ->
      if Event.linear_unit ~costs:t.costs rep <> Some u then e.fixed <- false);
  if charged then begin
    e.charged_units <- e.charged_units + n;
    e.cycles <- Int64.add e.cycles cost;
    t.total_cycles <- Int64.add t.total_cycles cost
  end;
  if t.recording then begin
    let core =
      match Engine.current_core () with
      | c -> c
      | exception Effect.Unhandled _ -> -1
    in
    let name =
      match Engine.current_name () with
      | n -> n
      | exception Effect.Unhandled _ -> ""
    in
    push t
      {
        t = Engine.now t.engine;
        core;
        tid;
        name;
        pid;
        event;
        cycles = (if charged then cost else 0L);
      }
  end;
  (* Last, so the record and the aggregates describe the state at emission
     time even if a [~until] deadline truncates the advance. *)
  if charged then Engine.advance cost

let gauge t key v = Meter.set t.meter key v

let last_fork_latency_key = "gauge.last_fork_latency"

let last_fork_latency t =
  Int64.of_int (Meter.get t.meter last_fork_latency_key)

let records t =
  let cap = Array.length t.ring in
  List.init t.ring_len (fun i ->
      match t.ring.((t.ring_start + i) mod cap) with
      | Some r -> r
      | None -> assert false)

let reset t =
  Meter.reset t.meter;
  Hashtbl.iter
    (fun _ e ->
      e.units <- 0;
      e.charged_units <- 0;
      e.cycles <- 0L;
      e.rep <- None;
      e.fixed <- true)
    t.entries;
  t.total_cycles <- 0L;
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.ring_start <- 0;
  t.ring_len <- 0;
  t.dropped <- 0

let record_to_json r =
  Printf.sprintf
    "{\"t\":%Ld,\"core\":%d,\"tid\":%d,\"name\":\"%s\",\"pid\":%d,\"event\":%s,\"cycles\":%Ld}"
    r.t r.core r.tid (Event.json_escape r.name) r.pid (Event.to_json r.event)
    r.cycles

let to_jsonl_string t =
  let b = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string b (record_to_json r);
      Buffer.add_char b '\n')
    (records t);
  Buffer.contents b

let chrome_of_records recs =
  let us cycles = Ufork_util.Units.us_of_cycles cycles in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ','
  in
  (* Lanes are simulated threads; name each lane once via the Chrome
     "thread_name" metadata event so the viewer shows e.g. "redis.1"
     instead of a bare tid. *)
  let named = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let pid = if r.pid >= 0 then r.pid else 0 in
      let tid = if r.tid >= 0 then r.tid else 0 in
      if r.name <> "" && not (Hashtbl.mem named (pid, tid)) then begin
        Hashtbl.add named (pid, tid) ();
        sep ();
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
             pid tid
             (Event.json_escape r.name))
      end;
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"n\":%d,\"cycles\":%Ld,\"core\":%d,\"sim_pid\":%d,\"sim_tid\":%d}}"
           (Event.json_escape (Event.to_key r.event))
           (us r.t) (us r.cycles) pid tid (Event.count r.event) r.cycles
           r.core r.pid r.tid))
    recs;
  Buffer.add_string b "],\"displayTimeUnit\":\"ns\"}";
  Buffer.contents b

exception Audit_failure of string

let audit t ~costs ~elapsed =
  if elapsed <> t.total_cycles then
    raise
      (Audit_failure
         (Printf.sprintf
            "engine advanced %Ld cycles but the trace charged %Ld (delta %Ld)"
            elapsed t.total_cycles
            (Int64.sub elapsed t.total_cycles)));
  Hashtbl.iter
    (fun key e ->
      match e.rep with
      | Some rep when e.fixed -> (
          match Event.linear_unit ~costs rep with
          | None -> ()
          | Some unit ->
              let expected = Int64.mul unit (Int64.of_int e.charged_units) in
              if e.cycles <> expected then
                raise
                  (Audit_failure
                     (Printf.sprintf
                        "key %S charged %Ld cycles; preset says %d units x %Ld \
                         = %Ld"
                        key e.cycles e.charged_units unit expected)))
      | _ -> ())
    t.entries
