module Hb = Ufork_util.Hb

type tid = int

(* Min-heap of (time, seq, action); seq breaks ties FIFO so the schedule is
   deterministic. *)
module Heap = struct
  type entry = { time : int64; seq : int; action : unit -> unit }
  type t = { mutable a : entry array; mutable len : int }

  let dummy = { time = 0L; seq = 0; action = (fun () -> ()) }
  let create () = { a = Array.make 256 dummy; len = 0 }

  let lt x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)

  let push h e =
    if h.len = Array.length h.a then begin
      let a' = Array.make (2 * h.len) dummy in
      Array.blit h.a 0 a' 0 h.len;
      h.a <- a'
    end;
    h.a.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && lt h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let peek h = if h.len = 0 then None else Some h.a.(0)

  let pop h =
    let top = h.a.(0) in
    h.len <- h.len - 1;
    h.a.(0) <- h.a.(h.len);
    h.a.(h.len) <- dummy;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && lt h.a.(l) h.a.(!smallest) then smallest := l;
      if r < h.len && lt h.a.(r) h.a.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = h.a.(!smallest) in
        h.a.(!smallest) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    top
end

type core = { index : int; mutable busy : bool }

type thread = {
  tid : tid;
  name : string;
  affinity : int option;
  mutable finished : bool;
  mutable cur_core : core option;
      (* The core the thread currently occupies; threads can migrate across
         yields, so the effect handler must read this rather than close
         over a core. *)
}

(* What a ready thread resumes into: its initial body or a suspended
   continuation. *)
type resume =
  | Start of (unit -> unit)
  | Cont of (unit, unit) Effect.Deep.continuation

type t = {
  core_array : core array;
  events : Heap.t;
  mutable now : int64;
  mutable advanced : int64;
  mutable seq : int;
  ready : (thread * resume) Queue.t;
  mutable live : int;
  mutable blocked : int;
  mutable next_tid : int;
  mutable in_event : bool;
}

type waker = { mutable target : (t * thread * resume) option }

type _ Effect.t +=
  | Advance : int64 -> unit Effect.t
  | Yield : unit Effect.t
  | Suspend : (waker -> unit) -> unit Effect.t
  | Get_time : int64 Effect.t
  | Get_tid : tid Effect.t
  | Get_core : int Effect.t
  | Get_name : string Effect.t

let create ?(cores = 4) () =
  if cores <= 0 then invalid_arg "Engine.create: cores <= 0";
  {
    core_array = Array.init cores (fun index -> { index; busy = false });
    events = Heap.create ();
    now = 0L;
    advanced = 0L;
    seq = 0;
    ready = Queue.create ();
    live = 0;
    blocked = 0;
    next_tid = 0;
    in_event = false;
  }

let cores t = Array.length t.core_array
let now t = t.now
let advanced t = t.advanced
let live_threads t = t.live
let blocked_threads t = t.blocked

let schedule t time action =
  t.seq <- t.seq + 1;
  Heap.push t.events { time; seq = t.seq; action }

let occupied_core thread =
  match thread.cur_core with
  | Some c -> c
  | None -> invalid_arg "Engine: thread has no core (engine bug)"

let release_core thread =
  (occupied_core thread).busy <- false;
  thread.cur_core <- None

(* Run a thread fragment on a core until it suspends or finishes. Simulated
   time does not move while the OCaml code runs; it passes only through
   Advance/sleep. *)
let exec t core thread resume =
  core.busy <- true;
  thread.cur_core <- Some core;
  match resume with
  | Cont k ->
      (* The deep handler installed at Start travels with the continuation. *)
      Effect.Deep.continue k ()
  | Start body ->
      Effect.Deep.match_with body ()
        {
          retc =
            (fun () ->
              thread.finished <- true;
              t.live <- t.live - 1;
              release_core thread);
          exnc =
            (fun e ->
              (* A crashing thread must not leave its core marked busy. *)
              thread.finished <- true;
              t.live <- t.live - 1;
              release_core thread;
              raise e);
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Advance n ->
                  Some
                    (fun (k : (a, unit) Effect.Deep.continuation) ->
                      if n < 0L then
                        (* Deliver the error at the perform site. *)
                        Effect.Deep.discontinue k
                          (Invalid_argument "Engine.advance: negative")
                      else begin
                        (* The core stays busy until the advance
                           completes. *)
                        t.advanced <- Int64.add t.advanced n;
                        let c = occupied_core thread in
                        schedule t (Int64.add t.now n) (fun () ->
                            thread.cur_core <- Some c;
                            Effect.Deep.continue k ())
                      end)
              | Yield ->
                  Some
                    (fun k ->
                      release_core thread;
                      Queue.push (thread, Cont k) t.ready)
              | Suspend register ->
                  Some
                    (fun k ->
                      release_core thread;
                      t.blocked <- t.blocked + 1;
                      register { target = Some (t, thread, Cont k) })
              | Get_time -> Some (fun k -> Effect.Deep.continue k t.now)
              | Get_tid -> Some (fun k -> Effect.Deep.continue k thread.tid)
              | Get_core ->
                  Some
                    (fun k ->
                      Effect.Deep.continue k (occupied_core thread).index)
              | Get_name -> Some (fun k -> Effect.Deep.continue k thread.name)
              | _ -> None);
        }

let find_idle_core t affinity =
  match affinity with
  | Some a ->
      let c = t.core_array.(a) in
      if c.busy then None else Some c
  | None ->
      let n = Array.length t.core_array in
      let rec go i =
        if i >= n then None
        else if not t.core_array.(i).busy then Some t.core_array.(i)
        else go (i + 1)
      in
      go 0

(* Dispatch ready threads to idle cores (FIFO, lowest-numbered compatible
   idle core first). Single pass over the queue per round: each entry is
   popped once and either executed or requeued in order. Continuing the
   pass after an exec cannot starve an earlier skipped entry: exec only
   ever occupies (and possibly hands back) a core that was already idle
   when the earlier entry was skipped — so that core was incompatible with
   it then and still is. A round that dispatched anything is followed by
   another, which picks up threads the execs made ready. *)
let dispatch t =
  let progress = ref true in
  while !progress do
    progress := false;
    let n = Queue.length t.ready in
    for _ = 1 to n do
      let ((thread, resume) as entry) = Queue.pop t.ready in
      match find_idle_core t thread.affinity with
      | Some core ->
          exec t core thread resume;
          progress := true
      | None -> Queue.push entry t.ready
    done
  done

let enqueue_new t ?name ?affinity body =
  t.next_tid <- t.next_tid + 1;
  let name =
    match name with Some n -> n | None -> Printf.sprintf "t%d" t.next_tid
  in
  let thread = { tid = t.next_tid; name; affinity; finished = false; cur_core = None } in
  t.live <- t.live + 1;
  Queue.push (thread, Start body) t.ready;
  if Hb.on () then
    Hb.emit (Hb.Spawn { parent = Hb.tid (); child = thread.tid });
  thread.tid

let spawn ?name ?affinity t body =
  (match affinity with
  | Some a when a < 0 || a >= cores t -> invalid_arg "Engine.spawn: affinity"
  | Some _ | None -> ());
  enqueue_new t ?name ?affinity body

let run ?until t =
  dispatch t;
  let continue = ref true in
  while !continue do
    match Heap.peek t.events with
    | None -> continue := false
    | Some e -> (
        match until with
        | Some limit when e.Heap.time > limit ->
            t.now <- limit;
            continue := false
        | Some _ | None ->
            let e = Heap.pop t.events in
            t.now <- e.Heap.time;
            t.in_event <- true;
            e.Heap.action ();
            t.in_event <- false;
            dispatch t)
  done

(* In-thread operations. *)
let advance n = Effect.perform (Advance n)
let yield () = Effect.perform Yield
let suspend register = Effect.perform (Suspend register)
let current_time () = Effect.perform Get_time
let current_tid () = Effect.perform Get_tid
let current_core () = Effect.perform Get_core
let current_name () = Effect.perform Get_name

let waker_pending w = w.target <> None

let wake w =
  match w.target with
  | None -> invalid_arg "Engine.wake: waker already used"
  | Some (t, thread, resume) ->
      w.target <- None;
      t.blocked <- t.blocked - 1;
      if Hb.on () then Hb.emit (Hb.Wake { by = Hb.tid (); target = thread.tid });
      Queue.push (thread, resume) t.ready;
      (* A waker fired outside event processing (e.g. between runs) must
         kick the dispatcher itself; inside, the main loop dispatches after
         the current event completes. *)
      if not t.in_event then dispatch t

(* The happens-before bus needs the current simulated thread wherever a
   publisher sits (the frame pool in lib/mem cannot perform effects
   itself); install the provider once at link time. *)
let () =
  Hb.set_tid_provider (fun () ->
      match Effect.perform Get_tid with
      | tid -> tid
      | exception Effect.Unhandled _ -> -1)

let sleep n =
  if n < 0L then invalid_arg "Engine.sleep: negative";
  let t0 = current_time () in
  suspend (fun w ->
      match w.target with
      | Some (t, _, _) -> schedule t (Int64.add t0 n) (fun () -> wake w)
      | None -> assert false)
