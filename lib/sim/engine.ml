module Hb = Ufork_util.Hb

type tid = int

(* Min-heap of (time, seq, action); seq breaks ties FIFO so the schedule is
   deterministic. *)
module Heap = struct
  type entry = { time : int64; seq : int; action : unit -> unit }
  type t = { mutable a : entry array; mutable len : int }

  let dummy = { time = 0L; seq = 0; action = (fun () -> ()) }
  let create () = { a = Array.make 256 dummy; len = 0 }

  let lt x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)

  let push h e =
    if h.len = Array.length h.a then begin
      let a' = Array.make (2 * h.len) dummy in
      Array.blit h.a 0 a' 0 h.len;
      h.a <- a'
    end;
    h.a.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && lt h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let peek h = if h.len = 0 then None else Some h.a.(0)

  (* Allocation-free peek for the advance fast path: no event at or
     before [target]? *)
  let min_time_exceeds h target = h.len = 0 || h.a.(0).time > target

  let pop h =
    let top = h.a.(0) in
    h.len <- h.len - 1;
    h.a.(0) <- h.a.(h.len);
    h.a.(h.len) <- dummy;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && lt h.a.(l) h.a.(!smallest) then smallest := l;
      if r < h.len && lt h.a.(r) h.a.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = h.a.(!smallest) in
        h.a.(!smallest) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    top
end

type core = { index : int; mutable busy : bool }

type thread = {
  tid : tid;
  name : string;
  affinity : int option;
  mutable finished : bool;
  mutable home : int;
      (* The run queue this thread is enqueued on when it becomes ready:
         its affinity core when pinned, otherwise the core it last ran on
         (initially tid mod cores). Work stealing migrates unpinned
         threads and re-homes them to the stealing core. *)
  mutable cur_core : core option;
      (* The core the thread currently occupies; threads can migrate across
         yields, so the effect handler must read this rather than close
         over a core. *)
}

(* What a ready thread resumes into: its initial body or a suspended
   continuation. *)
type resume =
  | Start of (unit -> unit)
  | Cont of (unit, unit) Effect.Deep.continuation

type t = {
  core_array : core array;
  events : Heap.t;
  mutable now : int64;
  mutable advanced : int64;
  mutable seq : int;
  run_queues : (thread * resume * int) Queue.t array;
      (* One run queue per core, entries stamped with a global ready
         sequence. Pinned threads wait on their affinity core's queue
         and are never stolen; unpinned threads wait on their home
         core's queue and may be stolen by an idle core. *)
  mutable ready_seq : int;
  mutable ready_count : int;
  mutable steals : int;
  mutable live : int;
  mutable blocked : int;
  mutable next_tid : int;
  mutable in_event : bool;
  mutable until_limit : int64;
      (* [run]'s [?until] deadline (Int64.max_int when none), mirrored
         here so the advance fast path never passes time inline beyond
         a truncation point the run loop would have stopped at. *)
  mutable inline_depth : int;
      (* Live inline-advance resumes on the host stack right now. Each
         inline [continue] nests native frames until the next slow-path
         suspension unwinds the whole chain, so the fast path bails to
         the heap once the chain gets deep — same schedule, bounded
         stack. *)
  mutable active_resumes : int;
      (* Distinct thread stretches live on the host stack: one per
         [exec] or advance-completion resume (inline resumes continue
         the same stretch and don't count). Normally 1 while a thread
         runs; 2+ when a wake outside event processing dispatches a
         nested thread. The advance fast path requires exactly 1 — a
         thread nested below is still positioned at the old [now], so
         passing time inline over it would shift where it resumes. *)
  mutable running_tid : tid;
  mutable running_core : int;
  mutable running_name : string;
      (* The thread currently executing host code on this engine, or
         (-1, -1, "") between threads. Plain fields mirroring
         Get_tid/Get_core/Get_name so the per-event accounting path can
         read them without an effect dispatch. Saved and restored around
         every resume: a running thread that calls [wake] can dispatch a
         nested [exec] on an idle core, so plain reset to -1 would
         clobber the outer thread's identity. *)
}

type waker = { mutable target : (t * thread * resume) option }

(* Cap on nested inline-advance resumes (see [inline_depth]): deep
   enough that single-threaded stretches almost never fall back, shallow
   enough that the native stack stays bounded. *)
let max_inline_depth = 1024

type _ Effect.t +=
  | Advance : int64 -> unit Effect.t
  | Yield : unit Effect.t
  | Suspend : (waker -> unit) -> unit Effect.t
  | Get_time : int64 Effect.t
  | Get_tid : tid Effect.t
  | Get_core : int Effect.t
  | Get_name : string Effect.t

let max_cores = 1024

let create ?(cores = 4) () =
  if cores <= 0 then invalid_arg "Engine.create: cores <= 0";
  if cores > max_cores then invalid_arg "Engine.create: cores > 1024";
  {
    core_array = Array.init cores (fun index -> { index; busy = false });
    events = Heap.create ();
    now = 0L;
    advanced = 0L;
    seq = 0;
    run_queues = Array.init cores (fun _ -> Queue.create ());
    ready_seq = 0;
    ready_count = 0;
    steals = 0;
    live = 0;
    blocked = 0;
    next_tid = 0;
    in_event = false;
    until_limit = Int64.max_int;
    inline_depth = 0;
    active_resumes = 0;
    running_tid = -1;
    running_core = -1;
    running_name = "";
  }

let cores t = Array.length t.core_array
let now t = t.now
let advanced t = t.advanced
let live_threads t = t.live
let blocked_threads t = t.blocked
let steals t = t.steals
let running_tid t = t.running_tid
let running_core t = t.running_core
let running_name t = t.running_name

(* Enqueue a ready thread on its run queue: the affinity core when
   pinned, the home core otherwise. The global ready-seq stamp is what
   keeps the multi-queue schedule identical to the old single-FIFO
   engine: dispatch runs entries in stamp order. *)
let make_ready t thread resume =
  let q =
    match thread.affinity with Some a -> a | None -> thread.home
  in
  t.ready_seq <- t.ready_seq + 1;
  Queue.push (thread, resume, t.ready_seq) t.run_queues.(q);
  t.ready_count <- t.ready_count + 1

let schedule t time action =
  t.seq <- t.seq + 1;
  Heap.push t.events { time; seq = t.seq; action }

let occupied_core thread =
  match thread.cur_core with
  | Some c -> c
  | None -> invalid_arg "Engine: thread has no core (engine bug)"

let release_core thread =
  (occupied_core thread).busy <- false;
  thread.cur_core <- None

(* Run a thread fragment on a core until it suspends or finishes. Simulated
   time does not move while the OCaml code runs; it passes only through
   Advance/sleep.

   Every site that resumes thread code — here and the advance-completion
   action below — brackets the resume with a save/set/restore of the
   running_* mirror fields, on the exception path too: a crashing thread
   must not leave a stale identity behind for host-side emissions to
   pick up. *)
let exec t core thread resume =
  core.busy <- true;
  thread.cur_core <- Some core;
  thread.home <- core.index;
  let prev_tid = t.running_tid
  and prev_core = t.running_core
  and prev_name = t.running_name in
  t.running_tid <- thread.tid;
  t.running_core <- core.index;
  t.running_name <- thread.name;
  let resumed () =
    match resume with
    | Cont k ->
        (* The deep handler installed at Start travels with the
           continuation. *)
        Effect.Deep.continue k ()
    | Start body ->
        Effect.Deep.match_with body ()
          {
            retc =
              (fun () ->
                thread.finished <- true;
                t.live <- t.live - 1;
                release_core thread);
            exnc =
              (fun e ->
                (* A crashing thread must not leave its core marked busy. *)
                thread.finished <- true;
                t.live <- t.live - 1;
                release_core thread;
                raise e);
            effc =
              (fun (type a) (eff : a Effect.t) ->
                match eff with
                | Advance n ->
                    Some
                      (fun (k : (a, unit) Effect.Deep.continuation) ->
                        if n < 0L then
                          (* Deliver the error at the perform site. *)
                          Effect.Deep.discontinue k
                            (Invalid_argument "Engine.advance: negative")
                        else begin
                          (* The core stays busy until the advance
                             completes. *)
                          t.advanced <- Int64.add t.advanced n;
                          let target = Int64.add t.now n in
                          if
                            t.ready_count = 0
                            && t.active_resumes = 1
                            && Heap.min_time_exceeds t.events target
                            && target <= t.until_limit
                            && t.inline_depth < max_inline_depth
                          then begin
                            (* Nothing — no ready thread, no event at or
                               before [target], no [~until] deadline —
                               can run before this advance completes, so
                               the scheduled continuation would be the
                               very next thing the run loop pops. Pass
                               time inline and keep the thread on its
                               core, skipping the suspend/heap
                               round-trip. Equal-time heap events hold
                               an older seq stamp and must win, hence
                               the strict [>] in the peek. *)
                            t.now <- target;
                            t.inline_depth <- t.inline_depth + 1;
                            (* The slow path would resume this thread
                               inside an event action, where [wake]
                               defers dispatch to the run loop; mimic
                               that, or a wake in the inlined stretch
                               would dispatch immediately and reorder
                               the schedule. *)
                            let prev_in_event = t.in_event in
                            t.in_event <- true;
                            match Effect.Deep.continue k () with
                            | () ->
                                t.in_event <- prev_in_event;
                                t.inline_depth <- t.inline_depth - 1
                            | exception e ->
                                t.in_event <- prev_in_event;
                                t.inline_depth <- t.inline_depth - 1;
                                raise e
                          end
                          else
                          let c = occupied_core thread in
                          schedule t target (fun () ->
                              thread.cur_core <- Some c;
                              let prev_tid = t.running_tid
                              and prev_core = t.running_core
                              and prev_name = t.running_name in
                              t.running_tid <- thread.tid;
                              t.running_core <- c.index;
                              t.running_name <- thread.name;
                              t.active_resumes <- t.active_resumes + 1;
                              match Effect.Deep.continue k () with
                              | () ->
                                  t.active_resumes <- t.active_resumes - 1;
                                  t.running_tid <- prev_tid;
                                  t.running_core <- prev_core;
                                  t.running_name <- prev_name
                              | exception e ->
                                  t.active_resumes <- t.active_resumes - 1;
                                  t.running_tid <- prev_tid;
                                  t.running_core <- prev_core;
                                  t.running_name <- prev_name;
                                  raise e)
                        end)
              | Yield ->
                  Some
                    (fun k ->
                      release_core thread;
                      make_ready t thread (Cont k))
              | Suspend register ->
                  Some
                    (fun k ->
                      if Hb.on () then
                        Hb.emit (Hb.Block { tid = thread.tid });
                      release_core thread;
                      t.blocked <- t.blocked + 1;
                      register { target = Some (t, thread, Cont k) })
              | Get_time -> Some (fun k -> Effect.Deep.continue k t.now)
              | Get_tid -> Some (fun k -> Effect.Deep.continue k thread.tid)
              | Get_core ->
                  Some
                    (fun k ->
                      Effect.Deep.continue k (occupied_core thread).index)
                | Get_name ->
                    Some (fun k -> Effect.Deep.continue k thread.name)
                | _ -> None);
          }
  in
  t.active_resumes <- t.active_resumes + 1;
  match resumed () with
  | () ->
      t.active_resumes <- t.active_resumes - 1;
      t.running_tid <- prev_tid;
      t.running_core <- prev_core;
      t.running_name <- prev_name
  | exception e ->
      t.active_resumes <- t.active_resumes - 1;
      t.running_tid <- prev_tid;
      t.running_core <- prev_core;
      t.running_name <- prev_name;
      raise e

(* The globally oldest entry that can run right now: pinned entries
   qualify only when their affinity core is idle; unpinned entries
   qualify whenever any core is idle (callers check that first). Queues
   are scanned in full because a pinned-but-blocked head must not shadow
   a runnable entry behind it. Returns the queue index and stamp. *)
let oldest_runnable t =
  let best = ref None in
  Array.iteri
    (fun qi q ->
      Queue.iter
        (fun (thread, _, rseq) ->
          let runnable =
            match thread.affinity with
            | Some a -> not t.core_array.(a).busy
            | None -> true
          in
          if runnable then
            match !best with
            | Some (_, bseq) when bseq <= rseq -> ()
            | _ -> best := Some (qi, rseq))
        q)
    t.run_queues;
  !best

(* Remove the entry stamped [rseq] from queue [qi] by rotating the queue
   once; stamps are unique so exactly one entry matches. *)
let remove_entry t qi rseq =
  let q = t.run_queues.(qi) in
  let found = ref None in
  for _ = 1 to Queue.length q do
    let ((_, _, s) as entry) = Queue.pop q in
    if s = rseq then found := Some entry else Queue.push entry q
  done;
  match !found with
  | Some entry -> entry
  | None -> invalid_arg "Engine: run-queue entry vanished (engine bug)"

(* Dispatch ready threads to idle cores, globally oldest first: each
   step runs the lowest-stamped runnable entry, preserving the
   single-FIFO schedule of a one-queue engine. The core is the entry's
   own queue core when idle; otherwise the first idle core scanning
   upward from it — a steal that migrates and re-homes the thread. Both
   choices are functions of queue contents and core ids alone, so the
   schedule (and every trace derived from it) is reproducible for a
   given seed and core count. *)
let dispatch t =
  let n = Array.length t.core_array in
  let continue = ref true in
  while !continue && t.ready_count > 0 do
    if not (Array.exists (fun c -> not c.busy) t.core_array) then
      continue := false
    else
      match oldest_runnable t with
      | None -> continue := false
      | Some (qi, rseq) ->
          let thread, resume, _ = remove_entry t qi rseq in
          t.ready_count <- t.ready_count - 1;
          let core =
            match thread.affinity with
            | Some a -> t.core_array.(a)
            | None ->
                if not t.core_array.(qi).busy then t.core_array.(qi)
                else begin
                  let rec idle k =
                    let c = t.core_array.((qi + k) mod n) in
                    if c.busy then idle (k + 1) else c
                  in
                  t.steals <- t.steals + 1;
                  let c = idle 1 in
                  if Hb.on () then
                    Hb.emit (Hb.Steal { tid = thread.tid; core = c.index });
                  c
                end
          in
          exec t core thread resume
  done

let enqueue_new t ?name ?affinity body =
  t.next_tid <- t.next_tid + 1;
  let name =
    match name with Some n -> n | None -> Printf.sprintf "t%d" t.next_tid
  in
  let home =
    (* Fresh unpinned threads spread across cores by tid so independent
       workloads (one forker per core) land on distinct queues without
       explicit affinity. *)
    match affinity with
    | Some a -> a
    | None -> t.next_tid mod Array.length t.core_array
  in
  let thread =
    { tid = t.next_tid; name; affinity; finished = false; home;
      cur_core = None }
  in
  t.live <- t.live + 1;
  make_ready t thread (Start body);
  if Hb.on () then
    Hb.emit (Hb.Spawn { parent = Hb.tid (); child = thread.tid });
  thread.tid

let spawn ?name ?affinity t body =
  (match affinity with
  | Some a when a < 0 || a >= cores t -> invalid_arg "Engine.spawn: affinity"
  | Some _ | None -> ());
  enqueue_new t ?name ?affinity body

let run ?until t =
  t.until_limit <- (match until with Some u -> u | None -> Int64.max_int);
  dispatch t;
  let continue = ref true in
  while !continue do
    match Heap.peek t.events with
    | None -> continue := false
    | Some e -> (
        match until with
        | Some limit when e.Heap.time > limit ->
            t.now <- limit;
            continue := false
        | Some _ | None ->
            let e = Heap.pop t.events in
            t.now <- e.Heap.time;
            t.in_event <- true;
            e.Heap.action ();
            t.in_event <- false;
            dispatch t)
  done

(* In-thread operations. *)
let advance n = Effect.perform (Advance n)

(* The charging hot path ({!Trace.emit}) calls this before performing the
   {!advance} effect: under exactly the conditions where the effect
   handler's inline fast path would pass time without suspending (sole
   live resume, nothing ready, no heap event at or before the target, no
   [~until] deadline in between), passing time is pure field mutation —
   so skip the continuation capture entirely. [in_event] must already be
   set (it is, for any thread resumed by the run loop or by the inline
   fast path itself), or a [wake] later in the same stretch would
   dispatch immediately where the slow path — which always resumes inside
   an event action — would defer; the boot-time nested-exec case where it
   is not set falls back to the effect. Unlike the handler's inline path
   this consumes no native stack, so no depth cap applies. *)
let advance_direct t n =
  let target = Int64.add t.now n in
  if
    n >= 0L && t.in_event
    && t.ready_count = 0
    && t.active_resumes = 1
    && t.running_tid >= 0
    && target <= t.until_limit
    && Heap.min_time_exceeds t.events target
  then begin
    t.advanced <- Int64.add t.advanced n;
    t.now <- target;
    true
  end
  else false
let yield () = Effect.perform Yield
let suspend register = Effect.perform (Suspend register)
let current_time () = Effect.perform Get_time
let current_tid () = Effect.perform Get_tid
let current_core () = Effect.perform Get_core
let current_name () = Effect.perform Get_name

let waker_pending w = w.target <> None

let waker_tid w =
  match w.target with Some (_, thread, _) -> thread.tid | None -> -1

let wake w =
  match w.target with
  | None -> invalid_arg "Engine.wake: waker already used"
  | Some (t, thread, resume) ->
      w.target <- None;
      t.blocked <- t.blocked - 1;
      if Hb.on () then Hb.emit (Hb.Wake { by = Hb.tid (); target = thread.tid });
      make_ready t thread resume;
      (* A waker fired outside event processing (e.g. between runs) must
         kick the dispatcher itself; inside, the main loop dispatches after
         the current event completes. *)
      if not t.in_event then dispatch t

(* The happens-before bus needs the current simulated thread wherever a
   publisher sits (the frame pool in lib/mem cannot perform effects
   itself); install the provider once at link time. *)
let () =
  Hb.set_tid_provider (fun () ->
      match Effect.perform Get_tid with
      | tid -> tid
      | exception Effect.Unhandled _ -> -1);
  Hb.set_core_provider (fun () ->
      match Effect.perform Get_core with
      | core -> core
      | exception Effect.Unhandled _ -> -1)

let sleep n =
  if n < 0L then invalid_arg "Engine.sleep: negative";
  let t0 = current_time () in
  suspend (fun w ->
      match w.target with
      | Some (t, _, _) -> schedule t (Int64.add t0 n) (fun () -> wake w)
      | None -> assert false)
