(** Blocking synchronization for engine threads.

    [Lock] models mutexes — notably Unikraft's big kernel lock, which
    serializes kernel code across cores (§4.5) — and [Cond] models waitqueues
    (pipe readers, [wait] for child exit). Both are FIFO and deterministic. *)

module Lock : sig
  type t

  val create : ?name:string -> unit -> t
  (** [name] registers a stable resource name for the lock's id with the
      happens-before bus ({!Ufork_util.Hb.set_lock_name}), so race
      reports and trace exports name the resource, not a number. *)

  val acquire : t -> unit
  (** Blocks (suspending the calling engine thread) until available. *)

  val release : t -> unit
  (** Hands the lock to the longest-waiting thread, if any. Raises
      [Invalid_argument] if the lock is not held. *)

  val with_lock : t -> (unit -> 'a) -> 'a
  (** [acquire]; run; [release] (also on exception). *)

  val locked : t -> bool

  val id : t -> int
  (** Stable identity; names the lock in happens-before events. *)

  val name : t -> string option
end

(** {1 Contention counters}

    Every named lock counts acquisitions, blocked acquisitions, and
    which thread held it each time a waiter blocked. Plain counters: no
    cycles are charged and no engine state is touched, so scheduling and
    golden accounting are unchanged. Aggregated by resource name across
    every named lock created so far (several booted machines sum). *)

type contention = {
  lock : string;  (** the resource name passed to [create ~name] *)
  acquires : int;  (** outermost acquisitions (recursive re-entries excluded) *)
  waits : int;  (** acquisitions that found the lock held and suspended *)
  wait_holders : (int * int) list;
      (** holder tid at the moment a waiter blocked → how often, sorted *)
}

val lock_contention : unit -> contention list
(** One row per distinct lock name, sorted by name. *)

val lock_contention_prometheus : unit -> string
(** Prometheus text exposition: [ufork_lock_acquire_total],
    [ufork_lock_wait_total], [ufork_lock_wait_holder_total], each
    labelled by lock name (and holder tid for the last). *)

val reset_lock_contention : unit -> unit
(** Forget every lock registered so far (unit-test isolation). *)

(** Recursive lock, owner-tracked by engine tid. Kernel code re-enters
    (a fault inside a syscall services on the same thread), and a plain
    {!Lock} would self-deadlock the cooperative engine. Only the
    outermost acquire/release pair touches the underlying {!Lock} and
    the happens-before bus. *)
module Rlock : sig
  type t

  val create : ?name:string -> unit -> t
  val acquire : t -> unit
  val release : t -> unit
  val with_lock : t -> (unit -> 'a) -> 'a
  val id : t -> int
  val name : t -> string option

  val held_by_self : t -> bool
  (** True when the calling engine thread currently holds the lock. *)
end

module Cond : sig
  type t

  val create : unit -> t
  val wait : t -> unit
  (** Suspend until signalled. No lock is associated: callers re-check
      their predicate on wakeup (spurious-wakeup-safe style). *)

  val add_waiter : t -> Engine.waker -> unit
  (** Register an externally created waker (signal-interruptible waits). *)

  val signal : t -> unit
  (** Wake the longest-waiting thread (no-op when none; entries already
      woken out of band are skipped). *)

  val broadcast : t -> unit
  val waiters : t -> int
end
