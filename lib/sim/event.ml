type t =
  | Syscall of { name : string; trap : bool }
  | Entry_validation of int
  | Toctou_setup
  | Copy_bytes of int
  | Toctou_bytes of int
  | Context_switch
  | Address_space_switch
  | Page_fault
  | Soft_fault
  | Demand_zero
  | Cow_write_fault
  | Copa_write_fault
  | Copa_cap_load_fault
  | Coa_access_fault
  | Fork_fixed
  | Spawn
  | Thread_create
  | Exit
  | Kill
  | Domain_create
  | Pte_copy of int
  | Pte_protect
  | Tlb_shootdown of int
  | Page_alloc of int
  | Page_copy_eager of int
  | Page_copy_child
  | Page_copy_cow
  | Claim_in_place
  | Cow_claim_in_place
  | Shm_share
  | Granule_scan of int
  | Cap_relocate of int
  | Toctou_revalidate of int
  | Malloc
  | Free
  | File_op
  | Pipe_op
  | Shm_open
  | Map_library
  | Arena_pretouch of int
  | Compute of int64

(* Dense stable constructor code, declaration order, starting at 0.
   [Trace]'s flat accounting arrays index by it, so the numbering is an
   accounting-format contract: append-only, pinned by tests. [Syscall]
   maps to one code regardless of name — per-name counters are a key
   (string) concern, resolved by interning, not an id concern. *)
let id = function
  | Syscall _ -> 0
  | Entry_validation _ -> 1
  | Toctou_setup -> 2
  | Copy_bytes _ -> 3
  | Toctou_bytes _ -> 4
  | Context_switch -> 5
  | Address_space_switch -> 6
  | Page_fault -> 7
  | Soft_fault -> 8
  | Demand_zero -> 9
  | Cow_write_fault -> 10
  | Copa_write_fault -> 11
  | Copa_cap_load_fault -> 12
  | Coa_access_fault -> 13
  | Fork_fixed -> 14
  | Spawn -> 15
  | Thread_create -> 16
  | Exit -> 17
  | Kill -> 18
  | Domain_create -> 19
  | Pte_copy _ -> 20
  | Pte_protect -> 21
  | Tlb_shootdown _ -> 22
  | Page_alloc _ -> 23
  | Page_copy_eager _ -> 24
  | Page_copy_child -> 25
  | Page_copy_cow -> 26
  | Claim_in_place -> 27
  | Cow_claim_in_place -> 28
  | Shm_share -> 29
  | Granule_scan _ -> 30
  | Cap_relocate _ -> 31
  | Toctou_revalidate _ -> 32
  | Malloc -> 33
  | Free -> 34
  | File_op -> 35
  | Pipe_op -> 36
  | Shm_open -> 37
  | Map_library -> 38
  | Arena_pretouch _ -> 39
  | Compute _ -> 40

let id_count = 41

let to_key = function
  | Syscall { name; _ } -> "syscall." ^ name
  | Entry_validation _ -> "entry_validation"
  | Toctou_setup -> "toctou_setup"
  | Copy_bytes _ -> "copyio_bytes"
  | Toctou_bytes _ -> "toctou_bytes"
  | Context_switch -> "context_switch"
  | Address_space_switch -> "address_space_switch"
  | Page_fault -> "fault"
  | Soft_fault -> "soft_fault"
  | Demand_zero -> "demand_zero"
  | Cow_write_fault -> "cow_write_fault"
  | Copa_write_fault -> "copa_write_fault"
  | Copa_cap_load_fault -> "copa_cap_load_fault"
  | Coa_access_fault -> "coa_access_fault"
  | Fork_fixed -> "fork"
  | Spawn -> "spawn"
  | Thread_create -> "thread_create"
  | Exit -> "exit"
  | Kill -> "kill"
  | Domain_create -> "domain_create"
  | Pte_copy _ -> "pte_copy"
  | Pte_protect -> "pte_protect"
  | Tlb_shootdown _ -> "tlb_shootdown"
  | Page_alloc _ -> "page_alloc"
  | Page_copy_eager _ -> "page_copy_eager"
  | Page_copy_child -> "page_copy_child"
  | Page_copy_cow -> "page_copy_cow"
  | Claim_in_place -> "claim_in_place"
  | Cow_claim_in_place -> "cow_claim_in_place"
  | Shm_share -> "shm_share"
  | Granule_scan _ -> "granules_scanned"
  | Cap_relocate _ -> "caps_relocated"
  | Toctou_revalidate _ -> "toctou_revalidate_ptes"
  | Malloc -> "malloc"
  | Free -> "free"
  | File_op -> "file_op"
  | Pipe_op -> "pipe_op"
  | Shm_open -> "shm_open"
  | Map_library -> "map_library"
  | Arena_pretouch _ -> "arena_pretouch_pages"
  | Compute _ -> "compute"

let count = function
  | Copy_bytes n | Toctou_bytes n | Page_alloc n | Granule_scan n
  | Cap_relocate n | Toctou_revalidate n | Arena_pretouch n | Pte_copy n
  | Page_copy_eager n ->
      n
  (* One shootdown batch counts as one flush protocol step even on a
     single core ([n = 0] remote IPIs): the linter's L4 window closes
     either way. *)
  | Tlb_shootdown _ -> 1
  | Syscall _ | Entry_validation _ | Toctou_setup | Context_switch
  | Address_space_switch | Page_fault | Soft_fault | Demand_zero
  | Cow_write_fault | Copa_write_fault | Copa_cap_load_fault
  | Coa_access_fault | Fork_fixed | Spawn | Thread_create | Exit | Kill
  | Domain_create | Pte_protect
  | Page_copy_child | Page_copy_cow | Claim_in_place | Cow_claim_in_place
  | Shm_share | Malloc | Free | File_op | Pipe_op | Shm_open | Map_library
  | Compute _ ->
      1

(* Raw constants that are mechanism properties rather than machine
   parameters: they do not vary across the cost presets. *)
let trap_floor = 800L
let toctou_setup_cycles = 600L
let kill_cycles = 300L
let malloc_bookkeeping_cycles = 120L
let free_cycles = 80L

let cost ~(costs : Costs.t) = function
  | Syscall { trap; _ } ->
      if trap then max costs.Costs.syscall trap_floor else costs.Costs.syscall
  | Entry_validation c -> Int64.of_int c
  | Toctou_setup -> toctou_setup_cycles
  | Copy_bytes n -> Costs.bytes_cost costs.Costs.copy_per_byte n
  | Toctou_bytes n -> Costs.bytes_cost costs.Costs.toctou_per_byte n
  | Context_switch -> costs.Costs.context_switch
  | Address_space_switch -> costs.Costs.address_space_switch
  | Page_fault | Demand_zero -> costs.Costs.page_fault
  | Soft_fault -> costs.Costs.soft_fault
  | Cow_write_fault | Copa_write_fault | Copa_cap_load_fault
  | Coa_access_fault ->
      0L
  | Fork_fixed -> costs.Costs.fork_fixed
  | Spawn -> Int64.div costs.Costs.fork_fixed 4L
  | Thread_create -> costs.Costs.thread_create
  | Exit -> costs.Costs.exit_fixed
  | Kill -> kill_cycles
  | Domain_create -> costs.Costs.domain_create
  | Pte_copy n -> Int64.mul costs.Costs.pte_copy (Int64.of_int n)
  | Pte_protect -> costs.Costs.pte_protect
  (* The flush batch closing a downgrade sequence: one IPI round-trip
     per remote core that may cache a stale entry. On one core ([n=0])
     the local invalidate is folded into the Pte_protect cost, as
     before; past that the window grows linearly with the machine —
     the term that eventually caps fork scaling. *)
  | Tlb_shootdown n -> Int64.mul costs.Costs.tlb_ipi (Int64.of_int (max 0 n))
  | Page_alloc n -> Int64.mul costs.Costs.page_alloc (Int64.of_int n)
  | Page_copy_eager n -> Int64.mul costs.Costs.page_copy (Int64.of_int n)
  | Page_copy_child | Page_copy_cow -> costs.Costs.page_copy
  | Claim_in_place | Cow_claim_in_place | Shm_share -> 0L
  | Granule_scan n -> Int64.mul costs.Costs.granule_scan (Int64.of_int n)
  | Cap_relocate n -> Int64.mul costs.Costs.cap_relocate (Int64.of_int n)
  | Toctou_revalidate n -> Int64.of_int (n / 2)
  | Malloc -> malloc_bookkeeping_cycles
  | Free -> free_cycles
  | File_op -> costs.Costs.file_op
  | Pipe_op -> costs.Costs.pipe_op
  | Shm_open | Map_library | Arena_pretouch _ -> 0L
  | Compute c -> c

let linear_unit ~(costs : Costs.t) event =
  match event with
  (* Byte-scaled costs round per emission (sum of roundings is not the
     rounding of the sum), so no per-key unit exists. *)
  | Copy_bytes _ | Toctou_bytes _ -> None
  (* The payload is the cost itself; different emissions under the same key
     legitimately differ. *)
  | Compute _ -> None
  (* Integer halving rounds per emission. *)
  | Toctou_revalidate _ -> None
  (* The payload scales with remote cores, not with the batch count. *)
  | Tlb_shootdown _ -> None
  | Page_alloc _ -> Some costs.Costs.page_alloc
  | Granule_scan _ -> Some costs.Costs.granule_scan
  | Cap_relocate _ -> Some costs.Costs.cap_relocate
  | Pte_copy _ -> Some costs.Costs.pte_copy
  | Page_copy_eager _ -> Some costs.Costs.page_copy
  | Arena_pretouch _ -> Some 0L
  | e -> Some (cost ~costs e)

(* Counter keys callers read back by name. Deriving them from [to_key]
   keeps the string in exactly one place. *)
let fault_key = to_key Page_fault
let pte_copy_key = to_key (Pte_copy 1)

let pp ppf e =
  match count e with
  | 1 -> Format.pp_print_string ppf (to_key e)
  | n -> Format.fprintf ppf "%s x%d" (to_key e) n

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json e =
  Printf.sprintf "{\"key\":\"%s\",\"n\":%d}" (json_escape (to_key e)) (count e)

let samples =
  [
    Syscall { name = "read"; trap = false };
    Entry_validation 60;
    Toctou_setup;
    Copy_bytes 4096;
    Toctou_bytes 4096;
    Context_switch;
    Address_space_switch;
    Page_fault;
    Soft_fault;
    Demand_zero;
    Cow_write_fault;
    Copa_write_fault;
    Copa_cap_load_fault;
    Coa_access_fault;
    Fork_fixed;
    Spawn;
    Thread_create;
    Exit;
    Kill;
    Domain_create;
    Pte_copy 1;
    Pte_protect;
    Tlb_shootdown 3;
    Page_alloc 1;
    Page_copy_eager 1;
    Page_copy_child;
    Page_copy_cow;
    Claim_in_place;
    Cow_claim_in_place;
    Shm_share;
    Granule_scan 256;
    Cap_relocate 31;
    Toctou_revalidate 10;
    Malloc;
    Free;
    File_op;
    Pipe_op;
    Shm_open;
    Map_library;
    Arena_pretouch 4;
    Compute 1000L;
  ]
