(** Log-bucketed latency histograms for span durations.

    Values are non-negative cycle counts. Bucket 0 holds exactly the
    value 0; bucket [i >= 1] holds the half-open power-of-two range
    [2^(i-1) .. 2^i - 1]. The bucket layout is fixed (65 buckets cover
    the whole non-negative [int64] range), so {!merge} is exact:
    bucket counts, [n], [sum], [min] and [max] all combine losslessly,
    making merge associative and commutative.

    Quantiles are bucket-resolved: {!quantile} returns the upper bound
    of the bucket holding the rank-[ceil(p*n)] value, clamped to the
    exact observed maximum — always inside the same bucket as the true
    (sort-based) quantile. *)

type t

val create : unit -> t

val record : t -> int64 -> unit
(** Add one value. Raises [Invalid_argument] on negative values. *)

val record_int : t -> int -> unit
(** {!record} for a native-int value: identical buckets and totals, but
    the bucket search stays unboxed — the per-span-close fast path. *)

val count : t -> int
val is_empty : t -> bool

val sum : t -> int64
val min_value : t -> int64
(** Exact observed minimum; [0L] when empty. *)

val max_value : t -> int64
(** Exact observed maximum; [0L] when empty. *)

val mean : t -> float
(** [0.] when empty. *)

val quantile : t -> float -> int64
(** [quantile t p] for [0. <= p <= 1.]. Rank is [max 1 (ceil (p * n))]
    (so [quantile t 1.] is the exact maximum and [quantile t 0.] the
    exact minimum); the result is the upper bound of the rank's bucket
    clamped to the observed max, hence always within the same bucket as
    the sort-based quantile of the recorded multiset. [0L] when empty.
    Raises [Invalid_argument] if [p] is outside [0, 1]. *)

val merge : t -> t -> t
(** Lossless combination of two histograms (fresh result; arguments are
    not mutated). Associative and commutative. *)

val bucket_bounds : int64 -> int64 * int64
(** [(lo, hi)] inclusive bounds of the bucket that would hold the given
    value. Raises [Invalid_argument] on negative values. *)

val to_buckets : t -> (int64 * int64 * int) list
(** Non-empty buckets, ascending: [(lo, hi, count)]. *)

val pp : Format.formatter -> t -> unit
(** One-line [n=... p50=... p90=... p99=... max=...] summary. *)
