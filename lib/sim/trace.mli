(** The per-machine mechanism-event bus.

    One [Trace.t] belongs to one simulated machine (engine + cost preset).
    Every mechanism event flows through {!emit}, which atomically

    + charges the event's simulated cycles via {!Engine.advance} (skipped,
      like the old boot-time charge path, when called outside an engine
      thread — e.g. initial image mapping or unit tests poking at a kernel
      directly);
    + bumps the event's counter in the derived {!Meter} view under
      {!Event.to_key} (by {!Event.count} units), keeping every existing
      benchmark reader working unchanged;
    + when recording is on, appends a timestamped
      [{t; core; tid; pid; event}] record to a bounded ring buffer that
      exports as JSONL or Chrome [about:tracing] JSON.

    Because charging and counting share one code path, the accounting
    invariant is checkable: {!audit} asserts that the engine's total busy
    cycles equal the sum of cycles charged through the bus — no hidden
    constants — and re-derives each fixed-cost counter's cycle total from
    the preset. *)

type t

val create :
  engine:Engine.t -> costs:Costs.t -> ?ring_capacity:int -> unit -> t
(** [ring_capacity] bounds the record buffer (default 65536); when it
    overflows, the oldest records are dropped and {!dropped} counts them.
    Recording starts disabled — counting and charging are always on. *)

val engine : t -> Engine.t
val costs : t -> Costs.t

val meter : t -> Meter.t
(** The derived counter view. Treat as read-only: all writes should come
    from {!emit} (or {!gauge}); poking it directly bypasses charging and
    will trip {!audit}. *)

val emit : t -> ?pid:int -> Event.t -> unit
(** Charge + count + record one event. [pid] defaults to [-1] (no process
    context). For [Event.Syscall] the aggregate ["syscall"] counter is
    bumped alongside the per-name key. *)

val gauge : t -> string -> int -> unit
(** Overwrite a "last observed value" gauge in the derived view (e.g.
    {!last_fork_latency_key}). Gauges carry no cycles and are exempt
    from {!audit}. *)

val last_fork_latency_key : string
(** The gauge every fork hook sets to the cycles spent inside the most
    recent fork call. *)

val last_fork_latency : t -> int64
(** Typed read of that gauge (0 before the first fork). *)

val total_charged : t -> int64
(** Simulated cycles charged through this bus since creation/{!reset}. *)

val set_recording : t -> bool -> unit
val recording : t -> bool

type record = {
  t : int64;  (** Simulated time at emission, cycles. *)
  core : int;  (** Executing core, [-1] outside an engine thread. *)
  tid : int;  (** Engine thread id, [-1] outside an engine thread. *)
  name : string;  (** Engine thread name, [""] outside an engine thread. *)
  pid : int;  (** μprocess id, [-1] when not applicable. *)
  event : Event.t;
  cycles : int64;  (** Cycles this emission charged. *)
}

val records : t -> record list
(** Buffered records, oldest first. *)

val dropped : t -> int
(** Records evicted by ring overflow since creation/{!reset}. *)

val reset : t -> unit
(** Zero all counters and aggregates and clear the ring. The key registry
    of the derived view survives (see {!Meter.reset}). *)

val record_to_json : record -> string
(** One JSONL line (no trailing newline):
    [{"t":..,"core":..,"tid":..,"name":..,"pid":..,"event":{..},"cycles":..}]. *)

val to_jsonl_string : t -> string
(** All buffered records, one JSON object per line. *)

val chrome_of_records : record list -> string
(** Chrome trace-event JSON ([about:tracing] / Perfetto): one complete
    ("ph":"X") event per record, timestamps in microseconds at the
    simulated 2.5 GHz clock. Lanes are simulated threads (Chrome "tid" =
    engine tid), labelled with their thread names via "thread_name"
    metadata events; the executing core rides along in [args]. *)

exception Audit_failure of string

val audit : t -> costs:Costs.t -> elapsed:int64 -> unit
(** Assert the accounting invariant, with zero tolerance:

    - [elapsed] (pass {!Engine.advanced}, the engine's lifetime busy
      cycles) equals {!total_charged} — every advanced cycle was a traced
      event and every traced event's cycles reached the engine;
    - for each counter key whose events have a preset-derivable unit cost
      ({!Event.linear_unit}), the cycles charged under that key equal
      [charged units * unit] recomputed from [costs].

    Raises {!Audit_failure} naming the discrepancy otherwise. *)
