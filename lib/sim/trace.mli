(** The per-machine mechanism-event bus.

    One [Trace.t] belongs to one simulated machine (engine + cost preset).
    Every mechanism event flows through {!emit}, which atomically

    + charges the event's simulated cycles via {!Engine.advance} (skipped,
      like the old boot-time charge path, when called outside an engine
      thread — e.g. initial image mapping or unit tests poking at a kernel
      directly);
    + bumps the event's counter in the derived {!Meter} view under
      {!Event.to_key} (by {!Event.count} units), keeping every existing
      benchmark reader working unchanged;
    + when recording is on, appends a timestamped
      [{t; core; tid; pid; event}] record to a bounded ring buffer that
      exports as JSONL or Chrome [about:tracing] JSON.

    Because charging and counting share one code path, the accounting
    invariant is checkable: {!audit} asserts that the engine's total busy
    cycles equal the sum of cycles charged through the bus — no hidden
    constants — and re-derives each fixed-cost counter's cycle total from
    the preset. *)

type t

val create :
  engine:Engine.t -> costs:Costs.t -> ?ring_capacity:int -> unit -> t
(** [ring_capacity] bounds the record buffer (default 65536); when it
    overflows, the oldest records are dropped and {!dropped} counts them.
    Recording starts disabled — counting and charging are always on. *)

val engine : t -> Engine.t
val costs : t -> Costs.t

val meter : t -> Meter.t
(** The derived counter view. Treat as read-only: all writes should come
    from {!emit} (or {!gauge}); poking it directly bypasses charging and
    will trip {!audit}. *)

val emit : t -> ?pid:int -> Event.t -> unit
(** Charge + count + record one event. [pid] defaults to [-1] (no process
    context). For [Event.Syscall] the aggregate ["syscall"] counter is
    bumped alongside the per-name key. *)

val gauge : t -> string -> int -> unit
(** Overwrite a "last observed value" gauge in the derived view (e.g.
    {!last_fork_latency_key}). Gauges carry no cycles and are exempt
    from {!audit}. *)

val with_span : t -> name:string -> (unit -> 'a) -> 'a
(** [with_span t ~name f] runs [f] inside a named span on the current
    engine thread's span stack. Every cycle charged by {!emit} while the
    span is innermost is attributed to its {i self} time; nested spans
    accumulate into the parent's {i total} on close. Spans charge no
    cycles and bump no counters — they are pure attribution. Aggregation
    is by full stack path (outermost-first, [;]-joined in exports), and
    each completed instance's total is recorded into a per-[name]
    {!Histogram}. Exception- and effect-safe: the span closes when [f]
    returns or raises; a fiber suspension keeps it open (the thread's
    stack is keyed by engine tid). Cycles charged with no open span land
    under the ["(unattributed)"] pseudo-span, so attribution is a
    partition of {!total_charged} — {!audit} enforces the identity. *)

type span_total = {
  span_path : string list;  (** Stack path, outermost-first. *)
  span_self : int64;  (** Cycles charged while innermost (incl. open). *)
  span_cycles : int64;  (** Self + descendants, closed instances only. *)
  span_count : int;  (** Closed instances. *)
}

val span_totals : t -> span_total list
(** Per-path aggregates, sorted by path. *)

val folded_stacks : t -> string
(** Folded-stack flamegraph text: one [a;b;c self-cycles] line per stack
    path with nonzero self time, sorted — ready for
    [flamegraph.pl]/[inferno]. *)

val span_histograms : t -> (string * Histogram.t) list
(** Completed-instance duration histograms, one per span {i name}
    (across all stack positions), sorted by name. *)

val span_histogram : t -> string -> Histogram.t option
(** The duration histogram for one span name, if any instance closed. *)

val set_sampler : t -> interval:int64 -> (unit -> (string * int) list) -> unit
(** Register a virtual-time gauge sampler: the first {!emit} at or after
    each [interval]-cycle boundary calls the callback and snapshots the
    returned [(gauge, value)] pairs. Sampling rides on emission (a
    periodic thread would keep the engine from going quiescent), so
    sample spacing is at least [interval] but lands on the next emission
    after each boundary. The callback must not call {!emit} (re-entry is
    ignored). Raises [Invalid_argument] if [interval <= 0]. *)

val samples : t -> (int64 * (string * int) list) list
(** Snapshots, oldest first: [(cycles, gauges)]. *)

val samples_csv : t -> string
(** Time-series CSV: header [cycles,<gauge>,...] (gauge columns sorted,
    union over all snapshots), one row per snapshot, missing gauges 0. *)

val to_prometheus_string : t -> string
(** Prometheus text exposition: total charged cycles, dropped-record
    count, every meter counter ([ufork_meter{key="..."}]), per-path span
    self cycles, and per-name span-duration histograms with cumulative
    log2 buckets. *)

val last_fork_latency_key : string
(** The gauge every fork hook sets to the cycles spent inside the most
    recent fork call. *)

val frames_in_use_key : string
(** Sampler gauge: physical frames currently allocated. *)

val cow_pending_pages_key : string
(** Sampler gauge: pages still awaiting copy-on-write resolution. *)

val rss_bytes_key : image:string -> pid:int -> string
(** Sampler gauge key for one process's private bytes; the single
    constructor keeps the [rss_bytes.<image>.<pid>] namespace in one
    place. *)

val last_fork_latency : t -> int64
(** Typed read of that gauge (0 before the first fork). *)

val total_charged : t -> int64
(** Simulated cycles charged through this bus since creation/{!reset}. *)

val emits : t -> int
(** Lifetime count of {!emit} calls — host-side work, not simulated
    units, so the bench harness can report simulated-events/s against
    wall-clock. Monotone: unlike the counters, {b not} cleared by
    {!reset}. *)

val set_recording : t -> bool -> unit
val recording : t -> bool

type record = {
  t : int64;  (** Simulated time at emission, cycles. *)
  core : int;  (** Executing core, [-1] outside an engine thread. *)
  tid : int;  (** Engine thread id, [-1] outside an engine thread. *)
  name : string;  (** Engine thread name, [""] outside an engine thread. *)
  pid : int;  (** μprocess id, [-1] when not applicable. *)
  event : Event.t;
  cycles : int64;  (** Cycles this emission charged. *)
}

val records : t -> record list
(** Buffered records, oldest first. *)

val dropped : t -> int
(** Records evicted by ring overflow since creation/{!reset}. *)

val reset : t -> unit
(** Zero all counters and aggregates, clear the ring, drop span
    aggregates/histograms/samples, and re-arm the sampler from the
    current simulated time. The key registry of the derived view
    survives (see {!Meter.reset}). Do not call with spans still open. *)

val record_to_json : record -> string
(** One JSONL line (no trailing newline):
    [{"t":..,"core":..,"tid":..,"name":..,"pid":..,"event":{..},"cycles":..}]. *)

val to_jsonl_string : t -> string
(** A header line [{"header":{"records":..,"dropped":..}}] — so ring
    overflow is visible in the artifact itself — followed by all
    buffered records, one JSON object per line. *)

val chrome_of_records : record list -> string
(** Chrome trace-event JSON ([about:tracing] / Perfetto): one complete
    ("ph":"X") event per record, timestamps in microseconds at the
    simulated 2.5 GHz clock. Lanes are simulated threads (Chrome "tid" =
    engine tid), labelled with their thread names via "thread_name"
    metadata events; the executing core rides along in [args]. *)

exception Audit_failure of string

val audit : t -> costs:Costs.t -> elapsed:int64 -> unit
(** Assert the accounting invariant, with zero tolerance:

    - [elapsed] (pass {!Engine.advanced}, the engine's lifetime busy
      cycles) equals {!total_charged} — every advanced cycle was a traced
      event and every traced event's cycles reached the engine;
    - the span self-cycle sums ({!span_totals}, including the
      ["(unattributed)"] pseudo-span) partition {!total_charged}: their
      sum equals it exactly;
    - for each counter key whose events have a preset-derivable unit cost
      ({!Event.linear_unit}), the cycles charged under that key equal
      [charged units * unit] recomputed from [costs].

    Raises {!Audit_failure} naming the discrepancy otherwise. *)
