(** Deterministic discrete-event simulation engine with green threads.

    Models the evaluation machine of the paper: an ARM Morello development
    system with 4 cores at 2.5 GHz. Simulated computations are green
    threads (OCaml 5 effect handlers); a thread occupies one core while it
    runs and consumes simulated time only through {!advance}. Threads that
    {!yield}, {!sleep}, or block on {!Cond}/{!Lock} free their core, so
    I/O-overlap and lock-serialization behaviour (e.g. Unikraft's big
    kernel lock, Nginx workers yielding during network waits) emerge
    naturally.

    Scheduling is non-preemptive and deterministic, with per-core run
    queues: a ready thread is enqueued on its affinity core when pinned,
    otherwise on the core it last ran on (its home; initially tid mod
    cores). Dispatch runs ready entries globally oldest first (a global
    ready-sequence stamp preserves single-FIFO semantics across the
    queues); the entry runs on its own queue's core when idle, else on
    the first idle core scanning upward from it — a steal that migrates
    and re-homes the thread. A pinned entry whose core is busy is
    skipped, never migrated. Both choices are functions of queue
    contents and core ids alone, so for a given seed and core count the
    schedule (and every trace derived from it) is bit-reproducible. *)

type t
type tid = int

val create : ?cores:int -> unit -> t
(** Default 4 cores; up to 1024 ([Invalid_argument] beyond — the SMP
    scaling study sweeps to 128). *)

val cores : t -> int

val steals : t -> int
(** Number of cross-queue work steals performed so far: an idle core
    running an entry homed on another core's queue. *)

val running_tid : t -> tid
(** The simulated thread currently executing host code on this engine,
    or [-1] when none is (boot code, the run loop between events). A
    plain field read — no effect dispatch — mirroring {!current_tid};
    this is what {!Trace.emit}'s fast path keys charging on. Maintained
    with save/restore around every resume, so nested execution (a
    running thread whose [wake] dispatches another thread onto an idle
    core) unwinds correctly. *)

val running_core : t -> int
(** Core occupied by the running thread, or [-1]; mirrors
    {!current_core} the same way. *)

val running_name : t -> string
(** Name of the running thread, or [""]; mirrors {!current_name}. *)


val now : t -> int64
(** Current simulated time in cycles. *)

val advanced : t -> int64
(** Total busy cycles ever consumed through {!advance}, summed across
    cores — unlike {!now}, unaffected by idle gaps or multi-core overlap.
    Counted when the advance is scheduled, so an advance truncated by
    [run ~until] is still included. This is the [elapsed] side of
    {!Trace.audit}. *)

val spawn : ?name:string -> ?affinity:int -> t -> (unit -> unit) -> tid
(** Register a new thread, runnable immediately. [affinity] pins it to one
    core. Threads may spawn further threads. *)

val run : ?until:int64 -> t -> unit
(** Process events until none remain (system quiescent: all threads
    finished or blocked) or simulated time would exceed [until]. When
    stopped by [until], [now] is set to [until]. *)

val live_threads : t -> int
(** Threads spawned and not yet finished (includes blocked ones). *)

val blocked_threads : t -> int
(** Threads currently suspended on a waker. *)

(** {1 Operations available inside a thread}

    These perform effects and must be called from code running under
    {!spawn}; calling them elsewhere raises [Stdlib.Effect.Unhandled]. *)

val advance : int64 -> unit
(** Consume CPU: occupy the current core for the given number of cycles. *)

val advance_direct : t -> int64 -> bool
(** Try to consume [n] cycles for the running thread without performing
    the {!advance} effect: succeeds (returns [true], time passed, core
    still held) exactly when nothing — no ready thread, no heap event at
    or before the target, no [run ~until] deadline, no concurrently
    resumed thread — could observe the difference from the scheduled
    path. Returns [false] without side effects otherwise; the caller
    must then perform {!advance}. This is {!Trace.emit}'s charging fast
    path: on single-runnable-thread stretches it reduces charging to a
    few field writes. *)

val yield : unit -> unit
(** Go to the back of the ready queue (models sched_yield / cooperative
    scheduling points). *)

val sleep : int64 -> unit
(** Release the core and become runnable again after the given delay. *)

val current_time : unit -> int64
val current_tid : unit -> tid
val current_core : unit -> int

val current_name : unit -> string
(** The current thread's name ([spawn]'s [?name], or ["t<tid>"] when none
    was given). Trace records carry it so exports can label lanes. *)

type waker
(** One-shot handle that makes a suspended thread runnable again. *)

val suspend : (waker -> unit) -> unit
(** Suspend the current thread, releasing its core. The callback receives
    the waker and typically stores it in a wait queue. Invoking the waker
    twice raises [Invalid_argument]. *)

val wake : waker -> unit
(** Make the suspended thread runnable at the current simulated time. *)

val waker_pending : waker -> bool
(** True until the waker has been used. Lets wait queues skip entries that
    were woken out of band (e.g. by signal delivery). *)

val waker_tid : waker -> tid
(** Tid of the thread a pending waker would resume, or [-1] once used.
    Lets lock release publish the handoff target on the Hb bus. *)
