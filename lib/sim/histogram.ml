(* Fixed log2 bucket layout: bucket 0 = {0}, bucket i>=1 = [2^(i-1),
   2^i - 1]. 65 buckets cover every non-negative int64, so two
   histograms always share a layout and merge is exact. *)

let buckets = 65

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : int64;
  mutable vmin : int64;
  mutable vmax : int64;
}

let create () =
  { counts = Array.make buckets 0; n = 0; sum = 0L; vmin = 0L; vmax = 0L }

let index_of v =
  if Int64.compare v 0L < 0 then
    invalid_arg "Histogram: negative value"
  else
    let rec bits acc v =
      if v = 0L then acc else bits (acc + 1) (Int64.shift_right_logical v 1)
    in
    bits 0 v

let bounds_of_index i =
  if i = 0 then (0L, 0L)
  else
    let lo = Int64.shift_left 1L (i - 1) in
    let hi =
      if i >= 64 then Int64.max_int else Int64.sub (Int64.shift_left 1L i) 1L
    in
    (lo, hi)

let bucket_bounds v = bounds_of_index (index_of v)

let record t v =
  let i = index_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.sum <- Int64.add t.sum v;
  if t.n = 0 then begin
    t.vmin <- v;
    t.vmax <- v
  end
  else begin
    if Int64.compare v t.vmin < 0 then t.vmin <- v;
    if Int64.compare v t.vmax > 0 then t.vmax <- v
  end;
  t.n <- t.n + 1

(* Same layout as {!record} but the bucket search runs on the native
   int, so the per-record cost is branch-and-shift with no intermediate
   boxing — the span hot path records one value per closed span. *)
let record_int t v =
  if v < 0 then invalid_arg "Histogram: negative value";
  let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
  let i = bits 0 v in
  t.counts.(i) <- t.counts.(i) + 1;
  let v = Int64.of_int v in
  t.sum <- Int64.add t.sum v;
  if t.n = 0 then begin
    t.vmin <- v;
    t.vmax <- v
  end
  else begin
    if Int64.compare v t.vmin < 0 then t.vmin <- v;
    if Int64.compare v t.vmax > 0 then t.vmax <- v
  end;
  t.n <- t.n + 1

let count t = t.n
let is_empty t = t.n = 0
let sum t = t.sum
let min_value t = if t.n = 0 then 0L else t.vmin
let max_value t = if t.n = 0 then 0L else t.vmax
let mean t = if t.n = 0 then 0. else Int64.to_float t.sum /. float_of_int t.n

let quantile t p =
  if p < 0. || p > 1. then invalid_arg "Histogram.quantile: p outside [0,1]";
  if t.n = 0 then 0L
  else begin
    let rank = max 1 (min t.n (int_of_float (ceil (p *. float_of_int t.n)))) in
    let cum = ref 0 and idx = ref (-1) in
    (try
       for i = 0 to buckets - 1 do
         cum := !cum + t.counts.(i);
         if !cum >= rank then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    let _, hi = bounds_of_index !idx in
    let v = if Int64.compare hi t.vmax > 0 then t.vmax else hi in
    if Int64.compare v t.vmin < 0 then t.vmin else v
  end

let merge a b =
  let t = create () in
  for i = 0 to buckets - 1 do
    t.counts.(i) <- a.counts.(i) + b.counts.(i)
  done;
  t.n <- a.n + b.n;
  t.sum <- Int64.add a.sum b.sum;
  (match (a.n, b.n) with
  | 0, 0 -> ()
  | _, 0 ->
      t.vmin <- a.vmin;
      t.vmax <- a.vmax
  | 0, _ ->
      t.vmin <- b.vmin;
      t.vmax <- b.vmax
  | _ ->
      t.vmin <- (if Int64.compare a.vmin b.vmin <= 0 then a.vmin else b.vmin);
      t.vmax <- (if Int64.compare a.vmax b.vmax >= 0 then a.vmax else b.vmax));
  t

let to_buckets t =
  let acc = ref [] in
  for i = buckets - 1 downto 0 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bounds_of_index i in
      acc := (lo, hi, t.counts.(i)) :: !acc
    end
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "n=%d p50=%Ld p90=%Ld p99=%Ld max=%Ld" t.n
    (quantile t 0.5) (quantile t 0.9) (quantile t 0.99) (max_value t)
