(** Cycle-cost model of the simulated machines.

    Every latency the benchmark harness reports is the sum of counted
    mechanism events multiplied by the per-event costs below. The constants
    are calibrated once, globally, against the paper's Morello measurements
    (§5, 2.5 GHz): hello-world fork latency (54 μs μFork / 197 μs CheriBSD /
    10.7 ms Nephele), Unixbench Context1 round trips (2.45 μs vs 4.19 μs per
    iteration), the 23.2 ms full synchronous copy of a 144 MB footprint, and
    the Redis save-time slopes. The same preset is used by {e all}
    experiments of a given system — there is no per-figure tuning — so
    crossovers and scaling trends are genuine predictions. *)

type t = {
  label : string;
  (* Privilege and scheduling transitions. *)
  syscall : int64;
      (** Round-trip user↔kernel entry cost. μFork: sealed-capability call,
          no exception (§4.4); monolithic: includes the trap. *)
  context_switch : int64;
      (** Thread/process switch. Monolithic adds the address-space switch
          below on cross-process switches. *)
  address_space_switch : int64;
      (** Page-table switch + TLB flush; zero in a single address space. *)
  page_fault : int64;  (** Fault delivery + handler entry/exit. *)
  soft_fault : int64;
      (** Monolithic demand-mapping fault: the page is resident but the
          child pmap entry is absent after fork (first touch). Zero for
          μFork, which copies PTEs eagerly. *)
  (* fork machinery. *)
  fork_fixed : int64;
      (** Process bookkeeping: proc/μproc struct, fd-table duplication, PID
          allocation, scheduler registration. *)
  thread_create : int64;
  exit_fixed : int64;  (** Process teardown + parent wakeup. *)
  pte_copy : int64;  (** Copy/install one page-table entry at fork. *)
  pte_protect : int64;  (** Permission change of one PTE. *)
  tlb_ipi : int64;
      (** One cross-core IPI round-trip of a TLB shootdown: interrupt a
          remote core, invalidate, acknowledge. A shootdown batch charges
          this once per remote core ({!Ufork_sim.Event.t.Tlb_shootdown});
          the linear-in-cores term that eventually caps fork scaling. *)
  page_alloc : int64;
  page_copy : int64;  (** memcpy of one 4 KiB page. *)
  granule_scan : int64;
      (** Inspect one 16-byte granule's tag during μFork's relocation scan
          (256 per page). *)
  cap_relocate : int64;  (** Rebase one tagged capability (§4.2). *)
  domain_create : int64;
      (** VM-clone fixed cost: new Xen-like domain, event channels, device
          re-plumbing (Nephele). Zero elsewhere. *)
  (* Data movement and I/O. *)
  copy_per_byte : float;
      (** User↔kernel buffer copy (read/write/pipe payloads). Higher on the
          monolithic baseline (double copy through the page cache). *)
  toctou_per_byte : float;
      (** Extra copy of referenced syscall buffers when TOCTTOU protection
          is enabled (§4.4); charged on top of [copy_per_byte]. *)
  file_op : int64;  (** open/close/stat/rename on the ramdisk VFS. *)
  pipe_op : int64;  (** Per pipe read/write beyond byte costs. *)
}

val ufork : t
(** Unikraft + μFork on Morello (run under bhyve, as in the paper). *)

val cheribsd : t
(** CheriBSD 23.11 pure-capability monolithic kernel, bare metal. *)

val nephele : t
(** Nephele VM cloning (numbers from the Nephele paper replayed, §5). *)

val linux_ref : t
(** A reference aarch64 Linux point, used only for the context row of
    Fig. 5 (7 MB forked-Redis RSS). *)

val pp : Format.formatter -> t -> unit

val bytes_cost : float -> int -> int64
(** [bytes_cost per_byte n] is [per_byte * n] rounded, as cycles. *)
