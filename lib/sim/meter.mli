(** Named event counters.

    Every mechanism event in the kernels (pages copied, capabilities
    relocated, traps taken, …) increments a meter; the benchmark harness
    reads them to report and to cross-check that latencies are explained by
    counted work rather than hidden constants. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** Register [name] (idempotent) and return its dense id. Ids are
    assigned in first-touch order, are stable for the meter's lifetime
    (including across {!reset}), and index the flat count array the
    [_id] entry points below address. Hot emission paths intern their
    keys once up front and bump by id — no hashing, no allocation per
    event. *)

val name : t -> int -> string
(** The key a previously interned id registers under. *)

val incr_id : t -> int -> unit
val add_id : t -> int -> int -> unit
val set_id : t -> int -> int -> unit

val get_id : t -> int -> int
(** By-id counterparts of {!incr}/{!add}/{!set}/{!get}; the id must come
    from {!intern} on the same meter. *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
(** 0 when never incremented. *)

val reset : t -> unit
(** Zero every counter without discarding the key registry: keys touched
    before the reset (including gauges set via {!set}) remain in
    {!to_list} with value 0, so back-to-back experiments report identical
    key sets. *)

val to_list : t -> (string * int) list
(** Sorted by name. *)

val pp : Format.formatter -> t -> unit

val set : t -> string -> int -> unit
(** Overwrite a counter (used for "last observed value" gauges). *)
