(** Named event counters.

    Every mechanism event in the kernels (pages copied, capabilities
    relocated, traps taken, …) increments a meter; the benchmark harness
    reads them to report and to cross-check that latencies are explained by
    counted work rather than hidden constants. *)

type t

val create : unit -> t
val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
(** 0 when never incremented. *)

val reset : t -> unit
(** Zero every counter without discarding the key registry: keys touched
    before the reset (including gauges set via {!set}) remain in
    {!to_list} with value 0, so back-to-back experiments report identical
    key sets. *)

val to_list : t -> (string * int) list
(** Sorted by name. *)

val pp : Format.formatter -> t -> unit

val set : t -> string -> int -> unit
(** Overwrite a counter (used for "last observed value" gauges). *)
