(** Deterministic keyspaces and values for the Redis experiments.

    The paper populates the database "with different amounts of 100 KB
    entries" (§5.1); [populate] reproduces that, with values filled by a
    cheap deterministic pattern (content does not affect timing, only
    bytes moved — and the dump checker verifies it round-trips). *)

val key : int -> string
(** ["key:%08d"]. *)

val value : seed:int64 -> index:int -> len:int -> bytes
(** Deterministic pseudo-random-looking payload: a 64-byte block derived
    from (seed, index) tiled to [len]. *)

val populate :
  Ufork_apps.Kvstore.t -> entries:int -> value_len:int -> seed:int64 -> unit

val expected_entries :
  entries:int -> value_len:int -> seed:int64 -> (string * bytes) list
(** What a dump of the populated store must contain (sorted by key). *)

val db_sizes_of_paper : (string * int * int) list
(** Fig. 3–5 sweep: (label, entries, value_len) from 100 KB to 100 MB of
    100 KB entries. *)

val db_sizes_extended : (string * int * int) list
(** {!db_sizes_of_paper} plus a 1 GB point. Affordable since fork-time
    page-range work charges one batched trace record per region instead
    of ~25k singletons per 100 MB. *)
