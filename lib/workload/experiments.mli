(** Drivers for every experiment in the paper's evaluation (§5).

    Each function boots the systems involved, runs the workload inside the
    simulation, and returns structured rows. They are shared by the
    benchmark harness ([bench/main.exe]), the CLI ([bin/ufork_sim.exe])
    and the integration tests. All runs are deterministic. *)

(** Which OS serves the workload. *)
type system =
  | Ufork of Ufork_core.Strategy.t
  | Ufork_toctou of Ufork_core.Strategy.t  (** full isolation + TOCTTOU *)
  | Cheribsd
  | Nephele
  | Linux_ref

val system_label : system -> string

(** {1 Harness-wide run options} *)

val set_default_cores : int option -> unit
(** Override the core count every subsequent experiment boots with
    ([None] restores each experiment's own default). Set once from the
    front end's [--cores] flag. *)

(** Trace sink encoding: one JSON record per line, or a Chrome
    [about:tracing] / Perfetto trace-event file. *)
type trace_format = Jsonl | Chrome

val set_trace_out : ?format:trace_format -> string option -> unit
(** Direct every subsequent experiment to record its mechanism events and
    write them to the given file (all machines booted since the sink was
    set, oldest first; rewritten after each run). [None] disables
    tracing. Default format: [Jsonl]. *)

val set_record_always : bool -> unit
(** Record mechanism events on every machine booted from now on even
    without a trace sink, so the protocol linter
    ({!Ufork_analysis.Lint}) has a stream to check. Used by the [check]
    front end. *)

val traced_dropped : unit -> int
(** Total records evicted by ring overflow across every trace registered
    on the current sink — nonzero means the written file is truncated
    (oldest records first). *)

val write_artifact : string -> (out_channel -> unit) -> unit
(** Write one output artifact via {!Ufork_util.Fsout.with_out}: missing
    parent directories are created, and a filesystem failure prints a
    clean one-line error and exits 1 — no backtrace. Shared by the trace
    and profile sinks here and the CLI/bench front ends. *)

(** {1 Profiling options} *)

val set_profile_out : string option -> unit
(** Write the folded-stack flamegraph text of every subsequent
    experiment's machines to the given file (rewritten after each run,
    like the trace sink). [None] disables. *)

val set_collect_profiles : bool -> unit
(** Keep every subsequently booted machine's trace reachable through
    {!profiled_traces} — no file output — so a front end can read span
    totals, histograms and samples back after the run. *)

val profiled_traces : unit -> Ufork_sim.Trace.t list
(** Machines booted since a profile consumer was armed, oldest first. *)

val set_sample_interval : int64 option -> unit
(** Enable virtual-time stat sampling (see
    {!Ufork_sas.Kernel.enable_stat_sampling}) with the given cycle
    interval on every machine booted from now on. [None] disables for
    subsequent boots. *)

(** {1 Race and lock-order detection} *)

val set_race_detect : bool -> unit
(** Arm the happens-before race detector ({!Ufork_analysis.Race}) on
    every machine booted from now on; the end-of-run check raises
    {!Ufork_analysis.Checker.Unsafe} with R1 violations if any
    conflicting unordered writes were observed. *)

val set_lockdep_detect : bool -> unit
(** Arm the lock-acquisition-order checker ({!Ufork_analysis.Lockdep})
    on every machine booted from now on; the end-of-run check raises
    {!Ufork_analysis.Checker.Unsafe} with R2 violations if the runtime
    acquisition graph grew a cycle or a pt-shard pair was nested in
    descending index order. Composes with {!set_race_detect}: one bus
    subscriber dispatches to both. *)

val set_chaos_no_bkl : bool -> unit
(** Fault injection for the race detector: boot every subsequent machine
    with the big kernel lock chaos-disabled and spawn one rogue thread
    that performs a deliberate unlocked write to shared state mid-run.
    Meaningful together with {!set_race_detect}, which must then flag
    R1. *)

val set_chaos_unshard : bool -> unit
(** Fault injection for the sharded-lock regime: boot every subsequent
    machine with exactly one sharded lock (the stats shard guarding the
    fork-latency gauge) chaos-disabled
    ({!Ufork_sas.Kernel.chaos_unshard_stats}). No rogue write is seeded:
    under a concurrent-fork workload ({!fork_storm_run}) the legitimate
    fork-path gauge writes themselves lose their ordering edge, so with
    {!set_race_detect} the check must fail with exactly the one R1 on
    the gauge — certifying that the stats shard, and not an accident of
    scheduling, is what orders them. *)

val set_chaos_invert_shard_order : bool -> unit
(** Fault injection for the lock-order checker: every subsequent boot
    spawns one rogue thread that acquires a page-table shard pair in
    descending index order
    ({!Ufork_sas.Kernel.chaos_acquire_shards_descending}). With
    {!set_lockdep_detect} the run must fail with exactly R2. No-op
    under the big-kernel-lock regime (no shards to invert). *)

(** {1 Causal tracing} *)

val set_causal_trace : bool -> unit
(** Arm the causal collector ({!Ufork_analysis.Causal}) on every machine
    booted from now on; read it back with {!causal_graph} after the run
    for critical-path analysis. Composes with the detectors above over
    the one bus subscription. *)

val causal_graph : unit -> Ufork_analysis.Causal.t option
(** The collector armed at the most recent {!boot}, if any. *)

val set_chaos_stall_shard : bool -> unit
(** Fault injection for the causal analyzer: every subsequent boot
    spawns one rogue thread that holds page-table shard 0 across a long
    sleep ({!Ufork_sas.Kernel.chaos_stall_shard}). Under a concurrent
    fork workload with {!set_causal_trace}, the analysis must find a
    dominant wait edge on the critical path and fail with R3 — the
    reported lock may be downstream of the injected shard (the stall
    convoys every forker onto the process-table lock). No-op when the
    kernel is not sharded. *)

(** {1 Capability-provenance (capflow) checking} *)

val set_capflow_detect : bool -> unit
(** Arm the R4 taint machinery on every machine booted from now on: the
    {!Ufork_analysis.Capflow} stream detector on the bus subscription, a
    fork-completion scan of every child's pages (through
    {!Ufork_core.Fork_spine.fork_probe}), and the provenance clause of
    {!Ufork_analysis.Checker.sweep}. A run that let authority leak
    across fork fails with exactly R4. *)

val set_chaos_skip_rebase : bool -> unit
(** Fault injection for capflow: the next fork silently skips the rebase
    of one capability ({!Ufork_core.Relocate.chaos_skip_rebase}),
    leaving a parent-provenance capability in the child's pages. With
    {!set_capflow_detect} the run must fail with exactly R4 at the fork
    window's closing edge. *)

val set_chaos_heap_smuggle : bool -> unit
(** Fault injection for capflow: the next fork carries one parent
    capability across in an OCaml-heap cell — invisible to §4.2's tag
    scan and discharged from the static rule D13 — and raw-stores it
    into the child's meta page
    ({!Ufork_core.Fork_spine.chaos_heap_smuggle}). Only the runtime side
    can catch it: with {!set_capflow_detect} the run must fail with
    exactly R4. *)

val set_chaos_leak_root : bool -> unit
(** Fault injection for capflow: a rogue boot thread hands the kernel's
    root capability to the first running μprocess
    ({!Ufork_sas.Kernel.chaos_leak_root}). With {!set_capflow_detect}
    the run must fail with exactly R4 (root provenance reachable from
    user pages). *)

(** {1 Domain-parallel sweeps} *)

val parmap : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parmap ~jobs f items] maps [f] over [items] from up to [jobs]
    OCaml domains, returning results in item order. Every experiment
    machine is self-contained, so each point's result is bit-identical
    to what the serial [List.map] produces — the qcheck suite pins this
    property; a raising point re-raises deterministically (first failure
    in item order). Degrades to serial when [jobs <= 1] and, silently,
    whenever a harness option that funnels per-run state through the
    process-global registries is armed (trace/profile sinks,
    [record_always], sampling, detectors, chaos modes). *)

val reset_emits : unit -> unit
(** Zero the cross-run emitted-events accumulator below. *)

val emits_total : unit -> int
(** Mechanism events emitted by every machine finished (via the
    end-of-run audit) since the last {!reset_emits}, summed across
    domains — the numerator of the events bench's simulated-events per
    host-second metric. *)

(** {1 Accounting audit and state sanitizer}

    Every experiment run checks {!Ufork_sim.Trace.audit} before returning:
    the engine's busy cycles must equal the cycles charged through the
    event bus, with zero tolerance. A failure raises
    {!Ufork_sim.Trace.Audit_failure}.

    Alongside the audit, every run ends with
    {!Ufork_analysis.Checker.assert_safe}: the machine-state sanitizer
    sweeps frames, page tables, stored capabilities and the process
    table (invariants S1–S10), and — when recording is on — the
    protocol linter replays the event stream (L1–L5). A violation
    raises {!Ufork_analysis.Checker.Unsafe} with the full report. *)

(** {1 Redis (Fig. 3, 4, 5)} *)

type redis_row = {
  system : system;
  db_label : string;
  db_bytes : int;
  entries : int;
  save_ms : float;  (** Fig. 3: overall background-save time. *)
  fork_us : float;  (** Fig. 4: latency of the fork call itself. *)
  child_mb : float;  (** Fig. 5: memory attributable to the forked child. *)
  dump_ok : bool;  (** The dump parsed back and matched the keyspace. *)
}

val redis_run :
  system -> entries:int -> value_len:int -> db_label:string -> redis_row
(** Populate, BGSAVE, verify the dump against the expected keyspace. *)

val redis_sweep :
  systems:system list ->
  ?sizes:(string * int * int) list ->
  ?jobs:int ->
  unit ->
  redis_row list
(** Default sizes: {!Keyspace.db_sizes_of_paper}. [jobs] fans the
    (system, size) points out via {!parmap} (default 1: serial). *)

(** {1 FaaS (Fig. 6)} *)

type faas_row = {
  system : system;
  worker_cores : int;
  throughput_per_s : float;
  completed : int;
}

val faas_run : system -> worker_cores:int -> ?window_s:float -> unit -> faas_row
(** Default window: 1 simulated second (rates are per second either
    way). *)

(** {1 Nginx (Fig. 7)} *)

type nginx_row = {
  system : system;
  cores : int;
  workers : int;
  requests_per_s : float;
}

val nginx_run :
  system -> cores:int -> workers:int -> ?window_s:float -> ?connections:int ->
  unit -> nginx_row

(** {1 hello-world microbenchmarks (Fig. 8)} *)

type hello_row = {
  system : system;
  fork_latency_us : float;
  child_memory_mb : float;
}

val hello_run : system -> hello_row
val fig8 : unit -> hello_row list
(** μFork (CoPA), CheriBSD, Nephele. *)

(** {1 Unixbench (Fig. 9)} *)

type unixbench_row = {
  system : system;
  spawn_ms : float;  (** Fig. 9 left: 1000 fork/exit/wait rounds. *)
  context1_ms : float;  (** Fig. 9 right: 100k pipe round trips. *)
}

val unixbench_run :
  system -> spawn_iters:int -> context1_iters:int -> unixbench_row

val fig9 : ?spawn_iters:int -> ?context1_iters:int -> unit -> unixbench_row list
(** Defaults: 1000 spawns, 100_000 round trips, for μFork and CheriBSD. *)

(** {1 SMP fork scaling ([BENCH_smp.json])} *)

type smp_row = {
  system : system;
  cores : int;
  locks : string;  (** the booted config's lock mode: "bkl" or "sharded" *)
  forks : int;  (** children forked and reaped across every forker *)
  forks_per_s : float;
  fault_p50_us : float;  (** fault-service span latency quantiles *)
  fault_p99_us : float;
  steals : int;  (** engine cross-queue work steals over the run *)
}

val fork_storm_run :
  ?config:Ufork_sas.Config.t -> system -> cores:int -> iters:int -> unit ->
  smp_row
(** One forking μprocess per core, each forking and reaping [iters]
    children that dirty a two-page working set. The concurrent forkers
    contend on every sharded kernel lock, making this both the
    fork-throughput scaling probe ([bench --cores-sweep]) and the
    workload the CI race job replays under the detector. [?config]
    overrides the flavour's default — pass
    [Config.with_lock_mode Big_kernel_lock ...] for the BKL baseline. *)

(** {1 Ablations beyond the paper} *)

type ablation_row = { label : string; value : float; unit_ : string }

val ablate_proactive : unit -> ablation_row list
(** Fork latency and post-fork fault count with and without the proactive
    GOT/metadata copy. *)

val ablate_syscall_entry : unit -> ablation_row list
(** Unixbench Context1 on μFork with sealed-capability entries vs forced
    trap entries — the cost of not having CHERI sealed entry points. *)

val ablate_isolation : unit -> ablation_row list
(** Redis 10 MB save time under No/Fault/Full isolation (+TOCTTOU). *)

(** {1 Fragmentation study (§6)} *)

type fragmentation_row = {
  scenario : string;
  churn : int;
  arena_mb : float;
  live_mb : float;
}

val ablate_fragmentation : ?churn:int -> unit -> fragmentation_row list
(** Virtual-arena high-water vs live bytes after fork/exit churn with
    uniform-size processes (areas recycle perfectly) and with interleaved
    mixed sizes (first-fit holes accumulate) — quantifying §6's
    fragmentation discussion. *)
