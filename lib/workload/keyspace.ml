module Prng = Ufork_util.Prng

let key i = Printf.sprintf "key:%08d" i

let value ~seed ~index ~len =
  let g = Prng.create ~seed:(Int64.add seed (Int64.of_int (index * 2654435761))) in
  let block = Prng.bytes g 64 in
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let n = min 64 (len - !pos) in
    Bytes.blit block 0 out !pos n;
    pos := !pos + n
  done;
  out

let populate store ~entries ~value_len ~seed =
  for i = 0 to entries - 1 do
    Ufork_apps.Kvstore.set store ~key:(key i)
      ~value:(value ~seed ~index:i ~len:value_len)
  done

let expected_entries ~entries ~value_len ~seed =
  List.init entries (fun i -> (key i, value ~seed ~index:i ~len:value_len))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let db_sizes_of_paper =
  [
    ("100 KB", 1, 100 * 1024);
    ("1 MB", 10, 100 * 1024);
    ("10 MB", 100, 100 * 1024);
    ("100 MB", 1000, 100 * 1024);
  ]

let db_sizes_extended = db_sizes_of_paper @ [ ("1 GB", 10_000, 100 * 1024) ]
