module Units = Ufork_util.Units
module Costs = Ufork_sim.Costs
module Engine = Ufork_sim.Engine
module Trace = Ufork_sim.Trace
module Config = Ufork_sas.Config
module Image = Ufork_sas.Image
module Api = Ufork_sas.Api
module Uproc = Ufork_sas.Uproc
module Kernel = Ufork_sas.Kernel
module Vfs = Ufork_sas.Vfs
module Fdesc = Ufork_sas.Fdesc
module Strategy = Ufork_core.Strategy
module System = Ufork_core.System
module Os = Ufork_core.Os
module Monolithic = Ufork_baselines.Monolithic
module Vmclone = Ufork_baselines.Vmclone
module Kvstore = Ufork_apps.Kvstore
module Rdb = Ufork_apps.Rdb
module Mpy = Ufork_apps.Mpy
module Faas = Ufork_apps.Faas
module Httpd = Ufork_apps.Httpd
module Unixbench = Ufork_apps.Unixbench
module Hello = Ufork_apps.Hello
module Checker = Ufork_analysis.Checker
module Race = Ufork_analysis.Race
module Lockdep = Ufork_analysis.Lockdep
module Causal = Ufork_analysis.Causal
module Capflow = Ufork_analysis.Capflow
module Invariant = Ufork_analysis.Invariant
module Relocate = Ufork_core.Relocate
module Fork_spine = Ufork_core.Fork_spine

type system =
  | Ufork of Strategy.t
  | Ufork_toctou of Strategy.t
  | Cheribsd
  | Nephele
  | Linux_ref

let system_label = function
  | Ufork s -> Printf.sprintf "uFork/%s" (Strategy.to_string s)
  | Ufork_toctou s -> Printf.sprintf "uFork/%s+TOCTTOU" (Strategy.to_string s)
  | Cheribsd -> "CheriBSD"
  | Nephele -> "Nephele"
  | Linux_ref -> "Linux (ref)"

(* A booted system behind a uniform interface. *)
type booted = {
  kernel : Kernel.t;
  engine : Engine.t;
  start :
    ?affinity:int -> image:Image.t -> (Api.t -> unit) -> Uproc.t;
  run : ?until:int64 -> unit -> unit;
}

(* {1 Harness-wide run options}

   The bench/CLI front ends set these once from their flags; every
   subsequent [boot] picks them up, so one [--cores]/[--trace-out] applies
   uniformly across the systems an experiment compares. *)

let default_cores : int option ref = ref None
let set_default_cores n = default_cores := n

type trace_format = Jsonl | Chrome

let trace_sink : (string * trace_format) option ref = ref None

(* Traces of every machine booted since the sink was set, oldest first —
   a comparative experiment boots several systems and the output file
   should hold them all. *)
let traced : Trace.t list ref = ref []

(* Drop count already reported on stderr, so a flush after every run
   warns once per overflow rather than once per subsequent flush. *)
let warned_dropped = ref 0

let set_trace_out ?(format = Jsonl) path =
  trace_sink := Option.map (fun p -> (p, format)) path;
  traced := [];
  warned_dropped := 0

(* Force event recording on every machine booted from here on, even with
   no trace sink — the [check] front end needs the stream for the
   protocol linter. *)
let record_always = ref false
let set_record_always on = record_always := on

(* {2 Profiling options}

   [profile_sink] mirrors [trace_sink] for folded flamegraph stacks;
   [collect_profiles] keeps the trace registry populated without any
   file output so front ends (the [profile]/[stats] subcommands) can
   read span aggregates and histograms back after a run. *)

let profile_sink : string option ref = ref None
let collect_profiles = ref false

(* Traces of every machine booted since a profile consumer was armed,
   oldest first. *)
let profiled : Trace.t list ref = ref []

let set_profile_out path =
  profile_sink := path;
  profiled := []

let set_collect_profiles on =
  collect_profiles := on;
  profiled := []

let profiled_traces () = !profiled

(* Stat-sampling interval in simulated cycles; applied to every machine
   booted while set. *)
let sample_interval : int64 option ref = ref None
let set_sample_interval i = sample_interval := i

(* {2 Race and lock-order detection}

   With [race_detect] set, every boot arms a fresh happens-before
   detector on the instrumentation bus and [finish_run] raises
   {!Checker.Unsafe} if any conflicting unordered writes were seen.
   [lockdep_detect] does the same for the lock-acquisition-order checker
   (invariant R2); the bus carries one subscriber, so when both are
   armed a single closure dispatches each event to both.
   [chaos_no_bkl] is the matching fault injection for the race side:
   boot with the big kernel lock disabled and spawn one rogue thread
   that performs a deliberate unlocked write to shared state mid-run.
   [chaos_invert_shard_order] is the lockdep counterpart: a rogue boot
   thread takes one pt-shard pair in descending index order. *)

let race_detect = ref false
let set_race_detect on = race_detect := on
let lockdep_detect = ref false
let set_lockdep_detect on = lockdep_detect := on
let chaos_no_bkl = ref false
let set_chaos_no_bkl on = chaos_no_bkl := on
let chaos_unshard = ref false
let set_chaos_unshard on = chaos_unshard := on
let chaos_invert_shard_order = ref false
let set_chaos_invert_shard_order on = chaos_invert_shard_order := on
let race_detector : Race.t option ref = ref None
let lockdep_checker : Lockdep.t option ref = ref None

(* {2 Causal tracing}

   With [causal_trace] set, every boot arms a fresh causal collector
   ({!Causal}) on the same bus subscription; the front end reads it back
   through [causal_graph] after the run for critical-path analysis.
   [chaos_stall_shard] is its fault injection: a rogue boot thread
   holds pt-shard 0 across a long sleep, and the analysis must report
   that lock as the dominant critical-path edge (R3). *)

let causal_trace = ref false
let set_causal_trace on = causal_trace := on
let chaos_stall = ref false
let set_chaos_stall_shard on = chaos_stall := on
let causal_collector : Causal.t option ref = ref None
let causal_graph () = !causal_collector

(* {2 Capability-provenance (capflow) checking}

   With [capflow_detect] set, every boot arms the R4 taint machinery:
   the Capflow stream detector on the bus subscription, the
   fork-completion scan through {!Fork_spine.fork_probe}, and the
   provenance clause of {!Checker.sweep} (via [Capflow.armed]).
   Three chaos injections cross-certify it against the static rule D13:
   [chaos_skip_rebase] leaves one capability un-rebased in the fork
   copy, [chaos_heap_smuggle] carries a parent capability across the
   fork in an OCaml-heap cell invisible to the tag scan, and
   [chaos_leak_root] hands the kernel root to a μprocess. Each must
   fail the run with exactly R4. *)

let capflow_detect = ref false
let set_capflow_detect on = capflow_detect := on
let chaos_skip_rebase = ref false
let set_chaos_skip_rebase on = chaos_skip_rebase := on
let chaos_heap_smuggle = ref false
let set_chaos_heap_smuggle on = chaos_heap_smuggle := on
let chaos_leak_root = ref false
let set_chaos_leak_root on = chaos_leak_root := on
let capflow_detector : Capflow.t option ref = ref None

(* {2 Domain-parallel sweeps}

   [parmap] fans one experiment per sweep point out over OCaml domains.
   Every machine is self-contained (engine, kernel, trace, meter), so
   points never exchange simulated state and each point's result is the
   same bit pattern the serial order produces; only the process-global
   registries above are shared, and every write to them is mutexed.
   Whenever any harness option that funnels per-run state through those
   registries is armed (trace/profile sinks, sampling, detectors, chaos),
   the fan-out silently degrades to serial — those paths want one
   machine at a time, and their cost dwarfs any sweep parallelism. *)

let registry_mutex = Mutex.create ()

let parallel_unsafe () =
  !record_always
  || Option.is_some !trace_sink
  || Option.is_some !profile_sink
  || !collect_profiles
  || Option.is_some !sample_interval
  || !race_detect || !lockdep_detect || !chaos_no_bkl || !chaos_unshard
  || !chaos_invert_shard_order
  || !causal_trace || !chaos_stall
  || !capflow_detect || !chaos_skip_rebase || !chaos_heap_smuggle
  || !chaos_leak_root

let parmap ~jobs f items =
  let jobs = if parallel_unsafe () then 1 else max 1 jobs in
  let n = List.length items in
  if jobs <= 1 || n <= 1 then List.map f items
  else begin
    let arr = Array.of_list items in
    let out = Array.make n None in
    let next = Atomic.make 0 in
    (* Workers never raise: each point's outcome is captured by index, so
       results (and the first failure, re-raised in item order) are
       independent of domain scheduling. *)
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (out.(i) <- Some (try Ok (f arr.(i)) with e -> Error e));
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.to_list arr |> List.mapi (fun i _ ->
        match out.(i) with
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false (* every index below [n] was claimed *))
  end

(* Host-side throughput accounting for the events bench: every
   [finish_run] adds its machine's lifetime {!Trace.emits} here, so the
   bench front end can report simulated events per wall-clock second
   without threading counts through each experiment's row type. Atomic,
   not mutexed: a sum is order-independent. *)
let emits_acc = Atomic.make 0
let reset_emits () = Atomic.set emits_acc 0
let emits_total () = Atomic.get emits_acc

let register_trace tr =
  if !record_always then Trace.set_recording tr true;
  if Option.is_some !trace_sink then begin
    Trace.set_recording tr true;
    Mutex.protect registry_mutex (fun () -> traced := !traced @ [ tr ])
  end;
  if !collect_profiles || Option.is_some !profile_sink then
    Mutex.protect registry_mutex (fun () -> profiled := !profiled @ [ tr ])

let traced_dropped () =
  List.fold_left (fun acc tr -> acc + Trace.dropped tr) 0 !traced

(* Artifact writes create missing parents and turn filesystem failures
   into a clean one-line error — the harness front ends (CLI, bench)
   must never surface a Sys_error backtrace for a bad out-path. *)
let write_artifact path f =
  match Ufork_util.Fsout.with_out path f with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "error: %s\n%!" msg;
      exit 1

(* Rewrite the sink from all traces so far; called after every run so the
   file is complete whenever the harness stops. *)
let flush_trace () =
  (match !trace_sink with
  | None -> ()
  | Some (path, format) ->
      write_artifact path (fun oc ->
          match format with
          | Jsonl ->
              List.iter
                (fun tr -> output_string oc (Trace.to_jsonl_string tr))
                !traced
          | Chrome ->
              output_string oc
                (Trace.chrome_of_records
                   (List.concat_map Trace.records !traced)));
      (* The ring drops oldest-first on overflow; a truncated artifact
         must say so rather than pass for a complete recording. *)
      let dropped = traced_dropped () in
      if dropped > !warned_dropped then begin
        warned_dropped := dropped;
        Printf.eprintf
          "warning: trace ring overflowed; %d oldest record%s dropped from %s\n\
           %!"
          dropped
          (if dropped = 1 then "" else "s")
          path
      end);
  match !profile_sink with
  | None -> ()
  | Some path ->
      write_artifact path (fun oc ->
          List.iter
            (fun tr -> output_string oc (Trace.folded_stacks tr))
            !profiled)

(* The accounting invariant, checked after every experiment run: the
   engine's lifetime busy cycles must equal the cycles charged through the
   machine's event bus — no hidden constants (ISSUE: fig8/fig9 audits). *)
let audit_booted b =
  Trace.audit (Kernel.trace b.kernel) ~costs:(Kernel.costs b.kernel)
    ~elapsed:(Engine.advanced b.engine)

let finish_run b =
  ignore (Atomic.fetch_and_add emits_acc (Trace.emits (Kernel.trace b.kernel)));
  audit_booted b;
  (* The state sanitizer next to the accounting audit: a run that
     corrupted machine state must not report numbers. The lint half sees
     the recorded stream, so it is active whenever recording is. *)
  Checker.assert_safe b.kernel;
  (let vs =
     (match !race_detector with Some d -> Race.violations d | None -> [])
     @ (match !lockdep_checker with
       | Some d -> Lockdep.violations d
       | None -> [])
     @ (match !capflow_detector with
       | Some d -> Capflow.violations d
       | None -> [])
   in
   match vs with
   | [] -> ()
   | vs -> raise (Checker.Unsafe (Invariant.report vs)));
  flush_trace ()

(* Every flavour boots down to the same {!Ufork_core.System.t}; the
   uniform interface is one projection, not five hand-rolled records. *)
let booted_of_system sys =
  {
    kernel = System.kernel sys;
    engine = System.engine sys;
    start = (fun ?affinity ~image main -> System.start sys ?affinity ~image main);
    run = (fun ?until () -> System.run ?until sys);
  }

let boot_raw ~cores ?config system =
  let sys =
    match system with
    | Ufork strategy ->
        Os.system
          (Os.boot ~cores
             ~config:(Option.value config ~default:Config.ufork_fast)
             ~strategy ())
    | Ufork_toctou strategy ->
        Os.system
          (Os.boot ~cores
             ~config:(Option.value config ~default:Config.ufork_default)
             ~strategy ())
    | Cheribsd -> Monolithic.system (Monolithic.boot ~cores ?config ())
    | Linux_ref ->
        Monolithic.system
          (Monolithic.boot ~cores
             ~config:(Option.value config ~default:Config.linux_default)
             ~costs:Costs.linux_ref ())
    | Nephele -> Vmclone.system (Vmclone.boot ~cores ?config ())
  in
  booted_of_system sys

let boot ?(cores = 4) ?config system =
  let cores = Option.value !default_cores ~default:cores in
  (* Arm the detectors before boot so image setup and process spawns are
     already on their clocks. The bus carries a single subscriber: one
     closure dispatches to whichever of the two checkers is armed; when
     neither is, the bus from an earlier (possibly aborted) checked run
     must not outlive it — disarm and drop both. *)
  let rd = if !race_detect then Some (Race.create ()) else None in
  let ld = if !lockdep_detect then Some (Lockdep.create ()) else None in
  let cd = if !causal_trace then Some (Causal.create ()) else None in
  race_detector := rd;
  lockdep_checker := ld;
  causal_collector := cd;
  (* The capflow detector needs the kernel, which does not exist yet:
     its bus handler dispatches through the registry slot, filled right
     after boot. The few boot-time stores it misses are swept by the
     armed Checker clause at finish_run. *)
  capflow_detector := None;
  Capflow.armed := !capflow_detect;
  let handlers =
    List.filter_map Fun.id
      [
        Option.map (fun d ev -> Race.handle d ev) rd;
        Option.map (fun d ev -> Lockdep.handle d ev) ld;
        Option.map (fun d ev -> Causal.handle d ev) cd;
        (if !capflow_detect then
           Some
             (fun ev ->
               match !capflow_detector with
               | Some d -> Capflow.handle d ev
               | None -> ())
         else None);
      ]
  in
  (match handlers with
  | [] -> Ufork_util.Hb.unsubscribe ()
  | [ h ] -> Ufork_util.Hb.subscribe h
  | hs -> Ufork_util.Hb.subscribe (fun ev -> List.iter (fun h -> h ev) hs));
  let b = boot_raw ~cores ?config system in
  if !capflow_detect then begin
    capflow_detector := Some (Capflow.create b.kernel);
    (* Fail at the fork that leaked, not at the next sweep: the probe
       raises from inside the fork window's closing edge. *)
    Fork_spine.fork_probe :=
      Some
        (fun k ~child ->
          match Capflow.scan_fork k ~child with
          | [] -> ()
          | vs -> raise (Checker.Unsafe (Invariant.report vs)))
  end
  else Fork_spine.fork_probe := None;
  if !chaos_skip_rebase then Relocate.chaos_skip_rebase := true;
  if !chaos_heap_smuggle then Fork_spine.chaos_heap_smuggle := true;
  if !chaos_leak_root then
    (* A rogue boot thread retries until a process is running, then
       plants the kernel root in its GOT — the stream detector (and the
       armed sweep) must accuse exactly R4. *)
    ignore
      (Engine.spawn b.engine ~name:"chaos-leak-root" (fun () ->
           let rec attempt budget =
             Engine.sleep 500L;
             if (not (Kernel.chaos_leak_root b.kernel)) && budget > 0 then
               attempt (budget - 1)
           in
           attempt 100));
  (* Boot-time events were stamped 0 (correct: the engine starts there);
     everything after reads the machine's clock. *)
  Option.iter
    (fun c -> Causal.set_now c (fun () -> Engine.now b.engine))
    cd;
  register_trace (Kernel.trace b.kernel);
  (match !sample_interval with
  | Some interval -> Kernel.enable_stat_sampling b.kernel ~interval
  | None -> ());
  if !chaos_no_bkl then begin
    Kernel.chaos_disable_biglock b.kernel;
    (* The seeded bug: one kernel-side write to shared state (the fork
       latency gauge every fork also writes) from a thread that takes no
       lock. With the big lock gone nothing orders it. *)
    ignore
      (Engine.spawn b.engine ~name:"chaos-unlocked" (fun () ->
           Engine.sleep 1_000L;
           Trace.gauge (Kernel.trace b.kernel) Trace.last_fork_latency_key 0))
  end;
  if !chaos_unshard then
    (* The sharded-regime control: only the stats shard loses its lock.
       No bug is seeded beyond that — the race, if the detector is
       honest, is between two legitimate fork-path gauge writes from
       different forking threads (run a concurrent-fork workload such as
       {!fork_storm_run}). Every other shard stays armed, so the report
       must be exactly one R1 on the gauge. *)
    Kernel.chaos_unshard_stats b.kernel;
  if !chaos_invert_shard_order then
    (* The lockdep control: a rogue boot thread takes one pt-shard pair
       in descending index order. Spawned first, it runs before any
       workload thread, so both shards are free and the inversion
       completes (and is published) rather than deadlocking — the
       checker must fail the run with exactly R2. *)
    ignore
      (Engine.spawn b.engine ~name:"chaos-shard-invert" (fun () ->
           Kernel.chaos_acquire_shards_descending b.kernel));
  if !chaos_stall then
    (* The causal-analyzer control: a rogue boot thread camps on
       pt-shard 0 across a long sleep. Spawned before any workload
       thread, it wins the shard while free; every fork touching shard 0
       then queues behind a sleeping holder, and the analysis must name
       this lock as the dominant critical-path edge. *)
    ignore
      (Engine.spawn b.engine ~name:"chaos-stall-shard" (fun () ->
           Kernel.chaos_stall_shard b.kernel));
  b

let child_private_mb b pid =
  match Kernel.find_uproc b.kernel pid with
  | Some u -> Units.mb_of_bytes u.Uproc.private_bytes
  | None -> nan

(* {1 Redis} *)

type redis_row = {
  system : system;
  db_label : string;
  db_bytes : int;
  entries : int;
  save_ms : float;
  fork_us : float;
  child_mb : float;
  dump_ok : bool;
}

let value_seed = 0x5eedL

(* The paper's prototype gives each μprocess a build-time-sized static
   heap; with a 100 MB database the heap reservation is 136.7 MB (§5.2).
   We scale the build the same way: reservation = 1.37 x database size. *)
let redis_image ~db_bytes =
  let heap_bytes = max (4 * 1024 * 1024) (db_bytes * 137 / 100) in
  Image.redis ~heap_bytes

let redis_run system ~entries ~value_len ~db_label =
  let db_bytes = entries * value_len in
  let b = boot ~cores:4 system in
  let result = ref None in
  let _u =
    b.start ~image:(redis_image ~db_bytes) (fun api ->
        let store = Kvstore.create api ~buckets:1024 () in
        Keyspace.populate store ~entries ~value_len ~seed:value_seed;
        let r = Rdb.bgsave api store ~path:"/dump.rdb" in
        result := Some r)
  in
  b.run ();
  finish_run b;
  match !result with
  | None -> failwith "redis_run: benchmark process never completed"
  | Some r ->
      let dump_ok =
        match Vfs.contents (Kernel.vfs b.kernel) "/dump.rdb" with
        | exception Not_found -> false
        | contents -> (
            match Rdb.verify contents with
            | exception Failure _ -> false
            | got ->
                let got = List.sort compare got in
                got
                = Keyspace.expected_entries ~entries ~value_len ~seed:value_seed)
      in
      {
        system;
        db_label;
        db_bytes;
        entries;
        save_ms = Units.ms_of_cycles r.Rdb.total_cycles;
        fork_us = Units.us_of_cycles r.Rdb.fork_latency_cycles;
        child_mb = child_private_mb b r.Rdb.child_pid;
        dump_ok;
      }

let redis_sweep ~systems ?(sizes = Keyspace.db_sizes_of_paper) ?(jobs = 1) ()
    =
  (* Flatten first so [parmap] sees every (system, size) point; the
     concat order is exactly the serial nesting, so results — each
     point its own machine — are bit-identical to the sequential map. *)
  let points =
    List.concat_map
      (fun system -> List.map (fun size -> (system, size)) sizes)
      systems
  in
  parmap ~jobs
    (fun (system, (db_label, entries, value_len)) ->
      redis_run system ~entries ~value_len ~db_label)
    points

(* {1 FaaS} *)

type faas_row = {
  system : system;
  worker_cores : int;
  throughput_per_s : float;
  completed : int;
}

(* FunctionBench float_operation sized to ~0.6 ms of interpreter work. *)
let faas_program = Mpy.float_operation ~n:3650

let faas_run system ~worker_cores ?(window_s = 1.0) () =
  if worker_cores <= 0 then invalid_arg "faas_run";
  let b = boot ~cores:(worker_cores + 1) system in
  let result = ref None in
  let window_cycles = Units.cycles_of_s window_s in
  let _u =
    b.start ~affinity:0 ~image:Image.micropython (fun api ->
        result :=
          Some
            (Faas.coordinator api ~max_workers:worker_cores ~window_cycles
               ~program:faas_program))
  in
  b.run ();
  finish_run b;
  match !result with
  | None -> failwith "faas_run: coordinator never completed"
  | Some r ->
      {
        system;
        worker_cores;
        throughput_per_s = r.Faas.throughput_per_s;
        completed = r.Faas.completed;
      }

(* {1 Nginx} *)

type nginx_row = {
  system : system;
  cores : int;
  workers : int;
  requests_per_s : float;
}

let nginx_run system ~cores ~workers ?(window_s = 1.0) ?(connections = 16) () =
  let b = boot ~cores system in
  Httpd.populate_docroot (Kernel.vfs b.kernel);
  let net = Httpd.Net.create () in
  let window_cycles = Units.cycles_of_s window_s in
  let u =
    b.start ~image:Image.nginx (fun api ->
        Httpd.master api ~net ~listen_rfd:3 ~listen_wfd:4 ~workers
          ~window_cycles)
  in
  (* Hand the master its pre-opened listen socket (fds 3 and 4), like a
     socket-activated service. *)
  let p = Httpd.Net.listen_pipe net in
  let rfd = Fdesc.Fdtable.alloc u.Uproc.fds (Fdesc.Pipe_read p) in
  let wfd = Fdesc.Fdtable.alloc u.Uproc.fds (Fdesc.Pipe_write p) in
  assert (rfd = 3 && wfd = 4);
  Httpd.Net.spawn_clients b.engine net ~connections ~window_cycles;
  b.run ();
  finish_run b;
  let stats = Httpd.Net.stats net in
  {
    system;
    cores;
    workers;
    requests_per_s = float_of_int stats.Httpd.Net.completed /. window_s;
  }

(* {1 hello world (Fig. 8)} *)

type hello_row = {
  system : system;
  fork_latency_us : float;
  child_memory_mb : float;
}

let hello_run system =
  let b = boot ~cores:4 system in
  let sample = ref None in
  let _u =
    b.start ~image:Image.hello (fun api ->
        let s = Hello.fork_once api in
        sample := Some s;
        Hello.reap api)
  in
  b.run ();
  finish_run b;
  match !sample with
  | None -> failwith "hello_run: process never completed"
  | Some s ->
      {
        system;
        fork_latency_us = Units.us_of_cycles s.Hello.latency_cycles;
        child_memory_mb = child_private_mb b s.Hello.child_pid;
      }

let fig8 () = List.map hello_run [ Ufork Strategy.Copa; Cheribsd; Nephele ]

(* {1 Unixbench (Fig. 9)} *)

type unixbench_row = {
  system : system;
  spawn_ms : float;
  context1_ms : float;
}

let unixbench_run system ~spawn_iters ~context1_iters =
  let spawn_cycles =
    let b = boot ~cores:4 system in
    let out = ref 0L in
    let _u =
      b.start ~image:Image.hello (fun api ->
          out := Unixbench.spawn api ~iterations:spawn_iters)
    in
    b.run ();
    finish_run b;
    !out
  in
  let ctx =
    let b = boot ~cores:4 system in
    let out = ref None in
    let _u =
      b.start ~image:Image.hello (fun api ->
          out := Some (Unixbench.context1 api ~iterations:context1_iters))
    in
    b.run ();
    finish_run b;
    match !out with
    | Some r -> r.Unixbench.total_cycles
    | None -> failwith "context1 never completed"
  in
  {
    system;
    spawn_ms = Units.ms_of_cycles spawn_cycles;
    context1_ms = Units.ms_of_cycles ctx;
  }

let fig9 ?(spawn_iters = 1000) ?(context1_iters = 100_000) () =
  List.map
    (fun s -> unixbench_run s ~spawn_iters ~context1_iters)
    [ Ufork Strategy.Copa; Cheribsd ]

(* {1 SMP fork scaling (BENCH_smp.json)} *)

type smp_row = {
  system : system;
  cores : int;
  locks : string;
  forks : int;
  forks_per_s : float;
  fault_p50_us : float;
  fault_p99_us : float;
  steals : int;
}

(* One forking μprocess per core, each forking and reaping [iters]
   children that dirty a two-page working set (a CoW resolution in the
   child, another back in the parent). The forkers run concurrently, so
   the uproc table, fd tables, page-table shards, frame pool and the
   stats gauge all see real cross-core contention: this is the workload
   the scaling bench sweeps and the CI race job replays under the
   happens-before detector. *)
let fork_storm_run ?config system ~cores ~iters () =
  let b = boot ~cores ?config system in
  let page = 4096 in
  let forks = ref 0 in
  for _ = 1 to cores do
    ignore
      (b.start ~image:Image.hello (fun api ->
           let cell = api.Api.malloc (2 * page) in
           api.Api.write_u64 cell ~off:0 0L;
           api.Api.got_set 0 cell;
           for _ = 1 to iters do
             ignore
               (api.Api.fork (fun capi ->
                    (* The GOT slot, not the parent's capability: CoPA
                       relocates the child's copy into its own area. *)
                    let c = capi.Api.got_get 0 in
                    capi.Api.write_u64 c ~off:0 1L;
                    capi.Api.write_u64 c ~off:page 2L;
                    capi.Api.exit 0));
             ignore (api.Api.wait ());
             (* Take the CoW write fault back on the parent side. *)
             api.Api.write_u64 cell ~off:0 3L;
             incr forks
           done))
  done;
  b.run ();
  finish_run b;
  let elapsed_s = Units.s_of_cycles (Engine.now b.engine) in
  let quant p =
    match Trace.span_histogram (Kernel.trace b.kernel) "fault.service" with
    | Some h -> Units.us_of_cycles (Ufork_sim.Histogram.quantile h p)
    | None -> 0.
  in
  {
    system;
    cores;
    locks =
      (match (Kernel.config b.kernel).Config.lock_mode with
      | Config.Big_kernel_lock -> "bkl"
      | Config.Sharded_locks -> "sharded");
    forks = !forks;
    forks_per_s =
      (if elapsed_s > 0. then float_of_int !forks /. elapsed_s else 0.);
    fault_p50_us = quant 0.5;
    fault_p99_us = quant 0.99;
    steals = Engine.steals b.engine;
  }

(* {1 Ablations} *)

type ablation_row = { label : string; value : float; unit_ : string }

let zygote_fork_faults ~proactive =
  let os =
    Os.boot ~cores:2 ~config:Config.ufork_fast ~strategy:Strategy.Copa
      ~proactive ()
  in
  let kernel = Os.kernel os in
  let latency = ref 0L in
  let _u =
    Os.start os ~image:Image.micropython (fun api ->
        Mpy.zygote_init api ~modules:24;
        let t0 = api.Api.now () in
        ignore
          (api.Api.fork (fun capi ->
               ignore (Mpy.zygote_check capi);
               capi.Api.exit 0));
        latency := Int64.sub (api.Api.now ()) t0;
        ignore (api.Api.wait ()))
  in
  Os.run os;
  Checker.assert_safe kernel;
  let faults =
    Ufork_sim.Meter.get (Kernel.meter kernel) Ufork_sim.Event.fault_key
  in
  (Units.us_of_cycles !latency, float_of_int faults)

let ablate_proactive () =
  let lat_on, faults_on = zygote_fork_faults ~proactive:true in
  let lat_off, faults_off = zygote_fork_faults ~proactive:false in
  [
    { label = "fork latency, proactive GOT/meta copy"; value = lat_on; unit_ = "us" };
    { label = "fork latency, lazy GOT/meta"; value = lat_off; unit_ = "us" };
    { label = "post-fork faults, proactive"; value = faults_on; unit_ = "faults" };
    { label = "post-fork faults, lazy"; value = faults_off; unit_ = "faults" };
  ]

let context1_with_config config =
  let os = Os.boot ~cores:4 ~config ~strategy:Strategy.Copa () in
  let out = ref None in
  let _u =
    Os.start os ~image:Image.hello (fun api ->
        out := Some (Unixbench.context1 api ~iterations:10_000))
  in
  Os.run os;
  Checker.assert_safe (Os.kernel os);
  match !out with
  | Some r -> r.Unixbench.per_switch_cycles /. Units.clock_hz *. 1e6
  | None -> failwith "context1 never completed"

let ablate_syscall_entry () =
  let sealed = context1_with_config Config.ufork_fast in
  let trap =
    context1_with_config
      { Config.ufork_fast with Config.syscall_mode = Config.Trap }
  in
  [
    { label = "Context1 round trip, sealed entry"; value = sealed; unit_ = "us" };
    { label = "Context1 round trip, trap entry"; value = trap; unit_ = "us" };
  ]

let ablate_isolation () =
  let run config label =
    let b =
      boot ~cores:4 ~config (Ufork Strategy.Copa)
    in
    let result = ref None in
    let entries = 100 and value_len = 100 * 1024 in
    let _u =
      b.start ~image:(redis_image ~db_bytes:(entries * value_len)) (fun api ->
          let store = Kvstore.create api ~buckets:1024 () in
          Keyspace.populate store ~entries ~value_len ~seed:value_seed;
          result := Some (Rdb.bgsave api store ~path:"/dump.rdb"))
    in
    b.run ();
    finish_run b;
    match !result with
    | Some r ->
        {
          label = "Redis 10MB save, " ^ label;
          value = Units.ms_of_cycles r.Rdb.total_cycles;
          unit_ = "ms";
        }
    | None -> failwith "ablate_isolation: run failed"
  in
  [
    run { Config.ufork_fast with Config.isolation = Config.No_isolation } "no isolation";
    run Config.ufork_fast "fault isolation";
    run { Config.ufork_fast with Config.isolation = Config.Full_isolation } "full isolation";
    run Config.ufork_default "full isolation + TOCTTOU";
  ]

(* {1 Fragmentation study (§6)}

   The paper notes μprocess areas are large and contiguous, raising
   fragmentation concerns for long-running fork-heavy deployments, and
   proposes compaction or size classes as future work. Quantify the
   problem: uniform fork/exit churn recycles areas perfectly, while
   processes of interleaved different sizes leave holes that first-fit
   cannot always fill. *)

type fragmentation_row = {
  scenario : string;
  churn : int;  (** fork/exit rounds performed *)
  arena_mb : float;  (** virtual-arena high-water mark *)
  live_mb : float;  (** area bytes still owned by live processes *)
}

let fragmentation_run ?(fit = Config.First_fit) ~mixed ~churn () =
  let os =
    Os.boot ~cores:2 ~config:(Config.with_area_fit fit Config.ufork_fast) ()
  in
  let kernel = Os.kernel os in
  let images =
    if mixed then
      [
        Image.make ~heap_bytes:(256 * 1024) "small";
        Image.make ~heap_bytes:(4 * 1024 * 1024) "large";
        Image.make ~heap_bytes:(1024 * 1024) "medium";
      ]
    else [ Image.make ~heap_bytes:(1024 * 1024) "uniform" ]
  in
  (* Each driver process churns children of its own size; drivers of
     different sizes interleave their reaps, shredding the free list. *)
  List.iter
    (fun image ->
      ignore
        (Os.start os ~image (fun api ->
             for _ = 1 to churn do
               ignore (api.Api.fork (fun capi -> capi.Api.exit 0));
               ignore (api.Api.wait ())
             done)))
    images;
  Os.run os;
  Checker.assert_safe kernel;
  {
    scenario =
      Printf.sprintf "%s, %s"
        (if mixed then "mixed sizes" else "uniform size")
        (match fit with
        | Config.First_fit -> "first fit"
        | Config.Best_fit -> "best fit");
    churn = churn * List.length images;
    arena_mb = Units.mb_of_bytes (Kernel.arena_span kernel);
    live_mb = Units.mb_of_bytes (Kernel.live_area_bytes kernel);
  }

let ablate_fragmentation ?(churn = 50) () =
  [
    fragmentation_run ~mixed:false ~churn ();
    fragmentation_run ~mixed:true ~churn ();
    fragmentation_run ~fit:Config.Best_fit ~mixed:true ~churn ();
  ]
