type isolation = No_isolation | Fault_isolation | Full_isolation
type syscall_mode = Sealed_entry | Trap
type area_fit = First_fit | Best_fit
type lock_mode = Big_kernel_lock | Sharded_locks

type t = {
  isolation : isolation;
  toctou : bool;
  syscall_mode : syscall_mode;
  lock_mode : lock_mode;
  parent_touch_pages : int;
  child_touch_pages : int;
  arena_pretouch_fraction : float;
  kernel_overhead_bytes : int;
  aslr_seed : int64 option;
  area_fit : area_fit;
}

let ufork_default =
  {
    isolation = Full_isolation;
    toctou = true;
    syscall_mode = Sealed_entry;
    lock_mode = Sharded_locks;
    parent_touch_pages = 8;
    child_touch_pages = 6;
    arena_pretouch_fraction = 0.;
    kernel_overhead_bytes = 96 * 1024;
    aslr_seed = None;
    area_fit = First_fit;
  }

let ufork_fast =
  { ufork_default with isolation = Fault_isolation; toctou = false }

let cheribsd_default =
  {
    isolation = Full_isolation;
    toctou = true;
    syscall_mode = Trap;
    lock_mode = Sharded_locks;
    parent_touch_pages = 8;
    child_touch_pages = 24;
    arena_pretouch_fraction = 0.5;
    kernel_overhead_bytes = 240 * 1024;
    aslr_seed = None;
    area_fit = First_fit;
  }

let nephele_default =
  {
    isolation = Full_isolation;
    toctou = false;
    syscall_mode = Sealed_entry;
    lock_mode = Big_kernel_lock;
    parent_touch_pages = 8;
    child_touch_pages = 6;
    arena_pretouch_fraction = 0.;
    kernel_overhead_bytes = 64 * 1024;
    aslr_seed = None;
    area_fit = First_fit;
  }

let linux_default =
  {
    isolation = Full_isolation;
    toctou = false;
    syscall_mode = Trap;
    lock_mode = Sharded_locks;
    parent_touch_pages = 8;
    child_touch_pages = 12;
    arena_pretouch_fraction = 0.06;
    kernel_overhead_bytes = 96 * 1024;
    aslr_seed = None;
    area_fit = First_fit;
  }

let with_toctou toctou t = { t with toctou }
let with_aslr seed t = { t with aslr_seed = Some seed }
let with_area_fit area_fit t = { t with area_fit }
let with_isolation isolation t = { t with isolation }
let with_lock_mode lock_mode t = { t with lock_mode }

let pp_isolation ppf = function
  | No_isolation -> Format.pp_print_string ppf "none"
  | Fault_isolation -> Format.pp_print_string ppf "fault"
  | Full_isolation -> Format.pp_print_string ppf "full"

let pp ppf t =
  Format.fprintf ppf "isolation=%a toctou=%b entry=%s locks=%s" pp_isolation
    t.isolation t.toctou
    (match t.syscall_mode with Sealed_entry -> "sealed" | Trap -> "trap")
    (match t.lock_mode with
    | Big_kernel_lock -> "bkl"
    | Sharded_locks -> "sharded")
