module Addr = Ufork_mem.Addr
module Page_table = Ufork_mem.Page_table
module Sync = Ufork_sim.Sync

type state = Running | Zombie of int | Reaped

type regions = {
  got_base : int;
  got_bytes : int;
  code_base : int;
  code_bytes : int;
  data_base : int;
  data_bytes : int;
  stack_base : int;
  stack_bytes : int;
  meta_base : int;
  meta_bytes : int;
  heap_base : int;
  heap_bytes : int;
}

type t = {
  pid : int;
  parent_pid : int option;
  image : Image.t;
  area_base : int;
  area_bytes : int;
  regions : regions;
  pt : Page_table.t;
  mutable allocator : Tinyalloc.t;
  fds : Fdesc.Fdtable.t;
  mutable state : state;
  mutable children : int list;
  exited_child : Sync.Cond.t;
  mutable private_bytes : int;
  mutable first_alloc_done : bool;
  mutable forked : bool;
  mutable killed : bool;
  mutable kernel_waker : Ufork_sim.Engine.waker option;
}

let guard = Addr.page_size

let layout_regions image ~area_base =
  let a v = Addr.align_up v Addr.page_size in
  let got_bytes = a (Image.got_pages image * Addr.page_size) in
  let code_bytes = a image.Image.code_bytes in
  let data_bytes = a image.Image.data_bytes in
  let stack_bytes = a image.Image.stack_bytes in
  let meta_bytes = a (Image.metadata_capacity_bytes image) in
  let heap_bytes = a image.Image.heap_bytes in
  let got_base = area_base in
  let code_base = got_base + got_bytes + guard in
  let data_base = code_base + code_bytes + guard in
  let stack_base = data_base + data_bytes + guard in
  let meta_base = stack_base + stack_bytes + guard in
  let heap_base = meta_base + meta_bytes + guard in
  {
    got_base;
    got_bytes;
    code_base;
    code_bytes;
    data_base;
    data_bytes;
    stack_base;
    stack_bytes;
    meta_base;
    meta_bytes;
    heap_base;
    heap_bytes;
  }

let create ~pid ?parent_pid ~image ~area_base ~pt ?fds () =
  if not (Addr.is_granule_aligned area_base) then
    invalid_arg "Uproc.create: unaligned area base";
  let regions = layout_regions image ~area_base in
  let allocator =
    Tinyalloc.create ~heap_base:regions.heap_base
      ~heap_size:regions.heap_bytes
      ~meta_capacity_granules:(regions.meta_bytes / Addr.granule_size)
  in
  {
    pid;
    parent_pid;
    image;
    area_base;
    area_bytes = Image.area_bytes image;
    regions;
    pt;
    allocator;
    fds = (match fds with Some f -> f | None -> Fdesc.Fdtable.create ());
    state = Running;
    children = [];
    exited_child = Sync.Cond.create ();
    private_bytes = 0;
    first_alloc_done = false;
    forked = false;
    killed = false;
    kernel_waker = None;
  }

let delta ~parent ~child = child.area_base - parent.area_base

let region_of_addr t addr =
  let r = t.regions in
  let within base bytes = addr >= base && addr < base + bytes in
  if within r.got_base r.got_bytes then Some "got"
  else if within r.code_base r.code_bytes then Some "code"
  else if within r.data_base r.data_bytes then Some "data"
  else if within r.stack_base r.stack_bytes then Some "stack"
  else if within r.meta_base r.meta_bytes then Some "meta"
  else if within r.heap_base r.heap_bytes then Some "heap"
  else None

let contains t addr = addr >= t.area_base && addr < t.area_base + t.area_bytes

let pp ppf t =
  Format.fprintf ppf "uproc{pid=%d %s area=[%#x,+%#x) %s}" t.pid
    t.image.Image.name t.area_base t.area_bytes
    (match t.state with
    | Running -> "running"
    | Zombie c -> Printf.sprintf "zombie(%d)" c
    | Reaped -> "reaped")
