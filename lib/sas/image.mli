(** Application image specification.

    Sizes of the regions that make up a μprocess area (Fig. 1's layout).
    The heap is a contiguous reservation served by the per-μprocess
    allocator; pages materialize on first use except under the full-copy
    fork strategy, which transfers the entire reservation (the paper's
    "large static heap" effect, §5.2). *)

type t = {
  name : string;
  code_bytes : int;  (** Text; mapped eagerly, executable, shared CoW. *)
  data_bytes : int;  (** Globals; mapped eagerly. *)
  stack_bytes : int;  (** Mapped eagerly (it is small). *)
  heap_bytes : int;  (** Reserved; materialized on allocation. *)
  got_slots : int;  (** Global-offset-table capability slots. *)
}

val make :
  ?code_bytes:int ->
  ?data_bytes:int ->
  ?stack_bytes:int ->
  ?heap_bytes:int ->
  ?got_slots:int ->
  string ->
  t
(** Defaults: 64 KiB code, 16 KiB data, 32 KiB stack, 1 MiB heap,
    256 GOT slots. *)

val hello : t
(** Minimal "hello world" image used by the Fig. 8 microbenchmarks. *)

val redis : heap_bytes:int -> t
(** Redis-like image: 2 MiB code, 512 KiB data, 256 KiB stack and the given
    heap reservation (the paper's build-time-configurable static heap). *)

val nginx : t
val micropython : t

val area_bytes : t -> int
(** Total contiguous virtual area needed: GOT + regions, page-aligned,
    plus one guard page between regions. *)

val got_pages : t -> int
val metadata_capacity_bytes : t -> int
(** Reserved allocator-metadata region: one 16-byte granule per potential
    allocation, 1/256 of the heap, at least one page. *)
