(** Kernel configuration: parameterized isolation (§3.6, R4).

    The paper argues different fork use-cases need different isolation
    levels: adversarial privilege separation (qmail, U3) wants everything;
    trusted-but-buggy concurrency (Nginx, U2) wants fault isolation without
    TOCTTOU copies; fully-trusted CoW snapshots (Redis, U4) can disable
    protections. These are the three [isolation] points, with [toctou]
    togglable independently as in the evaluation. *)

type isolation =
  | No_isolation
      (** Capabilities are not narrowed to the μprocess; no syscall
          argument validation. The classic unikernel trust model. *)
  | Fault_isolation
      (** Memory isolation via bounded capabilities + privilege checks,
          but no kernel-side argument hardening. *)
  | Full_isolation
      (** Fault isolation + syscall argument validation. *)

type syscall_mode =
  | Sealed_entry  (** CHERI sealed-capability call: no trap (μFork). *)
  | Trap  (** Classic exception-based entry (monolithic kernels). *)

type area_fit =
  | First_fit  (** Fast; fragments badly under mixed-size churn (§6). *)
  | Best_fit  (** Smallest adequate hole; mitigates fragmentation. *)

type lock_mode =
  | Big_kernel_lock
      (** Legacy: serialize all kernel code across cores behind one
          recursive lock (Unikraft SMP, §4.5). Kept as the
          compatibility flavour and as the scaling baseline the SMP
          bench measures against. *)
  | Sharded_locks
      (** Per-resource locks (frame pool, page-table shards, μprocess
          table, fd tables, stats), each registered with the
          happens-before bus so the race detector certifies the
          split. *)

type t = {
  isolation : isolation;
  toctou : bool;
      (** Copy by-reference syscall buffers to kernel memory before
          validation and back after (§4.4). *)
  syscall_mode : syscall_mode;
  lock_mode : lock_mode;
      (** Kernel locking discipline; {!Sharded_locks} everywhere except
          the legacy Nephele flavour. *)
  parent_touch_pages : int;
      (** Pages of its own working set (stack, globals) a μprocess writes
          immediately around a fork — drives the immediate CoW/CoA/CoPA
          fault traffic after (and, for CoA, during) the call. *)
  child_touch_pages : int;
      (** Working-set pages the child writes as it starts running. *)
  arena_pretouch_fraction : float;
      (** Fraction of the live heap the allocator re-dirties in a forked
          child on its first allocation. Models CheriBSD's observed
          allocator behaviour (Fig. 5's 56 MB row, which the paper
          attributes to "higher allocator memory consumption"); 0 for
          μFork's per-μprocess static heaps. *)
  kernel_overhead_bytes : int;
      (** Per-process kernel state (proc struct, kernel stack, fd table,
          page-table pages), counted in the per-process memory figures. *)
  aslr_seed : int64 option;
      (** When set, randomize the base of each fresh μprocess area (§3.7:
          "ASLR can be implemented by randomizing the base offset of the
          contiguous memory area dedicated to each μprocess"). *)
  area_fit : area_fit;
      (** μprocess-area placement policy — the knob the fragmentation
          study sweeps (§6 proposes size classes/compaction as future
          work; best-fit is the cheap mitigation). *)
}

val ufork_default : t
(** Full isolation + TOCTTOU, sealed entries, sharded kernel locks. *)

val ufork_fast : t
(** Fault isolation, no TOCTTOU — the production point used for most
    μFork rows in the evaluation. *)

val cheribsd_default : t
val nephele_default : t
val linux_default : t

val with_toctou : bool -> t -> t
val with_aslr : int64 -> t -> t
val with_area_fit : area_fit -> t -> t
val with_isolation : isolation -> t -> t

val with_lock_mode : lock_mode -> t -> t
(** The SMP bench boots the same flavour under both modes to measure
    what the big lock costs. *)

val pp : Format.formatter -> t -> unit
