type description =
  | Vfs_file of Vfs.file
  | Pipe_read of Pipe.t
  | Pipe_write of Pipe.t
  | Null

type entry = { desc : description; mutable refcount : int ref }

module Fdtable = struct
  type t = (int, entry) Hashtbl.t

  let make_entry desc = { desc; refcount = ref 1 }

  let create () =
    let t = Hashtbl.create 16 in
    for fd = 0 to 2 do
      Hashtbl.replace t fd (make_entry Null)
    done;
    t

  let alloc t desc =
    let rec first fd = if Hashtbl.mem t fd then first (fd + 1) else fd in
    let fd = first 0 in
    Hashtbl.replace t fd (make_entry desc);
    fd

  let get t fd =
    match Hashtbl.find_opt t fd with
    | Some e -> e.desc
    | None -> raise Not_found

  let release_description e =
    decr e.refcount;
    if !(e.refcount) = 0 then
      match e.desc with
      | Pipe_read p -> Pipe.close_read p
      | Pipe_write p -> Pipe.close_write p
      | Vfs_file f -> Vfs.close f
      | Null -> ()

  let close t fd =
    match Hashtbl.find_opt t fd with
    | None -> raise Not_found
    | Some e ->
        Hashtbl.remove t fd;
        release_description e

  let dup_all t =
    let t' = Hashtbl.create 16 in
    (* Table-to-table copy: the destination is keyed the same way, so
       traversal order cannot leak. *)
    (Hashtbl.iter
       (fun fd e ->
         incr e.refcount;
         Hashtbl.replace t' fd { desc = e.desc; refcount = e.refcount })
       t [@ufork.order_independent]);
    t'

  let close_all t =
    (* Close in ascending fd order: closing can emit pipe/vfs events, so
       the order must not depend on Hashtbl internals. *)
    let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) t [] in
    List.iter (fun fd -> close t fd) (List.sort compare fds)

  let open_count t = Hashtbl.length t
end
