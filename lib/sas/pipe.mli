(** Kernel pipes: bounded byte streams.

    Used by the Unixbench Context1 microbenchmark (Fig. 9) and available to
    all applications. The primitives are non-blocking; the syscall layer
    implements blocking by waiting on {!readable}/{!writable} — it must
    release the big kernel lock around the wait, which is why the wait loop
    cannot live here. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 64 KiB, as on most Unixes. *)

val capacity : t -> int
val available : t -> int
(** Bytes currently buffered. *)

exception Broken_pipe

type write_result = Wrote of int | Would_block
type read_result = Data of bytes | Eof | Empty

val try_write : t -> bytes -> write_result
(** Append up to the free space; [Would_block] when full.
    @raise Broken_pipe if the read end is closed. *)

val try_read : t -> int -> read_result
(** Take up to [n] buffered bytes. [Empty] means nothing buffered but the
    write end is still open; [Eof] means nothing buffered and no writers
    remain. *)

val readable : t -> Ufork_sim.Sync.Cond.t
(** Signalled when data arrives or the write end closes. *)

val writable : t -> Ufork_sim.Sync.Cond.t
(** Signalled when space frees up or the read end closes. *)

val close_read : t -> unit
val close_write : t -> unit
val read_open : t -> bool
val write_open : t -> bool
