module Addr = Ufork_mem.Addr

exception Out_of_heap

type block = { addr : int; size : int; meta_index : int }

type t = {
  base : int;
  size : int;
  meta_capacity : int;
  mutable free_spans : (int * int) list; (* (addr, size), ascending *)
  blocks : (int, block) Hashtbl.t; (* start addr -> block *)
  mutable free_meta : int list;
  mutable next_meta : int;
  mutable high_meta : int;
  mutable used : int;
}

let create ~heap_base ~heap_size ~meta_capacity_granules =
  if heap_size <= 0 || meta_capacity_granules <= 0 then
    invalid_arg "Tinyalloc.create: non-positive size";
  if not (Addr.is_granule_aligned heap_base) then
    invalid_arg "Tinyalloc.create: unaligned base";
  {
    base = heap_base;
    size = heap_size;
    meta_capacity = meta_capacity_granules;
    free_spans = [ (heap_base, heap_size) ];
    blocks = Hashtbl.create 64;
    free_meta = [];
    next_meta = 0;
    high_meta = 0;
    used = 0;
  }

let take_meta t =
  match t.free_meta with
  | i :: rest ->
      t.free_meta <- rest;
      i
  | [] ->
      if t.next_meta >= t.meta_capacity then raise Out_of_heap;
      let i = t.next_meta in
      t.next_meta <- i + 1;
      if t.next_meta > t.high_meta then t.high_meta <- t.next_meta;
      i

let alloc t size =
  if size <= 0 then invalid_arg "Tinyalloc.alloc: non-positive size";
  let size = Addr.align_up size Addr.granule_size in
  (* First fit over the ascending span list. *)
  let rec fit acc = function
    | [] -> raise Out_of_heap
    | (a, s) :: rest when s >= size ->
        let remaining =
          if s = size then rest else (a + size, s - size) :: rest
        in
        (a, List.rev_append acc remaining)
    | span :: rest -> fit (span :: acc) rest
  in
  let addr, spans = fit [] t.free_spans in
  t.free_spans <- spans;
  let meta_index = take_meta t in
  let b = { addr; size; meta_index } in
  Hashtbl.replace t.blocks addr b;
  t.used <- t.used + size;
  b

(* Insert a span keeping the list sorted and coalesced. *)
let insert_span spans (addr, size) =
  let rec go = function
    | [] -> [ (addr, size) ]
    | (a, s) :: rest ->
        if addr + size < a then (addr, size) :: (a, s) :: rest
        else if addr + size = a then (addr, size + s) :: rest
        else if a + s = addr then go_merge (a, s + size) rest
        else (a, s) :: go rest
  and go_merge (a, s) = function
    | (a2, s2) :: rest when a + s = a2 -> (a, s + s2) :: rest
    | rest -> (a, s) :: rest
  in
  go spans

let free t addr =
  match Hashtbl.find_opt t.blocks addr with
  | None -> invalid_arg "Tinyalloc.free: not a live block start"
  | Some b ->
      Hashtbl.remove t.blocks addr;
      t.free_spans <- insert_span t.free_spans (b.addr, b.size);
      t.free_meta <- b.meta_index :: t.free_meta;
      t.used <- t.used - b.size;
      b

let block_of_addr t addr =
  (* Linear probe down to candidate starts would be slow; walk the table.
     Block counts are modest (thousands), and this is a test/debug path. *)
  (* Blocks never overlap, so at most one matches: order-independent. *)
  (Hashtbl.fold
     (fun _ b acc ->
       match acc with
       | Some _ -> acc
       | None -> if addr >= b.addr && addr < b.addr + b.size then Some b else None)
     t.blocks None [@ufork.order_independent])

let clone t ~delta =
  let blocks = Hashtbl.create (Hashtbl.length t.blocks) in
  (* Table-to-table copy with distinct keys: order cannot leak. *)
  (Hashtbl.iter
     (fun a b -> Hashtbl.replace blocks (a + delta) { b with addr = b.addr + delta })
     t.blocks [@ufork.order_independent]);
  {
    base = t.base + delta;
    size = t.size;
    meta_capacity = t.meta_capacity;
    free_spans = List.map (fun (a, s) -> (a + delta, s)) t.free_spans;
    blocks;
    free_meta = t.free_meta;
    next_meta = t.next_meta;
    high_meta = t.high_meta;
    used = t.used;
  }

let used_bytes t = t.used
let live_blocks t = Hashtbl.length t.blocks
let heap_base t = t.base
let heap_size t = t.size
let high_water_meta_granules t = t.high_meta

let iter_blocks t f =
  Hashtbl.fold (fun _ b acc -> b :: acc) t.blocks []
  |> List.sort (fun a b -> compare a.addr b.addr)
  |> List.iter f
