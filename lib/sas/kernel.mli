(** The OS kernel kit.

    This module implements everything an OS flavour needs except the fork
    mechanism and the post-fork fault resolution, which are supplied as
    hooks: μFork installs CoW/CoA/CoPA copying with capability relocation
    ({!Ufork_core.Fork}); the monolithic baseline installs classic CoW in
    per-process address spaces; the VM-clone baseline installs whole-image
    copying. Shared here: μprocess areas and page mapping, the per-process
    allocator with in-memory metadata, the GOT, syscall entry costing
    (sealed vs trap), kernel locking (legacy big lock or sharded
    per-resource locks, per {!Config.lock_mode}), pipes, the ramdisk
    VFS, wait/exit/reap, and the {!Api.t} builder.

    All operations that consume simulated time emit a typed
    {!Ufork_sim.Event.t} through the kernel's {!Ufork_sim.Trace.t} bus,
    which charges the machine's {!Ufork_sim.Costs.t} and counts the event
    in one step — so benchmarks can audit that latency is exactly the sum
    of counted work ({!Ufork_sim.Trace.audit}). *)

module Capability = Ufork_cheri.Capability

type t

(** {1 Construction} *)

val create :
  engine:Ufork_sim.Engine.t ->
  costs:Ufork_sim.Costs.t ->
  config:Config.t ->
  multi_address_space:bool ->
  unit ->
  t
(** [multi_address_space = false] gives the single-address-space layout:
    one global page table, μprocess areas carved from a shared arena.
    [true] gives one page table per process, every process at the same
    base address. *)

val engine : t -> Ufork_sim.Engine.t
val costs : t -> Ufork_sim.Costs.t
val config : t -> Config.t

val trace : t -> Ufork_sim.Trace.t
(** The kernel's mechanism-event bus. *)

val meter : t -> Ufork_sim.Meter.t
(** The bus's derived counter view (read-only; writes belong in
    {!emit}). *)

val phys : t -> Ufork_mem.Phys.t
val vfs : t -> Vfs.t
val multi_address_space : t -> bool
val root_cap : t -> Capability.t
(** The kernel's root capability (boot-time authority). *)

val set_fork_hook : t -> (Uproc.t -> (Api.t -> unit) -> int) -> unit
(** The fork implementation: duplicate [parent], spawn the child running
    the continuation, return the child pid. Runs with syscall entry already
    charged and the kernel lock held. *)

val set_fault_hook :
  t ->
  (Uproc.t -> addr:int -> access:Ufork_mem.Vas.access -> unit) ->
  unit
(** Resolve an MMU fault (CoW/CoA/CoPA copy, …) so the access can retry.
    Must raise if the fault is not resolvable (a real crash). *)

(** {1 Processes} *)

val create_uproc :
  t -> ?parent:Uproc.t -> ?fds:Fdesc.Fdtable.t -> image:Image.t -> unit ->
  Uproc.t
(** Allocate a pid and an area (or reuse a freed one), build the μprocess
    record with its page table (shared or private per
    [multi_address_space]), and register it. No pages are mapped. *)

val map_initial_image : t -> Uproc.t -> unit
(** Eagerly map GOT, code, data and stack regions with fresh zero frames
    (heap and allocator metadata materialize on demand), charging
    page allocations and accounting them to the process. *)

val spawn_process :
  t ->
  ?affinity:int ->
  ?reloc:(Capability.t -> Capability.t) ->
  Uproc.t ->
  (Api.t -> unit) ->
  unit
(** Start the process main thread on the engine. Catches {!Api.Exited}
    (and turns a normal return into exit 0) and performs kernel-side exit:
    close fds, mark zombie, wake the parent. *)

val find_uproc : t -> int -> Uproc.t option
val live_process_count : t -> int

val find_area_of_addr : t -> int -> (int * int) option
(** The (base, bytes) of the live-or-zombie μprocess area containing an
    address; [None] once the owner has been reaped (a capability into it is
    dangling and must not be relocated — its tag is cleared instead).
    O(log areas): a predecessor query on a sorted interval index, not a
    scan of the live-area list. *)

(** {1 Kernel internals exposed to fork implementations} *)

val area_cap : t -> Uproc.t -> Capability.t
(** A kernel capability covering exactly the μprocess area. *)

val alloc_area : t -> bytes_needed:int -> int
(** Reserve a contiguous area of the shared arena (single address space
    only); reuses reaped areas first. *)

val fresh_frame : t -> Uproc.t -> Ufork_mem.Phys.frame
(** Allocate a physical frame, charging [page_alloc] and attributing the
    memory to the process. *)

val fresh_frames : t -> Uproc.t -> int -> Ufork_mem.Phys.frame list
(** Allocate [n] frames with one batched [Page_alloc n] charge and one
    accounting update — same cycles and counts as [n] {!fresh_frame}
    calls (the cost is linear), one trace record. [n <= 0] is a no-op. *)

val account_private : t -> Uproc.t -> bytes:int -> unit

val emit : ?proc:Uproc.t -> t -> Ufork_sim.Event.t -> unit
(** Send one mechanism event through the bus: charge its cycles and count
    it atomically (cycles are skipped outside an engine thread, e.g.
    during boot-time setup in unit tests). Fork implementations emit their
    page-copy/relocation events here. *)

val with_span : t -> name:string -> (unit -> 'a) -> 'a
(** Phase-attribution span on this kernel's trace: every cycle charged
    while the span is innermost on the current engine thread counts as
    its self time (see {!Ufork_sim.Trace.with_span}). Charges nothing
    itself. *)

val enable_stat_sampling : t -> interval:int64 -> unit
(** Register the kernel's gauge snapshot as the trace's virtual-time
    sampler: every [interval] simulated cycles (observed at the next
    emission) record [frames_in_use], [cow_pending_pages] (PTEs still in
    a CoW/CoA/CoPA shared state across live and zombie μprocesses) and
    [rss_bytes.<image>.<pid>] per running μprocess. Read the series back
    with {!Ufork_sim.Trace.samples} / {!Ufork_sim.Trace.samples_csv}. *)

val map_zero_pages :
  t ->
  Uproc.t ->
  base:int ->
  bytes:int ->
  ?read:bool ->
  ?write:bool ->
  ?exec:bool ->
  unit ->
  unit
(** Map fresh zero frames over every not-yet-mapped page of the range.
    Defaults: readable, writable, non-executable. *)

val materialize_heap_range : t -> Uproc.t -> addr:int -> len:int -> unit
(** Ensure pages backing [addr, addr+len) exist (fresh zero frames). *)

val got_addr : Uproc.t -> int -> int
(** Address of a GOT slot. Raises [Invalid_argument] on slot overflow. *)

val meta_addr : Uproc.t -> int -> int
(** Address of an allocator-metadata granule. *)

val touch_pages_for_write : t -> Uproc.t -> int list -> unit
(** Simulate user stores to the given vpns: any write-protected mapping
    gets a write fault delivered to the flavour's fault hook (used to model
    post-fork working-set writes). *)

val kernel_wait : ?proc:Uproc.t -> t -> Ufork_sim.Sync.Cond.t -> unit
(** Block on a condition from inside a syscall: under the legacy BKL,
    releases the lock while suspended and re-acquires it on resume;
    the sharded kernel holds no global lock across syscalls, so there
    is nothing to drop. Recharges the context switch (+ address-space
    switch on multi-AS kernels) on resume. When [proc] is given and a
    SIGKILL arrived while blocked, unwinds with {!Killed_signal}. *)

val with_syscall : t -> ?proc:Uproc.t -> ?bytes:int -> string -> (unit -> 'a) -> 'a
(** Charge syscall entry (per the configured mode), argument-validation
    work when full isolation is on, TOCTTOU buffer copies for [bytes]
    bytes when enabled, then run the body under the locking discipline:
    the whole body inside {!with_biglock} under
    {!Config.Big_kernel_lock}, unserialized (resource locks taken at
    each touch point) under {!Config.Sharded_locks}. [proc] enables
    kill delivery at the entry check. *)

exception Killed_signal
(** Unwinds a process that received SIGKILL; converted into the exit path
    by {!spawn_process}. *)

(** {1 Locking}

    Two disciplines, selected by {!Config.lock_mode}. Under the legacy
    big kernel lock, {!with_biglock} serializes whole syscall bodies
    and every per-resource helper is a no-op. Under sharded locking,
    {!with_biglock} is the no-op and each shared structure is guarded
    by its own named {!Ufork_sim.Sync.Rlock} — [lock.frame_pool],
    [lock.uproc_table], [lock.fd_tables], [lock.stats],
    [lock.pt_shard.NN] — all registered on the {!Ufork_util.Hb} bus so
    the race detector certifies the split and names the resource in
    its reports.

    Lock hierarchy (outermost first):
    uproc_table > fd_tables > pt_shard > frame_pool > stats. *)

val with_biglock : t -> (unit -> 'a) -> 'a
(** The legacy-BKL shim. The only legitimate call site is
    {!with_syscall} in this module; lint rule D9 bans new ones so the
    sharded kernel cannot quietly grow back a global serialization
    point. *)

val with_uproc_table : t -> (unit -> 'a) -> 'a
(** Pid allocation, the process table, the area index. *)

val with_fd_tables : t -> (unit -> 'a) -> 'a
(** Cross-process descriptor-table traffic (fork/spawn dup_all). *)

val with_stats : t -> (unit -> 'a) -> 'a
(** Shared gauges, e.g. the last-fork-latency gauge every fork
    writes. *)

val with_pt_shard : t -> Uproc.t -> (unit -> 'a) -> 'a
(** The page-table shard covering the μprocess's area (shards are
    indexed by area base, so one area maps to one shard). *)

val with_pt_shard_pair : t -> Uproc.t -> Uproc.t -> (unit -> 'a) -> 'a
(** Both processes' shards in ascending shard order (deadlock-free for
    concurrent forks); one acquisition when they collide. Fork's
    duplicate phase runs under this. *)

val chaos_disable_biglock : t -> unit
(** Chaos injection only: drop every kernel lock so syscalls and fault
    handlers run unserialized. The happens-before race detector must
    flag the shared writes that then go unordered. *)

val chaos_unshard_stats : t -> unit
(** Chaos injection only: disable just the stats shard of the sharded
    kernel, leaving every other lock intact — the minimal seeded bug
    for the lock split. Concurrent writers of a shared gauge then race
    and the detector must report exactly that location (R1). *)

val chaos_acquire_shards_descending : t -> unit
(** Chaos injection only: acquire one page-table shard pair in
    descending index order — the inversion of the ascending convention
    {!with_pt_shard_pair} enforces. Run on a rogue thread under the
    lock-order checker, the run must fail with exactly R2. No-op under
    the big lock or the lockless chaos mode (nothing to invert). *)

val chaos_stall_cycles : int64
(** How long {!chaos_stall_shard} sits on the shard. *)

val chaos_stall_shard : t -> unit
(** Chaos injection only: hold page-table shard 0 (the root process's
    shard) for {!chaos_stall_cycles} of simulated time while sleeping —
    a deliberate long stall that serializes every fork behind a
    non-running holder. Must be called from an engine thread. Run under
    the causal analyzer, the analysis must report this lock as the
    dominant critical-path edge (R3). No-op when the kernel is not
    sharded. *)

val chaos_leak_root : t -> bool
(** Chaos injection only: store the kernel's root capability into the
    first running μprocess's GOT slot 0, via the kernel's own unconfined
    store path. No architectural check can object — only the capflow
    taint invariant (R4) can notice root authority reachable from user
    pages. [false] while no process is running yet (the harness retries
    from a rogue boot thread until it lands). *)

val syscall_entry_cap : t -> Capability.t
(** The sealed kernel entry capability every μprocess holds: invocable
    (that is the system call), never dereferenceable or unsealable by
    user code (§4.2, §4.4). *)

(** {1 The application interface} *)

val build_api :
  t -> ?reloc:(Capability.t -> Capability.t) -> Uproc.t -> Api.t
(** The {!Api.t} for a process context. [reloc] is the fork-register
    translation (default identity). *)

(** {1 Accounting} *)

val total_frames_in_use : t -> int

val arena_span : t -> int
(** High-water mark of the shared virtual arena: how much contiguous
    address space μprocess areas have ever claimed (§6's fragmentation
    concern). Freed areas are recycled first-fit, so uniform fork/exit
    churn keeps this flat; mixed sizes can grow it. *)

val live_area_bytes : t -> int
(** Sum of the areas of live and zombie processes — the "useful" part of
    {!arena_span}; the difference is fragmentation. *)

val last_fork_latency : t -> int64
(** Cycles spent inside the most recent fork on this kernel (the
    {!Ufork_sim.Trace.last_fork_latency} gauge; 0 before the first
    fork). *)

(** {1 Introspection}

    Read-only views of the machine state for the
    {!Ufork_analysis.Checker} sanitizer sweep. Deterministic orders (by
    pid / sorted name) so violation reports are stable. *)

val fold_uprocs : t -> init:'a -> f:('a -> Uproc.t -> 'a) -> 'a
(** Every registered μprocess — running, zombie and reaped — in pid
    order. *)

val iter_uprocs : t -> (Uproc.t -> unit) -> unit

val areas : t -> (int * int * int) list
(** The [(base, bytes, pid)] areas of live and zombie processes (reaped
    areas leave this list and become reusable holes), sorted by base. *)

val named_segment_frames : t -> (string * Ufork_mem.Phys.frame array) list
(** The frames backing named shared-memory segments (["shm:<name>"]) and
    shared-library text (["lib:<name>"]). The kernel's table holds one
    reference per frame on top of any mappings. Sorted by name. *)

val pp_meter : Format.formatter -> t -> unit
