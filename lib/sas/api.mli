(** The portable OS interface applications are written against.

    Apps (the Redis-like store, the Nginx-like server, the FaaS runtime,
    the Unixbench ports) call only these operations, so the same
    application code runs unmodified on μFork, on the monolithic baseline
    and on the VM-clone baseline — mirroring the paper's transparency goal
    (R2). Each OS flavour builds one [t] per process context.

    {b Fork semantics under simulation.} POSIX fork returns twice; OCaml
    closures cannot be duplicated, so [fork] takes the child's continuation
    explicitly. The memory semantics are faithful — the child gets a
    (lazily) copied, relocated view of the parent's simulated memory — and
    the child's [reloc] translates any capability values the closure
    captured from the parent's scope, modelling μFork's relocation of
    capability registers at fork (§3.5 step 2). On the baselines the
    child's layout equals the parent's and [reloc] is the identity. *)

type cap = Ufork_cheri.Capability.t

exception Sys_error of string
(** Syscall-level failure (bad fd, missing file, broken pipe, ENOMEM...). *)

type open_mode = [ `Read | `Write | `Create | `Append ]

type t = {
  (* Process management. *)
  getpid : unit -> int;
  fork : (t -> unit) -> int;
      (** Create a child μprocess running the given continuation; returns
          the child's pid to the parent. *)
  exit : int -> unit;
      (** Terminate the calling process with a status; does not return
          (raises the internal exit signal caught by the kernel). *)
  wait : unit -> int * int;
      (** Block until a child exits; returns (pid, status). Raises
          [Sys_error] when there are no children. *)
  spawn : (t -> unit) -> int;
      (** posix_spawn-style process creation (the fork+exec replacement of
          §2.3): a fresh process from the same program image, inheriting
          file descriptors but no memory state. *)
  kill : int -> unit;
      (** Mark a process for termination (SIGKILL); delivered at its next
          kernel entry or blocking resume. Raises [Sys_error] for a bad
          pid. *)
  reloc : cap -> cap;
      (** Translate a capability inherited from the parent at fork time
          into this process's area (identity except in a μFork child). *)
  (* Memory. *)
  malloc : int -> cap;
      (** Allocate from the process heap; the capability is bounded to the
          block (and to the μprocess area). Raises [Sys_error] on
          exhaustion. *)
  free : cap -> unit;
  read_bytes : cap -> off:int -> len:int -> bytes;
      (** Data load at [cursor cap + off]. *)
  write_bytes : cap -> off:int -> bytes -> unit;
  read_u64 : cap -> off:int -> int64;
  write_u64 : cap -> off:int -> int64 -> unit;
  load_cap : cap -> off:int -> cap;
      (** Capability load (16-byte aligned) — the access CoPA may fault
          on. *)
  store_cap : cap -> off:int -> cap -> unit;
  got_set : int -> cap -> unit;
      (** Store a capability in a GOT slot (how apps keep globals that
          survive fork: the GOT is proactively copied and relocated). *)
  got_get : int -> cap;
  (* CPU. *)
  compute : int64 -> unit;  (** Consume CPU cycles (application work). *)
  now : unit -> int64;  (** Simulated clock (cycles). *)
  (* Files and pipes. *)
  open_ : string -> open_mode -> int;
  close : int -> unit;
  read : int -> int -> bytes;
      (** [read fd n]: up to [n] bytes; empty result means EOF. Blocks on
          an empty pipe. *)
  pread : int -> off:int -> int -> bytes;
      (** Positional read on a file descriptor (files only). *)
  write : int -> bytes -> int;
  rename : src:string -> dst:string -> unit;
  unlink : string -> unit;
  pipe : unit -> int * int;  (** (read end, write end). *)
  shm_open : string -> int -> cap;
      (** Find-or-create a named shared-memory segment of the given size
          and map it (§3.7): the returned capability window is backed by
          the same frames in every process that opens the name, and fork
          keeps it shared. *)
  map_library : string -> int -> cap;
      (** Map a named shared library (§3.7): like [shm_open] but read-only
          and executable, "creating capabilities with the proper
          permissions". Every process mapping the same name shares the
          frames, so library text costs physical memory once. *)
  (* Introspection used by benchmarks (not part of the POSIX surface). *)
  stats_private_bytes : unit -> int;
  stats_heap_used : unit -> int;
  yield : unit -> unit;
  sleep : int64 -> unit;
      (* Block for the given simulated time (network/device waits); the
         core is released while sleeping. *)
}

exception Exited of int
(** Internal control signal raised by [exit]; the kernel catches it at the
    top of the process thread. Applications must not intercept it. *)
