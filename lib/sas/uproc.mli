(** μprocesses: the emulated POSIX processes of §3.4.

    A μprocess occupies one contiguous area of the virtual address space
    (Fig. 1), subdivided into GOT, code, data, stack, allocator-metadata
    and heap regions. The same record also serves as the process control
    block of the baseline OSes — there the area base is identical for every
    process and isolation comes from per-process page tables instead of
    capability bounds. *)

type state = Running | Zombie of int  (** exit status *) | Reaped

type regions = {
  got_base : int;
  got_bytes : int;
  code_base : int;
  code_bytes : int;
  data_base : int;
  data_bytes : int;
  stack_base : int;
  stack_bytes : int;
  meta_base : int;
  meta_bytes : int;
  heap_base : int;
  heap_bytes : int;
}

type t = {
  pid : int;
  parent_pid : int option;
  image : Image.t;
  area_base : int;
  area_bytes : int;
  regions : regions;
  pt : Ufork_mem.Page_table.t;
      (** The global table in the SASOS; a private one per process on the
          multi-address-space baselines. *)
  mutable allocator : Tinyalloc.t;
  fds : Fdesc.Fdtable.t;
  mutable state : state;
  mutable children : int list;
  exited_child : Ufork_sim.Sync.Cond.t;  (** Signalled on child exit. *)
  mutable private_bytes : int;
      (** Physical memory attributable to this process beyond what it
          shares with others: privately materialized frames plus kernel
          per-process state. This is the metric of Fig. 5 and Fig. 8. *)
  mutable first_alloc_done : bool;
      (** Used by the monolithic baseline's arena-pretouch model. *)
  mutable forked : bool;  (** True for processes created by fork. *)
  mutable killed : bool;
      (** A pending SIGKILL: honoured at the next kernel entry or blocking
          resume (§4.5's per-μprocess signals, minimally). *)
  mutable kernel_waker : Ufork_sim.Engine.waker option;
      (** While blocked inside a syscall, the waker that interrupts the
          wait — how a kill reaches a process sleeping in the kernel. *)
}

val layout_regions : Image.t -> area_base:int -> regions
(** Carve the area at [area_base] into page-aligned regions with guard
    pages between them, in the order GOT, code, data, stack, metadata,
    heap. The result fits within {!Image.area_bytes}. *)

val create :
  pid:int ->
  ?parent_pid:int ->
  image:Image.t ->
  area_base:int ->
  pt:Ufork_mem.Page_table.t ->
  ?fds:Fdesc.Fdtable.t ->
  unit ->
  t
(** Builds the record (regions, allocator mirror, fd table); does not map
    any pages — the kernel does that. *)

val delta : parent:t -> child:t -> int
(** [child.area_base - parent.area_base]: the relocation displacement. *)

val region_of_addr : t -> int -> string option
(** Region name containing the address, for diagnostics. *)

val contains : t -> int -> bool
(** Address lies within the μprocess area. *)

val pp : Format.formatter -> t -> unit
