(** In-memory filesystem (ramdisk).

    The evaluation stores Redis dumps and Nginx document roots on a
    ram-disk "minimizing I/O latency" (§5.1); this VFS models exactly that:
    named growable byte files, no block layer. Costs are charged by the
    syscall layer, not here. *)

type t
type file

val create : unit -> t

val open_ : t -> string -> [ `Read | `Write | `Create | `Append ] -> file
(** [`Read] requires the file to exist (raises [Not_found]); [`Create]
    truncates or creates; [`Append] creates if needed and seeks to the
    end; [`Write] opens an existing file for writing at offset 0. *)

val read : file -> int -> bytes
(** Sequential read from the file cursor; short result at EOF. *)

val write : file -> bytes -> int
(** Sequential write at the cursor, growing the file; returns the count. *)

val seek : file -> int -> unit
val size_of : file -> int
val close : file -> unit

val exists : t -> string -> bool
val size : t -> string -> int
(** Raises [Not_found]. *)

val contents : t -> string -> string
(** Whole-file read (test/verification helper). Raises [Not_found]. *)

val put : t -> string -> string -> unit
(** Create/overwrite a file with the given contents (setup helper). *)

val rename : t -> src:string -> dst:string -> unit
(** Raises [Not_found] if [src] is missing; replaces [dst]. *)

val unlink : t -> string -> unit
val list : t -> string list
(** Sorted file names. *)
