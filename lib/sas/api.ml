type cap = Ufork_cheri.Capability.t

exception Sys_error of string

type open_mode = [ `Read | `Write | `Create | `Append ]

type t = {
  getpid : unit -> int;
  fork : (t -> unit) -> int;
  exit : int -> unit;
  wait : unit -> int * int;
  spawn : (t -> unit) -> int;
  kill : int -> unit;
  reloc : cap -> cap;
  malloc : int -> cap;
  free : cap -> unit;
  read_bytes : cap -> off:int -> len:int -> bytes;
  write_bytes : cap -> off:int -> bytes -> unit;
  read_u64 : cap -> off:int -> int64;
  write_u64 : cap -> off:int -> int64 -> unit;
  load_cap : cap -> off:int -> cap;
  store_cap : cap -> off:int -> cap -> unit;
  got_set : int -> cap -> unit;
  got_get : int -> cap;
  compute : int64 -> unit;
  now : unit -> int64;
  open_ : string -> open_mode -> int;
  close : int -> unit;
  read : int -> int -> bytes;
  pread : int -> off:int -> int -> bytes;
  write : int -> bytes -> int;
  rename : src:string -> dst:string -> unit;
  unlink : string -> unit;
  pipe : unit -> int * int;
  shm_open : string -> int -> cap;
  map_library : string -> int -> cap;
  stats_private_bytes : unit -> int;
  stats_heap_used : unit -> int;
  yield : unit -> unit;
  sleep : int64 -> unit;
      (* Block for the given simulated time (network/device waits); the
         core is released while sleeping. *)
}

exception Exited of int
