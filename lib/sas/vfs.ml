type node = { mutable data : Bytes.t; mutable len : int }

type t = (string, node) Hashtbl.t

type file = { node : node; mutable cursor : int; mutable open_ : bool }

let create () = Hashtbl.create 16

let node_get t name =
  match Hashtbl.find_opt t name with
  | Some n -> n
  | None -> raise Not_found

let node_create t name =
  let n = { data = Bytes.create 256; len = 0 } in
  Hashtbl.replace t name n;
  n

let open_ t name mode =
  match mode with
  | `Read -> { node = node_get t name; cursor = 0; open_ = true }
  | `Write -> { node = node_get t name; cursor = 0; open_ = true }
  | `Create ->
      let n = node_create t name in
      { node = n; cursor = 0; open_ = true }
  | `Append ->
      let n =
        match Hashtbl.find_opt t name with
        | Some n -> n
        | None -> node_create t name
      in
      { node = n; cursor = n.len; open_ = true }

let check f = if not f.open_ then invalid_arg "Vfs: file is closed"

let read f n =
  check f;
  let avail = max 0 (f.node.len - f.cursor) in
  let k = min n avail in
  let out = Bytes.sub f.node.data f.cursor k in
  f.cursor <- f.cursor + k;
  out

let ensure node cap =
  if Bytes.length node.data < cap then begin
    let ncap = max cap (2 * Bytes.length node.data) in
    let d = Bytes.create ncap in
    Bytes.blit node.data 0 d 0 node.len;
    node.data <- d
  end

let write f b =
  check f;
  let n = Bytes.length b in
  ensure f.node (f.cursor + n);
  Bytes.blit b 0 f.node.data f.cursor n;
  f.cursor <- f.cursor + n;
  if f.cursor > f.node.len then f.node.len <- f.cursor;
  n

let seek f pos =
  check f;
  if pos < 0 then invalid_arg "Vfs.seek";
  f.cursor <- pos

let size_of f = f.node.len
let close f = f.open_ <- false

let exists t name = Hashtbl.mem t name
let size t name = (node_get t name).len
let contents t name =
  let n = node_get t name in
  Bytes.sub_string n.data 0 n.len

let put t name s =
  let n = node_create t name in
  ensure n (String.length s);
  Bytes.blit_string s 0 n.data 0 (String.length s);
  n.len <- String.length s

let rename t ~src ~dst =
  let n = node_get t src in
  Hashtbl.remove t src;
  Hashtbl.replace t dst n

let unlink t name =
  if not (Hashtbl.mem t name) then raise Not_found;
  Hashtbl.remove t name

let list t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort compare
