(** File descriptors and per-process descriptor tables.

    POSIX mandates that fork duplicates the parent's open descriptors
    (§3.5 step 1: "relevant system resources are also duplicated ... e.g.,
    open file and message queue descriptors"); {!Fdtable.dup_all} is that
    operation. Descriptions (the open-file objects) are shared between
    parent and child; descriptors (the integer slots) are per-process. *)

type description =
  | Vfs_file of Vfs.file
  | Pipe_read of Pipe.t
  | Pipe_write of Pipe.t
  | Null

type entry = { desc : description; mutable refcount : int ref }
(** [refcount] is shared by all descriptors referring to the description;
    pipe ends close when it drops to zero. *)

module Fdtable : sig
  type t

  val create : unit -> t
  (** Descriptors 0..2 are pre-opened to [Null]. *)

  val alloc : t -> description -> int
  (** Lowest free descriptor. *)

  val get : t -> int -> description
  (** Raises [Not_found] for a bad descriptor. *)

  val close : t -> int -> unit
  (** Releases the slot; when the shared refcount reaches zero, pipe ends
      are closed. Raises [Not_found] for a bad descriptor. *)

  val dup_all : t -> t
  (** The fork duplication: same descriptor numbers, shared descriptions,
      refcounts bumped. *)

  val close_all : t -> unit
  (** Process exit: close every descriptor. *)

  val open_count : t -> int
end
