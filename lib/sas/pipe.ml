module Sync = Ufork_sim.Sync

exception Broken_pipe

type write_result = Wrote of int | Would_block
type read_result = Data of bytes | Eof | Empty

type t = {
  capacity : int;
  buf : Buffer.t;
  readable : Sync.Cond.t;
  writable : Sync.Cond.t;
  mutable read_open : bool;
  mutable write_open : bool;
}

let create ?(capacity = 64 * 1024) () =
  if capacity <= 0 then invalid_arg "Pipe.create";
  {
    capacity;
    buf = Buffer.create 256;
    readable = Sync.Cond.create ();
    writable = Sync.Cond.create ();
    read_open = true;
    write_open = true;
  }

let capacity t = t.capacity
let available t = Buffer.length t.buf

let try_write t b =
  if not t.read_open then raise Broken_pipe;
  let room = t.capacity - Buffer.length t.buf in
  if room <= 0 then Would_block
  else begin
    let n = min room (Bytes.length b) in
    Buffer.add_subbytes t.buf b 0 n;
    Sync.Cond.broadcast t.readable;
    Wrote n
  end

let try_read t n =
  if n < 0 then invalid_arg "Pipe.try_read";
  let avail = Buffer.length t.buf in
  if avail = 0 then if t.write_open then Empty else Eof
  else begin
    let k = min n avail in
    let out = Bytes.of_string (Buffer.sub t.buf 0 k) in
    let rest = Buffer.sub t.buf k (avail - k) in
    Buffer.clear t.buf;
    Buffer.add_string t.buf rest;
    Sync.Cond.broadcast t.writable;
    Data out
  end

let readable t = t.readable
let writable t = t.writable

let close_read t =
  t.read_open <- false;
  Sync.Cond.broadcast t.writable

let close_write t =
  t.write_open <- false;
  Sync.Cond.broadcast t.readable

let read_open t = t.read_open
let write_open t = t.write_open
