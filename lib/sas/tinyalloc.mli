(** Per-μprocess heap allocator (modelled on Unikraft's tinyalloc, §4.1).

    Placement logic (first-fit free list with coalescing, 16-byte aligned)
    runs in OCaml for tractability; the allocator's {e metadata} footprint
    is faithfully materialized in simulated memory by the kernel: each live
    block owns one 16-byte granule in the μprocess's metadata region, into
    which the kernel stores a capability to the block. Those are exactly
    the "pages containing memory-allocator metadata" that μFork proactively
    copies and relocates at fork (§3.5) — and because the granule holds a
    real capability, the relocation scan fixes it like any other pointer.

    [clone ~delta] rebases the mirror for a forked child, the bookkeeping
    twin of that proactive copy. *)

type t

type block = { addr : int; size : int; meta_index : int }
(** [meta_index] is the granule index of the block's metadata record within
    the metadata region. *)

val create : heap_base:int -> heap_size:int -> meta_capacity_granules:int -> t
(** Manages [heap_base, heap_base+heap_size). Raises [Invalid_argument] on
    non-positive sizes or unaligned base. *)

exception Out_of_heap

val alloc : t -> int -> block
(** 16-byte aligned first fit. @raise Out_of_heap when no span fits or the
    metadata region is exhausted. *)

val free : t -> int -> block
(** [free t addr] releases the block starting at [addr], returning its
    record (the kernel clears its metadata granule). Raises
    [Invalid_argument] for an address that is not a live block start. *)

val block_of_addr : t -> int -> block option
(** The live block containing (not merely starting at) the address. *)

val clone : t -> delta:int -> t
(** Identical allocator state shifted by [delta] bytes — the child's heap
    mirror after μFork relocation. *)

val used_bytes : t -> int
val live_blocks : t -> int
val heap_base : t -> int
val heap_size : t -> int
val high_water_meta_granules : t -> int
(** Highest metadata granule ever used + 1; determines how many metadata
    pages the kernel must proactively copy at fork. *)

val iter_blocks : t -> (block -> unit) -> unit
(** Ascending address order. *)
