module Addr = Ufork_mem.Addr

type t = {
  name : string;
  code_bytes : int;
  data_bytes : int;
  stack_bytes : int;
  heap_bytes : int;
  got_slots : int;
}

let make ?(code_bytes = 64 * 1024) ?(data_bytes = 16 * 1024)
    ?(stack_bytes = 32 * 1024) ?(heap_bytes = 1024 * 1024) ?(got_slots = 256)
    name =
  if code_bytes <= 0 || data_bytes <= 0 || stack_bytes <= 0 || heap_bytes <= 0
  then invalid_arg "Image.make: non-positive region";
  { name; code_bytes; data_bytes; stack_bytes; heap_bytes; got_slots }

let hello =
  make ~code_bytes:(16 * 1024) ~data_bytes:(8 * 1024) ~stack_bytes:(16 * 1024)
    ~heap_bytes:(64 * 1024) "hello"

let redis ~heap_bytes =
  make ~code_bytes:(2 * 1024 * 1024) ~data_bytes:(512 * 1024)
    ~stack_bytes:(256 * 1024) ~heap_bytes ~got_slots:512 "redis"

let nginx =
  make ~code_bytes:(1536 * 1024) ~data_bytes:(512 * 1024)
    ~stack_bytes:(128 * 1024)
    ~heap_bytes:(8 * 1024 * 1024)
    ~got_slots:512 "nginx"

let micropython =
  make ~code_bytes:(768 * 1024) ~data_bytes:(256 * 1024)
    ~stack_bytes:(128 * 1024)
    ~heap_bytes:(4 * 1024 * 1024)
    ~got_slots:512 "micropython"

let got_pages t =
  let bytes = t.got_slots * Addr.granule_size in
  Addr.bytes_to_pages bytes

let metadata_capacity_bytes t =
  max Addr.page_size (Addr.align_up (t.heap_bytes / 256) Addr.page_size)

let page_align = Addr.page_size

let area_bytes t =
  let a v = Addr.align_up v page_align in
  a (got_pages t * Addr.page_size)
  + a t.code_bytes + a t.data_bytes + a t.stack_bytes
  + a (metadata_capacity_bytes t)
  + a t.heap_bytes
  + (6 * Addr.page_size) (* guard pages between regions *)
