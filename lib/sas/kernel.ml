module Capability = Ufork_cheri.Capability
module Perms = Ufork_cheri.Perms
module Addr = Ufork_mem.Addr
module Phys = Ufork_mem.Phys
module Pte = Ufork_mem.Pte
module Page_table = Ufork_mem.Page_table
module Vas = Ufork_mem.Vas
module Engine = Ufork_sim.Engine
module Sync = Ufork_sim.Sync
module Costs = Ufork_sim.Costs
module Meter = Ufork_sim.Meter
module Event = Ufork_sim.Event
module Trace = Ufork_sim.Trace

(* The shared single-address-space arena starts above the kernel region. *)
let kernel_region_bytes = 64 * 1024 * 1024
let user_arena_base = kernel_region_bytes

(* Sorted interval index over live+zombie μprocess areas: base → entries.
   Live areas are disjoint in a single address space, so the predecessor
   query answers containment in O(log areas); multi-AS kernels stack every
   process at [user_arena_base], hence a list per base. *)
module Area_index = Map.Make (Int)

(* {1 Kernel locking}

   Two disciplines, selected by {!Config.lock_mode}:

   - [Big]: the legacy big kernel lock (Unikraft SMP, §4.5) — one
     recursive lock serializing every syscall body across cores.
     Recursion is needed because a fault raised inside a syscall
     (e.g. copyout hitting a CoW page) re-enters the kernel on the
     same thread, and a plain lock would self-deadlock the
     cooperative engine.
   - [Sharded]: per-resource locks. Syscall bodies run concurrently;
     each shared structure gets its own named lock, every one
     registered with the {!Ufork_util.Hb} bus so the FastTrack
     detector certifies the split.

   Lock hierarchy (outermost first):
     uproc_table > fd_tables > pt_shard > frame_pool > stats.
   Page-table shards are indexed by area base, so one μprocess's whole
   area maps to one shard; fork takes the parent and child shards in
   ascending index order. Fault service takes no table lock at all: a
   handler writes only its own process's PTEs plus atomic frame
   refcounts (the ownership discipline the detector checks). *)

let pt_shard_count = 16

type locks =
  | No_locks  (** chaos injection only *)
  | Big of Ufork_sim.Sync.Rlock.t
  | Sharded of {
      frame_pool : Ufork_sim.Sync.Rlock.t;
          (** shared free pool behind the per-core freelists *)
      uproc_table : Ufork_sim.Sync.Rlock.t;
          (** pid allocation, the process table, the area index *)
      fd_tables : Ufork_sim.Sync.Rlock.t;
          (** cross-process descriptor-table traffic (fork/spawn dup) *)
      stats : Ufork_sim.Sync.Rlock.t;
          (** shared gauges (e.g. the last-fork-latency gauge) *)
      pt_shards : Ufork_sim.Sync.Rlock.t array;
          (** page-table shards, indexed by μprocess area base *)
    }

type t = {
  engine : Engine.t;
  costs : Costs.t;
  config : Config.t;
  trace : Trace.t;
  phys : Phys.t;
  vfs : Vfs.t;
  mutable locks : locks;
  mutable stats_lock_disabled : bool; (* chaos: unshard the stats lock *)
  procs : (int, Uproc.t) Hashtbl.t;
  mutable next_pid : int;
  root : Capability.t;
  multi_as : bool;
  shared_pt : Page_table.t option; (* the single table of the SASOS *)
  mutable next_area : int;
  mutable free_areas : (int * int) list; (* (base, bytes) of reaped areas *)
  mutable fork_hook : (Uproc.t -> (Api.t -> unit) -> int) option;
  mutable fault_hook : (Uproc.t -> addr:int -> access:Vas.access -> unit) option;
  mutable areas : (int * int) list Area_index.t;
      (* base → (bytes, pid) entries, live+zombie, newest first *)
  shms : (string, Phys.frame array) Hashtbl.t; (* named shared memory *)
  libs : (string, Phys.frame array) Hashtbl.t; (* shared library text *)
  aslr : Ufork_util.Prng.t option;
  entry_cap : Capability.t;
      (* The sealed kernel entry capability handed to every uprocess: the
         only way into kernel code without a trap (§4.2, §4.4). *)
}

let make_locks ~frame_pool = function
  | Config.Big_kernel_lock -> Big (Sync.Rlock.create ~name:"lock.kernel.big" ())
  | Config.Sharded_locks ->
      Sharded
        {
          frame_pool;
          uproc_table = Sync.Rlock.create ~name:"lock.uproc_table" ();
          fd_tables = Sync.Rlock.create ~name:"lock.fd_tables" ();
          stats = Sync.Rlock.create ~name:"lock.stats" ();
          pt_shards =
            Array.init pt_shard_count (fun i ->
                Sync.Rlock.create
                  ~name:(Printf.sprintf "lock.pt_shard.%02d" i)
                  ());
        }

let create ~engine ~costs ~config ~multi_address_space () =
  let phys = Phys.create ~cores:(Engine.cores engine) () in
  (* One frame-pool lock regardless of regime: under [Sharded] it is the
     sharded frame_pool resource itself; under [Big] it additionally
     serializes the batched freelist refill/drain transfers Phys runs
     against the shared pool (installed as the pool guard below). *)
  let frame_pool_lock = Sync.Rlock.create ~name:"lock.frame_pool" () in
  let root = Capability.root () in
  let entry_cap =
    (* Points at the system-call handler in the kernel region, executable
       but sealed: invocable, never inspectable or modifiable. *)
    let target =
      Capability.mint ~parent:root ~base:0x1000 ~length:0x1000
        ~perms:Perms.user_code
    in
    Capability.seal ~authority:root target Ufork_cheri.Otype.syscall_entry
  in
  let t =
  {
    engine;
    costs;
    config;
    trace = Trace.create ~engine ~costs ();
    phys;
    vfs = Vfs.create ();
    locks = make_locks ~frame_pool:frame_pool_lock config.Config.lock_mode;
    stats_lock_disabled = false;
    procs = Hashtbl.create 64;
    next_pid = 0;
    root;
    multi_as = multi_address_space;
    shared_pt =
      (if multi_address_space then None else Some (Page_table.create phys));
    next_area = user_arena_base;
    free_areas = [];
    fork_hook = None;
    fault_hook = None;
    areas = Area_index.empty;
    shms = Hashtbl.create 8;
    libs = Hashtbl.create 8;
    aslr =
      Option.map
        (fun seed -> Ufork_util.Prng.create ~seed)
        config.Config.aslr_seed;
    entry_cap;
  }
  in
  (* Refill/drain transfers against the shared pool run deep inside
     Phys (under whatever lock the caller holds — or none, on the fault
     path), so the pool lock is injected rather than taken by a kernel
     helper. Re-entry from {!with_frame_pool} is free: the Rlock only
     touches the underlying lock on the outermost acquire. *)
  Phys.set_pool_guard phys (fun f ->
      match t.locks with
      | No_locks -> f ()
      | Big _ | Sharded _ -> Sync.Rlock.with_lock frame_pool_lock f);
  t

let engine t = t.engine
let costs t = t.costs
let config t = t.config
let trace t = t.trace
let meter t = Trace.meter t.trace
let phys t = t.phys
let vfs t = t.vfs
let multi_address_space t = t.multi_as
let root_cap t = t.root
let set_fork_hook t f = t.fork_hook <- Some f
let set_fault_hook t f = t.fault_hook <- Some f

(* The legacy big-lock shim: under [Big] this is THE serialization point
   (held for every syscall body); under sharded locking it is a no-op —
   the per-resource helpers below do the work. Lint rule D9 bans new
   call sites outside this module so the sharded kernel cannot quietly
   grow back a global serialization point. *)
let with_biglock t f =
  match t.locks with
  | Big l -> Sync.Rlock.with_lock l f
  | No_locks | Sharded _ -> f ()

(* Per-resource helpers. Under [Big] the caller already sits inside
   {!with_biglock} (every syscall body does), so they collapse to
   nothing rather than nest a second lock level. *)
let with_uproc_table t f =
  match t.locks with
  | Sharded s -> Sync.Rlock.with_lock s.uproc_table f
  | Big _ | No_locks -> f ()

let with_fd_tables t f =
  match t.locks with
  | Sharded s -> Sync.Rlock.with_lock s.fd_tables f
  | Big _ | No_locks -> f ()

let with_stats t f =
  match t.locks with
  | Sharded s when not t.stats_lock_disabled ->
      Sync.Rlock.with_lock s.stats f
  | Big _ | No_locks | Sharded _ -> f ()

(* The frame-pool lock guards the shared pool behind the per-core
   freelists, so it is taken only when this allocation would actually
   touch shared state ({!Phys.needs_global}) — the common alloc/release
   pair runs entirely on the calling core's cache, lock-free. *)
let with_frame_pool t ~frames f =
  match t.locks with
  | Sharded s when Phys.needs_global t.phys frames ->
      Sync.Rlock.with_lock s.frame_pool f
  | Big _ | No_locks | Sharded _ -> f ()

(* One μprocess area (contiguous, page-aligned base) maps to one shard,
   so a fork orders exactly two of these. *)
let pt_shard_index ~area_base = area_base / Addr.page_size mod pt_shard_count

let with_pt_shard t (u : Uproc.t) f =
  match t.locks with
  | Sharded s ->
      Sync.Rlock.with_lock
        s.pt_shards.(pt_shard_index ~area_base:u.Uproc.area_base)
        f
  | Big _ | No_locks -> f ()

let with_pt_shard_pair t (a : Uproc.t) (b : Uproc.t) f =
  match t.locks with
  | Sharded s ->
      let i = pt_shard_index ~area_base:a.Uproc.area_base in
      let j = pt_shard_index ~area_base:b.Uproc.area_base in
      if i = j then Sync.Rlock.with_lock s.pt_shards.(i) f
      else
        (* Ascending shard order: the global acquisition order that makes
           concurrent fork pairs deadlock-free. *)
        let lo, hi = if i < j then (i, j) else (j, i) in
        Sync.Rlock.with_lock s.pt_shards.(lo) (fun () ->
            Sync.Rlock.with_lock s.pt_shards.(hi) f)
  | Big _ | No_locks -> f ()
[@@ufork.lock_order "lock.pt_shard < lock.pt_shard"]
(* The declared self-order: nesting inside the pt-shard class is legal
   here exactly because [lo < hi] — the index-ascending side condition
   the static rule D10 checks at constant-index sites and the runtime
   checker (R2) enforces per-index on every run. *)

let chaos_disable_biglock t =
  (* Chaos-only: models a kernel whose fault path forgot every lock.
     The race detector's job is to notice what then goes unordered. *)
  t.locks <- No_locks

let chaos_unshard_stats t =
  (* Chaos-only: keep every other shard but drop the stats lock — the
     minimal seeded bug for the sharded kernel. Two concurrent writers
     of a shared gauge then race, and the detector must report exactly
     that location. *)
  t.stats_lock_disabled <- true

let chaos_acquire_shards_descending t =
  (* Chaos-only: take one pt-shard pair in DESCENDING index order — the
     exact inversion of the ascending convention {!with_pt_shard_pair}
     enforces. The harness spawns this on a rogue boot thread so the
     runtime lock-order checker must fail the run with exactly R2. The
     static rule D10 is discharged here by the ignore annotation; an
     unannotated fixture of the same shape seeds the static test. *)
  match t.locks with
  | Sharded s ->
      Sync.Rlock.with_lock s.pt_shards.(1) (fun () ->
          Sync.Rlock.with_lock s.pt_shards.(0) (fun () -> ()))
  | Big _ | No_locks -> ()
[@@ufork.lockdep_ignore]

let chaos_stall_cycles = 150_000L

let chaos_stall_shard t =
  (* Chaos-only: grab pt-shard 0 — the shard covering the root process's
     area — and sit on it for 150k cycles without charging anything (a
     sleep passes wall time but no busy cycles, so Trace.audit is
     unaffected). Every fork touching that shard then queues behind a
     holder that is not even running. The causal analyzer must report
     this lock as the dominant critical-path edge; the harness spawns it
     on a rogue boot thread and asserts exactly that (R3). *)
  match t.locks with
  | Sharded s ->
      Sync.Rlock.with_lock s.pt_shards.(0) (fun () ->
          Engine.sleep chaos_stall_cycles)
  | Big _ | No_locks -> ()

(* Every mechanism event — cycles, counter bump, optional trace record —
   goes through the bus. Boot-time setup (and unit tests poking at the
   kernel directly) runs outside an engine thread; Trace.emit counts those
   events but skips the charge. *)
let emit ?proc t event =
  let pid = Option.map (fun (u : Uproc.t) -> u.Uproc.pid) proc in
  Trace.emit t.trace ?pid event

let with_span t ~name f = Trace.with_span t.trace ~name f

(* {1 Virtual-time stat sampling}

   Gauge snapshots for the profiler's time-series backend. The reader
   runs inside Trace's sampler hook, so it must stay emission-free:
   everything below is pure inspection of kernel state. *)

let stat_gauges t () =
  let frames = Phys.frames_in_use t.phys in
  let count_pending (u : Uproc.t) =
    Page_table.fold_range u.Uproc.pt
      ~vpn:(Addr.vpn_of_addr u.Uproc.area_base)
      ~count:(Addr.bytes_to_pages u.Uproc.area_bytes)
      ~init:0
      ~f:(fun _vpn pte acc ->
        match pte.Pte.share with
        | Pte.Cow_shared | Pte.Coa_shared | Pte.Copa_shared -> acc + 1
        | Pte.Private | Pte.Shm_shared -> acc)
  in
  let cow, rss_rev =
    Hashtbl.fold
      (fun _pid (u : Uproc.t) (cow, rss) ->
        match u.Uproc.state with
        | Uproc.Running ->
            ( cow + count_pending u,
              ( Trace.rss_bytes_key ~image:u.Uproc.image.Image.name
                  ~pid:u.Uproc.pid,
                u.Uproc.private_bytes )
              :: rss )
        | Uproc.Zombie _ -> (cow + count_pending u, rss)
        | _ -> (cow, rss))
      t.procs (0, [])
  in
  (Trace.frames_in_use_key, frames)
  :: (Trace.cow_pending_pages_key, cow)
  :: List.sort compare rss_rev

let enable_stat_sampling t ~interval =
  Trace.set_sampler t.trace ~interval (stat_gauges t)

let account_private _t (u : Uproc.t) ~bytes =
  u.Uproc.private_bytes <- u.Uproc.private_bytes + bytes

let fresh_frame t u =
  with_frame_pool t ~frames:1 (fun () ->
      emit ~proc:u t (Event.Page_alloc 1);
      account_private t u ~bytes:Addr.page_size;
      Phys.alloc t.phys)

(* Batched allocation: one [Page_alloc n] emission and one accounting
   update stand for [n] per-page calls — identical cycles and counts
   (the cost is linear in [n]), far fewer trace records. *)
let fresh_frames t u n =
  if n <= 0 then []
  else
    with_frame_pool t ~frames:n (fun () ->
        emit ~proc:u t (Event.Page_alloc n);
        account_private t u ~bytes:(n * Addr.page_size);
        List.init n (fun _ -> Phys.alloc t.phys))

(* {1 Areas} *)

let alloc_area t ~bytes_needed =
  let bytes = Addr.align_up bytes_needed Addr.page_size in
  (* Hole selection with splitting: the unused tail stays reusable. Under
     first fit, mixed-size churn still fragments the arena badly (small
     areas nibble the prefixes of the only holes large enough for big
     ones) — the §6 behaviour the fragmentation bench quantifies; best
     fit is the cheap mitigation. *)
  let take (b, s) others =
    let others =
      if s - bytes >= Addr.page_size then (b + bytes, s - bytes) :: others
      else others
    in
    t.free_areas <- others;
    Some b
  in
  let first_fit () =
    let rec find acc = function
      | [] -> None
      | (b, s) :: rest when s >= bytes -> take (b, s) (List.rev_append acc rest)
      | a :: rest -> find (a :: acc) rest
    in
    find [] t.free_areas
  in
  let best_fit () =
    let best =
      List.fold_left
        (fun acc (b, s) ->
          if s < bytes then acc
          else
            match acc with
            | Some (_, s') when s' <= s -> acc
            | Some _ | None -> Some (b, s))
        None t.free_areas
    in
    match best with
    | None -> None
    | Some (b, s) ->
        take (b, s) (List.filter (fun (b', _) -> b' <> b) t.free_areas)
  in
  let chosen =
    match t.config.Config.area_fit with
    | Config.First_fit -> first_fit ()
    | Config.Best_fit -> best_fit ()
  in
  match chosen with
  | Some base -> base
  | None ->
      (* ASLR (§3.7): randomize the base offset of each fresh area. *)
      let slide =
        match t.aslr with
        | None -> 0
        | Some g -> Ufork_util.Prng.int g 256 * Addr.page_size
      in
      let base = t.next_area + slide in
      t.next_area <- base + bytes + Addr.page_size (* guard *);
      base

(* {1 Process lifecycle} *)

let create_uproc t ?parent ?fds ~image () =
  with_uproc_table t @@ fun () ->
  t.next_pid <- t.next_pid + 1;
  let pid = t.next_pid in
  let pt =
    match t.shared_pt with
    | Some pt -> pt
    | None -> Page_table.create t.phys
  in
  let area_base =
    if t.multi_as then user_arena_base
    else alloc_area t ~bytes_needed:(Image.area_bytes image)
  in
  let parent_pid = Option.map (fun (p : Uproc.t) -> p.Uproc.pid) parent in
  let u = Uproc.create ~pid ?parent_pid ~image ~area_base ~pt ?fds () in
  account_private t u ~bytes:t.config.Config.kernel_overhead_bytes;
  (match parent with
  | Some p -> p.Uproc.children <- pid :: p.Uproc.children
  | None -> ());
  Hashtbl.replace t.procs pid u;
  (let entry = (Image.area_bytes image, pid) in
   t.areas <-
     Area_index.update area_base
       (function None -> Some [ entry ] | Some es -> Some (entry :: es))
       t.areas);
  u

let find_area_of_addr t addr =
  (* Predecessor query on the sorted index: only the area with the
     greatest base ≤ addr can contain it (areas are disjoint; multi-AS
     stacks share one base and sit in that key's entry list). *)
  match Area_index.find_last_opt (fun base -> base <= addr) t.areas with
  | None -> None
  | Some (base, entries) ->
      List.find_map
        (fun (bytes, _pid) ->
          if addr < base + bytes then Some (base, bytes) else None)
        entries

let find_uproc t pid = Hashtbl.find_opt t.procs pid

let live_process_count t =
  (* Commutative count: traversal order cannot change the sum. *)
  (Hashtbl.fold
     (fun _ (u : Uproc.t) n ->
       match u.Uproc.state with Uproc.Running -> n + 1 | _ -> n)
     t.procs 0 [@ufork.order_independent])

let map_zero_pages t u ~base ~bytes ?(read = true) ?(write = true)
    ?(exec = false) () =
  let pages = Addr.bytes_to_pages bytes in
  let vpn0 = Addr.vpn_of_addr base in
  with_frame_pool t ~frames:pages (fun () ->
      let mapped =
        Page_table.map_range u.Uproc.pt ~vpn:vpn0 ~count:pages (fun _v ->
            Some (Pte.make ~read ~write ~exec (Phys.alloc t.phys)))
      in
      (* One batched charge for the whole range (same cycles and counts as
         the old per-page loop: page_alloc cost is linear). *)
      if mapped > 0 then begin
        emit ~proc:u t (Event.Page_alloc mapped);
        account_private t u ~bytes:(mapped * Addr.page_size)
      end)

let map_initial_image t u =
  let r = u.Uproc.regions in
  map_zero_pages t u ~base:r.Uproc.got_base ~bytes:r.Uproc.got_bytes ();
  map_zero_pages t u ~base:r.Uproc.code_base ~bytes:r.Uproc.code_bytes
    ~write:false ~exec:true ();
  map_zero_pages t u ~base:r.Uproc.data_base ~bytes:r.Uproc.data_bytes ();
  map_zero_pages t u ~base:r.Uproc.stack_base ~bytes:r.Uproc.stack_bytes ()

let materialize_heap_range t u ~addr ~len =
  if len > 0 then begin
    let base = Addr.align_down addr Addr.page_size in
    map_zero_pages t u ~base ~bytes:(addr + len - base) ()
  end

(* {1 Capabilities} *)

let area_cap t (u : Uproc.t) =
  (* Minted from the kernel root, but confined to [u]'s area — the
     provenance stamp records that confinement so capflow (R4) can tell
     delegated area authority from a leaked root. *)
  Capability.stamp
    (Capability.mint ~parent:t.root ~base:u.Uproc.area_base
       ~length:u.Uproc.area_bytes
       ~perms:
         Perms.(union user_data (union execute (union load_cap store_cap))))
    ~prov:u.Uproc.area_base

(* The capability handed to user code for a heap block. Under isolation it
   is bounded to the block; with isolation disabled the process gets a
   wide capability (the classic unikernel single-trust-domain model). *)
let user_block_cap t (u : Uproc.t) ~addr ~len =
  match t.config.Config.isolation with
  | Config.No_isolation ->
      (* Wide by design (single trust domain), but the authority is still
         [u]'s: stamp it so capflow does not mistake it for the root. *)
      Capability.stamp
        (Capability.with_cursor
           (Capability.mint ~parent:t.root ~base:0
              ~length:(Capability.length t.root) ~perms:Perms.user_data)
           addr)
        ~prov:u.Uproc.area_base
  | Config.Fault_isolation | Config.Full_isolation ->
      Capability.mint ~parent:(area_cap t u) ~base:addr ~length:len
        ~perms:Perms.user_data

let got_addr (u : Uproc.t) slot =
  let r = u.Uproc.regions in
  if slot < 0 || slot >= u.Uproc.image.Image.got_slots then
    invalid_arg "Kernel.got_addr: slot out of range";
  r.Uproc.got_base + (slot * Addr.granule_size)

let meta_addr (u : Uproc.t) index =
  let r = u.Uproc.regions in
  if index < 0 || index * Addr.granule_size >= r.Uproc.meta_bytes then
    invalid_arg "Kernel.meta_addr: index out of range";
  r.Uproc.meta_base + (index * Addr.granule_size)

(* {1 Signals (minimal: SIGKILL, §4.5's per-uprocess signals)} *)

exception Killed_signal

let sys_kill t pid =
  with_uproc_table t @@ fun () ->
  emit t Event.Kill;
  match find_uproc t pid with
  | Some target when target.Uproc.state = Uproc.Running -> (
      target.Uproc.killed <- true;
      (* If the target sleeps inside a syscall (pipe, wait, ...), wake it
         so the kill is delivered promptly. *)
      match target.Uproc.kernel_waker with
      | Some w when Engine.waker_pending w -> Engine.wake w
      | Some _ | None -> ())
  | Some _ | None -> raise (Api.Sys_error "ESRCH")

(* Checked at every kernel entry and blocking resume: a pending kill turns
   into immediate termination (the caller unwinds via Killed_signal, which
   spawn_process converts into the exit path). *)
let check_killed (u : Uproc.t) =
  if u.Uproc.killed && u.Uproc.state = Uproc.Running then raise Killed_signal

(* {1 Syscall plumbing} *)

let syscall_entry_cap t = t.entry_cap

let syscall_entry_event t name =
  match t.config.Config.syscall_mode with
  | Config.Sealed_entry ->
      (* The entry really is a sealed-capability invocation: branching to
         anything else in kernel code is impossible for a uprocess. *)
      ignore (Capability.invoke t.entry_cap);
      Event.Syscall { name; trap = false }
  | Config.Trap -> Event.Syscall { name; trap = true }

let validation_cost t =
  match t.config.Config.isolation with
  | Config.Full_isolation -> 60
  | Config.Fault_isolation -> 20
  | Config.No_isolation -> 0

let with_syscall t ?proc ?(bytes = 0) name f =
  (match proc with Some u -> check_killed u | None -> ());
  (* The span covers everything from kernel entry to return, so every
     cycle a syscall charges — entry, validation, copies, body, faults it
     services — attributes under "syscall.<name>". *)
  Trace.with_span t.trace ~name:("syscall." ^ name) (fun () ->
      emit ?proc t (syscall_entry_event t name);
      (match validation_cost t with
      | 0 -> ()
      | c -> emit ?proc t (Event.Entry_validation c));
      (* TOCTTOU hardening sets up the kernel-side shadow copies of
         by-reference arguments on every entry (§4.4). *)
      if t.config.Config.toctou then emit ?proc t Event.Toctou_setup;
      if bytes > 0 then begin
        (* copyin/copyout of the payload... *)
        emit ?proc t (Event.Copy_bytes bytes);
        (* ...plus the TOCTTOU double copy when protection is on. *)
        if t.config.Config.toctou then emit ?proc t (Event.Toctou_bytes bytes)
      end;
      with_biglock t f)

let kernel_wait ?proc t cond =
  (* Under the BKL, drop one recursion level across the sleep (the
     caller sits at depth 1 inside {!with_syscall}); the sharded kernel
     holds no global lock here, so there is nothing to drop. *)
  (match t.locks with
  | Big l -> Sync.Rlock.release l
  | No_locks | Sharded _ -> ());
  (match proc with
  | None -> Sync.Cond.wait cond
  | Some (u : Uproc.t) ->
      (* An interruptible sleep: the waker sits in the condition's queue
         and is also reachable by signal delivery. *)
      Engine.suspend (fun w ->
          u.Uproc.kernel_waker <- Some w;
          Sync.Cond.add_waiter cond w);
      u.Uproc.kernel_waker <- None);
  (* Waking up is a context switch; on a multi-address-space kernel it also
     switches page tables and flushes the TLB. *)
  emit ?proc t Event.Context_switch;
  if t.multi_as then emit ?proc t Event.Address_space_switch;
  (match t.locks with
  | Big l -> Sync.Rlock.acquire l
  | No_locks | Sharded _ -> ());
  match proc with
  | Some u ->
      if u.Uproc.killed && u.Uproc.state = Uproc.Running then
        (* Terminated while blocked: unwind out of the syscall. The
           enclosing with_syscall releases the kernel lock on the way. *)
        raise Killed_signal
  | None -> ()

(* {1 Faults} *)

(* Fault service deliberately does not take the big lock: each handler
   only writes its own process's page-table entries plus atomic frame
   refcounts, so concurrent CoW/CoA service on different cores is safe —
   and is where the multicore fork advantage (Fig. 6) comes from. The
   happens-before race detector checks exactly this claim. *)
let handle_fault t u ~addr ~access =
  match t.fault_hook with
  | Some h -> h u ~addr ~access
  | None ->
      failwith
        (Format.asprintf "unhandled %a fault at %#x (no fault hook)"
           Vas.pp_access access addr)

let rec with_faults t u f =
  try f ()
  with Vas.Fault { addr; access; _ } ->
    handle_fault t u ~addr ~access;
    with_faults t u f

(* {1 Heap} *)

(* Simulate user writes to currently write-protected pages: deliver the
   write fault to the flavour's handler so CoW/CoA/CoPA resolution (and its
   costs) happen exactly as they would for a real store. *)
let touch_pages_for_write t (u : Uproc.t) vpns =
  List.iter
    (fun vpn ->
      match Page_table.lookup u.Uproc.pt ~vpn with
      | Some pte when not pte.Pte.write ->
          handle_fault t u ~addr:(Addr.addr_of_vpn vpn) ~access:Vas.Write
      | Some _ | None -> ())
    vpns

(* A forked child's first allocation re-initializes its allocator arena,
   dirtying a configured fraction of the live heap (observed CheriBSD
   behaviour; see Config.arena_pretouch_fraction). *)
let arena_pretouch t (u : Uproc.t) =
  let frac = t.config.Config.arena_pretouch_fraction in
  if u.Uproc.forked && (not u.Uproc.first_alloc_done) && frac > 0. then begin
    u.Uproc.first_alloc_done <- true;
    let used = Tinyalloc.used_bytes u.Uproc.allocator in
    let pages =
      int_of_float (frac *. float_of_int used /. float_of_int Addr.page_size)
    in
    if pages > 0 then begin
      emit ~proc:u t (Event.Arena_pretouch pages);
      let r = u.Uproc.regions in
      let vpn0 = Addr.vpn_of_addr r.Uproc.heap_base in
      let limit = vpn0 + Addr.bytes_to_pages r.Uproc.heap_bytes in
      let touched = ref 0 in
      let vpn = ref vpn0 in
      let batch = ref [] in
      while !touched < pages && !vpn < limit do
        (match Page_table.lookup u.Uproc.pt ~vpn:!vpn with
        | Some pte when not pte.Pte.write ->
            batch := !vpn :: !batch;
            incr touched
        | Some _ | None -> ());
        incr vpn
      done;
      touch_pages_for_write t u (List.rev !batch)
    end
  end

let sys_malloc t (u : Uproc.t) size =
  arena_pretouch t u;
  match Tinyalloc.alloc u.Uproc.allocator size with
  | exception Tinyalloc.Out_of_heap -> raise (Api.Sys_error "ENOMEM")
  | block ->
      emit ~proc:u t Event.Malloc;
      (* Back the block with physical pages. *)
      materialize_heap_range t u ~addr:block.Tinyalloc.addr
        ~len:block.Tinyalloc.size;
      (* Reallocation hygiene: recycled memory must not carry stale valid
         capabilities (heap temporal safety; the paper's CHERI stack does
         this with Cornucopia-style revocation). The clears are ordinary
         stores, so pages shared with a forked peer take their write fault
         (CoW/CoA/CoPA copy) first. Counted per granule. *)
      (let vpn0 = Addr.vpn_of_addr block.Tinyalloc.addr in
       let vpn1 =
         Addr.vpn_of_addr (block.Tinyalloc.addr + block.Tinyalloc.size - 1)
       in
       touch_pages_for_write t u
         (List.init (vpn1 - vpn0 + 1) (fun i -> vpn0 + i)));
      Vas.kernel_clear_tags u.Uproc.pt ~addr:block.Tinyalloc.addr
        ~len:block.Tinyalloc.size;
      emit ~proc:u t
        (Event.Granule_scan (block.Tinyalloc.size / Addr.granule_size));
      (* Record the block's metadata granule: a capability to the block
         stored in the metadata region (proactively copied at fork). *)
      let maddr = meta_addr u block.Tinyalloc.meta_index in
      materialize_heap_range t u ~addr:maddr ~len:Addr.granule_size;
      let block_cap =
        user_block_cap t u ~addr:block.Tinyalloc.addr ~len:block.Tinyalloc.size
      in
      with_faults t u (fun () ->
          Vas.kernel_store_cap u.Uproc.pt ~addr:maddr block_cap);
      block_cap

let sys_free t (u : Uproc.t) cap =
  (* The cursor, not the base, identifies the block: with isolation
     disabled user capabilities are address-space-wide and only the cursor
     carries the pointer value. *)
  let addr = Capability.cursor cap in
  match Tinyalloc.free u.Uproc.allocator addr with
  | exception Invalid_argument _ -> raise (Api.Sys_error "EINVAL: bad free")
  | block ->
      emit ~proc:u t Event.Free;
      let maddr = meta_addr u block.Tinyalloc.meta_index in
      with_faults t u (fun () ->
          Vas.kernel_store_cap u.Uproc.pt ~addr:maddr Capability.null)

(* {1 Exit / wait} *)

let reap t (u : Uproc.t) (child : Uproc.t) =
  with_uproc_table t @@ fun () ->
  (match child.Uproc.state with
  | Uproc.Zombie _ -> ()
  | _ -> invalid_arg "Kernel.reap: not a zombie");
  child.Uproc.state <- Uproc.Reaped;
  u.Uproc.children <-
    List.filter (fun pid -> pid <> child.Uproc.pid) u.Uproc.children;
  (* Tear the child's memory down. *)
  let vpn0 = Addr.vpn_of_addr child.Uproc.area_base in
  let count = Addr.bytes_to_pages child.Uproc.area_bytes in
  Page_table.unmap_range child.Uproc.pt ~vpn:vpn0 ~count;
  t.areas <-
    Area_index.update child.Uproc.area_base
      (function
        | None -> None
        | Some es -> (
            match
              List.filter (fun (_, pid) -> pid <> child.Uproc.pid) es
            with
            | [] -> None
            | es -> Some es))
      t.areas;
  if not t.multi_as then
    t.free_areas <-
      (child.Uproc.area_base, child.Uproc.area_bytes) :: t.free_areas

let sys_exit t (u : Uproc.t) status =
  with_uproc_table t (fun () ->
      emit ~proc:u t Event.Exit;
      Fdesc.Fdtable.close_all u.Uproc.fds;
      u.Uproc.state <- Uproc.Zombie status;
      match u.Uproc.parent_pid with
      | Some ppid -> (
          match find_uproc t ppid with
          | Some parent -> Sync.Cond.broadcast parent.Uproc.exited_child
          | None -> ())
      | None -> ());
  raise (Api.Exited status)

let sys_wait t (u : Uproc.t) =
  let rec zombie_child () =
    let z =
      List.find_map
        (fun pid ->
          match find_uproc t pid with
          | Some c -> (
              match c.Uproc.state with
              | Uproc.Zombie status -> Some (c, status)
              | _ -> None)
          | None -> None)
        u.Uproc.children
    in
    match z with
    | Some (child, status) ->
        reap t u child;
        (child.Uproc.pid, status)
    | None ->
        if u.Uproc.children = [] then raise (Api.Sys_error "ECHILD");
        kernel_wait ~proc:u t u.Uproc.exited_child;
        zombie_child ()
  in
  zombie_child ()

(* {1 File and pipe syscalls} *)

let sys_open t (u : Uproc.t) name mode =
  emit ~proc:u t Event.File_op;
  match Vfs.open_ t.vfs name mode with
  | f -> Fdesc.Fdtable.alloc u.Uproc.fds (Fdesc.Vfs_file f)
  | exception Not_found -> raise (Api.Sys_error ("ENOENT: " ^ name))

let sys_close _t (u : Uproc.t) fd =
  match Fdesc.Fdtable.close u.Uproc.fds fd with
  | () -> ()
  | exception Not_found -> raise (Api.Sys_error "EBADF")

let sys_pipe t (u : Uproc.t) =
  emit ~proc:u t Event.File_op;
  let p = Pipe.create () in
  let rfd = Fdesc.Fdtable.alloc u.Uproc.fds (Fdesc.Pipe_read p) in
  let wfd = Fdesc.Fdtable.alloc u.Uproc.fds (Fdesc.Pipe_write p) in
  (rfd, wfd)

let sys_read t (u : Uproc.t) fd n =
  match Fdesc.Fdtable.get u.Uproc.fds fd with
  | exception Not_found -> raise (Api.Sys_error "EBADF")
  | Fdesc.Null -> Bytes.create 0
  | Fdesc.Vfs_file f -> Vfs.read f n
  | Fdesc.Pipe_write _ -> raise (Api.Sys_error "EBADF: write end")
  | Fdesc.Pipe_read p ->
      emit ~proc:u t Event.Pipe_op;
      let rec go () =
        match Pipe.try_read p n with
        | Pipe.Data b -> b
        | Pipe.Eof -> Bytes.create 0
        | Pipe.Empty ->
            kernel_wait ~proc:u t (Pipe.readable p);
            go ()
      in
      go ()

let sys_write t (u : Uproc.t) fd b =
  match Fdesc.Fdtable.get u.Uproc.fds fd with
  | exception Not_found -> raise (Api.Sys_error "EBADF")
  | Fdesc.Null -> Bytes.length b
  | Fdesc.Vfs_file f -> Vfs.write f b
  | Fdesc.Pipe_read _ -> raise (Api.Sys_error "EBADF: read end")
  | Fdesc.Pipe_write p ->
      emit ~proc:u t Event.Pipe_op;
      let total = Bytes.length b in
      let rec go off =
        if off >= total then total
        else
          match Pipe.try_write p (Bytes.sub b off (total - off)) with
          | Pipe.Wrote n -> go (off + n)
          | Pipe.Would_block ->
              kernel_wait ~proc:u t (Pipe.writable p);
              go off
          | exception Pipe.Broken_pipe -> raise (Api.Sys_error "EPIPE")
      in
      go 0


(* {1 Shared memory (§3.7)} *)

(* shm_open + map in one step: find or create the named segment, then map
   its frames at a page-aligned window carved from the caller's heap
   reservation. Forks keep these pages shared (never copied, never
   relocated targets — the window sits at the same area offset in parent
   and child, so relocated capabilities land on the same frames). *)
(* Shared mapping machinery used by both shm_open and shared libraries
   (§3.7): find-or-create the named frame set, then map it at a
   page-aligned window carved from the caller's heap reservation. *)
let map_named_segment t (u : Uproc.t) ~table ~name ~bytes ~writable ~exec =
  if bytes <= 0 then raise (Api.Sys_error "EINVAL: segment size");
  emit ~proc:u t Event.File_op;
  let bytes = Addr.align_up bytes Addr.page_size in
  let pages = bytes / Addr.page_size in
  let frames =
    match Hashtbl.find_opt table name with
    | Some frames ->
        if Array.length frames <> pages then
          raise (Api.Sys_error "EINVAL: segment size mismatch");
        frames
    | None ->
        with_frame_pool t ~frames:pages (fun () ->
            let frames = Array.init pages (fun _ -> Phys.alloc t.phys) in
            emit ~proc:u t (Event.Page_alloc pages);
            Hashtbl.replace table name frames;
            frames)
  in
  let block =
    match Tinyalloc.alloc u.Uproc.allocator (bytes + Addr.page_size) with
    | b -> b
    | exception Tinyalloc.Out_of_heap -> raise (Api.Sys_error "ENOMEM")
  in
  let base = Addr.align_up block.Tinyalloc.addr Addr.page_size in
  let vpn0 = Addr.vpn_of_addr base in
  emit ~proc:u t (Event.Pte_copy (Array.length frames));
  Array.iteri
    (fun i frame ->
      let vpn = vpn0 + i in
      if Page_table.is_mapped u.Uproc.pt ~vpn then
        Page_table.unmap u.Uproc.pt ~vpn;
      Page_table.map_shared u.Uproc.pt ~vpn
        (Pte.make ~read:true ~write:writable ~exec ~share:Pte.Shm_shared frame))
    frames;
  (base, bytes)

let sys_shm_open t (u : Uproc.t) name ~bytes =
  emit ~proc:u t Event.Shm_open;
  let base, bytes =
    map_named_segment t u ~table:t.shms ~name ~bytes ~writable:true
      ~exec:false
  in
  user_block_cap t u ~addr:base ~len:bytes

(* "Shared libraries can be supported by mapping those libraries in each
   uprocess ... creating capabilities with the proper permissions"
   (§3.7): read-only, executable, physically shared. *)
let sys_map_library t (u : Uproc.t) name ~bytes =
  emit ~proc:u t Event.Map_library;
  let base, bytes =
    map_named_segment t u ~table:t.libs ~name ~bytes ~writable:false
      ~exec:true
  in
  match t.config.Config.isolation with
  | Config.No_isolation ->
      Capability.stamp
        (Capability.with_cursor
           (Capability.mint ~parent:t.root ~base:0
              ~length:(Capability.length t.root)
              ~perms:Perms.(union load (union load_cap execute)))
           base)
        ~prov:u.Uproc.area_base
  | Config.Fault_isolation | Config.Full_isolation ->
      Capability.mint ~parent:(area_cap t u) ~base ~length:bytes
        ~perms:Perms.(union load (union load_cap execute))

(* {1 posix_spawn (§2.3's fork+exec replacement)} *)

(* Start a fresh process from the same program image without duplicating
   the parent state: the modern replacement for the U1 fork+exec pattern
   that SASOSes like OSv/Junction support instead of fork. *)
let rec sys_spawn t (u : Uproc.t) main =
  emit ~proc:u t Event.Spawn;
  let fds = with_fd_tables t (fun () -> Fdesc.Fdtable.dup_all u.Uproc.fds) in
  let child = create_uproc t ~parent:u ~fds ~image:u.Uproc.image () in
  child.Uproc.forked <- false (* fresh state, not a fork *);
  map_initial_image t child;
  emit ~proc:u t Event.Thread_create;
  spawn_process t child main;
  child.Uproc.pid

(* {1 The API builder} *)

and build_api t ?(reloc = fun c -> c) (u : Uproc.t) : Api.t =
  let pt = u.Uproc.pt in
  let faulty f = with_faults t u f in
  (* On real hardware a process cannot possess a valid capability into
     another μprocess's area: fork relocates registers and memory, and
     monotonicity prevents re-deriving one. In the simulation, application
     closures could smuggle such a value across a fork, so under isolation
     the API refuses foreign capabilities — restoring the invariant the
     architecture enforces (§4.3). *)
  let confined cap =
    (match t.config.Config.isolation with
    | Config.No_isolation -> ()
    | Config.Fault_isolation | Config.Full_isolation ->
        if
          Capability.tag cap
          && not
               (Capability.in_range cap ~lo:u.Uproc.area_base
                  ~hi:(u.Uproc.area_base + u.Uproc.area_bytes))
        then
          raise
            (Capability.Violation
               (Format.asprintf
                  "capability %a does not belong to uprocess %d" Capability.pp
                  cap u.Uproc.pid)));
    cap
  in
  {
    Api.getpid = (fun () -> u.Uproc.pid);
    fork =
      (fun child_main ->
        match t.fork_hook with
        | None -> raise (Api.Sys_error "ENOSYS: fork")
        | Some hook ->
            with_syscall t ~proc:u "fork" (fun () -> hook u child_main));
    exit = (fun status -> with_syscall t ~proc:u "exit" (fun () -> sys_exit t u status));
    wait =
      (fun () -> with_syscall t ~proc:u "wait" (fun () -> sys_wait t u));
    spawn =
      (fun main ->
        with_syscall t ~proc:u "spawn" (fun () -> sys_spawn t u main));
    kill =
      (fun pid -> with_syscall t ~proc:u "kill" (fun () -> sys_kill t pid));
    reloc;
    malloc = (fun size -> with_syscall t ~proc:u "brk" (fun () -> sys_malloc t u size));
    free =
      (fun cap ->
        let cap = confined cap in
        with_syscall t ~proc:u "brk" (fun () -> sys_free t u cap));
    read_bytes =
      (fun cap ~off ~len ->
        let cap = confined cap in
        faulty (fun () ->
            Vas.read_bytes pt ~via:cap
              ~addr:(Capability.cursor cap + off)
              ~len));
    write_bytes =
      (fun cap ~off b ->
        let cap = confined cap in
        faulty (fun () ->
            Vas.write_bytes pt ~via:cap ~addr:(Capability.cursor cap + off) b));
    read_u64 =
      (fun cap ~off ->
        let cap = confined cap in
        faulty (fun () ->
            Vas.read_u64 pt ~via:cap ~addr:(Capability.cursor cap + off)));
    write_u64 =
      (fun cap ~off v ->
        let cap = confined cap in
        faulty (fun () ->
            Vas.write_u64 pt ~via:cap ~addr:(Capability.cursor cap + off) v));
    load_cap =
      (fun cap ~off ->
        let cap = confined cap in
        faulty (fun () ->
            Vas.load_cap pt ~via:cap ~addr:(Capability.cursor cap + off)));
    store_cap =
      (fun cap ~off v ->
        let cap = confined cap in
        faulty (fun () ->
            Vas.store_cap pt ~via:cap ~addr:(Capability.cursor cap + off) v));
    got_set =
      (fun slot cap ->
        let addr = got_addr u slot in
        faulty (fun () ->
            Vas.store_cap pt
              ~via:(Capability.with_cursor (area_cap t u) addr)
              ~addr cap));
    got_get =
      (fun slot ->
        let addr = got_addr u slot in
        faulty (fun () ->
            Vas.load_cap pt
              ~via:(Capability.with_cursor (area_cap t u) addr)
              ~addr));
    compute =
      (fun cycles ->
        Trace.with_span t.trace ~name:"user.compute" (fun () ->
            emit ~proc:u t (Event.Compute cycles)));
    now = (fun () -> Engine.now t.engine);
    open_ =
      (fun name mode -> with_syscall t ~proc:u "open" (fun () -> sys_open t u name mode));
    close = (fun fd -> with_syscall t ~proc:u "close" (fun () -> sys_close t u fd));
    read =
      (fun fd n ->
        with_syscall t ~proc:u ~bytes:n "read" (fun () -> sys_read t u fd n));
    pread =
      (fun fd ~off n ->
        with_syscall t ~proc:u ~bytes:n "pread" (fun () ->
            match Fdesc.Fdtable.get u.Uproc.fds fd with
            | exception Not_found -> raise (Api.Sys_error "EBADF")
            | Fdesc.Vfs_file f ->
                Vfs.seek f off;
                Vfs.read f n
            | Fdesc.Null | Fdesc.Pipe_read _ | Fdesc.Pipe_write _ ->
                raise (Api.Sys_error "ESPIPE")));
    write =
      (fun fd b ->
        with_syscall t ~proc:u ~bytes:(Bytes.length b) "write" (fun () ->
            sys_write t u fd b));
    rename =
      (fun ~src ~dst ->
        with_syscall t ~proc:u "rename" (fun () ->
            emit ~proc:u t Event.File_op;
            try Vfs.rename t.vfs ~src ~dst
            with Not_found -> raise (Api.Sys_error ("ENOENT: " ^ src))));
    unlink =
      (fun name ->
        with_syscall t ~proc:u "unlink" (fun () ->
            emit ~proc:u t Event.File_op;
            try Vfs.unlink t.vfs name
            with Not_found -> raise (Api.Sys_error ("ENOENT: " ^ name))));
    pipe = (fun () -> with_syscall t ~proc:u "pipe" (fun () -> sys_pipe t u));
    shm_open =
      (fun name bytes ->
        with_syscall t ~proc:u "shm_open" (fun () ->
            sys_shm_open t u name ~bytes));
    map_library =
      (fun name bytes ->
        with_syscall t ~proc:u "mmap_lib" (fun () ->
            sys_map_library t u name ~bytes));
    stats_private_bytes = (fun () -> u.Uproc.private_bytes);
    stats_heap_used = (fun () -> Tinyalloc.used_bytes u.Uproc.allocator);
    sleep =
      (fun cycles ->
        Engine.sleep cycles;
        emit ~proc:u t Event.Context_switch;
        if t.multi_as then emit ~proc:u t Event.Address_space_switch);
    yield =
      (fun () ->
        Engine.yield ();
        emit ~proc:u t Event.Context_switch;
        if t.multi_as then emit ~proc:u t Event.Address_space_switch);
  }

and spawn_process t ?affinity ?reloc (u : Uproc.t) main =
  let name = Printf.sprintf "%s.%d" u.Uproc.image.Image.name u.Uproc.pid in
  ignore
    (Engine.spawn ?affinity ~name t.engine (fun () ->
         let api = build_api t ?reloc u in
         (* The exit path must not re-check the kill flag: a killed
            process has to be able to die. *)
         let finish status =
           match with_syscall t "exit" (fun () -> sys_exit t u status) with
           | () -> ()
           | exception Api.Exited _ -> ()
         in
         match main api with
         | () -> finish 0 (* normal return = exit 0 *)
         | exception Api.Exited _ -> ()
         | exception Killed_signal -> finish 137))

let total_frames_in_use t = Phys.frames_in_use t.phys
let last_fork_latency t = Trace.last_fork_latency t.trace

(* {1 Introspection for the state sanitizer} *)

let fold_uprocs t ~init ~f =
  let pids = Hashtbl.fold (fun pid _ acc -> pid :: acc) t.procs [] in
  List.fold_left
    (fun acc pid -> f acc (Hashtbl.find t.procs pid))
    init
    (List.sort compare pids)

let iter_uprocs t f = fold_uprocs t ~init:() ~f:(fun () u -> f u)

let chaos_leak_root t =
  (* Chaos-only: hand the kernel's root capability to a μprocess by
     storing it — unconfined, full address space, all permissions — into
     the first running process's GOT slot 0. The architectural checks
     cannot object (the kernel may store anything); only the capflow
     taint invariant R4 can notice that root authority became reachable
     from user pages. *)
  let victim =
    fold_uprocs t ~init:None ~f:(fun acc (u : Uproc.t) ->
        match acc with
        | Some _ -> acc
        | None -> if u.Uproc.state = Uproc.Running then Some u else None)
  in
  match victim with
  | None -> false
  | Some u ->
      let addr = got_addr u 0 in
      Vas.kernel_store_cap u.Uproc.pt ~addr
        (Capability.with_cursor t.root addr);
      true

let areas t =
  Area_index.fold
    (fun base entries acc ->
      List.fold_left
        (fun acc (bytes, pid) -> (base, bytes, pid) :: acc)
        acc entries)
    t.areas []
  |> List.rev

let named_segment_frames t =
  let collect prefix table acc =
    Hashtbl.fold
      (fun name frames acc -> (prefix ^ name, frames) :: acc)
      table acc
  in
  List.sort compare (collect "shm:" t.shms (collect "lib:" t.libs []))

(* Virtual-arena accounting for the fragmentation study (§6). *)
let arena_span t = t.next_area - user_arena_base

let live_area_bytes t =
  Area_index.fold
    (fun _base entries acc ->
      List.fold_left (fun acc (bytes, _) -> acc + bytes) acc entries)
    t.areas 0
let pp_meter ppf t = Meter.pp ppf (Trace.meter t.trace)
