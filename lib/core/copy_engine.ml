module Capability = Ufork_cheri.Capability
module Addr = Ufork_mem.Addr
module Phys = Ufork_mem.Phys
module Pte = Ufork_mem.Pte
module Page_table = Ufork_mem.Page_table
module Event = Ufork_sim.Event
module Kernel = Ufork_sas.Kernel
module Uproc = Ufork_sas.Uproc

let owner_area = Memops.owner_area
let natural_perms = Memops.natural_perms

(* Relocate the page now backing [vpn] for the child and make it private. *)
let relocate_and_privatize k (child : Uproc.t) ~vpn (pte : Pte.t)
    ~already_private =
  let page = Phys.page pte.Pte.frame in
  let outcome =
    Relocate.relocate_page ~owner_area:(owner_area k)
      ~child_base:child.Uproc.area_base ~child_bytes:child.Uproc.area_bytes
      page
  in
  Kernel.with_span k ~name:"reloc.scan" (fun () ->
      Kernel.emit ~proc:child k
        (Event.Granule_scan outcome.Relocate.granules_scanned);
      Kernel.emit ~proc:child k (Event.Cap_relocate outcome.Relocate.relocated));
  if already_private then
    (* The frame was claimed in place: it becomes child-private memory. *)
    Kernel.account_private k child ~bytes:Addr.page_size;
  Memops.restore_perms child ~vpn pte

let resolve_child_copy k (child : Uproc.t) ~vpn =
  let pte = Page_table.lookup_exn child.Uproc.pt ~vpn in
  if Phys.refcount pte.Pte.frame = 1 then begin
    (* Nobody else references the frame: claim it in place, skip the copy. *)
    Kernel.emit ~proc:child k Event.Claim_in_place;
    relocate_and_privatize k child ~vpn pte ~already_private:true
  end
  else begin
    let fresh =
      Kernel.with_span k ~name:"page_copy" (fun () ->
          Kernel.emit ~proc:child k Event.Page_copy_child;
          Memops.duplicate_frame k child pte.Pte.frame)
    in
    Page_table.replace_frame child.Uproc.pt ~vpn fresh;
    relocate_and_privatize k child ~vpn pte ~already_private:false
  end

let resolve_parent_cow k (u : Uproc.t) ~vpn =
  let pte = Page_table.lookup_exn u.Uproc.pt ~vpn in
  if Phys.refcount pte.Pte.frame = 1 then begin
    Kernel.emit ~proc:u k Event.Cow_claim_in_place;
    Memops.restore_perms u ~vpn pte
  end
  else begin
    let fresh =
      Kernel.with_span k ~name:"page_copy" (fun () ->
          Kernel.emit ~proc:u k Event.Page_copy_cow;
          Memops.duplicate_frame k u pte.Pte.frame)
    in
    Page_table.replace_frame u.Uproc.pt ~vpn fresh;
    Memops.restore_perms u ~vpn pte
  end

let touch_write k (u : Uproc.t) ~vpn =
  match Page_table.lookup u.Uproc.pt ~vpn with
  | None -> ()
  | Some pte -> (
      if not pte.Pte.write then
        match pte.Pte.share with
        | Pte.Copa_shared | Pte.Coa_shared ->
            Kernel.emit ~proc:u k Event.Page_fault;
            resolve_child_copy k u ~vpn
        | Pte.Cow_shared ->
            Kernel.emit ~proc:u k Event.Page_fault;
            resolve_parent_cow k u ~vpn
        | Pte.Shm_shared | Pte.Private -> ())
