module Capability = Ufork_cheri.Capability
module Addr = Ufork_mem.Addr
module Page = Ufork_mem.Page
module Phys = Ufork_mem.Phys
module Pte = Ufork_mem.Pte
module Page_table = Ufork_mem.Page_table
module Costs = Ufork_sim.Costs
module Event = Ufork_sim.Event
module Kernel = Ufork_sas.Kernel
module Uproc = Ufork_sas.Uproc

let owner_area k addr = Kernel.find_area_of_addr k addr

let natural_perms (u : Uproc.t) ~addr ~read ~write ~exec =
  read := true;
  exec := false;
  write := true;
  match Uproc.region_of_addr u addr with
  | Some "code" ->
      write := false;
      exec := true
  | Some _ | None -> ()

let restore_perms (u : Uproc.t) ~vpn (pte : Pte.t) =
  let addr = Addr.addr_of_vpn vpn in
  let read = ref true and write = ref true and exec = ref false in
  natural_perms u ~addr ~read ~write ~exec;
  pte.Pte.read <- !read;
  pte.Pte.write <- !write;
  pte.Pte.exec <- !exec;
  pte.Pte.cap_load_fault <- false;
  pte.Pte.share <- Pte.Private

(* Relocate the page now backing [vpn] for the child and make it private. *)
let relocate_and_privatize k (child : Uproc.t) ~vpn (pte : Pte.t)
    ~already_private =
  let page = Phys.page pte.Pte.frame in
  let outcome =
    Relocate.relocate_page ~owner_area:(owner_area k)
      ~child_base:child.Uproc.area_base ~child_bytes:child.Uproc.area_bytes
      page
  in
  Kernel.emit ~proc:child k
    (Event.Granule_scan outcome.Relocate.granules_scanned);
  Kernel.emit ~proc:child k (Event.Cap_relocate outcome.Relocate.relocated);
  if already_private then
    (* The frame was claimed in place: it becomes child-private memory. *)
    Kernel.account_private k child ~bytes:Addr.page_size;
  restore_perms child ~vpn pte

let resolve_child_copy k (child : Uproc.t) ~vpn =
  let pte = Page_table.lookup_exn child.Uproc.pt ~vpn in
  if Phys.refcount pte.Pte.frame = 1 then begin
    (* Nobody else references the frame: claim it in place, skip the copy. *)
    Kernel.emit ~proc:child k Event.Claim_in_place;
    relocate_and_privatize k child ~vpn pte ~already_private:true
  end
  else begin
    Kernel.emit ~proc:child k Event.Page_copy_child;
    let fresh = Kernel.fresh_frame k child in
    let src = Phys.page pte.Pte.frame in
    let dst = Phys.page fresh in
    Page.write_bytes dst ~off:0 (Page.read_bytes src ~off:0 ~len:Addr.page_size);
    Page.iter_caps src (fun g cap ->
        Page.store_cap dst ~off:(g * Addr.granule_size) cap);
    Page_table.replace_frame child.Uproc.pt ~vpn fresh;
    relocate_and_privatize k child ~vpn pte ~already_private:false
  end

let resolve_parent_cow k (u : Uproc.t) ~vpn =
  let pte = Page_table.lookup_exn u.Uproc.pt ~vpn in
  if Phys.refcount pte.Pte.frame = 1 then begin
    Kernel.emit ~proc:u k Event.Cow_claim_in_place;
    restore_perms u ~vpn pte
  end
  else begin
    Kernel.emit ~proc:u k Event.Page_copy_cow;
    let fresh = Kernel.fresh_frame k u in
    let src = Phys.page pte.Pte.frame in
    let dst = Phys.page fresh in
    Page.write_bytes dst ~off:0 (Page.read_bytes src ~off:0 ~len:Addr.page_size);
    Page.iter_caps src (fun g cap ->
        Page.store_cap dst ~off:(g * Addr.granule_size) cap);
    Page_table.replace_frame u.Uproc.pt ~vpn fresh;
    restore_perms u ~vpn pte
  end

let delta_pages ~(parent : Uproc.t) ~(child : Uproc.t) =
  (child.Uproc.area_base - parent.Uproc.area_base) / Addr.page_size

let share_to_child k ~parent ~child ~strategy ~parent_vpn =
  let ppte = Page_table.lookup_exn parent.Uproc.pt ~vpn:parent_vpn in
  let child_vpn = parent_vpn + delta_pages ~parent ~child in
  Kernel.emit ~proc:child k Event.Pte_copy;
  (* Parent side drops to copy-on-write (writes fault; reads — and, under
     CoPA, capability loads — proceed: its own capabilities are valid). *)
  if ppte.Pte.write then begin
    ppte.Pte.write <- false;
    ppte.Pte.share <- Pte.Cow_shared
  end;
  let cpte =
    match strategy with
    | Strategy.Coa ->
        Pte.make ~read:false ~write:false ~exec:false ~share:Pte.Coa_shared
          ppte.Pte.frame
    | Strategy.Copa ->
        Pte.make ~read:true ~write:false ~exec:ppte.Pte.exec
          ~cap_load_fault:true ~share:Pte.Copa_shared ppte.Pte.frame
    | Strategy.Full_copy ->
        invalid_arg "share_to_child: full copy never shares"
  in
  Page_table.map_shared child.Uproc.pt ~vpn:child_vpn cpte

let copy_to_child k ~parent ~child ~parent_vpn =
  let ppte = Page_table.lookup_exn parent.Uproc.pt ~vpn:parent_vpn in
  let child_vpn = parent_vpn + delta_pages ~parent ~child in
  Kernel.emit ~proc:child k Event.Pte_copy;
  Kernel.emit ~proc:child k Event.Page_copy_eager;
  let fresh = Kernel.fresh_frame k child in
  let src = Phys.page ppte.Pte.frame in
  let dst = Phys.page fresh in
  Page.write_bytes dst ~off:0 (Page.read_bytes src ~off:0 ~len:Addr.page_size);
  Page.iter_caps src (fun g cap ->
      Page.store_cap dst ~off:(g * Addr.granule_size) cap);
  let cpte =
    Pte.make ~read:ppte.Pte.read ~write:ppte.Pte.write ~exec:ppte.Pte.exec
      fresh
  in
  Page_table.map child.Uproc.pt ~vpn:child_vpn cpte;
  relocate_and_privatize k child ~vpn:child_vpn cpte ~already_private:false;
  (* relocate_and_privatize restored natural permissions and accounted the
     claim case; eager copies were already attributed by fresh_frame. *)
  ()

let touch_write k (u : Uproc.t) ~vpn =
  match Page_table.lookup u.Uproc.pt ~vpn with
  | None -> ()
  | Some pte -> (
      if not pte.Pte.write then
        match pte.Pte.share with
        | Pte.Copa_shared | Pte.Coa_shared ->
            Kernel.emit ~proc:u k Event.Page_fault;
            resolve_child_copy k u ~vpn
        | Pte.Cow_shared ->
            Kernel.emit ~proc:u k Event.Page_fault;
            resolve_parent_cow k u ~vpn
        | Pte.Shm_shared | Pte.Private -> ())


(* Deliberately shared memory is mapped, not copied: the child's page at
   the same area offset points at the very same frame (§3.7). *)
let share_shm_to_child k ~parent ~child ~parent_vpn =
  let ppte = Page_table.lookup_exn parent.Uproc.pt ~vpn:parent_vpn in
  let child_vpn = parent_vpn + delta_pages ~parent ~child in
  Kernel.emit ~proc:child k Event.Pte_copy;
  Kernel.emit ~proc:child k Event.Shm_share;
  Page_table.map_shared child.Uproc.pt ~vpn:child_vpn
    (Pte.make ~read:ppte.Pte.read ~write:ppte.Pte.write ~exec:ppte.Pte.exec
       ~share:Pte.Shm_shared ppte.Pte.frame)
