module Capability = Ufork_cheri.Capability
module Addr = Ufork_mem.Addr
module Engine = Ufork_sim.Engine
module Meter = Ufork_sim.Meter
module Event = Ufork_sim.Event
module Trace = Ufork_sim.Trace
module Kernel = Ufork_sas.Kernel
module Uproc = Ufork_sas.Uproc
module Fdesc = Ufork_sas.Fdesc
module Tinyalloc = Ufork_sas.Tinyalloc

exception Segfault of string

type hooks = {
  pre_create : Kernel.t -> parent:Uproc.t -> unit;
  duplicate : Kernel.t -> parent:Uproc.t -> child:Uproc.t -> unit;
  post_copy :
    Kernel.t -> parent:Uproc.t -> child:Uproc.t -> pte_copies:int -> unit;
  child_prologue : Kernel.t -> child:Uproc.t -> unit;
  reloc : (Kernel.t -> child:Uproc.t -> Capability.t -> Capability.t) option;
}

let default =
  {
    pre_create = (fun _ ~parent:_ -> ());
    duplicate = (fun _ ~parent:_ ~child:_ -> ());
    post_copy = (fun _ ~parent:_ ~child:_ ~pte_copies:_ -> ());
    child_prologue = (fun _ ~child:_ -> ());
    reloc = None;
  }

(* Armed by the workload layer when a capflow run is in flight: called
   with the fork window closed but before the parent resumes, so an
   authority leak is accused at the fork that caused it, not at the next
   sweep. Disarmed cost: one option read per fork. *)
let fork_probe : (Kernel.t -> child:Uproc.t -> unit) option ref = ref None

(* Chaos: carry one of the parent's capabilities across the fork in an
   OCaml-heap cell — the shadow copy the §4.2 tag scan can never see —
   and raw-store it into the child's meta page after relocation ran.
   The stash is exactly the D13 escape pattern, discharged here because
   being invisible to the static side is the point of the experiment:
   the runtime R4 fork scan must be the side that catches it. *)
let chaos_heap_smuggle = ref false

let smuggled : Capability.t list ref = ref []

(* The stash is exactly the D13 escape pattern, discharged because being
   invisible to the static side is the point of the experiment. *)
let smuggle_stash k (parent : Uproc.t) =
  if !chaos_heap_smuggle then begin
    let c = Kernel.area_cap k parent in
    smuggled := [ Capability.with_cursor c parent.Uproc.area_base ]
  end
[@@ufork.cap_escape_ok]

let smuggle_plant (_k : Kernel.t) (child : Uproc.t) =
  match !smuggled with
  | [] -> ()
  | cap :: _ ->
      smuggled := [];
      chaos_heap_smuggle := false;
      let addr = Kernel.meta_addr child 0 in
      (* Raw store, bypassing the MMU publication path: only the
         fork-completion scan can notice the foreign provenance. *)
      let vpn = Addr.vpn_of_addr addr in
      (match Ufork_mem.Page_table.lookup child.Uproc.pt ~vpn with
      | Some pte ->
          Ufork_mem.Page.store_cap
            (Ufork_mem.Phys.page pte.Ufork_mem.Pte.frame)
            ~off:(Addr.page_offset addr) cap
      | None -> ())

(* The write working set a μprocess touches immediately around the fork:
   its top-of-stack pages. *)
let stack_touch_vpns (u : Uproc.t) n =
  let r = u.Uproc.regions in
  let vpn0 = Addr.vpn_of_addr r.Uproc.stack_base in
  let pages = Addr.bytes_to_pages r.Uproc.stack_bytes in
  List.init (min n pages) (fun i -> vpn0 + pages - 1 - i)

let run k hooks (parent : Uproc.t) child_main =
  let meter = Kernel.meter k in
  let span name f = Kernel.with_span k ~name f in
  (* The "fork" span nests inside "syscall.fork" on the parent's stack;
     each spine step gets its own sub-span so the profiler decomposes a
     fork the way the paper does (fixed trap costs vs. PTE copy vs.
     relocation vs. spawn). The "fork" span's instance total feeds the
     fork-latency histogram. *)
  span "fork" (fun () ->
      let t0 = Engine.now (Kernel.engine k) in
      span "fork.fixed" (fun () ->
          Kernel.emit ~proc:parent k Event.Fork_fixed;
          hooks.pre_create k ~parent);
      smuggle_stash k parent;
      let fds =
        span "fork.fd_dup" (fun () ->
            Kernel.with_fd_tables k (fun () ->
                Fdesc.Fdtable.dup_all parent.Uproc.fds))
      in
      let child =
        span "fork.uproc_create" (fun () ->
            Kernel.create_uproc k ~parent ~fds ~image:parent.Uproc.image ())
      in
      child.Uproc.forked <- true;
      let pte_before = Meter.get meter Event.pte_copy_key in
      (* The bulk PTE walk writes both page-table ranges: hold the two
         area shards (ascending order) for the duration so concurrent
         forks into a colliding shard serialize — and so the detector
         sees the lock edge that orders them. *)
      span "fork.duplicate" (fun () ->
          Kernel.with_pt_shard_pair k parent child (fun () ->
              hooks.duplicate k ~parent ~child));
      let pte_copies = Meter.get meter Event.pte_copy_key - pte_before in
      (* The allocator mirror is cloned at a fixed point of the spine: the
         clone emits no events, so its position cannot perturb the stream. *)
      span "fork.alloc_clone" (fun () ->
          child.Uproc.allocator <-
            Tinyalloc.clone parent.Uproc.allocator
              ~delta:(Uproc.delta ~parent ~child));
      span "fork.post_copy" (fun () ->
          hooks.post_copy k ~parent ~child ~pte_copies);
      span "fork.spawn" (fun () ->
          Kernel.emit ~proc:parent k Event.Thread_create;
          let reloc = Option.map (fun f -> f k ~child) hooks.reloc in
          let child_body api =
            (* Runs on the child's own thread: its span stack starts
               empty, so the prologue shows up as a root span there. *)
            Kernel.with_span k ~name:"fork.child_prologue" (fun () ->
                hooks.child_prologue k ~child);
            child_main api
          in
          Kernel.spawn_process k ?reloc child child_body);
      let dt = Int64.sub (Engine.now (Kernel.engine k)) t0 in
      (* The gauge is one shared scalar every forker writes: under the
         sharded kernel the stats lock is what orders concurrent forks'
         writes (the BKL used to). The chaos control unshards exactly
         this lock to prove the detector notices. *)
      Kernel.with_stats k (fun () ->
          Trace.gauge (Kernel.trace k) Trace.last_fork_latency_key
            (Int64.to_int dt));
      smuggle_plant k child;
      (match !fork_probe with Some probe -> probe k ~child | None -> ());
      child.Uproc.pid)

let demand_zero k (u : Uproc.t) ~addr =
  Kernel.emit ~proc:u k Event.Demand_zero;
  Memops.map_zero_range k u
    ~base:(Addr.addr_of_vpn (Addr.vpn_of_addr addr))
    ~bytes:Addr.page_size ()

let resolve_unmapped k (u : Uproc.t) ~addr ~outside =
  match Uproc.region_of_addr u addr with
  | Some ("heap" | "meta") -> demand_zero k u ~addr
  | Some r ->
      raise
        (Segfault
           (Printf.sprintf "pid %d: %#x (%s) not mapped" u.Uproc.pid addr r))
  | None ->
      raise
        (Segfault
           (Printf.sprintf "pid %d: %#x outside %s" u.Uproc.pid addr outside))
