(** A bootable simulated system, whatever the OS flavour.

    One record ties together the pieces every flavour assembles the same
    way — a simulated machine ({!Ufork_sim.Engine}), a kernel built from
    the shared kit ({!Ufork_sas.Kernel}) and an image-preparation step —
    and owns the boot/start/run lifecycle plus the accessors
    (kernel/engine/trace/meter/last-fork-latency) that each OS module
    and the workload driver used to re-implement. The flavour modules
    ({!Os}, the baselines) wrap a [System.t] and add only their fork
    policy. *)

type t

val make :
  ?prepare_image:(Ufork_sas.Image.t -> Ufork_sas.Image.t) ->
  cores:int ->
  config:Ufork_sas.Config.t ->
  costs:Ufork_sim.Costs.t ->
  multi_address_space:bool ->
  unit ->
  t
(** Assemble engine + kernel. [prepare_image] (default identity) rewrites
    every image passed to {!start} — the VM-clone baseline uses it to
    link the unikernel into each application image. Fork/fault hooks are
    the caller's to install on {!kernel}. *)

val kernel : t -> Ufork_sas.Kernel.t
val engine : t -> Ufork_sim.Engine.t

val trace : t -> Ufork_sim.Trace.t
(** The kernel's mechanism-event bus. *)

val meter : t -> Ufork_sim.Meter.t
(** The bus's derived counter view (read-only). *)

val last_fork_latency : t -> int64
(** Cycles inside the most recent fork call (0 before the first). *)

val start :
  t ->
  ?affinity:int ->
  image:Ufork_sas.Image.t ->
  (Ufork_sas.Api.t -> unit) ->
  Ufork_sas.Uproc.t
(** Create an initial process from the (prepared) image — mapped image,
    fresh fd table — and schedule its main thread. Call {!run} to
    execute. *)

val run : ?until:int64 -> t -> unit
(** Run the machine until quiescence (or the given simulated time). *)
