(** μFork: forking a μprocess within the single address space (§3.5, §4.2).

    [install] wires the fork and fault hooks of a {!Ufork_sas.Kernel.t}:

    + {b Parent state duplication} — reserve a fresh contiguous area for
      the child, copy the parent's page-table entries (sharing frames per
      the configured {!Strategy.t}), proactively copy + relocate the GOT
      and the used allocator-metadata pages, duplicate file descriptors,
      and clone the allocator mirror rebased by the area displacement.
    + {b Post-copy phase} — allocate the child PID, relocate capability
      registers (the child continuation's [reloc]), create the child's
      thread, and let CoW/CoA/CoPA faults materialize the rest on demand.

    The fault hook also provides demand-zero heap materialization and the
    crash path for genuinely invalid accesses. *)

val install :
  ?proactive:bool -> Ufork_sas.Kernel.t -> strategy:Strategy.t -> unit
(** Raises [Invalid_argument] if the kernel is multi-address-space (μFork
    is by construction a single-address-space mechanism).

    [proactive] (default true) controls the eager copy of GOT and
    allocator-metadata pages at fork. Disabling it is an ablation: under
    CoPA the child still works (the first GOT load takes a
    capability-load fault), but every early GOT/metadata access becomes a
    fault — the bench quantifies that trade-off. Under CoA/CoPA it is
    safe; a hypothetical plain-CoW μFork would be {e incorrect} without
    it, which the test suite demonstrates. *)

exception Segfault of string
(** Raised back into application code for an unresolvable fault. *)

val last_fork_latency : Ufork_sas.Kernel.t -> int64
(** Simulated cycles spent inside the most recent fork call on this
    kernel (measured by the hook itself, entry to return). *)
