(** Capability relocation: the tag-scan rewrite of §4.2.

    When μFork copies a page for a child, the copy is scanned in 16-byte
    increments for valid capability tags. Every tagged capability whose
    target lies outside the child's dedicated area is rebased to the
    corresponding location inside the child's area (areas of a forked pair
    have identical internal layout, so the rebase is a fixed displacement
    from the capability's source area). *)

type outcome = {
  granules_scanned : int;  (** Always 256 per page. *)
  relocated : int;  (** Tagged capabilities rewritten. *)
}

val chaos_skip_rebase : bool ref
(** Chaos (capflow cross-certification): when set, the next capability
    that would be rebased is instead left untouched — parent target,
    parent provenance — and the flag self-clears. The runtime R4 taint
    invariant, not any architectural check, must catch the leak. *)

val relocate_cap :
  owner_area:(int -> (int * int) option) ->
  child_base:int ->
  child_bytes:int ->
  Ufork_cheri.Capability.t ->
  Ufork_cheri.Capability.t
(** [relocate_cap ~owner_area ~child_base ~child_bytes cap] returns [cap]
    unchanged when it already targets the child area; otherwise rebases it
    by [(child_base - source_base)], where [owner_area cursor] locates the
    source μprocess area containing the capability's cursor. Capabilities
    whose owner cannot be determined (e.g. dangling) get their tag cleared
    — they must not leak a foreign authority into the child (§4.3).

    Every tagged capability that survives the scan is provenance-stamped
    with [child_base] (including the already-in-child fast path — a
    restamp [Capability.equal] cannot see, so relocation counts and
    goldens are unchanged). *)

val relocate_page :
  owner_area:(int -> (int * int) option) ->
  child_base:int ->
  child_bytes:int ->
  Ufork_mem.Page.t ->
  outcome
(** Scan and rewrite a page in place. *)
