module Engine = Ufork_sim.Engine
module Costs = Ufork_sim.Costs
module Kernel = Ufork_sas.Kernel
module Config = Ufork_sas.Config
module Image = Ufork_sas.Image

type t = {
  kernel : Kernel.t;
  engine : Engine.t;
  prepare_image : Image.t -> Image.t;
}

let make ?(prepare_image = Fun.id) ~cores ~config ~costs ~multi_address_space
    () =
  let engine = Engine.create ~cores () in
  let kernel =
    Kernel.create ~engine ~costs ~config ~multi_address_space ()
  in
  { kernel; engine; prepare_image }

let kernel t = t.kernel
let engine t = t.engine
let trace t = Kernel.trace t.kernel
let meter t = Kernel.meter t.kernel
let last_fork_latency t = Kernel.last_fork_latency t.kernel

let start t ?affinity ~image main =
  let u = Kernel.create_uproc t.kernel ~image:(t.prepare_image image) () in
  Kernel.map_initial_image t.kernel u;
  Kernel.spawn_process t.kernel ?affinity u main;
  u

let run ?until t = Engine.run ?until t.engine
