module Addr = Ufork_mem.Addr
module Page = Ufork_mem.Page
module Phys = Ufork_mem.Phys
module Pte = Ufork_mem.Pte
module Page_table = Ufork_mem.Page_table
module Event = Ufork_sim.Event
module Kernel = Ufork_sas.Kernel
module Uproc = Ufork_sas.Uproc

let owner_area k addr = Kernel.find_area_of_addr k addr

let natural_perms (u : Uproc.t) ~addr ~read ~write ~exec =
  read := true;
  exec := false;
  write := true;
  match Uproc.region_of_addr u addr with
  | Some "code" ->
      write := false;
      exec := true
  | Some _ | None -> ()

let restore_perms (u : Uproc.t) ~vpn (pte : Pte.t) =
  let addr = Addr.addr_of_vpn vpn in
  let read = ref true and write = ref true and exec = ref false in
  natural_perms u ~addr ~read ~write ~exec;
  pte.Pte.read <- !read;
  pte.Pte.write <- !write;
  pte.Pte.exec <- !exec;
  pte.Pte.cap_load_fault <- false;
  pte.Pte.share <- Pte.Private

(* The one physical page-duplication loop in the tree: bytes plus
   capability granules, tags preserved. Everything that copies a page —
   eager fork copies, CoW/CoA/CoPA resolutions, VM cloning — comes
   through here. *)
let copy_page_contents ~src ~dst =
  Page.write_bytes dst ~off:0 (Page.read_bytes src ~off:0 ~len:Addr.page_size);
  Page.iter_caps src (fun g cap ->
      Page.store_cap dst ~off:(g * Addr.granule_size) cap)

let duplicate_frame k u frame =
  let fresh = Kernel.fresh_frame k u in
  copy_page_contents ~src:(Phys.page frame) ~dst:(Phys.page fresh);
  fresh

let share_range k ~(parent : Uproc.t) ~(child : Uproc.t) ~delta_pages
    ?(downgrade = true) ?page_event ~child_pte pvpns =
  match pvpns with
  | [] -> false
  | _ ->
      Kernel.with_span k ~name:"pte_copy" (fun () ->
          Kernel.emit ~proc:child k (Event.Pte_copy (List.length pvpns)));
      List.fold_left
        (fun downgraded pvpn ->
          let ppte = Page_table.lookup_exn parent.Uproc.pt ~vpn:pvpn in
          let downgraded =
            if downgrade && ppte.Pte.write then begin
              ppte.Pte.write <- false;
              ppte.Pte.share <- Pte.Cow_shared;
              true
            end
            else downgraded
          in
          (match page_event with
          | Some e -> Kernel.emit ~proc:child k e
          | None -> ());
          Page_table.map_shared child.Uproc.pt ~vpn:(pvpn + delta_pages)
            (child_pte ppte);
          downgraded)
        false pvpns

type copy_mode = Verbatim | Relocate_to_child

let copy_range k ~(parent : Uproc.t) ~(child : Uproc.t) ~delta_pages ~mode
    pvpns =
  match pvpns with
  | [] -> ()
  | _ ->
      let n = List.length pvpns in
      Kernel.with_span k ~name:"pte_copy" (fun () ->
          Kernel.emit ~proc:child k (Event.Pte_copy n));
      let frames =
        Kernel.with_span k ~name:"page_copy" (fun () ->
            Kernel.emit ~proc:child k (Event.Page_copy_eager n);
            Kernel.fresh_frames k child n)
      in
      let scanned = ref 0 and relocated = ref 0 in
      List.iter2
        (fun pvpn fresh ->
          let ppte = Page_table.lookup_exn parent.Uproc.pt ~vpn:pvpn in
          let cvpn = pvpn + delta_pages in
          copy_page_contents ~src:(Phys.page ppte.Pte.frame)
            ~dst:(Phys.page fresh);
          let cpte =
            Pte.make ~read:ppte.Pte.read ~write:ppte.Pte.write
              ~exec:ppte.Pte.exec fresh
          in
          Page_table.map child.Uproc.pt ~vpn:cvpn cpte;
          match mode with
          | Verbatim -> ()
          | Relocate_to_child ->
              let outcome =
                Relocate.relocate_page ~owner_area:(owner_area k)
                  ~child_base:child.Uproc.area_base
                  ~child_bytes:child.Uproc.area_bytes (Phys.page fresh)
              in
              scanned := !scanned + outcome.Relocate.granules_scanned;
              relocated := !relocated + outcome.Relocate.relocated;
              restore_perms child ~vpn:cvpn cpte)
        pvpns frames;
      (match mode with
      | Relocate_to_child ->
          Kernel.with_span k ~name:"reloc.scan" (fun () ->
              Kernel.emit ~proc:child k (Event.Granule_scan !scanned);
              Kernel.emit ~proc:child k (Event.Cap_relocate !relocated))
      | Verbatim -> ())

let map_zero_range k u ~base ~bytes ?read ?write ?exec () =
  Kernel.map_zero_pages k u ~base ~bytes ?read ?write ?exec ()
