module Engine = Ufork_sim.Engine
module Costs = Ufork_sim.Costs
module Kernel = Ufork_sas.Kernel
module Config = Ufork_sas.Config

type t = {
  kernel : Kernel.t;
  engine : Engine.t;
  strategy : Strategy.t;
}

let boot ?(cores = 4) ?(config = Config.ufork_fast) ?(costs = Costs.ufork)
    ?(strategy = Strategy.Copa) ?(proactive = true) () =
  let engine = Engine.create ~cores () in
  let kernel =
    Kernel.create ~engine ~costs ~config ~multi_address_space:false ()
  in
  Fork.install ~proactive kernel ~strategy;
  { kernel; engine; strategy }

let kernel t = t.kernel
let engine t = t.engine
let trace t = Kernel.trace t.kernel
let strategy t = t.strategy

let start t ?affinity ~image main =
  let u = Kernel.create_uproc t.kernel ~image () in
  Kernel.map_initial_image t.kernel u;
  Kernel.spawn_process t.kernel ?affinity u main;
  u

let run ?until t = Engine.run ?until t.engine
