module Costs = Ufork_sim.Costs
module Config = Ufork_sas.Config

type t = { sys : System.t; strategy : Strategy.t }

let boot ?(cores = 4) ?(config = Config.ufork_fast) ?(costs = Costs.ufork)
    ?(strategy = Strategy.Copa) ?(proactive = true) () =
  let sys =
    System.make ~cores ~config ~costs ~multi_address_space:false ()
  in
  Fork.install ~proactive (System.kernel sys) ~strategy;
  { sys; strategy }

let system t = t.sys
let kernel t = System.kernel t.sys
let engine t = System.engine t.sys
let trace t = System.trace t.sys
let strategy t = t.strategy
let start t ?affinity ~image main = System.start t.sys ?affinity ~image main
let run ?until t = System.run ?until t.sys
