module Capability = Ufork_cheri.Capability
module Page = Ufork_mem.Page
module Addr = Ufork_mem.Addr

type outcome = { granules_scanned : int; relocated : int }

let relocate_cap ~owner_area ~child_base ~child_bytes cap =
  let in_child a = a >= child_base && a < child_base + child_bytes in
  if not (Capability.tag cap) then cap
  else if in_child (Capability.base cap) && in_child (Capability.cursor cap)
  then cap
  else
    match owner_area (Capability.cursor cap) with
    | Some (src_base, _src_bytes) ->
        Capability.rebase cap ~delta:(child_base - src_base)
    | None ->
        (* No identifiable source μprocess: never leak the authority. *)
        Capability.clear_tag cap

let relocate_page ~owner_area ~child_base ~child_bytes page =
  let relocated = ref 0 in
  Page.map_caps page (fun cap ->
      let cap' = relocate_cap ~owner_area ~child_base ~child_bytes cap in
      if not (Capability.equal cap cap') then incr relocated;
      cap');
  { granules_scanned = Addr.granules_per_page; relocated = !relocated }
