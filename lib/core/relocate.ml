module Capability = Ufork_cheri.Capability
module Page = Ufork_mem.Page
module Addr = Ufork_mem.Addr

type outcome = { granules_scanned : int; relocated : int }

(* Chaos: silently skip the rebase of exactly one capability (leaving its
   parent provenance and parent-area target intact in the child page), so
   the runtime capflow invariant R4 — not the architectural checks — must
   be what catches the leak. One-shot: armed by the CLI, consumed by the
   first rebase the next fork performs. *)
let chaos_skip_rebase = ref false

let relocate_cap ~owner_area ~child_base ~child_bytes cap =
  let in_child a = a >= child_base && a < child_base + child_bytes in
  if not (Capability.tag cap) then cap
  else if in_child (Capability.base cap) && in_child (Capability.cursor cap)
  then
    (* Already targets the child: restamp only. [Capability.equal] ignores
       the provenance stamp, so the relocated count is unaffected. *)
    Capability.stamp cap ~prov:child_base
  else
    match owner_area (Capability.cursor cap) with
    | Some (src_base, _src_bytes) ->
        if !chaos_skip_rebase then begin
          chaos_skip_rebase := false;
          cap
        end
        else
          Capability.stamp
            (Capability.rebase cap ~delta:(child_base - src_base))
            ~prov:child_base
    | None ->
        (* No identifiable source μprocess: never leak the authority. *)
        Capability.clear_tag cap

let relocate_page ~owner_area ~child_base ~child_bytes page =
  let relocated = ref 0 in
  Page.map_caps page (fun cap ->
      let cap' = relocate_cap ~owner_area ~child_base ~child_bytes cap in
      if not (Capability.equal cap cap') then incr relocated;
      cap');
  { granules_scanned = Addr.granules_per_page; relocated = !relocated }
