(** The copy engine's machine room: every physical-page duplication and
    every page-range page-table operation in the simulator lives here.

    Batching contract: the range operations emit {e one}
    [Pte_copy n] / [Page_copy_eager n] / [Page_alloc n] /
    [Granule_scan g] / [Cap_relocate c] record per range instead of one
    per page. Because each of those events has a preset-linear cost
    (cost of [n] units = [n * unit], exact integer multiply) and
    {!Ufork_sim.Meter} counts payload units, a batched emission charges
    the same cycles and bumps the same counters as the per-page
    singletons it replaces — only the trace-ring record count shrinks
    (a 100 MB fork charges one record per region, not ~25k). The golden
    equivalence test pins this down against pre-refactor recordings. *)

module Pte = Ufork_mem.Pte

val owner_area : Ufork_sas.Kernel.t -> int -> (int * int) option
(** Locate the (base, bytes) μprocess area containing an address, across
    live and zombie processes (a predecessor query on the kernel's area
    index). *)

val natural_perms :
  Ufork_sas.Uproc.t ->
  addr:int ->
  read:bool ref ->
  write:bool ref ->
  exec:bool ref ->
  unit
(** The region's base permissions (code r-x, everything else rw-). *)

val restore_perms : Ufork_sas.Uproc.t -> vpn:int -> Pte.t -> unit
(** Reset an entry to its region's natural permissions and mark it
    private (the final step of every copy resolution). *)

val copy_page_contents : src:Ufork_mem.Page.t -> dst:Ufork_mem.Page.t -> unit
(** Duplicate one page: bytes plus capability granules with tags. The
    only raw page-copy loop outside [lib/mem] (lint-enforced). *)

val duplicate_frame :
  Ufork_sas.Kernel.t ->
  Ufork_sas.Uproc.t ->
  Ufork_mem.Phys.frame ->
  Ufork_mem.Phys.frame
(** Fault-path singleton: allocate a fresh frame (charging [page_alloc]
    to the process) and copy the given frame's contents into it. *)

val share_range :
  Ufork_sas.Kernel.t ->
  parent:Ufork_sas.Uproc.t ->
  child:Ufork_sas.Uproc.t ->
  delta_pages:int ->
  ?downgrade:bool ->
  ?page_event:Ufork_sim.Event.t ->
  child_pte:(Pte.t -> Pte.t) ->
  int list ->
  bool
(** Alias a batch of parent pages into the child at
    [parent_vpn + delta_pages], charging one [Pte_copy n]. For each page
    (ascending order of the given list): when [downgrade] (default), a
    writable parent entry drops to read-only {!Pte.Cow_shared}; the
    optional [page_event] is emitted (e.g. [Shm_share]); the child entry
    is built by [child_pte] from the (post-downgrade) parent entry and
    installed with {!Ufork_mem.Page_table.map_shared}. Returns whether
    any parent entry was actually downgraded — the caller decides
    whether a TLB shootdown is owed. *)

type copy_mode =
  | Verbatim  (** Child entry copies the parent's permissions as-is. *)
  | Relocate_to_child
      (** μFork §4.2: scan the copy's granules, relocate area-internal
          capabilities by the child displacement, then restore the
          region's natural permissions. One batched
          [Granule_scan]/[Cap_relocate] pair per range. *)

val copy_range :
  Ufork_sas.Kernel.t ->
  parent:Ufork_sas.Uproc.t ->
  child:Ufork_sas.Uproc.t ->
  delta_pages:int ->
  mode:copy_mode ->
  int list ->
  unit
(** Eagerly copy a batch of parent pages into the child: one
    [Pte_copy n] + [Page_copy_eager n] + [Page_alloc n] charge, then a
    per-page contents copy and map. *)

val map_zero_range :
  Ufork_sas.Kernel.t ->
  Ufork_sas.Uproc.t ->
  base:int ->
  bytes:int ->
  ?read:bool ->
  ?write:bool ->
  ?exec:bool ->
  unit ->
  unit
(** Map fresh zero frames over every unmapped page of the range with one
    batched [Page_alloc] charge (delegates to
    {!Ufork_sas.Kernel.map_zero_pages}). *)
