(** Memory-transfer strategies for μFork (§3.8).

    Classic CoW is unsound in a single address space: a child reading a
    page that contains absolute memory references would consume stale
    capabilities still pointing into the parent. The paper's answers: *)

type t =
  | Full_copy
      (** Synchronously copy (and relocate) the parent's entire area —
          including the whole static heap reservation — at fork time. *)
  | Coa
      (** Copy-on-Access: share initially, but any child access (and any
          parent write) triggers the copy + relocation. *)
  | Copa
      (** Copy-on-Pointer-Access: share read-only; writes by either side
          and {e capability loads by the child} (via the CHERI
          fault-on-capability-load page bit) trigger the copy +
          relocation. Plain data reads stay shared. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val all : t list
