type t = Full_copy | Coa | Copa

let to_string = function
  | Full_copy -> "full-copy"
  | Coa -> "CoA"
  | Copa -> "CoPA"

let pp ppf t = Format.pp_print_string ppf (to_string t)
let all = [ Full_copy; Coa; Copa ]
