(** Page copying and fault resolution for μFork.

    Implements the three-step copy of §4.2 ("the child page table entry is
    changed to point to a free physical page ... the page is copied ...
    the copied page is scanned in 16-byte increments") plus the in-place
    claim optimization when the shared frame's refcount has already dropped
    to one, and the demand-zero path for the lazily-materialized heap. *)

module Capability = Ufork_cheri.Capability

val owner_area : Ufork_sas.Kernel.t -> int -> (int * int) option
(** Locate the (base, bytes) μprocess area containing an address, across
    live and zombie processes. *)

val resolve_child_copy :
  Ufork_sas.Kernel.t -> Ufork_sas.Uproc.t -> vpn:int -> unit
(** Give the child a private, relocated copy of the shared page mapped at
    [vpn] in its area: allocate + copy + scan + relocate (or claim the
    frame in place when it is no longer shared), then restore the region's
    natural permissions. Charges every event. *)

val resolve_parent_cow :
  Ufork_sas.Kernel.t -> Ufork_sas.Uproc.t -> vpn:int -> unit
(** Classic CoW write resolution for the parent side: private copy, no
    relocation (its capabilities already target its own area). *)

val share_to_child :
  Ufork_sas.Kernel.t ->
  parent:Ufork_sas.Uproc.t ->
  child:Ufork_sas.Uproc.t ->
  strategy:Strategy.t ->
  parent_vpn:int ->
  unit
(** Map the child's page at [parent_vpn + delta] onto the parent's frame
    with the strategy's permissions, and downgrade the parent's entry to
    copy-on-write. Charges one PTE copy (+ protect). *)

val copy_to_child :
  Ufork_sas.Kernel.t ->
  parent:Ufork_sas.Uproc.t ->
  child:Ufork_sas.Uproc.t ->
  parent_vpn:int ->
  unit
(** Eager copy + relocate of one parent page into the child (used for the
    proactive GOT/allocator-metadata copies and by the full-copy
    strategy). *)

val share_shm_to_child :
  Ufork_sas.Kernel.t ->
  parent:Ufork_sas.Uproc.t ->
  child:Ufork_sas.Uproc.t ->
  parent_vpn:int ->
  unit
(** Map a deliberately shared page (§3.7) into the child at the same area
    offset, pointing at the same frame: fork never copies shm. *)

val touch_write : Ufork_sas.Kernel.t -> Ufork_sas.Uproc.t -> vpn:int -> unit
(** Simulate a user write to a page: resolves any pending share exactly as
    a write fault would (used to model post-fork working-set writes and
    the monolithic allocator's arena re-dirtying). *)

val natural_perms :
  Ufork_sas.Uproc.t -> addr:int -> read:bool ref -> write:bool ref -> exec:bool ref -> unit
(** The region's base permissions (code r-x, everything else rw-). *)
