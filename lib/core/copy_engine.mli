(** Fault-path copy resolution for μFork.

    Implements the three-step copy of §4.2 ("the child page table entry is
    changed to point to a free physical page ... the page is copied ...
    the copied page is scanned in 16-byte increments") plus the in-place
    claim optimization when the shared frame's refcount has already dropped
    to one. These are the per-page singletons taken on CoW/CoA/CoPA
    faults; the batched fork-time range operations live in {!Memops}. *)

module Capability = Ufork_cheri.Capability

val owner_area : Ufork_sas.Kernel.t -> int -> (int * int) option
(** Locate the (base, bytes) μprocess area containing an address, across
    live and zombie processes. *)

val resolve_child_copy :
  Ufork_sas.Kernel.t -> Ufork_sas.Uproc.t -> vpn:int -> unit
(** Give the child a private, relocated copy of the shared page mapped at
    [vpn] in its area: allocate + copy + scan + relocate (or claim the
    frame in place when it is no longer shared), then restore the region's
    natural permissions. Charges every event. *)

val resolve_parent_cow :
  Ufork_sas.Kernel.t -> Ufork_sas.Uproc.t -> vpn:int -> unit
(** Classic CoW write resolution for the parent side: private copy, no
    relocation (its capabilities already target its own area). *)

val touch_write : Ufork_sas.Kernel.t -> Ufork_sas.Uproc.t -> vpn:int -> unit
(** Simulate a user write to a page: resolves any pending share exactly as
    a write fault would (used to model post-fork working-set writes and
    the monolithic allocator's arena re-dirtying). *)

val natural_perms :
  Ufork_sas.Uproc.t -> addr:int -> read:bool ref -> write:bool ref -> exec:bool ref -> unit
(** The region's base permissions (code r-x, everything else rw-). *)
