(** The shared fork skeleton all three OS flavours run through.

    Every fork in the simulator — μFork's in-area duplication, the
    monolithic baseline's CoW vmspace copy, the VM-clone baseline's
    whole-image duplication — performs the same fixed sequence: charge
    the fixed fork cost, duplicate the file table, allocate the child
    μprocess, duplicate parent state, clone the allocator mirror, run
    flavour-specific post-copy work, create the child thread and spawn
    it, then gauge the fork latency. {!run} owns that spine; the
    flavours supply only the policy hooks. *)

module Capability = Ufork_cheri.Capability

exception Segfault of string
(** Raised back into application code for an unresolvable fault. *)

type hooks = {
  pre_create : Ufork_sas.Kernel.t -> parent:Ufork_sas.Uproc.t -> unit;
      (** After the fixed fork charge, before the child exists (the
          VM-clone baseline charges its domain creation here). *)
  duplicate :
    Ufork_sas.Kernel.t ->
    parent:Ufork_sas.Uproc.t ->
    child:Ufork_sas.Uproc.t ->
    unit;
      (** Page disposition: walk the parent's mappings and share, copy
          or downgrade them into the child (typically via the
          {!Memops} range operations). *)
  post_copy :
    Ufork_sas.Kernel.t ->
    parent:Ufork_sas.Uproc.t ->
    child:Ufork_sas.Uproc.t ->
    pte_copies:int ->
    unit;
      (** After the allocator clone: TLB shootdowns, TOCTTOU
          revalidation, register relocation, the parent's working-set
          re-touch. [pte_copies] is the number of page-table entries the
          [duplicate] hook charged (metered around the call). *)
  child_prologue : Ufork_sas.Kernel.t -> child:Ufork_sas.Uproc.t -> unit;
      (** Runs first on the child's own thread (e.g. touching its stack
          working set), before the application continuation. *)
  reloc :
    (Ufork_sas.Kernel.t ->
    child:Ufork_sas.Uproc.t ->
    Capability.t ->
    Capability.t)
    option;
      (** Capability-register translation for the child (μFork's
          displacement relocation); [None] = identity. *)
}

val default : hooks
(** All hooks no-ops, [reloc = None]; build flavours with
    [{ default with ... }]. *)

val fork_probe :
  (Ufork_sas.Kernel.t -> child:Ufork_sas.Uproc.t -> unit) option ref
(** Armed by the workload layer during capflow-checked runs: called at
    the very end of {!run}, after the fork window closed, so invariant
    R4 can accuse an authority leak at the fork that caused it.
    Disarmed cost: one option read per fork. *)

val chaos_heap_smuggle : bool ref
(** Chaos (capflow cross-certification): when set, the next fork stashes
    one parent capability in an OCaml-heap cell — invisible to the §4.2
    tag scan — and raw-stores it into the child's meta page after
    relocation. Static capflow (D13) is deliberately discharged here;
    the runtime R4 fork scan must be what catches it. Self-clears. *)

val run :
  Ufork_sas.Kernel.t ->
  hooks ->
  Ufork_sas.Uproc.t ->
  (Ufork_sas.Api.t -> unit) ->
  int
(** Execute one fork through the spine; returns the child pid. Sets the
    {!Ufork_sim.Trace.last_fork_latency_key} gauge on the way out. *)

val stack_touch_vpns : Ufork_sas.Uproc.t -> int -> int list
(** The top-[n] stack pages (top-down) — the write working set a process
    touches immediately around a fork. *)

val demand_zero : Ufork_sas.Kernel.t -> Ufork_sas.Uproc.t -> addr:int -> unit
(** Materialize the page containing [addr] with a fresh zero frame,
    charging one demand-zero fault. *)

val resolve_unmapped :
  Ufork_sas.Kernel.t -> Ufork_sas.Uproc.t -> addr:int -> outside:string -> unit
(** The shared unmapped-address fault arm: demand-zero inside the heap
    and allocator-metadata regions, {!Segfault} anywhere else ([outside]
    names the address-space flavour in the out-of-area message). *)
