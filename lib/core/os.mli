(** A bootable μFork operating system.

    Convenience layer that assembles the substrate: a simulated Morello
    machine ({!Ufork_sim.Engine}), the SASOS kernel kit
    ({!Ufork_sas.Kernel}) and the μFork mechanism ({!Fork}) — yielding a
    system on which unmodified {!Ufork_sas.Api.t} applications run. *)

type t

val boot :
  ?cores:int ->
  ?config:Ufork_sas.Config.t ->
  ?costs:Ufork_sim.Costs.t ->
  ?strategy:Strategy.t ->
  ?proactive:bool ->
  unit ->
  t
(** Defaults: 4 cores, {!Ufork_sas.Config.ufork_fast},
    {!Ufork_sim.Costs.ufork}, {!Strategy.Copa}. *)

val system : t -> System.t
(** The underlying {!System.t} (engine + kernel + lifecycle). *)

val kernel : t -> Ufork_sas.Kernel.t
val engine : t -> Ufork_sim.Engine.t

val trace : t -> Ufork_sim.Trace.t
(** The kernel's mechanism-event bus (cycle charging, counters, optional
    record ring). *)

val strategy : t -> Strategy.t

val start :
  t ->
  ?affinity:int ->
  image:Ufork_sas.Image.t ->
  (Ufork_sas.Api.t -> unit) ->
  Ufork_sas.Uproc.t
(** Create an initial μprocess (mapped image, fresh fd table) and schedule
    its main thread. Call {!run} to execute. *)

val run : ?until:int64 -> t -> unit
(** Run the machine until quiescence (or the given simulated time). *)
