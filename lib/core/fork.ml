module Capability = Ufork_cheri.Capability
module Addr = Ufork_mem.Addr
module Pte = Ufork_mem.Pte
module Page_table = Ufork_mem.Page_table
module Vas = Ufork_mem.Vas
module Engine = Ufork_sim.Engine
module Costs = Ufork_sim.Costs
module Meter = Ufork_sim.Meter
module Event = Ufork_sim.Event
module Trace = Ufork_sim.Trace
module Kernel = Ufork_sas.Kernel
module Uproc = Ufork_sas.Uproc
module Config = Ufork_sas.Config
module Image = Ufork_sas.Image
module Fdesc = Ufork_sas.Fdesc
module Tinyalloc = Ufork_sas.Tinyalloc

exception Segfault of string

let last_fork_latency = Kernel.last_fork_latency

(* Approximate size of the capability register file relocated at fork
   (§3.5 step 2: "any absolute memory references contained in registers are
   relocated"). *)
let register_file_caps = 31

let region_vpns base bytes = (Addr.vpn_of_addr base, Addr.bytes_to_pages bytes)

(* Iterate the parent's mapped pages region by region, in deterministic
   ascending order, applying [f parent_vpn pte region]. *)
let iter_mapped_pages (u : Uproc.t) f =
  let r = u.Uproc.regions in
  let regions =
    [
      ("got", r.Uproc.got_base, r.Uproc.got_bytes);
      ("code", r.Uproc.code_base, r.Uproc.code_bytes);
      ("data", r.Uproc.data_base, r.Uproc.data_bytes);
      ("stack", r.Uproc.stack_base, r.Uproc.stack_bytes);
      ("meta", r.Uproc.meta_base, r.Uproc.meta_bytes);
      ("heap", r.Uproc.heap_base, r.Uproc.heap_bytes);
    ]
  in
  List.iter
    (fun (name, base, bytes) ->
      let vpn, count = region_vpns base bytes in
      Page_table.iter_range u.Uproc.pt ~vpn ~count (fun v pte ->
          f v pte name))
    regions

(* The write working set a μprocess touches immediately around the fork:
   its top-of-stack pages. *)
let stack_touch_vpns (u : Uproc.t) n =
  let r = u.Uproc.regions in
  let vpn0 = Addr.vpn_of_addr r.Uproc.stack_base in
  let pages = Addr.bytes_to_pages r.Uproc.stack_bytes in
  List.init (min n pages) (fun i -> vpn0 + pages - 1 - i)

(* Read working set for CoA's in-call parent faults: globals. *)
let data_touch_vpns (u : Uproc.t) n =
  let r = u.Uproc.regions in
  let vpn0 = Addr.vpn_of_addr r.Uproc.data_base in
  let pages = Addr.bytes_to_pages r.Uproc.data_bytes in
  List.init (min n pages) (fun i -> vpn0 + i)

let do_fork k ~strategy ~proactive (parent : Uproc.t) child_main =
  let meter = Kernel.meter k in
  let config = Kernel.config k in
  let t0 = Engine.now (Kernel.engine k) in
  Kernel.emit ~proc:parent k Event.Fork_fixed;
  let fds = Fdesc.Fdtable.dup_all parent.Uproc.fds in
  let child =
    Kernel.create_uproc k ~parent ~fds ~image:parent.Uproc.image ()
  in
  child.Uproc.forked <- true;
  let delta = Uproc.delta ~parent ~child in
  let delta_pages = delta / Addr.page_size in
  (* 1. Parent state duplication: walk the parent's mapped pages. GOT and
     used allocator metadata are proactively copied + relocated; everything
     else follows the strategy. *)
  let meta_used_bytes =
    Tinyalloc.high_water_meta_granules parent.Uproc.allocator
    * Addr.granule_size
  in
  let meta_used_limit = parent.Uproc.regions.Uproc.meta_base + meta_used_bytes in
  let pte_before = Meter.get meter Event.pte_copy_key in
  iter_mapped_pages parent (fun pvpn pte region ->
      let eager =
        proactive
        &&
        match region with
        | "got" -> true
        | "meta" -> Addr.addr_of_vpn pvpn < meta_used_limit
        | _ -> false
      in
      if pte.Pte.share = Pte.Shm_shared then
        (* Deliberate shared memory stays shared across fork (§3.7). *)
        Copy_engine.share_shm_to_child k ~parent ~child ~parent_vpn:pvpn
      else if eager then
        Copy_engine.copy_to_child k ~parent ~child ~parent_vpn:pvpn
      else
        match strategy with
        | Strategy.Full_copy ->
            Copy_engine.copy_to_child k ~parent ~child ~parent_vpn:pvpn
        | Strategy.Coa | Strategy.Copa ->
            Copy_engine.share_to_child k ~parent ~child ~strategy
              ~parent_vpn:pvpn);
  (* Under the full-copy strategy the entire static heap reservation is
     transferred, materializing even never-touched pages (§5.2: "the
     memory transferred by a full copy is correspondingly large"). *)
  (match strategy with
  | Strategy.Full_copy ->
      let r = child.Uproc.regions in
      let vpn0 = Addr.vpn_of_addr r.Uproc.heap_base in
      let pages = Addr.bytes_to_pages r.Uproc.heap_bytes in
      for v = vpn0 to vpn0 + pages - 1 do
        if not (Page_table.is_mapped child.Uproc.pt ~vpn:v) then begin
          (* Also materialize the parent side: the static heap exists in
             full in a statically-allocated-heap build. *)
          let pv = v - delta_pages in
          if not (Page_table.is_mapped parent.Uproc.pt ~vpn:pv) then
            Kernel.map_zero_pages k parent ~base:(Addr.addr_of_vpn pv)
              ~bytes:Addr.page_size ();
          Copy_engine.copy_to_child k ~parent ~child ~parent_vpn:pv
        end
      done
  | Strategy.Coa | Strategy.Copa -> ());
  (* The sharing strategies downgraded live parent PTEs; stale TLB entries
     on every core must be invalidated before anyone relies on the new
     permissions (the protocol the trace linter checks). Full copy never
     touches the parent's permissions, so there is nothing to flush. *)
  (match strategy with
  | Strategy.Coa | Strategy.Copa ->
      Kernel.emit ~proc:parent k Event.Tlb_shootdown
  | Strategy.Full_copy -> ());
  (* TOCTTOU hardening revalidates the duplicated mappings against the
     (copied) fork arguments, adding per-entry work (§5.1: "The cost of
     TOCTTOU protection is relatively minor (2.6% at 100 MB)"). *)
  if config.Config.toctou then begin
    let ptes = Meter.get meter Event.pte_copy_key - pte_before in
    Kernel.emit ~proc:parent k (Event.Toctou_revalidate ptes)
  end;
  (* Clone the allocator mirror — the bookkeeping twin of the metadata
     copy above. *)
  child.Uproc.allocator <- Tinyalloc.clone parent.Uproc.allocator ~delta;
  (* 2. Post-copy phase: relocate the register file. *)
  Kernel.emit ~proc:parent k (Event.Cap_relocate register_file_caps);
  (* The parent's return path re-touches its working set at once. Writes
     fault under every lazy strategy; under CoA even the reads of globals
     fault, which is why CoA fork latency is slightly worse (§5.2). *)
  List.iter
    (fun vpn -> Copy_engine.touch_write k parent ~vpn)
    (stack_touch_vpns parent config.Config.parent_touch_pages);
  (match strategy with
  | Strategy.Coa ->
      (* CoA makes even the parent's reads fault: globals and the hot end
         of the heap re-fault on the return path. *)
      List.iter
        (fun vpn -> Copy_engine.touch_write k parent ~vpn)
        (data_touch_vpns parent (4 * config.Config.parent_touch_pages))
  | Strategy.Copa | Strategy.Full_copy -> ());
  Kernel.emit ~proc:parent k Event.Thread_create;
  (* The child's capability registers are displaced copies of the
     parent's. *)
  let reloc cap =
    Relocate.relocate_cap
      ~owner_area:(Copy_engine.owner_area k)
      ~child_base:child.Uproc.area_base ~child_bytes:child.Uproc.area_bytes
      cap
  in
  let child_body api =
    (* The child starts by writing its own stack frames. *)
    List.iter
      (fun vpn -> Copy_engine.touch_write k child ~vpn)
      (stack_touch_vpns child config.Config.child_touch_pages);
    child_main api
  in
  Kernel.spawn_process k ~reloc child child_body;
  let dt = Int64.sub (Engine.now (Kernel.engine k)) t0 in
  Trace.gauge (Kernel.trace k) Trace.last_fork_latency_key (Int64.to_int dt);
  child.Uproc.pid

(* Fault resolution: CoW/CoA/CoPA plus demand-zero heap. *)
let handle_fault k (u : Uproc.t) ~addr ~access =
  let vpn = Addr.vpn_of_addr addr in
  match Page_table.lookup u.Uproc.pt ~vpn with
  | None -> (
      (* Demand-zero materialization inside the heap/metadata regions. *)
      match Uproc.region_of_addr u addr with
      | Some ("heap" | "meta") ->
          Kernel.emit ~proc:u k Event.Demand_zero;
          Kernel.map_zero_pages k u ~base:(Addr.addr_of_vpn vpn)
            ~bytes:Addr.page_size ()
      | Some r ->
          raise
            (Segfault
               (Printf.sprintf "pid %d: %#x (%s) not mapped" u.Uproc.pid addr r))
      | None ->
          raise
            (Segfault
               (Printf.sprintf "pid %d: %#x outside μprocess area" u.Uproc.pid
                  addr)))
  | Some pte -> (
      Kernel.emit ~proc:u k Event.Page_fault;
      match (pte.Pte.share, access) with
      | Pte.Copa_shared, (Vas.Write | Vas.Cap_store | Vas.Cap_load) ->
          Kernel.emit ~proc:u k
            (match access with
            | Vas.Cap_load -> Event.Copa_cap_load_fault
            | _ -> Event.Copa_write_fault);
          Copy_engine.resolve_child_copy k u ~vpn
      | Pte.Coa_shared, _ ->
          Kernel.emit ~proc:u k Event.Coa_access_fault;
          Copy_engine.resolve_child_copy k u ~vpn
      | Pte.Cow_shared, (Vas.Write | Vas.Cap_store) ->
          Kernel.emit ~proc:u k Event.Cow_write_fault;
          Copy_engine.resolve_parent_cow k u ~vpn
      | (Pte.Private | Pte.Cow_shared | Pte.Copa_shared | Pte.Shm_shared), _
        ->
          raise
            (Segfault
               (Format.asprintf "pid %d: invalid %a at %#x" u.Uproc.pid
                  Vas.pp_access access addr)))

let install ?(proactive = true) k ~strategy =
  if Kernel.multi_address_space k then
    invalid_arg "Fork.install: μFork requires a single address space";
  Kernel.set_fork_hook k (fun parent child_main ->
      do_fork k ~strategy ~proactive parent child_main);
  Kernel.set_fault_hook k (fun u ~addr ~access ->
      handle_fault k u ~addr ~access)
