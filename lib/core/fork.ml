module Capability = Ufork_cheri.Capability
module Addr = Ufork_mem.Addr
module Pte = Ufork_mem.Pte
module Page_table = Ufork_mem.Page_table
module Vas = Ufork_mem.Vas
module Event = Ufork_sim.Event
module Kernel = Ufork_sas.Kernel
module Uproc = Ufork_sas.Uproc
module Config = Ufork_sas.Config
module Tinyalloc = Ufork_sas.Tinyalloc

exception Segfault = Fork_spine.Segfault

let last_fork_latency = Kernel.last_fork_latency

(* Approximate size of the capability register file relocated at fork
   (§3.5 step 2: "any absolute memory references contained in registers are
   relocated"). *)
let register_file_caps = 31

(* Read working set for CoA's in-call parent faults: globals. *)
let data_touch_vpns (u : Uproc.t) n =
  let r = u.Uproc.regions in
  let vpn0 = Addr.vpn_of_addr r.Uproc.data_base in
  let pages = Addr.bytes_to_pages r.Uproc.data_bytes in
  List.init (min n pages) (fun i -> vpn0 + i)

let regions (u : Uproc.t) =
  let r = u.Uproc.regions in
  [
    ("got", r.Uproc.got_base, r.Uproc.got_bytes);
    ("code", r.Uproc.code_base, r.Uproc.code_bytes);
    ("data", r.Uproc.data_base, r.Uproc.data_bytes);
    ("stack", r.Uproc.stack_base, r.Uproc.stack_bytes);
    ("meta", r.Uproc.meta_base, r.Uproc.meta_bytes);
    ("heap", r.Uproc.heap_base, r.Uproc.heap_bytes);
  ]

(* 1. Parent state duplication: walk the parent's mapped pages region by
   region, partition each region's pages by disposition, and hand each
   partition to one batched {!Memops} range operation. GOT and used
   allocator metadata are proactively copied + relocated; deliberate
   shared memory stays shared (§3.7); everything else follows the
   strategy. *)
let duplicate k ~strategy ~proactive ~(parent : Uproc.t) ~(child : Uproc.t) =
  let delta_pages = Uproc.delta ~parent ~child / Addr.page_size in
  let meta_used_bytes =
    Tinyalloc.high_water_meta_granules parent.Uproc.allocator
    * Addr.granule_size
  in
  let meta_used_limit =
    parent.Uproc.regions.Uproc.meta_base + meta_used_bytes
  in
  List.iter
    (fun (name, base, bytes) ->
      let vpn = Addr.vpn_of_addr base in
      let count = Addr.bytes_to_pages bytes in
      let shm = ref [] and eager = ref [] and lazily = ref [] in
      Page_table.iter_range parent.Uproc.pt ~vpn ~count
        (fun v (pte : Pte.t) ->
          if pte.Pte.share = Pte.Shm_shared then shm := v :: !shm
          else
            let proactive_page =
              proactive
              &&
              match name with
              | "got" -> true
              | "meta" -> Addr.addr_of_vpn v < meta_used_limit
              | _ -> false
            in
            if proactive_page || strategy = Strategy.Full_copy then
              eager := v :: !eager
            else lazily := v :: !lazily);
      Memops.share_range k ~parent ~child ~delta_pages ~downgrade:false
        ~page_event:Event.Shm_share
        ~child_pte:(fun (ppte : Pte.t) ->
          Pte.make ~read:ppte.Pte.read ~write:ppte.Pte.write
            ~exec:ppte.Pte.exec ~share:Pte.Shm_shared ppte.Pte.frame)
        (List.rev !shm)
      |> ignore;
      Memops.copy_range k ~parent ~child ~delta_pages
        ~mode:Memops.Relocate_to_child (List.rev !eager);
      match strategy with
      | Strategy.Full_copy -> assert (!lazily = [])
      | Strategy.Coa | Strategy.Copa ->
          (* Parent side drops to copy-on-write (writes fault; reads —
             and, under CoPA, capability loads — proceed: its own
             capabilities are valid). *)
          Memops.share_range k ~parent ~child ~delta_pages
            ~child_pte:(fun (ppte : Pte.t) ->
              match strategy with
              | Strategy.Coa ->
                  Pte.make ~read:false ~write:false ~exec:false
                    ~share:Pte.Coa_shared ppte.Pte.frame
              | Strategy.Copa ->
                  Pte.make ~read:true ~write:false ~exec:ppte.Pte.exec
                    ~cap_load_fault:true ~share:Pte.Copa_shared
                    ppte.Pte.frame
              | Strategy.Full_copy -> assert false)
            (List.rev !lazily)
          |> ignore)
    (regions parent);
  (* Under the full-copy strategy the entire static heap reservation is
     transferred, materializing even never-touched pages (§5.2: "the
     memory transferred by a full copy is correspondingly large"). *)
  match strategy with
  | Strategy.Full_copy ->
      let r = child.Uproc.regions in
      let vpn0 = Addr.vpn_of_addr r.Uproc.heap_base in
      let pages = Addr.bytes_to_pages r.Uproc.heap_bytes in
      let missing = ref [] in
      for v = vpn0 + pages - 1 downto vpn0 do
        if not (Page_table.is_mapped child.Uproc.pt ~vpn:v) then
          missing := (v - delta_pages) :: !missing
      done;
      if !missing <> [] then begin
        (* Also materialize the parent side: the static heap exists in
           full in a statically-allocated-heap build. The walk above
           copied every mapped parent page, so the child's heap holes are
           exactly the parent's — one batched zero-fill covers them. *)
        let pr = parent.Uproc.regions in
        Memops.map_zero_range k parent ~base:pr.Uproc.heap_base
          ~bytes:pr.Uproc.heap_bytes ();
        Memops.copy_range k ~parent ~child ~delta_pages
          ~mode:Memops.Relocate_to_child !missing
      end
  | Strategy.Coa | Strategy.Copa -> ()

(* 2. Post-copy phase: flush downgraded mappings, revalidate, relocate
   the register file, and re-touch the parent's working set. *)
let post_copy k ~strategy ~(parent : Uproc.t) ~pte_copies =
  let config = Kernel.config k in
  (* The sharing strategies downgraded live parent PTEs; stale TLB entries
     on every core must be invalidated before anyone relies on the new
     permissions (the protocol the trace linter checks). Full copy never
     touches the parent's permissions, so there is nothing to flush. *)
  (match strategy with
  | Strategy.Coa | Strategy.Copa ->
      (* One IPI per remote core that may cache a stale entry: the
         cross-core window grows with the machine, which is where the
         fork-scaling curve eventually bends. *)
      Kernel.emit ~proc:parent k
        (Event.Tlb_shootdown (Ufork_sim.Engine.cores (Kernel.engine k) - 1))
  | Strategy.Full_copy -> ());
  (* TOCTTOU hardening revalidates the duplicated mappings against the
     (copied) fork arguments, adding per-entry work (§5.1: "The cost of
     TOCTTOU protection is relatively minor (2.6% at 100 MB)"). *)
  if config.Config.toctou then
    Kernel.emit ~proc:parent k (Event.Toctou_revalidate pte_copies);
  Kernel.emit ~proc:parent k (Event.Cap_relocate register_file_caps);
  (* The parent's return path re-touches its working set at once. Writes
     fault under every lazy strategy; under CoA even the reads of globals
     fault, which is why CoA fork latency is slightly worse (§5.2). *)
  List.iter
    (fun vpn -> Copy_engine.touch_write k parent ~vpn)
    (Fork_spine.stack_touch_vpns parent config.Config.parent_touch_pages);
  match strategy with
  | Strategy.Coa ->
      (* CoA makes even the parent's reads fault: globals and the hot end
         of the heap re-fault on the return path. *)
      List.iter
        (fun vpn -> Copy_engine.touch_write k parent ~vpn)
        (data_touch_vpns parent (4 * config.Config.parent_touch_pages))
  | Strategy.Copa | Strategy.Full_copy -> ()

let hooks ~strategy ~proactive =
  {
    Fork_spine.default with
    duplicate =
      (fun k ~parent ~child -> duplicate k ~strategy ~proactive ~parent ~child);
    post_copy =
      (fun k ~parent ~child:_ ~pte_copies ->
        post_copy k ~strategy ~parent ~pte_copies);
    child_prologue =
      (fun k ~child ->
        (* The child starts by writing its own stack frames. *)
        let config = Kernel.config k in
        List.iter
          (fun vpn -> Copy_engine.touch_write k child ~vpn)
          (Fork_spine.stack_touch_vpns child config.Config.child_touch_pages));
    reloc =
      Some
        (fun k ~child cap ->
          (* The child's capability registers are displaced copies of the
             parent's. *)
          Relocate.relocate_cap
            ~owner_area:(Memops.owner_area k)
            ~child_base:child.Uproc.area_base
            ~child_bytes:child.Uproc.area_bytes cap);
  }

let do_fork k ~strategy ~proactive (parent : Uproc.t) child_main =
  Fork_spine.run k (hooks ~strategy ~proactive) parent child_main

(* Fault resolution: CoW/CoA/CoPA plus demand-zero heap. *)
let handle_fault k (u : Uproc.t) ~addr ~access =
  Kernel.with_span k ~name:"fault.service" @@ fun () ->
  let vpn = Addr.vpn_of_addr addr in
  match Page_table.lookup u.Uproc.pt ~vpn with
  | None -> Fork_spine.resolve_unmapped k u ~addr ~outside:"μprocess area"
  | Some pte -> (
      Kernel.emit ~proc:u k Event.Page_fault;
      match (pte.Pte.share, access) with
      | Pte.Copa_shared, (Vas.Write | Vas.Cap_store | Vas.Cap_load) ->
          Kernel.emit ~proc:u k
            (match access with
            | Vas.Cap_load -> Event.Copa_cap_load_fault
            | _ -> Event.Copa_write_fault);
          Copy_engine.resolve_child_copy k u ~vpn
      | Pte.Coa_shared, _ ->
          Kernel.emit ~proc:u k Event.Coa_access_fault;
          Copy_engine.resolve_child_copy k u ~vpn
      | Pte.Cow_shared, (Vas.Write | Vas.Cap_store) ->
          Kernel.emit ~proc:u k Event.Cow_write_fault;
          Copy_engine.resolve_parent_cow k u ~vpn
      | (Pte.Private | Pte.Cow_shared | Pte.Copa_shared | Pte.Shm_shared), _
        ->
          raise
            (Segfault
               (Format.asprintf "pid %d: invalid %a at %#x" u.Uproc.pid
                  Vas.pp_access access addr)))

let install ?(proactive = true) k ~strategy =
  if Kernel.multi_address_space k then
    invalid_arg "Fork.install: μFork requires a single address space";
  Kernel.set_fork_hook k (fun parent child_main ->
      do_fork k ~strategy ~proactive parent child_main);
  Kernel.set_fault_hook k (fun u ~addr ~access ->
      handle_fault k u ~addr ~access)
