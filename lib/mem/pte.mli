(** Page-table entries.

    Beyond the classic R/W/X bits, entries carry the CHERI-specific
    {!cap_load_fault} permission bit used to implement Copy-on-Pointer-Access
    (§4.2: "an additional page-table permission bit present with CHERI,
    which triggers a fault when a capability is loaded from that page"),
    and a {!share} marker telling the fault handler why the page is mapped
    with reduced permissions. *)

type share =
  | Private  (** Not shared; permissions are final. *)
  | Cow_shared  (** Classic copy-on-write sharing (monolithic baseline, and
                    the parent side of μFork mappings). *)
  | Coa_shared  (** μFork Copy-on-Access: any access by the owner faults. *)
  | Copa_shared  (** μFork Copy-on-Pointer-Access: writes and capability
                     loads fault; data reads proceed. *)
  | Shm_shared
      (** Deliberate shared memory (§3.7): the same frames are mapped in
          several processes; fork shares them and never copies. *)

type t = {
  mutable frame : Phys.frame;
  mutable read : bool;
  mutable write : bool;
  mutable exec : bool;
  mutable cap_load_fault : bool;
  mutable share : share;
}

val make :
  ?read:bool ->
  ?write:bool ->
  ?exec:bool ->
  ?cap_load_fault:bool ->
  ?share:share ->
  Phys.frame ->
  t
(** Defaults: readable, writable, non-executable, no capability-load fault,
    private. *)

val pp_share : Format.formatter -> share -> unit
val pp : Format.formatter -> t -> unit
