type share = Private | Cow_shared | Coa_shared | Copa_shared | Shm_shared

type t = {
  mutable frame : Phys.frame;
  mutable read : bool;
  mutable write : bool;
  mutable exec : bool;
  mutable cap_load_fault : bool;
  mutable share : share;
}

let make ?(read = true) ?(write = true) ?(exec = false)
    ?(cap_load_fault = false) ?(share = Private) frame =
  { frame; read; write; exec; cap_load_fault; share }

let pp_share ppf = function
  | Private -> Format.pp_print_string ppf "private"
  | Cow_shared -> Format.pp_print_string ppf "cow"
  | Coa_shared -> Format.pp_print_string ppf "coa"
  | Copa_shared -> Format.pp_print_string ppf "copa"
  | Shm_shared -> Format.pp_print_string ppf "shm"

let pp ppf t =
  Format.fprintf ppf "pte{frame=%d %s%s%s%s %a}" (Phys.id t.frame)
    (if t.read then "r" else "-")
    (if t.write then "w" else "-")
    (if t.exec then "x" else "-")
    (if t.cap_load_fault then "L" else "-")
    pp_share t.share
