module Hb = Ufork_util.Hb

type t = { id : int; phys : Phys.t; entries : (int, Pte.t) Hashtbl.t }

(* Table identity for the happens-before bus: PTE mutations are
   published per (table, vpn) so the race detector can pair conflicting
   accesses. *)
let next_id = ref 0

let create phys =
  incr next_id;
  { id = !next_id; phys; entries = Hashtbl.create 1024 }

let phys t = t.phys
let id t = t.id

let note t vpn site =
  if Hb.on () then
    Hb.emit
      (Hb.Write { tid = Hb.tid (); loc = Hb.Pte { table = t.id; vpn }; site })

let map t ~vpn pte =
  if Hashtbl.mem t.entries vpn then
    invalid_arg (Printf.sprintf "Page_table.map: vpn %#x already mapped" vpn);
  note t vpn "Page_table.map";
  Hashtbl.replace t.entries vpn pte

let map_shared t ~vpn pte =
  Phys.retain t.phys pte.Pte.frame;
  map t ~vpn pte

let unmap t ~vpn =
  match Hashtbl.find_opt t.entries vpn with
  | None ->
      invalid_arg (Printf.sprintf "Page_table.unmap: vpn %#x not mapped" vpn)
  | Some pte ->
      note t vpn "Page_table.unmap";
      Phys.release t.phys pte.Pte.frame;
      Hashtbl.remove t.entries vpn

let unmap_range t ~vpn ~count =
  for v = vpn to vpn + count - 1 do
    if Hashtbl.mem t.entries v then unmap t ~vpn:v
  done

let lookup t ~vpn = Hashtbl.find_opt t.entries vpn
let lookup_exn t ~vpn =
  match lookup t ~vpn with Some p -> p | None -> raise Not_found

let is_mapped t ~vpn = Hashtbl.mem t.entries vpn

let replace_frame t ~vpn frame =
  match Hashtbl.find_opt t.entries vpn with
  | None ->
      invalid_arg
        (Printf.sprintf "Page_table.replace_frame: vpn %#x not mapped" vpn)
  | Some pte ->
      note t vpn "Page_table.replace_frame";
      Phys.release t.phys pte.Pte.frame;
      pte.Pte.frame <- frame

let iter_range t ~vpn ~count f =
  for v = vpn to vpn + count - 1 do
    match Hashtbl.find_opt t.entries v with
    | Some pte -> f v pte
    | None -> ()
  done

let map_range t ~vpn ~count f =
  if count < 0 then invalid_arg "Page_table.map_range: negative count";
  let mapped = ref 0 in
  for v = vpn to vpn + count - 1 do
    if not (Hashtbl.mem t.entries v) then
      match f v with
      | None -> ()
      | Some pte ->
          note t v "Page_table.map_range";
          Hashtbl.replace t.entries v pte;
          incr mapped
  done;
  !mapped

let fold_range t ~vpn ~count ~init ~f =
  if count < 0 then invalid_arg "Page_table.fold_range: negative count";
  let acc = ref init in
  for v = vpn to vpn + count - 1 do
    match Hashtbl.find_opt t.entries v with
    | Some pte -> acc := f v pte !acc
    | None -> ()
  done;
  !acc

let mapped_count t = Hashtbl.length t.entries

let fold t ~init ~f =
  (* Deterministic order keeps traces and tests stable. *)
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.entries [] in
  let keys = List.sort compare keys in
  List.fold_left (fun acc k -> f k (Hashtbl.find t.entries k) acc) init keys
