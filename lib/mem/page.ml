module Capability = Ufork_cheri.Capability

type t = {
  data : Bytes.t;
  caps : (int, Capability.t) Hashtbl.t; (* granule index -> capability *)
}

let create () =
  { data = Bytes.make Addr.page_size '\000'; caps = Hashtbl.create 8 }

let copy t =
  { data = Bytes.copy t.data; caps = Hashtbl.copy t.caps }

let check_range off len =
  if off < 0 || len < 0 || off + len > Addr.page_size then
    invalid_arg "Page: access out of page bounds"

(* Any raw write into a granule invalidates the capability it may hold. *)
let clear_tags_in t ~off ~len =
  if len > 0 then begin
    let g0 = off / Addr.granule_size in
    let g1 = (off + len - 1) / Addr.granule_size in
    for g = g0 to g1 do
      Hashtbl.remove t.caps g
    done
  end

let read_bytes t ~off ~len =
  check_range off len;
  Bytes.sub t.data off len

let write_bytes t ~off b =
  let len = Bytes.length b in
  check_range off len;
  clear_tags_in t ~off ~len;
  Bytes.blit b 0 t.data off len

let read_u8 t ~off =
  check_range off 1;
  Char.code (Bytes.get t.data off)

let write_u8 t ~off v =
  check_range off 1;
  clear_tags_in t ~off ~len:1;
  Bytes.set t.data off (Char.chr (v land 0xff))

let read_u64 t ~off =
  check_range off 8;
  Bytes.get_int64_le t.data off

let write_u64 t ~off v =
  check_range off 8;
  clear_tags_in t ~off ~len:8;
  Bytes.set_int64_le t.data off v

let require_aligned off =
  if not (Addr.is_granule_aligned off) then
    invalid_arg "Page: capability access must be 16-byte aligned";
  check_range off Addr.granule_size

let store_cap t ~off cap =
  require_aligned off;
  let g = off / Addr.granule_size in
  (* Mirror the cursor into the raw bytes so integer loads of a stored
     pointer read a sensible address. *)
  Bytes.set_int64_le t.data off (Int64.of_int (Capability.cursor cap));
  if Capability.tag cap then Hashtbl.replace t.caps g cap
  else Hashtbl.remove t.caps g

let load_cap t ~off =
  require_aligned off;
  let g = off / Addr.granule_size in
  match Hashtbl.find_opt t.caps g with
  | Some cap -> cap
  | None ->
      (* The granule holds raw data: the load yields an untagged value. *)
      let raw_cursor = Int64.to_int (Bytes.get_int64_le t.data off) in
      Capability.(clear_tag (with_cursor null raw_cursor))

let clear_tag_at t ~off =
  require_aligned off;
  Hashtbl.remove t.caps (off / Addr.granule_size)

let tag_at t ~off =
  require_aligned (Addr.align_down off Addr.granule_size);
  Hashtbl.mem t.caps (Addr.align_down off Addr.granule_size / Addr.granule_size)

let tagged_granules t =
  Hashtbl.fold (fun g _ acc -> g :: acc) t.caps [] |> List.sort compare

let tagged_count t = Hashtbl.length t.caps
let clear_all_tags t = Hashtbl.reset t.caps

(* Back to the zeroed-fresh-page state: frame reuse from a freelist must
   be indistinguishable from a fresh allocation. *)
let clear t =
  Bytes.fill t.data 0 Addr.page_size '\000';
  Hashtbl.reset t.caps

let iter_caps t f =
  List.iter (fun g -> f g (Hashtbl.find t.caps g)) (tagged_granules t)

let map_caps t f =
  let entries = tagged_granules t in
  List.iter
    (fun g ->
      let c = f (Hashtbl.find t.caps g) in
      let off = g * Addr.granule_size in
      Bytes.set_int64_le t.data off (Int64.of_int (Capability.cursor c));
      if Capability.tag c then Hashtbl.replace t.caps g c
      else Hashtbl.remove t.caps g)
    entries
