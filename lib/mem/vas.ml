module Capability = Ufork_cheri.Capability
module Phys = Phys
module Pte = Pte
module Perms = Ufork_cheri.Perms
module Hb = Ufork_util.Hb

(* Capability traffic through the MMU is the capflow detector's ground
   truth: every user-level cap store/load and every kernel metadata cap
   store/load publishes here. Disarmed cost is one bool read. *)
let publish_cap_store ~addr cap =
  if Hb.on () && Capability.tag cap then
    Hb.emit
      (Hb.Cap_store { tid = Hb.tid (); addr; prov = Capability.prov cap })

let publish_cap_load ~addr cap =
  if Hb.on () && Capability.tag cap then
    Hb.emit (Hb.Cap_load { tid = Hb.tid (); addr; prov = Capability.prov cap })

type access = Read | Write | Exec | Cap_load | Cap_store

exception Fault of { vpn : int; addr : int; access : access }

let pp_access ppf = function
  | Read -> Format.pp_print_string ppf "read"
  | Write -> Format.pp_print_string ppf "write"
  | Exec -> Format.pp_print_string ppf "exec"
  | Cap_load -> Format.pp_print_string ppf "cap-load"
  | Cap_store -> Format.pp_print_string ppf "cap-store"

let fault ~vpn ~addr ~access = raise (Fault { vpn; addr; access })

(* MMU permission check for one page. *)
let check_page pt ~addr ~access =
  let vpn = Addr.vpn_of_addr addr in
  match Page_table.lookup pt ~vpn with
  | None -> fault ~vpn ~addr ~access
  | Some pte -> (
      let open Pte in
      match access with
      | Read -> if not pte.read then fault ~vpn ~addr ~access
      | Write -> if not pte.write then fault ~vpn ~addr ~access
      | Exec -> if not pte.exec then fault ~vpn ~addr ~access
      | Cap_load ->
          if not pte.read then fault ~vpn ~addr ~access:Read;
          if pte.cap_load_fault then fault ~vpn ~addr ~access
      | Cap_store -> if not pte.write then fault ~vpn ~addr ~access)

let check_span pt ~addr ~len ~access =
  let last = addr + len - 1 in
  let v0 = Addr.vpn_of_addr addr and v1 = Addr.vpn_of_addr last in
  for v = v0 to v1 do
    check_page pt ~addr:(max addr (Addr.addr_of_vpn v)) ~access
  done

let page_of pt ~addr =
  let vpn = Addr.vpn_of_addr addr in
  match Page_table.lookup pt ~vpn with
  | Some pte -> Phys.page pte.Pte.frame
  | None -> raise Not_found

(* Apply [f page off len] to each page fragment of [addr, addr+len). [pos]
   is the offset of the fragment within the whole access. *)
let iter_fragments ~addr ~len f =
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let off = Addr.page_offset a in
    let n = min (len - !pos) (Addr.page_size - off) in
    f ~frag_addr:a ~off ~pos:!pos ~len:n;
    pos := !pos + n
  done

let read_bytes pt ~via ~addr ~len =
  Capability.check_access via ~perm:Perms.load ~addr ~len;
  if len = 0 then Bytes.create 0
  else begin
    check_span pt ~addr ~len ~access:Read;
    let out = Bytes.create len in
    iter_fragments ~addr ~len (fun ~frag_addr ~off ~pos ~len ->
        let p = page_of pt ~addr:frag_addr in
        Bytes.blit (Page.read_bytes p ~off ~len) 0 out pos len);
    out
  end

let write_bytes pt ~via ~addr b =
  let len = Bytes.length b in
  Capability.check_access via ~perm:Perms.store ~addr ~len;
  if len > 0 then begin
    check_span pt ~addr ~len ~access:Write;
    iter_fragments ~addr ~len (fun ~frag_addr ~off ~pos ~len ->
        let p = page_of pt ~addr:frag_addr in
        Page.write_bytes p ~off (Bytes.sub b pos len))
  end

let read_u64 pt ~via ~addr =
  let b = read_bytes pt ~via ~addr ~len:8 in
  Bytes.get_int64_le b 0

let write_u64 pt ~via ~addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  write_bytes pt ~via ~addr b

let read_u8 pt ~via ~addr =
  let b = read_bytes pt ~via ~addr ~len:1 in
  Char.code (Bytes.get b 0)

let write_u8 pt ~via ~addr v =
  write_bytes pt ~via ~addr (Bytes.make 1 (Char.chr (v land 0xff)))

let require_granule_aligned addr =
  if not (Addr.is_granule_aligned addr) then
    raise
      (Capability.Violation
         (Printf.sprintf "capability access at %#x not 16-byte aligned" addr))

let load_cap pt ~via ~addr =
  require_granule_aligned addr;
  Capability.check_access via
    ~perm:Perms.(union load load_cap)
    ~addr ~len:Addr.granule_size;
  check_page pt ~addr ~access:Cap_load;
  let cap = Page.load_cap (page_of pt ~addr) ~off:(Addr.page_offset addr) in
  publish_cap_load ~addr cap;
  cap

let store_cap pt ~via ~addr cap =
  require_granule_aligned addr;
  Capability.check_access via
    ~perm:Perms.(union store store_cap)
    ~addr ~len:Addr.granule_size;
  check_page pt ~addr ~access:Cap_store;
  publish_cap_store ~addr cap;
  Page.store_cap (page_of pt ~addr) ~off:(Addr.page_offset addr) cap

let kernel_page pt ~vpn = Phys.page (Page_table.lookup_exn pt ~vpn).Pte.frame

let kernel_read_bytes pt ~addr ~len =
  let out = Bytes.create len in
  iter_fragments ~addr ~len (fun ~frag_addr ~off ~pos ~len ->
      let p = kernel_page pt ~vpn:(Addr.vpn_of_addr frag_addr) in
      Bytes.blit (Page.read_bytes p ~off ~len) 0 out pos len);
  out

let kernel_write_bytes pt ~addr b =
  let len = Bytes.length b in
  iter_fragments ~addr ~len (fun ~frag_addr ~off ~pos ~len ->
      let p = kernel_page pt ~vpn:(Addr.vpn_of_addr frag_addr) in
      Page.write_bytes p ~off (Bytes.sub b pos len))

let kernel_store_cap pt ~addr cap =
  require_granule_aligned addr;
  let p = kernel_page pt ~vpn:(Addr.vpn_of_addr addr) in
  publish_cap_store ~addr cap;
  Page.store_cap p ~off:(Addr.page_offset addr) cap

let kernel_load_cap pt ~addr =
  require_granule_aligned addr;
  let p = kernel_page pt ~vpn:(Addr.vpn_of_addr addr) in
  let cap = Page.load_cap p ~off:(Addr.page_offset addr) in
  publish_cap_load ~addr cap;
  cap

let kernel_clear_tags pt ~addr ~len =
  if len > 0 then begin
    let g0 = Addr.align_down addr Addr.granule_size in
    let g1 = Addr.align_down (addr + len - 1) Addr.granule_size in
    let g = ref g0 in
    while !g <= g1 do
      (match Page_table.lookup pt ~vpn:(Addr.vpn_of_addr !g) with
      | Some pte ->
          Page.clear_tag_at (Phys.page pte.Pte.frame)
            ~off:(Addr.page_offset !g)
      | None -> ());
      g := !g + Addr.granule_size
    done
  end
