type frame = { fid : int; mutable refcount : int; page : Page.t }

type t = {
  limit_frames : int option;
  mutable in_use : int;
  mutable peak : int;
  mutable total : int;
  mutable next_id : int;
}

exception Out_of_memory

let create ?limit_frames () =
  { limit_frames; in_use = 0; peak = 0; total = 0; next_id = 0 }

let alloc t =
  (match t.limit_frames with
  | Some l when t.in_use >= l -> raise Out_of_memory
  | Some _ | None -> ());
  t.in_use <- t.in_use + 1;
  t.total <- t.total + 1;
  if t.in_use > t.peak then t.peak <- t.in_use;
  t.next_id <- t.next_id + 1;
  { fid = t.next_id; refcount = 1; page = Page.create () }

let retain _t f =
  if f.refcount <= 0 then invalid_arg "Phys.retain: frame is free";
  f.refcount <- f.refcount + 1

let release t f =
  if f.refcount <= 0 then invalid_arg "Phys.release: frame is free";
  f.refcount <- f.refcount - 1;
  if f.refcount = 0 then t.in_use <- t.in_use - 1

let refcount f = f.refcount
let page f = f.page
let id f = f.fid
let frames_in_use t = t.in_use
let peak_frames t = t.peak
let total_allocated t = t.total
let reset_peak t = t.peak <- t.in_use
