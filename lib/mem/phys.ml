module Hb = Ufork_util.Hb

type frame = { fid : int; mutable refcount : int; page : Page.t }

(* Frame state (refcount, pool membership) is shared between every
   thread that forks, faults or exits: publish each mutation so the
   race detector can check that some happens-before edge orders it. *)
let note fid site =
  if Hb.on () then
    Hb.emit (Hb.Write { tid = Hb.tid (); loc = Hb.Frame fid; site })

type t = {
  limit_frames : int option;
  mutable in_use : int;
  mutable peak : int;
  mutable total : int;
  mutable next_id : int;
  registry : (int, frame) Hashtbl.t;
}

exception Out_of_memory

let create ?limit_frames () =
  {
    limit_frames;
    in_use = 0;
    peak = 0;
    total = 0;
    next_id = 0;
    registry = Hashtbl.create 1024;
  }

let alloc t =
  (match t.limit_frames with
  | Some l when t.in_use >= l -> raise Out_of_memory
  | Some _ | None -> ());
  t.in_use <- t.in_use + 1;
  t.total <- t.total + 1;
  if t.in_use > t.peak then t.peak <- t.in_use;
  t.next_id <- t.next_id + 1;
  let f = { fid = t.next_id; refcount = 1; page = Page.create () } in
  Hashtbl.replace t.registry f.fid f;
  note f.fid "Phys.alloc";
  f

let retain _t f =
  if f.refcount <= 0 then invalid_arg "Phys.retain: frame is free";
  note f.fid "Phys.retain";
  f.refcount <- f.refcount + 1

let release t f =
  if f.refcount <= 0 then invalid_arg "Phys.release: frame is free";
  note f.fid "Phys.release";
  f.refcount <- f.refcount - 1;
  if f.refcount = 0 then begin
    t.in_use <- t.in_use - 1;
    (* Reclamation hygiene: a frame returning to the pool must not carry
       valid capabilities — the tag bits are invalidated with the frame
       (what CHERI hardware guarantees on reuse, and what the state
       sanitizer's free-frame invariant checks). *)
    Page.clear_all_tags f.page
  end

let refcount f = f.refcount
let page f = f.page
let id f = f.fid
let frames_in_use t = t.in_use
let peak_frames t = t.peak
let total_allocated t = t.total
let reset_peak t = t.peak <- t.in_use

let iter_frames t f =
  let ids = Hashtbl.fold (fun fid _ acc -> fid :: acc) t.registry [] in
  List.iter (fun fid -> f (Hashtbl.find t.registry fid)) (List.sort compare ids)

let fold_frames t ~init ~f =
  let acc = ref init in
  iter_frames t (fun frame -> acc := f !acc frame);
  !acc

let chaos_skew_in_use t delta = t.in_use <- t.in_use + delta
