module Hb = Ufork_util.Hb

type frame = { fid : int; mutable refcount : int; page : Page.t }

(* Frame state (refcount, pool membership) is shared between every
   thread that forks, faults or exits: publish each mutation so the
   race detector can check that some happens-before edge orders it. *)
let note fid site =
  if Hb.on () then
    Hb.emit (Hb.Write { tid = Hb.tid (); loc = Hb.Frame fid; site })

(* The shared global pool behind the per-core freelists is itself shared
   state: every batched refill/drain mutates it, so each transfer is
   published as a plain write to the [Pool] location. Unlike frame
   refcounts (modelled as atomic RMWs), pool transfers are list splices
   that genuinely need a lock — the race detector must see an ordering
   edge between any two. *)
let note_pool site =
  if Hb.on () then
    Hb.emit (Hb.Write { tid = Hb.tid (); loc = Hb.Pool; site })

(* Freed frames return to the releasing core's freelist and are handed
   back out batch-at-a-time: most alloc/release pairs never touch the
   shared pool, which is what lets the sharded kernel keep its
   frame-pool lock off the fork fast path. *)
let refill_batch = 32
let drain_threshold = 2 * refill_batch

type t = {
  limit_frames : int option;
  mutable in_use : int;
  mutable peak : int;
  mutable total : int;
  mutable next_id : int;
  registry : (int, frame) Hashtbl.t;
  local_free : frame list array; (* per-core freelist caches, LIFO *)
  local_len : int array;
  mutable global_free : frame list; (* the shared pool of free frames *)
  mutable refills : int;
  mutable drains : int;
  (* Serializes refill/drain against the shared pool. lib/mem cannot
     depend on lib/sim, so the kernel injects its frame-pool lock here;
     the default runs the transfer unguarded (single-threaded unit
     tests, chaos lockless mode). *)
  mutable pool_guard : (unit -> unit) -> unit;
}

exception Out_of_memory

let create ?limit_frames ?(cores = 1) () =
  let cores = max 1 cores in
  {
    limit_frames;
    in_use = 0;
    peak = 0;
    total = 0;
    next_id = 0;
    registry = Hashtbl.create 1024;
    local_free = Array.make cores [];
    local_len = Array.make cores 0;
    global_free = [];
    refills = 0;
    drains = 0;
    pool_guard = (fun f -> f ());
  }

let set_pool_guard t g = t.pool_guard <- g

(* The core whose freelist serves the calling thread: the engine
   installs the provider; outside any simulated thread (boot, unit
   tests) everything funnels through slot 0. *)
let core_slot t =
  let c = Hb.core () in
  if c < 0 then 0 else c mod Array.length t.local_free

let local_free_frames t = t.local_len.(core_slot t)
let refills t = t.refills
let drains t = t.drains

(* Will the next [n]-frame allocation on this thread's core touch the
   shared pool (freelist refill or fresh carve)? The sharded kernel
   takes its frame-pool lock exactly then. *)
let needs_global t n = t.local_len.(core_slot t) < n

let refill t slot =
  let rec take acc len = function
    | f :: rest when len < refill_batch -> take (f :: acc) (len + 1) rest
    | rest ->
        t.global_free <- rest;
        (acc, len)
  in
  t.pool_guard (fun () ->
      match t.global_free with
      | [] -> ()
      | _ ->
          note_pool "Phys.refill";
          let taken, len = take t.local_free.(slot) t.local_len.(slot)
                             t.global_free in
          t.local_free.(slot) <- taken;
          t.local_len.(slot) <- len;
          t.refills <- t.refills + 1)

let alloc t =
  (match t.limit_frames with
  | Some l when t.in_use >= l -> raise Out_of_memory
  | Some _ | None -> ());
  t.in_use <- t.in_use + 1;
  t.total <- t.total + 1;
  if t.in_use > t.peak then t.peak <- t.in_use;
  let slot = core_slot t in
  if t.local_len.(slot) = 0 then refill t slot;
  let f =
    match t.local_free.(slot) with
    | f :: rest ->
        (* Recycle: a reused frame must be indistinguishable from a
           fresh one (zero bytes, no tags). *)
        t.local_free.(slot) <- rest;
        t.local_len.(slot) <- t.local_len.(slot) - 1;
        Page.clear f.page;
        f.refcount <- 1;
        f
    | [] ->
        t.next_id <- t.next_id + 1;
        let f = { fid = t.next_id; refcount = 1; page = Page.create () } in
        Hashtbl.replace t.registry f.fid f;
        f
  in
  note f.fid "Phys.alloc";
  f

let retain _t f =
  if f.refcount <= 0 then invalid_arg "Phys.retain: frame is free";
  note f.fid "Phys.retain";
  f.refcount <- f.refcount + 1

let release t f =
  if f.refcount <= 0 then invalid_arg "Phys.release: frame is free";
  note f.fid "Phys.release";
  f.refcount <- f.refcount - 1;
  if f.refcount = 0 then begin
    t.in_use <- t.in_use - 1;
    (* Reclamation hygiene: a frame returning to the pool must not carry
       valid capabilities — the tag bits are invalidated with the frame
       (what CHERI hardware guarantees on reuse, and what the state
       sanitizer's free-frame invariant checks). *)
    Page.clear_all_tags f.page;
    let slot = core_slot t in
    t.local_free.(slot) <- f :: t.local_free.(slot);
    t.local_len.(slot) <- t.local_len.(slot) + 1;
    if t.local_len.(slot) > drain_threshold then
      t.pool_guard (fun () ->
          (* Batched drain back to the shared pool so one core's churn
             keeps feeding the others. *)
          note_pool "Phys.drain";
          let rec drop acc len lst =
            if len <= refill_batch then (acc, len, lst)
            else
              match lst with
              | f :: rest -> drop (f :: acc) (len - 1) rest
              | [] -> (acc, len, [])
          in
          let drained, len, kept =
            drop t.global_free t.local_len.(slot) t.local_free.(slot)
          in
          t.global_free <- drained;
          t.local_free.(slot) <- kept;
          t.local_len.(slot) <- len;
          t.drains <- t.drains + 1)
  end

let refcount f = f.refcount
let page f = f.page
let id f = f.fid
let frames_in_use t = t.in_use
let peak_frames t = t.peak
let total_allocated t = t.total
let reset_peak t = t.peak <- t.in_use

let iter_frames t f =
  let ids = Hashtbl.fold (fun fid _ acc -> fid :: acc) t.registry [] in
  List.iter (fun fid -> f (Hashtbl.find t.registry fid)) (List.sort compare ids)

let fold_frames t ~init ~f =
  let acc = ref init in
  iter_frames t (fun frame -> acc := f !acc frame);
  !acc

let chaos_skew_in_use t delta = t.in_use <- t.in_use + delta
