(** A 4 KiB page of tagged memory.

    Raw data lives in a [Bytes.t]; the capability tag side table is a sparse
    map from granule index to the stored {!Ufork_cheri.Capability.t}. A
    granule's tag is set iff the map has an entry for it — exactly CHERI's
    model where a valid capability in DRAM is a 16-byte value plus an
    out-of-band tag bit, and any non-capability store to the granule clears
    the tag (§2.4).

    The first 8 bytes of a capability granule mirror the capability's cursor
    so that integer reads of a stored pointer see a plausible address, as
    they would on hardware. *)

type t

val create : unit -> t
(** A zeroed page with all tags clear. *)

val clear : t -> unit
(** Zero the bytes and clear every tag: back to the {!create} state.
    Frame reuse from a freelist goes through this so a recycled page is
    indistinguishable from a fresh one. *)

val copy : t -> t
(** Deep copy: bytes and all tagged capabilities. *)

(** {1 Raw data} *)

val read_bytes : t -> off:int -> len:int -> bytes
val write_bytes : t -> off:int -> bytes -> unit
(** Clears the tag of every granule the write overlaps. *)

val read_u8 : t -> off:int -> int
val write_u8 : t -> off:int -> int -> unit
val read_u64 : t -> off:int -> int64
val write_u64 : t -> off:int -> int64 -> unit
(** 8-byte accesses need not be aligned; tags of overlapped granules are
    cleared by writes. *)

(** {1 Capabilities} *)

val store_cap : t -> off:int -> Ufork_cheri.Capability.t -> unit
(** [off] must be 16-byte aligned. Storing an untagged capability clears
    the granule's tag (as a CSC of an untagged value does).
    Raises [Invalid_argument] on misalignment. *)

val load_cap : t -> off:int -> Ufork_cheri.Capability.t
(** [off] must be 16-byte aligned. If the granule's tag is clear, the
    result is an untagged capability (dereferencing it will fault), matching
    hardware behaviour of loading a non-capability value into a capability
    register. *)

val clear_tag_at : t -> off:int -> unit
(** Clear the tag of the (aligned) granule without touching its bytes —
    what capability revocation does. *)

val tag_at : t -> off:int -> bool
(** Tag of the granule containing (aligned) [off]. *)

val tagged_granules : t -> int list
(** Indices of granules holding valid capabilities, ascending. This is the
    16-byte-increment scan μFork's copy engine performs (§4.2). *)

val tagged_count : t -> int
val clear_all_tags : t -> unit

val iter_caps : t -> (int -> Ufork_cheri.Capability.t -> unit) -> unit
(** [iter_caps p f] applies [f granule cap] for each tagged granule. *)

val map_caps :
  t -> (Ufork_cheri.Capability.t -> Ufork_cheri.Capability.t) -> unit
(** Rewrite every tagged capability in place (relocation). *)
