(** Address arithmetic for the simulated machine.

    Pages are 4 KiB (as on Morello) and capability granules 16 bytes (the
    in-memory size of a CHERI capability, the unit at which tags are kept
    and at which μFork's relocation scan walks a page, §4.2). *)

val page_size : int (** 4096 *)

val page_shift : int (** 12 *)

val granule_size : int (** 16 *)

val granules_per_page : int (** 256 *)

val vpn_of_addr : int -> int
(** Virtual page number containing an address. *)

val addr_of_vpn : int -> int
(** First address of a virtual page. *)

val page_offset : int -> int
(** Offset of an address within its page. *)

val granule_of_offset : int -> int
(** Granule index of a page offset. Raises [Invalid_argument] if the offset
    is not 16-byte aligned. *)

val is_granule_aligned : int -> bool
val align_up : int -> int -> int
(** [align_up v a] rounds [v] up to a multiple of [a] (a power of two). *)

val align_down : int -> int -> int

val pages_spanned : addr:int -> len:int -> int
(** Number of distinct pages touched by a [len]-byte access at [addr]
    ([len = 0] touches none). *)

val bytes_to_pages : int -> int
(** Pages needed to hold [n] bytes (rounding up). *)
