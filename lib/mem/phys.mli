(** Physical memory: a pool of reference-counted frames.

    Frames are the unit of sharing between μprocesses (and between POSIX
    processes on the monolithic baseline): copy-on-write and μFork's
    CoA/CoPA all map several virtual pages to one frame and bump its
    refcount. Accounting distinguishes total frames in use and the
    high-water mark, which the memory-consumption figures report. *)

type t
type frame

exception Out_of_memory

val create : ?limit_frames:int -> ?cores:int -> unit -> t
(** A fresh physical memory. [limit_frames] bounds the pool (default:
    unlimited); exceeding it raises {!Out_of_memory}. [cores] (default
    1) sizes the per-core freelists: freed frames return to the
    releasing core's cache and refill/drain against the shared pool in
    batches, so most alloc/release pairs never touch shared state. *)

val set_pool_guard : t -> ((unit -> unit) -> unit) -> unit
(** Install the critical-section wrapper run around every batched
    refill/drain transfer against the shared global pool. lib/mem cannot
    depend on lib/sim, so the kernel injects its frame-pool lock here
    (e.g. [Rlock.with_lock pool_lock]); the default runs the transfer
    unguarded. Each guarded transfer additionally publishes a
    {!Ufork_util.Hb.Pool} write on the happens-before bus, so the race
    detector (R1) and lock-order checker (R2) cover the frame fast
    path. *)

val alloc : t -> frame
(** A zeroed frame with refcount 1 — recycled from the calling core's
    freelist when possible ({!Page.clear}ed, so indistinguishable from a
    fresh frame), otherwise carved fresh from the shared pool. *)

val needs_global : t -> int -> bool
(** [needs_global t n]: will allocating [n] frames on the calling
    thread's core touch the shared pool (freelist refill or fresh
    carve)? The sharded kernel takes its frame-pool lock exactly when
    this is true. *)

val local_free_frames : t -> int
(** Free frames cached on the calling core's freelist. *)

val refills : t -> int
(** Batched freelist refills from the shared pool so far. *)

val drains : t -> int
(** Batched freelist drains back to the shared pool so far. *)

val retain : t -> frame -> unit
(** Increment the refcount (a new mapping shares the frame). *)

val release : t -> frame -> unit
(** Decrement the refcount; the frame returns to the pool at zero, and
    its page's capability tags are wiped (reclamation hygiene — CHERI
    invalidates tags with the frame, so a later reuse can never yield a
    stale valid capability). Raises [Invalid_argument] if already free. *)

val refcount : frame -> int
val page : frame -> Page.t
(** The frame's backing page. *)

val id : frame -> int
(** Stable identity, for tests and tracing. *)

val frames_in_use : t -> int
val peak_frames : t -> int
val total_allocated : t -> int
(** Cumulative number of [alloc] calls. *)

val reset_peak : t -> unit

(** {1 Frame registry}

    The pool remembers every frame it ever allocated, free ones included,
    so a state sanitizer can sweep physical memory exhaustively: check
    refcounts against the mappings that alias each frame, and check that
    free frames are unmapped and tag-free. *)

val iter_frames : t -> (frame -> unit) -> unit
(** Every frame ever allocated, free ones included, in allocation order. *)

val fold_frames : t -> init:'a -> f:('a -> frame -> 'a) -> 'a

val chaos_skew_in_use : t -> int -> unit
(** Fault injection only: desynchronize the [frames_in_use] counter from
    the registry by [delta], to prove the sanitizer catches accounting
    corruption. Never call this outside a chaos test. *)
