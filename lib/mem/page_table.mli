(** A page table: virtual page number → {!Pte.t}.

    In the single-address-space OS there is one page table for the whole
    machine; the monolithic baseline creates one per process; the VM-clone
    baseline one per VM. The table owns frame refcounts: mapping retains,
    unmapping releases. *)

type t

val create : Phys.t -> t
val phys : t -> Phys.t

val id : t -> int
(** Stable identity; names the table in happens-before events. *)

val map : t -> vpn:int -> Pte.t -> unit
(** Install an entry. The caller must have arranged the frame's refcount
    (a fresh [Phys.alloc] frame is ready to map once; use {!map_shared} to
    alias an existing frame). Raises [Invalid_argument] if [vpn] is
    already mapped. *)

val map_shared : t -> vpn:int -> Pte.t -> unit
(** Like {!map} but retains the frame first (the entry aliases a frame
    already mapped elsewhere). *)

val unmap : t -> vpn:int -> unit
(** Remove the entry and release its frame. Raises [Invalid_argument] if
    unmapped. *)

val unmap_range : t -> vpn:int -> count:int -> unit
(** Unmap every mapped page in [vpn, vpn+count); silently skips holes. *)

val lookup : t -> vpn:int -> Pte.t option
val lookup_exn : t -> vpn:int -> Pte.t
(** Raises [Not_found] if unmapped. *)

val is_mapped : t -> vpn:int -> bool

val replace_frame : t -> vpn:int -> Phys.frame -> unit
(** Point the entry at a new frame, releasing the old one. The new frame
    must already carry a refcount for this mapping (e.g. fresh from
    [Phys.alloc]). This is the page-copy commit step of CoW/CoA/CoPA. *)

val iter_range : t -> vpn:int -> count:int -> (int -> Pte.t -> unit) -> unit
(** Apply to each mapped page in the range, ascending vpn. *)

val map_range : t -> vpn:int -> count:int -> (int -> Pte.t option) -> int
(** Range fill: for every {e unmapped} vpn in [vpn, vpn+count), ascending,
    install [f v] if it returns an entry (refcount discipline as {!map}).
    Already-mapped pages are left untouched (never passed to [f]). Returns
    how many entries were installed — the batch size callers charge. *)

val fold_range : t -> vpn:int -> count:int -> init:'a -> f:(int -> Pte.t -> 'a -> 'a) -> 'a
(** Fold over each mapped page in [vpn, vpn+count), ascending vpn. Unlike
    {!fold} this never sorts the whole table: cost is proportional to the
    range, not the table size. *)

val mapped_count : t -> int
val fold : t -> init:'a -> f:(int -> Pte.t -> 'a -> 'a) -> 'a
