let page_size = 4096
let page_shift = 12
let granule_size = 16
let granules_per_page = page_size / granule_size

let vpn_of_addr a = a lsr page_shift
let addr_of_vpn v = v lsl page_shift
let page_offset a = a land (page_size - 1)

let is_granule_aligned off = off land (granule_size - 1) = 0

let granule_of_offset off =
  if not (is_granule_aligned off) then
    invalid_arg "Addr.granule_of_offset: not 16-byte aligned";
  off / granule_size

let align_up v a = (v + a - 1) land lnot (a - 1)
let align_down v a = v land lnot (a - 1)

let pages_spanned ~addr ~len =
  if len <= 0 then 0
  else vpn_of_addr (addr + len - 1) - vpn_of_addr addr + 1

let bytes_to_pages n = (n + page_size - 1) / page_size
