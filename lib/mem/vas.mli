(** Checked access to virtual memory through a capability and a page table.

    Every access performs the two checks the hardware would: the CHERI
    capability check (tag, seal, permissions, bounds — raising
    {!Ufork_cheri.Capability.Violation}) and the MMU check (mapping and
    page permissions — raising {!Fault} for the OS fault handler to resolve
    and retry, exactly like a page fault / capability-load fault). *)

type access = Read | Write | Exec | Cap_load | Cap_store

exception Fault of { vpn : int; addr : int; access : access }
(** The MMU-level fault. [vpn] is the faulting virtual page. *)

val pp_access : Format.formatter -> access -> unit

(** {1 Data access}

    All entry points take the authorizing capability [via] and the virtual
    address [addr] of the access ([addr] defaults to the capability's
    cursor in the [*_cur] variants used by application code). *)

val read_bytes : Page_table.t -> via:Ufork_cheri.Capability.t -> addr:int -> len:int -> bytes
val write_bytes : Page_table.t -> via:Ufork_cheri.Capability.t -> addr:int -> bytes -> unit
val read_u64 : Page_table.t -> via:Ufork_cheri.Capability.t -> addr:int -> int64
val write_u64 : Page_table.t -> via:Ufork_cheri.Capability.t -> addr:int -> int64 -> unit
val read_u8 : Page_table.t -> via:Ufork_cheri.Capability.t -> addr:int -> int
val write_u8 : Page_table.t -> via:Ufork_cheri.Capability.t -> addr:int -> int -> unit

(** {1 Capability access} *)

val load_cap :
  Page_table.t -> via:Ufork_cheri.Capability.t -> addr:int ->
  Ufork_cheri.Capability.t
(** 16-byte aligned capability load. Faults with [Cap_load] when the page's
    {!Pte.t.cap_load_fault} bit is set (the CoPA trigger), or [Read] when
    the page is not readable. *)

val store_cap :
  Page_table.t -> via:Ufork_cheri.Capability.t -> addr:int ->
  Ufork_cheri.Capability.t -> unit

(** {1 Unchecked kernel access}

    The kernel manipulates frames directly when copying pages and resolving
    faults; these helpers skip the capability check but still require a
    mapping (raising [Not_found] otherwise). *)

val kernel_page : Page_table.t -> vpn:int -> Page.t
val kernel_read_bytes : Page_table.t -> addr:int -> len:int -> bytes
val kernel_write_bytes : Page_table.t -> addr:int -> bytes -> unit
val kernel_store_cap :
  Page_table.t -> addr:int -> Ufork_cheri.Capability.t -> unit
val kernel_load_cap : Page_table.t -> addr:int -> Ufork_cheri.Capability.t

val kernel_clear_tags : Page_table.t -> addr:int -> len:int -> unit
(** Clear every capability tag in the (mapped parts of the) range — the
    allocator's reallocation hygiene: recycled memory must never hand out
    stale capabilities (cf. Cornucopia-style heap temporal safety). *)
