(* The sanitizer/linter test suite has three legs:
   - catalogue sanity: stable ids, one chaos scenario per invariant;
   - precision via fault injection: every Chaos scenario is detected, and
     every violation it reports carries exactly the intended invariant;
   - zero false positives: the uninjected machine and stream are clean,
     and real experiment runs (which call [Checker.assert_safe] on every
     machine before returning) complete across systems. *)

module Invariant = Ufork_analysis.Invariant
module Chaos = Ufork_analysis.Chaos
module Strategy = Ufork_core.Strategy
module E = Ufork_workload.Experiments

let all_ids =
  [ "S1"; "S2"; "S3"; "S4"; "S5"; "S6"; "S7"; "S8"; "S9"; "S10"; "S11";
    "L1"; "L2"; "L3"; "L4"; "L5" ]

(* R1 (data-race), R2 (lock-order), R3 (lock-stall) and R4
   (cap-provenance) close the catalogue; their chaos scenarios are
   dynamic (runs under [--chaos-no-bkl], [--chaos-invert-shard-order],
   [--chaos-stall-shard] and the three capflow injections), so they live
   outside [Chaos.scenarios]. *)
let catalogue_ids = all_ids @ [ "R1"; "R2"; "R3"; "R4" ]

let test_catalogue () =
  Alcotest.(check (list string)) "stable ids" catalogue_ids
    (List.map Invariant.id Invariant.all);
  Alcotest.(check int) "ids unique" (List.length Invariant.all)
    (List.length (List.sort_uniq compare (List.map Invariant.id Invariant.all)));
  Alcotest.(check int) "names unique" (List.length Invariant.all)
    (List.length
       (List.sort_uniq compare (List.map Invariant.name Invariant.all)));
  Alcotest.(check string) "empty report" "" (Invariant.report [])

let test_scenarios_cover_catalogue () =
  (* One injection per invariant, in catalogue order: the chaos suite is
     the sanitizer's coverage map. *)
  Alcotest.(check (list string)) "one scenario per invariant" all_ids
    (List.map (fun s -> Invariant.id s.Chaos.expected) Chaos.scenarios)

let test_clean_machine () =
  Alcotest.(check string) "uninjected machine sweeps clean" ""
    (Invariant.report (Chaos.clean_machine ()))

let test_clean_protocol () =
  Alcotest.(check string) "well-formed stream lints clean" ""
    (Invariant.report (Chaos.clean_protocol ()))

(* Each scenario must be detected, and detected precisely: all reported
   violations carry the scenario's own invariant, proving the injected
   fault does not bleed into neighbouring detectors. *)
let scenario_case (s : Chaos.scenario) =
  ( s.Chaos.name,
    `Quick,
    fun () ->
      let vs = s.Chaos.detect () in
      Alcotest.(check bool)
        (Printf.sprintf "%s detected" s.Chaos.name)
        true (vs <> []);
      List.iter
        (fun (v : Invariant.violation) ->
          Alcotest.(check string)
            (Printf.sprintf "%s trips only %s" s.Chaos.name
               (Invariant.id s.Chaos.expected))
            (Invariant.id s.Chaos.expected)
            (Invariant.id v.Invariant.invariant))
        vs )

(* Real runs: every experiment driver ends with [Checker.assert_safe],
   which raises on any S- or L-violation. Recording is forced on so the
   protocol linter sees the genuine event stream, not an empty one. *)
let test_clean_runs () =
  E.set_record_always true;
  Fun.protect
    ~finally:(fun () -> E.set_record_always false)
    (fun () ->
      List.iter
        (fun sys -> ignore (E.hello_run sys))
        [
          E.Ufork Strategy.Copa;
          E.Ufork Strategy.Coa;
          E.Ufork Strategy.Full_copy;
          E.Ufork_toctou Strategy.Copa;
          E.Cheribsd;
          E.Nephele;
        ];
      ignore
        (E.unixbench_run (E.Ufork Strategy.Copa) ~spawn_iters:20
           ~context1_iters:200);
      ignore
        (E.redis_run (E.Ufork Strategy.Coa) ~entries:20 ~value_len:4096
           ~db_label:"80 KB"))

let suite =
  [
    ("invariant catalogue", `Quick, test_catalogue);
    ("chaos covers catalogue", `Quick, test_scenarios_cover_catalogue);
    ("clean machine", `Quick, test_clean_machine);
    ("clean protocol", `Quick, test_clean_protocol);
  ]
  @ List.map scenario_case Chaos.scenarios
  @ [ ("clean experiment runs", `Quick, test_clean_runs) ]
