(* Integration tests: cross-system application equivalence and the
   paper-shape assertions (who wins, by roughly what factor). These are
   the automated counterpart of EXPERIMENTS.md. *)

module Strategy = Ufork_core.Strategy
module E = Ufork_workload.Experiments
module Keyspace = Ufork_workload.Keyspace

(* Small-but-representative problem sizes keep the suite quick. *)
let entries = 20
let value_len = 50 * 1024
let db_label = "1 MB-ish"

let redis sys = E.redis_run sys ~entries ~value_len ~db_label

let test_dump_identical_across_systems () =
  (* Transparency (R2): the same unmodified application produces the same
     output on μFork (all strategies), CheriBSD and Nephele. *)
  let systems =
    [
      E.Ufork Strategy.Copa;
      E.Ufork Strategy.Coa;
      E.Ufork Strategy.Full_copy;
      E.Ufork_toctou Strategy.Copa;
      E.Cheribsd;
      E.Nephele;
      E.Linux_ref;
    ]
  in
  List.iter
    (fun sys ->
      let r = redis sys in
      Alcotest.(check bool)
        (Printf.sprintf "dump verified on %s" (E.system_label sys))
        true r.E.dump_ok)
    systems

let test_fork_latency_ordering () =
  let u = E.hello_run (E.Ufork Strategy.Copa) in
  let b = E.hello_run E.Cheribsd in
  let n = E.hello_run E.Nephele in
  Alcotest.(check bool) "uFork < CheriBSD < Nephele" true
    (u.E.fork_latency_us < b.E.fork_latency_us
    && b.E.fork_latency_us < n.E.fork_latency_us);
  (* Paper: 54 us vs 197 us vs 10.7 ms — hold each within 25%. *)
  let within pct x target = Float.abs (x -. target) <= pct *. target in
  Alcotest.(check bool) "uFork ~54us" true (within 0.25 u.E.fork_latency_us 54.);
  Alcotest.(check bool) "CheriBSD ~197us" true
    (within 0.25 b.E.fork_latency_us 197.);
  Alcotest.(check bool) "Nephele ~10.7ms" true
    (within 0.25 n.E.fork_latency_us 10_700.)

let test_fork_memory_ordering () =
  let u = E.hello_run (E.Ufork Strategy.Copa) in
  let b = E.hello_run E.Cheribsd in
  let n = E.hello_run E.Nephele in
  Alcotest.(check bool) "uFork < CheriBSD < Nephele memory" true
    (u.E.child_memory_mb < b.E.child_memory_mb
    && b.E.child_memory_mb < n.E.child_memory_mb)

let test_strategy_memory_ordering () =
  (* Fig. 5 shape: CoPA << CoA < full copy; CheriBSD sits between CoPA and
     CoA thanks to its allocator behaviour. *)
  let copa = redis (E.Ufork Strategy.Copa) in
  let coa = redis (E.Ufork Strategy.Coa) in
  let full = redis (E.Ufork Strategy.Full_copy) in
  let bsd = redis E.Cheribsd in
  Alcotest.(check bool) "CoPA << CoA" true
    (copa.E.child_mb *. 3. < coa.E.child_mb);
  Alcotest.(check bool) "CoA < full" true (coa.E.child_mb < full.E.child_mb);
  Alcotest.(check bool) "CoPA < CheriBSD < full" true
    (copa.E.child_mb < bsd.E.child_mb && bsd.E.child_mb < full.E.child_mb)

let test_strategy_latency_ordering () =
  let copa = redis (E.Ufork Strategy.Copa) in
  let coa = redis (E.Ufork Strategy.Coa) in
  let full = redis (E.Ufork Strategy.Full_copy) in
  Alcotest.(check bool) "CoPA <= CoA" true (copa.E.fork_us <= coa.E.fork_us);
  Alcotest.(check bool) "CoA << full" true
    (coa.E.fork_us *. 2. < full.E.fork_us)

let test_redis_save_ufork_wins () =
  let u = redis (E.Ufork Strategy.Copa) in
  let b = redis E.Cheribsd in
  Alcotest.(check bool) "uFork saves faster" true (u.E.save_ms < b.E.save_ms);
  Alcotest.(check bool) "by a plausible factor (1.1-2.5x)" true
    (let r = b.E.save_ms /. u.E.save_ms in
     r > 1.1 && r < 2.5)

let test_redis_fork_factor () =
  (* Fig. 4: "consistently faster ... by a factor of 5-10x" (we accept
     4-11 at this reduced size). *)
  let u = redis (E.Ufork Strategy.Copa) in
  let b = redis E.Cheribsd in
  let f = b.E.fork_us /. u.E.fork_us in
  Alcotest.(check bool) (Printf.sprintf "factor %.1f in [3,11]" f) true
    (f > 3. && f < 11.)

let test_faas_advantage () =
  (* Fig. 6: ~24% at 3 worker cores. Accept 15-40%. *)
  let u = E.faas_run (E.Ufork Strategy.Copa) ~worker_cores:3 ~window_s:0.2 () in
  let b = E.faas_run E.Cheribsd ~worker_cores:3 ~window_s:0.2 () in
  let adv = (u.E.throughput_per_s /. b.E.throughput_per_s -. 1.) *. 100. in
  Alcotest.(check bool)
    (Printf.sprintf "advantage %.1f%% in [15,40]" adv)
    true
    (adv > 15. && adv < 40.)

let test_faas_scales_with_cores () =
  let t1 = E.faas_run (E.Ufork Strategy.Copa) ~worker_cores:1 ~window_s:0.2 () in
  let t3 = E.faas_run (E.Ufork Strategy.Copa) ~worker_cores:3 ~window_s:0.2 () in
  Alcotest.(check bool) "3 cores ~3x of 1" true
    (t3.E.throughput_per_s > 2.5 *. t1.E.throughput_per_s)

let test_nginx_worker_scaling () =
  (* Fig. 7: +15.6% from 1 to 3 workers on a single core (accept 8-30%),
     and more workers never hurt. *)
  let w1 = E.nginx_run (E.Ufork Strategy.Copa) ~cores:1 ~workers:1 ~window_s:0.2 () in
  let w3 = E.nginx_run (E.Ufork Strategy.Copa) ~cores:1 ~workers:3 ~window_s:0.2 () in
  let gain = (w3.E.requests_per_s /. w1.E.requests_per_s -. 1.) *. 100. in
  Alcotest.(check bool)
    (Printf.sprintf "gain %.1f%% in [8,30]" gain)
    true
    (gain > 8. && gain < 30.)

let test_nginx_vs_cheribsd () =
  let u = E.nginx_run (E.Ufork Strategy.Copa) ~cores:1 ~workers:3 ~window_s:0.2 () in
  let b1 = E.nginx_run E.Cheribsd ~cores:1 ~workers:3 ~window_s:0.2 () in
  let b3 = E.nginx_run E.Cheribsd ~cores:3 ~workers:3 ~window_s:0.2 () in
  Alcotest.(check bool) "uFork beats single-core CheriBSD" true
    (u.E.requests_per_s > b1.E.requests_per_s);
  Alcotest.(check bool) "multicore CheriBSD beats single-core uFork" true
    (b3.E.requests_per_s > u.E.requests_per_s)

let test_fig9_shape () =
  let rows = E.fig9 ~spawn_iters:200 ~context1_iters:5000 () in
  match rows with
  | [ u; b ] ->
      Alcotest.(check bool) "spawn: uFork 2.5-5x faster" true
        (let r = b.E.spawn_ms /. u.E.spawn_ms in
         r > 2.5 && r < 5.);
      Alcotest.(check bool) "context1: uFork 1.4-2.2x faster" true
        (let r = b.E.context1_ms /. u.E.context1_ms in
         r > 1.4 && r < 2.2)
  | _ -> Alcotest.fail "expected two systems"

let test_toctou_fork_cost_small () =
  let base = redis (E.Ufork Strategy.Copa) in
  let prot = redis (E.Ufork_toctou Strategy.Copa) in
  let pct = (prot.E.fork_us /. base.E.fork_us -. 1.) *. 100. in
  Alcotest.(check bool)
    (Printf.sprintf "TOCTTOU fork cost %.1f%% < 6%%" pct)
    true (pct >= 0. && pct < 6.)

let test_ablate_isolation_monotone () =
  match E.ablate_isolation () with
  | [ none; fault; full; toctou ] ->
      Alcotest.(check bool) "isolation levels cost monotonically" true
        (none.E.value <= fault.E.value +. 0.5
        && fault.E.value <= full.E.value +. 0.5
        && full.E.value <= toctou.E.value +. 0.5)
  | _ -> Alcotest.fail "expected four rows"

let test_ablate_syscall_entry () =
  match E.ablate_syscall_entry () with
  | [ sealed; trap ] ->
      Alcotest.(check bool) "trap entry slower" true
        (trap.E.value > sealed.E.value *. 1.2)
  | _ -> Alcotest.fail "expected two rows"

let test_fragmentation_shapes () =
  match E.ablate_fragmentation ~churn:20 () with
  | [ uniform; mixed_ff; mixed_bf ] ->
      (* Uniform churn recycles its areas: high-water stays close to one
         driver + one child. Mixed sizes leave first-fit holes, which
         best fit largely avoids. *)
      Alcotest.(check bool) "uniform arena bounded (driver + child)" true
        (uniform.E.arena_mb < uniform.E.live_mb *. 2.5);
      Alcotest.(check bool) "mixed sizes fragment more" true
        (mixed_ff.E.arena_mb > uniform.E.arena_mb);
      Alcotest.(check bool) "best fit mitigates" true
        (mixed_bf.E.arena_mb < mixed_ff.E.arena_mb)
  | _ -> Alcotest.fail "expected three scenarios"

(* --- Event-bus accounting audit (zero tolerance) --- *)

module Os = Ufork_core.Os
module Mono = Ufork_baselines.Monolithic
module Vm = Ufork_baselines.Vmclone
module Kernel = Ufork_sas.Kernel
module Engine = Ufork_sim.Engine
module Trace = Ufork_sim.Trace
module Image = Ufork_sas.Image
module Hello = Ufork_apps.Hello
module Unixbench = Ufork_apps.Unixbench

let audit_kernel name k e =
  match
    Trace.audit (Kernel.trace k) ~costs:(Kernel.costs k)
      ~elapsed:(Engine.advanced e)
  with
  | () -> ()
  | exception Trace.Audit_failure msg -> Alcotest.failf "%s: %s" name msg

(* Boot each of the three systems, run [main] to completion, and check
   that every cycle the engine advanced was charged through the event bus
   (and that each fixed-cost counter re-derives from the preset). *)
let audit_all_systems label main =
  let os = Os.boot () in
  ignore (Os.start os ~image:Image.hello main);
  Os.run os;
  audit_kernel (label ^ " on uFork/CoPA") (Os.kernel os) (Os.engine os);
  let b = Mono.boot () in
  ignore (Mono.start b ~image:Image.hello main);
  Mono.run b;
  audit_kernel (label ^ " on CheriBSD") (Mono.kernel b) (Mono.engine b);
  let v = Vm.boot () in
  ignore (Vm.start v ~image:Image.hello main);
  Vm.run v;
  audit_kernel (label ^ " on Nephele") (Vm.kernel v) (Vm.engine v)

let test_trace_audit_hello () =
  (* Fig. 8 workload: one fork + reap. *)
  audit_all_systems "hello fork" (fun api ->
      ignore (Hello.fork_once api);
      Hello.reap api)

let test_trace_audit_unixbench () =
  (* Fig. 9 workloads at reduced size: Spawn and Context1. *)
  audit_all_systems "unixbench spawn" (fun api ->
      ignore (Unixbench.spawn api ~iterations:50));
  audit_all_systems "unixbench context1" (fun api ->
      ignore (Unixbench.context1 api ~iterations:500))

let test_trace_determinism () =
  (* Two identical hello-fork runs produce byte-identical JSONL traces. *)
  let run () =
    let os = Os.boot () in
    let tr = Os.trace os in
    Trace.set_recording tr true;
    ignore
      (Os.start os ~image:Image.hello (fun api ->
           ignore (Hello.fork_once api);
           Hello.reap api));
    Os.run os;
    Trace.to_jsonl_string tr
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "trace non-empty" true (String.length a > 0);
  Alcotest.(check bool) "byte-identical JSONL" true (String.equal a b)

let test_keyspace_deterministic () =
  let a = Keyspace.value ~seed:1L ~index:3 ~len:100 in
  let b = Keyspace.value ~seed:1L ~index:3 ~len:100 in
  let c = Keyspace.value ~seed:2L ~index:3 ~len:100 in
  Alcotest.(check bytes) "same" a b;
  Alcotest.(check bool) "seed matters" true (a <> c)

let suite =
  [
    ("dumps identical across systems", `Slow, test_dump_identical_across_systems);
    ("fork latency ordering (fig8)", `Quick, test_fork_latency_ordering);
    ("fork memory ordering (fig8)", `Quick, test_fork_memory_ordering);
    ("strategy memory ordering (fig5)", `Slow, test_strategy_memory_ordering);
    ("strategy latency ordering (fig4)", `Slow, test_strategy_latency_ordering);
    ("redis save uFork wins (fig3)", `Slow, test_redis_save_ufork_wins);
    ("redis fork factor (fig4)", `Slow, test_redis_fork_factor);
    ("faas advantage (fig6)", `Slow, test_faas_advantage);
    ("faas core scaling (fig6)", `Slow, test_faas_scales_with_cores);
    ("nginx worker scaling (fig7)", `Slow, test_nginx_worker_scaling);
    ("nginx vs cheribsd (fig7)", `Slow, test_nginx_vs_cheribsd);
    ("unixbench shape (fig9)", `Slow, test_fig9_shape);
    ("toctou fork cost", `Slow, test_toctou_fork_cost_small);
    ("isolation ablation monotone", `Slow, test_ablate_isolation_monotone);
    ("syscall entry ablation", `Quick, test_ablate_syscall_entry);
    ("fragmentation shapes", `Quick, test_fragmentation_shapes);
    ("keyspace deterministic", `Quick, test_keyspace_deterministic);
    ("trace audit: hello fork (fig8)", `Quick, test_trace_audit_hello);
    ("trace audit: unixbench (fig9)", `Slow, test_trace_audit_unixbench);
    ("trace determinism", `Quick, test_trace_determinism);
  ]
