(* Tests for the applications: the Redis-like store + RDB serializer, the
   MicroPython-like interpreter, the Zygote FaaS loop, the Nginx-like
   server, Unixbench ports and hello. *)

module Image = Ufork_sas.Image
module Api = Ufork_sas.Api
module Vfs = Ufork_sas.Vfs
module Fdesc = Ufork_sas.Fdesc
module Kernel = Ufork_sas.Kernel
module Uproc = Ufork_sas.Uproc
module Os = Ufork_core.Os
module Strategy = Ufork_core.Strategy
module Kvstore = Ufork_apps.Kvstore
module Rdb = Ufork_apps.Rdb
module Mpy = Ufork_apps.Mpy
module Faas = Ufork_apps.Faas
module Httpd = Ufork_apps.Httpd
module Unixbench = Ufork_apps.Unixbench
module Hello = Ufork_apps.Hello
module Units = Ufork_util.Units

let big_image = Image.redis ~heap_bytes:(8 * 1024 * 1024)

let run_os ?(cores = 4) ?(image = big_image) f =
  let os = Os.boot ~cores () in
  let result = ref None in
  let _ = Os.start os ~image (fun api -> result := Some (f os api)) in
  Os.run os;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "process did not complete"

(* --- Kvstore --- *)

let test_kv_set_get () =
  let v =
    run_os (fun _os api ->
        let kv = Kvstore.create api () in
        Kvstore.set kv ~key:"alpha" ~value:(Bytes.of_string "one");
        Kvstore.set kv ~key:"beta" ~value:(Bytes.of_string "two");
        ( Kvstore.get kv ~key:"alpha",
          Kvstore.get kv ~key:"beta",
          Kvstore.get kv ~key:"gamma",
          Kvstore.count kv ))
  in
  let a, b, g, n = v in
  Alcotest.(check (option string)) "alpha" (Some "one")
    (Option.map Bytes.to_string a);
  Alcotest.(check (option string)) "beta" (Some "two")
    (Option.map Bytes.to_string b);
  Alcotest.(check (option string)) "missing" None (Option.map Bytes.to_string g);
  Alcotest.(check int) "count" 2 n

let test_kv_overwrite () =
  let v, n =
    run_os (fun _os api ->
        let kv = Kvstore.create api () in
        Kvstore.set kv ~key:"k" ~value:(Bytes.of_string "first");
        Kvstore.set kv ~key:"k" ~value:(Bytes.of_string "second value");
        (Kvstore.get kv ~key:"k", Kvstore.count kv))
  in
  Alcotest.(check (option string)) "overwritten" (Some "second value")
    (Option.map Bytes.to_string v);
  Alcotest.(check int) "count unchanged" 1 n

let test_kv_delete () =
  let deleted, missing, n =
    run_os (fun _os api ->
        let kv = Kvstore.create api () in
        Kvstore.set kv ~key:"a" ~value:(Bytes.of_string "1");
        Kvstore.set kv ~key:"b" ~value:(Bytes.of_string "2");
        let d = Kvstore.delete kv ~key:"a" in
        let m = Kvstore.delete kv ~key:"zz" in
        (d, m, Kvstore.count kv))
  in
  Alcotest.(check bool) "deleted" true deleted;
  Alcotest.(check bool) "missing delete" false missing;
  Alcotest.(check int) "count" 1 n

let test_kv_collisions () =
  (* A 1-bucket store forces every key onto one chain. *)
  let ok =
    run_os (fun _os api ->
        let kv = Kvstore.create api ~buckets:1 () in
        for i = 0 to 49 do
          Kvstore.set kv ~key:(Printf.sprintf "k%d" i)
            ~value:(Bytes.of_string (string_of_int i))
        done;
        let all_ok = ref true in
        for i = 0 to 49 do
          match Kvstore.get kv ~key:(Printf.sprintf "k%d" i) with
          | Some v when Bytes.to_string v = string_of_int i -> ()
          | _ -> all_ok := false
        done;
        ignore (Kvstore.delete kv ~key:"k25");
        !all_ok
        && Kvstore.get kv ~key:"k25" = None
        && Kvstore.count kv = 49)
  in
  Alcotest.(check bool) "chained buckets" true ok

let test_kv_iter () =
  let keys =
    run_os (fun _os api ->
        let kv = Kvstore.create api () in
        List.iter
          (fun k -> Kvstore.set kv ~key:k ~value:(Bytes.of_string k))
          [ "x"; "y"; "z" ];
        let acc = ref [] in
        Kvstore.iter kv (fun ~key ~value_len ~read_value ->
            let v = read_value () in
            if Bytes.length v = value_len then acc := key :: !acc);
        List.sort compare !acc)
  in
  Alcotest.(check (list string)) "iterated all" [ "x"; "y"; "z" ] keys

let test_kv_empty_value () =
  let v =
    run_os (fun _os api ->
        let kv = Kvstore.create api () in
        Kvstore.set kv ~key:"empty" ~value:Bytes.empty;
        Kvstore.get kv ~key:"empty")
  in
  Alcotest.(check (option string)) "empty value" (Some "")
    (Option.map Bytes.to_string v)

let test_kv_large_value () =
  let ok =
    run_os (fun _os api ->
        let kv = Kvstore.create api () in
        let v = Bytes.init (300 * 1024) (fun i -> Char.chr (i mod 251)) in
        Kvstore.set kv ~key:"big" ~value:v;
        Kvstore.get kv ~key:"big" = Some v)
  in
  Alcotest.(check bool) "300KB value roundtrip" true ok

let test_kv_rehash () =
  let grown, all_present, n =
    run_os (fun _os api ->
        let kv = Kvstore.create api ~buckets:4 () in
        for i = 0 to 99 do
          Kvstore.set kv ~key:(Printf.sprintf "r%03d" i)
            ~value:(Bytes.of_string (string_of_int (i * i)))
        done;
        let ok = ref true in
        for i = 0 to 99 do
          match Kvstore.get kv ~key:(Printf.sprintf "r%03d" i) with
          | Some v when Bytes.to_string v = string_of_int (i * i) -> ()
          | _ -> ok := false
        done;
        (Kvstore.bucket_count kv > 4, !ok, Kvstore.count kv))
  in
  Alcotest.(check bool) "bucket array grew" true grown;
  Alcotest.(check bool) "all entries survive rehash" true all_present;
  Alcotest.(check int) "count" 100 n

let test_kv_rehash_across_fork () =
  (* A child snapshotting a just-rehashed dict walks the new array. *)
  let ok =
    run_os (fun _os api ->
        let kv = Kvstore.create api ~buckets:2 () in
        for i = 0 to 19 do
          Kvstore.set kv ~key:(Printf.sprintf "f%d" i)
            ~value:(Bytes.of_string (string_of_int i))
        done;
        ignore
          (api.Api.fork (fun capi ->
               let kv' = Kvstore.open_ capi in
               let seen = ref 0 in
               Kvstore.iter kv' (fun ~key:_ ~value_len:_ ~read_value ->
                   ignore (read_value ());
                   incr seen);
               capi.Api.exit (if !seen = 20 then 0 else 1)));
        snd (api.Api.wait ()) = 0)
  in
  Alcotest.(check bool) "forked child walks rehashed dict" true ok

(* Model-based property: the store behaves like a Hashtbl. *)
let prop_kv_model =
  QCheck.Test.make ~name:"kvstore = hashtable model" ~count:30
    QCheck.(
      list_of_size Gen.(1 -- 60)
        (pair (int_range 0 15) (string_of_size Gen.(0 -- 40))))
    (fun ops ->
      run_os (fun _os api ->
          let kv = Kvstore.create api ~buckets:4 () in
          let model = Hashtbl.create 16 in
          List.iter
            (fun (k, v) ->
              let key = Printf.sprintf "key%d" k in
              if String.length v mod 7 = 0 && Hashtbl.mem model key then begin
                ignore (Kvstore.delete kv ~key);
                Hashtbl.remove model key
              end
              else begin
                Kvstore.set kv ~key ~value:(Bytes.of_string v);
                Hashtbl.replace model key v
              end)
            ops;
          Hashtbl.fold
            (fun k v acc ->
              acc
              && Kvstore.get kv ~key:k = Some (Bytes.of_string v))
            model
            (Kvstore.count kv = Hashtbl.length model)))

(* --- Rdb --- *)

let test_rdb_roundtrip () =
  let dump, expected =
    run_os (fun os api ->
        let kv = Kvstore.create api () in
        let entries =
          [ ("k1", "value-one"); ("k2", ""); ("k3", String.make 5000 'z') ]
        in
        List.iter
          (fun (k, v) -> Kvstore.set kv ~key:k ~value:(Bytes.of_string v))
          entries;
        ignore (Rdb.save_to api kv ~path:"/dump.rdb");
        (Vfs.contents (Kernel.vfs (Os.kernel os)) "/dump.rdb", entries))
  in
  let got =
    Rdb.verify dump
    |> List.map (fun (k, v) -> (k, Bytes.to_string v))
    |> List.sort compare
  in
  Alcotest.(check (list (pair string string))) "roundtrip" expected got

let test_rdb_detects_corruption () =
  let dump =
    run_os (fun os api ->
        let kv = Kvstore.create api () in
        Kvstore.set kv ~key:"k" ~value:(Bytes.of_string "vvvv");
        ignore (Rdb.save_to api kv ~path:"/d");
        Vfs.contents (Kernel.vfs (Os.kernel os)) "/d")
  in
  (* Flip a payload byte: checksum must catch it. *)
  let b = Bytes.of_string dump in
  let off = String.length Rdb.magic + 8 + 1 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xff));
  (match Rdb.verify (Bytes.to_string b) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "corruption not detected");
  (* Truncation must be caught too. *)
  match Rdb.verify (String.sub dump 0 (String.length dump - 3)) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "truncation not detected"

let test_rdb_bad_magic () =
  match Rdb.verify "XXXX0000 garbage garbage" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "bad magic accepted"

let test_rdb_bgsave_snapshot_consistency () =
  (* The paper's Redis use-case (U4): the parent keeps mutating while the
     child dumps; the dump must reflect the fork instant. We pin both to
     one core so the parent provably runs between child time slices. *)
  let dump_entries, parent_final =
    run_os ~cores:1 (fun os api ->
        let kv = Kvstore.create api () in
        Kvstore.set kv ~key:"k" ~value:(Bytes.of_string "snapshot");
        ignore
          (api.Api.fork (fun capi ->
               let kv' = Kvstore.open_ capi in
               ignore (Rdb.save_to capi kv' ~path:"/snap");
               capi.Api.exit 0));
        (* Mutate immediately after fork, before the child is scheduled or
           while it copies. *)
        Kvstore.set kv ~key:"k" ~value:(Bytes.of_string "mutated!");
        Kvstore.set kv ~key:"k2" ~value:(Bytes.of_string "new");
        ignore (api.Api.wait ());
        let dump = Vfs.contents (Kernel.vfs (Os.kernel os)) "/snap" in
        ( Rdb.verify dump |> List.map (fun (k, v) -> (k, Bytes.to_string v)),
          Option.map Bytes.to_string (Kvstore.get kv ~key:"k") ))
  in
  Alcotest.(check (list (pair string string)))
    "dump holds the fork-instant state"
    [ ("k", "snapshot") ]
    dump_entries;
  Alcotest.(check (option string)) "parent moved on" (Some "mutated!")
    parent_final

let test_rdb_bgsave_result () =
  let r, exists =
    run_os (fun os api ->
        let kv = Kvstore.create api () in
        Kvstore.set kv ~key:"a" ~value:(Bytes.of_string "b");
        let r = Rdb.bgsave api kv ~path:"/bg" in
        (r, Vfs.exists (Kernel.vfs (Os.kernel os)) "/bg"))
  in
  Alcotest.(check bool) "file exists" true exists;
  Alcotest.(check bool) "latency < total" true
    (r.Rdb.fork_latency_cycles < r.Rdb.total_cycles);
  Alcotest.(check bool) "latency positive" true (r.Rdb.fork_latency_cycles > 0L)

(* --- Aof --- *)

module Aof = Ufork_apps.Aof

let test_aof_roundtrip () =
  let ok =
    run_os (fun _os api ->
        let kv = Kvstore.create api () in
        let log = Aof.open_log api ~path:"/a.aof" in
        Aof.log_set log ~key:"x" ~value:(Bytes.of_string "1");
        Aof.log_set log ~key:"y" ~value:(Bytes.of_string "22");
        Aof.log_set log ~key:"x" ~value:(Bytes.of_string "333");
        Aof.log_delete log ~key:"y";
        Aof.close log;
        let applied, clean = Aof.replay api kv ~path:"/a.aof" in
        applied = 4 && clean
        && Kvstore.get kv ~key:"x" = Some (Bytes.of_string "333")
        && Kvstore.get kv ~key:"y" = None
        && Kvstore.count kv = 1)
  in
  Alcotest.(check bool) "log replay gives final state" true ok

let test_aof_truncated_tail () =
  let applied, clean =
    run_os (fun os api ->
        let kv = Kvstore.create api () in
        let log = Aof.open_log api ~path:"/t.aof" in
        Aof.log_set log ~key:"a" ~value:(Bytes.of_string "one");
        Aof.log_set log ~key:"b" ~value:(Bytes.of_string "two");
        Aof.close log;
        (* Chop mid-record, as a crash during append would. *)
        let vfs = Kernel.vfs (Os.kernel os) in
        let full = Vfs.contents vfs "/t.aof" in
        Vfs.put vfs "/t.aof" (String.sub full 0 (String.length full - 2));
        Aof.replay api kv ~path:"/t.aof")
  in
  Alcotest.(check int) "first record applied" 1 applied;
  Alcotest.(check bool) "flagged unclean" false clean

let test_aof_bgrewrite_compacts () =
  let ok =
    run_os (fun os api ->
        let kv = Kvstore.create api () in
        let log = Aof.open_log api ~path:"/c.aof" in
        (* Churn: many overwrites, so the live set is much smaller than
           the log. *)
        for i = 0 to 49 do
          let key = Printf.sprintf "k%d" (i mod 5) in
          let value = Bytes.of_string (string_of_int i) in
          Kvstore.set kv ~key ~value;
          Aof.log_set log ~key ~value
        done;
        Aof.close log;
        let vfs = Kernel.vfs (Os.kernel os) in
        let before = Vfs.size vfs "/c.aof" in
        ignore (Aof.bgrewrite api kv ~path:"/c.aof");
        let after = Vfs.size vfs "/c.aof" in
        (* Rewritten log is much smaller and replays to the same state. *)
        let kv2_ok =
          let fresh = Kvstore.create api ~buckets:64 () in
          (* note: fresh store steals the GOT slot; fine inside one test *)
          let applied, clean = Aof.replay api fresh ~path:"/c.aof" in
          applied = 5 && clean
          && List.for_all
               (fun i ->
                 let key = Printf.sprintf "k%d" i in
                 Kvstore.get fresh ~key = Kvstore.get kv ~key)
               [ 0; 1; 2; 3; 4 ]
        in
        after < before / 3 && kv2_ok)
  in
  Alcotest.(check bool) "bgrewrite compacts and preserves" true ok

let test_aof_rewrite_snapshot_isolated () =
  (* Parent mutates while the rewrite child walks its snapshot: the
     rewritten log reflects the fork instant. *)
  let ok =
    run_os ~cores:1 (fun os api ->
        let kv = Kvstore.create api () in
        Kvstore.set kv ~key:"k" ~value:(Bytes.of_string "old");
        ignore
          (api.Api.fork (fun capi ->
               let kv' = Kvstore.open_ capi in
               let log = Aof.open_log capi ~path:"/s.aof.rw" in
               Kvstore.iter kv' (fun ~key ~value_len:_ ~read_value ->
                   Aof.log_set log ~key ~value:(read_value ()));
               Aof.close log;
               capi.Api.rename ~src:"/s.aof.rw" ~dst:"/s.aof";
               capi.Api.exit 0));
        Kvstore.set kv ~key:"k" ~value:(Bytes.of_string "new");
        ignore (api.Api.wait ());
        let vfs = Kernel.vfs (Os.kernel os) in
        let contents = Vfs.contents vfs "/s.aof" in
        (* The log must carry the fork-instant value. *)
        let has_old = ref false and has_new = ref false in
        for i = 0 to String.length contents - 3 do
          if String.sub contents i 3 = "old" then has_old := true;
          if String.sub contents i 3 = "new" then has_new := true
        done;
        !has_old && not !has_new)
  in
  Alcotest.(check bool) "rewrite sees fork-instant state" true ok

let test_pipe_throughput_positive () =
  let rate =
    run_os ~image:Image.hello (fun _os api ->
        Unixbench.pipe_throughput api ~iterations:1000)
  in
  (* ~2 syscalls + ~1 kB of copies per loop: hundreds of kloops/s. *)
  Alcotest.(check bool) "rate plausible" true (rate > 1e5 && rate < 1e7)

(* --- Mpy --- *)

let test_mpy_float_operation_value () =
  (* The interpreter must compute the same value as a direct evaluation. *)
  let n = 50 in
  let got = run_os (fun _os api -> Mpy.run api (Mpy.float_operation ~n)) in
  let expected =
    let acc = ref 0.0 in
    for i = n downto 1 do
      let fi = float_of_int i in
      acc := sqrt fi *. sin fi +. cos !acc +. !acc
    done;
    !acc
  in
  Alcotest.(check bool) "matches direct evaluation" true
    (Float.abs (got -. expected) <= 1e-9 *. Float.max 1.0 (Float.abs expected))

let test_mpy_charges_cycles () =
  let dt =
    run_os (fun _os api ->
        let t0 = api.Api.now () in
        ignore (Mpy.run api (Mpy.float_operation ~n:100));
        Int64.sub (api.Api.now ()) t0)
  in
  let est = Mpy.estimated_cycles (Mpy.float_operation ~n:100) in
  Alcotest.(check bool) "charged ~ estimate" true
    (Int64.abs (Int64.sub dt est) < Int64.div est 10L)

let test_mpy_stack_underflow () =
  let raised =
    run_os (fun _os api ->
        match Mpy.run api [| Mpy.Add; Mpy.Halt |] with
        | exception Mpy.Runtime_error _ -> true
        | _ -> false)
  in
  Alcotest.(check bool) "underflow" true raised

let test_mpy_div_zero () =
  let raised =
    run_os (fun _os api ->
        match
          Mpy.run api [| Mpy.Push 1.0; Mpy.Push 0.0; Mpy.Div; Mpy.Halt |]
        with
        | exception Mpy.Runtime_error _ -> true
        | _ -> false)
  in
  Alcotest.(check bool) "div by zero" true raised

let test_mpy_bad_local () =
  let raised =
    run_os (fun _os api ->
        match Mpy.run api ~locals:2 [| Mpy.Load 5; Mpy.Halt |] with
        | exception Mpy.Runtime_error _ -> true
        | _ -> false)
  in
  Alcotest.(check bool) "bad local" true raised

let test_mpy_basic_ops () =
  let v =
    run_os (fun _os api ->
        Mpy.run api
          [|
            Mpy.Push 3.0; Mpy.Push 4.0; Mpy.Mul; Mpy.Push 2.0; Mpy.Sub;
            Mpy.Dup; Mpy.Add; Mpy.Halt;
          |])
  in
  Alcotest.(check bool) "(3*4-2)*2 = 20" true (Float.abs (v -. 20.) < 1e-9)

let test_mpy_matmul_value () =
  let n = 4 in
  let got =
    run_os (fun _os api ->
        Mpy.run api ~locals:(Mpy.matmul_locals ~n) (Mpy.matmul ~n))
  in
  (* Direct evaluation with the same inputs. *)
  let a i j = (float_of_int ((i * n) + j) *. 0.01) +. 0.5 in
  let b i j = (float_of_int ((j * n) + i) *. 0.02) -. 0.25 in
  let expected = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. (a i k *. b k j)
      done;
      expected := !expected +. !acc
    done
  done;
  Alcotest.(check bool) "matmul checksum" true
    (Float.abs (got -. !expected) < 1e-9 *. Float.max 1.0 (Float.abs !expected))

let test_mpy_linpack_value () =
  let n = 8 in
  let got =
    run_os (fun _os api ->
        Mpy.run api ~locals:(Mpy.linpack_locals ~n) (Mpy.linpack ~n))
  in
  let x = Array.init n (fun i -> (float_of_int i *. 0.003) +. 1.0) in
  let y = Array.init n (fun i -> (float_of_int i *. 0.007) -. 0.5) in
  for rep = 1 to n do
    let a = 0.5 +. (float_of_int rep *. 0.1) in
    for i = 0 to n - 1 do
      y.(i) <- y.(i) +. (a *. x.(i))
    done
  done;
  let expected = Array.fold_left ( +. ) 0.0 y in
  Alcotest.(check bool) "linpack checksum" true
    (Float.abs (got -. expected) < 1e-9 *. Float.max 1.0 (Float.abs expected))

let test_mpy_store_idx_bounds () =
  let raised =
    run_os (fun _os api ->
        match
          Mpy.run api ~locals:4
            [| Mpy.Push 1.0; Mpy.Push 99.0; Mpy.Store_idx; Mpy.Halt |]
        with
        | exception Mpy.Runtime_error _ -> true
        | _ -> false)
  in
  Alcotest.(check bool) "indexed store checked" true raised

let test_zygote_roundtrip () =
  let n =
    run_os ~image:Image.micropython (fun _os api ->
        Mpy.zygote_init api ~modules:8;
        Mpy.zygote_check api)
  in
  Alcotest.(check int) "modules" 8 n

let test_zygote_fork_check () =
  let status =
    run_os ~image:Image.micropython (fun _os api ->
        Mpy.zygote_init api ~modules:8;
        ignore
          (api.Api.fork (fun capi ->
               capi.Api.exit (if Mpy.zygote_check capi = 8 then 0 else 1)));
        snd (api.Api.wait ()))
  in
  Alcotest.(check int) "forked runtime valid" 0 status

(* --- Faas --- *)

let test_faas_counts () =
  let r =
    run_os ~cores:3 ~image:Image.micropython (fun _os api ->
        Faas.coordinator api ~max_workers:2
          ~window_cycles:(Units.cycles_of_s 0.05)
          ~program:(Mpy.float_operation ~n:200))
  in
  Alcotest.(check bool) "some functions ran" true (r.Faas.completed > 10);
  Alcotest.(check bool) "forks >= completions" true
    (r.Faas.forks >= r.Faas.completed);
  Alcotest.(check bool) "throughput consistent" true
    (Float.abs
       (r.Faas.throughput_per_s -. (float_of_int r.Faas.completed /. 0.05))
    < 1.0)

(* --- Httpd --- *)

let test_httpd_end_to_end () =
  let os = Os.boot ~cores:1 () in
  Httpd.populate_docroot (Kernel.vfs (Os.kernel os));
  let net = Httpd.Net.create () in
  let window = Units.cycles_of_s 0.02 in
  let u =
    Os.start os ~image:Image.nginx (fun api ->
        Httpd.master api ~net ~listen_rfd:3 ~listen_wfd:4 ~workers:2
          ~window_cycles:window)
  in
  let p = Httpd.Net.listen_pipe net in
  let rfd = Fdesc.Fdtable.alloc u.Uproc.fds (Fdesc.Pipe_read p) in
  let wfd = Fdesc.Fdtable.alloc u.Uproc.fds (Fdesc.Pipe_write p) in
  Alcotest.(check (pair int int)) "fds" (3, 4) (rfd, wfd);
  Httpd.Net.spawn_clients (Os.engine os) net ~connections:4
    ~window_cycles:window;
  Os.run os;
  let stats = Httpd.Net.stats net in
  Alcotest.(check bool) "served requests" true (stats.Httpd.Net.completed > 50);
  Alcotest.(check bool) "completed <= sent" true
    (stats.Httpd.Net.completed <= stats.Httpd.Net.sent)

(* Worker-count scaling on one core is asserted in test_integration. *)

(* --- Unixbench --- *)

let test_spawn_runs () =
  let cycles =
    run_os ~image:Image.hello (fun _os api ->
        Unixbench.spawn api ~iterations:20)
  in
  Alcotest.(check bool) "time accumulated" true (cycles > 0L);
  (* ~20 forks at ~55us each. *)
  let ms = Units.ms_of_cycles cycles in
  Alcotest.(check bool) "plausible range" true (ms > 0.5 && ms < 10.)

let test_context1_correct () =
  let r =
    run_os ~image:Image.hello (fun _os api ->
        Unixbench.context1 api ~iterations:500)
  in
  Alcotest.(check int) "iterations" 500 r.Unixbench.iterations;
  Alcotest.(check bool) "per switch in 1-10us" true
    (r.Unixbench.per_switch_cycles > 2500.
    && r.Unixbench.per_switch_cycles < 25000.)

(* --- Hello --- *)

let test_hello_fork_once () =
  let s =
    run_os ~image:Image.hello (fun _os api ->
        let s = Hello.fork_once api in
        Hello.reap api;
        s)
  in
  Alcotest.(check bool) "latency > 0" true (s.Hello.latency_cycles > 0L);
  Alcotest.(check bool) "child pid" true (s.Hello.child_pid > 1)

let test_hello_main () =
  run_os ~image:Image.hello (fun _os api -> Hello.main api)

let qt = QCheck_alcotest.to_alcotest

let suite =
  [
    ("kv set/get", `Quick, test_kv_set_get);
    ("kv overwrite", `Quick, test_kv_overwrite);
    ("kv delete", `Quick, test_kv_delete);
    ("kv collisions", `Quick, test_kv_collisions);
    ("kv iter", `Quick, test_kv_iter);
    ("kv empty value", `Quick, test_kv_empty_value);
    ("kv large value", `Quick, test_kv_large_value);
    ("kv rehash", `Quick, test_kv_rehash);
    ("kv rehash across fork", `Quick, test_kv_rehash_across_fork);
    ("rdb roundtrip", `Quick, test_rdb_roundtrip);
    ("rdb corruption", `Quick, test_rdb_detects_corruption);
    ("rdb bad magic", `Quick, test_rdb_bad_magic);
    ("rdb snapshot consistency", `Quick, test_rdb_bgsave_snapshot_consistency);
    ("rdb bgsave result", `Quick, test_rdb_bgsave_result);
    ("aof roundtrip", `Quick, test_aof_roundtrip);
    ("aof truncated tail", `Quick, test_aof_truncated_tail);
    ("aof bgrewrite compacts", `Quick, test_aof_bgrewrite_compacts);
    ("aof rewrite snapshot", `Quick, test_aof_rewrite_snapshot_isolated);
    ("pipe throughput", `Quick, test_pipe_throughput_positive);
    ("mpy float_operation value", `Quick, test_mpy_float_operation_value);
    ("mpy charges cycles", `Quick, test_mpy_charges_cycles);
    ("mpy stack underflow", `Quick, test_mpy_stack_underflow);
    ("mpy div zero", `Quick, test_mpy_div_zero);
    ("mpy bad local", `Quick, test_mpy_bad_local);
    ("mpy basic ops", `Quick, test_mpy_basic_ops);
    ("mpy matmul value", `Quick, test_mpy_matmul_value);
    ("mpy linpack value", `Quick, test_mpy_linpack_value);
    ("mpy indexed bounds", `Quick, test_mpy_store_idx_bounds);
    ("zygote roundtrip", `Quick, test_zygote_roundtrip);
    ("zygote fork check", `Quick, test_zygote_fork_check);
    ("faas counts", `Quick, test_faas_counts);
    ("httpd end to end", `Quick, test_httpd_end_to_end);
    ("spawn runs", `Quick, test_spawn_runs);
    ("context1 correct", `Quick, test_context1_correct);
    ("hello fork once", `Quick, test_hello_fork_once);
    ("hello main", `Quick, test_hello_main);
    qt prop_kv_model;
  ]
