(* Causal trace graph + critical-path analyzer, three legs:
   - unit: hand-fed Hb event sequences under a controlled clock — a
     lock hand-off chain is walked to the holder with the wait blamed
     on the lock, a timer wake yields a Sleep segment (the stall itself
     is the path), and the tiling audit identity (Σ segments = wall =
     Σ blame) holds on both;
   - integration: a real fork-storm run armed through the experiment
     harness produces completed fork windows whose analyzed interval
     tiles exactly and blames the fork spine, and the analyzer's
     per-lock wait counts agree with Sync's contention counters;
   - exports: JSON / DOT / Chrome shapes. *)

module Causal = Ufork_analysis.Causal
module Hb = Ufork_util.Hb
module Sync = Ufork_sim.Sync
module Strategy = Ufork_core.Strategy
module E = Ufork_workload.Experiments

(* {1 Unit: hand-fed timelines} *)

(* A lock id far above anything Sync allocates in one test process, so
   naming it cannot collide with a booted machine's registry. *)
let test_lock = 991_991

let collector () =
  let c = Causal.create () in
  let now = ref 0L in
  Causal.set_now c (fun () -> !now);
  let at t evs =
    now := t;
    List.iter (Causal.handle c) evs
  in
  (c, at)

let seg_cycles (s : Causal.segment) = Int64.sub s.Causal.s_t1 s.Causal.s_t0

let check_tiling (r : Causal.report) =
  let wall = Int64.sub r.Causal.r_t1 r.Causal.r_t0 in
  Alcotest.(check int64)
    "segments tile the interval" wall
    (List.fold_left
       (fun acc s -> Int64.add acc (seg_cycles s))
       0L r.Causal.r_segments);
  Alcotest.(check int64)
    "blame sums to the path" wall
    (List.fold_left (fun acc (_, c) -> Int64.add acc c) 0L r.Causal.r_blame)

let test_handoff_chain () =
  Hb.set_lock_name test_lock "lock.test";
  let c, at = collector () in
  at 0L [ Hb.Span_open { tid = 0; name = "main" } ];
  at 10L [ Hb.Spawn { parent = 0; child = 1 }; Hb.Wake { by = 0; target = 1 } ];
  at 20L [ Hb.Span_open { tid = 1; name = "work" } ];
  at 30L
    [
      Hb.Contend { tid = 1; lock = test_lock; holder = 2 };
      Hb.Block { tid = 1 };
    ];
  at 80L
    [
      Hb.Handoff { from_ = 2; to_ = 1; lock = test_lock };
      Hb.Wake { by = 2; target = 1 };
    ];
  at 100L [ Hb.Span_close { tid = 1; name = "work" } ];
  Alcotest.(check int64) "horizon" 100L (Causal.horizon c);
  Alcotest.(check bool) "events folded" true (Causal.events_seen c > 0);
  let r = Causal.analyze c ~anchor:1 ~t0:0L ~t1:100L () in
  check_tiling r;
  Alcotest.(check int) "anchor" 1 r.Causal.r_anchor;
  (match r.Causal.r_chains with
  | [ ch ] ->
      Alcotest.(check int) "waiter" 1 ch.Causal.c_waiter;
      Alcotest.(check int) "holder" 2 ch.Causal.c_holder;
      Alcotest.(check string) "lock name" "lock.test" ch.Causal.c_lock;
      Alcotest.(check int64) "contend-to-handoff wait" 50L ch.Causal.c_cycles;
      Alcotest.(check string) "waiter span" "work" ch.Causal.c_waiter_span
  | chs -> Alcotest.failf "expected one chain, got %d" (List.length chs));
  (match Causal.dominant_lock r with
  | Some (lock, cycles) ->
      Alcotest.(check string) "dominant lock" "lock.test" lock;
      Alcotest.(check int64) "dominant cycles" 50L cycles
  | None -> Alcotest.fail "no dominant lock");
  (* The run segment after the wake carries the waiter's open span. *)
  Alcotest.(check bool) "a path segment runs inside \"work\"" true
    (List.exists
       (fun (s : Causal.segment) ->
         s.Causal.s_tid = 1 && s.Causal.s_span = "work"
         && s.Causal.s_kind = Causal.Run)
       r.Causal.r_segments);
  (* Whole-run lock totals count the one wait with its full latency. *)
  match
    List.find_opt (fun (n, _, _) -> n = "lock.test") r.Causal.r_lock_waits
  with
  | Some (_, waits, cycles) ->
      Alcotest.(check int) "one recorded wait" 1 waits;
      Alcotest.(check int64) "recorded wait cycles" 50L cycles
  | None -> Alcotest.fail "lock.test missing from wait totals"

let test_timer_sleep () =
  let c, at = collector () in
  at 10L [ Hb.Block { tid = 1 } ];
  at 60L [ Hb.Wake { by = -1; target = 1 } ];
  at 100L [ Hb.Span_open { tid = 1; name = "late" } ];
  let r = Causal.analyze c ~anchor:1 ~t0:0L ~t1:100L () in
  check_tiling r;
  Alcotest.(check bool) "no chains" true (r.Causal.r_chains = []);
  match
    List.filter
      (fun (s : Causal.segment) -> s.Causal.s_kind = Causal.Sleep)
      r.Causal.r_segments
  with
  | [ s ] ->
      Alcotest.(check int64) "sleep start" 10L s.Causal.s_t0;
      Alcotest.(check int64) "sleep end" 60L s.Causal.s_t1
  | ss -> Alcotest.failf "expected one sleep segment, got %d" (List.length ss)

(* {1 Integration: a real armed run} *)

let with_causal_storm f =
  E.set_causal_trace true;
  Fun.protect
    ~finally:(fun () -> E.set_causal_trace false)
    (fun () ->
      Sync.reset_lock_contention ();
      ignore
        (E.fork_storm_run (E.Ufork Strategy.Copa) ~cores:4 ~iters:3 ());
      match E.causal_graph () with
      | Some g -> f g
      | None -> Alcotest.fail "no causal graph collected")

let test_storm_fork_window () =
  with_causal_storm (fun g ->
      let windows = Causal.fork_windows g in
      Alcotest.(check bool) "fork windows completed" true (windows <> []);
      let r = Causal.analyze_fork g 0 in
      check_tiling r;
      let tid, t0, t1 = List.hd windows in
      Alcotest.(check int64) "interval open" t0 r.Causal.r_t0;
      Alcotest.(check int64) "interval close" t1 r.Causal.r_t1;
      Alcotest.(check int) "anchored at the forker" tid r.Causal.r_anchor;
      (* The window is the fork span itself, so the blame lands inside
         the fork spine (or in waits the fork crossed). *)
      Alcotest.(check bool) "fork spine blamed" true
        (List.exists
           (fun (path, _) ->
             List.exists
               (fun seg ->
                 seg = "fork"
                 || String.length seg > 5 && String.sub seg 0 5 = "fork.")
               (String.split_on_char ';' path))
           r.Causal.r_blame);
      Alcotest.check_raises "fork index out of range"
        (Invalid_argument
           (Printf.sprintf
              "Causal.analyze_fork: fork %d out of range (%d completed)" 9999
              (List.length windows)))
        (fun () -> ignore (Causal.analyze_fork g 9999)))

let test_storm_wait_counts_match_sync () =
  with_causal_storm (fun g ->
      let r = Causal.analyze g ~t0:0L ~t1:(Causal.horizon g) () in
      check_tiling r;
      List.iter
        (fun (c : Sync.contention) ->
          if c.Sync.waits > 0 then
            let causal =
              match
                List.find_opt
                  (fun (n, _, _) -> n = c.Sync.lock)
                  r.Causal.r_lock_waits
              with
              | Some (_, w, _) -> w
              | None -> 0
            in
            Alcotest.(check int)
              (Printf.sprintf "wait count for %s" c.Sync.lock)
              c.Sync.waits causal)
        (Sync.lock_contention ()))

(* {1 Exports} *)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_exports () =
  Hb.set_lock_name test_lock "lock.test";
  let c, at = collector () in
  at 5L [ Hb.Span_open { tid = 0; name = "phase" } ];
  at 10L
    [
      Hb.Contend { tid = 0; lock = test_lock; holder = 1 };
      Hb.Block { tid = 0 };
    ];
  at 40L
    [
      Hb.Handoff { from_ = 1; to_ = 0; lock = test_lock };
      Hb.Wake { by = 1; target = 0 };
    ];
  at 50L [ Hb.Span_close { tid = 0; name = "phase" } ];
  let r = Causal.analyze c ~anchor:0 ~t0:0L ~t1:50L () in
  let json = Causal.to_json r in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json has %s" needle)
        true (contains ~needle json))
    [ {|"t0": 0|}; {|"t1": 50|}; {|"segments"|}; {|"chains"|};
      {|"lock.test"|}; {|"blame"|} ];
  let dot = Causal.to_dot r in
  Alcotest.(check bool) "dot digraph" true (contains ~needle:"digraph" dot);
  Alcotest.(check bool) "dot wait edge" true (contains ~needle:"dashed" dot);
  let chrome = Causal.to_chrome r in
  Alcotest.(check bool) "chrome is an array" true
    (String.length chrome > 0 && chrome.[0] = '[');
  Alcotest.(check bool) "chrome complete events" true
    (contains ~needle:{|"ph": "X"|} chrome || contains ~needle:{|"ph":"X"|} chrome)

let suite =
  [
    Alcotest.test_case "hand-off chain walked to the holder" `Quick
      test_handoff_chain;
    Alcotest.test_case "timer wake yields a sleep segment" `Quick
      test_timer_sleep;
    Alcotest.test_case "storm: fork window tiles and blames the spine"
      `Quick test_storm_fork_window;
    Alcotest.test_case "storm: wait counts match the lock counters" `Quick
      test_storm_wait_counts_match_sync;
    Alcotest.test_case "exports: json, dot, chrome" `Quick test_exports;
  ]
