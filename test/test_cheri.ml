(* Tests for the CHERI capability model: the architectural rules μFork's
   security argument depends on (§2.4, §4.3). *)

module Perms = Ufork_cheri.Perms
module Otype = Ufork_cheri.Otype
module Capability = Ufork_cheri.Capability

let violation f =
  match f () with
  | exception Capability.Violation _ -> ()
  | _ -> Alcotest.fail "expected Capability.Violation"

(* --- Perms --- *)

let test_perms_lattice () =
  Alcotest.(check bool) "subset refl" true
    (Perms.is_subset ~sub:Perms.user_data ~super:Perms.user_data);
  Alcotest.(check bool) "user < all" true
    (Perms.is_subset ~sub:Perms.user_data ~super:Perms.all);
  Alcotest.(check bool) "all not < user" false
    (Perms.is_subset ~sub:Perms.all ~super:Perms.user_data);
  Alcotest.(check bool) "user_data has no system" false
    (Perms.has Perms.user_data Perms.system);
  Alcotest.(check bool) "user_code has no store" false
    (Perms.has Perms.user_code Perms.store)

let test_perms_ops () =
  let p = Perms.union Perms.load Perms.store in
  Alcotest.(check bool) "union" true (Perms.has p Perms.load && Perms.has p Perms.store);
  let q = Perms.remove p Perms.store in
  Alcotest.(check bool) "remove" false (Perms.has q Perms.store);
  Alcotest.(check bool) "intersect" true
    (Perms.equal (Perms.intersect p Perms.load) Perms.load);
  Alcotest.(check bool) "roundtrip int" true
    (Perms.equal p (Perms.of_int (Perms.to_int p)))

(* --- Otype --- *)

let test_otype () =
  Alcotest.(check bool) "unsealed" false (Otype.is_sealed Otype.unsealed);
  Alcotest.(check bool) "syscall sealed" true (Otype.is_sealed Otype.syscall_entry);
  let a = Otype.fresh () and b = Otype.fresh () in
  Alcotest.(check bool) "fresh distinct" false (Otype.equal a b)

(* --- Capability construction and monotonicity --- *)

let root () = Capability.root ()

let test_mint_basic () =
  let c =
    Capability.mint ~parent:(root ()) ~base:0x1000 ~length:0x100
      ~perms:Perms.user_data
  in
  Alcotest.(check int) "base" 0x1000 (Capability.base c);
  Alcotest.(check int) "length" 0x100 (Capability.length c);
  Alcotest.(check int) "limit" 0x1100 (Capability.limit c);
  Alcotest.(check int) "cursor at base" 0x1000 (Capability.cursor c);
  Alcotest.(check bool) "tagged" true (Capability.tag c)

let test_mint_monotonic_bounds () =
  let parent =
    Capability.mint ~parent:(root ()) ~base:0x1000 ~length:0x100
      ~perms:Perms.user_data
  in
  violation (fun () ->
      Capability.mint ~parent ~base:0xf00 ~length:0x10 ~perms:Perms.user_data);
  violation (fun () ->
      Capability.mint ~parent ~base:0x1000 ~length:0x200 ~perms:Perms.user_data)

let test_mint_monotonic_perms () =
  let parent =
    Capability.mint ~parent:(root ()) ~base:0x1000 ~length:0x100
      ~perms:Perms.load
  in
  violation (fun () ->
      Capability.mint ~parent ~base:0x1000 ~length:0x10
        ~perms:(Perms.union Perms.load Perms.store))

let test_mint_from_untagged () =
  violation (fun () ->
      Capability.mint ~parent:Capability.null ~base:0 ~length:1
        ~perms:Perms.empty)

let test_set_bounds_narrows () =
  let c =
    Capability.mint ~parent:(root ()) ~base:0x1000 ~length:0x100
      ~perms:Perms.user_data
  in
  let n = Capability.set_bounds c ~base:0x1010 ~length:0x20 in
  Alcotest.(check int) "narrowed base" 0x1010 (Capability.base n);
  Alcotest.(check int) "cursor clamped" 0x1010 (Capability.cursor n);
  violation (fun () -> Capability.set_bounds c ~base:0x1000 ~length:0x101)

let test_restrict_perms_intersects () =
  let c =
    Capability.mint ~parent:(root ()) ~base:0 ~length:16 ~perms:Perms.user_data
  in
  let r = Capability.restrict_perms c Perms.load in
  Alcotest.(check bool) "only load" true (Perms.equal (Capability.perms r) Perms.load)

(* --- Access checks --- *)

let test_check_access () =
  let c =
    Capability.mint ~parent:(root ()) ~base:0x1000 ~length:0x100
      ~perms:Perms.user_data
  in
  Capability.check_access c ~perm:Perms.load ~addr:0x1000 ~len:0x100;
  violation (fun () ->
      Capability.check_access c ~perm:Perms.load ~addr:0xfff ~len:2;
      ());
  violation (fun () ->
      Capability.check_access c ~perm:Perms.load ~addr:0x10ff ~len:2;
      ());
  violation (fun () ->
      Capability.check_access c ~perm:Perms.execute ~addr:0x1000 ~len:1;
      ())

let test_untagged_access () =
  violation (fun () ->
      Capability.check_access
        (Capability.clear_tag
           (Capability.mint ~parent:(root ()) ~base:0 ~length:16
              ~perms:Perms.user_data))
        ~perm:Perms.load ~addr:0 ~len:1;
      ())

let test_contains_in_range () =
  let c =
    Capability.mint ~parent:(root ()) ~base:100 ~length:10 ~perms:Perms.load
  in
  Alcotest.(check bool) "contains" true (Capability.contains c 105);
  Alcotest.(check bool) "excl limit" false (Capability.contains c 110);
  Alcotest.(check bool) "in_range" true (Capability.in_range c ~lo:100 ~hi:110);
  Alcotest.(check bool) "not in smaller" false
    (Capability.in_range c ~lo:101 ~hi:110)

(* --- Sealing --- *)

let test_sealing_rules () =
  let auth = root () in
  let c =
    Capability.mint ~parent:auth ~base:0x2000 ~length:0x10
      ~perms:Perms.(union user_code (union seal unseal))
  in
  let sealed = Capability.seal ~authority:auth c Otype.syscall_entry in
  Alcotest.(check bool) "sealed" true (Capability.is_sealed sealed);
  (* A sealed capability is immutable and non-dereferenceable. *)
  violation (fun () -> Capability.with_cursor sealed 0);
  violation (fun () ->
      Capability.check_access sealed ~perm:Perms.load ~addr:0x2000 ~len:1;
      ());
  violation (fun () -> Capability.seal ~authority:auth sealed Otype.syscall_entry);
  let unsealed = Capability.unseal ~authority:auth sealed in
  Alcotest.(check bool) "unsealed" false (Capability.is_sealed unsealed)

let test_seal_requires_authority () =
  let weak =
    Capability.mint ~parent:(root ()) ~base:0 ~length:16 ~perms:Perms.user_data
  in
  let c =
    Capability.mint ~parent:(root ()) ~base:0x10 ~length:16
      ~perms:Perms.user_code
  in
  violation (fun () -> Capability.seal ~authority:weak c Otype.syscall_entry);
  let sealed = Capability.seal ~authority:(root ()) c Otype.syscall_entry in
  violation (fun () -> Capability.unseal ~authority:weak sealed)

let test_invoke () =
  let c =
    Capability.mint ~parent:(root ()) ~base:0x3000 ~length:0x100
      ~perms:Perms.user_code
  in
  let sealed = Capability.seal ~authority:(root ()) c Otype.syscall_entry in
  let pcc = Capability.invoke sealed in
  Alcotest.(check bool) "invoke unseals" false (Capability.is_sealed pcc);
  (* Only sealed, executable capabilities can be invoked. *)
  violation (fun () -> Capability.invoke c);
  let data =
    Capability.mint ~parent:(root ()) ~base:0 ~length:16 ~perms:Perms.user_data
  in
  let sealed_data = Capability.seal ~authority:(root ()) data (Otype.fresh ()) in
  violation (fun () -> Capability.invoke sealed_data)

(* --- Relocation --- *)

let test_rebase () =
  let c =
    Capability.mint ~parent:(root ()) ~base:0x1000 ~length:0x40
      ~perms:Perms.user_data
  in
  let c = Capability.with_cursor c 0x1010 in
  let r = Capability.rebase c ~delta:0x1_0000 in
  Alcotest.(check int) "base moved" 0x11000 (Capability.base r);
  Alcotest.(check int) "cursor moved" 0x11010 (Capability.cursor r);
  Alcotest.(check int) "length kept" 0x40 (Capability.length r);
  Alcotest.(check bool) "tag kept" true (Capability.tag r);
  Alcotest.(check bool) "perms kept" true
    (Perms.equal (Capability.perms r) (Capability.perms c))

(* --- Properties --- *)

let cap_gen =
  QCheck.Gen.(
    let* base = int_range 0 0xffff in
    let* len = int_range 0 0xffff in
    let* cur = int_range 0 0x1ffff in
    return
      (Capability.with_cursor
         (Capability.mint ~parent:(Capability.root ()) ~base ~length:len
            ~perms:Perms.user_data)
         cur))

let arb_cap = QCheck.make ~print:(Format.asprintf "%a" Capability.pp) cap_gen

let prop_derived_within_parent =
  QCheck.Test.make ~name:"derived caps stay within parent bounds" ~count:300
    QCheck.(pair arb_cap (pair small_nat small_nat))
    (fun (parent, (off, len)) ->
      let base = Capability.base parent + off
      and plen = Capability.length parent in
      if off > plen || len > plen - off then true
      else
        let c =
          Capability.mint ~parent ~base ~length:len ~perms:Perms.user_data
        in
        Capability.base c >= Capability.base parent
        && Capability.limit c <= Capability.limit parent)

let prop_narrowing_chain_monotonic =
  QCheck.Test.make ~name:"narrowing chains never widen" ~count:300
    QCheck.(pair arb_cap (list_of_size Gen.(0 -- 8) (pair small_nat small_nat)))
    (fun (c0, steps) ->
      let rec go c = function
        | [] -> true
        | (off, len) :: rest ->
            let base = Capability.base c + (off mod max 1 (Capability.length c + 1)) in
            let maxlen = Capability.limit c - base in
            if maxlen < 0 then true
            else
              let len = len mod (maxlen + 1) in
              let c' = Capability.set_bounds c ~base ~length:len in
              Capability.base c' >= Capability.base c0
              && Capability.limit c' <= Capability.limit c0
              && go c' rest
      in
      go c0 steps)

let prop_rebase_preserves_shape =
  QCheck.Test.make ~name:"rebase preserves length/perms/tag" ~count:300
    QCheck.(pair arb_cap (int_range (-1000) 100000))
    (fun (c, delta) ->
      let r = Capability.rebase c ~delta in
      Capability.length r = Capability.length c
      && Capability.tag r = Capability.tag c
      && Perms.equal (Capability.perms r) (Capability.perms c)
      && Capability.cursor r - Capability.base r
         = Capability.cursor c - Capability.base c)

let qt = QCheck_alcotest.to_alcotest

let suite =
  [
    ("perms lattice", `Quick, test_perms_lattice);
    ("perms ops", `Quick, test_perms_ops);
    ("otype", `Quick, test_otype);
    ("mint basic", `Quick, test_mint_basic);
    ("mint monotonic bounds", `Quick, test_mint_monotonic_bounds);
    ("mint monotonic perms", `Quick, test_mint_monotonic_perms);
    ("mint from untagged", `Quick, test_mint_from_untagged);
    ("set_bounds narrows", `Quick, test_set_bounds_narrows);
    ("restrict_perms", `Quick, test_restrict_perms_intersects);
    ("check_access", `Quick, test_check_access);
    ("untagged access", `Quick, test_untagged_access);
    ("contains/in_range", `Quick, test_contains_in_range);
    ("sealing rules", `Quick, test_sealing_rules);
    ("seal authority", `Quick, test_seal_requires_authority);
    ("invoke", `Quick, test_invoke);
    ("rebase", `Quick, test_rebase);
    qt prop_derived_within_parent;
    qt prop_narrowing_chain_monotonic;
    qt prop_rebase_preserves_shape;
  ]
