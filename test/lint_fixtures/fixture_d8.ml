(* Seeds exactly one D8 (no-obj) violation: Obj.magic defeats the type
   system the simulation leans on. *)

let coerce x = Obj.magic x
