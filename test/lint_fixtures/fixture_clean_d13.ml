(* False-positive controls for the capability-escape analysis: every
   pattern here is legitimate and must produce zero findings.

   "cell := Some (Capability.mint ...)" in this comment is invisible. *)
module Capability = Ufork_cheri.Capability
module Page = Ufork_mem.Page
module Relocate = Ufork_core.Relocate

(* A Page store is the tag-carrying path: the scan can find it. *)
let stash page ~off parent =
  Page.store_cap page ~off
    (Capability.mint ~parent ~base:0 ~length:16 ~perms:0)

(* The relocate result flows back into the page: the §4.2 contract. *)
let fix ~owner_area ~child_base ~child_bytes page =
  Page.map_caps page (fun cap ->
      Relocate.relocate_cap ~owner_area ~child_base ~child_bytes cap)

(* Untainted heap traffic is not the linter's business. *)
let hits = ref 0
let note () = hits := !hits + 1

(* A deliberate, discharged escape that really shields one: clean. *)
let stashed = ref []

let chaos_keep parent =
  stashed := [ Capability.mint ~parent ~base:0 ~length:16 ~perms:0 ]
[@@ufork.cap_escape_ok]
