(* Seeds exactly one D9 (no-biglock) violation: a call site taking the
   legacy big kernel lock outside the kernel's own syscall plumbing. *)

let slow_path k f = Kernel.with_biglock k f
