(* Seeds exactly one D13 finding: the rebased capability is computed and
   dropped, so the child keeps the stale parent-provenance one. *)
module Relocate = Ufork_core.Relocate

let scan ~owner_area ~child_base ~child_bytes cap =
  ignore (Relocate.relocate_cap ~owner_area ~child_base ~child_bytes cap);
  cap
