(* Seeds exactly one D6 (hashtbl-order) violation: a Hashtbl.fold whose
   top-level definition neither sorts the result nor carries the
   [@ufork.order_independent] marker. *)

let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t []
