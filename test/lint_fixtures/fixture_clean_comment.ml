(* False-positive control: banned names appear only in comments,
   doc-strings, and string literals — the AST never sees them as
   identifiers, so the file must lint clean.

   Engine.advance e 5L, Meter.incr m "k", Unix.gettimeofday (),
   Obj.magic, Fdtable.dup_all t, Page.write_bytes. *)

(** Doc-string mentioning Random.self_init and Trace.gauge tr "lit" 1. *)
let banner = "Engine.advance / Obj.magic / Hashtbl.iter are just text here"
