(* Seeds exactly one D10 (lock-order) violation: a direct hierarchy
   inversion — the uproc table acquired while holding the stats lock,
   which the hierarchy places innermost. *)

let backwards k =
  Kernel.with_stats k (fun () ->
      Kernel.with_uproc_table k (fun () -> ()))
