(* Alias-aware positive: the inversion hides behind a module alias —
   a pt-shard taken while the frame pool is held, which the hierarchy
   orders the other way around. Still exactly one D10 finding. *)

module K = Kernel

let hidden k u =
  K.with_frame_pool k ~frames:1 (fun () ->
      K.with_pt_shard k u (fun () -> ()))
