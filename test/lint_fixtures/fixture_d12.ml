(* Seeds exactly one D12 (hb-publish-discipline) violation: a workload
   publishing a fabricated ordering fact straight onto the bus — the
   race detector, lockdep and the causal analyzer would all take it as
   ground truth. *)

let fake_wake target = Ufork_util.Hb.emit (Ufork_util.Hb.Wake { by = 0; target })
