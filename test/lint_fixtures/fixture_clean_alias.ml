(* False-positive control: an alias that does NOT point at a banned
   module. [Est.advance] resolves to Estimate.advance, which no rule
   bans; a name-blind grep for ".advance" would flag it. *)

module Est = Estimate

let step e = Est.advance e
