(* Seeds exactly one D2 (memops-discipline) violation: a raw page byte
   copy outside lib/mem / lib/core/memops.ml. *)

let snoop page = Page.read_bytes page 0 16
