(* Seeds exactly one D7 (no-poly-compare-identity) violation:
   polymorphic (=) on the identity-bearing [frame] field. *)

let shares_frame a b = a.frame = b.frame
