(* False-positive controls for D6: a fold discharged by a sort in the
   same top-level definition, and an iter carrying the
   [@ufork.order_independent] marker. *)

let sorted_keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort compare

let reset t = (Hashtbl.iter (fun _ r -> r := 0) t [@ufork.order_independent])
