(* Clean control for D10: hierarchy-ordered kernel-lock nesting, an
   ascending constant-index shard pair, and a custom lock pair whose
   nesting order is declared with a checked annotation. Zero findings. *)

type locks = { pt_shards : Sync.Rlock.t array }

let listener_lock = Sync.Rlock.create ~name:"lock.net.listener" ()
let conn_lock = Sync.Rlock.create ~name:"lock.net.conn" ()

let ordered k =
  Kernel.with_uproc_table k (fun () ->
      Kernel.with_fd_tables k (fun () ->
          Kernel.with_stats k (fun () -> ())))

let ascending s =
  Sync.Rlock.with_lock s.pt_shards.(0) (fun () ->
      Sync.Rlock.with_lock s.pt_shards.(1) (fun () -> ()))

let accept () =
  Sync.Rlock.with_lock listener_lock (fun () ->
      Sync.Rlock.with_lock conn_lock (fun () -> ()))
[@@ufork.lock_order "lock.net.listener < lock.net.conn"]
