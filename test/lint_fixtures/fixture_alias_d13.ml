(* The alias-aware variant: the relocate_cap result escapes through a
   module alias and an Option wrapper into a ref cell. *)
module R = Ufork_core.Relocate

let cell = ref None

let keep ~owner_area ~child_base ~child_bytes cap =
  cell := Some (R.relocate_cap ~owner_area ~child_base ~child_bytes cap)
