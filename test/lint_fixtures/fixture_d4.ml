(* Seeds exactly one D4 (gauge-key-constant) violation: Trace.gauge
   called with an ad-hoc string literal instead of a named constant. *)

let record tr = Trace.gauge tr "my.adhoc.key" 3
