(* Seeds exactly one D10 (lock-order) violation: a page-table shard
   pair acquired at constant indices in descending order. *)

type locks = { pt_shards : Sync.Rlock.t array }

let descending s =
  Sync.Rlock.with_lock s.pt_shards.(1) (fun () ->
      Sync.Rlock.with_lock s.pt_shards.(0) (fun () -> ()))
