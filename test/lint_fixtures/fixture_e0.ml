(* Seeds exactly one E0 (parse-error) finding: this file deliberately
   does not parse. *)

let = = (
