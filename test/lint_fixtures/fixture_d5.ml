(* Seeds exactly one D5 (no-wall-clock) violation: a wall-clock read in
   simulation code breaks golden replay. *)

let now () = Unix.gettimeofday ()
