(* False-positive control for D12: consuming the bus is open to
   everyone — subscribing a handler, polling the arming state, and
   reading the current thread id are not publications. A banned name in
   a comment (Hb.emit) must not fire either. *)

let watch handler = Ufork_util.Hb.subscribe handler
let armed () = Ufork_util.Hb.on ()
let me () = Ufork_util.Hb.tid ()
