(* Seeds exactly one D1 (charging-discipline) violation: a direct
   Engine.advance outside lib/sim bypasses the typed event bus. *)

let tick engine = Ufork_sim.Engine.advance engine 5L
