(* Seeds exactly one D13 finding: a minted capability stored into an
   OCaml-heap Hashtbl — a shadow copy the §4.2 tag scan can never find.
   The name "Capability.mint" in this comment must not trip anything. *)
module Capability = Ufork_cheri.Capability

let table : (int, Capability.t) Hashtbl.t = Hashtbl.create 8

let stash parent base =
  let c = Capability.mint ~parent ~base ~length:16 ~perms:0 in
  Hashtbl.replace table base c
