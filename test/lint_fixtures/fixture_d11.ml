(* Seeds exactly one D11 (interned-emission) violation: the string-keyed
   Meter.incr shim re-hashes its key on every call — emission sites
   outside lib/sim must intern once and go through the typed bus. *)

let bump meter = Ufork_sim.Meter.incr meter "fork.count"
