(* Seeds exactly one D13 finding: root-derived authority in application
   code (the fixture is linted under a lib/workload path). The root cap
   flows through with_cursor, which preserves its authority. *)
module Capability = Ufork_cheri.Capability
module Kernel = Ufork_sas.Kernel

let grant k got_addr =
  Capability.with_cursor (Kernel.root_cap k) got_addr
