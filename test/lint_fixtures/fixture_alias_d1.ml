(* Alias-aware positive: the banned call hides behind a module alias.
   Still exactly one D1 finding. *)

module En = Engine

let tick e = En.advance e 5L
