(* Open-aware positive: the banned call is a bare identifier made
   visible by an [open]. Still exactly one D5 finding. *)

open Random

let roll () = int 6
