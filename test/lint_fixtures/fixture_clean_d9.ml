(* False-positive control for D9: the sharded per-resource helpers are
   the sanctioned replacements and must not match, and a banned name in
   a comment — Kernel.with_biglock — is invisible to the AST linter. *)

let table_op k f = Kernel.with_uproc_table k f
let fd_op k f = Kernel.with_fd_tables k f
let stat_op k f = Kernel.with_stats k f
