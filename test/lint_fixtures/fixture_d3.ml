(* Seeds exactly one D3 (fork-spine-discipline) violation: a second
   descriptor-table duplication site outside the fork spine. *)

let shadow_fork table = Fdtable.dup_all table
