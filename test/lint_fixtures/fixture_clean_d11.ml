(* False-positive control for D11: string-keyed READS are fine (the
   interning discipline only covers emission), and registering a key
   with Meter.intern at setup is the blessed path. Both must lint
   clean. *)

let read meter = Ufork_sim.Meter.get meter "fork.count"
let register meter = Ufork_sim.Meter.intern meter "fork.count"
