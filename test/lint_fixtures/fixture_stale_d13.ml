(* Seeds exactly one D13 finding: a discharge annotation that shields no
   actual capability escape. The annotations are checked, not trusted —
   dead discharges would silently excuse future leaks. *)
let counter = ref 0

let bump () = counter := !counter + 1 [@@ufork.cap_escape_ok]
