(* Tests for μFork itself: relocation, CoW/CoA/CoPA semantics, isolation,
   and the §4.3 security invariant (no parent capability ever leaks to a
   child). *)

module Addr = Ufork_mem.Addr
module Page = Ufork_mem.Page
module Phys = Ufork_mem.Phys
module Pte = Ufork_mem.Pte
module Page_table = Ufork_mem.Page_table
module Capability = Ufork_cheri.Capability
module Perms = Ufork_cheri.Perms
module Meter = Ufork_sim.Meter
module Config = Ufork_sas.Config
module Image = Ufork_sas.Image
module Api = Ufork_sas.Api
module Uproc = Ufork_sas.Uproc
module Kernel = Ufork_sas.Kernel
module Strategy = Ufork_core.Strategy
module Relocate = Ufork_core.Relocate
module Fork = Ufork_core.Fork
module Os = Ufork_core.Os
module Prng = Ufork_util.Prng

let run_os ?(cores = 4) ?(strategy = Strategy.Copa) ?config ?proactive
    ?(image = Image.hello) f =
  let os = Os.boot ~cores ?config ~strategy ?proactive () in
  let result = ref None in
  let _ = Os.start os ~image (fun api -> result := Some (f os api)) in
  Os.run os;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "init process did not complete"

(* --- Relocate unit tests --- *)

let test_relocate_cap () =
  let owner_area a =
    if a >= 0x1000 && a < 0x2000 then Some (0x1000, 0x1000)
    else if a >= 0x9000 && a < 0xa000 then Some (0x9000, 0x1000)
    else None
  in
  let child_base = 0x9000 and child_bytes = 0x1000 in
  let parent_cap =
    Capability.mint ~parent:(Capability.root ()) ~base:0x1100 ~length:0x10
      ~perms:Perms.user_data
  in
  let r = Relocate.relocate_cap ~owner_area ~child_base ~child_bytes parent_cap in
  Alcotest.(check int) "rebased into child" 0x9100 (Capability.base r);
  (* Already-child capabilities are untouched. *)
  let child_cap =
    Capability.mint ~parent:(Capability.root ()) ~base:0x9100 ~length:0x10
      ~perms:Perms.user_data
  in
  Alcotest.(check bool) "child cap unchanged" true
    (Capability.equal child_cap
       (Relocate.relocate_cap ~owner_area ~child_base ~child_bytes child_cap));
  (* Unknown-owner capabilities lose their tag (never leak authority). *)
  let wild =
    Capability.mint ~parent:(Capability.root ()) ~base:0x5000 ~length:0x10
      ~perms:Perms.user_data
  in
  Alcotest.(check bool) "dangling cleared" false
    (Capability.tag
       (Relocate.relocate_cap ~owner_area ~child_base ~child_bytes wild))

let test_relocate_page () =
  let page = Page.create () in
  let mk base =
    Capability.mint ~parent:(Capability.root ()) ~base ~length:16
      ~perms:Perms.user_data
  in
  Page.store_cap page ~off:0 (mk 0x1000);
  Page.store_cap page ~off:64 (mk 0x9100);
  Page.write_u64 page ~off:128 0x1008L (* an integer that looks like a ptr *);
  let owner_area a =
    if a >= 0x1000 && a < 0x2000 then Some (0x1000, 0x1000)
    else if a >= 0x9000 && a < 0xa000 then Some (0x9000, 0x1000)
    else None
  in
  let outcome =
    Relocate.relocate_page ~owner_area ~child_base:0x9000 ~child_bytes:0x1000
      page
  in
  Alcotest.(check int) "scanned whole page" 256 outcome.Relocate.granules_scanned;
  Alcotest.(check int) "one relocated" 1 outcome.Relocate.relocated;
  Alcotest.(check int) "moved" 0x9000 (Capability.base (Page.load_cap page ~off:0));
  Alcotest.(check int) "kept" 0x9100 (Capability.base (Page.load_cap page ~off:64));
  (* The integer was not misidentified as a pointer (tag discipline). *)
  Alcotest.(check int64) "integer untouched" 0x1008L (Page.read_u64 page ~off:128)

(* The common two-area layout for the edge-case tests: a parent area at
   0x1000 and a child area at 0x9000, one page each. *)
let edge_owner_area a =
  if a >= 0x1000 && a < 0x2000 then Some (0x1000, 0x1000)
  else if a >= 0x9000 && a < 0xa000 then Some (0x9000, 0x1000)
  else None

let edge_mk base =
  Capability.mint ~parent:(Capability.root ()) ~base ~length:16
    ~perms:Perms.user_data

let test_relocate_page_zero_tag () =
  (* The zero-tag fast path: a page of raw data (including integers that
     look like parent pointers) is scanned but nothing moves. *)
  let page = Page.create () in
  Page.write_u64 page ~off:0 0x1008L;
  Page.write_u64 page ~off:(Addr.page_size - 8) 0x1ff0L;
  let outcome =
    Relocate.relocate_page ~owner_area:edge_owner_area ~child_base:0x9000
      ~child_bytes:0x1000 page
  in
  Alcotest.(check int) "scanned" Addr.granules_per_page
    outcome.Relocate.granules_scanned;
  Alcotest.(check int) "nothing relocated" 0 outcome.Relocate.relocated;
  Alcotest.(check int) "still untagged" 0 (Page.tagged_count page);
  Alcotest.(check int64) "raw data untouched" 0x1008L
    (Page.read_u64 page ~off:0)

let test_relocate_page_dangling_clear () =
  (* §4.3: a capability whose owner cannot be determined is tag-cleared —
     the authority must never follow the fork. The raw cursor bytes stay
     so integer loads still see the old address. *)
  let page = Page.create () in
  Page.store_cap page ~off:32 (edge_mk 0x5000);
  let outcome =
    Relocate.relocate_page ~owner_area:edge_owner_area ~child_base:0x9000
      ~child_bytes:0x1000 page
  in
  Alcotest.(check int) "tag-clear counts as a relocation" 1
    outcome.Relocate.relocated;
  Alcotest.(check bool) "tag gone" false (Page.tag_at page ~off:32);
  Alcotest.(check bool) "load yields untagged" false
    (Capability.tag (Page.load_cap page ~off:32));
  Alcotest.(check int64) "cursor bytes preserved" 0x5000L
    (Page.read_u64 page ~off:32)

let test_relocate_cap_last_granule () =
  (* A capability whose cursor sits in the last 16-byte granule of the
     page — and whose bounds end exactly at the area's end — must rebase
     without tripping the bounds checks on either side. *)
  let last = Addr.page_size - Addr.granule_size in
  let page = Page.create () in
  Page.store_cap page ~off:last (edge_mk (0x1000 + last));
  let outcome =
    Relocate.relocate_page ~owner_area:edge_owner_area ~child_base:0x9000
      ~child_bytes:0x1000 page
  in
  Alcotest.(check int) "one relocated" 1 outcome.Relocate.relocated;
  let cap = Page.load_cap page ~off:last in
  Alcotest.(check bool) "still tagged" true (Capability.tag cap);
  Alcotest.(check int) "base at the child's last granule" (0x9000 + last)
    (Capability.base cap);
  Alcotest.(check int) "cursor followed" (0x9000 + last)
    (Capability.cursor cap)

(* --- Fork semantics --- *)

let test_fork_pids_and_wait () =
  let pid, wpid, status =
    run_os (fun _os api ->
        let child = api.Api.fork (fun capi -> capi.Api.exit 42) in
        let wpid, status = api.Api.wait () in
        (child, wpid, status))
  in
  Alcotest.(check int) "wait returns child pid" pid wpid;
  Alcotest.(check int) "status" 42 status

let test_child_getpid_differs () =
  let parent_pid, child_pid =
    run_os (fun _os api ->
        let seen = ref 0 in
        ignore
          (api.Api.fork (fun capi ->
               seen := capi.Api.getpid ();
               capi.Api.exit 0));
        ignore (api.Api.wait ());
        (api.Api.getpid (), !seen))
  in
  Alcotest.(check bool) "distinct pids" true (parent_pid <> child_pid)

let test_normal_return_is_exit0 () =
  let status =
    run_os (fun _os api ->
        ignore (api.Api.fork (fun _capi -> ()));
        snd (api.Api.wait ()))
  in
  Alcotest.(check int) "implicit exit 0" 0 status

let fork_isolation strategy =
  run_os ~strategy (fun _os api ->
      let c = api.Api.malloc 64 in
      api.Api.write_bytes c ~off:0 (Bytes.of_string "original");
      api.Api.got_set 0 c;
      ignore
        (api.Api.fork (fun capi ->
             let c' = capi.Api.got_get 0 in
             (* Child sees the parent's data... *)
             let seen = Bytes.to_string (capi.Api.read_bytes c' ~off:0 ~len:8) in
             (* ...then overwrites its own copy. *)
             capi.Api.write_bytes c' ~off:0 (Bytes.of_string "CLOBBER!");
             capi.Api.exit (if seen = "original" then 0 else 1)));
      let _, status = api.Api.wait () in
      let mine = Bytes.to_string (api.Api.read_bytes c ~off:0 ~len:8) in
      (status, mine))

let test_isolation_copa () =
  let status, mine = fork_isolation Strategy.Copa in
  Alcotest.(check int) "child saw snapshot" 0 status;
  Alcotest.(check string) "parent unaffected" "original" mine

let test_isolation_coa () =
  let status, mine = fork_isolation Strategy.Coa in
  Alcotest.(check int) "child saw snapshot" 0 status;
  Alcotest.(check string) "parent unaffected" "original" mine

let test_isolation_full () =
  let status, mine = fork_isolation Strategy.Full_copy in
  Alcotest.(check int) "child saw snapshot" 0 status;
  Alcotest.(check string) "parent unaffected" "original" mine

let test_parent_write_isolated_from_child () =
  (* Inverse direction: parent writes after fork; the child must keep the
     snapshot. Parent and child synchronize through a pipe so the
     ordering is deterministic. *)
  let ok =
    run_os (fun _os api ->
        let c = api.Api.malloc 64 in
        api.Api.write_bytes c ~off:0 (Bytes.of_string "before");
        api.Api.got_set 0 c;
        let rfd, wfd = api.Api.pipe () in
        ignore
          (api.Api.fork (fun capi ->
               (* Wait until the parent has clobbered its copy. *)
               ignore (capi.Api.read rfd 1);
               let c' = capi.Api.got_get 0 in
               let seen = Bytes.to_string (capi.Api.read_bytes c' ~off:0 ~len:6) in
               capi.Api.exit (if seen = "before" then 0 else 1)));
        api.Api.write_bytes c ~off:0 (Bytes.of_string "after!");
        ignore (api.Api.write wfd (Bytes.of_string "g"));
        let _, status = api.Api.wait () in
        status = 0)
  in
  Alcotest.(check bool) "child keeps fork-time snapshot" true ok

let test_reloc_of_register_caps () =
  let ok =
    run_os (fun _os api ->
        let c = api.Api.malloc 32 in
        api.Api.write_u64 c ~off:0 7L;
        ignore
          (api.Api.fork (fun capi ->
               (* [c] captured from the parent scope is a parent-area
                  capability; reloc models the register relocation. *)
               let mine = capi.Api.reloc c in
               let moved = Capability.base mine <> Capability.base c in
               let v = capi.Api.read_u64 mine ~off:0 in
               capi.Api.exit (if moved && v = 7L then 0 else 1)));
        snd (api.Api.wait ()) = 0)
  in
  Alcotest.(check bool) "register caps relocated" true ok

let test_child_cannot_use_parent_cap () =
  (* Under isolation, a child dereferencing the *unrelocated* parent
     capability must observe its own (copied) memory or be stopped — it
     must never read fresh parent writes. With bounded user capabilities
     the parent cap points at parent memory, which still holds the
     snapshot; the key check is that the relocated and raw views agree at
     fork time but diverge from the parent's later writes. *)
  let ok =
    run_os (fun _os api ->
        let c = api.Api.malloc 16 in
        api.Api.write_u64 c ~off:0 1L;
        let rfd, wfd = api.Api.pipe () in
        ignore
          (api.Api.fork (fun capi ->
               ignore (capi.Api.read rfd 1);
               let v = capi.Api.read_u64 (capi.Api.reloc c) ~off:0 in
               capi.Api.exit (if v = 1L then 0 else 1)));
        api.Api.write_u64 c ~off:0 2L;
        ignore (api.Api.write wfd (Bytes.of_string "g"));
        snd (api.Api.wait ()) = 0)
  in
  Alcotest.(check bool) "snapshot semantics" true ok

let test_fd_inheritance () =
  let got =
    run_os (fun _os api ->
        let rfd, wfd = api.Api.pipe () in
        ignore
          (api.Api.fork (fun capi ->
               ignore (capi.Api.write wfd (Bytes.of_string "from child"));
               capi.Api.exit 0));
        let b = api.Api.read rfd 10 in
        ignore (api.Api.wait ());
        Bytes.to_string b)
  in
  Alcotest.(check string) "pipe across fork" "from child" got

let test_nested_fork () =
  let ok =
    run_os (fun _os api ->
        let c = api.Api.malloc 32 in
        api.Api.write_u64 c ~off:0 99L;
        api.Api.got_set 0 c;
        ignore
          (api.Api.fork (fun capi ->
               let mine = capi.Api.got_get 0 in
               capi.Api.write_u64 mine ~off:8 1L;
               ignore
                 (capi.Api.fork (fun gapi ->
                      let g = gapi.Api.got_get 0 in
                      let v0 = gapi.Api.read_u64 g ~off:0 in
                      let v8 = gapi.Api.read_u64 g ~off:8 in
                      gapi.Api.exit (if v0 = 99L && v8 = 1L then 0 else 1)));
               let _, st = capi.Api.wait () in
               capi.Api.exit st));
        snd (api.Api.wait ()) = 0)
  in
  Alcotest.(check bool) "grandchild sees chained relocations" true ok

let test_sibling_forks () =
  let ok =
    run_os (fun _os api ->
        let c = api.Api.malloc 16 in
        api.Api.write_u64 c ~off:0 5L;
        api.Api.got_set 0 c;
        let spawn v =
          api.Api.fork (fun capi ->
              let mine = capi.Api.got_get 0 in
              capi.Api.write_u64 mine ~off:0 v;
              capi.Api.exit (Int64.to_int (capi.Api.read_u64 mine ~off:0)))
        in
        let _a = spawn 10L and _b = spawn 20L in
        let _, s1 = api.Api.wait () in
        let _, s2 = api.Api.wait () in
        let parent_v = api.Api.read_u64 c ~off:0 in
        List.sort compare [ s1; s2 ] = [ 10; 20 ] && parent_v = 5L)
  in
  Alcotest.(check bool) "siblings isolated" true ok

(* --- Copy behaviour per strategy --- *)

let copies_during api os (f : unit -> unit) =
  ignore api;
  let m = Kernel.meter (Os.kernel os) in
  let before =
    Meter.get m "page_copy_child" + Meter.get m "claim_in_place"
  in
  f ();
  Meter.get m "page_copy_child" + Meter.get m "claim_in_place" - before

let test_copa_data_read_does_not_copy () =
  let reads, caploads =
    run_os ~strategy:Strategy.Copa (fun os api ->
        let c = api.Api.malloc (8 * 4096) in
        (* Fill with raw data only. *)
        for i = 0 to 7 do
          api.Api.write_bytes c ~off:(i * 4096) (Bytes.make 64 'd')
        done;
        let header = api.Api.malloc 32 in
        api.Api.store_cap header ~off:0 c;
        api.Api.got_set 0 header;
        let out = ref (0, 0) in
        ignore
          (api.Api.fork (fun capi ->
               let h = capi.Api.got_get 0 in
               (* Pure data reads through the relocated register cap: *)
               let data = capi.Api.reloc c in
               let r =
                 copies_during capi os (fun () ->
                     for i = 0 to 7 do
                       ignore (capi.Api.read_bytes data ~off:(i * 4096) ~len:64)
                     done)
               in
               (* A capability load through the shared header page: *)
               let l =
                 copies_during capi os (fun () ->
                     ignore (capi.Api.load_cap h ~off:0))
               in
               out := (r, l);
               capi.Api.exit 0));
        ignore (api.Api.wait ());
        !out)
  in
  Alcotest.(check int) "data reads stay shared (CoPA)" 0 reads;
  Alcotest.(check bool) "cap load copies exactly its page" true (caploads >= 1)

let test_coa_read_copies () =
  let reads =
    run_os ~strategy:Strategy.Coa (fun os api ->
        let c = api.Api.malloc (4 * 4096) in
        api.Api.write_bytes c ~off:0 (Bytes.make 64 'd');
        let out = ref 0 in
        ignore
          (api.Api.fork (fun capi ->
               let data = capi.Api.reloc c in
               out :=
                 copies_during capi os (fun () ->
                     for i = 0 to 3 do
                       ignore (capi.Api.read_bytes data ~off:(i * 4096) ~len:1)
                     done);
               capi.Api.exit 0));
        ignore (api.Api.wait ());
        !out)
  in
  Alcotest.(check int) "CoA copies on every first read" 4 reads

let test_full_copy_no_child_faults () =
  let faults =
    run_os ~strategy:Strategy.Full_copy (fun os api ->
        let c = api.Api.malloc (4 * 4096) in
        api.Api.write_bytes c ~off:0 (Bytes.make 64 'd');
        let m = Kernel.meter (Os.kernel os) in
        ignore
          (api.Api.fork (fun capi ->
               let before = Meter.get m "fault" in
               let data = capi.Api.reloc c in
               for i = 0 to 3 do
                 ignore (capi.Api.read_bytes data ~off:(i * 4096) ~len:1);
                 capi.Api.write_bytes data ~off:(i * 4096) (Bytes.make 1 'x')
               done;
               capi.Api.exit (Meter.get m "fault" - before)));
        snd (api.Api.wait ()))
  in
  Alcotest.(check int) "no faults after a full copy" 0 faults

let test_claim_in_place () =
  (* Parent CoW-copies a page away; the child's later capability load finds
     refcount 1 and claims the frame without copying. *)
  let claims =
    run_os ~strategy:Strategy.Copa (fun os api ->
        let c = api.Api.malloc 4096 in
        api.Api.store_cap c ~off:0 (api.Api.malloc 16);
        api.Api.got_set 0 c;
        let rfd, wfd = api.Api.pipe () in
        let m = Kernel.meter (Os.kernel os) in
        ignore
          (api.Api.fork (fun capi ->
               ignore (capi.Api.read rfd 1);
               let before = Meter.get m "claim_in_place" in
               ignore (capi.Api.load_cap (capi.Api.reloc c) ~off:0);
               capi.Api.exit (Meter.get m "claim_in_place" - before)));
        (* Parent write forces its own private copy first. *)
        api.Api.write_bytes c ~off:64 (Bytes.make 1 'p');
        ignore (api.Api.write wfd (Bytes.of_string "g"));
        snd (api.Api.wait ()))
  in
  Alcotest.(check int) "claimed in place" 1 claims

let test_fork_latency_gauge () =
  let lat =
    run_os (fun os api ->
        ignore (api.Api.fork (fun capi -> capi.Api.exit 0));
        ignore (api.Api.wait ());
        Fork.last_fork_latency (Os.kernel os))
  in
  Alcotest.(check bool) "gauge recorded" true (lat > 0L)

let test_proactive_off_still_correct () =
  let ok =
    run_os ~proactive:false (fun _os api ->
        let c = api.Api.malloc 16 in
        api.Api.write_u64 c ~off:0 123L;
        api.Api.got_set 0 c;
        ignore
          (api.Api.fork (fun capi ->
               let v = capi.Api.read_u64 (capi.Api.got_get 0) ~off:0 in
               capi.Api.exit (if v = 123L then 0 else 1)));
        snd (api.Api.wait ()) = 0)
  in
  Alcotest.(check bool) "lazy GOT still correct under CoPA" true ok

let test_segfault_on_wild_access () =
  (* Two layers stop invalid accesses: a capability outside the μprocess
     area cannot even exist there (Violation — see the confinement note in
     Kernel.build_api), and an access through an in-area capability to an
     unmapped guard page is a real segfault. Both capabilities are
     manufactured with kernel authority; user code cannot forge them. *)
  let foreign_blocked, guard_faults =
    run_os (fun os api ->
        let wild =
          Capability.mint ~parent:(Capability.root ()) ~base:128 ~length:16
            ~perms:Perms.user_data
        in
        let foreign =
          match api.Api.read_bytes wild ~off:0 ~len:1 with
          | exception Capability.Violation _ -> true
          | _ -> false
        in
        let u = Option.get (Kernel.find_uproc (Os.kernel os) 1) in
        let guard_addr =
          u.Uproc.regions.Uproc.got_base + u.Uproc.regions.Uproc.got_bytes
        in
        let guard_cap =
          Capability.mint ~parent:(Capability.root ()) ~base:guard_addr
            ~length:16 ~perms:Perms.user_data
        in
        let guard =
          match api.Api.read_bytes guard_cap ~off:0 ~len:1 with
          | exception Fork.Segfault _ -> true
          | _ -> false
        in
        (foreign, guard))
  in
  Alcotest.(check bool) "foreign capability rejected" true foreign_blocked;
  Alcotest.(check bool) "guard page segfaults" true guard_faults

let test_child_allocations_independent () =
  let ok =
    run_os (fun _os api ->
        let c = api.Api.malloc 64 in
        api.Api.got_set 0 c;
        ignore
          (api.Api.fork (fun capi ->
               (* Fresh child allocation lands in the child's area and does
                  not alias the inherited block. *)
               let fresh = capi.Api.malloc 64 in
               let inherited = capi.Api.got_get 0 in
               capi.Api.write_bytes fresh ~off:0 (Bytes.make 64 'f');
               let clean =
                 Bytes.to_string (capi.Api.read_bytes inherited ~off:0 ~len:1)
                 = "\000"
               in
               (* The child can free the inherited block: the allocator
                  mirror was rebased. *)
               capi.Api.free inherited;
               capi.Api.exit (if clean then 0 else 1)));
        snd (api.Api.wait ()) = 0)
  in
  Alcotest.(check bool) "child allocator independent" true ok

let test_area_reuse_after_reap () =
  let distinct_areas =
    run_os (fun os api ->
        let base pid =
          match Kernel.find_uproc (Os.kernel os) pid with
          | Some u -> u.Uproc.area_base
          | None -> -1
        in
        let p1 = api.Api.fork (fun capi -> capi.Api.exit 0) in
        let b1 = base p1 in
        ignore (api.Api.wait ());
        let p2 = api.Api.fork (fun capi -> capi.Api.exit 0) in
        let b2 = base p2 in
        ignore (api.Api.wait ());
        (b1, b2))
  in
  let b1, b2 = distinct_areas in
  Alcotest.(check int) "area recycled after reap" b1 b2

(* --- The §4.3 security invariant, as a property ---

   Build a random capability graph in the parent, fork, make the child
   walk it completely. Then every tagged capability stored in any page
   mapped PRIVATE in the child's area must target the child's area. *)

let build_graph api (g : Prng.t) n =
  let blocks =
    Array.init n (fun i ->
        let c = api.Api.malloc 128 in
        api.Api.write_u64 c ~off:0 (Int64.of_int (i * 1000));
        c)
  in
  Array.iteri
    (fun _i c ->
      (* Two outgoing edges at granules 1 and 2. *)
      let tgt1 = blocks.(Prng.int g n) in
      api.Api.store_cap c ~off:16 tgt1;
      if Prng.bool g then api.Api.store_cap c ~off:32 blocks.(Prng.int g n))
    blocks;
  let root = api.Api.malloc ((n + 1) * 16) in
  Array.iteri (fun i c -> api.Api.store_cap root ~off:((i + 1) * 16) c) blocks;
  api.Api.write_u64 root ~off:0 (Int64.of_int n);
  api.Api.got_set 0 root;
  Array.map (fun c -> Capability.base c) blocks

let walk_graph api =
  let root = api.Api.got_get 0 in
  let n = Int64.to_int (api.Api.read_u64 root ~off:0) in
  let sum = ref 0L in
  for i = 1 to n do
    let b = api.Api.load_cap root ~off:(i * 16) in
    sum := Int64.add !sum (api.Api.read_u64 b ~off:0);
    let e1 = api.Api.load_cap b ~off:16 in
    sum := Int64.add !sum (api.Api.read_u64 e1 ~off:0);
    let e2 = api.Api.load_cap b ~off:32 in
    if Capability.tag e2 then sum := Int64.add !sum (api.Api.read_u64 e2 ~off:0)
  done;
  !sum

(* Scan every private page of [u] for stored capabilities escaping the
   area. *)
let leaked_caps kernel (u : Uproc.t) =
  ignore kernel;
  let leaks = ref 0 in
  let vpn0 = Addr.vpn_of_addr u.Uproc.area_base in
  let count = Addr.bytes_to_pages u.Uproc.area_bytes in
  Page_table.iter_range u.Uproc.pt ~vpn:vpn0 ~count (fun _v pte ->
      if pte.Pte.share = Pte.Private then
        Page.iter_caps (Phys.page pte.Pte.frame) (fun _g cap ->
            if
              Capability.tag cap
              && not
                   (Capability.in_range cap ~lo:u.Uproc.area_base
                      ~hi:(u.Uproc.area_base + u.Uproc.area_bytes))
            then incr leaks));
  !leaks

let graph_invariant strategy seed =
  run_os ~strategy (fun os api ->
      let g = Prng.create ~seed in
      let n = 3 + Prng.int g 12 in
      ignore (build_graph api g n);
      let parent_sum = walk_graph api in
      let out = ref None in
      let child_pid =
        api.Api.fork (fun capi ->
            let child_sum = walk_graph capi in
            out := Some child_sum;
            capi.Api.exit 0)
      in
      let _ = api.Api.wait () in
      let leaks =
        match Kernel.find_uproc (Os.kernel os) child_pid with
        | Some child -> leaked_caps (Os.kernel os) child
        | None -> -1
      in
      (parent_sum, !out, leaks))

let prop_no_leaks strategy name =
  QCheck.Test.make ~name ~count:25 QCheck.int64 (fun seed ->
      let parent_sum, child_sum, leaks = graph_invariant strategy seed in
      child_sum = Some parent_sum && leaks = 0)

let test_strategies_agree () =
  (* All three strategies expose the same semantics to the child. *)
  let sums =
    List.map
      (fun s ->
        let p, c, _ = graph_invariant s 4242L in
        (p, c))
      Strategy.all
  in
  match sums with
  | (p1, c1) :: rest ->
      Alcotest.(check bool) "self consistent" true (c1 = Some p1);
      List.iter
        (fun (p, c) ->
          Alcotest.(check bool) "same as CoPA" true (p = p1 && c = c1))
        rest
  | [] -> Alcotest.fail "no strategies"

let qt = QCheck_alcotest.to_alcotest

let suite =
  [
    ("relocate cap", `Quick, test_relocate_cap);
    ("relocate page", `Quick, test_relocate_page);
    ("relocate page: zero-tag fast path", `Quick, test_relocate_page_zero_tag);
    ("relocate page: dangling owner tag-clear", `Quick,
     test_relocate_page_dangling_clear);
    ("relocate cap: last granule of the page", `Quick,
     test_relocate_cap_last_granule);
    ("fork pids and wait", `Quick, test_fork_pids_and_wait);
    ("child getpid differs", `Quick, test_child_getpid_differs);
    ("normal return exits 0", `Quick, test_normal_return_is_exit0);
    ("isolation CoPA", `Quick, test_isolation_copa);
    ("isolation CoA", `Quick, test_isolation_coa);
    ("isolation full copy", `Quick, test_isolation_full);
    ("parent writes isolated", `Quick, test_parent_write_isolated_from_child);
    ("register caps relocated", `Quick, test_reloc_of_register_caps);
    ("snapshot semantics", `Quick, test_child_cannot_use_parent_cap);
    ("fd inheritance", `Quick, test_fd_inheritance);
    ("nested fork", `Quick, test_nested_fork);
    ("sibling forks", `Quick, test_sibling_forks);
    ("CoPA data reads shared", `Quick, test_copa_data_read_does_not_copy);
    ("CoA reads copy", `Quick, test_coa_read_copies);
    ("full copy no faults", `Quick, test_full_copy_no_child_faults);
    ("claim in place", `Quick, test_claim_in_place);
    ("fork latency gauge", `Quick, test_fork_latency_gauge);
    ("lazy GOT correct", `Quick, test_proactive_off_still_correct);
    ("wild access segfaults", `Quick, test_segfault_on_wild_access);
    ("child allocator independent", `Quick, test_child_allocations_independent);
    ("area reuse after reap", `Quick, test_area_reuse_after_reap);
    ("strategies agree", `Quick, test_strategies_agree);
    qt (prop_no_leaks Strategy.Copa "no cap leaks to child (CoPA)");
    qt (prop_no_leaks Strategy.Coa "no cap leaks to child (CoA)");
    qt (prop_no_leaks Strategy.Full_copy "no cap leaks to child (full copy)");
  ]
