(* Deeper property tests cutting across subsystems: random fork trees,
   byte-stream preservation through pipes, cross-system application
   equivalence, and access atomicity under faults. *)

module Addr = Ufork_mem.Addr
module Vas = Ufork_mem.Vas
module Pte = Ufork_mem.Pte
module Phys = Ufork_mem.Phys
module Page_table = Ufork_mem.Page_table
module Capability = Ufork_cheri.Capability
module Perms = Ufork_cheri.Perms
module Page = Ufork_mem.Page
module Relocate = Ufork_core.Relocate
module Image = Ufork_sas.Image
module Api = Ufork_sas.Api
module Kernel = Ufork_sas.Kernel
module Vfs = Ufork_sas.Vfs
module Strategy = Ufork_core.Strategy
module Os = Ufork_core.Os
module System = Ufork_core.System
module Monolithic = Ufork_baselines.Monolithic
module Vmclone = Ufork_baselines.Vmclone
module Kvstore = Ufork_apps.Kvstore
module Rdb = Ufork_apps.Rdb
module Keyspace = Ufork_workload.Keyspace
module Prng = Ufork_util.Prng
module Config = Ufork_sas.Config
module Engine = Ufork_sim.Engine
module Trace = Ufork_sim.Trace
module Event = Ufork_sim.Event

let run_os ?(cores = 4) ?(strategy = Strategy.Copa) ?(image = Image.hello) f =
  let os = Os.boot ~cores ~strategy () in
  let result = ref None in
  let _ = Os.start os ~image (fun api -> result := Some (f api)) in
  Os.run os;
  match !result with
  | Some v -> v
  | None -> QCheck.Test.fail_report "process did not complete"

(* --- Random fork trees ---

   Build a tree of processes, each writing a distinct stamp into its copy
   of an inherited block. Every process must observe exactly its own
   lineage's final stamp: nobody's write may leak anywhere else. *)

let prop_fork_tree_isolation =
  QCheck.Test.make ~name:"fork trees: writes never leak across branches"
    ~count:20
    QCheck.(pair (int_range 1 3) (int_range 1 3))
    (fun (depth, width) ->
      run_os (fun api ->
          let cell = api.Api.malloc 16 in
          api.Api.write_u64 cell ~off:0 0L;
          api.Api.got_set 0 cell;
          let violations = ref 0 in
          (* Each node stamps (its pid), spawns children, then re-checks
             that its stamp is still in place after they all exit. *)
          let rec node (napi : Api.t) level =
            let c = napi.Api.got_get 0 in
            let stamp = Int64.of_int (napi.Api.getpid ()) in
            napi.Api.write_u64 c ~off:0 stamp;
            if level < depth then begin
              for _ = 1 to width do
                ignore (napi.Api.fork (fun capi -> node capi (level + 1)))
              done;
              for _ = 1 to width do
                ignore (napi.Api.wait ())
              done
            end;
            if napi.Api.read_u64 c ~off:0 <> stamp then incr violations
          in
          node api 0;
          !violations = 0))

(* --- Pipe byte-stream preservation ---

   Parent streams a random byte string to a child in random-size chunks;
   the child reads in different random-size chunks and the concatenation
   must be exact. Exercises pipe buffering, blocking, fd inheritance. *)

let prop_pipe_stream =
  QCheck.Test.make ~name:"pipes preserve byte streams across fork" ~count:20
    QCheck.(pair int64 (string_of_size Gen.(1 -- 2000)))
    (fun (seed, payload) ->
      run_os (fun api ->
          let rfd, wfd = api.Api.pipe () in
          let back_r, back_w = api.Api.pipe () in
          let g = Prng.create ~seed in
          ignore
            (api.Api.fork (fun capi ->
                 (* The child echoes everything back in its own chunks. *)
                 capi.Api.close wfd;
                 let rec pump () =
                   let n = 1 + Prng.int g 97 in
                   let b = capi.Api.read rfd n in
                   if Bytes.length b > 0 then begin
                     ignore (capi.Api.write back_w b);
                     pump ()
                   end
                 in
                 pump ();
                 capi.Api.close back_w;
                 capi.Api.exit 0));
          (* Parent writes the payload in random chunks, closes, then
             reads the echo until its own EOF. *)
          let g' = Prng.create ~seed:(Int64.add seed 1L) in
          let len = String.length payload in
          let pos = ref 0 in
          while !pos < len do
            let n = min (1 + Prng.int g' 131) (len - !pos) in
            ignore
              (api.Api.write wfd (Bytes.of_string (String.sub payload !pos n)));
            pos := !pos + n
          done;
          api.Api.close wfd;
          api.Api.close back_w;
          let echoed = Buffer.create len in
          let rec drain () =
            let b = api.Api.read back_r 100 in
            if Bytes.length b > 0 then begin
              Buffer.add_bytes echoed b;
              drain ()
            end
          in
          drain ();
          ignore (api.Api.wait ());
          Buffer.contents echoed = payload))

(* --- Cross-system application equivalence ---

   The same random operation sequence against the kvstore produces the
   same verified dump bytes on μFork and on the monolithic baseline:
   transparency (R2) as a property. *)

let apply_ops api ops =
  let kv = Kvstore.create api ~buckets:8 () in
  List.iter
    (fun (k, v) ->
      let key = Printf.sprintf "key%d" (k mod 12) in
      if v = "" then ignore (Kvstore.delete kv ~key)
      else Kvstore.set kv ~key ~value:(Bytes.of_string v))
    ops;
  ignore (Rdb.bgsave api kv ~path:"/dump.rdb")

let dump_on_ufork ops =
  let os = Os.boot () in
  let _ =
    Os.start os
      ~image:(Image.make ~heap_bytes:(1024 * 1024) "kv")
      (fun api -> apply_ops api ops)
  in
  Os.run os;
  Vfs.contents (Kernel.vfs (Os.kernel os)) "/dump.rdb"

let dump_on_monolithic ops =
  let os = Monolithic.boot () in
  let _ =
    Monolithic.start os
      ~image:(Image.make ~heap_bytes:(1024 * 1024) "kv")
      (fun api -> apply_ops api ops)
  in
  Monolithic.run os;
  Vfs.contents (Kernel.vfs (Monolithic.kernel os)) "/dump.rdb"

let prop_cross_system_equivalence =
  QCheck.Test.make
    ~name:"same app, same ops, same dump on uFork and CheriBSD" ~count:10
    QCheck.(
      list_of_size Gen.(1 -- 40) (pair small_nat (string_of_size Gen.(0 -- 60))))
    (fun ops ->
      let a = dump_on_ufork ops and b = dump_on_monolithic ops in
      (* Both parse, and byte-identical output. *)
      ignore (Rdb.verify a);
      a = b)

(* --- Access atomicity under faults ---

   A multi-page write that faults partway (read-only page in the middle)
   must not have mutated anything: Vas validates the whole span before
   moving bytes. *)

let prop_vas_failed_write_leaves_no_trace =
  QCheck.Test.make ~name:"failed multi-page writes mutate nothing" ~count:100
    QCheck.(pair (int_range 0 4095) (int_range 2 8192))
    (fun (off, len) ->
      let phys = Phys.create () in
      let pt = Page_table.create phys in
      Page_table.map pt ~vpn:1 (Pte.make (Phys.alloc phys));
      Page_table.map pt ~vpn:2 (Pte.make ~write:false (Phys.alloc phys));
      Page_table.map pt ~vpn:3 (Pte.make (Phys.alloc phys));
      let via =
        Capability.mint ~parent:(Capability.root ()) ~base:4096
          ~length:(3 * 4096) ~perms:Perms.user_data
      in
      let addr = 4096 + off in
      QCheck.assume (addr + len <= 4 * 4096);
      QCheck.assume (Addr.pages_spanned ~addr ~len >= 2 || Addr.vpn_of_addr addr = 2);
      (* Touches the read-only page 2? Then it must fault... *)
      let touches_ro = addr < 3 * 4096 && addr + len > 2 * 4096 in
      let before = Vas.kernel_read_bytes pt ~addr:4096 ~len:(3 * 4096) in
      match Vas.write_bytes pt ~via ~addr (Bytes.make len 'X') with
      | () -> not touches_ro
      | exception Vas.Fault _ ->
          (* ...and leave every byte untouched. *)
          touches_ro
          && Vas.kernel_read_bytes pt ~addr:4096 ~len:(3 * 4096) = before)

(* --- VFS vs a reference model ---

   Random open/write/seek/read/rename/unlink sequences behave like a
   simple string-map model. *)

type vfs_op =
  | Put of int * string
  | Append of int * string
  | Rename of int * int
  | Unlink of int
  | Check of int

let vfs_op_gen =
  QCheck.Gen.(
    let name = int_range 0 4 in
    frequency
      [
        (3, map2 (fun n s -> Put (n, s)) name (string_size (0 -- 50)));
        (3, map2 (fun n s -> Append (n, s)) name (string_size (0 -- 50)));
        (1, map2 (fun a b -> Rename (a, b)) name name);
        (1, map (fun n -> Unlink n) name);
        (3, map (fun n -> Check n) name);
      ])

let show_vfs_op = function
  | Put (n, s) -> Printf.sprintf "Put(%d,%S)" n s
  | Append (n, s) -> Printf.sprintf "Append(%d,%S)" n s
  | Rename (a, b) -> Printf.sprintf "Rename(%d,%d)" a b
  | Unlink n -> Printf.sprintf "Unlink(%d)" n
  | Check n -> Printf.sprintf "Check(%d)" n

let prop_vfs_model =
  QCheck.Test.make ~name:"vfs = string-map model" ~count:200
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map show_vfs_op ops))
       QCheck.Gen.(list_size (1 -- 60) vfs_op_gen))
    (fun ops ->
      let vfs = Vfs.create () in
      let model : (string, string) Hashtbl.t = Hashtbl.create 8 in
      let file n = Printf.sprintf "/f%d" n in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Put (n, s) ->
              Vfs.put vfs (file n) s;
              Hashtbl.replace model (file n) s
          | Append (n, s) ->
              let f = Vfs.open_ vfs (file n) `Append in
              ignore (Vfs.write f (Bytes.of_string s));
              Vfs.close f;
              let old =
                Option.value ~default:"" (Hashtbl.find_opt model (file n))
              in
              Hashtbl.replace model (file n) (old ^ s)
          | Rename (a, b) -> (
              match Vfs.rename vfs ~src:(file a) ~dst:(file b) with
              | () ->
                  let v = Hashtbl.find model (file a) in
                  Hashtbl.remove model (file a);
                  Hashtbl.replace model (file b) v;
                  if a = b then () (* self-rename keeps the file *)
              | exception Not_found ->
                  if Hashtbl.mem model (file a) then ok := false)
          | Unlink n -> (
              match Vfs.unlink vfs (file n) with
              | () ->
                  if not (Hashtbl.mem model (file n)) then ok := false;
                  Hashtbl.remove model (file n)
              | exception Not_found ->
                  if Hashtbl.mem model (file n) then ok := false)
          | Check n -> (
              match Vfs.contents vfs (file n) with
              | got -> (
                  match Hashtbl.find_opt model (file n) with
                  | Some want -> if got <> want then ok := false
                  | None -> ok := false)
              | exception Not_found ->
                  if Hashtbl.mem model (file n) then ok := false))
        ops;
      !ok
      && Vfs.list vfs
         = List.sort compare
             (Hashtbl.fold (fun k _ acc -> k :: acc) model []))

(* --- ASLR determinism ---

   Same seed, same layout; the simulation stays reproducible even with
   randomized bases. *)

let prop_aslr_deterministic =
  QCheck.Test.make ~name:"ASLR layouts deterministic per seed" ~count:20
    QCheck.int64
    (fun seed ->
      let bases () =
        let config = Ufork_sas.Config.with_aslr seed Ufork_sas.Config.ufork_fast in
        let os = Os.boot ~config () in
        let out = ref [] in
        let _ =
          Os.start os ~image:Image.hello (fun api ->
              for _ = 1 to 3 do
                let pid = api.Api.fork (fun capi -> capi.Api.exit 0) in
                (match Kernel.find_uproc (Os.kernel os) pid with
                | Some u -> out := u.Ufork_sas.Uproc.area_base :: !out
                | None -> ());
                ignore (api.Api.wait ())
              done)
        in
        Os.run os;
        !out
      in
      bases () = bases ())

(* --- SMP replay determinism ---

   The per-core run queues, work stealing, sharded locks and per-core
   frame freelists must not cost reproducibility: two runs with the same
   seed and core count must record bit-identical traces — every record's
   time, core, thread, pid, event and charge. Checked across flavours
   and core counts well past the default 4. *)

let smp_boot ~cores = function
  | "ufork-copa" ->
      Os.system
        (Os.boot ~cores ~config:Config.ufork_fast ~strategy:Strategy.Copa ())
  | "cheribsd" -> Monolithic.system (Monolithic.boot ~cores ())
  | "nephele" -> Vmclone.system (Vmclone.boot ~cores ())
  | s -> invalid_arg s

let smp_trace ~flavour ~cores ~seed =
  let sys = smp_boot ~cores flavour in
  Trace.set_recording (System.trace sys) true;
  ignore
    (System.start sys
       ~image:(Image.redis ~heap_bytes:(4 * 1024 * 1024))
       (fun api ->
         let store = Kvstore.create api ~buckets:64 () in
         Keyspace.populate store ~entries:12 ~value_len:2048 ~seed;
         ignore (Rdb.bgsave api store ~path:"/dump.rdb")));
  System.run sys;
  ( Engine.advanced (System.engine sys),
    List.map
      (fun (r : Trace.record) ->
        Printf.sprintf "%Ld c%d t%d %s pid%d %s %Ld" r.Trace.t r.Trace.core
          r.Trace.tid r.Trace.name r.Trace.pid
          (Event.to_key r.Trace.event)
          r.Trace.cycles)
      (Trace.records (System.trace sys)) )

let prop_smp_replay_determinism =
  QCheck.Test.make
    ~name:"same seed and core count replay bit-identical traces" ~count:12
    QCheck.(
      triple
        (oneofl [ "ufork-copa"; "cheribsd"; "nephele" ])
        (oneofl [ 1; 2; 4; 8; 16; 32; 64 ])
        int64)
    (fun (flavour, cores, seed) ->
      smp_trace ~flavour ~cores ~seed = smp_trace ~flavour ~cores ~seed)

(* --- Flat-int event codes ---

   The accounting arrays in Trace index by [Event.id], so the numbering
   is an accounting-format contract: dense, in range, injective across
   constructors, and append-only (pinned values). *)

let prop_event_id_injective =
  QCheck.Test.make ~name:"Event.id: in range, injective across constructors"
    ~count:300
    QCheck.(pair (oneofl Event.samples) (oneofl Event.samples))
    (fun (a, b) ->
      let ia = Event.id a and ib = Event.id b in
      ia >= 0
      && ia < Event.id_count
      && ib >= 0
      && ib < Event.id_count
      && (Event.to_key a = Event.to_key b) = (ia = ib))

let test_event_id_pins () =
  (* [samples] lists one representative per constructor in declaration
     order, so the id table is exactly 0 .. id_count-1 over it — and a
     few absolute pins catch a reorder of [samples] itself masking a
     renumbering. *)
  Alcotest.(check (list int))
    "ids are declaration-dense"
    (List.init Event.id_count Fun.id)
    (List.map Event.id Event.samples);
  Alcotest.(check int) "Syscall pin" 0
    (Event.id (Event.Syscall { name = "anything"; trap = true }));
  Alcotest.(check int) "Context_switch pin" 5 (Event.id Event.Context_switch);
  Alcotest.(check int) "Compute pin" 40 (Event.id (Event.Compute 1L))

(* --- Meter interning ---

   The id returned by [intern] is stable, [name] round-trips it, and
   driving one meter through the interned-id mutators and another
   through the string shim (with keys pre-registered in a different
   order) must produce identical sorted exports. *)

let prop_meter_intern_roundtrip =
  let module Meter = Ufork_sim.Meter in
  QCheck.Test.make
    ~name:"Meter: interning round-trips and matches the string API"
    ~count:200
    QCheck.(
      small_list
        (pair
           (oneofl [ "fork"; "syscall.read"; "a"; "b"; "gauge.latency" ])
           small_nat))
    (fun ops ->
      let m = Meter.create () and m' = Meter.create () in
      (* Different interning order on [m']: sorted exports must not care. *)
      List.iter
        (fun (k, _) -> ignore (Meter.intern m' k))
        (List.rev ops);
      List.iter
        (fun (k, n) ->
          let id = Meter.intern m k in
          if Meter.intern m k <> id then
            QCheck.Test.fail_report "re-interning moved the id";
          if Meter.name m id <> k then
            QCheck.Test.fail_report "Meter.name does not round-trip";
          Meter.add_id m id n;
          Meter.add m' k n)
        ops;
      Meter.to_list m = Meter.to_list m')

(* --- Domains-parallel sweeps ---

   Every sweep point owns its machine, so fanning points out across
   OCaml domains must be invisible in the results: same values, same
   order, bit-identical — including full recorded traces. *)

let prop_parmap_bit_identity =
  QCheck.Test.make
    ~name:"parmap over domains = serial map, bit-identical" ~count:6
    QCheck.(
      triple
        (oneofl [ "ufork-copa"; "cheribsd"; "nephele" ])
        (oneofl [ 1; 2; 4; 8 ])
        int64)
    (fun (flavour, cores, seed) ->
      let points =
        [
          (flavour, cores, seed);
          (flavour, max 1 (cores / 2), seed);
          ("ufork-copa", cores, Int64.add seed 1L);
        ]
      in
      let run (flavour, cores, seed) = smp_trace ~flavour ~cores ~seed in
      List.map run points
      = Ufork_workload.Experiments.parmap ~jobs:3 run points)

(* --- Relocation idempotence (§4.2) ---

   After one tag scan, every capability left in the page either already
   targets the child or has lost its tag: a second scan must find
   nothing to relocate, whatever mix of parent-owned, child-owned and
   dangling capabilities the page started with. *)

let prop_relocate_idempotent =
  QCheck.Test.make ~name:"relocate_page: a second scan relocates nothing"
    ~count:100
    QCheck.(
      list_of_size
        Gen.(int_range 0 32)
        (pair (int_range 0 (Addr.granules_per_page - 1)) (int_range 0 2)))
    (fun entries ->
      let parent_base = 0x1000 and child_base = 0x9000 and bytes = 0x1000 in
      let owner_area a =
        if a >= parent_base && a < parent_base + bytes then
          Some (parent_base, bytes)
        else if a >= child_base && a < child_base + bytes then
          Some (child_base, bytes)
        else None
      in
      let page = Page.create () in
      List.iter
        (fun (g, kind) ->
          let off = g * Addr.granule_size in
          let base =
            match kind with
            | 0 -> parent_base + off (* rebased by the first scan *)
            | 1 -> child_base + off (* already in place *)
            | _ -> 0x5000 + off (* dangling: tag-cleared *)
          in
          Page.store_cap page ~off
            (Capability.mint ~parent:(Capability.root ()) ~base ~length:16
               ~perms:Perms.user_data))
        entries;
      let _ =
        Relocate.relocate_page ~owner_area ~child_base ~child_bytes:bytes page
      in
      let second =
        Relocate.relocate_page ~owner_area ~child_base ~child_bytes:bytes page
      in
      second.Relocate.relocated = 0)

let qt = QCheck_alcotest.to_alcotest

let suite =
  [
    qt prop_fork_tree_isolation;
    qt prop_pipe_stream;
    qt prop_cross_system_equivalence;
    qt prop_vas_failed_write_leaves_no_trace;
    qt prop_vfs_model;
    qt prop_aslr_deterministic;
    qt prop_smp_replay_determinism;
    qt prop_event_id_injective;
    Alcotest.test_case "Event.id pins: dense, append-only" `Quick
      test_event_id_pins;
    qt prop_meter_intern_roundtrip;
    qt prop_parmap_bit_identity;
    qt prop_relocate_idempotent;
  ]
