(* Tests for tagged memory, physical frames, page tables and the MMU. *)

module Addr = Ufork_mem.Addr
module Page = Ufork_mem.Page
module Phys = Ufork_mem.Phys
module Pte = Ufork_mem.Pte
module Page_table = Ufork_mem.Page_table
module Vas = Ufork_mem.Vas
module Capability = Ufork_cheri.Capability
module Perms = Ufork_cheri.Perms

(* --- Addr --- *)

let test_addr_basics () =
  Alcotest.(check int) "vpn" 3 (Addr.vpn_of_addr (3 * 4096 + 17));
  Alcotest.(check int) "addr of vpn" (3 * 4096) (Addr.addr_of_vpn 3);
  Alcotest.(check int) "offset" 17 (Addr.page_offset (3 * 4096 + 17));
  Alcotest.(check int) "granules" 256 Addr.granules_per_page;
  Alcotest.(check int) "pages for 1 byte" 1 (Addr.bytes_to_pages 1);
  Alcotest.(check int) "pages for 4096" 1 (Addr.bytes_to_pages 4096);
  Alcotest.(check int) "pages for 4097" 2 (Addr.bytes_to_pages 4097);
  Alcotest.(check int) "span none" 0 (Addr.pages_spanned ~addr:0 ~len:0);
  Alcotest.(check int) "span crossing" 2
    (Addr.pages_spanned ~addr:4090 ~len:10)

let prop_align =
  QCheck.Test.make ~name:"align_up/down sandwich" ~count:300
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 6))
    (fun (v, k) ->
      let a = 1 lsl (k + 1) in
      let up = Addr.align_up v a and down = Addr.align_down v a in
      down <= v && v <= up && up - down < a + a && up mod a = 0
      && down mod a = 0)

(* --- Page --- *)

let mk_cap ?(base = 0x4000) ?(len = 64) () =
  Capability.mint ~parent:(Capability.root ()) ~base ~length:len
    ~perms:Perms.user_data

let test_page_rw () =
  let p = Page.create () in
  Page.write_bytes p ~off:100 (Bytes.of_string "hello");
  Alcotest.(check string) "readback" "hello"
    (Bytes.to_string (Page.read_bytes p ~off:100 ~len:5));
  Page.write_u64 p ~off:200 0x1122334455667788L;
  Alcotest.(check int64) "u64" 0x1122334455667788L (Page.read_u64 p ~off:200);
  Page.write_u8 p ~off:0 0x1ff;
  Alcotest.(check int) "u8 masked" 0xff (Page.read_u8 p ~off:0)

let test_page_bounds () =
  let p = Page.create () in
  Alcotest.check_raises "oob" (Invalid_argument "Page: access out of page bounds")
    (fun () -> ignore (Page.read_bytes p ~off:4090 ~len:10))

let test_page_cap_roundtrip () =
  let p = Page.create () in
  let c = mk_cap () in
  Page.store_cap p ~off:32 c;
  Alcotest.(check bool) "tag set" true (Page.tag_at p ~off:32);
  let c' = Page.load_cap p ~off:32 in
  Alcotest.(check bool) "equal" true (Capability.equal c c');
  (* The raw bytes mirror the cursor. *)
  Alcotest.(check int64) "cursor mirrored" (Int64.of_int (Capability.cursor c))
    (Page.read_u64 p ~off:32)

let test_page_tag_clear_on_write () =
  let p = Page.create () in
  Page.store_cap p ~off:16 (mk_cap ());
  (* Any raw byte store overlapping the granule clears the tag. *)
  Page.write_u8 p ~off:20 7;
  Alcotest.(check bool) "tag cleared" false (Page.tag_at p ~off:16);
  let c = Page.load_cap p ~off:16 in
  Alcotest.(check bool) "load yields untagged" false (Capability.tag c)

let test_page_tag_clear_edge () =
  let p = Page.create () in
  Page.store_cap p ~off:16 (mk_cap ());
  Page.store_cap p ~off:48 (mk_cap ());
  (* A write spanning [15..17) touches granules 0 and 1 only. *)
  Page.write_bytes p ~off:15 (Bytes.make 2 'x');
  Alcotest.(check bool) "granule 1 cleared" false (Page.tag_at p ~off:16);
  Alcotest.(check bool) "granule 3 untouched" true (Page.tag_at p ~off:48)

let test_page_store_untagged_clears () =
  let p = Page.create () in
  Page.store_cap p ~off:0 (mk_cap ());
  Page.store_cap p ~off:0 (Capability.clear_tag (mk_cap ()));
  Alcotest.(check bool) "cleared" false (Page.tag_at p ~off:0)

let test_page_alignment () =
  let p = Page.create () in
  Alcotest.check_raises "unaligned"
    (Invalid_argument "Page: capability access must be 16-byte aligned")
    (fun () -> Page.store_cap p ~off:8 (mk_cap ()))

let test_page_copy_deep () =
  let p = Page.create () in
  Page.store_cap p ~off:64 (mk_cap ());
  Page.write_bytes p ~off:0 (Bytes.of_string "abc");
  let q = Page.copy p in
  Page.write_bytes q ~off:0 (Bytes.of_string "xyz");
  Page.write_u8 q ~off:64 0 (* clears tag in q only *);
  Alcotest.(check string) "p data intact" "abc"
    (Bytes.to_string (Page.read_bytes p ~off:0 ~len:3));
  Alcotest.(check bool) "p tag intact" true (Page.tag_at p ~off:64);
  Alcotest.(check bool) "q tag cleared" false (Page.tag_at q ~off:64)

let test_page_iter_map_caps () =
  let p = Page.create () in
  Page.store_cap p ~off:0 (mk_cap ~base:0x1000 ());
  Page.store_cap p ~off:240 (mk_cap ~base:0x2000 ());
  Alcotest.(check int) "count" 2 (Page.tagged_count p);
  Alcotest.(check (list int)) "granules" [ 0; 15 ] (Page.tagged_granules p);
  Page.map_caps p (fun c -> Capability.rebase c ~delta:0x100);
  let c = Page.load_cap p ~off:0 in
  Alcotest.(check int) "relocated" 0x1100 (Capability.base c)

let prop_page_write_preserves_other_bytes =
  QCheck.Test.make ~name:"page writes localized" ~count:200
    QCheck.(pair (int_range 0 4000) (string_of_size Gen.(1 -- 64)))
    (fun (off, s) ->
      QCheck.assume (off + String.length s <= 4096);
      let p = Page.create () in
      Page.write_bytes p ~off (Bytes.of_string s);
      (* Bytes before and after are still zero. *)
      (off = 0 || Page.read_u8 p ~off:(off - 1) = 0)
      && (off + String.length s >= 4096
         || Page.read_u8 p ~off:(off + String.length s) = 0)
      && Bytes.to_string (Page.read_bytes p ~off ~len:(String.length s)) = s)

(* --- Phys --- *)

let test_phys_refcount () =
  let t = Phys.create () in
  let f = Phys.alloc t in
  Alcotest.(check int) "rc 1" 1 (Phys.refcount f);
  Phys.retain t f;
  Alcotest.(check int) "rc 2" 2 (Phys.refcount f);
  Phys.release t f;
  Alcotest.(check int) "in use" 1 (Phys.frames_in_use t);
  Phys.release t f;
  Alcotest.(check int) "freed" 0 (Phys.frames_in_use t);
  Alcotest.check_raises "double free"
    (Invalid_argument "Phys.release: frame is free") (fun () ->
      Phys.release t f)

let test_phys_limit () =
  let t = Phys.create ~limit_frames:2 () in
  let _ = Phys.alloc t and _ = Phys.alloc t in
  Alcotest.check_raises "oom" Phys.Out_of_memory (fun () ->
      ignore (Phys.alloc t))

let test_phys_peak () =
  let t = Phys.create () in
  let a = Phys.alloc t and b = Phys.alloc t in
  Phys.release t a;
  let _ = Phys.alloc t in
  Alcotest.(check int) "peak" 2 (Phys.peak_frames t);
  Alcotest.(check int) "total" 3 (Phys.total_allocated t);
  Phys.release t b

(* --- Page_table --- *)

let test_pt_map_unmap () =
  let phys = Phys.create () in
  let pt = Page_table.create phys in
  let f = Phys.alloc phys in
  Page_table.map pt ~vpn:10 (Pte.make f);
  Alcotest.(check bool) "mapped" true (Page_table.is_mapped pt ~vpn:10);
  Alcotest.(check int) "count" 1 (Page_table.mapped_count pt);
  (match Page_table.lookup pt ~vpn:10 with
  | Some pte -> Alcotest.(check int) "frame" (Phys.id f) (Phys.id pte.Pte.frame)
  | None -> Alcotest.fail "lookup");
  Page_table.unmap pt ~vpn:10;
  Alcotest.(check int) "frame released" 0 (Phys.frames_in_use phys)

let test_pt_double_map () =
  let phys = Phys.create () in
  let pt = Page_table.create phys in
  Page_table.map pt ~vpn:1 (Pte.make (Phys.alloc phys));
  Alcotest.check_raises "double map"
    (Invalid_argument "Page_table.map: vpn 0x1 already mapped") (fun () ->
      Page_table.map pt ~vpn:1 (Pte.make (Phys.alloc phys)))

let test_pt_share_and_replace () =
  let phys = Phys.create () in
  let pt1 = Page_table.create phys and pt2 = Page_table.create phys in
  let f = Phys.alloc phys in
  Page_table.map pt1 ~vpn:5 (Pte.make f);
  Page_table.map_shared pt2 ~vpn:5 (Pte.make ~write:false f);
  Alcotest.(check int) "shared rc" 2 (Phys.refcount f);
  (* CoW resolution: point pt2 at a fresh frame. *)
  let fresh = Phys.alloc phys in
  Page_table.replace_frame pt2 ~vpn:5 fresh;
  Alcotest.(check int) "old rc dropped" 1 (Phys.refcount f);
  (match Page_table.lookup pt2 ~vpn:5 with
  | Some pte -> Alcotest.(check int) "new frame" (Phys.id fresh) (Phys.id pte.Pte.frame)
  | None -> Alcotest.fail "lookup")

let test_pt_range_ops () =
  let phys = Phys.create () in
  let pt = Page_table.create phys in
  List.iter
    (fun v -> Page_table.map pt ~vpn:v (Pte.make (Phys.alloc phys)))
    [ 2; 3; 5 ];
  let seen = ref [] in
  Page_table.iter_range pt ~vpn:0 ~count:10 (fun v _ -> seen := v :: !seen);
  Alcotest.(check (list int)) "ascending with holes" [ 2; 3; 5 ]
    (List.rev !seen);
  Page_table.unmap_range pt ~vpn:0 ~count:4;
  Alcotest.(check int) "only vpn 5 left" 1 (Page_table.mapped_count pt)

let test_pt_unmap_range_holes () =
  let phys = Phys.create () in
  let pt = Page_table.create phys in
  (* A range with no mappings at all is a no-op, not an error. *)
  Page_table.unmap_range pt ~vpn:0 ~count:16;
  List.iter
    (fun v -> Page_table.map pt ~vpn:v (Pte.make (Phys.alloc phys)))
    [ 1; 4; 9 ];
  Alcotest.(check int) "three live" 3 (Phys.frames_in_use phys);
  (* [0,5) covers vpns 1 and 4 plus three holes. *)
  Page_table.unmap_range pt ~vpn:0 ~count:5;
  Alcotest.(check int) "two released" 1 (Phys.frames_in_use phys);
  Alcotest.(check bool) "vpn 9 untouched" true (Page_table.is_mapped pt ~vpn:9);
  Page_table.unmap_range pt ~vpn:9 ~count:1;
  Alcotest.(check int) "all released" 0 (Phys.frames_in_use phys)

let test_pt_remap_after_unmap () =
  let phys = Phys.create () in
  let pt = Page_table.create phys in
  Page_table.map pt ~vpn:7 (Pte.make (Phys.alloc phys));
  Page_table.unmap pt ~vpn:7;
  (* The slot is free again: mapping it a second time must not raise. *)
  Page_table.map pt ~vpn:7 (Pte.make (Phys.alloc phys));
  Alcotest.(check int) "one mapping" 1 (Page_table.mapped_count pt);
  Alcotest.(check int) "one frame" 1 (Phys.frames_in_use phys)

let test_pt_replace_keeps_other_aliases () =
  (* replace_frame hands the refcount over: the old frame survives as
     long as other tables still alias it. *)
  let phys = Phys.create () in
  let pt1 = Page_table.create phys and pt2 = Page_table.create phys in
  let f = Phys.alloc phys in
  Page_table.map pt1 ~vpn:3 (Pte.make f);
  Page_table.map_shared pt2 ~vpn:3 (Pte.make ~write:false f);
  Page_table.map_shared pt1 ~vpn:8 (Pte.make ~write:false f);
  Alcotest.(check int) "three aliases" 3 (Phys.refcount f);
  Page_table.replace_frame pt2 ~vpn:3 (Phys.alloc phys);
  Alcotest.(check int) "two aliases left" 2 (Phys.refcount f);
  Page_table.unmap pt1 ~vpn:3;
  Page_table.unmap pt1 ~vpn:8;
  (* Only pt2's replacement frame remains live. *)
  Alcotest.(check int) "replacement survives" 1 (Phys.frames_in_use phys)

let test_pt_shared_alias_counts () =
  (* map_shared retains once per alias and unmap releases symmetrically,
     so the frame frees exactly when the last alias goes. *)
  let phys = Phys.create () in
  let pt = Page_table.create phys in
  let f = Phys.alloc phys in
  Page_table.map pt ~vpn:1 (Pte.make f);
  List.iter
    (fun v -> Page_table.map_shared pt ~vpn:v (Pte.make ~write:false f))
    [ 2; 3; 4 ];
  Alcotest.(check int) "four aliases" 4 (Phys.refcount f);
  Alcotest.(check int) "one frame backs them" 1 (Phys.frames_in_use phys);
  List.iter (fun v -> Page_table.unmap pt ~vpn:v) [ 1; 2; 3 ];
  Alcotest.(check int) "last alias holds it" 1 (Phys.frames_in_use phys);
  Alcotest.(check int) "rc 1" 1 (Phys.refcount f);
  Page_table.unmap pt ~vpn:4;
  Alcotest.(check int) "freed with last alias" 0 (Phys.frames_in_use phys)

let test_pt_map_range () =
  let phys = Phys.create () in
  let pt = Page_table.create phys in
  (* Pre-existing mappings survive a range fill untouched. *)
  let keep = Phys.alloc phys in
  Page_table.map pt ~vpn:3 (Pte.make keep);
  let offered = ref [] in
  let installed =
    Page_table.map_range pt ~vpn:1 ~count:5 (fun v ->
        offered := v :: !offered;
        if v = 4 then None else Some (Pte.make (Phys.alloc phys)))
  in
  Alcotest.(check int) "installed = offered minus declined" 3 installed;
  (* vpn 3 was already mapped: never passed to f. *)
  Alcotest.(check (list int)) "holes offered ascending" [ 1; 2; 4; 5 ]
    (List.rev !offered);
  Alcotest.(check bool) "declined vpn stays unmapped" false
    (Page_table.is_mapped pt ~vpn:4);
  (match Page_table.lookup pt ~vpn:3 with
  | Some pte ->
      Alcotest.(check int) "existing frame kept" (Phys.id keep)
        (Phys.id pte.Pte.frame)
  | None -> Alcotest.fail "vpn 3 lost");
  Alcotest.(check int) "refcount discipline" 4 (Phys.frames_in_use phys)

let test_pt_fold_range () =
  let phys = Phys.create () in
  let pt = Page_table.create phys in
  List.iter
    (fun v -> Page_table.map pt ~vpn:v (Pte.make (Phys.alloc phys)))
    [ 2; 3; 5; 40 ];
  let seen =
    Page_table.fold_range pt ~vpn:0 ~count:10 ~init:[] ~f:(fun v _ acc ->
        v :: acc)
  in
  Alcotest.(check (list int)) "ascending, holes skipped, range bounded"
    [ 2; 3; 5 ] (List.rev seen);
  Alcotest.(check int) "empty range" 0
    (Page_table.fold_range pt ~vpn:6 ~count:30 ~init:0 ~f:(fun _ _ n -> n + 1))

(* map_range over a random hole pattern agrees with per-vpn map: same
   final mapped set, and the return value counts exactly the holes. *)
let prop_pt_map_range_fills_holes =
  QCheck.Test.make ~name:"map_range fills exactly the holes" ~count:200
    QCheck.(pair (list_of_size Gen.(0 -- 12) (int_range 0 15)) (int_range 0 8))
    (fun (pre, vpn0) ->
      let count = 8 in
      let phys = Phys.create () in
      let pt = Page_table.create phys in
      List.iter
        (fun v ->
          if not (Page_table.is_mapped pt ~vpn:v) then
            Page_table.map pt ~vpn:v (Pte.make (Phys.alloc phys)))
        pre;
      let before = Page_table.mapped_count pt in
      let holes =
        List.filter
          (fun v -> not (Page_table.is_mapped pt ~vpn:v))
          (List.init count (fun i -> vpn0 + i))
      in
      let installed =
        Page_table.map_range pt ~vpn:vpn0 ~count (fun _ ->
            Some (Pte.make (Phys.alloc phys)))
      in
      installed = List.length holes
      && Page_table.mapped_count pt = before + installed
      && List.for_all (fun v -> Page_table.is_mapped pt ~vpn:v) holes)

(* fold_range is fold restricted to the window. *)
let prop_pt_fold_range_matches_fold =
  QCheck.Test.make ~name:"fold_range = fold restricted to range" ~count:200
    QCheck.(
      triple
        (list_of_size Gen.(0 -- 12) (int_range 0 31))
        (int_range 0 31) (int_range 0 16))
    (fun (vpns, vpn0, count) ->
      let phys = Phys.create () in
      let pt = Page_table.create phys in
      List.iter
        (fun v ->
          if not (Page_table.is_mapped pt ~vpn:v) then
            Page_table.map pt ~vpn:v (Pte.make (Phys.alloc phys)))
        vpns;
      let ranged =
        Page_table.fold_range pt ~vpn:vpn0 ~count ~init:[] ~f:(fun v _ acc ->
            v :: acc)
      in
      let whole =
        Page_table.fold pt ~init:[] ~f:(fun v _ acc ->
            if v >= vpn0 && v < vpn0 + count then v :: acc else acc)
      in
      ranged = whole)

(* --- Vas --- *)

let setup_vas () =
  let phys = Phys.create () in
  let pt = Page_table.create phys in
  (* Map vpns 1 and 2 rw; vpn 3 read-only; vpn 4 with cap-load fault. *)
  Page_table.map pt ~vpn:1 (Pte.make (Phys.alloc phys));
  Page_table.map pt ~vpn:2 (Pte.make (Phys.alloc phys));
  Page_table.map pt ~vpn:3 (Pte.make ~write:false (Phys.alloc phys));
  Page_table.map pt ~vpn:4 (Pte.make ~cap_load_fault:true (Phys.alloc phys));
  let via =
    Capability.mint ~parent:(Capability.root ()) ~base:4096 ~length:(4 * 4096)
      ~perms:Perms.user_data
  in
  (pt, via)

let test_vas_rw_cross_page () =
  let pt, via = setup_vas () in
  let s = String.init 100 (fun i -> Char.chr (i mod 256)) in
  (* Write crossing the vpn1/vpn2 boundary. *)
  Vas.write_bytes pt ~via ~addr:(2 * 4096 - 50) (Bytes.of_string s);
  Alcotest.(check string) "cross-page roundtrip" s
    (Bytes.to_string (Vas.read_bytes pt ~via ~addr:(2 * 4096 - 50) ~len:100))

let test_vas_u64 () =
  let pt, via = setup_vas () in
  Vas.write_u64 pt ~via ~addr:5000 77L;
  Alcotest.(check int64) "u64" 77L (Vas.read_u64 pt ~via ~addr:5000)

let expect_fault access f =
  match f () with
  | exception Vas.Fault { access = a; _ } when a = access -> ()
  | exception Vas.Fault { access = a; _ } ->
      Alcotest.fail
        (Format.asprintf "wrong fault: %a (expected %a)" Vas.pp_access a
           Vas.pp_access access)
  | _ -> Alcotest.fail "expected fault"

let test_vas_write_fault_on_ro () =
  let pt, via = setup_vas () in
  expect_fault Vas.Write (fun () ->
      Vas.write_bytes pt ~via ~addr:(3 * 4096) (Bytes.of_string "x"))

let test_vas_unmapped_fault () =
  let pt, via = setup_vas () in
  ignore via;
  let via5 =
    Capability.mint ~parent:(Capability.root ()) ~base:(5 * 4096) ~length:64
      ~perms:Perms.user_data
  in
  expect_fault Vas.Read (fun () ->
      ignore (Vas.read_bytes pt ~via:via5 ~addr:(5 * 4096) ~len:1))

let test_vas_cap_load_fault_bit () =
  let pt, via = setup_vas () in
  let c = mk_cap () in
  (* Store through vpn 1 (no fault bit), load back fine. *)
  Vas.store_cap pt ~via ~addr:(4096 + 16) c;
  Alcotest.(check bool) "roundtrip" true
    (Capability.equal c (Vas.load_cap pt ~via ~addr:(4096 + 16)));
  (* vpn 4 has the CoPA bit: data reads fine, capability loads fault. *)
  ignore (Vas.read_bytes pt ~via ~addr:(4 * 4096) ~len:16);
  expect_fault Vas.Cap_load (fun () ->
      ignore (Vas.load_cap pt ~via ~addr:(4 * 4096)))

let test_vas_cap_checks_dominate () =
  (* The capability check fires before the MMU lookup. *)
  let pt, _ = setup_vas () in
  let narrow =
    Capability.mint ~parent:(Capability.root ()) ~base:4096 ~length:8
      ~perms:Perms.user_data
  in
  (match Vas.read_bytes pt ~via:narrow ~addr:4096 ~len:16 with
  | exception Capability.Violation _ -> ()
  | _ -> Alcotest.fail "expected Violation");
  let no_store = Capability.restrict_perms narrow Perms.load in
  match Vas.write_bytes pt ~via:no_store ~addr:4096 (Bytes.of_string "abc") with
  | exception Capability.Violation _ -> ()
  | _ -> Alcotest.fail "expected Violation"

let test_vas_unaligned_cap () =
  let pt, via = setup_vas () in
  match Vas.load_cap pt ~via ~addr:(4096 + 8) with
  | exception Capability.Violation _ -> ()
  | _ -> Alcotest.fail "expected Violation"

let test_vas_kernel_paths () =
  let pt, via = setup_vas () in
  ignore via;
  Vas.kernel_write_bytes pt ~addr:(3 * 4096) (Bytes.of_string "kernel");
  Alcotest.(check string) "kernel write ignores perms" "kernel"
    (Bytes.to_string (Vas.kernel_read_bytes pt ~addr:(3 * 4096) ~len:6));
  let c = mk_cap () in
  Vas.kernel_store_cap pt ~addr:(4 * 4096 + 32) c;
  Alcotest.(check bool) "kernel cap load skips CoPA bit" true
    (Capability.equal c (Vas.kernel_load_cap pt ~addr:(4 * 4096 + 32)))

let prop_vas_roundtrip =
  QCheck.Test.make ~name:"vas write/read roundtrip" ~count:200
    QCheck.(pair (int_range 0 8100) (string_of_size Gen.(1 -- 200)))
    (fun (off, s) ->
      let pt, via = setup_vas () in
      let addr = 4096 + off in
      QCheck.assume (addr + String.length s <= 3 * 4096);
      Vas.write_bytes pt ~via ~addr (Bytes.of_string s);
      Bytes.to_string (Vas.read_bytes pt ~via ~addr ~len:(String.length s)) = s)

let qt = QCheck_alcotest.to_alcotest

let suite =
  [
    ("addr basics", `Quick, test_addr_basics);
    ("page rw", `Quick, test_page_rw);
    ("page bounds", `Quick, test_page_bounds);
    ("page cap roundtrip", `Quick, test_page_cap_roundtrip);
    ("page tag clear on write", `Quick, test_page_tag_clear_on_write);
    ("page tag clear edges", `Quick, test_page_tag_clear_edge);
    ("page store untagged", `Quick, test_page_store_untagged_clears);
    ("page cap alignment", `Quick, test_page_alignment);
    ("page deep copy", `Quick, test_page_copy_deep);
    ("page iter/map caps", `Quick, test_page_iter_map_caps);
    ("phys refcount", `Quick, test_phys_refcount);
    ("phys limit", `Quick, test_phys_limit);
    ("phys peak", `Quick, test_phys_peak);
    ("pt map/unmap", `Quick, test_pt_map_unmap);
    ("pt double map", `Quick, test_pt_double_map);
    ("pt share/replace", `Quick, test_pt_share_and_replace);
    ("pt range ops", `Quick, test_pt_range_ops);
    ("pt unmap_range over holes", `Quick, test_pt_unmap_range_holes);
    ("pt remap after unmap", `Quick, test_pt_remap_after_unmap);
    ("pt replace keeps aliases", `Quick, test_pt_replace_keeps_other_aliases);
    ("pt shared alias counts", `Quick, test_pt_shared_alias_counts);
    ("pt map_range", `Quick, test_pt_map_range);
    ("pt fold_range", `Quick, test_pt_fold_range);
    ("vas rw cross page", `Quick, test_vas_rw_cross_page);
    ("vas u64", `Quick, test_vas_u64);
    ("vas ro write fault", `Quick, test_vas_write_fault_on_ro);
    ("vas unmapped fault", `Quick, test_vas_unmapped_fault);
    ("vas CoPA fault bit", `Quick, test_vas_cap_load_fault_bit);
    ("vas cap checks first", `Quick, test_vas_cap_checks_dominate);
    ("vas unaligned cap", `Quick, test_vas_unaligned_cap);
    ("vas kernel paths", `Quick, test_vas_kernel_paths);
    qt prop_align;
    qt prop_page_write_preserves_other_bytes;
    qt prop_vas_roundtrip;
    qt prop_pt_map_range_fills_holes;
    qt prop_pt_fold_range_matches_fold;
  ]
