(* Unit + property tests for Ufork_util. *)

module Stats = Ufork_util.Stats
module Prng = Ufork_util.Prng
module Bitset = Ufork_util.Bitset
module Units = Ufork_util.Units
module Table = Ufork_util.Table

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) < eps

(* --- Stats --- *)

let test_mean () =
  Alcotest.(check bool) "mean" true (feq (Stats.mean [ 1.; 2.; 3. ]) 2.);
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty")
    (fun () -> ignore (Stats.mean []))

let test_stddev () =
  Alcotest.(check bool) "constant" true (feq (Stats.stddev [ 5.; 5.; 5. ]) 0.);
  (* sample stddev of 2,4,4,4,5,5,7,9 = ~2.138 *)
  let s = Stats.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  Alcotest.(check bool) "known value" true (Float.abs (s -. 2.138) < 0.01)

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check bool) "p50" true (feq (Stats.percentile 50. xs) 50.);
  Alcotest.(check bool) "p100" true (feq (Stats.percentile 100. xs) 100.);
  Alcotest.(check bool) "p1" true (feq (Stats.percentile 1. xs) 1.)

let test_summary () =
  let s = Stats.summary [ 3.; 1.; 2. ] in
  Alcotest.(check int) "n" 3 s.Stats.n;
  Alcotest.(check bool) "min" true (feq s.Stats.min 1.);
  Alcotest.(check bool) "max" true (feq s.Stats.max 3.);
  Alcotest.(check bool) "median" true (feq s.Stats.median 2.)

let test_speedup () =
  Alcotest.(check bool) "2x" true
    (feq (Stats.speedup ~baseline:10. 5.) 2.);
  Alcotest.(check bool) "rel" true
    (feq (Stats.relative_change ~baseline:10. 15.) 0.5)

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile within min/max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.))
              (float_bound_inclusive 100.))
    (fun (xs, p) ->
      QCheck.assume (xs <> []);
      let v = Stats.percentile p xs in
      v >= List.fold_left min infinity xs
      && v <= List.fold_left max neg_infinity xs)

(* --- Prng --- *)

let test_prng_determinism () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next64 a) (Prng.next64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1L and b = Prng.create ~seed:2L in
  Alcotest.(check bool) "different streams" false
    (Prng.next64 a = Prng.next64 b)

let test_prng_copy () =
  let a = Prng.create ~seed:7L in
  ignore (Prng.next64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues" (Prng.next64 a) (Prng.next64 b)

let prop_prng_int_bound =
  QCheck.Test.make ~name:"Prng.int within bound" ~count:500
    QCheck.(pair int64 (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let g = Prng.create ~seed in
      let v = Prng.int g bound in
      v >= 0 && v < bound)

let prop_prng_int_in =
  QCheck.Test.make ~name:"Prng.int_in inclusive range" ~count:500
    QCheck.(triple int64 (int_range (-1000) 1000) (int_range 0 1000))
    (fun (seed, lo, span) ->
      let g = Prng.create ~seed in
      let v = Prng.int_in g ~lo ~hi:(lo + span) in
      v >= lo && v <= lo + span)

let test_prng_exponential_positive () =
  let g = Prng.create ~seed:3L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "positive" true (Prng.exponential g ~mean:5. >= 0.)
  done

let test_prng_shuffle_permutation () =
  let g = Prng.create ~seed:11L in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

(* --- Bitset --- *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  Alcotest.(check int) "empty" 0 (Bitset.count b);
  Bitset.set b 0;
  Bitset.set b 99;
  Bitset.set b 42;
  Alcotest.(check int) "count" 3 (Bitset.count b);
  Alcotest.(check bool) "get" true (Bitset.get b 42);
  Bitset.clear b 42;
  Alcotest.(check bool) "cleared" false (Bitset.get b 42);
  Alcotest.(check bool) "any" true (Bitset.any b);
  Bitset.clear_all b;
  Alcotest.(check bool) "none" false (Bitset.any b)

let test_bitset_bounds () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> Bitset.set b 8)

let prop_bitset_count_iter =
  QCheck.Test.make ~name:"bitset count = |iter_set|" ~count:200
    QCheck.(list_of_size Gen.(0 -- 64) (int_range 0 199))
    (fun idxs ->
      let b = Bitset.create 200 in
      List.iter (Bitset.set b) idxs;
      let seen = ref [] in
      Bitset.iter_set b (fun i -> seen := i :: !seen);
      List.length !seen = Bitset.count b
      && List.sort_uniq compare idxs = List.sort compare !seen)

let test_bitset_copy () =
  let a = Bitset.create 64 and b = Bitset.create 64 in
  Bitset.set a 3;
  Bitset.set a 63;
  Bitset.copy_into ~src:a ~dst:b;
  Alcotest.(check bool) "copied" true (Bitset.get b 3 && Bitset.get b 63);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Bitset.copy_into: length") (fun () ->
      Bitset.copy_into ~src:a ~dst:(Bitset.create 32))

(* --- Units --- *)

let test_units_roundtrip () =
  Alcotest.(check int64) "1 us at 2.5GHz" 2500L (Units.cycles_of_us 1.);
  Alcotest.(check bool) "roundtrip" true
    (feq ~eps:1e-6 (Units.us_of_cycles (Units.cycles_of_us 54.)) 54.);
  Alcotest.(check int) "kib" 4096 (Units.kib 4);
  Alcotest.(check bool) "mb" true (feq (Units.mb_of_bytes 6_000_000) 6.)

(* --- Table --- *)

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "x"; "1" ]; [ "yy" ] ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  (* All lines are equal width. *)
  match lines with
  | first :: rest ->
      List.iter
        (fun l ->
          Alcotest.(check int) "width" (String.length first) (String.length l))
        rest
  | [] -> Alcotest.fail "no lines"

let test_table_fmt () =
  Alcotest.(check string) "f2" "3.14" (Table.fmt_f 3.14159);
  Alcotest.(check string) "si k" "1.50 k" (Table.fmt_si 1500.);
  Alcotest.(check string) "si u" "12.00 u" (Table.fmt_si 1.2e-5)

let qt = QCheck_alcotest.to_alcotest

let suite =
  [
    ("stats mean", `Quick, test_mean);
    ("stats stddev", `Quick, test_stddev);
    ("stats percentile", `Quick, test_percentile);
    ("stats summary", `Quick, test_summary);
    ("stats speedup", `Quick, test_speedup);
    ("prng determinism", `Quick, test_prng_determinism);
    ("prng seeds differ", `Quick, test_prng_seed_sensitivity);
    ("prng copy", `Quick, test_prng_copy);
    ("prng exponential", `Quick, test_prng_exponential_positive);
    ("prng shuffle", `Quick, test_prng_shuffle_permutation);
    ("bitset basic", `Quick, test_bitset_basic);
    ("bitset bounds", `Quick, test_bitset_bounds);
    ("bitset copy", `Quick, test_bitset_copy);
    ("units", `Quick, test_units_roundtrip);
    ("table render", `Quick, test_table_render);
    ("table fmt", `Quick, test_table_fmt);
    qt prop_percentile_bounds;
    qt prop_prng_int_bound;
    qt prop_prng_int_in;
    qt prop_bitset_count_iter;
  ]
