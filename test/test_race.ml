(* The race-detector suite has three legs:
   - algebraic: qcheck laws for the vector-clock lattice (partial order,
     join as least upper bound, strict monotonicity of [incr]);
   - unit: hand-fed Hb event sequences — each ordering edge kind
     (lock hand-off, spawn, wake) suppresses the race it should, the
     atomic frame-refcount model never races, and unordered conflicting
     writes yield exactly one race per location;
   - integration: a full checked run stays clean with the big kernel
     lock, and the [--chaos-no-bkl] injection (lock disabled plus a
     deliberate unlocked gauge write) is caught as exactly R1. *)

module Vclock = Ufork_analysis.Vclock
module Race = Ufork_analysis.Race
module Checker = Ufork_analysis.Checker
module Hb = Ufork_util.Hb
module Strategy = Ufork_core.Strategy
module E = Ufork_workload.Experiments

(* {1 Vector-clock laws} *)

let clock_of_counts counts =
  List.fold_left
    (fun c (tid, n) ->
      let rec go c k = if k = 0 then c else go (Vclock.incr c tid) (k - 1) in
      go c n)
    Vclock.empty counts

let clock_gen =
  QCheck.(
    map clock_of_counts
      (small_list (pair (int_bound 3) (int_bound 4))))

let law name gen f = QCheck.Test.make ~count:300 ~name gen f

let vclock_laws =
  [
    law "leq reflexive" clock_gen (fun a -> Vclock.leq a a);
    law "leq antisymmetric" (QCheck.pair clock_gen clock_gen) (fun (a, b) ->
        (not (Vclock.leq a b && Vclock.leq b a)) || Vclock.equal a b);
    law "leq transitive"
      (QCheck.triple clock_gen clock_gen clock_gen)
      (fun (a, b, c) ->
        (not (Vclock.leq a b && Vclock.leq b c)) || Vclock.leq a c);
    law "join is an upper bound" (QCheck.pair clock_gen clock_gen)
      (fun (a, b) ->
        let j = Vclock.join a b in
        Vclock.leq a j && Vclock.leq b j);
    law "join is the least upper bound"
      (QCheck.triple clock_gen clock_gen clock_gen)
      (fun (a, b, c) ->
        (not (Vclock.leq a c && Vclock.leq b c))
        || Vclock.leq (Vclock.join a b) c);
    law "join commutative" (QCheck.pair clock_gen clock_gen) (fun (a, b) ->
        Vclock.equal (Vclock.join a b) (Vclock.join b a));
    law "join associative"
      (QCheck.triple clock_gen clock_gen clock_gen)
      (fun (a, b, c) ->
        Vclock.equal
          (Vclock.join a (Vclock.join b c))
          (Vclock.join (Vclock.join a b) c));
    law "join idempotent" clock_gen (fun a ->
        Vclock.equal (Vclock.join a a) a);
    law "incr strictly increases" (QCheck.pair clock_gen (QCheck.int_bound 3))
      (fun (a, t) -> Vclock.lt a (Vclock.incr a t));
    law "join is pointwise max"
      (QCheck.triple clock_gen clock_gen (QCheck.int_bound 3))
      (fun (a, b, t) ->
        Vclock.get (Vclock.join a b) t = max (Vclock.get a t) (Vclock.get b t));
  ]

(* {1 Unit: hand-fed event sequences} *)

let replay events =
  let d = Race.create () in
  Race.attach d;
  Fun.protect
    ~finally:(fun () -> Race.detach ())
    (fun () -> List.iter Hb.emit events);
  d

let gauge_write tid = Hb.Write { tid; loc = Hb.Gauge "g"; site = "test" }
let pte_write tid vpn = Hb.Write { tid; loc = Hb.Pte { table = 1; vpn }; site = "test" }
let frame_write tid = Hb.Write { tid; loc = Hb.Frame 7; site = "test" }

let test_unordered_race () =
  let d = replay [ gauge_write 1; gauge_write 2 ] in
  Alcotest.(check int) "one race" 1 (List.length (Race.races d));
  match Race.races d with
  | [ r ] ->
      Alcotest.(check int) "first writer" 1 r.Race.first.Race.tid;
      Alcotest.(check int) "second writer" 2 r.Race.second.Race.tid
  | _ -> assert false

let test_one_report_per_location () =
  let d = replay [ gauge_write 1; gauge_write 2; gauge_write 1; gauge_write 2 ] in
  Alcotest.(check int) "deduplicated" 1 (List.length (Race.races d));
  let d =
    replay [ pte_write 1 0; pte_write 2 0; pte_write 1 9; pte_write 2 9 ]
  in
  Alcotest.(check int) "distinct vpns are distinct locations" 2
    (List.length (Race.races d))

let test_same_tid_never_races () =
  let d = replay [ gauge_write 1; gauge_write 1; pte_write 1 0; pte_write 1 0 ] in
  Alcotest.(check int) "program order suffices" 0 (List.length (Race.races d))

let test_lock_handoff_orders () =
  let d =
    replay
      [
        Hb.Acquire { tid = 1; lock = 0 };
        gauge_write 1;
        Hb.Release { tid = 1; lock = 0 };
        Hb.Acquire { tid = 2; lock = 0 };
        gauge_write 2;
        Hb.Release { tid = 2; lock = 0 };
      ]
  in
  Alcotest.(check int) "lock hand-off is an edge" 0 (List.length (Race.races d));
  (* A different lock draws no edge between these threads. *)
  let d =
    replay
      [
        Hb.Acquire { tid = 1; lock = 0 };
        gauge_write 1;
        Hb.Release { tid = 1; lock = 0 };
        Hb.Acquire { tid = 2; lock = 5 };
        gauge_write 2;
        Hb.Release { tid = 2; lock = 5 };
      ]
  in
  Alcotest.(check int) "disjoint locks do not order" 1
    (List.length (Race.races d))

let test_spawn_orders () =
  let d = replay [ pte_write 1 3; Hb.Spawn { parent = 1; child = 2 }; pte_write 2 3 ] in
  Alcotest.(check int) "spawn is an edge" 0 (List.length (Race.races d));
  let d = replay [ Hb.Spawn { parent = 1; child = 2 }; pte_write 1 3; pte_write 2 3 ] in
  Alcotest.(check int) "writes after the spawn still race" 1
    (List.length (Race.races d))

let test_wake_orders () =
  let d = replay [ gauge_write 1; Hb.Wake { by = 1; target = 2 }; gauge_write 2 ] in
  Alcotest.(check int) "wake is an edge" 0 (List.length (Race.races d))

let test_frames_are_atomic () =
  (* Frame refcounts model atomic RMWs: concurrent updates synchronize
     rather than race, and the joined clock orders later accesses. *)
  let d = replay [ frame_write 1; frame_write 2; frame_write 1 ] in
  Alcotest.(check int) "atomics never race" 0 (List.length (Race.races d));
  let d = replay [ gauge_write 1; frame_write 1; frame_write 2; gauge_write 2 ] in
  Alcotest.(check int) "atomic RMW chain carries the edge" 0
    (List.length (Race.races d))

let test_violation_rendering () =
  let d = replay [ gauge_write 1; gauge_write 2 ] in
  match Race.violations d with
  | [ v ] ->
      Alcotest.(check string) "id" "R1" (Ufork_analysis.Invariant.id v.invariant);
      Alcotest.(check bool) "names the location" true
        (let detail = v.Ufork_analysis.Invariant.detail in
         String.length detail > 0)
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

(* {1 Integration: checked runs} *)

let with_race_detection ~chaos f =
  E.set_race_detect true;
  E.set_chaos_no_bkl chaos;
  Fun.protect
    ~finally:(fun () ->
      E.set_race_detect false;
      E.set_chaos_no_bkl false)
    f

let test_locked_run_clean () =
  with_race_detection ~chaos:false (fun () ->
      let r = E.hello_run (E.Ufork Strategy.Copa) in
      Alcotest.(check bool) "run completes" true (r.E.fork_latency_us > 0.))

let test_chaos_caught_as_r1 () =
  with_race_detection ~chaos:true (fun () ->
      match E.hello_run (E.Ufork Strategy.Copa) with
      | _ -> Alcotest.fail "unlocked chaos access escaped the detector"
      | exception Checker.Unsafe report ->
          let contains needle hay =
            let nh = String.length hay and nn = String.length needle in
            let rec go i =
              i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "report cites R1" true (contains "R1" report);
          Alcotest.(check bool) "report cites data-race" true
            (contains "data-race" report);
          Alcotest.(check bool) "no other invariant fires" false
            (contains "S1" report || contains "L1" report))

let suite =
  List.map QCheck_alcotest.to_alcotest vclock_laws
  @ [
      Alcotest.test_case "unordered writes race" `Quick test_unordered_race;
      Alcotest.test_case "one report per location" `Quick
        test_one_report_per_location;
      Alcotest.test_case "program order suffices" `Quick
        test_same_tid_never_races;
      Alcotest.test_case "lock hand-off orders" `Quick test_lock_handoff_orders;
      Alcotest.test_case "spawn orders" `Quick test_spawn_orders;
      Alcotest.test_case "wake orders" `Quick test_wake_orders;
      Alcotest.test_case "frame refcounts are atomic" `Quick
        test_frames_are_atomic;
      Alcotest.test_case "violations render as R1" `Quick
        test_violation_rendering;
      Alcotest.test_case "locked run is clean" `Quick test_locked_run_clean;
      Alcotest.test_case "chaos unlocked access caught as R1" `Quick
        test_chaos_caught_as_r1;
    ]
