(* The lock-order checker (R2) suite, mirroring test_race's three legs:
   - unit: hand-fed Hb acquisition sequences — consistent nesting stays
     clean, an ABBA inversion is exactly one violation, descending
     pt-shard pairs are caught on the inverting acquisition, reports
     deduplicate per ordered pair;
   - algebraic: qcheck properties — random nested acquisition chains are
     flagged exactly when the reference digraph over their nesting pairs
     has a cycle, and ascending shard pairs are never flagged;
   - instrumentation and integration: the frame-pool fast path publishes
     guarded Pool writes (and a seeded unlocked drain races as R1), the
     per-lock contention counters surface through Sync, and a full
     checked run is clean while [--chaos-invert-shard-order] fails with
     exactly R2. *)

module Lockdep = Ufork_analysis.Lockdep
module Race = Ufork_analysis.Race
module Checker = Ufork_analysis.Checker
module Invariant = Ufork_analysis.Invariant
module Hb = Ufork_util.Hb
module Phys = Ufork_mem.Phys
module Sync = Ufork_sim.Sync
module Strategy = Ufork_core.Strategy
module E = Ufork_workload.Experiments

let replay events =
  let d = Lockdep.create () in
  Lockdep.attach d;
  Fun.protect
    ~finally:(fun () -> Lockdep.detach ())
    (fun () -> List.iter Hb.emit events);
  d

(* Stable ids for named test locks; registration is global and
   idempotent. *)
let lock_a = 9001
let lock_b = 9002
let shard i = 9100 + i

let () =
  Hb.set_lock_name lock_a "lock.test.a";
  Hb.set_lock_name lock_b "lock.test.b";
  for i = 0 to 15 do
    Hb.set_lock_name (shard i) (Printf.sprintf "lock.pt_shard.%02d" i)
  done

let acq tid lock = Hb.Acquire { tid; lock }
let rel tid lock = Hb.Release { tid; lock }

(* {1 Unit: hand-fed acquisition sequences} *)

let test_consistent_order_clean () =
  let d =
    replay
      [
        acq 1 lock_a; acq 1 lock_b; rel 1 lock_b; rel 1 lock_a;
        acq 2 lock_a; acq 2 lock_b; rel 2 lock_b; rel 2 lock_a;
      ]
  in
  Alcotest.(check int) "no violations" 0 (List.length (Lockdep.violations d));
  Alcotest.(check (list (pair string string)))
    "one observed edge"
    [ ("lock.test.a", "lock.test.b") ]
    (Lockdep.edges d)

let test_abba_cycle () =
  let d =
    replay
      [
        acq 1 lock_a; acq 1 lock_b; rel 1 lock_b; rel 1 lock_a;
        acq 2 lock_b; acq 2 lock_a; rel 2 lock_a; rel 2 lock_b;
      ]
  in
  match Lockdep.violations d with
  | [ v ] ->
      Alcotest.(check string) "id" "R2" (Invariant.id v.Invariant.invariant);
      Alcotest.(check bool) "names both locks" true
        (let detail = v.Invariant.detail in
         let contains needle hay =
           let nh = String.length hay and nn = String.length needle in
           let rec go i =
             i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
           in
           go 0
         in
         contains "lock.test.a" detail && contains "lock.test.b" detail)
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

let test_descending_shards_flagged () =
  let d =
    replay [ acq 1 (shard 1); acq 1 (shard 0); rel 1 (shard 0); rel 1 (shard 1) ]
  in
  Alcotest.(check int) "one violation" 1 (List.length (Lockdep.violations d))

let test_ascending_shards_clean () =
  let d =
    replay
      [ acq 1 (shard 0); acq 1 (shard 1); rel 1 (shard 1); rel 1 (shard 0) ]
  in
  Alcotest.(check int) "clean" 0 (List.length (Lockdep.violations d))

let test_dedup_per_pair () =
  let inversion tid =
    [ acq tid (shard 3); acq tid (shard 2); rel tid (shard 2); rel tid (shard 3) ]
  in
  let d = replay (inversion 1 @ inversion 2 @ inversion 1) in
  Alcotest.(check int) "one report per ordered pair" 1
    (List.length (Lockdep.violations d))

let test_events_seen () =
  let d = replay [ acq 1 lock_a; rel 1 lock_a ] in
  Alcotest.(check int) "instrumentation counted" 2 (Lockdep.events_seen d)

(* {1 qcheck: cycle detection against a reference digraph} *)

let chain_names = [| "lock.q0"; "lock.q1"; "lock.q2"; "lock.q3" |]
let chain_lock i = 9200 + i

let () =
  Array.iteri (fun i n -> Hb.set_lock_name (chain_lock i) n) chain_names

(* A chain is a nested acquisition: locks taken in list order, released
   in reverse. Distinct locks within a chain, so the only possible
   violations are cross-chain cycles. *)
let chain_gen =
  QCheck.Gen.(
    int_range 1 4 >>= fun n ->
    shuffle_l [ 0; 1; 2; 3 ] >|= fun perm ->
    List.filteri (fun i _ -> i < n) perm)

let chains_gen = QCheck.Gen.(list_size (int_range 1 6) chain_gen)

let chains_arbitrary =
  QCheck.make chains_gen
    ~print:(fun chains ->
      String.concat "; "
        (List.map
           (fun c -> String.concat "<" (List.map string_of_int c))
           chains))

let events_of_chains chains =
  List.concat
    (List.mapi
       (fun tid chain ->
         List.map (fun i -> acq (tid + 1) (chain_lock i)) chain
         @ List.rev_map (fun i -> rel (tid + 1) (chain_lock i)) chain)
       chains)

(* Reference: the nesting digraph has an edge i -> j for every pair
   taken outer-to-inner in some chain; a true deadlock risk is exactly a
   directed cycle. *)
let reference_has_cycle chains =
  let edges = Hashtbl.create 16 in
  List.iter
    (fun chain ->
      let rec pairs = function
        | x :: rest ->
            List.iter (fun y -> Hashtbl.replace edges (x, y) ()) rest;
            pairs rest
        | [] -> ()
      in
      pairs chain)
    chains;
  let n = Array.length chain_names in
  let color = Array.make n 0 in
  let rec dfs u =
    color.(u) <- 1;
    let back = ref false in
    for v = 0 to n - 1 do
      if Hashtbl.mem edges (u, v) then
        if color.(v) = 1 then back := true
        else if color.(v) = 0 && dfs v then back := true
    done;
    color.(u) <- 2;
    !back
  in
  let any = ref false in
  for u = 0 to n - 1 do
    if color.(u) = 0 && dfs u then any := true
  done;
  !any

let prop_cycle_iff =
  QCheck.Test.make ~count:500 ~name:"violation iff the nesting digraph cycles"
    chains_arbitrary (fun chains ->
      let d = replay (events_of_chains chains) in
      Lockdep.violations d <> [] = reference_has_cycle chains)

let shard_pairs_gen =
  QCheck.Gen.(
    list_size (int_range 1 8)
      ( int_range 0 14 >>= fun i ->
        int_range (i + 1) 15 >|= fun j -> (i, j) ))

let prop_ascending_shards_clean =
  QCheck.Test.make ~count:300 ~name:"ascending shard pairs never flagged"
    (QCheck.make shard_pairs_gen)
    (fun pairs ->
      let events =
        List.concat_map
          (fun (i, j) ->
            [ acq 1 (shard i); acq 1 (shard j); rel 1 (shard j);
              rel 1 (shard i) ])
          pairs
      in
      Lockdep.violations (replay events) = [])

(* {1 The frame-pool fast path on the bus} *)

let test_pool_transfers_guarded_and_published () =
  (* Churn one core's freelist past the drain threshold and back: every
     global-pool transfer must run inside the injected guard and publish
     one Pool write. *)
  let pool = Phys.create ~cores:1 () in
  let guarded = ref 0 and writes = ref 0 in
  Phys.set_pool_guard pool (fun f -> incr guarded; f ());
  Hb.subscribe (fun ev ->
      match ev with
      | Hb.Write { loc = Hb.Pool; _ } -> incr writes
      | _ -> ());
  Fun.protect ~finally:Hb.unsubscribe (fun () ->
      let frames = List.init 70 (fun _ -> Phys.alloc pool) in
      List.iter (fun f -> Phys.release pool f) frames;
      Alcotest.(check int) "one batched drain" 1 (Phys.drains pool);
      let again = List.init 40 (fun _ -> Phys.alloc pool) in
      Alcotest.(check int) "one batched refill" 1 (Phys.refills pool);
      (* Releasing these pushes the freelist over the threshold once
         more: a second drain. *)
      List.iter (fun f -> Phys.release pool f) again;
      Alcotest.(check int) "second batched drain" 2 (Phys.drains pool));
  Alcotest.(check int) "each transfer published one Pool write" 3 !writes;
  Alcotest.(check bool) "every transfer ran under the guard" true
    (!guarded >= !writes)

let test_unlocked_drain_races () =
  (* A drain reaching the shared pool with no lock edge between the
     draining threads is exactly the bug R1 must flag on the Pool
     location. *)
  let pool_write tid = Hb.Write { tid; loc = Hb.Pool; site = "Phys.drain" } in
  let d = Race.create () in
  Race.attach d;
  Fun.protect
    ~finally:(fun () -> Race.detach ())
    (fun () -> List.iter Hb.emit [ pool_write 1; pool_write 2 ]);
  Alcotest.(check int) "seeded unlocked drain flagged" 1
    (List.length (Race.races d));
  (* The same two drains under the frame-pool lock hand-off are
     ordered. *)
  let d = Race.create () in
  Race.attach d;
  Fun.protect
    ~finally:(fun () -> Race.detach ())
    (fun () ->
      List.iter Hb.emit
        [
          acq 1 lock_a; pool_write 1; rel 1 lock_a;
          acq 2 lock_a; pool_write 2; rel 2 lock_a;
        ]);
  Alcotest.(check int) "guarded drains are ordered" 0
    (List.length (Race.races d))

(* {1 Contention counters} *)

let test_contention_counters () =
  Sync.reset_lock_contention ();
  ignore (E.hello_run (E.Ufork Strategy.Copa));
  let rows = Sync.lock_contention () in
  let find name =
    List.find_opt (fun (c : Sync.contention) -> c.Sync.lock = name) rows
  in
  (match find "lock.frame_pool" with
  | Some c ->
      Alcotest.(check bool) "frame pool acquired" true (c.Sync.acquires > 0)
  | None -> Alcotest.fail "no lock.frame_pool contention row");
  let text = Sync.lock_contention_prometheus () in
  let contains needle hay =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "prometheus text has %s" needle)
        true (contains needle text))
    [ "ufork_lock_acquire_total"; "ufork_lock_wait_total"; "# TYPE" ]

(* {1 Integration: checked runs} *)

let with_lockdep ~chaos f =
  E.set_lockdep_detect true;
  E.set_chaos_invert_shard_order chaos;
  Fun.protect
    ~finally:(fun () ->
      E.set_lockdep_detect false;
      E.set_chaos_invert_shard_order false)
    f

let test_checked_run_clean () =
  with_lockdep ~chaos:false (fun () ->
      let r = E.hello_run (E.Ufork Strategy.Copa) in
      Alcotest.(check bool) "run completes" true (r.E.fork_latency_us > 0.))

let test_race_and_lockdep_compose () =
  (* One bus subscriber dispatches to both detectors; a clean run stays
     clean with both armed. *)
  E.set_race_detect true;
  Fun.protect
    ~finally:(fun () -> E.set_race_detect false)
    (fun () ->
      with_lockdep ~chaos:false (fun () ->
          ignore (E.hello_run (E.Ufork Strategy.Copa))))

let test_chaos_inversion_caught_as_r2 () =
  let contains needle hay =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  with_lockdep ~chaos:true (fun () ->
      match E.hello_run (E.Ufork Strategy.Copa) with
      | _ -> Alcotest.fail "descending shard pair escaped the checker"
      | exception Checker.Unsafe report ->
          Alcotest.(check bool) "report cites R2" true (contains "R2" report);
          Alcotest.(check bool) "report cites lock-order" true
            (contains "lock-order" report);
          Alcotest.(check bool) "no other invariant fires" false
            (contains "R1" report || contains "S1" report
            || contains "L1" report))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_cycle_iff; prop_ascending_shards_clean ]
  @ [
      Alcotest.test_case "consistent order is clean" `Quick
        test_consistent_order_clean;
      Alcotest.test_case "ABBA inversion is one R2" `Quick test_abba_cycle;
      Alcotest.test_case "descending shard pair flagged" `Quick
        test_descending_shards_flagged;
      Alcotest.test_case "ascending shard pair clean" `Quick
        test_ascending_shards_clean;
      Alcotest.test_case "one report per ordered pair" `Quick
        test_dedup_per_pair;
      Alcotest.test_case "events are counted" `Quick test_events_seen;
      Alcotest.test_case "pool transfers guarded and published" `Quick
        test_pool_transfers_guarded_and_published;
      Alcotest.test_case "seeded unlocked drain races as R1" `Quick
        test_unlocked_drain_races;
      Alcotest.test_case "per-lock contention counters" `Quick
        test_contention_counters;
      Alcotest.test_case "checked run is clean" `Quick test_checked_run_clean;
      Alcotest.test_case "race and lockdep compose on one bus" `Quick
        test_race_and_lockdep_compose;
      Alcotest.test_case "chaos shard inversion caught as R2" `Quick
        test_chaos_inversion_caught_as_r2;
    ]
