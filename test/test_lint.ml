(* ufork_lint precision tests, mirroring the chaos methodology of
   test_analysis: every rule in the catalogue is exercised by a fixture
   that seeds exactly one violation, and the false-positive controls
   (banned names in comments/strings, innocent aliases, discharged
   Hashtbl traversals) must lint clean. Fixtures live in
   test/lint_fixtures/ (a data-only dir: dune never compiles them) and
   are linted under a synthetic lib/ path, because rule applicability is
   path-scoped. *)

module Rules = Ufork_lint_core.Lint_rules
module Lint = Ufork_lint_core.Lint_engine
module Lockdep = Ufork_lint_core.Lockdep
module Capflow = Ufork_lint_core.Capflow

let fixture_dir =
  (* cwd is test/ under [dune runtest], the project root under
     [dune exec]. *)
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else Filename.concat "test" "lint_fixtures"

let read_file file =
  let ic = open_in_bin (Filename.concat fixture_dir file) in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let ids fs = List.map (fun (f : Lint.finding) -> f.Lint.rule.Rules.id) fs

let lint ?(path = "lib/workload/fixture.ml") file =
  Lint.lint_source ~path ~source:(read_file file)

let lockdep_lint ?(path = "lib/workload/fixture.ml") file =
  Lockdep.analyze_sources [ (path, read_file file) ]

let capflow_lint ?(path = "lib/workload/fixture.ml") file =
  Capflow.analyze_sources [ (path, read_file file) ]

(* One seeded violation per rule id, caught as exactly that rule. *)
let seeded =
  [
    ("fixture_d1.ml", "D1");
    ("fixture_d2.ml", "D2");
    ("fixture_d3.ml", "D3");
    ("fixture_d4.ml", "D4");
    ("fixture_d5.ml", "D5");
    ("fixture_d6.ml", "D6");
    ("fixture_d7.ml", "D7");
    ("fixture_d8.ml", "D8");
    ("fixture_d9.ml", "D9");
    ("fixture_d11.ml", "D11");
    ("fixture_d12.ml", "D12");
    ("fixture_alias_d1.ml", "D1");
    ("fixture_open_d5.ml", "D5");
    ("fixture_e0.ml", "E0");
  ]

(* D10 comes from the whole-program lock-order analysis, not the
   per-file rule engine, so its fixtures run through Lockdep. *)
let lockdep_seeded =
  [
    ("fixture_d10.ml", "D10");
    ("fixture_alias_d10.ml", "D10");
    ("fixture_shard_d10.ml", "D10");
  ]

(* D13 likewise comes from a whole-program analysis (Capflow): a heap
   escape, an alias-routed escape, a discarded relocation, root
   authority in app code, and a stale discharge annotation. *)
let capflow_seeded =
  [
    ("fixture_d13.ml", "D13");
    ("fixture_alias_d13.ml", "D13");
    ("fixture_discard_d13.ml", "D13");
    ("fixture_root_d13.ml", "D13");
    ("fixture_stale_d13.ml", "D13");
  ]

let test_seeded () =
  List.iter
    (fun (file, expected) ->
      Alcotest.(check (list string)) file [ expected ] (ids (lint file)))
    seeded

let test_lockdep_seeded () =
  List.iter
    (fun (file, expected) ->
      Alcotest.(check (list string))
        file [ expected ]
        (ids (lockdep_lint file)))
    lockdep_seeded

let test_capflow_seeded () =
  List.iter
    (fun (file, expected) ->
      Alcotest.(check (list string))
        file [ expected ]
        (ids (capflow_lint file)))
    capflow_seeded

let test_rule_coverage () =
  (* Every catalogue rule has a seeding fixture: the fixture suite is the
     linter's coverage map. *)
  Alcotest.(check (list string))
    "one fixture per rule"
    (List.sort compare
       (List.map (fun (r : Rules.t) -> r.Rules.id) Rules.all))
    (List.sort_uniq compare
       (List.map snd (seeded @ lockdep_seeded @ capflow_seeded))
    |> List.filter (fun id -> id <> "E0"))

let test_clean_controls () =
  List.iter
    (fun file ->
      Alcotest.(check (list string)) file [] (ids (lint file)))
    [ "fixture_clean_comment.ml"; "fixture_clean_alias.ml";
      "fixture_clean_d6.ml"; "fixture_clean_d9.ml";
      "fixture_clean_d11.ml"; "fixture_clean_d12.ml" ];
  (* Ordered nesting, ascending shards and an annotation-declared custom
     pair satisfy the lock-order analysis. *)
  Alcotest.(check (list string))
    "fixture_clean_d10.ml" []
    (ids (lockdep_lint "fixture_clean_d10.ml"));
  (* Page stores, relocations that flow back, untainted heap traffic and
     a discharge that really shields satisfy the escape analysis. *)
  Alcotest.(check (list string))
    "fixture_clean_d13.ml" []
    (ids (capflow_lint "fixture_clean_d13.ml"))

let test_exemptions () =
  (* The same source is innocent in the module that owns the mechanism:
     path scoping, not name matching, is what makes the rule precise. *)
  let check_clean path file =
    Alcotest.(check (list string))
      (Printf.sprintf "%s under %s" file path)
      [] (ids (lint ~path file))
  in
  check_clean "lib/sim/scheduler.ml" "fixture_d1.ml";
  check_clean "lib/mem/page.ml" "fixture_d2.ml";
  check_clean "lib/core/fork_spine.ml" "fixture_d3.ml";
  check_clean "lib/sim/trace.ml" "fixture_d4.ml";
  check_clean "lib/sas/kernel.ml" "fixture_d9.ml";
  check_clean "lib/sim/meter.ml" "fixture_d11.ml";
  check_clean "lib/sim/sync.ml" "fixture_d12.ml";
  check_clean "lib/mem/phys.ml" "fixture_d12.ml";
  (* The capability module itself is D13's mechanism owner... *)
  Alcotest.(check (list string))
    "fixture_d13.ml under lib/cheri/capability.ml" []
    (ids (capflow_lint ~path:"lib/cheri/capability.ml" "fixture_d13.ml"));
  (* ...and root authority below the app layers is the kernel's job. *)
  Alcotest.(check (list string))
    "fixture_root_d13.ml under lib/sas/kernel.ml" []
    (ids (capflow_lint ~path:"lib/sas/kernel.ml" "fixture_root_d13.ml"));
  (* ...and test code is out of scope entirely. *)
  check_clean "test/test_sim.ml" "fixture_d5.ml"

let test_finding_location () =
  (* Findings carry the file and a 1-based line number pointing at the
     banned identifier, not at the top of the file. *)
  match lint ~path:"lib/workload/fx.ml" "fixture_d1.ml" with
  | [ f ] ->
      Alcotest.(check string) "file" "lib/workload/fx.ml" f.Lint.file;
      Alcotest.(check int) "line" 4 f.Lint.line
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_json () =
  let fs = lint "fixture_d8.ml" in
  let json = Lint.to_json fs in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json contains %s" needle)
        true (contains ~needle json))
    [ {|"id":"D8"|}; {|"name":"no-obj"|}; {|"severity":"error"|}; {|"line":4|} ]

let test_lock_graph () =
  (* The exported graph names the hierarchy and the declared custom
     order from the clean fixture, in both DOT and JSON. *)
  let g =
    Lockdep.graph_of_sources
      [ ("lib/workload/fixture.ml", read_file "fixture_clean_d10.ml") ]
  in
  let dot = Lockdep.to_dot g and json = Lockdep.to_json g in
  List.iter
    (fun (needle, hay, label) ->
      Alcotest.(check bool) label true (contains ~needle hay))
    [
      ("\"lock.uproc_table\" -> \"lock.fd_tables\"", dot, "dot inferred");
      ("label=\"declared\"", dot, "dot declared edge");
      ("\"lock.net.listener\"", dot, "dot custom node");
      ( {|{"src":"lock.net.listener","dst":"lock.net.conn","kind":"declared"}|},
        json, "json declared edge" );
      ({|"kind":"hierarchy"|}, json, "json hierarchy edge");
    ]

let suite =
  [
    Alcotest.test_case "seeded violations, one per rule" `Quick test_seeded;
    Alcotest.test_case "lock-order fixtures seed exactly D10" `Quick
      test_lockdep_seeded;
    Alcotest.test_case "cap-escape fixtures seed exactly D13" `Quick
      test_capflow_seeded;
    Alcotest.test_case "lock-order graph export" `Quick test_lock_graph;
    Alcotest.test_case "fixtures cover the catalogue" `Quick
      test_rule_coverage;
    Alcotest.test_case "false-positive controls lint clean" `Quick
      test_clean_controls;
    Alcotest.test_case "mechanism-owner paths are exempt" `Quick
      test_exemptions;
    Alcotest.test_case "findings carry precise locations" `Quick
      test_finding_location;
    Alcotest.test_case "json export" `Quick test_json;
  ]
